package sdpm

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation, plus the ablation studies. Each
// benchmark regenerates its artifact from scratch — workload
// construction, compiler analysis, instrumentation, and simulation —
// and reports domain-specific metrics (simulated requests per second
// of wall time) alongside the usual ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// The rendered artifacts themselves come from `go run ./cmd/dpmexp`
// or RunExperiment; the benchmarks exist to time and exercise the
// full regeneration paths.

import (
	"io"
	"testing"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// One untimed warmup: these benchmarks run few iterations, and the
	// first one pays heap growth and page faults that would otherwise
	// dominate the mean.
	if err := RunExperiment(id, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the simulation-parameter listing.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the benchmark-characteristics table
// (base runs of all six workloads).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFigure3 regenerates the normalized-energy comparison of
// the seven schemes over the six workloads.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates the normalized execution times.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkTable3 regenerates the disk-speed misprediction analysis.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFigure5 regenerates the stripe-size energy sensitivity.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates the stripe-size time sensitivity.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates the stripe-factor energy sensitivity.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates the stripe-factor time sensitivity.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFigure13 regenerates the code-transformation comparison
// (every version x compiler-managed scheme x workload).
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkAblationPreactivation regenerates the pre-activation
// ablation (DESIGN.md section 5).
func BenchmarkAblationPreactivation(b *testing.B) { benchExperiment(b, "ablation-preactivation") }

// BenchmarkAblationNoise regenerates the cycle-estimation noise
// ablation.
func BenchmarkAblationNoise(b *testing.B) { benchExperiment(b, "ablation-noise") }

// BenchmarkAblationNoCache regenerates the buffer-cache ablation.
func BenchmarkAblationNoCache(b *testing.B) { benchExperiment(b, "ablation-cache") }

// BenchmarkAblationClustering regenerates the LF+DL nest-clustering
// ablation.
func BenchmarkAblationClustering(b *testing.B) { benchExperiment(b, "ablation-clustering") }

// BenchmarkSimulatorThroughput measures the core simulator on the
// largest workload (wupwise, ~23k requests), reporting simulated
// requests per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := Benchmark("wupwise")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	// Prepare once so the loop times simulation, not analysis.
	res, err := w.Run(Base, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(IDRPM, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Requests*b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// BenchmarkCompilerInstrumentation measures the full compiler path
// (analysis + power-call insertion) on the largest workload.
func BenchmarkCompilerInstrumentation(b *testing.B) {
	w, err := Benchmark("wupwise")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(CMDRPM, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures access-pattern extraction and
// trace generation for every workload in sequence.
func BenchmarkTraceGeneration(b *testing.B) {
	ws := make([]*Workload, 0, 6)
	for _, name := range BenchmarkNames() {
		w, err := Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if _, err := w.Requests(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtensionInterchange regenerates the loop-interchange
// extension comparison.
func BenchmarkExtensionInterchange(b *testing.B) { benchExperiment(b, "ext-interchange") }

// BenchmarkAblationOpenLoop regenerates the closed-vs-open-loop
// ablation.
func BenchmarkAblationOpenLoop(b *testing.B) { benchExperiment(b, "ablation-openloop") }

// BenchmarkAblationSeekModel regenerates the seek-model ablation.
func BenchmarkAblationSeekModel(b *testing.B) { benchExperiment(b, "ablation-seek") }

// BenchmarkEnergyBreakdown regenerates the energy-breakdown table.
func BenchmarkEnergyBreakdown(b *testing.B) { benchExperiment(b, "breakdown") }

// BenchmarkExtensionMultiprogram regenerates the multiprogrammed
// shared-subsystem extension.
func BenchmarkExtensionMultiprogram(b *testing.B) { benchExperiment(b, "ext-multiprogram") }

// benchSuite regenerates the scheme matrix (Figure 3: 6 benchmarks x
// 7 schemes, each cell a full simulation) with a fixed worker count.
// Comparing Sequential against Parallel shows the worker-pool speedup
// (roughly min(workers, cells) bounded by the slowest cell) on
// multi-core machines; both render byte-identical output.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	// Untimed warmup, as in benchExperiment.
	if err := RunExperiments("fig3", io.Discard, Options{Workers: workers}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunExperiments("fig3", io.Discard, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSequential runs the Figure 3 grid on one worker.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel runs the Figure 3 grid on GOMAXPROCS
// workers.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }
