// Package sdpm is a library for software-directed disk power
// management, reproducing Son, Kandemir & Choudhary, "Software-
// Directed Disk Power Management for Scientific Applications"
// (IPPS/IPDPS 2005).
//
// The library models array-intensive scientific programs as affine
// loop nests over disk-resident arrays, extracts their disk access
// patterns with a compiler-style analysis, inserts proactive power
// management calls (spin_down / spin_up / set_RPM with
// pre-activation), applies the paper's layout-aware loop fission and
// tiling transformations, and evaluates everything on a trace-driven
// multi-disk power simulator with TPM- and DRPM-capable disks.
//
// Quick start:
//
//	w, _ := sdpm.Benchmark("swim")
//	base, _ := w.Run(sdpm.Base, sdpm.DefaultConfig())
//	cm, _ := w.Run(sdpm.CMDRPM, sdpm.DefaultConfig())
//	fmt.Printf("energy %.0f -> %.0f J\n", base.EnergyJ, cm.EnergyJ)
//
// Programs can also be written in a small text DSL (see ParseProgram)
// and transformed with Transform. The experiments of the paper's
// evaluation are available through RunExperiment.
package sdpm

import (
	"fmt"
	"io"

	"sdpm/internal/core"
	"sdpm/internal/cycles"
	"sdpm/internal/dsl"
	"sdpm/internal/faults"
	"sdpm/internal/insert"
	"sdpm/internal/ir"
	"sdpm/internal/layout"
	"sdpm/internal/workloads"
)

// Scheme names a disk power management scheme (Section 4.2 of the
// paper).
type Scheme = core.Scheme

// The seven evaluated schemes.
const (
	// Base applies no power management.
	Base = core.Base
	// TPM is traditional threshold-based spin-down (reactive).
	TPM = core.TPM
	// ITPM is TPM with an oracle idle-period predictor.
	ITPM = core.ITPM
	// DRPM is the reactive dynamic-RPM controller.
	DRPM = core.DRPM
	// IDRPM is DRPM with an oracle idle-period predictor.
	IDRPM = core.IDRPM
	// CMTPM is the compiler-managed proactive TPM scheme.
	CMTPM = core.CMTPM
	// CMDRPM is the compiler-managed proactive DRPM scheme.
	CMDRPM = core.CMDRPM
)

// Schemes returns all schemes in the paper's order.
func Schemes() []Scheme { return core.AllSchemes() }

// Version names a code/layout transformation version (Section 6).
type Version = core.Version

// The evaluated code versions.
const (
	// Orig is the untransformed program.
	Orig = core.VOrig
	// LF is loop fission without layout awareness.
	LF = core.VLF
	// TL is conventional (layout-oblivious) loop tiling.
	TL = core.VTL
	// LFDL is layout-aware loop fission with proportional disk
	// allocation (the paper's LF+DL).
	LFDL = core.VLFDL
	// TLDL is layout-aware loop tiling with blocked layouts and
	// tile-to-disk mapping (the paper's TL+DL).
	TLDL = core.VTLDL
	// IC is loop interchange — an extension beyond the paper's two
	// transformations: it fixes transposed traversals by reordering
	// iteration instead of re-laying-out data.
	IC = core.VIC
)

// Versions returns all code versions in the paper's order.
func Versions() []Version { return core.AllVersions() }

// ExtendedVersions returns the paper's versions plus this library's
// extensions (loop interchange).
func ExtendedVersions() []Version { return core.ExtendedVersions() }

// Config selects the experimental platform parameters. The zero
// value is not valid; start from DefaultConfig.
type Config struct {
	// NumDisks is the number of disks (I/O nodes); also the default
	// stripe factor.
	NumDisks int
	// StripeUnitBytes is the default stripe unit size.
	StripeUnitBytes int64
	// CacheUnits is the buffer cache capacity in stripe units
	// (0 selects the workload's own default).
	CacheUnits int
	// NoisePct and BiasPct override the workload's execution-time
	// variation model when >= 0 (see the paper's Table 3 discussion);
	// leave at -1 to keep the workload defaults.
	NoisePct float64
	BiasPct  float64
	// DisablePreactivation drops the pre-activation calls (ablation).
	DisablePreactivation bool
	// DistanceAwareSeek replaces the average-seek model with the
	// square-root seek curve over actual head movement.
	DistanceAwareSeek bool
	// FaultSpec injects deterministic faults (spin-up failures with
	// bounded retry, bad-sector remaps, transient degradation windows)
	// into every simulation: a preset name (off/light/moderate/heavy),
	// a key=value spec, or "@file" — see docs/robustness.md. Empty
	// injects nothing.
	FaultSpec string
	// FaultSeed seeds the fault schedule; the same (spec, seed, disk
	// count) always produces byte-identical behavior.
	FaultSeed int64
	// DisableBatch forces the simulator's general per-request path
	// instead of the batched steady-state executor. Results are
	// bit-identical either way; the switch exists to prove it.
	DisableBatch bool
}

// DefaultConfig returns the paper's Table 1 configuration: eight
// disks, 64KB stripe units.
func DefaultConfig() Config {
	return Config{NumDisks: 8, StripeUnitBytes: 64 << 10, NoisePct: -1, BiasPct: -1}
}

// Result reports one simulated run.
type Result struct {
	// Program and Scheme identify the run.
	Program string
	Scheme  Scheme
	// EnergyJ is the total disk subsystem energy.
	EnergyJ float64
	// ExecMS is the application completion time.
	ExecMS float64
	// Requests is the number of disk requests serviced.
	Requests int
	// PowerOps is the number of explicit power-management calls
	// executed (compiler-managed schemes).
	PowerOps int
	// WaitMS is the total time requests waited for disks to become
	// ready — the source of any execution-time penalty.
	WaitMS float64
}

// Mispredict summarizes the disk-speed misprediction analysis
// (Table 3): how often the compiler-managed scheme chose a different
// RPM level than the oracle would for the actual idle period.
type Mispredict struct {
	Pct          float64
	Total, Wrong int
}

// Workload is a program ready to analyze, transform, and simulate.
type Workload struct {
	name       string
	prog       *ir.Program
	overrides  map[string]layout.Striping
	cacheUnits int
	noisePct   float64
	biasPct    float64
	seed       uint64
}

// Benchmark returns one of the paper's six Table 2 workloads:
// "wupwise", "swim", "mgrid", "applu", "mesa", or "galgel".
func Benchmark(name string) (*Workload, error) {
	b, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Workload{
		name: b.Name, prog: b.Program,
		cacheUnits: b.CacheUnits,
		noisePct:   b.NoisePct, biasPct: b.BiasPct, seed: b.Seed,
	}, nil
}

// BenchmarkNames returns the built-in workload names.
func BenchmarkNames() []string { return workloads.Names() }

// ParseProgram builds a workload from DSL source (see internal/dsl
// for the format). Statement costs are compute cycles per iteration
// at a 750 MHz clock.
func ParseProgram(src string) (*Workload, error) {
	p, err := dsl.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Workload{
		name: p.Name, prog: p,
		cacheUnits: workloads.DefaultCacheUnits,
		noisePct:   10, biasPct: 15, seed: 1,
	}, nil
}

// Name returns the workload name.
func (w *Workload) Name() string { return w.name }

// DSL renders the workload's program in the text DSL.
func (w *Workload) DSL() string { return dsl.Format(w.prog) }

// SetTiming overrides the execution-time variation model: noisePct is
// the zero-mean per-step jitter, biasPct the systematic per-nest
// estimation error, and seed fixes the deterministic streams.
func (w *Workload) SetTiming(noisePct, biasPct float64, seed uint64) {
	w.noisePct, w.biasPct, w.seed = noisePct, biasPct, seed
}

// SetLayout assigns an explicit disk layout (the paper's 3-tuple:
// starting disk, stripe factor, stripe size) to one array, overriding
// the default staggered striping — the equivalent of passing the
// layout information to the compiler on the command line (Section 3).
func (w *Workload) SetLayout(array string, startDisk, factor int, unitBytes int64) error {
	if w.prog.ArrayByName(array) == nil {
		return fmt.Errorf("sdpm: no array %q in %s", array, w.name)
	}
	// Reject bad tuples here, where the caller still has the flag
	// context, instead of letting layout placement fail later.
	if startDisk < 0 {
		return fmt.Errorf("sdpm: layout for %q: negative starting disk %d", array, startDisk)
	}
	if factor <= 0 {
		return fmt.Errorf("sdpm: layout for %q: non-positive stripe factor %d", array, factor)
	}
	if unitBytes <= 0 {
		return fmt.Errorf("sdpm: layout for %q: non-positive stripe unit %d bytes", array, unitBytes)
	}
	if w.overrides == nil {
		w.overrides = make(map[string]layout.Striping)
	}
	w.overrides[array] = layout.Striping{StartDisk: startDisk, Factor: factor, UnitBytes: unitBytes}
	return nil
}

// coreConfig builds the internal configuration.
func (w *Workload) coreConfig(cfg Config) (core.Config, error) {
	cc := core.DefaultConfig()
	if cfg.NumDisks > 0 {
		cc.NumDisks = cfg.NumDisks
	}
	if cfg.StripeUnitBytes > 0 {
		cc.UnitBytes = cfg.StripeUnitBytes
	}
	cc.CacheUnits = w.cacheUnits
	if cfg.CacheUnits > 0 {
		cc.CacheUnits = cfg.CacheUnits
	}
	noise, bias := w.noisePct, w.biasPct
	if cfg.NoisePct >= 0 {
		noise = cfg.NoisePct
	}
	if cfg.BiasPct >= 0 {
		bias = cfg.BiasPct
	}
	m := cycles.New(cycles.DefaultClockHz, noise, w.seed)
	m.BiasPct = bias
	cc.Model = m
	cc.DisablePreactivation = cfg.DisablePreactivation
	cc.DistanceAwareSeek = cfg.DistanceAwareSeek
	cc.DisableBatch = cfg.DisableBatch
	if cfg.FaultSpec != "" {
		fc, err := faults.ParseSpec(cfg.FaultSpec)
		if err != nil {
			return core.Config{}, err
		}
		cc.Faults = fc
		cc.FaultSeed = cfg.FaultSeed
	}
	return cc, cc.Validate()
}

func (w *Workload) instance(cfg Config) (*core.Instance, error) {
	cc, err := w.coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	return core.Prepare(w.name, w.prog, cc, w.overrides)
}

// Run simulates the workload under the given scheme.
func (w *Workload) Run(s Scheme, cfg Config) (Result, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := in.Run(s)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Program: w.name, Scheme: s,
		EnergyJ: res.EnergyJ, ExecMS: res.ExecMS,
		Requests: res.Requests, PowerOps: res.PowerOps,
		WaitMS: res.TotalWaitMS,
	}, nil
}

// RunOpen replays the workload's trace in open-loop (arrival-driven,
// per-disk FIFO queueing) mode under a reactive or oracle scheme —
// the classical DiskSim-style replay, in contrast to Run's
// closed-loop execution.
func (w *Workload) RunOpen(s Scheme, cfg Config) (Result, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := in.RunOpen(s)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Program: w.name, Scheme: s,
		EnergyJ: res.EnergyJ, ExecMS: res.ExecMS,
		Requests: res.Requests, WaitMS: res.TotalWaitMS,
	}, nil
}

// RunAll simulates the workload under every scheme.
func (w *Workload) RunAll(cfg Config) ([]Result, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(core.AllSchemes()))
	for _, s := range core.AllSchemes() {
		res, err := in.Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Result{
			Program: w.name, Scheme: s,
			EnergyJ: res.EnergyJ, ExecMS: res.ExecMS,
			Requests: res.Requests, PowerOps: res.PowerOps,
			WaitMS: res.TotalWaitMS,
		})
	}
	return out, nil
}

// Transform applies a code/layout version (Section 6) and returns
// the transformed workload. The bool reports whether the compiler
// found anything to transform: when false the returned workload is
// behaviourally identical to the receiver (the paper's "not
// fissionable" / "already conforming" cases).
func (w *Workload) Transform(v Version, cfg Config) (*Workload, bool, error) {
	cc, err := w.coreConfig(cfg)
	if err != nil {
		return nil, false, err
	}
	var nestCost []float64
	if v == core.VTLDL {
		in, err := core.Prepare(w.name, w.prog, cc, w.overrides)
		if err != nil {
			return nil, false, err
		}
		nestCost = in.NestRequests()
	}
	tp, overrides, applied, err := core.ApplyVersion(w.prog, v, cc, nestCost)
	if err != nil {
		return nil, false, err
	}
	nw := *w
	nw.name = w.name + "/" + string(v)
	nw.prog = tp
	nw.overrides = overrides
	return &nw, applied, nil
}

// AnnotatedDSL renders the program with the compiler's inserted
// power-management calls shown as comments inside each nest — the
// paper's Figure 2(d) view of the modified code. The scheme must be
// CMTPM or CMDRPM.
func (w *Workload) AnnotatedDSL(s Scheme, cfg Config) (string, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return "", err
	}
	mode := insert.ModeTPM
	switch s {
	case CMTPM:
	case CMDRPM:
		mode = insert.ModeDRPM
	default:
		return "", fmt.Errorf("sdpm: annotated listing needs CMTPM or CMDRPM, not %q", s)
	}
	_, plan, err := in.Instrumented(mode)
	if err != nil {
		return "", err
	}
	calls := make([]dsl.CallSite, len(plan.Calls))
	for i, c := range plan.Calls {
		calls[i] = dsl.CallSite{Nest: c.Nest, Iter: c.Iter, Op: c.Op}
	}
	return dsl.FormatAnnotated(w.prog, calls), nil
}

// SelectScheme performs the paper's strategy selection: the compiler
// instruments the program for both TPM and DRPM, estimates each
// plan's energy on the predicted timeline, and returns the cheaper
// compiler-managed scheme with its predicted energy in joules.
func (w *Workload) SelectScheme(cfg Config) (Scheme, float64, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return "", 0, err
	}
	return in.SelectScheme()
}

// EstimateEnergy returns the compiler's energy prediction (joules)
// for Base, CMTPM, or CMDRPM, without running the simulator.
func (w *Workload) EstimateEnergy(s Scheme, cfg Config) (float64, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return 0, err
	}
	return in.EstimateEnergy(s)
}

// Mispredictions runs the Table 3 analysis on the workload.
func (w *Workload) Mispredictions(cfg Config) (Mispredict, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return Mispredict{}, err
	}
	st, err := in.Mispredictions()
	if err != nil {
		return Mispredict{}, err
	}
	return Mispredict{Pct: st.Pct, Total: st.TotalGaps, Wrong: st.Mispredicted}, nil
}

// DAP renders the workload's Disk Access Pattern (Section 3) on the
// compiler's predicted timeline.
func (w *Workload) DAP(cfg Config) (string, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return "", err
	}
	return in.DAP(0).String(), nil
}

// WriteTrace writes the workload's I/O trace in the textual trace
// format: the base trace for reactive schemes, or the instrumented
// trace (with power-management calls) for CMTPM/CMDRPM.
func (w *Workload) WriteTrace(out io.Writer, s Scheme, cfg Config) error {
	in, err := w.instance(cfg)
	if err != nil {
		return err
	}
	switch s {
	case CMTPM, CMDRPM:
		mode := insert.ModeTPM
		if s == CMDRPM {
			mode = insert.ModeDRPM
		}
		tr, _, err := in.Instrumented(mode)
		if err != nil {
			return err
		}
		return tr.Encode(out)
	default:
		return in.BaseTrace().Encode(out)
	}
}

// Requests returns the number of disk requests the workload makes
// under the configuration.
func (w *Workload) Requests(cfg Config) (int, error) {
	in, err := w.instance(cfg)
	if err != nil {
		return 0, err
	}
	return len(in.Sites), nil
}

// Validate checks the workload's program.
func (w *Workload) Validate() error { return w.prog.Validate() }
