module sdpm

go 1.22
