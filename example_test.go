package sdpm_test

import (
	"fmt"
	"log"

	"sdpm"
)

// Running a built-in benchmark under the base scheme and the
// compiler-directed scheme. All runs are deterministic (seeded
// jitter), so the numbers below reproduce exactly.
func ExampleBenchmark() {
	w, err := sdpm.Benchmark("galgel")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sdpm.DefaultConfig()
	base, _ := w.Run(sdpm.Base, cfg)
	cm, _ := w.Run(sdpm.CMDRPM, cfg)
	fmt.Printf("requests: %d\n", base.Requests)
	fmt.Printf("base:     %.0f J\n", base.EnergyJ)
	fmt.Printf("CMDRPM:   %.0f J (%.0f%% saved)\n",
		cm.EnergyJ, (1-cm.EnergyJ/base.EnergyJ)*100)
	// Output:
	// requests: 2048
	// base:     1765 J
	// CMDRPM:   982 J (44% saved)
}

// Authoring a program in the DSL and counting its disk requests.
func ExampleParseProgram() {
	w, err := sdpm.ParseProgram(`
program tiny
array a[256][1024]                # 2MB row-major matrix
nest sweep {
  for i = 0..256
  for j = 0..1024
  do cost 2500 { read a[i][j] }
}
`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := w.Requests(sdpm.DefaultConfig())
	fmt.Printf("%s makes %d requests (2MB / 64KB units)\n", w.Name(), n)
	// Output:
	// tiny makes 32 requests (2MB / 64KB units)
}

// Applying a layout-aware transformation: mesa's texture-sampling
// pass walks a row-major image column-wise; TL+DL re-tiles it and
// blocks the layout, collapsing the request count.
func ExampleWorkload_Transform() {
	w, _ := sdpm.Benchmark("mesa")
	cfg := sdpm.DefaultConfig()
	before, _ := w.Requests(cfg)
	tw, applied, err := w.Transform(sdpm.TLDL, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, _ := tw.Requests(cfg)
	fmt.Printf("applied: %v\n", applied)
	fmt.Printf("requests: %d -> %d\n", before, after)
	// Output:
	// applied: true
	// requests: 2944 -> 1665
}

// The compiler's strategy selection: instrument for both mechanisms,
// estimate, and pick the cheaper scheme.
func ExampleWorkload_SelectScheme() {
	w, _ := sdpm.Benchmark("swim")
	scheme, _, err := w.SelectScheme(sdpm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected:", scheme)
	// Output:
	// selected: CMDRPM
}
