package sdpm

// Crash-and-resume tests for the journaled experiment engine: a run
// interrupted mid-sweep (simulated by truncating its journal, torn
// tail included) must resume and render byte-identically to an
// uninterrupted run, at any worker count (docs/robustness.md,
// "Journal and resume").

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// journaledRun renders one experiment with a journal attached,
// returning the rendered bytes and the Prometheus metrics dump.
func journaledRun(t *testing.T, id, journalPath string, workers int, resume bool) ([]byte, []byte) {
	t.Helper()
	var out, metrics bytes.Buffer
	err := RunExperiments(id, &out, Options{
		Workers: workers,
		Journal: journalPath,
		Resume:  resume,
		Metrics: &metrics,
	})
	if err != nil {
		t.Fatalf("%s (journal=%s resume=%t): %v", id, journalPath, resume, err)
	}
	return out.Bytes(), metrics.Bytes()
}

// metricValue extracts one Prometheus counter value from a dump.
func metricValue(t *testing.T, dump []byte, name string) int {
	t.Helper()
	m := regexp.MustCompile(name + ` (\d+)`).FindSubmatch(dump)
	if m == nil {
		t.Fatalf("metric %s missing from dump:\n%s", name, dump)
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestKillAndResumeByteIdentical simulates a crash mid-sweep: a full
// journaled run's file is cut back to a prefix ending in a torn
// (partially written) record, and the rerun with Resume must skip the
// surviving cells, recompute the rest, and render byte-identically to
// the cold run — at one, two, and eight workers.
func TestKillAndResumeByteIdentical(t *testing.T) {
	const id = "ablation-noise"
	cold := renderExperiment(t, id, 2)

	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	out, _ := journaledRun(t, id, full, 2, false)
	if !bytes.Equal(out, cold) {
		t.Fatalf("journaled run differs from cold run:\n%s\nvs\n%s", out, cold)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too small to cut (%d lines)", len(lines))
	}
	// Keep the first half of the records, then append a torn tail: the
	// next record cut mid-way, as a crash between write and fsync
	// completion would leave it.
	keep := len(lines) / 2
	crashed := append([]byte{}, bytes.Join(lines[:keep], nil)...)
	torn := lines[keep]
	crashed = append(crashed, torn[:len(torn)/2]...)

	for _, workers := range []int{1, 2, 8} {
		path := filepath.Join(dir, "crashed"+strconv.Itoa(workers)+".journal")
		if err := os.WriteFile(path, crashed, 0o644); err != nil {
			t.Fatal(err)
		}
		got, metrics := journaledRun(t, id, path, workers, true)
		if !bytes.Equal(got, cold) {
			t.Errorf("workers=%d: resumed output differs from cold run\n--- cold ---\n%s\n--- resumed ---\n%s",
				workers, cold, got)
		}
		hits := metricValue(t, metrics, "sdpm_journal_hits_total")
		misses := metricValue(t, metrics, "sdpm_journal_misses_total")
		if hits == 0 {
			t.Errorf("workers=%d: resume replayed no cells (hits=0, misses=%d)", workers, misses)
		}
		if misses == 0 {
			t.Errorf("workers=%d: resume recomputed nothing — truncation had no effect", workers)
		}
	}
}

// TestResumeFromFinalizedJournal: resuming from a complete journal
// recomputes nothing and still renders byte-identically.
func TestResumeFromFinalizedJournal(t *testing.T) {
	const id = "ablation-noise"
	journal := filepath.Join(t.TempDir(), "exp.journal")
	first, _ := journaledRun(t, id, journal, 2, false)
	second, metrics := journaledRun(t, id, journal, 4, true)
	if !bytes.Equal(first, second) {
		t.Errorf("resumed output differs:\n%s\nvs\n%s", first, second)
	}
	if misses := metricValue(t, metrics, "sdpm_journal_misses_total"); misses != 0 {
		t.Errorf("full journal still recomputed %d cells", misses)
	}
	if hits := metricValue(t, metrics, "sdpm_journal_hits_total"); hits == 0 {
		t.Error("full journal produced no hits")
	}
}
