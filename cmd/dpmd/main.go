// Command dpmd serves the simulation engine over HTTP/JSON as a
// hardened long-running service.
//
// Usage:
//
//	dpmd -addr :8080
//	curl -XPOST localhost:8080/v1/sim -d '{"bench":"swim","scheme":"CMDRPM"}'
//	curl -XPOST 'localhost:8080/v1/experiment?timeout=30s' -d '{"id":"fig3"}'
//	curl localhost:8080/v1/experiments
//	curl localhost:8080/readyz
//
// Robustness (the point of the daemon; see docs/serving.md):
//
//	-inflight N         concurrently executing requests (0 = GOMAXPROCS)
//	-queue N            waiting requests beyond that before load
//	                    shedding with 429 + Retry-After (0 = 4x inflight)
//	-queue-wait D       max time a queued request waits for a slot
//	-timeout D          default per-request deadline; clients override
//	                    with ?timeout=, capped by -max-timeout. Expiry
//	                    returns 504 with partial-progress metadata
//	-max-timeout D      upper bound on client-requested deadlines
//	-drain-timeout D    graceful-drain bound: on SIGTERM/SIGINT the
//	                    listener stops, /readyz turns 503, in-flight
//	                    requests get this long to finish, and the
//	                    journal is finalized atomically before exit 0
//	-journal FILE       shared crash-safe cell journal (same keys as
//	                    dpmexp -journal; the files are interchangeable)
//	-resume             reopen the -journal instead of truncating
//	-journal-retries N  append retries (with backoff) before the
//	                    daemon degrades to memory-only operation
//	-journal-backoff D  initial sleep between append retries (doubles)
//	-journal-reprobe D  while degraded, re-probe the journal at this
//	                    interval and auto-recover once the filesystem
//	                    heals (0 = stay degraded until restart)
//	-max-body N         request-body byte cap; larger bodies get a
//	                    typed 413 (0 = 1 MiB)
//	-retries N          extra attempts for failing/panicking cells
//	-chaos SPEC         deterministic self-fault injection for testing:
//	                    "seed=1,stall=0.3,stall_ms=200,panic=0.05"
//	                    stalls/panics that fraction of requests; panics
//	                    are isolated per request (500), never fatal
//
// Degraded mode: dpmd survives persistence faults. If a journal
// append keeps failing past its retry budget — or tears the file or
// breaks an fsync, after which retrying cannot help — the daemon
// degrades instead of failing requests: results keep being computed
// and served from memory, /readyz reports "degraded: journal" (still
// 200), /status carries the reason, and requests that set
// "durable": true receive a typed 503 rather than a silently
// non-durable success. Cells journaled before the fault stay durable
// and are recovered by the next -resume. See docs/robustness.md.
//
// Observability: /metrics (Prometheus, including serve_* queue/shed/
// deadline/drain series and sdpm_serve_journal_errors_total),
// /status (JSON snapshot), /debug/pprof/, /healthz (liveness),
// /readyz (readiness; 503 while draining).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdpm/internal/cli"
	"sdpm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a slot before shedding with 429 (0 = 4x -inflight)")
	queueWait := flag.Duration("queue-wait", time.Second, "max time a queued request waits for an execution slot")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (clients override with ?timeout=, capped by -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested ?timeout= deadlines")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "bound on graceful drain after SIGTERM/SIGINT")
	workers := flag.Int("workers", 0, "simulation workers per experiment request (0 = GOMAXPROCS); output is identical for every value")
	retries := flag.Int("retries", 0, "extra attempts for a failing or panicking experiment cell")
	journalPath := flag.String("journal", "", "record completed experiment cells to this crash-safe journal; finalized atomically on drain")
	resume := flag.Bool("resume", false, "reopen the -journal file and serve cells it already holds (requires -journal)")
	journalRetries := flag.Int("journal-retries", 0, "journal append retries before degrading to memory-only operation (0 = 2, negative = none)")
	journalBackoff := flag.Duration("journal-backoff", 0, "initial sleep between journal append retries, doubling per attempt (0 = 10ms)")
	journalReprobe := flag.Duration("journal-reprobe", 0, "while degraded, re-probe the journal at this interval and auto-recover when the filesystem heals (0 = never)")
	maxBody := flag.Int64("max-body", 0, "max request body bytes; larger bodies get a typed 413 (0 = 1 MiB)")
	chaosSpec := flag.String("chaos", "", "deterministic self-fault injection spec: seed=N,stall=P,stall_ms=MS,panic=P (empty or 'off' disables)")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmd", *verbose, *quiet)

	if *resume && *journalPath == "" {
		cli.Fatal(errors.New("-resume requires -journal"))
	}
	chaos, err := serve.ParseChaos(*chaosSpec)
	if err != nil {
		cli.Fatal(err)
	}
	if chaos != nil {
		slog.Warn("chaos mode armed: injecting deterministic stalls/panics", "spec", *chaosSpec)
	}
	srv, err := serve.New(serve.Config{
		MaxInflight:         *inflight,
		MaxQueue:            *queue,
		QueueWait:           *queueWait,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		DrainTimeout:        *drainTimeout,
		Workers:             *workers,
		Retries:             *retries,
		JournalPath:         *journalPath,
		Resume:              *resume,
		JournalRetries:      *journalRetries,
		JournalRetryBackoff: *journalBackoff,
		JournalReprobe:      *journalReprobe,
		MaxBody:             *maxBody,
		Chaos:               chaos,
	})
	if err != nil {
		cli.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		if serr := httpSrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			errCh <- serr
		}
	}()
	slog.Info("dpmd listening", "addr", ln.Addr().String(), "inflight", *inflight, "queue", *queue, "journal", *journalPath)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		slog.Info("signal received; draining", "signal", sig.String())
	case serr := <-errCh:
		cli.Fatal(serr)
	}

	// Graceful drain: readiness flips first so load balancers stop
	// routing, the listener closes, in-flight requests finish within
	// the drain budget, and the journal finalizes atomically. Exit 0
	// only on a fully clean drain.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if serr := httpSrv.Shutdown(ctx); serr != nil {
		slog.Warn("listener shutdown incomplete", "err", serr)
	}
	if serr := srv.Drain(ctx); serr != nil {
		cli.Fatal(serr)
	}
	slog.Info("drain complete; exiting")
}
