package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"sdpm/internal/serve"
)

// boot runs the real serve handler on a loopback listener.
func boot(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// ctl runs one dpmctl invocation and returns (exit, stdout, stderr).
func ctl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestUsageErrors(t *testing.T) {
	base := boot(t)
	for _, args := range [][]string{
		{},                            // no command
		{"-addr", base, "frobnicate"}, // unknown command
		{"-addr", base, "sim"},        // sim without a bench
		{"-addr", base, "experiment"}, // experiment without an id
		{"-addr", base, "experiment", "a", "b"},
		{"-addr", base, "status", "extra"},
		{"-bogus-flag"},
	} {
		if code, _, _ := ctl(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestSimAndLists(t *testing.T) {
	base := boot(t)
	code, out, errw := ctl(t, "-addr", base, "sim", "swim", "CMDRPM")
	if code != 0 {
		t.Fatalf("sim exit = %d (%s)", code, errw)
	}
	if !strings.Contains(out, "bench=swim") || !strings.Contains(out, "scheme=CMDRPM") || !strings.Contains(out, "energy_j=") {
		t.Fatalf("sim output missing fields: %q", out)
	}

	code, out, _ = ctl(t, "-addr", base, "benchmarks")
	if code != 0 || !strings.Contains(out, "swim") {
		t.Fatalf("benchmarks = exit %d, out %q", code, out)
	}
	code, out, _ = ctl(t, "-addr", base, "experiments")
	if code != 0 || !strings.Contains(out, "table2") {
		t.Fatalf("experiments = exit %d, out %q", code, out)
	}
	code, out, _ = ctl(t, "-addr", base, "health")
	if code != 0 || out != "ok\n" {
		t.Fatalf("health = exit %d, out %q", code, out)
	}
	code, out, _ = ctl(t, "-addr", base, "status")
	if code != 0 || !strings.Contains(out, `"inflight"`) {
		t.Fatalf("status = exit %d, out %q", code, out)
	}
}

// experiment output is the raw table, and -metrics reports the calls.
func TestExperimentAndMetrics(t *testing.T) {
	base := boot(t)
	code, out, errw := ctl(t, "-addr", base, "-metrics", "experiment", "table2")
	if code != 0 {
		t.Fatalf("experiment exit = %d (%s)", code, errw)
	}
	if !strings.Contains(out, "swim") {
		t.Fatalf("experiment table missing benchmark rows: %q", out)
	}
	if !strings.Contains(errw, "requests=1") || !strings.Contains(errw, "succeeded=1") {
		t.Fatalf("-metrics snapshot missing counters: %q", errw)
	}
}

// Server-side failures map to exit 1, not 2.
func TestRequestFailureExit(t *testing.T) {
	base := boot(t)
	// Unknown experiment id: the server answers a definitive 400.
	code, _, errw := ctl(t, "-addr", base, "-retries", "-1", "experiment", "no-such-id")
	if code != 1 {
		t.Fatalf("bad experiment id exit = %d (%s), want 1", code, errw)
	}
	// Nothing listening: exhausts retries.
	code, _, _ = ctl(t, "-addr", "http://127.0.0.1:1", "-retries", "-1", "health")
	if code != 1 {
		t.Fatalf("connection-refused exit = %d, want 1", code)
	}
}
