// Command dpmctl is the resilient command-line client for dpmd,
// built on internal/client: every call gets capped exponential
// backoff with seeded jitter, Retry-After honoring, deterministic
// idempotency keys (retries after ambiguous network failures replay
// instead of recomputing), end-to-end response digest verification,
// a deterministic circuit breaker, and optional request hedging.
//
// Usage:
//
//	dpmctl -addr http://127.0.0.1:8080 sim swim CMDRPM
//	dpmctl experiment fig3                  # table bytes, verbatim
//	dpmctl -format csv -durable experiment table2
//	dpmctl experiments                      # one id per line
//	dpmctl benchmarks
//	dpmctl status                           # /status JSON snapshot
//	dpmctl health
//
// Resilience knobs:
//
//	-seed N             jitter/idempotency/breaker-probe seed; fixed
//	                    seed + fixed fault schedule = identical runs
//	-retries N          extra attempts per call (-1 = none, 0 = 4)
//	-base-backoff D     first retry's jittered sleep cap (doubles)
//	-max-backoff D      backoff growth cap
//	-attempt-timeout D  budget for one network attempt
//	-hedge D            race a second identical attempt (same
//	                    idempotency key) if the first is slower
//	-breaker-failures N consecutive failures that open the breaker
//	                    (-1 disables it)
//	-no-digest          skip X-Sdpm-Digest response verification
//	-metrics            print the client metrics snapshot to stderr
//	                    after the call (retries, breaker transitions,
//	                    hedges, replays — the soak-comparable format)
//
// Exit status follows the benchdiff contract: 0 on success, 1 when
// the request failed (exhausted retries, breaker open, server error),
// 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sdpm/internal/cli"
	"sdpm/internal/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags and executes one subcommand, returning the process
// exit code: 0 success, 1 request failure, 2 usage error. Separated
// from main so the contract is table-testable.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("dpmctl", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "http://127.0.0.1:8080", "dpmd base URL")
	seed := fs.Int64("seed", 1, "seed for backoff jitter, idempotency keys, and breaker probe jitter")
	retries := fs.Int("retries", 0, "extra attempts per call beyond the first (0 = 4, -1 = none)")
	baseBackoff := fs.Duration("base-backoff", 0, "cap of the first retry's jittered sleep; doubles per retry (0 = 50ms)")
	maxBackoff := fs.Duration("max-backoff", 0, "cap on backoff growth (0 = 2s)")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "budget for one network attempt (0 = 30s)")
	hedge := fs.Duration("hedge", 0, "launch a second identical attempt if the first exceeds this delay (0 = off)")
	brkFailures := fs.Int("breaker-failures", 0, "consecutive failures that open the circuit breaker (0 = 5, -1 = disabled)")
	brkProbe := fs.Int("breaker-probe-after", 0, "rejected calls the open breaker absorbs before probing (0 = 8)")
	noDigest := fs.Bool("no-digest", false, "skip verification of the server's X-Sdpm-Digest response header")
	metrics := fs.Bool("metrics", false, "print the client metrics snapshot to stderr after the call")
	serverTimeout := fs.Duration("server-timeout", 0, "server-side ?timeout= deadline (0 = the server's default)")
	callTimeout := fs.Duration("call-timeout", 5*time.Minute, "overall budget for the whole call including retries")
	format := fs.String("format", "", "experiment output format: text or csv (experiment only)")
	faultsSpec := fs.String("faults", "", "disk fault-injection spec forwarded to the server (sim/experiment)")
	faultSeed := fs.Int64("fault-seed", 0, "seed for the forwarded -faults schedule")
	audit := fs.Bool("audit", false, "enable invariant auditing on the server-side run")
	durable := fs.Bool("durable", false, "require the result journaled durably; degraded servers answer 503 (experiment only)")
	verbose, quiet := cli.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the usage message
	}
	cli.SetupLogging("dpmctl", *verbose, *quiet)

	if fs.NArg() == 0 {
		fmt.Fprintln(errw, "dpmctl: missing command (sim, experiment, experiments, benchmarks, status, health)")
		fs.Usage()
		return 2
	}

	c := client.New(client.Config{
		BaseURL:            *addr,
		Seed:               *seed,
		MaxRetries:         *retries,
		BaseBackoff:        *baseBackoff,
		MaxBackoff:         *maxBackoff,
		AttemptTimeout:     *attemptTimeout,
		HedgeDelay:         *hedge,
		DisableDigestCheck: *noDigest,
		Breaker: client.BreakerConfig{
			FailureThreshold: *brkFailures,
			ProbeAfter:       *brkProbe,
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), *callTimeout)
	defer cancel()

	err := dispatch(ctx, c, fs, out, commandOpts{
		serverTimeout: *serverTimeout,
		format:        *format,
		faults:        *faultsSpec,
		faultSeed:     *faultSeed,
		audit:         *audit,
		durable:       *durable,
	})
	if *metrics {
		fmt.Fprint(errw, c.Metrics().String())
	}
	switch {
	case err == nil:
		return 0
	case isUsage(err):
		fmt.Fprintf(errw, "dpmctl: %v\n", err)
		fs.Usage()
		return 2
	default:
		fmt.Fprintf(errw, "dpmctl: %v\n", err)
		return 1
	}
}

type commandOpts struct {
	serverTimeout time.Duration
	format        string
	faults        string
	faultSeed     int64
	audit         bool
	durable       bool
}

// usageError marks failures of the command line itself, not the call.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }
func usagef(format string, a ...any) error {
	return &usageError{msg: fmt.Sprintf(format, a...)}
}
func isUsage(err error) bool {
	var ue *usageError
	return errors.As(err, &ue)
}

// dispatch executes one subcommand against the client.
func dispatch(ctx context.Context, c *client.Client, fs *flag.FlagSet, out io.Writer, opts commandOpts) error {
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "sim":
		if len(rest) < 1 || len(rest) > 2 {
			return usagef("sim wants BENCH [SCHEME], got %v", rest)
		}
		req := client.SimRequest{Bench: rest[0], Faults: opts.faults, FaultSeed: opts.faultSeed, Audit: opts.audit}
		if len(rest) == 2 {
			req.Scheme = rest[1]
		}
		res, err := c.Sim(ctx, req, opts.serverTimeout)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bench=%s scheme=%s energy_j=%.6f exec_ms=%.3f wait_ms=%.3f requests=%d power_ops=%d\n",
			res.Bench, res.Scheme, res.EnergyJ, res.ExecMS, res.WaitMS, res.Requests, res.PowerOps)
		return nil
	case "experiment":
		if len(rest) != 1 {
			return usagef("experiment wants exactly one ID, got %v", rest)
		}
		res, err := c.Experiment(ctx, client.ExperimentRequest{
			ID: rest[0], Format: opts.format,
			Faults: opts.faults, FaultSeed: opts.faultSeed,
			Audit: opts.audit, Durable: opts.durable,
		}, opts.serverTimeout)
		if err != nil {
			return err
		}
		// Verbatim: these bytes are identical to an offline dpmexp render.
		_, werr := out.Write(res.Body)
		return werr
	case "experiments", "benchmarks":
		if len(rest) != 0 {
			return usagef("%s takes no arguments, got %v", cmd, rest)
		}
		list := c.ListExperiments
		if cmd == "benchmarks" {
			list = c.ListBenchmarks
		}
		names, err := list(ctx)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(out, n)
		}
		return nil
	case "status":
		if len(rest) != 0 {
			return usagef("status takes no arguments, got %v", rest)
		}
		res, err := c.Do(ctx, "GET", "/status", nil, "")
		if err != nil {
			return err
		}
		_, werr := out.Write(res.Body)
		return werr
	case "health":
		if len(rest) != 0 {
			return usagef("health takes no arguments, got %v", rest)
		}
		if err := c.Health(ctx); err != nil {
			return err
		}
		fmt.Fprintln(out, "ok")
		return nil
	default:
		return usagef("unknown command %q (sim, experiment, experiments, benchmarks, status, health)", cmd)
	}
}
