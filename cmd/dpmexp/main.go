// Command dpmexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmexp -run all
//	dpmexp -run fig3
//	dpmexp -list
//
// Observability:
//
//	-metrics-out FILE   write Prometheus text-format metrics for the
//	                    whole run (simulation latency histograms,
//	                    per-disk residency, instance-cache hit/miss/
//	                    singleflight counts, worker-pool utilization)
//	                    after the experiments complete; "-" writes to
//	                    stderr so stdout keeps only the tables. Files
//	                    are written atomically (tmp + fsync + rename).
//	-events-out FILE    write the suite's decision-provenance event
//	                    log as JSON Lines after the experiments (every
//	                    power decision with trigger, inputs, measured
//	                    idle, and energy regret, plus bail-outs, fault
//	                    lifecycle, retries, and journal hits/misses);
//	                    "-" writes to stderr. Query with dpmquery.
//	-http ADDR          serve live introspection while the suite runs:
//	                    /metrics (Prometheus), /status (JSON snapshot
//	                    of the runner's gauges), /debug/pprof/
//	-v / -q             debug-level / warnings-only structured logs
//
// Robustness:
//
//	-journal FILE       record every completed experiment cell to a
//	                    crash-safe append-only journal (fsynced and
//	                    CRC-protected per record)
//	-resume             reopen the -journal file and skip cells that
//	                    already hold a valid record; output is
//	                    byte-identical to an uninterrupted run. A run
//	                    that dies on a journal I/O error (disk full,
//	                    torn write) keeps every fsynced cell: -resume
//	                    recovers them, recomputing only the rest
//	-audit              verify conservation invariants (energy and
//	                    time bookkeeping, disk state-machine legality)
//	                    after every simulation; fail loudly on drift
//	-retries N          re-run a failing or panicking cell up to N
//	                    extra times before reporting its error
//	-timeout D          overall wall-clock budget (e.g. 5m); expiry
//	                    cancels in-flight cells like SIGINT does, and
//	                    partial metrics, events, and journal records
//	                    are still flushed before the non-zero exit
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"sdpm"
	"sdpm/internal/cli"
	"sdpm/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text or csv")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format metrics to this file after the experiments (- for stderr)")
	eventsOut := flag.String("events-out", "", "write the decision-provenance event log as JSON Lines to this file after the experiments (- for stderr); query with dpmquery")
	eventsCap := flag.Int("events-cap", 0, "event ring capacity for -events-out (0 = default; oldest events drop past the cap)")
	httpAddr := flag.String("http", "", "serve live /metrics, /status, and /debug/pprof on this address (e.g. :6060) while the experiments run")
	faultSpec := flag.String("faults", "", "fault-injection spec: preset (off/light/moderate/heavy), key=value list, or @file; empty = fault-free")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed; the same seed reproduces the exact fault pattern at any -workers count")
	journalPath := flag.String("journal", "", "record completed experiment cells to this crash-safe journal file")
	resume := flag.Bool("resume", false, "reopen the -journal file and skip cells it already holds (requires -journal)")
	audit := flag.Bool("audit", false, "verify conservation invariants after every simulation; fail on any violation")
	retries := flag.Int("retries", 0, "extra attempts for a failing or panicking experiment cell")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget for the run (e.g. 90s, 5m); on expiry in-flight cells cancel cleanly and partial metrics/events/journal records are still flushed before the non-zero exit (0 = no limit)")
	batch := flag.Bool("batch", true, "batched steady-state simulation over compiled traces; -batch=false forces the general per-request path (output is byte-identical)")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmexp", *verbose, *quiet)

	if *list {
		for _, id := range sdpm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	// SIGINT/SIGTERM — and the -timeout budget, when set — cancel
	// in-flight experiment cells; partial metrics are still flushed
	// before the process exits non-zero.
	ctx, stop := cli.RootContext(*timeout)
	defer stop()
	if *resume && *journalPath == "" {
		cli.Fatal(fmt.Errorf("-resume requires -journal"))
	}
	opts := sdpm.Options{
		Format: *format, Workers: *workers, Ctx: ctx,
		FaultSpec: *faultSpec, FaultSeed: *faultSeed,
		Journal: *journalPath, Resume: *resume,
		Audit: *audit, Retries: *retries,
		DisableBatch: !*batch,
	}
	var metricsBuf *bytes.Buffer
	if *metricsOut != "" {
		// The tables own stdout; "-" routes the exposition to stderr.
		// A file destination is buffered and written atomically below,
		// so a crash mid-dump never leaves a truncated metrics file.
		var dst io.Writer = os.Stderr
		if *metricsOut != "-" {
			metricsBuf = &bytes.Buffer{}
			dst = metricsBuf
		}
		opts.Metrics = dst
	}
	var eventsBuf *bytes.Buffer
	if *eventsOut != "" {
		var dst io.Writer = os.Stderr
		if *eventsOut != "-" {
			eventsBuf = &bytes.Buffer{}
			dst = eventsBuf
		}
		opts.Events = dst
		opts.EventCapacity = *eventsCap
	}
	if *httpAddr != "" {
		// A shared collector lets the endpoint scrape the suite live;
		// -metrics-out (if also set) dumps the same collector at the end.
		opts.Collector = obs.New()
		id := *run
		_, shutdown, err := cli.StartDebugServer(*httpAddr, opts.Collector, func() any {
			return map[string]any{"tool": "dpmexp", "run": id}
		})
		if err != nil {
			cli.Fatal(err)
		}
		defer shutdown()
	}
	runErr := sdpm.RunExperiments(*run, os.Stdout, opts)
	if metricsBuf != nil {
		// RunExperiments wrote (possibly partial) metrics even on
		// failure or cancellation; flush whatever it produced.
		err := cli.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			_, werr := w.Write(metricsBuf.Bytes())
			return werr
		})
		if err != nil && runErr == nil {
			runErr = err
		}
		slog.Debug("metrics written", "path", *metricsOut)
	}
	if eventsBuf != nil {
		// Like metrics, the (possibly partial) event log is flushed
		// even when the run failed or was canceled.
		err := cli.WriteFileAtomic(*eventsOut, func(w io.Writer) error {
			_, werr := w.Write(eventsBuf.Bytes())
			return werr
		})
		if err != nil && runErr == nil {
			runErr = err
		}
		slog.Debug("event log written", "path", *eventsOut)
	}
	if runErr != nil {
		cli.Fatal(runErr)
	}
}
