// Command dpmexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmexp -run all
//	dpmexp -run fig3
//	dpmexp -list
//
// Observability:
//
//	-metrics-out FILE   write Prometheus text-format metrics for the
//	                    whole run (simulation latency histograms,
//	                    per-disk residency, instance-cache hit/miss/
//	                    singleflight counts, worker-pool utilization)
//	                    after the experiments complete; "-" writes to
//	                    stderr so stdout keeps only the tables
//	-v / -q             debug-level / warnings-only structured logs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"sdpm"
	"sdpm/internal/cli"
)

func main() {
	run := flag.String("run", "all", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text or csv")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format metrics to this file after the experiments (- for stderr)")
	faultSpec := flag.String("faults", "", "fault-injection spec: preset (off/light/moderate/heavy), key=value list, or @file; empty = fault-free")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed; the same seed reproduces the exact fault pattern at any -workers count")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmexp", *verbose, *quiet)

	if *list {
		for _, id := range sdpm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	// SIGINT/SIGTERM cancel in-flight experiment cells; partial
	// metrics are still flushed before the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := sdpm.Options{
		Format: *format, Workers: *workers, Ctx: ctx,
		FaultSpec: *faultSpec, FaultSeed: *faultSeed,
	}
	var metricsFile *os.File
	if *metricsOut != "" {
		// The tables own stdout; "-" routes the exposition to stderr.
		var dst io.Writer = os.Stderr
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				cli.Fatal(err)
			}
			metricsFile = f
			dst = f
		}
		opts.Metrics = dst
	}
	runErr := sdpm.RunExperiments(*run, os.Stdout, opts)
	if metricsFile != nil {
		// RunExperiments wrote (possibly partial) metrics even on
		// failure or cancellation; always close the file.
		if err := metricsFile.Close(); err != nil && runErr == nil {
			runErr = err
		}
		slog.Debug("metrics written", "path", *metricsOut)
	}
	if runErr != nil {
		cli.Fatal(runErr)
	}
}
