// Command dpmexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmexp -run all
//	dpmexp -run fig3
//	dpmexp -list
//
// Observability:
//
//	-metrics-out FILE   write Prometheus text-format metrics for the
//	                    whole run (simulation latency histograms,
//	                    per-disk residency, instance-cache hit/miss/
//	                    singleflight counts, worker-pool utilization)
//	                    after the experiments complete; "-" writes to
//	                    stderr so stdout keeps only the tables
//	-v / -q             debug-level / warnings-only structured logs
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"sdpm"
	"sdpm/internal/cli"
)

func main() {
	run := flag.String("run", "all", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text or csv")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format metrics to this file after the experiments (- for stderr)")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmexp", *verbose, *quiet)

	if *list {
		for _, id := range sdpm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	opts := sdpm.Options{Format: *format, Workers: *workers}
	var metricsFile *os.File
	if *metricsOut != "" {
		// The tables own stdout; "-" routes the exposition to stderr.
		var dst io.Writer = os.Stderr
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				cli.Fatal(err)
			}
			metricsFile = f
			dst = f
		}
		opts.Metrics = dst
	}
	if err := sdpm.RunExperiments(*run, os.Stdout, opts); err != nil {
		cli.Fatal(err)
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			cli.Fatal(err)
		}
		slog.Debug("metrics written", "path", *metricsOut)
	}
}
