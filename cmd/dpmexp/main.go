// Command dpmexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dpmexp -run all
//	dpmexp -run fig3
//	dpmexp -list
package main

import (
	"flag"
	"fmt"
	"os"

	"sdpm"
)

func main() {
	run := flag.String("run", "all", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text or csv")
	workers := flag.Int("workers", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range sdpm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	opts := sdpm.Options{Format: *format, Workers: *workers}
	if err := sdpm.RunExperiments(*run, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "dpmexp:", err)
		os.Exit(1)
	}
}
