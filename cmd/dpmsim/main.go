// Command dpmsim runs the disk power simulator on a textual I/O
// trace under a chosen power management policy and reports energy,
// execution time, and per-disk statistics.
//
// Usage:
//
//	dpmtrace -bench swim > swim.trace
//	dpmsim -trace swim.trace -policy drpm
//	dpmsim -trace swim.trace -policy embedded   # honor trace power ops
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdpm/internal/disk"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "trace file (textual format; - for stdin)")
	pol := flag.String("policy", "base", "policy: base, tpm, itpm, drpm, idrpm, or embedded (execute the trace's power ops)")
	perDisk := flag.Bool("perdisk", false, "print per-disk statistics")
	openLoop := flag.Bool("openloop", false, "open-loop replay (arrival-driven, per-disk FIFO) instead of closed-loop execution")
	distSeek := flag.Bool("distseek", false, "distance-dependent seek times instead of the datasheet average")
	timeline := flag.Int("timeline", 0, "print up to N timeline segments per disk")
	flag.Parse()

	if *traceFile == "" {
		fail(fmt.Errorf("-trace is required"))
	}
	var src *os.File
	if *traceFile == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	tr, err := trace.Decode(src)
	if err != nil {
		fail(err)
	}

	p := disk.DefaultParams()
	cfg := sim.Config{
		Disk:                p,
		PowerCallOverheadMS: sim.DefaultPowerCallOverheadMS,
		DistanceAwareSeek:   *distSeek,
		RecordTimeline:      *timeline > 0,
	}
	switch strings.ToLower(*pol) {
	case "base":
		cfg.Policy = policy.NewBase()
		cfg.IgnorePowerOps = true
	case "tpm":
		cfg.Policy = policy.NewTPM(p, 0)
		cfg.IgnorePowerOps = true
	case "itpm":
		cfg.Policy = policy.NewITPM(p)
		cfg.IgnorePowerOps = true
	case "drpm":
		cfg.Policy = policy.NewDRPM(p, tr.NumDisks)
		cfg.IgnorePowerOps = true
	case "idrpm":
		cfg.Policy = policy.NewIDRPM(p)
		cfg.IgnorePowerOps = true
	case "embedded":
		// No policy: the trace's explicit power ops drive the disks.
	default:
		fail(fmt.Errorf("unknown policy %q", *pol))
	}

	var res *sim.Result
	if *openLoop {
		if cfg.Policy == nil {
			fail(fmt.Errorf("open-loop replay cannot execute embedded power ops; pick a policy"))
		}
		res, err = sim.RunOpenLoop(tr, cfg)
	} else {
		res, err = sim.Run(tr, cfg)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("program      %s\n", tr.Program)
	fmt.Printf("policy       %s\n", *pol)
	fmt.Printf("disks        %d\n", tr.NumDisks)
	fmt.Printf("requests     %d\n", res.Requests)
	fmt.Printf("power ops    %d\n", res.PowerOps)
	fmt.Printf("energy       %.2f J\n", res.EnergyJ)
	fmt.Printf("exec time    %.2f ms\n", res.ExecMS)
	fmt.Printf("wait time    %.2f ms\n", res.TotalWaitMS)
	fmt.Printf("avg power    %.2f W\n", res.EnergyJ/res.ExecMS*1e3)
	if *timeline > 0 {
		for d, segs := range res.Timelines {
			fmt.Printf("disk%d timeline (%d segments):\n", d, len(segs))
			for i, sg := range segs {
				if i >= *timeline {
					fmt.Printf("  ... %d more\n", len(segs)-i)
					break
				}
				mode := sg.Stat.String()
				if sg.Active {
					mode = "service"
				}
				fmt.Printf("  %10.2f..%10.2f ms  %-8s %5d RPM  %6.2f W\n",
					sg.StartMS, sg.EndMS, mode, sg.RPM, sg.PowerW)
			}
		}
	}
	if *perDisk {
		fmt.Printf("%-5s %10s %10s %10s %10s %10s %6s %5s %5s %6s\n",
			"disk", "energy(J)", "active(ms)", "idle(ms)", "stby(ms)", "trans(ms)", "reqs", "down", "up", "shift")
		for d, st := range res.Disks {
			fmt.Printf("%-5d %10.2f %10.1f %10.1f %10.1f %10.1f %6d %5d %5d %6d\n",
				d, st.EnergyJ, st.ActiveMS, st.IdleMS, st.StandbyMS, st.TransitionMS,
				st.Requests, st.SpinDowns, st.SpinUps, st.RPMShifts)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dpmsim:", err)
	os.Exit(1)
}
