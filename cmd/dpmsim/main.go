// Command dpmsim runs the disk power simulator on a textual I/O
// trace under a chosen power management policy and reports energy,
// execution time, and per-disk statistics.
//
// Usage:
//
//	dpmtrace -bench swim > swim.trace
//	dpmsim -trace swim.trace -policy drpm
//	dpmsim -trace swim.trace -policy embedded   # honor trace power ops
//	dpmsim -trace swim.trace -policy all        # compare every policy
//
// Observability:
//
//	-metrics-out FILE   write Prometheus text-format metrics (request
//	                    latency histograms, per-disk RPM/state
//	                    residency, power ops, spin-up mispredictions)
//	                    after the run; "-" writes them to stdout and
//	                    moves the human-readable report to stderr so
//	                    stdout stays pure Prometheus exposition
//	-trace-out FILE     write a Chrome trace-event / Perfetto JSON
//	                    timeline of the run (open in ui.perfetto.dev
//	                    or chrome://tracing); single-policy runs only.
//	                    With -events-out, decision and fault events
//	                    are merged in as annotated instants
//	-events-out FILE    write the decision-provenance event log as
//	                    JSON Lines after the run: every spin-down/
//	                    spin-up/RPM-shift with its trigger, inputs,
//	                    measured idle, and energy regret, plus fault
//	                    lifecycle and batching bail-outs; query the
//	                    file with dpmquery. "-" writes to stdout and
//	                    moves the report to stderr
//	-http ADDR          serve live introspection for the run's
//	                    duration: /metrics (Prometheus), /status
//	                    (JSON snapshot), /debug/pprof/
//	-audit              verify conservation invariants (energy/time
//	                    bookkeeping, state-machine legality) after the
//	                    run; fail loudly on any violation
//	-timeout D          overall wall-clock budget (e.g. 90s); expiry
//	                    cancels in-flight comparison runs like SIGINT
//	                    does, with partial metrics still flushed
//	-v / -q             debug-level / warnings-only structured logs
//
// File outputs (-metrics-out, -trace-out) are written atomically:
// a temp file is fsynced and renamed over the destination.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"sdpm/internal/cli"
	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/policy"
	"sdpm/internal/runner"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// allPolicies is the canonical order of the comparison mode.
var allPolicies = []string{"base", "tpm", "itpm", "drpm", "idrpm"}

func main() {
	traceFile := flag.String("trace", "", "trace file (textual format; - for stdin)")
	pol := flag.String("policy", "base", "policy: base, tpm, itpm, drpm, idrpm, embedded (execute the trace's power ops), or all (compare every policy)")
	perDisk := flag.Bool("perdisk", false, "print per-disk statistics")
	openLoop := flag.Bool("openloop", false, "open-loop replay (arrival-driven, per-disk FIFO) instead of closed-loop execution")
	distSeek := flag.Bool("distseek", false, "distance-dependent seek times instead of the datasheet average")
	timeline := flag.Int("timeline", 0, "print up to N timeline segments per disk")
	workers := flag.Int("workers", 0, "worker goroutines for -policy all (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format metrics to this file after the run (- for stdout; the report then moves to stderr)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event / Perfetto JSON timeline to this file (single-policy runs; decision/fault events are merged in when -events-out is also set)")
	eventsOut := flag.String("events-out", "", "write the decision-provenance event log as JSON Lines to this file after the run (- for stdout; the report then moves to stderr); query with dpmquery")
	eventsCap := flag.Int("events-cap", 0, "event ring capacity for -events-out (0 = default; oldest events drop past the cap)")
	httpAddr := flag.String("http", "", "serve live /metrics, /status, and /debug/pprof on this address (e.g. :6060) for the run's duration")
	faultSpec := flag.String("faults", "", "fault-injection spec: preset (off/light/moderate/heavy), key=value list, or @file; empty = fault-free")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed; the same seed reproduces the exact fault pattern")
	audit := flag.Bool("audit", false, "verify conservation invariants (energy/time bookkeeping, state-machine legality) after the run; fail on any violation")
	batch := flag.Bool("batch", true, "batched steady-state executor over the trace's compiled runs; -batch=false forces the general per-request path (results are bit-identical)")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget for the run (e.g. 90s); on expiry in-flight comparison runs cancel cleanly and partial metrics/events are still flushed before the non-zero exit (0 = no limit)")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmsim", *verbose, *quiet)

	if *traceFile == "" {
		cli.Fatal(fmt.Errorf("-trace is required"))
	}
	var src *os.File
	if *traceFile == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*traceFile)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	tr, err := trace.Decode(src)
	if err != nil {
		cli.Fatal(err)
	}
	slog.Debug("trace loaded", "program", tr.Program, "events", len(tr.Events), "disks", tr.NumDisks)

	var coll *obs.Collector
	if *metricsOut != "" || *httpAddr != "" {
		coll = obs.New()
	}
	var evLog *events.Log
	if *eventsOut != "" {
		evLog = events.NewLog(*eventsCap)
	}
	// With metrics or events on stdout, the human-readable report
	// moves to stderr so stdout remains pure machine output.
	report := io.Writer(os.Stdout)
	if *metricsOut == "-" || *eventsOut == "-" {
		report = os.Stderr
	}

	p := disk.DefaultParams()
	baseCfg := sim.Config{
		Disk:                p,
		PowerCallOverheadMS: sim.DefaultPowerCallOverheadMS,
		DistanceAwareSeek:   *distSeek,
		RecordTimeline:      *timeline > 0 || *traceOut != "",
		Audit:               *audit,
		Obs:                 coll,
		Events:              evLog,
		DisableBatch:        !*batch,
	}
	if *httpAddr != "" {
		prog, pol := tr.Program, *pol
		_, shutdown, err := cli.StartDebugServer(*httpAddr, coll, func() any {
			return map[string]any{"tool": "dpmsim", "program": prog, "policy": pol}
		})
		if err != nil {
			cli.Fatal(err)
		}
		defer shutdown()
	}
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			cli.Fatal(err)
		}
		if fc.Enabled() {
			plan, err := faults.New(*faultSeed, tr.NumDisks, fc)
			if err != nil {
				cli.Fatal(err)
			}
			baseCfg.Faults = plan
			slog.Debug("faults armed", "spec", faults.FormatSpec(fc), "seed", *faultSeed)
		}
	}

	// SIGINT/SIGTERM — and the -timeout budget, when set — cancel
	// in-flight comparison runs; metrics accumulated so far are still
	// flushed before the non-zero exit.
	ctx, stop := cli.RootContext(*timeout)
	defer stop()

	if strings.EqualFold(*pol, "all") {
		if *traceOut != "" {
			slog.Warn("-trace-out applies to single-policy runs; ignoring it with -policy all")
		}
		if err := runAll(ctx, report, tr, baseCfg, *openLoop, *workers, coll); err != nil {
			writeMetrics(*metricsOut, coll)
			writeEvents(*eventsOut, evLog)
			cli.Fatal(err)
		}
		writeMetrics(*metricsOut, coll)
		writeEvents(*eventsOut, evLog)
		return
	}

	cfg := baseCfg
	cfg.Policy, cfg.IgnorePowerOps, err = policyFor(*pol, p, tr.NumDisks)
	if err != nil {
		cli.Fatal(err)
	}
	res, err := runOnce(tr, cfg, *openLoop)
	if err != nil {
		writeMetrics(*metricsOut, coll)
		writeEvents(*eventsOut, evLog)
		cli.Fatal(err)
	}
	slog.Debug("run complete", "policy", *pol, "energy_j", res.EnergyJ, "exec_ms", res.ExecMS)
	fmt.Fprintf(report, "program      %s\n", tr.Program)
	fmt.Fprintf(report, "policy       %s\n", *pol)
	fmt.Fprintf(report, "scheme       %s\n", res.Scheme)
	fmt.Fprintf(report, "disks        %d\n", tr.NumDisks)
	fmt.Fprintf(report, "requests     %d\n", res.Requests)
	fmt.Fprintf(report, "power ops    %d\n", res.PowerOps)
	fmt.Fprintf(report, "energy       %.2f J\n", res.EnergyJ)
	fmt.Fprintf(report, "exec time    %.2f ms\n", res.ExecMS)
	fmt.Fprintf(report, "wait time    %.2f ms\n", res.TotalWaitMS)
	fmt.Fprintf(report, "avg power    %.2f W\n", res.EnergyJ/res.ExecMS*1e3)
	if baseCfg.Faults != nil {
		var fails, retries, timeouts, fallbacks, remaps, degraded int
		var extraMS float64
		for _, st := range res.Disks {
			fails += st.SpinUpFailures
			retries += st.SpinUpRetries
			timeouts += st.SpinUpTimeouts
			fallbacks += st.Fallbacks
			remaps += st.RemapHits
			degraded += st.DegradedHits
			extraMS += st.DegradedExtraMS
		}
		fmt.Fprintf(report, "faults       %d spin-up failures, %d retries, %d timeouts, %d fallbacks\n",
			fails, retries, timeouts, fallbacks)
		fmt.Fprintf(report, "             %d remap hits, %d degraded services (+%.2f ms transfer)\n",
			remaps, degraded, extraMS)
	}
	if *timeline > 0 {
		for d, segs := range res.Timelines {
			fmt.Fprintf(report, "disk%d timeline (%d segments):\n", d, len(segs))
			for i, sg := range segs {
				if i >= *timeline {
					fmt.Fprintf(report, "  ... %d more\n", len(segs)-i)
					break
				}
				mode := sg.Stat.String()
				if sg.Active {
					mode = "service"
				}
				fmt.Fprintf(report, "  %10.2f..%10.2f ms  %-8s %5d RPM  %6.2f W\n",
					sg.StartMS, sg.EndMS, mode, sg.RPM, sg.PowerW)
			}
		}
	}
	if *perDisk {
		fmt.Fprintf(report, "%-5s %10s %10s %10s %10s %10s %6s %5s %5s %6s\n",
			"disk", "energy(J)", "active(ms)", "idle(ms)", "stby(ms)", "trans(ms)", "reqs", "down", "up", "shift")
		for d, st := range res.Disks {
			fmt.Fprintf(report, "%-5d %10.2f %10.1f %10.1f %10.1f %10.1f %6d %5d %5d %6d\n",
				d, st.EnergyJ, st.ActiveMS, st.IdleMS, st.StandbyMS, st.TransitionMS,
				st.Requests, st.SpinDowns, st.SpinUps, st.RPMShifts)
		}
	}
	if *traceOut != "" {
		writeTraceFile(*traceOut, res, evLog)
	}
	writeMetrics(*metricsOut, coll)
	writeEvents(*eventsOut, evLog)
}

// writeMetrics dumps the collector in Prometheus text format to the
// named file ("-" for stdout); empty name is a no-op. File writes go
// through a temp-file + rename so a crash never truncates the dump.
func writeMetrics(path string, coll *obs.Collector) {
	if path == "" || coll == nil {
		return
	}
	var err error
	if path == "-" {
		err = obs.WritePrometheus(os.Stdout, coll)
	} else {
		err = cli.WriteFileAtomic(path, func(w io.Writer) error {
			return obs.WritePrometheus(w, coll)
		})
	}
	if err != nil {
		cli.Fatal(err)
	}
	slog.Debug("metrics written", "path", path)
}

// writeEvents dumps the decision-provenance event log as JSON Lines
// to the named file ("-" for stdout); empty name or nil log is a
// no-op. File writes are atomic (temp file + fsync + rename).
func writeEvents(path string, log *events.Log) {
	if path == "" || log == nil {
		return
	}
	evs := log.Events()
	if n := log.Dropped(); n > 0 {
		slog.Warn("event ring overflowed; oldest events dropped", "dropped", n, "kept", len(evs))
	}
	var err error
	if path == "-" {
		err = events.WriteJSONL(os.Stdout, evs)
	} else {
		err = cli.WriteFileAtomic(path, func(w io.Writer) error {
			return events.WriteJSONL(w, evs)
		})
	}
	if err != nil {
		cli.Fatal(err)
	}
	slog.Debug("event log written", "path", path, "events", len(evs))
}

// writeTraceFile dumps the run's recorded timelines as Chrome
// trace-event JSON ("-" for stdout); file writes are atomic. When an
// event log was collected, its decision and fault events are merged
// in as annotated instants on the disk tracks.
func writeTraceFile(path string, res *sim.Result, log *events.Log) {
	write := func(w io.Writer) error {
		if log != nil {
			return sim.WriteChromeTraceAnnotated(w, res, log.Events())
		}
		return sim.WriteChromeTrace(w, res)
	}
	var err error
	if path == "-" {
		err = write(os.Stdout)
	} else {
		err = cli.WriteFileAtomic(path, write)
	}
	if err != nil {
		cli.Fatal(err)
	}
	slog.Debug("trace timeline written", "path", path)
}

// policyFor builds the named policy; the second result says whether
// the trace's embedded power ops must be dropped (true for every
// reactive policy, false for "embedded").
func policyFor(name string, p disk.Params, numDisks int) (sim.Policy, bool, error) {
	switch strings.ToLower(name) {
	case "base":
		return policy.NewBase(), true, nil
	case "tpm":
		return policy.NewTPM(p, 0), true, nil
	case "itpm":
		return policy.NewITPM(p), true, nil
	case "drpm":
		return policy.NewDRPM(p, numDisks), true, nil
	case "idrpm":
		return policy.NewIDRPM(p), true, nil
	case "embedded":
		// No policy: the trace's explicit power ops drive the disks.
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("unknown policy %q", name)
	}
}

// runOnce executes one simulation in the selected loop mode.
func runOnce(tr *trace.Trace, cfg sim.Config, openLoop bool) (*sim.Result, error) {
	if openLoop {
		if cfg.Policy == nil {
			return nil, fmt.Errorf("open-loop replay cannot execute embedded power ops; pick a policy")
		}
		return sim.RunOpenLoop(tr, cfg)
	}
	return sim.Run(tr, cfg)
}

// runAll simulates the trace under every reactive policy — one worker
// per policy, each with its own policy state — and prints a
// comparison table in canonical order (identical for any worker
// count). All runs report into the shared collector when metrics are
// requested.
func runAll(ctx context.Context, report io.Writer, tr *trace.Trace, baseCfg sim.Config, openLoop bool, workers int, coll *obs.Collector) error {
	results := make([]*sim.Result, len(allPolicies))
	err := runner.New(workers).Observe(coll).WithContext(ctx).Map(len(allPolicies), func(i int) error {
		cfg := baseCfg
		cfg.RecordTimeline = false
		var err error
		cfg.Policy, cfg.IgnorePowerOps, err = policyFor(allPolicies[i], baseCfg.Disk, tr.NumDisks)
		if err != nil {
			return err
		}
		results[i], err = runOnce(tr, cfg, openLoop)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(report, "program      %s\n", tr.Program)
	fmt.Fprintf(report, "disks        %d\n", tr.NumDisks)
	fmt.Fprintf(report, "%-8s %12s %12s %12s %10s\n", "policy", "energy(J)", "exec(ms)", "wait(ms)", "power(W)")
	for i, name := range allPolicies {
		r := results[i]
		fmt.Fprintf(report, "%-8s %12.2f %12.2f %12.2f %10.2f\n",
			name, r.EnergyJ, r.ExecMS, r.TotalWaitMS, r.EnergyJ/r.ExecMS*1e3)
	}
	return nil
}
