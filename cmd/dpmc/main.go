// Command dpmc is the compiler front end: it parses a DSL program
// (or loads a built-in benchmark), optionally applies one of the
// Section 6 code/layout transformations, and either prints the disk
// access pattern, prints the transformed program, or emits the
// power-management-instrumented trace.
//
// Usage:
//
//	dpmc -bench swim -dap                      # print the DAP
//	dpmc -dsl prog.sdpm -mode drpm -o out.trace # instrument
//	dpmc -bench mesa -version TL+DL -print      # show transformed code
//
// -v enables debug-level structured logs on stderr; -q keeps only
// warnings and errors.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"sdpm"
	"sdpm/internal/cli"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name")
	dslFile := flag.String("dsl", "", "DSL program file")
	version := flag.String("version", "orig", "code version: orig, LF, TL, LF+DL, TL+DL")
	mode := flag.String("mode", "drpm", "instrumentation mode: tpm or drpm")
	dap := flag.Bool("dap", false, "print the disk access pattern and exit")
	show := flag.Bool("print", false, "print the (transformed) program in DSL form and exit")
	annotate := flag.Bool("calls", false, "print the program with the inserted power calls as comments and exit")
	out := flag.String("o", "", "write the instrumented trace to this file (default stdout)")
	disks := flag.Int("disks", 8, "number of disks")
	unit := flag.Int64("unit", 64<<10, "stripe unit bytes")
	layoutSpecs := flag.String("layout", "", "per-array layouts: array=start:factor:unitKB,...")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmc", *verbose, *quiet)

	w, err := cli.LoadWorkload(*bench, *dslFile)
	if err != nil {
		cli.Fatal(err)
	}
	cfg := sdpm.DefaultConfig()
	cfg.NumDisks = *disks
	cfg.StripeUnitBytes = *unit
	if err := cli.ApplyLayoutSpecs(w, *layoutSpecs); err != nil {
		cli.Fatal(err)
	}

	if *version != string(sdpm.Orig) {
		tw, applied, err := w.Transform(sdpm.Version(*version), cfg)
		if err != nil {
			cli.Fatal(err)
		}
		if !applied {
			slog.Warn("transformation not applicable; program unchanged", "workload", w.Name(), "version", *version)
		}
		w = tw
	}

	switch {
	case *annotate:
		scheme := sdpm.CMDRPM
		if *mode == "tpm" {
			scheme = sdpm.CMTPM
		}
		out, err := w.AnnotatedDSL(scheme, cfg)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Print(out)
	case *show:
		fmt.Print(w.DSL())
	case *dap:
		d, err := w.DAP(cfg)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Print(d)
	default:
		scheme := sdpm.CMDRPM
		if *mode == "tpm" {
			scheme = sdpm.CMTPM
		} else if *mode != "drpm" {
			cli.Fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				cli.Fatal(err)
			}
			defer f.Close()
			dst = f
		}
		if err := w.WriteTrace(dst, scheme, cfg); err != nil {
			cli.Fatal(err)
		}
	}
}
