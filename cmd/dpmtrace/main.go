// Command dpmtrace generates disk I/O traces from the built-in
// benchmarks or from a DSL program, in the textual trace format the
// simulator consumes.
//
// Usage:
//
//	dpmtrace -bench swim > swim.trace
//	dpmtrace -dsl prog.sdpm -scheme CMDRPM -o prog.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"sdpm"
	"sdpm/internal/cli"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name")
	dslFile := flag.String("dsl", "", "DSL program file")
	scheme := flag.String("scheme", "Base", "scheme: Base emits the plain trace; CMTPM/CMDRPM emit instrumented traces")
	disks := flag.Int("disks", 8, "number of disks")
	unit := flag.Int64("unit", 64<<10, "stripe unit bytes")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w, err := cli.LoadWorkload(*bench, *dslFile)
	if err != nil {
		fail(err)
	}
	cfg := sdpm.DefaultConfig()
	cfg.NumDisks = *disks
	cfg.StripeUnitBytes = *unit

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		dst = f
	}
	if err := w.WriteTrace(dst, sdpm.Scheme(*scheme), cfg); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dpmtrace:", err)
	os.Exit(1)
}
