// Command dpmtrace generates disk I/O traces from the built-in
// benchmarks or from a DSL program, in the textual trace format the
// simulator consumes.
//
// Usage:
//
//	dpmtrace -bench swim > swim.trace
//	dpmtrace -dsl prog.sdpm -scheme CMDRPM -o prog.trace
//
// -v enables debug-level structured logs on stderr; -q keeps only
// warnings and errors.
package main

import (
	"flag"
	"log/slog"
	"os"

	"sdpm"
	"sdpm/internal/cli"
)

func main() {
	bench := flag.String("bench", "", "built-in benchmark name")
	dslFile := flag.String("dsl", "", "DSL program file")
	scheme := flag.String("scheme", "Base", "scheme: Base emits the plain trace; CMTPM/CMDRPM emit instrumented traces")
	disks := flag.Int("disks", 8, "number of disks")
	unit := flag.Int64("unit", 64<<10, "stripe unit bytes")
	out := flag.String("o", "", "output file (default stdout)")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("dpmtrace", *verbose, *quiet)

	w, err := cli.LoadWorkload(*bench, *dslFile)
	if err != nil {
		cli.Fatal(err)
	}
	slog.Debug("workload loaded", "name", w.Name(), "scheme", *scheme, "disks", *disks)
	cfg := sdpm.DefaultConfig()
	cfg.NumDisks = *disks
	cfg.StripeUnitBytes = *unit

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := w.WriteTrace(dst, sdpm.Scheme(*scheme), cfg); err != nil {
		cli.Fatal(err)
	}
}
