package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp writes content to a fresh file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// validLog is a minimal but well-formed JSONL event log.
const validLog = `{"t_ms":1,"kind":"spin_down","policy":"tpm","disk":0}
{"t_ms":2,"kind":"spin_up","policy":"tpm","disk":0}
`

// Exit-code contract, matching benchdiff: 0 success, 1 data error
// (log unreadable or corrupt), 2 usage error (bad flags, missing -in,
// stray positional arguments).
func TestRunExitCodes(t *testing.T) {
	log := writeTemp(t, "ok.jsonl", validLog)
	corrupt := writeTemp(t, "bad.jsonl", "not json at all\n")
	missing := filepath.Join(t.TempDir(), "nope.jsonl")

	cases := []struct {
		name string
		args []string
		want int
		errw string // substring expected on stderr ("" = don't care)
	}{
		{"summary ok", []string{"-in", log}, 0, ""},
		{"top ok", []string{"-in", log, "-top", "5"}, 0, ""},
		{"diff ok", []string{"-in", log, "-diff", log}, 0, ""},
		{"filters ok", []string{"-in", log, "-kind", "spin_up", "-policy", "tpm", "-disk", "0"}, 0, ""},
		{"missing file", []string{"-in", missing}, 1, "no such file"},
		{"corrupt log", []string{"-in", corrupt}, 1, ""},
		{"corrupt diff log", []string{"-in", log, "-diff", corrupt}, 1, ""},
		{"missing -in", nil, 2, "-in is required"},
		{"unknown flag", []string{"-in", log, "-frobnicate"}, 2, ""},
		{"bad flag value", []string{"-in", log, "-top", "x"}, 2, ""},
		{"stray argument", []string{"-in", log, "extra"}, 2, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			got := run(tc.args, &out, &errw)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.want, errw.String())
			}
			if tc.errw != "" && !strings.Contains(errw.String(), tc.errw) {
				t.Fatalf("stderr %q does not contain %q", errw.String(), tc.errw)
			}
		})
	}
}

// The summary view over a valid log must report its event count.
func TestRunSummaryOutput(t *testing.T) {
	log := writeTemp(t, "ok.jsonl", validLog)
	var out, errw bytes.Buffer
	if got := run([]string{"-in", log}, &out, &errw); got != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", got, errw.String())
	}
	if !strings.Contains(out.String(), "events       2") {
		t.Fatalf("summary output missing event count:\n%s", out.String())
	}
}
