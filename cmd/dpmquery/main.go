// Command dpmquery filters, aggregates, and diffs the decision-
// provenance event logs written by dpmsim/dpmexp -events-out.
//
// Usage:
//
//	dpmsim -trace swim.trace -policy tpm -events-out tpm.jsonl
//	dpmquery -in tpm.jsonl                  # summary: kinds + regret
//	dpmquery -in tpm.jsonl -top 10          # worst decisions by regret
//	dpmquery -in tpm.jsonl -mispredict      # spin-up miss timeline
//	dpmquery -in tpm.jsonl -bailouts        # batching bail-out histogram
//	dpmquery -in tpm.jsonl -diff drpm.jsonl # A-vs-B regret comparison
//
// Filters (-kind, -policy, -disk) restrict every mode's input; the
// summary and aggregate views then cover only the matching events.
// Counts derived here (for example spin-up mispredictions) match the
// metrics collector's counters for the same run: the event log is a
// superset of the aggregate metrics.
//
// Exit status follows the benchdiff contract: 0 on success, 1 when
// the query could not run against the data (unreadable or corrupt
// event log), 2 on usage errors (bad flags, missing -in, stray
// arguments).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sdpm/internal/cli"
	"sdpm/internal/obs/events"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes one query, returning the process exit
// code: 0 success, 1 data error (log unreadable or corrupt), 2 usage
// error. Separated from main so the contract is table-testable.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("dpmquery", flag.ContinueOnError)
	fs.SetOutput(errw)
	in := fs.String("in", "", "event log to query (JSON Lines from -events-out; - for stdin)")
	kind := fs.String("kind", "", "keep only events of this kind (spin_down, spin_up, rpm_shift, spinup_miss, bailout, fault, ...)")
	pol := fs.String("policy", "", "keep only events of this policy/scheme label")
	diskF := fs.Int("disk", -1, "keep only events of this disk (-1 = all)")
	top := fs.Int("top", 0, "print the N decisions with the highest energy regret")
	mispredict := fs.Bool("mispredict", false, "print spin-up misprediction counts and their timeline")
	bailouts := fs.Bool("bailouts", false, "print the batching bail-out reason histogram")
	diff := fs.String("diff", "", "second event log: compare per-policy/disk regret A (-in) vs B (-diff)")
	verbose, quiet := cli.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the usage message
	}
	cli.SetupLogging("dpmquery", *verbose, *quiet)

	if *in == "" {
		fmt.Fprintln(errw, "dpmquery: -in is required")
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "dpmquery: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	evs, err := loadLog(*in)
	if err != nil {
		fmt.Fprintf(errw, "dpmquery: %v\n", err)
		return 1
	}
	evs = events.Filter(evs, *kind, *pol, *diskF)

	switch {
	case *diff != "":
		other, err := loadLog(*diff)
		if err != nil {
			fmt.Fprintf(errw, "dpmquery: %v\n", err)
			return 1
		}
		other = events.Filter(other, *kind, *pol, *diskF)
		printDiff(out, *in, *diff, evs, other)
	case *top > 0:
		printTop(out, evs, *top)
	case *mispredict:
		printMispredict(out, evs)
	case *bailouts:
		printHistogram(out, "bail-out reason", events.CountByDetail(evs, events.KindBailout))
	default:
		printSummary(out, evs)
	}
	return 0
}

// loadLog reads one JSONL event log ("-" for stdin).
func loadLog(path string) ([]events.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return events.DecodeJSONL(r)
}

// printSummary renders the default view: event counts by kind and the
// per-policy/disk energy-regret aggregation.
func printSummary(w io.Writer, evs []events.Event) {
	fmt.Fprintf(w, "events       %d\n", len(evs))
	printHistogram(w, "kind", events.CountByKind(evs))
	groups := events.AggregateRegret(evs)
	if len(groups) == 0 {
		return
	}
	fmt.Fprintf(w, "\nenergy regret by policy/disk (actual - oracle, J):\n")
	fmt.Fprintf(w, "%-12s %5s %10s %10s %12s %12s %12s\n",
		"policy", "disk", "decisions", "attrib", "actual(J)", "oracle(J)", "regret(J)")
	var totActual, totOracle, totRegret float64
	for _, g := range groups {
		fmt.Fprintf(w, "%-12s %5d %10d %10d %12.3f %12.3f %12.3f\n",
			g.Policy, g.Disk, g.Decisions, g.Attributed, g.ActualJ, g.OracleJ, g.RegretJ)
		totActual += g.ActualJ
		totOracle += g.OracleJ
		totRegret += g.RegretJ
	}
	fmt.Fprintf(w, "%-12s %5s %10s %10s %12.3f %12.3f %12.3f\n",
		"total", "", "", "", totActual, totOracle, totRegret)
}

// printTop renders the N decisions with the highest energy regret.
func printTop(w io.Writer, evs []events.Event, n int) {
	worst := events.TopRegret(evs, n)
	fmt.Fprintf(w, "%-10s %12s %-10s %5s %-10s %12s %12s %12s\n",
		"kind", "t(ms)", "policy", "disk", "trigger", "pred(ms)", "idle(ms)", "regret(J)")
	for _, e := range worst {
		fmt.Fprintf(w, "%-10s %12.2f %-10s %5d %-10s %12.2f %12.2f %12.3f\n",
			e.Kind, e.TMS, e.Policy, e.Disk, e.Trigger, e.PredictedIdleMS, e.MeasuredIdleMS, e.RegretJ)
	}
}

// printMispredict renders the spin-up misprediction counts (the same
// numbers the metrics collector reports) and their timeline.
func printMispredict(w io.Writer, evs []events.Event) {
	ondemand, inflight := events.MissCounts(evs)
	fmt.Fprintf(w, "spin-up misses   %d on-demand, %d in-flight\n", ondemand, inflight)
	misses := events.Filter(evs, events.KindSpinupMiss, "", -1)
	if len(misses) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s %5s %-10s %12s %12s %-10s\n",
		"t(ms)", "disk", "policy", "idle(ms)", "wait(ms)", "kind")
	for _, e := range misses {
		fmt.Fprintf(w, "%-12.2f %5d %-10s %12.2f %12.2f %-10s\n",
			e.TMS, e.Disk, e.Policy, e.MeasuredIdleMS, e.WindowMS, e.Detail)
	}
}

// printHistogram renders a count map sorted by key.
func printHistogram(w io.Writer, label string, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-20s %8d  (%s)\n", k, counts[k], label)
	}
}

// printDiff compares per-policy/disk regret between two logs.
func printDiff(w io.Writer, nameA, nameB string, a, b []events.Event) {
	type key struct {
		policy string
		disk   int
	}
	ga, gb := events.AggregateRegret(a), events.AggregateRegret(b)
	rows := map[key][2]*events.RegretGroup{}
	for i := range ga {
		k := key{ga[i].Policy, ga[i].Disk}
		r := rows[k]
		r[0] = &ga[i]
		rows[k] = r
	}
	for i := range gb {
		k := key{gb[i].Policy, gb[i].Disk}
		r := rows[k]
		r[1] = &gb[i]
		rows[k] = r
	}
	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		return keys[i].disk < keys[j].disk
	})
	fmt.Fprintf(w, "A = %s\nB = %s\n", nameA, nameB)
	fmt.Fprintf(w, "%-12s %5s %12s %12s %12s\n", "policy", "disk", "regretA(J)", "regretB(J)", "B-A(J)")
	var da, db float64
	for _, k := range keys {
		r := rows[k]
		var ra, rb float64
		if r[0] != nil {
			ra = r[0].RegretJ
		}
		if r[1] != nil {
			rb = r[1].RegretJ
		}
		fmt.Fprintf(w, "%-12s %5d %12.3f %12.3f %+12.3f\n", k.policy, k.disk, ra, rb, rb-ra)
		da += ra
		db += rb
	}
	fmt.Fprintf(w, "%-12s %5s %12.3f %12.3f %+12.3f\n", "total", "", da, db, db-da)
}
