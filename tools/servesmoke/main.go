// Command servesmoke is the end-to-end smoke gate for cmd/dpmd (the
// make serve-smoke target): it boots the real daemon with chaos
// stalls armed, exercises the deadline and load-shedding paths over
// real HTTP, populates the journal, sends SIGTERM, and asserts a
// clean exit 0 with a finalized, valid journal on disk. Any deviation
// exits non-zero with a description.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"sdpm/internal/journal"
)

func main() {
	bin := flag.String("bin", "", "path to the dpmd binary under test")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "servesmoke: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run(bin string) error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "smoke.journal")

	// Chaos stalls every request for 1.5s: long enough for a 100ms
	// deadline to expire and for a second request to overflow the
	// one-deep queue, short enough for the success path to stay quick.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-journal", jpath,
		"-inflight", "1",
		"-queue", "1",
		"-queue-wait", "200ms",
		"-drain-timeout", "10s",
		"-chaos", "seed=1,stall=1,stall_ms=1500",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The daemon logs its bound address; scan for it, then keep
	// draining stderr so the child never blocks on a full pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [dpmd]", line)
			if strings.Contains(line, "dpmd listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						select {
						case addrCh <- a:
						default:
						}
					}
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(10 * time.Second):
		return fmt.Errorf("daemon never reported its listen address")
	}
	if err := waitHealthy(base); err != nil {
		return err
	}

	// 1. Deadline-exceeding request: the chaos stall outlasts the
	// 100ms budget, so the response must be a typed 504.
	code, body, err := post(base+"/v1/sim?timeout=100ms", `{"bench":"swim"}`)
	if err != nil {
		return fmt.Errorf("deadline request: %v", err)
	}
	if code != http.StatusGatewayTimeout || !strings.Contains(body, `"deadline"`) {
		return fmt.Errorf("deadline request: got %d %s, want 504 with kind deadline", code, body)
	}

	// 2. Overload: two concurrent requests against one slot and a
	// one-deep queue with a 200ms wait budget — at least one is shed
	// with 429 while the other eventually succeeds (or also sheds).
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _, perr := post(base+"/v1/sim?timeout=10s", `{"bench":"swim"}`)
			if perr == nil {
				codes[i] = c
			}
		}(i)
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()
	if codes[0] != http.StatusTooManyRequests && codes[1] != http.StatusTooManyRequests {
		return fmt.Errorf("overload: no request shed with 429 (got %v)", codes)
	}

	// 3. Populate the journal through a full experiment request.
	code, body, err = post(base+"/v1/experiment?timeout=60s", `{"id":"table2"}`)
	if err != nil {
		return fmt.Errorf("experiment request: %v", err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("experiment request: got %d %s", code, body)
	}

	// 4. SIGTERM: graceful drain must exit 0 within the drain budget.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("daemon did not exit within 20s of SIGTERM")
	}

	// 5. The journal on disk is finalized: every line valid, every
	// cell unique, and the table2 cells present.
	data, err := os.ReadFile(jpath)
	if err != nil {
		return fmt.Errorf("journal not flushed: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	seen := map[string]bool{}
	for _, line := range lines {
		rec, derr := journal.DecodeLine(line)
		if derr != nil {
			return fmt.Errorf("journal record invalid after drain: %v", derr)
		}
		if seen[rec.Key] {
			return fmt.Errorf("journal has duplicate cell %q after finalize", rec.Key)
		}
		seen[rec.Key] = true
	}
	if len(seen) == 0 {
		return fmt.Errorf("journal empty after a successful experiment")
	}
	fmt.Printf("servesmoke: drain flushed %d unique journal cells\n", len(seen))
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon never became healthy at %s", base)
}

func post(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}
