// Command soaksmoke is the end-to-end network-fault soak gate for the
// resilience stack (the make soak-smoke target): it boots the real
// dpmd daemon, interposes the deterministic fault-injecting proxy
// (internal/netx) between a resilient client (internal/client) and
// the daemon, and proves four properties over real TCP:
//
//  1. Integrity under chaos: hundreds of requests ride through seeded
//     resets, corruptions, and truncations; every experiment response
//     is byte-identical to an offline render, and retries after
//     ambiguous failures are idempotent replays, not duplicated work
//     (the finalized journal holds no duplicate cells).
//  2. Determinism: the same (proxy seed, client seed, request
//     sequence) yields byte-identical client metrics snapshots and
//     proxy fault counters, run after run.
//  3. Breaker choreography: a scripted reset schedule opens, probes,
//     and closes the circuit breaker at exactly the predicted call
//     indices.
//  4. Hedging: a blackholed primary connection is rescued by a hedged
//     attempt without the request failing.
//
// Any deviation exits non-zero with a description.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sdpm/internal/client"
	"sdpm/internal/experiments"
	"sdpm/internal/journal"
	"sdpm/internal/netx"
)

func main() {
	bin := flag.String("bin", "", "path to the dpmd binary under test")
	requests := flag.Int("requests", 200, "simulation requests in the chaos soak phase")
	seed := flag.Int64("seed", 42, "seed for the proxy fault schedule and the client jitter streams")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "soaksmoke: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin, *requests, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "soaksmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("soaksmoke: PASS")
}

func run(bin string, requests int, seed int64) error {
	dir, err := os.MkdirTemp("", "soaksmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	jpath := filepath.Join(dir, "soak.journal")

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-journal", jpath,
		"-drain-timeout", "10s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	upstream, err := scanAddr(stderr)
	if err != nil {
		return err
	}
	direct := "http://" + upstream
	if err := waitHealthy(direct); err != nil {
		return err
	}

	// The offline truth: the bytes every proxied experiment response
	// must match exactly, rendered in-process with a fresh suite.
	var offline bytes.Buffer
	if err := experiments.Render(experiments.NewSuite(), "table2", &offline, "text"); err != nil {
		return fmt.Errorf("offline render: %v", err)
	}

	if err := chaosSoak(upstream, seed, requests, offline.Bytes()); err != nil {
		return fmt.Errorf("chaos soak: %v", err)
	}
	if err := determinism(upstream, seed); err != nil {
		return fmt.Errorf("determinism: %v", err)
	}
	if err := breakerChoreography(upstream); err != nil {
		return fmt.Errorf("breaker choreography: %v", err)
	}
	if err := hedging(upstream); err != nil {
		return fmt.Errorf("hedging: %v", err)
	}

	// The daemon itself never saw a persistence fault: the journal
	// error counter, read directly (no proxy), must be zero.
	metrics, err := get(direct + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(metrics, "sdpm_serve_journal_errors_total 0") {
		return fmt.Errorf("daemon reports journal errors after a disk-fault-free soak")
	}

	// Graceful drain, then the no-duplicate-computation proof: every
	// journal line valid, every cell unique.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case werr := <-waited:
		if werr != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", werr)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("daemon did not exit within 20s of SIGTERM")
	}
	cells, err := validateJournal(jpath)
	if err != nil {
		return err
	}
	fmt.Printf("soaksmoke: journal finalized with %d unique cells, no duplicates\n", cells)
	return nil
}

// newChaosClient builds the client used against a fault proxy. The
// breaker is disabled here so the soak and determinism phases measure
// the retry path alone; breakerChoreography exercises the breaker
// with a scripted schedule.
func newChaosClient(proxyAddr string, seed int64) *client.Client {
	return client.New(client.Config{
		BaseURL:        "http://" + proxyAddr,
		Seed:           seed,
		MaxRetries:     6,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		AttemptTimeout: 60 * time.Second,
		Breaker:        client.BreakerConfig{FailureThreshold: -1},
	})
}

// chaosSoak drives the request volume through probabilistic resets,
// corruptions, and truncations. Every request must succeed, every
// experiment body must match the offline render, and the retries the
// faults force must show up as idempotent replays.
func chaosSoak(upstream string, seed int64, requests int, offline []byte) error {
	cfg, err := netx.ParseSpec("reset=0.06,corrupt=0.05,truncate=0.04")
	if err != nil {
		return err
	}
	p, err := netx.New(upstream, seed, cfg)
	if err != nil {
		return err
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer p.Close()

	c := newChaosClient(addr.String(), seed)
	ctx := context.Background()
	benches := []string{"swim", "applu", "mgrid", "galgel"}
	schemes := []string{"TPM", "DRPM", "CMDRPM"}
	for i := 0; i < requests; i++ {
		req := client.SimRequest{Bench: benches[i%len(benches)], Scheme: schemes[i%len(schemes)]}
		if _, err := c.Sim(ctx, req, 0); err != nil {
			return fmt.Errorf("sim %d (%s/%s): %v", i, req.Bench, req.Scheme, err)
		}
	}
	for i := 0; i < 10; i++ {
		res, err := c.Experiment(ctx, client.ExperimentRequest{ID: "table2"}, time.Minute)
		if err != nil {
			return fmt.Errorf("experiment %d: %v", i, err)
		}
		if !bytes.Equal(res.Body, offline) {
			return fmt.Errorf("experiment %d response differs from the offline render (%d vs %d bytes)", i, len(res.Body), len(offline))
		}
	}

	snap := c.Metrics()
	pc := p.Counters()
	fmt.Printf("soaksmoke: chaos soak %d requests, %d attempts, %d retries, %d replays; proxy %s\n",
		snap.Requests, snap.Attempts, snap.Retries, snap.Replays, pc)
	if snap.Failed != 0 {
		return fmt.Errorf("%d requests failed despite retries", snap.Failed)
	}
	if pc.Resets+pc.Corrupts+pc.Truncates == 0 {
		return fmt.Errorf("the proxy injected no faults; the soak proved nothing")
	}
	if snap.Retries == 0 {
		return fmt.Errorf("faults were injected but the client never retried")
	}
	if snap.Replays == 0 {
		return fmt.Errorf("retries after mid-response resets produced no idempotent replays — the server recomputed instead")
	}
	if cfg.CorruptProb > 0 && snap.DigestMismatches == 0 && pc.Corrupts > 0 {
		return fmt.Errorf("corrupted responses slipped past the digest check")
	}
	return nil
}

// determinism runs the same GET sequence through two fresh, equally
// seeded proxy+client stacks and demands byte-identical metrics.
// GETs carry no idempotency key, so the daemon's replay cache cannot
// couple the two passes.
func determinism(upstream string, seed int64) error {
	pass := func() (string, string, error) {
		cfg, err := netx.ParseSpec("reset=0.08,corrupt=0.08,truncate=0.06")
		if err != nil {
			return "", "", err
		}
		p, err := netx.New(upstream, seed+1, cfg)
		if err != nil {
			return "", "", err
		}
		addr, err := p.Start("127.0.0.1:0")
		if err != nil {
			return "", "", err
		}
		defer p.Close()
		c := newChaosClient(addr.String(), seed+1)
		ctx := context.Background()
		for i := 0; i < 60; i++ {
			var err error
			switch i % 3 {
			case 0:
				_, err = c.ListExperiments(ctx)
			case 1:
				_, err = c.ListBenchmarks(ctx)
			default:
				err = c.Health(ctx)
			}
			if err != nil {
				return "", "", fmt.Errorf("request %d: %v", i, err)
			}
		}
		return c.Metrics().String(), p.Counters().String(), nil
	}
	m1, c1, err := pass()
	if err != nil {
		return fmt.Errorf("pass 1: %v", err)
	}
	m2, c2, err := pass()
	if err != nil {
		return fmt.Errorf("pass 2: %v", err)
	}
	if m1 != m2 {
		return fmt.Errorf("client metrics diverged between identical passes:\n--- pass 1\n%s--- pass 2\n%s", m1, m2)
	}
	if c1 != c2 {
		return fmt.Errorf("proxy counters diverged between identical passes: %q vs %q", c1, c2)
	}
	if strings.Contains(c1, "resets=0") && strings.Contains(c1, "corrupts=0") && strings.Contains(c1, "truncates=0") {
		return fmt.Errorf("determinism passes saw no faults (proxy %s)", c1)
	}
	fmt.Printf("soaksmoke: determinism holds over 2x60 requests (proxy %s)\n", c1)
	return nil
}

// breakerChoreography scripts resets on connections 2, 3, and 4 and
// asserts the breaker walks its state machine at exactly the
// predicted decision indices (the same schedule internal/client's
// acceptance test pins down).
func breakerChoreography(upstream string) error {
	p, err := netx.New(upstream, 1, netx.Config{ResetAt: []int{2, 3, 4}})
	if err != nil {
		return err
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer p.Close()

	c := client.New(client.Config{
		BaseURL:        "http://" + addr.String(),
		Seed:           7,
		MaxRetries:     -1, // one attempt per request: request == connection
		AttemptTimeout: 10 * time.Second,
		Breaker:        client.BreakerConfig{FailureThreshold: 3, ProbeAfter: 2},
	})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		_ = c.Health(ctx) // scripted failures are the point
	}
	snap := c.Metrics()
	const wantTransitions = "open@10;half-open@12;closed@13"
	if got := strings.Join(snap.BreakerTransitions, ";"); got != wantTransitions {
		return fmt.Errorf("breaker transitions = %q, want %q", got, wantTransitions)
	}
	if snap.BreakerOpens != 1 || snap.BreakerHalfOpens != 1 || snap.BreakerCloses != 1 {
		return fmt.Errorf("breaker cycle counts = %d/%d/%d, want 1/1/1",
			snap.BreakerOpens, snap.BreakerHalfOpens, snap.BreakerCloses)
	}
	if snap.BreakerFastFails != 1 || snap.Succeeded != 4 || snap.Failed != 4 {
		return fmt.Errorf("breaker outcome = %d fast-fails, %d ok, %d failed; want 1/4/4",
			snap.BreakerFastFails, snap.Succeeded, snap.Failed)
	}
	fmt.Printf("soaksmoke: breaker walked %s exactly as scripted\n", wantTransitions)
	return nil
}

// hedging blackholes the primary connection and requires the hedged
// attempt to win without the request failing.
func hedging(upstream string) error {
	p, err := netx.New(upstream, 1, netx.Config{BlackholeAt: []int{0}})
	if err != nil {
		return err
	}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer p.Close()

	c := client.New(client.Config{
		BaseURL:        "http://" + addr.String(),
		Seed:           3,
		MaxRetries:     -1,
		HedgeDelay:     50 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
	})
	if err := c.Health(context.Background()); err != nil {
		return fmt.Errorf("hedged request failed: %v", err)
	}
	snap := c.Metrics()
	if snap.Hedges != 1 || snap.HedgesWon != 1 {
		return fmt.Errorf("hedges = %d launched / %d won, want 1/1", snap.Hedges, snap.HedgesWon)
	}
	fmt.Println("soaksmoke: hedge rescued a blackholed primary connection")
	return nil
}

// scanAddr reads the daemon's stderr until it logs its bound address,
// then keeps draining the pipe so the child never blocks.
func scanAddr(stderr io.Reader) (string, error) {
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [dpmd]", line)
			if strings.Contains(line, "dpmd listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						select {
						case addrCh <- a:
						default:
						}
					}
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		return a, nil
	case <-time.After(10 * time.Second):
		return "", fmt.Errorf("daemon never reported its listen address")
	}
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon never became healthy at %s", base)
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// validateJournal checks every finalized journal line decodes and no
// cell key repeats — retried requests replayed instead of recomputing
// and re-appending.
func validateJournal(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("journal not flushed: %v", err)
	}
	seen := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
		rec, derr := journal.DecodeLine(line)
		if derr != nil {
			return 0, fmt.Errorf("journal record invalid after drain: %v", derr)
		}
		if seen[rec.Key] {
			return 0, fmt.Errorf("journal has duplicate cell %q after finalize", rec.Key)
		}
		seen[rec.Key] = true
	}
	if len(seen) == 0 {
		return 0, fmt.Errorf("journal empty after successful experiments")
	}
	return len(seen), nil
}
