// Package benchparse parses the textual output of `go test -bench
// -benchmem` into structured results.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line's measurements. BytesPerOp and
// AllocsPerOp are -1 when the run did not use -benchmem.
type Result struct {
	Iterations  int64
	NSPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// Parse reads `go test -bench` output and returns the results keyed
// by benchmark name with the "Benchmark" prefix and "-N" GOMAXPROCS
// suffix stripped (so "BenchmarkSimHotPath-8" becomes "SimHotPath").
// Non-benchmark lines are skipped. A duplicate name (e.g. from
// -count>1) keeps the first occurrence.
func Parse(r io.Reader) (map[string]Result, error) {
	results := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := CleanName(f[0])
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // a "Benchmark..." word in free text, not a result line
		}
		res := Result{Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		// The remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, f[i])
			}
			switch f[i+1] {
			case "ns/op":
				res.NSPerOp = v
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if _, dup := results[name]; !dup {
			results[name] = res
		}
	}
	return results, sc.Err()
}

// CleanName strips the "Benchmark" prefix and the trailing
// GOMAXPROCS suffix ("-8") from a benchmark identifier, keeping
// sub-benchmark paths intact.
func CleanName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// FormatNS renders a ns/op value without trailing zeros (go test
// prints sub-microsecond results with decimals, larger ones as
// integers).
func FormatNS(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
