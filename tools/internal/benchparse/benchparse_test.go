package benchparse

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sdpm/internal/sim
cpu: AMD EPYC
BenchmarkSimHotPath-8            	     290	   4106932 ns/op	   27312 B/op	      24 allocs/op
BenchmarkSimHotPathDRPM-8        	     118	   9929428 ns/op	   34880 B/op	      70 allocs/op
BenchmarkOpenLoopHotPath-8       	     512	   2300781 ns/op	  131072 B/op	      12 allocs/op
BenchmarkParallel/workers=4-8    	      40	  28000000 ns/op
BenchmarkTiny-8                  	12000000	       0.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	sdpm/internal/sim	5.123s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"SimHotPath":         {Iterations: 290, NSPerOp: 4106932, BytesPerOp: 27312, AllocsPerOp: 24},
		"SimHotPathDRPM":     {Iterations: 118, NSPerOp: 9929428, BytesPerOp: 34880, AllocsPerOp: 70},
		"OpenLoopHotPath":    {Iterations: 512, NSPerOp: 2300781, BytesPerOp: 131072, AllocsPerOp: 12},
		"Parallel/workers=4": {Iterations: 40, NSPerOp: 28000000, BytesPerOp: -1, AllocsPerOp: -1},
		"Tiny":               {Iterations: 12000000, NSPerOp: 0.5, BytesPerOp: 0, AllocsPerOp: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if g != w {
			t.Errorf("%s = %+v, want %+v", name, g, w)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok \tsdpm\t0.1s\nBenchmarkFoo results pending\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(got))
	}
}

func TestCleanName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSimHotPath-8":      "SimHotPath",
		"BenchmarkSimHotPath":        "SimHotPath",
		"BenchmarkParallel/w=4-16":   "Parallel/w=4",
		"BenchmarkDash-name-2":       "Dash-name",
		"BenchmarkTrailingDash-text": "TrailingDash-text",
	} {
		if got := CleanName(in); got != want {
			t.Errorf("CleanName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatNS(t *testing.T) {
	if got := FormatNS(4106932); got != "4106932" {
		t.Errorf("FormatNS(4106932) = %q", got)
	}
	if got := FormatNS(0.5); got != "0.5" {
		t.Errorf("FormatNS(0.5) = %q", got)
	}
}
