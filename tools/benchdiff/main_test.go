package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oldText = `goos: linux
BenchmarkSimHotPath-8       	    2283	    536177 ns/op	  333128 B/op	      24 allocs/op
BenchmarkOpenLoopHotPath-8  	    2074	    579136 ns/op	  333064 B/op	      30 allocs/op
PASS
`

func TestBenchdiffWithinTolerance(t *testing.T) {
	oldP := write(t, "old.txt", oldText)
	newP := write(t, "new.txt", strings.ReplaceAll(oldText, "536177", "540000"))
	var sb strings.Builder
	code, err := run(&sb, oldP, newP, 25, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "within 25% tolerance") {
		t.Errorf("missing summary line:\n%s", sb.String())
	}
}

func TestBenchdiffRegression(t *testing.T) {
	oldP := write(t, "old.txt", oldText)
	newP := write(t, "new.txt", strings.ReplaceAll(oldText, "536177", "936177"))
	var sb strings.Builder
	code, err := run(&sb, oldP, newP, 25, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION verdict:\n%s", sb.String())
	}
}

func TestBenchdiffImprovementPasses(t *testing.T) {
	oldP := write(t, "old.txt", oldText)
	newP := write(t, "new.txt", strings.ReplaceAll(oldText, "536177", "110000"))
	var sb strings.Builder
	code, err := run(&sb, oldP, newP, 25, "")
	if err != nil || code != 0 {
		t.Fatalf("exit %d err %v; output:\n%s", code, err, sb.String())
	}
}

func TestBenchdiffJSONInput(t *testing.T) {
	oldP := write(t, "old.json", `{
  "SimHotPath": {"ns_per_op": 536177, "bytes_per_op": 333128, "allocs_per_op": 24, "iterations": 2283}
}`)
	newP := write(t, "new.txt", oldText)
	var sb strings.Builder
	code, err := run(&sb, oldP, newP, 25, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, sb.String())
	}
	// OpenLoopHotPath exists only in NEW: warned about, not fatal.
	if !strings.Contains(sb.String(), "warning: OpenLoopHotPath only in") {
		t.Errorf("missing one-sided warning:\n%s", sb.String())
	}
}

func TestBenchdiffFilter(t *testing.T) {
	oldP := write(t, "old.txt", oldText)
	newP := write(t, "new.txt", strings.ReplaceAll(oldText, "579136", "979136"))
	var sb strings.Builder
	// OpenLoopHotPath regressed, but the filter excludes it.
	code, err := run(&sb, oldP, newP, 25, "^SimHotPath$")
	if err != nil || code != 0 {
		t.Fatalf("exit %d err %v; output:\n%s", code, err, sb.String())
	}
}

func TestBenchdiffNoOverlap(t *testing.T) {
	oldP := write(t, "old.txt", oldText)
	newP := write(t, "new.txt", "BenchmarkOther-8 100 5 ns/op\nPASS\n")
	var sb strings.Builder
	if _, err := run(&sb, oldP, newP, 25, ""); err == nil {
		t.Fatal("want error for disjoint benchmark sets")
	}
}
