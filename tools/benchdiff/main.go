// Command benchdiff compares two benchmark measurement sets and fails
// when any benchmark regressed beyond a tolerance.
//
//	benchdiff [-tolerance PCT] [-bench REGEXP] OLD NEW
//
// OLD and NEW are files ("-" for stdin, at most once) in either of the
// repository's two benchmark formats, detected per file:
//
//   - raw `go test -bench [-benchmem]` text (results/bench_baseline.txt)
//   - the benchjson JSON document (results/BENCH_sim.json)
//
// Benchmarks are matched by name with the "Benchmark" prefix and
// GOMAXPROCS suffix stripped, exactly as benchjson keys them. For
// every name present in both sets the ns/op delta is printed; the
// exit status is 1 if any compared benchmark is slower than OLD by
// more than -tolerance percent (default 25). Names present on only
// one side are reported as warnings and do not fail the comparison —
// a renamed or newly added benchmark should not break CI, a slower
// one should.
//
// Used by `make bench-diff` and the CI bench-smoke job to guard the
// simulator hot paths against performance regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"regexp"
	"sort"
	"strings"

	"sdpm/internal/cli"
	"sdpm/tools/internal/benchparse"
)

func main() {
	tolerance := flag.Float64("tolerance", 25, "allowed ns/op regression in percent before failing")
	benchRE := flag.String("bench", "", "compare only benchmarks whose cleaned name matches this regexp")
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-tolerance PCT] [-bench REGEXP] OLD NEW\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cli.SetupLogging("benchdiff", *verbose, *quiet)
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance, *benchRE)
	if err != nil {
		// Exit 2 distinguishes "comparison could not run" from a
		// regression verdict (exit 1), so the structured log replaces
		// only the print, not the contract.
		slog.Error("fatal", "err", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(out io.Writer, oldPath, newPath string, tolerance float64, benchRE string) (int, error) {
	if tolerance < 0 {
		return 0, fmt.Errorf("negative tolerance %g", tolerance)
	}
	var filter *regexp.Regexp
	if benchRE != "" {
		var err error
		if filter, err = regexp.Compile(benchRE); err != nil {
			return 0, fmt.Errorf("bad -bench regexp: %v", err)
		}
	}
	if oldPath == "-" && newPath == "-" {
		return 0, fmt.Errorf("at most one input may be stdin")
	}
	oldSet, err := load(oldPath)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", oldPath, err)
	}
	newSet, err := load(newPath)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", newPath, err)
	}

	names := make([]string, 0, len(oldSet))
	for name := range oldSet {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(out)
	defer bw.Flush()
	compared, failed := 0, 0
	for _, name := range names {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		o := oldSet[name]
		n, ok := newSet[name]
		if !ok {
			fmt.Fprintf(bw, "warning: %s only in %s\n", name, oldPath)
			continue
		}
		if o.NSPerOp <= 0 {
			fmt.Fprintf(bw, "warning: %s has non-positive old ns/op %g; skipping\n", name, o.NSPerOp)
			continue
		}
		compared++
		deltaPct := (n.NSPerOp - o.NSPerOp) / o.NSPerOp * 100
		verdict := "ok"
		if deltaPct > tolerance {
			verdict = fmt.Sprintf("REGRESSION (> %g%%)", tolerance)
			failed++
		}
		fmt.Fprintf(bw, "%-28s %14s -> %14s ns/op  %+7.1f%%  %s\n",
			name, benchparse.FormatNS(o.NSPerOp), benchparse.FormatNS(n.NSPerOp), deltaPct, verdict)
	}
	for name := range newSet {
		if _, ok := oldSet[name]; !ok && (filter == nil || filter.MatchString(name)) {
			fmt.Fprintf(bw, "warning: %s only in %s\n", name, newPath)
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	if failed > 0 {
		fmt.Fprintf(bw, "%d of %d compared benchmark(s) regressed beyond %g%%\n", failed, compared, tolerance)
		return 1, nil
	}
	fmt.Fprintf(bw, "%d benchmark(s) within %g%% tolerance\n", compared, tolerance)
	return 0, nil
}

// load reads one measurement set, accepting either raw `go test
// -bench` text or a benchjson document (sniffed on the first
// non-space byte).
func load(path string) (map[string]benchparse.Result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		var doc map[string]struct {
			NSPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  int64   `json:"bytes_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
			Iterations  int64   `json:"iterations"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("parsing as benchjson: %v", err)
		}
		out := make(map[string]benchparse.Result, len(doc))
		for name, r := range doc {
			out[name] = benchparse.Result{
				Iterations: r.Iterations, NSPerOp: r.NSPerOp,
				BytesPerOp: r.BytesPerOp, AllocsPerOp: r.AllocsPerOp,
			}
		}
		return out, nil
	}
	res, err := benchparse.Parse(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return res, nil
}
