// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON document on stdout, keyed by benchmark name with
// the GOMAXPROCS suffix stripped:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson
//
//	{
//	  "SimHotPath": {"ns_per_op": 4106932, "bytes_per_op": 27312, "allocs_per_op": 24},
//	  ...
//	}
//
// Lines that are not benchmark results (PASS/ok/warnings) are
// ignored, so the raw `go test` stream pipes straight in. Used by
// `make bench-json` to publish machine-readable baselines under
// results/.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sdpm/internal/cli"
	"sdpm/tools/internal/benchparse"
)

func main() {
	verbose, quiet := cli.LogFlags(flag.CommandLine)
	flag.Parse()
	cli.SetupLogging("benchjson", *verbose, *quiet)
	if err := run(os.Stdin, os.Stdout); err != nil {
		cli.Fatal(err)
	}
}

func run(in io.Reader, out io.Writer) error {
	results, err := benchparse.Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	// Encode manually to keep the keys in sorted order with stable
	// field layout.
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, "{")
	for i, name := range names {
		r := results[name]
		key, _ := json.Marshal(name)
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		fmt.Fprintf(bw, "  %s: {\"ns_per_op\": %s, \"bytes_per_op\": %d, \"allocs_per_op\": %d, \"iterations\": %d}%s\n",
			key, benchparse.FormatNS(r.NSPerOp), r.BytesPerOp, r.AllocsPerOp, r.Iterations, sep)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
