// Sweep: the paper's sensitivity analysis (Figures 5-8). Runs swim
// across stripe sizes and stripe factors and shows that the
// compiler-directed scheme keeps tracking the oracle while the
// reactive scheme's performance penalty grows with the stripe size,
// and that savings grow with the number of disks.
package main

import (
	"fmt"
	"log"

	"sdpm"
)

func main() {
	w, err := sdpm.Benchmark("swim")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stripe-size sweep (8 disks):")
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"unit", "DRPM E", "IDRPM E", "CMDRPM E", "DRPM time", "CMDRPM time")
	for _, unit := range []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10} {
		cfg := sdpm.DefaultConfig()
		cfg.StripeUnitBytes = unit
		row, err := normalizedRow(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.3f %10.3f %10.3f %12.3f %12.3f\n",
			fmt.Sprintf("%dKB", unit/1024), row[0], row[1], row[2], row[3], row[4])
	}

	fmt.Println("\nstripe-factor sweep (64KB units):")
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"disks", "DRPM E", "IDRPM E", "CMDRPM E", "DRPM time", "CMDRPM time")
	for _, disks := range []int{2, 4, 8, 12, 16} {
		cfg := sdpm.DefaultConfig()
		cfg.NumDisks = disks
		row, err := normalizedRow(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %10.3f %10.3f %10.3f %12.3f %12.3f\n",
			disks, row[0], row[1], row[2], row[3], row[4])
	}
}

// normalizedRow returns DRPM/IDRPM/CMDRPM energy and DRPM/CMDRPM time,
// normalized to the base scheme under the same configuration.
func normalizedRow(w *sdpm.Workload, cfg sdpm.Config) ([5]float64, error) {
	var out [5]float64
	base, err := w.Run(sdpm.Base, cfg)
	if err != nil {
		return out, err
	}
	dr, err := w.Run(sdpm.DRPM, cfg)
	if err != nil {
		return out, err
	}
	id, err := w.Run(sdpm.IDRPM, cfg)
	if err != nil {
		return out, err
	}
	cm, err := w.Run(sdpm.CMDRPM, cfg)
	if err != nil {
		return out, err
	}
	out[0] = dr.EnergyJ / base.EnergyJ
	out[1] = id.EnergyJ / base.EnergyJ
	out[2] = cm.EnergyJ / base.EnergyJ
	out[3] = dr.ExecMS / base.ExecMS
	out[4] = cm.ExecMS / base.ExecMS
	return out, nil
}
