// Stencil: the paper's Section 6 story on a fissionable stencil
// workload. Loop fission alone does not lengthen disk inter-access
// times, but layout-aware fission (LF+DL) groups arrays onto disjoint
// disk subsets, creating nest-long idle periods — deep enough that
// even spinning disks all the way down (the TPM mechanism, useless on
// the original code) becomes profitable.
package main

import (
	"fmt"
	"log"

	"sdpm"
)

func main() {
	w, err := sdpm.Benchmark("swim")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sdpm.DefaultConfig()

	base, err := w.Run(sdpm.Base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swim original: %.0f J base energy\n\n", base.EnergyJ)
	fmt.Printf("%-7s %-7s %12s %9s %12s %9s\n",
		"version", "scheme", "energy (J)", "vs base", "time (ms)", "vs base")

	for _, v := range []sdpm.Version{sdpm.Orig, sdpm.LF, sdpm.LFDL} {
		tw, applied, err := w.Transform(v, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if v != sdpm.Orig && !applied {
			fmt.Printf("%-7s not applicable\n", v)
			continue
		}
		for _, s := range []sdpm.Scheme{sdpm.CMTPM, sdpm.CMDRPM} {
			r, err := tw.Run(s, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %-7s %12.0f %8.1f%% %12.0f %8.1f%%\n",
				v, s, r.EnergyJ, (r.EnergyJ/base.EnergyJ-1)*100,
				r.ExecMS, (r.ExecMS/base.ExecMS-1)*100)
		}
	}

	fmt.Println("\nNote how CMTPM saves nothing on the original and LF versions but")
	fmt.Println("becomes a serious alternative under LF+DL — the paper's Figure 13 finding.")
}
