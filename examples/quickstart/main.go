// Quickstart: load a benchmark, run it under every power management
// scheme, and print the paper's headline comparison — reactive DRPM
// saves energy but slows the program; the compiler-directed scheme
// saves nearly as much as the oracle with no slowdown.
package main

import (
	"fmt"
	"log"

	"sdpm"
)

func main() {
	w, err := sdpm.Benchmark("swim")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sdpm.DefaultConfig()

	results, err := w.RunAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0]
	fmt.Printf("%s: %d requests, base energy %.0f J, base time %.0f ms\n\n",
		w.Name(), base.Requests, base.EnergyJ, base.ExecMS)
	fmt.Printf("%-8s %12s %10s %12s %10s\n", "scheme", "energy (J)", "vs base", "time (ms)", "vs base")
	for _, r := range results {
		fmt.Printf("%-8s %12.0f %9.1f%% %12.0f %9.1f%%\n",
			r.Scheme, r.EnergyJ, (r.EnergyJ/base.EnergyJ-1)*100,
			r.ExecMS, (r.ExecMS/base.ExecMS-1)*100)
	}

	st, err := w.Mispredictions(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCMDRPM mispredicted the optimal disk speed for %.1f%% of %d idle periods\n",
		st.Pct, st.Total)
}
