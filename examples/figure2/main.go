// Figure2: the paper's running example (Section 3, Figure 2). Two
// loop nests access arrays U1 and U2; U1 is striped over all four
// disks starting at disk 0 and U2 lives on disk 2 — the layouts of
// Figure 2(b). The compiler extracts the disk access pattern of
// Figure 2(c) (disk 3 is idle until the second nest reaches U1's
// final stripe) and inserts the spin_down/spin_up calls of
// Figure 2(d). This example prints all three artifacts and then
// shows the resulting energy.
package main

import (
	"fmt"
	"log"
	"strings"

	"sdpm"
)

// The arrays are sized in stripe units of 64KB (8192 float64
// elements): U1 holds four units (one per disk), U2 two units (both
// on disk 2 via stripe factor 1).
const src = `
program figure2

array U1[32768]
array U2[16384]
array U3[32768]

nest nest1 {
  for i = 0..16384
  do cost 200000 {          # heavy compute: long idle stretches
    read U1[i]
    read U2[i]
  }
}

nest nest2 {
  for i = 0..32768
  do cost 200000 {
    read U1[i]
    write U3[i]
  }
}
`

func main() {
	w, err := sdpm.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	w.SetTiming(0, 0, 1) // the paper's example is deterministic

	cfg := sdpm.DefaultConfig()
	cfg.NumDisks = 4
	// Figure 2(b): U1 striped (0, 4, S); U2 and U3 on single disks.
	must(w.SetLayout("U1", 0, 4, 64<<10))
	must(w.SetLayout("U2", 2, 1, 64<<10))
	must(w.SetLayout("U3", 3, 1, 64<<10))

	fmt.Println("=== Figure 2(c): the disk access pattern ===")
	dap, err := w.DAP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dap)

	fmt.Println("=== Figure 2(d): the instrumented trace (power calls) ===")
	var buf strings.Builder
	if err := w.WriteTrace(&buf, sdpm.CMTPM, cfg); err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "P ") {
			fmt.Println(" ", line)
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (no TPM calls: idle periods below break-even; see CMDRPM below)")
	}
	var buf2 strings.Builder
	if err := w.WriteTrace(&buf2, sdpm.CMDRPM, cfg); err != nil {
		log.Fatal(err)
	}
	rpmCalls := strings.Count(buf2.String(), "\nP ")
	fmt.Printf("  CMDRPM inserts %d set_RPM calls\n\n", rpmCalls)

	fmt.Println("=== Energy under the schemes ===")
	base, err := w.Run(sdpm.Base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []sdpm.Scheme{sdpm.Base, sdpm.CMTPM, sdpm.CMDRPM, sdpm.IDRPM} {
		r, err := w.Run(s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %8.1f J (%.3f of base)  %9.0f ms\n",
			r.Scheme, r.EnergyJ, r.EnergyJ/base.EnergyJ, r.ExecMS)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
