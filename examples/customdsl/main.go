// Customdsl: author a disk-resident program in the text DSL, let the
// compiler analyze it, inspect the disk access pattern it extracts,
// and compare the power management schemes on it. The program below
// has the two pathologies the paper's transformations target: a
// transposed traversal of a row-major matrix (TL+DL repairs it) and
// two independent array families in one nest (LF+DL separates them).
package main

import (
	"fmt"
	"log"
	"strings"

	"sdpm"
)

const src = `
program custom

array field[1024][1024]        # 8MB, conforming sweeps
array flux[1024][1024]         # 8MB, coupled to field
array img[1536][256]           # 3MB, traversed column-wise
array hist[1024][1024]         # 8MB, independent family
array bins[1024][1024]

nest update {
  for i = 0..1024
  for j = 0..1024
  do cost 2400 {                # ~3.2us of compute per iteration
    read  field[i][j]
    write flux[i][j]
  }
  do cost 1800 {
    read  hist[i][j]
    write bins[i][j]
  }
}

nest scan {                     # column-wise: non-conforming
  for c = 0..96
  for r = 0..1536
  do cost 900 { read img[r][c] }
}
`

func main() {
	w, err := sdpm.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sdpm.DefaultConfig()

	n, err := w.Requests(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d disk requests under the default layout\n\n", w.Name(), n)

	dap, err := w.DAP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk access pattern (first disk, first entries):")
	for i, line := range strings.Split(dap, "\n") {
		fmt.Println(line)
		if i >= 5 {
			break
		}
	}

	fmt.Println("\nscheme comparison on the original code:")
	base := report(w, cfg, sdpm.Base, 0, 0)
	report(w, cfg, sdpm.DRPM, base.EnergyJ, base.ExecMS)
	report(w, cfg, sdpm.CMDRPM, base.EnergyJ, base.ExecMS)
	report(w, cfg, sdpm.IDRPM, base.EnergyJ, base.ExecMS)

	for _, v := range []sdpm.Version{sdpm.LFDL, sdpm.TLDL} {
		tw, applied, err := w.Transform(v, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !applied {
			fmt.Printf("\n%s: not applicable\n", v)
			continue
		}
		tn, _ := tw.Requests(cfg)
		fmt.Printf("\nafter %s (%d requests):\n", v, tn)
		report(tw, cfg, sdpm.CMTPM, base.EnergyJ, base.ExecMS)
		report(tw, cfg, sdpm.CMDRPM, base.EnergyJ, base.ExecMS)
	}
}

func report(w *sdpm.Workload, cfg sdpm.Config, s sdpm.Scheme, baseE, baseT float64) sdpm.Result {
	r, err := w.Run(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if baseE == 0 {
		fmt.Printf("  %-7s %10.0f J %12.0f ms\n", r.Scheme, r.EnergyJ, r.ExecMS)
	} else {
		fmt.Printf("  %-7s %10.0f J (%.3f of base) %12.0f ms (%.3f)\n",
			r.Scheme, r.EnergyJ, r.EnergyJ/baseE, r.ExecMS, r.ExecMS/baseT)
	}
	return r
}
