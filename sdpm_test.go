package sdpm

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarkAccess(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	w, err := Benchmark("swim")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "swim" {
		t.Errorf("name = %q", w.Name())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSchemes(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	base, err := w.Run(Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := w.Run(CMDRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cm.EnergyJ >= base.EnergyJ*0.8 {
		t.Errorf("CMDRPM saved too little: %.0f vs %.0f", cm.EnergyJ, base.EnergyJ)
	}
	if cm.PowerOps == 0 {
		t.Error("no power ops recorded")
	}
	if base.Requests != cm.Requests {
		t.Error("request counts differ")
	}
	all, err := w.RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Schemes()) {
		t.Errorf("RunAll = %d results", len(all))
	}
}

func TestTransform(t *testing.T) {
	w, _ := Benchmark("mesa")
	cfg := DefaultConfig()
	tw, applied, err := w.Transform(TLDL, cfg)
	if err != nil || !applied {
		t.Fatalf("transform: %v applied=%v", err, applied)
	}
	if !strings.Contains(tw.Name(), "TL+DL") {
		t.Errorf("name = %q", tw.Name())
	}
	base, _ := w.Run(CMDRPM, cfg)
	xf, err := tw.Run(CMDRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xf.EnergyJ >= base.EnergyJ {
		t.Errorf("TL+DL did not help mesa: %.0f vs %.0f", xf.EnergyJ, base.EnergyJ)
	}

	g, _ := Benchmark("galgel")
	_, applied, err = g.Transform(LF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("galgel LF applied")
	}
}

func TestParseProgramAndDSL(t *testing.T) {
	src := `
program tiny
array a[128][1024]
nest sweep {
  for i = 0..128
  for j = 0..1024
  do cost 2000 { read a[i][j] }
}
`
	w, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	n, err := w.Requests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1MB array = 16 units of 64KB.
	if n != 16 {
		t.Errorf("requests = %d, want 16", n)
	}
	out := w.DSL()
	if !strings.Contains(out, "program tiny") || !strings.Contains(out, "read  a[i][j]") {
		t.Errorf("DSL:\n%s", out)
	}
	if _, err := ParseProgram("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMispredictionsFacade(t *testing.T) {
	w, _ := Benchmark("galgel")
	st, err := w.Mispredictions(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Total == 0 || st.Pct < 0 || st.Pct > 100 {
		t.Errorf("mispredict = %+v", st)
	}
	if st.Wrong > st.Total {
		t.Error("wrong > total")
	}
}

func TestWriteTraceAndDAP(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	var buf bytes.Buffer
	if err := w.WriteTrace(&buf, Base, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sdpm-trace v1") {
		t.Error("trace header missing")
	}
	baseLines := strings.Count(buf.String(), "\n")
	buf.Reset()
	if err := w.WriteTrace(&buf, CMDRPM, cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") <= baseLines {
		t.Error("instrumented trace not larger than base")
	}
	if !strings.Contains(buf.String(), "set_rpm") {
		t.Error("instrumented trace missing power ops")
	}
	d, err := w.DAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "disk0:") || !strings.Contains(d, "active") {
		t.Errorf("DAP:\n%.200s", d)
	}
}

func TestSetTiming(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	a, _ := w.Run(Base, cfg)
	w.SetTiming(0, 0, 99)
	b, _ := w.Run(Base, cfg)
	if a.ExecMS == b.ExecMS {
		t.Error("timing override had no effect")
	}
	// Config-level override beats workload timing.
	cfg.NoisePct, cfg.BiasPct = 0, 0
	c, _ := w.Run(Base, cfg)
	if c.ExecMS != b.ExecMS {
		t.Error("config override mismatch")
	}
}

func TestConfigVariants(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	cfg.NumDisks = 4
	if _, err := w.Run(Base, cfg); err != nil {
		t.Fatal(err)
	}
	cfg = DefaultConfig()
	cfg.StripeUnitBytes = 32 << 10
	n, err := w.Requests(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n64, _ := w.Requests(DefaultConfig())
	if n != 2*n64 {
		t.Errorf("32KB units: %d requests vs %d at 64KB", n, n64)
	}
	cfg = DefaultConfig()
	cfg.StripeUnitBytes = 1000 // unaligned
	if _, err := w.Run(Base, cfg); err == nil {
		t.Error("unaligned unit accepted")
	}
}

func TestRunExperimentQuickOnes(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IBM Ultrastar") {
		t.Error("table1 output")
	}
	buf.Reset()
	if err := RunExperiment("applicability", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "galgel") {
		t.Error("applicability output")
	}
	if err := RunExperiment("bogus", &buf); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestRunExperimentTables(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, id := range []string{"table2", "fig3", "table3"} {
		var buf bytes.Buffer
		if err := RunExperiment(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty output", id)
		}
	}
}

func TestSelectSchemeAndEstimate(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	s, predicted, err := w.SelectScheme(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s != CMDRPM {
		t.Errorf("selected %s", s)
	}
	sim, err := w.Run(CMDRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if predicted < sim.EnergyJ*0.8 || predicted > sim.EnergyJ*1.2 {
		t.Errorf("prediction %.0f vs simulated %.0f", predicted, sim.EnergyJ)
	}
	if _, err := w.EstimateEnergy(DRPM, cfg); err == nil {
		t.Error("estimate for reactive scheme accepted")
	}
	base, err := w.EstimateEnergy(Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if predicted >= base {
		t.Errorf("CMDRPM prediction %.0f not below base %.0f", predicted, base)
	}
}

func TestTransformInterchange(t *testing.T) {
	w, _ := Benchmark("wupwise")
	cfg := DefaultConfig()
	tw, applied, err := w.Transform(IC, cfg)
	if err != nil || !applied {
		t.Fatalf("IC: %v applied=%v", err, applied)
	}
	origReqs, _ := w.Requests(cfg)
	icReqs, _ := tw.Requests(cfg)
	if icReqs >= origReqs {
		t.Errorf("IC requests %d >= orig %d", icReqs, origReqs)
	}
	g, _ := Benchmark("galgel")
	if _, applied, _ := g.Transform(IC, cfg); applied {
		t.Error("IC applied to conforming program")
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperimentFormat("applicability", &buf, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "label,") {
		t.Errorf("CSV output: %.60s", buf.String())
	}
	if err := RunExperimentFormat("applicability", &buf, "bogus"); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestRunOpenFacade(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	closed, err := w.Run(DRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	open, err := w.RunOpen(DRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if open.ExecMS >= closed.ExecMS {
		t.Errorf("open-loop %0.f not faster than closed %.0f under DRPM", open.ExecMS, closed.ExecMS)
	}
	if _, err := w.RunOpen(CMDRPM, cfg); err == nil {
		t.Error("open-loop CMDRPM accepted")
	}
}

func TestDistanceAwareSeekFacade(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	avg, err := w.Run(Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DistanceAwareSeek = true
	dist, err := w.Run(Base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dist.ExecMS >= avg.ExecMS {
		t.Errorf("distance seek %0.f not faster than average %.0f on sequential workload", dist.ExecMS, avg.ExecMS)
	}
}

func TestSetLayoutFacade(t *testing.T) {
	w, _ := Benchmark("galgel")
	if err := w.SetLayout("nope", 0, 1, 64<<10); err == nil {
		t.Error("unknown array accepted")
	}
	if err := w.SetLayout("g1", 0, 1, 64<<10); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := w.Run(Base, cfg); err != nil {
		t.Fatal(err)
	}
	// Bad layout surfaces at run time.
	w2, _ := Benchmark("galgel")
	_ = w2.SetLayout("g1", 99, 1, 64<<10)
	if _, err := w2.Run(Base, cfg); err == nil {
		t.Error("out-of-range start disk accepted")
	}
}

func TestVersionLists(t *testing.T) {
	if len(Versions()) != 5 {
		t.Errorf("versions = %v", Versions())
	}
	ext := ExtendedVersions()
	if len(ext) != 6 || ext[5] != IC {
		t.Errorf("extended = %v", ext)
	}
}

func TestAnnotatedDSL(t *testing.T) {
	w, _ := Benchmark("galgel")
	cfg := DefaultConfig()
	out, err := w.AnnotatedDSL(CMDRPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "set_RPM(") {
		t.Error("no calls in annotated listing")
	}
	if _, err := w.AnnotatedDSL(DRPM, cfg); err == nil {
		t.Error("reactive scheme accepted")
	}
}

func TestRunExperimentAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := RunExperiment("all", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every artifact's title must appear.
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 3", "Figure 4",
		"Table 3", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Figure 13", "applicability", "interchange", "multiprogram",
		"pre-activation", "bias", "buffer cache", "clustering",
		"open loop", "seek", "breakdown",
	} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTransformedDSLRoundTrip(t *testing.T) {
	// Transformed programs (fissioned, tiled, blocked, interchanged)
	// must survive the DSL round trip like any other program.
	cfg := DefaultConfig()
	for _, name := range BenchmarkNames() {
		for _, v := range ExtendedVersions() {
			w, _ := Benchmark(name)
			tw, applied, err := w.Transform(v, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v, err)
			}
			if !applied {
				continue
			}
			text := tw.DSL()
			rw, err := ParseProgram(text)
			if err != nil {
				t.Fatalf("%s/%s: transformed DSL does not parse: %v", name, v, err)
			}
			if rw.DSL() != text {
				t.Errorf("%s/%s: DSL not a fixed point", name, v)
			}
		}
	}
}
