package sdpm

// Determinism tests for the parallel experiment engine: every
// experiment must render byte-identically no matter how many workers
// execute its cells (docs/performance.md, "Determinism contract").

import (
	"bytes"
	"testing"
)

// renderExperiment renders one experiment with a fixed worker count.
func renderExperiment(t *testing.T, id string, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := RunExperiments(id, &buf, Options{Workers: workers}); err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return buf.Bytes()
}

// TestParallelOutputMatchesSequential renders representative
// experiments — the scheme matrix (fig3), the transformation grid
// (fig13), and a config-sweep ablation (ablation-noise) — with one
// worker and with eight, and requires byte-identical output.
func TestParallelOutputMatchesSequential(t *testing.T) {
	ids := []string{"fig3", "ablation-noise"}
	if !testing.Short() {
		ids = append(ids, "fig13")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := renderExperiment(t, id, 1)
			par := renderExperiment(t, id, 8)
			if !bytes.Equal(seq, par) {
				t.Errorf("%s: workers=8 output differs from workers=1\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					id, seq, par)
			}
		})
	}
}

// TestRunExperimentsFormatCSVParallel spot-checks that the CSV
// renderer is deterministic under parallelism too.
func TestRunExperimentsFormatCSVParallel(t *testing.T) {
	var seq, par bytes.Buffer
	if err := RunExperiments("table3", &seq, Options{Format: "csv", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiments("table3", &par, Options{Format: "csv", Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("table3 CSV differs:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

// TestRunExperimentsUnknown keeps the error paths intact.
func TestRunExperimentsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiments("no-such-experiment", &buf, Options{}); err == nil {
		t.Error("expected error for unknown experiment id")
	}
	if err := RunExperiments("fig3", &buf, Options{Format: "yaml"}); err == nil {
		t.Error("expected error for unknown format")
	}
}
