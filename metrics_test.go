package sdpm

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExperimentsEmitsMetrics checks the Options.Metrics plumbing
// end to end: running one experiment with a metrics sink must produce
// Prometheus text exposition covering the simulator, the instance
// cache, and the worker pool — and must not disturb the rendered
// table on the primary writer.
func TestRunExperimentsEmitsMetrics(t *testing.T) {
	var out, plain, metrics bytes.Buffer
	if err := RunExperiments("table2", &plain, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiments("table2", &out, Options{Workers: 1, Metrics: &metrics}); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Error("attaching a metrics sink changed the rendered experiment output")
	}
	text := metrics.String()
	for _, name := range []string{
		"sdpm_sim_runs_total",
		"sdpm_requests_total",
		"sdpm_request_service_ms_bucket",
		"sdpm_disk_state_ms_total",
		"sdpm_disk_rpm_ms_total",
		"sdpm_spinup_mispredictions_total",
		"sdpm_cache_misses_total",
		"sdpm_runner_tasks_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
	// The experiment really ran through the instrumented engine.
	if strings.Contains(text, "sdpm_requests_total 0\n") {
		t.Error("sdpm_requests_total is zero; collector not wired into the simulations")
	}
	if strings.Contains(text, "sdpm_runner_tasks_total 0\n") {
		t.Error("sdpm_runner_tasks_total is zero; collector not wired into the worker pool")
	}
}
