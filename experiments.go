package sdpm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"

	"sdpm/internal/experiments"
	"sdpm/internal/faults"
	"sdpm/internal/journal"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
)

// ExperimentIDs returns the identifiers accepted by RunExperiment, in
// the paper's order.
func ExperimentIDs() []string { return experiments.IDs() }

// Options configures RunExperiments.
type Options struct {
	// Format selects the rendering: "text" (aligned tables, the
	// default when empty) or "csv".
	Format string
	// Workers bounds each experiment's parallelism: 1 is strictly
	// sequential, 0 (the default) selects GOMAXPROCS. Output is
	// byte-identical for every value.
	Workers int
	// Metrics, when non-nil, receives a Prometheus text-format dump
	// of the engine's observability metrics (simulation counters and
	// latency histograms, per-disk residency, instance-cache
	// hit/miss/singleflight counts, worker-pool utilization, injected
	// faults) after the experiments complete — or after cancellation,
	// when partial metrics are still flushed.
	Metrics io.Writer
	// Collector, when non-nil, is the metrics collector the suite
	// reports into — pass one to scrape metrics live (e.g. through
	// cli.StartDebugServer) while the experiments run. When nil and
	// Metrics is set, a private collector is created; Metrics dumps
	// whichever collector was used after the run.
	Collector *obs.Collector
	// Events, when non-nil, receives the suite's decision-provenance
	// event log as JSON Lines after the experiments complete (or after
	// cancellation — partial logs are still flushed): every power
	// decision with its trigger, inputs, measured idle, and energy
	// regret, plus batching bail-outs, fault lifecycle, worker-pool
	// retries/panics, and journal hits/misses. Query the file with
	// dpmquery. Event collection never changes results (simulation
	// output is bit-identical with and without it).
	Events io.Writer
	// EventCapacity bounds the in-memory event ring when Events is
	// set; 0 selects events.DefaultCapacity. When the run emits more
	// events than the ring holds, the oldest are dropped (the JSONL
	// output then starts at the earliest retained event).
	EventCapacity int
	// Ctx, when non-nil, cancels in-flight experiments: worker pools
	// stop claiming cells, the current experiment returns the
	// context's error, and metrics accumulated so far are still
	// written to Metrics.
	Ctx context.Context
	// FaultSpec injects deterministic faults into every experiment's
	// simulations: a preset name (off/light/moderate/heavy), a
	// key=value spec, or "@file" (see faults.ParseSpec). Empty keeps
	// the paper's fault-free setting. The faults-energy/faults-time
	// experiments sweep all severities regardless of this base.
	FaultSpec string
	// FaultSeed seeds the fault-sensitivity experiments' fault plans;
	// the same seed yields byte-identical tables at any worker count.
	FaultSeed int64
	// Journal, when non-empty, records every completed experiment cell
	// to this append-only file (fsynced per record, CRC-protected).
	// With Resume false the file is truncated and written fresh; on
	// success it is compacted and atomically finalized, while on
	// failure or cancellation the journal is left behind so a later
	// Resume run can pick up where this one stopped.
	Journal string
	// Resume reopens an existing journal instead of truncating it:
	// cells whose key already holds a valid record are skipped, torn
	// trailing records from a crash are discarded, and only the
	// missing cells are recomputed. Output is byte-identical to an
	// uninterrupted run.
	Resume bool
	// Audit verifies conservation invariants (energy bookkeeping,
	// time accounting, disk state-machine legality) after every
	// simulation and fails loudly on any violation. Results are
	// unchanged; auditing only adds checking.
	Audit bool
	// Retries re-runs a failing or panicking experiment cell up to
	// this many extra times before reporting its error. 0 disables
	// retries; panics still surface as typed errors either way.
	Retries int
	// DisableBatch forces the simulator's general per-request path
	// instead of the batched steady-state executor (the -batch=off
	// escape hatch). Output is byte-identical either way.
	DisableBatch bool
}

// RunExperiment regenerates one of the paper's tables or figures (or
// one of the ablation studies) and renders it to out as plain text.
// The id "all" runs every experiment in order.
func RunExperiment(id string, out io.Writer) error {
	return RunExperiments(id, out, Options{})
}

// RunExperimentFormat is RunExperiment with an output format: "text"
// (aligned tables) or "csv".
func RunExperimentFormat(id string, out io.Writer, format string) error {
	return RunExperiments(id, out, Options{Format: format})
}

// RunExperiments regenerates the experiment id (or every experiment,
// for "all") with the given options. A single suite — and hence a
// single instance memo — serves the whole call, so "all" prepares
// each (workload, configuration) pair exactly once across all twenty
// experiments.
func RunExperiments(id string, out io.Writer, opts Options) error {
	format := opts.Format
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "csv" {
		return fmt.Errorf("sdpm: unknown format %q (text or csv)", format)
	}
	s := experiments.NewSuite()
	s.Workers = opts.Workers
	s.Ctx = opts.Ctx
	if opts.FaultSpec != "" {
		fc, err := faults.ParseSpec(opts.FaultSpec)
		if err != nil {
			return err
		}
		s.Cfg.Faults = fc
		s.Cfg.FaultSeed = opts.FaultSeed
	}
	s.FaultSeed = opts.FaultSeed
	s.Cfg.Audit = opts.Audit
	s.Cfg.DisableBatch = opts.DisableBatch
	s.Retries = opts.Retries
	if opts.Collector != nil {
		s.Obs = opts.Collector
	} else if opts.Metrics != nil {
		s.Obs = obs.New()
	}
	if opts.Events != nil {
		s.Events = events.NewLog(opts.EventCapacity)
	}
	// j stays concrete: the suite only needs the CellJournal surface,
	// but finalizing/closing below needs the full journal handle.
	var j *journal.Journal
	if opts.Journal != "" {
		var jerr error
		if opts.Resume {
			j, jerr = journal.Open(opts.Journal)
		} else {
			j, jerr = journal.Create(opts.Journal)
		}
		if jerr != nil {
			return jerr
		}
		if records, torn := j.Recovered(); records > 0 || torn > 0 {
			slog.Info("journal recovered", "path", opts.Journal, "records", records, "truncated_bytes", torn)
		}
		s.Journal = j
	}
	// Run, then flush metrics regardless of failure or cancellation:
	// a partial Prometheus dump still tells the operator what happened
	// before the interrupt.
	err := runSelected(s, id, out, format, opts.Ctx)
	if merr := writeMetrics(opts.Metrics, s.Obs); err == nil {
		err = merr
	}
	if s.Events != nil {
		if eerr := events.WriteJSONL(opts.Events, s.Events.Events()); err == nil {
			err = eerr
		}
	}
	// Finalize (compact + atomic rename) the journal only on full
	// success; on failure or cancellation just close it, keeping every
	// fsynced record for a -resume run.
	if j != nil {
		if err == nil {
			err = j.Finalize()
		} else if cerr := j.Close(); cerr != nil {
			slog.Warn("journal close failed", "path", opts.Journal, "err", cerr)
		}
	}
	var ioe *journal.IOError
	if errors.As(err, &ioe) {
		err = fmt.Errorf("%w (every fsynced cell is preserved; re-run with -resume to recover them)", err)
	}
	return err
}

// runSelected runs one experiment id, or every experiment for "all",
// stopping between experiments once ctx is canceled. The dispatch
// itself lives in experiments.Render so the serving layer (cmd/dpmd)
// shares one rendering path with the library.
func runSelected(s *experiments.Suite, id string, out io.Writer, format string, ctx context.Context) error {
	if id != "all" {
		return experiments.Render(s, id, out, format)
	}
	for _, e := range ExperimentIDs() {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if err := experiments.Render(s, e, out, format); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// writeMetrics dumps the suite collector in Prometheus text format.
func writeMetrics(w io.Writer, c *obs.Collector) error {
	if w == nil || c == nil {
		return nil
	}
	return obs.WritePrometheus(w, c)
}
