package access

import (
	"math/rand"
	"reflect"
	"testing"

	"sdpm/internal/ir"
	"sdpm/internal/layout"
)

// bruteTouches is a reference implementation that visits every
// iteration and every reference, emitting a touch whenever a
// reference enters a different stripe unit within an innermost run.
func bruteTouches(t *testing.T, p *ir.Program, sub *layout.Subsystem) []Touch {
	t.Helper()
	var out []Touch
	for ni, nest := range p.Nests {
		depth := nest.Depth()
		innerTrip := nest.Loops[depth-1].Trip()
		trips := nest.Trips()
		type key struct{ si, ri int }
		last := make(map[key]int64)
		for it := int64(0); it < trips; it++ {
			if it%innerTrip == 0 {
				last = make(map[key]int64) // new innermost run
			}
			iv := nest.IndexOf(it)
			for si, s := range nest.Stmts {
				for ri := range s.Refs {
					r := &s.Refs[ri]
					off := r.OffsetAt(iv)
					st, _ := sub.StripingOf(r.Array.Name)
					size, _ := sub.SizeOf(r.Array.Name)
					unit := off / st.UnitBytes
					k := key{si, ri}
					if prev, seen := last[k]; !seen || prev != unit {
						last[k] = unit
						b := st.UnitBytes
						if unit*st.UnitBytes+b > size {
							b = size - unit*st.UnitBytes
						}
						out = append(out, Touch{Nest: ni, Iter: it, File: r.Array.Name, Unit: unit, Bytes: b, Kind: r.Kind})
					}
				}
			}
		}
	}
	return out
}

func placeAll(t *testing.T, p *ir.Program, nd int, unit int64, factor int) *layout.Subsystem {
	t.Helper()
	sub := layout.MustSubsystem(nd)
	if err := PlaceArrays(p, sub, layout.Striping{StartDisk: 0, Factor: factor, UnitBytes: unit}); err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestWalkSequential1D(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 1024) // 8KB
	b.Nest("n0", ir.L("i", 1024)).Stmt(10, ir.R(u, ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 4, 1024, 4) // 1KB units -> 8 units

	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d touches, want 8: %v", len(got), got)
	}
	for i, tc := range got {
		if tc.Unit != int64(i) || tc.Iter != int64(i*128) || tc.Bytes != 1024 {
			t.Errorf("touch %d = %+v", i, tc)
		}
	}
}

func TestWalkMatchesBruteForce2D(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 16, 32)
	v := b.Array2D("v", 16, 32)
	b.Nest("n0", ir.L("i", 16), ir.L("j", 32)).
		Stmt(10, ir.R(u, ir.Var(0), ir.Var(1)), ir.W(v, ir.Var(0), ir.Var(1)))
	p := b.MustBuild()
	sub := placeAll(t, p, 4, 512, 4)

	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fast walker diverged:\n got %v\nwant %v", got, want)
	}
}

func TestWalkMatchesBruteForceColumnAccess(t *testing.T) {
	// Column-major access of a row-major array: stride = row length.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 32, 16)
	b.Nest("n0", ir.L("j", 16), ir.L("i", 32)).
		Stmt(10, ir.R(u, ir.Var(1), ir.Var(0))) // u[i][j] with i innermost
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)

	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("column access diverged:\n got %v\nwant %v", got, want)
	}
}

func TestWalkMatchesBruteForceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		b := ir.NewBuilder("p")
		d0 := int64(4 + rng.Intn(12))
		d1 := int64(4 + rng.Intn(20))
		u := b.Array2D("u", d0, d1)
		v := b.Array1D("v", d0*d1)
		if rng.Intn(2) == 0 {
			u.RowMajor = false
		}
		// Random affine subscripts that stay in bounds.
		c0 := int64(rng.Intn(2))
		c1 := int64(1 - c0)
		nb := b.Nest("n0", ir.L("i", d0), ir.L("j", d1))
		nb.Stmt(5,
			ir.R(u, ir.Var(0).Times(c0).Add(ir.Var(0).Times(1-c0)), ir.Var(1)),
			ir.W(v, ir.Var(0).Times(c1).Add(ir.Var(1).Times(1+c0))))
		_ = u
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		unit := int64(512 * (1 + rng.Intn(3)))
		factor := 1 + rng.Intn(3)
		sub := placeAll(t, p, 4, unit, factor)
		got, err := Touches(p, sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteTouches(t, p, sub)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d diverged (unit=%d factor=%d)", trial, unit, factor)
		}
	}
}

func TestWalkStrideZero(t *testing.T) {
	// Reference not depending on the innermost variable touches its
	// unit once per run.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 8, 8)
	w := b.Array1D("w", 8)
	b.Nest("n0", ir.L("i", 8), ir.L("j", 8)).
		Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)), ir.R(w, ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stride-0 diverged:\n got %v\nwant %v", got, want)
	}
	// w is 64 bytes: one unit; touched at the start of each of 8 runs.
	var wTouches int
	for _, tc := range got {
		if tc.File == "w" {
			wTouches++
			if tc.Bytes != 64 {
				t.Errorf("w touch bytes = %d, want 64 (truncated)", tc.Bytes)
			}
		}
	}
	if wTouches != 8 {
		t.Errorf("w touched %d times, want 8", wTouches)
	}
}

func TestWalkNegativeStride(t *testing.T) {
	// Reverse traversal: u[N-1-j].
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 512)
	b.Nest("n0", ir.L("j", 512)).
		Stmt(1, ir.R(u, ir.Var(0).Times(-1).Plus(511)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("negative stride diverged:\n got %v\nwant %v", got, want)
	}
	// Units must be visited in descending order.
	for i := 1; i < len(got); i++ {
		if got[i].Unit >= got[i-1].Unit {
			t.Fatalf("units not descending: %v", got)
		}
	}
}

func TestWalkMultipleNests(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 256)
	v := b.Array1D("v", 256)
	b.Nest("n0", ir.L("i", 256)).Stmt(1, ir.R(u, ir.Var(0)))
	b.Nest("n1", ir.L("i", 256)).Stmt(1, ir.W(v, ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	// 2KB arrays, 512B units -> 4 touches each.
	if len(got) != 8 {
		t.Fatalf("touches = %d", len(got))
	}
	for i, tc := range got {
		wantNest := 0
		if i >= 4 {
			wantNest = 1
		}
		if tc.Nest != wantNest {
			t.Errorf("touch %d nest = %d", i, tc.Nest)
		}
	}
	if got[0].Kind != ir.Read || got[4].Kind != ir.Write {
		t.Error("kinds wrong")
	}
}

func TestWalkOutOfBounds(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 16)
	b.Nest("n0", ir.L("i", 32)).Stmt(1, ir.R(u, ir.Var(0))) // i up to 31 > 15
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 1)
	if _, err := Touches(p, sub); err == nil {
		t.Fatal("out-of-bounds access accepted")
	}
}

func TestWalkUnplacedArray(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 16)
	b.Nest("n0", ir.L("i", 16)).Stmt(1, ir.R(u, ir.Var(0)))
	p := b.MustBuild()
	sub := layout.MustSubsystem(2)
	if _, err := Touches(p, sub); err == nil {
		t.Fatal("unplaced array accepted")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 1024)
	b.Nest("n0", ir.L("i", 1024)).Stmt(1, ir.R(u, ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	count := 0
	sentinel := errSentinel{}
	err := Walk(p, sub, func(Touch) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || count != 3 {
		t.Fatalf("early stop failed: err=%v count=%d", err, count)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "stop" }

func TestWalkEmptyLoop(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 16)
	b.Nest("n0", ir.LRange("i", 5, 5, 1)).Stmt(1, ir.R(u, ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 1)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty loop produced touches: %v", got)
	}
}

func TestWalkBlockedLayoutMatchesBruteForce(t *testing.T) {
	// Tiled (4-deep) nest over a blocked array: the canonical TL+DL
	// shape where one iteration tile equals one stored tile.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 32, 32)
	u.Block = []int64{8, 8}
	// loops: ii, jj, ti, tj ; ref u[ii*8+ti][jj*8+tj].
	b.Nest("n0", ir.L("ii", 4), ir.L("jj", 4), ir.L("ti", 8), ir.L("tj", 8)).
		Stmt(1, ir.R(u,
			ir.Var(0).Times(8).Add(ir.Var(2)),
			ir.Var(1).Times(8).Add(ir.Var(3))))
	p := b.MustBuild()
	sub := placeAll(t, p, 4, 8*8*8, 4) // unit = one tile (512B)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("blocked tiled diverged:\n got %v\nwant %v", got, want)
	}
	// One touch per innermost run (each run stays inside one tile),
	// covering exactly the 16 distinct tiles; the buffer cache later
	// collapses same-tile touches into one request per tile.
	if len(got) != 128 {
		t.Errorf("touches = %d, want 128", len(got))
	}
	units := make(map[int64]bool)
	for _, tc := range got {
		units[tc.Unit] = true
	}
	if len(units) != 16 {
		t.Errorf("distinct units = %d, want 16", len(units))
	}
	// Touches arrive tile by tile: unit changes exactly 15 times.
	changes := 0
	for i := 1; i < len(got); i++ {
		if got[i].Unit != got[i-1].Unit {
			changes++
		}
	}
	if changes != 15 {
		t.Errorf("unit changes = %d, want 15 (tile-by-tile order)", changes)
	}
}

func TestWalkBlockedUntiledNestMatchesBruteForce(t *testing.T) {
	// An untiled row sweep over a blocked array: runs cross tile
	// boundaries, exercising the piecewise-segment walker.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 8, 16)
	u.Block = []int64{2, 4}
	b.Nest("n0", ir.L("i", 8), ir.L("j", 16)).
		Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("blocked untiled diverged:\n got %v\nwant %v", got, want)
	}
}

func TestWalkBlockedColMajorAndNegativeStride(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		b := ir.NewBuilder("p")
		u := b.Array2D("u", 8, 12)
		u.Block = []int64{4, 4}
		if rng.Intn(2) == 0 {
			u.RowMajor = false
		}
		var refs []ir.Ref
		if rng.Intn(2) == 0 {
			refs = append(refs, ir.R(u, ir.Var(0), ir.Var(1).Times(-1).Plus(11))) // reverse j
		} else {
			refs = append(refs, ir.R(u, ir.Var(1).Times(0).Add(ir.Var(0)), ir.Var(1)))
		}
		b.Nest("n0", ir.L("i", 8), ir.L("j", 12)).Stmt(1, refs...)
		p := b.MustBuild()
		unit := int64(512 * (1 + rng.Intn(2)))
		sub := placeAll(t, p, 2, unit, 2)
		got, err := Touches(p, sub)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTouches(t, p, sub)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d diverged (rowMajor=%v)", trial, u.RowMajor)
		}
	}
}

func TestWalkBlockedMultiDrivenFallsBack(t *testing.T) {
	// Innermost variable drives both dimensions: diagonal access,
	// forcing the per-element fallback.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 16, 16)
	u.Block = []int64{4, 4}
	b.Nest("n0", ir.L("k", 16)).Stmt(1, ir.R(u, ir.Var(0), ir.Var(0)))
	p := b.MustBuild()
	sub := placeAll(t, p, 2, 512, 2)
	got, err := Touches(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTouches(t, p, sub)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diagonal blocked diverged:\n got %v\nwant %v", got, want)
	}
}
