package access

import (
	"math/rand"
	"reflect"
	"testing"

	"sdpm/internal/layout"
	"sdpm/internal/progen"
)

// TestWalkerMatchesBruteForceGenerated compares the boundary-jumping
// walker against the per-element reference implementation on randomly
// generated programs — including column-major, blocked, strided,
// reversed, and constant-subscript references.
func TestWalkerMatchesBruteForceGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 120; trial++ {
		p := progen.MustGenerate(rng, progen.DefaultOptions())
		sub := layout.MustSubsystem(1 + rng.Intn(6))
		factor := 1 + rng.Intn(sub.NumDisks())
		unit := int64(512 * (1 + rng.Intn(4)))
		ok := true
		for i, a := range p.Arrays {
			st := layout.Striping{StartDisk: i % sub.NumDisks(), Factor: factor, UnitBytes: unit}
			if err := sub.Place(a.Name, a.SizeBytes(), st); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		got, err := Touches(p, sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteTouches(t, p, sub)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%s): walker diverged from brute force\n got %d touches\nwant %d touches",
				trial, p.Name, len(got), len(want))
		}
	}
}
