// Package access extracts the data access pattern of an IR program:
// the program-order sequence of stripe-unit touches each array
// reference makes. This is the compiler analysis the paper's
// proactive scheme is built on (Section 3): combined with the disk
// layout it yields the disk access pattern, and filtered through the
// buffer cache model it yields the I/O request stream.
//
// The walker never enumerates individual array elements: for each run
// of the innermost loop it computes the byte stride of every
// reference and jumps directly between stripe-unit boundaries, so the
// cost is proportional to the number of unit touches plus the number
// of outer-loop iterations.
package access

import (
	"fmt"
	"slices"

	"sdpm/internal/ir"
	"sdpm/internal/layout"
)

// Touch is one stripe-unit touch: the first innermost iteration at
// which a reference enters a given stripe unit of its array's file.
type Touch struct {
	// Nest is the nest index within the program.
	Nest int
	// Iter is the linearized iteration (program execution order
	// within the nest) at which the unit is first entered.
	Iter int64
	// File is the array (file) name; Unit the stripe unit index.
	File string
	Unit int64
	// Bytes is the size of the unit (truncated at end of file).
	Bytes int64
	// Kind is the reference kind causing the touch.
	Kind ir.RefKind
}

// Walk enumerates all stripe-unit touches of the program in program
// order and passes each to fn. It stops early if fn returns an
// error. Program order is: nests in sequence; iterations in
// lexicographic order; within an iteration, statements then
// references in declaration order.
func Walk(p *ir.Program, sub *layout.Subsystem, fn func(Touch) error) error {
	for ni, nest := range p.Nests {
		if err := walkNest(ni, nest, sub, fn); err != nil {
			return err
		}
	}
	return nil
}

// refPlan is the per-reference precomputation for one nest.
type refPlan struct {
	ref       *ir.Ref
	stmtIdx   int
	refIdx    int
	strideB   int64 // byte stride per innermost iteration (linear layouts)
	unitBytes int64
	fileSize  int64
	file      string
	// Blocked-layout handling: when the referenced array has a
	// blocked (tiled) layout, runs are only piecewise linear.
	blocked bool
	// drivenDim is the single array dimension the innermost loop
	// variable drives (-1 when it drives none or several).
	drivenDim int
	// coefStep is the per-innermost-iteration change of the driven
	// dimension's index (coefficient times loop step).
	coefStep int64
	// withinStride is the byte stride of one step of the driven
	// dimension inside a tile.
	withinStride int64
}

type pendingTouch struct {
	k       int64 // innermost iteration offset within the run
	stmtIdx int
	refIdx  int
	unit    int64
	plan    *refPlan
}

func walkNest(ni int, nest *ir.Nest, sub *layout.Subsystem, fn func(Touch) error) error {
	depth := nest.Depth()
	inner := nest.Loops[depth-1]
	innerTrip := inner.Trip()
	if innerTrip == 0 || nest.Trips() == 0 {
		return nil
	}
	outerTrips := nest.Trips() / innerTrip

	// Precompute per-reference stride in bytes per innermost step.
	var plans []refPlan
	for si, s := range nest.Stmts {
		for ri := range s.Refs {
			r := &s.Refs[ri]
			st, ok := sub.StripingOf(r.Array.Name)
			if !ok {
				return fmt.Errorf("access: array %q not placed on subsystem", r.Array.Name)
			}
			size, _ := sub.SizeOf(r.Array.Name)
			pl := refPlan{
				ref: r, stmtIdx: si, refIdx: ri,
				unitBytes: st.UnitBytes,
				fileSize:  size, file: r.Array.Name,
				drivenDim: -1,
			}
			driven := 0
			for dim, e := range r.Index {
				if c := e.CoeffAt(depth - 1); c != 0 {
					driven++
					pl.drivenDim = dim
					pl.coefStep = c * inner.Step
				}
			}
			if driven != 1 {
				pl.drivenDim = -1
			}
			if r.Array.Block != nil {
				pl.blocked = true
				if pl.drivenDim >= 0 {
					pl.withinStride = withinTileStride(r.Array, pl.drivenDim)
				}
			} else {
				var stride int64
				for dim, e := range r.Index {
					stride += e.CoeffAt(depth-1) * inner.Step * r.Array.InnerStride(dim)
				}
				pl.strideB = stride
			}
			plans = append(plans, pl)
		}
	}

	iv := make([]int64, depth)
	// scratch is the blocked walker's private iteration vector; it is
	// allocated once per nest and overwritten per (run, reference)
	// rather than copied afresh, keeping the outer loop allocation-free.
	scratch := make([]int64, depth)
	var touches []pendingTouch
	for outer := int64(0); outer < outerTrips; outer++ {
		// Build the iteration vector for this innermost run.
		baseIter := outer * innerTrip
		copy(iv, nest.IndexOf(baseIter))
		touches = touches[:0]

		for pi := range plans {
			pl := &plans[pi]
			var err error
			if pl.blocked {
				err = collectRunTouchesBlocked(pl, iv, scratch, inner, innerTrip, &touches)
			} else {
				err = collectRunTouches(pl, pl.ref.OffsetAt(iv), innerTrip, &touches)
			}
			if err != nil {
				return fmt.Errorf("access: nest %d (%q) stmt %d ref %d: %w",
					ni, nest.Label, pl.stmtIdx, pl.refIdx, err)
			}
		}
		// Program order within the run: by iteration, then statement,
		// then reference. Keys are unique per touch, so the (unstable)
		// sort is deterministic; SortFunc avoids sort.Slice's
		// per-call closure and reflection-based swapper.
		slices.SortFunc(touches, func(a, b pendingTouch) int {
			if a.k != b.k {
				if a.k < b.k {
					return -1
				}
				return 1
			}
			if a.stmtIdx != b.stmtIdx {
				return a.stmtIdx - b.stmtIdx
			}
			return a.refIdx - b.refIdx
		})
		for _, tc := range touches {
			unitStart := tc.unit * tc.plan.unitBytes
			b := tc.plan.unitBytes
			if unitStart+b > tc.plan.fileSize {
				b = tc.plan.fileSize - unitStart
			}
			if err := fn(Touch{
				Nest: ni, Iter: baseIter + tc.k,
				File: tc.plan.file, Unit: tc.unit, Bytes: b,
				Kind: tc.plan.ref.Kind,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectRunTouches appends the unit touches one reference makes over
// one innermost run starting at byte offset base.
func collectRunTouches(pl *refPlan, base, innerTrip int64, out *[]pendingTouch) error {
	checkOff := func(off int64) error {
		if off < 0 || off >= pl.fileSize {
			return fmt.Errorf("offset %d outside file %q of size %d", off, pl.file, pl.fileSize)
		}
		return nil
	}
	if err := checkOff(base); err != nil {
		return err
	}
	if pl.strideB == 0 {
		*out = append(*out, pendingTouch{k: 0, stmtIdx: pl.stmtIdx, refIdx: pl.refIdx, unit: base / pl.unitBytes, plan: pl})
		return nil
	}
	// Check the last offset too, so the whole run is known in bounds
	// (offsets are monotonic in k for affine references).
	if err := checkOff(base + (innerTrip-1)*pl.strideB); err != nil {
		return err
	}
	k := int64(0)
	off := base
	for k < innerTrip {
		unit := off / pl.unitBytes
		*out = append(*out, pendingTouch{k: k, stmtIdx: pl.stmtIdx, refIdx: pl.refIdx, unit: unit, plan: pl})
		var dk int64
		if pl.strideB > 0 {
			next := (unit + 1) * pl.unitBytes
			dk = (next - off + pl.strideB - 1) / pl.strideB
		} else {
			// Exit downward when off < unit*unitBytes.
			prev := unit*pl.unitBytes - 1
			neg := -pl.strideB
			dk = (off - prev + neg - 1) / neg
		}
		k += dk
		off += dk * pl.strideB
	}
	return nil
}

// withinTileStride returns the byte stride of one step of the given
// dimension inside a tile of a blocked array.
func withinTileStride(a *ir.Array, dim int) int64 {
	stride := a.ElemSize
	if a.RowMajor {
		for d := len(a.Block) - 1; d > dim; d-- {
			stride *= a.Block[d]
		}
	} else {
		for d := 0; d < dim; d++ {
			stride *= a.Block[d]
		}
	}
	return stride
}

// collectRunTouchesBlocked appends the unit touches of one reference
// to a blocked-layout array over one innermost run. Within a run the
// offset sequence is only piecewise linear: it jumps at every tile
// boundary of the driven dimension, so the walk proceeds segment by
// segment, with linear unit-boundary jumping inside each segment.
// scratch must have len(ivRun) elements; it is overwritten (the
// caller's ivRun stays untouched for the nest's remaining references).
func collectRunTouchesBlocked(pl *refPlan, ivRun, scratch []int64, inner ir.Loop, innerTrip int64, out *[]pendingTouch) error {
	iv := scratch
	copy(iv, ivRun)
	innerDepth := len(iv) - 1
	lastUnit := int64(-1)
	emit := func(k, off int64) {
		unit := off / pl.unitBytes
		if unit != lastUnit {
			lastUnit = unit
			*out = append(*out, pendingTouch{k: k, stmtIdx: pl.stmtIdx, refIdx: pl.refIdx, unit: unit, plan: pl})
		}
	}
	checkOff := func(off int64) error {
		if off < 0 || off >= pl.fileSize {
			return fmt.Errorf("offset %d outside file %q of size %d", off, pl.file, pl.fileSize)
		}
		return nil
	}
	if pl.drivenDim < 0 {
		// The innermost variable drives zero or several dimensions:
		// walk element by element (correct for any pattern).
		for k := int64(0); k < innerTrip; k++ {
			iv[innerDepth] = inner.Lo + k*inner.Step
			off := pl.ref.OffsetAt(iv)
			if err := checkOff(off); err != nil {
				return err
			}
			emit(k, off)
		}
		return nil
	}
	blockExt := pl.ref.Array.Block[pl.drivenDim]
	iv[innerDepth] = inner.Lo
	idx0 := pl.ref.Index[pl.drivenDim].Eval(iv)
	stride := pl.coefStep * pl.withinStride
	for k := int64(0); k < innerTrip; {
		iv[innerDepth] = inner.Lo + k*inner.Step
		segOff := pl.ref.OffsetAt(iv)
		if err := checkOff(segOff); err != nil {
			return err
		}
		idx := idx0 + pl.coefStep*k
		// Steps until the driven index leaves its current tile.
		var segLen int64
		if pl.coefStep > 0 {
			segLen = (blockExt - idx%blockExt + pl.coefStep - 1) / pl.coefStep
		} else {
			neg := -pl.coefStep
			segLen = (idx%blockExt + neg) / neg
		}
		if k+segLen > innerTrip {
			segLen = innerTrip - k
		}
		// Within the segment the offset advances linearly; jump
		// between stripe-unit boundaries as in the linear walker.
		off := segOff
		for kk := int64(0); kk < segLen; {
			emit(k+kk, off)
			if stride == 0 {
				break
			}
			unit := off / pl.unitBytes
			var dk int64
			if stride > 0 {
				next := (unit + 1) * pl.unitBytes
				dk = (next - off + stride - 1) / stride
			} else {
				prev := unit*pl.unitBytes - 1
				neg := -stride
				dk = (off - prev + neg - 1) / neg
			}
			kk += dk
			off += dk * stride
		}
		k += segLen
	}
	return nil
}

// Touches collects the full touch sequence (convenience for tests
// and small programs; prefer Walk for large workloads).
func Touches(p *ir.Program, sub *layout.Subsystem) ([]Touch, error) {
	var out []Touch
	err := Walk(p, sub, func(t Touch) error {
		out = append(out, t)
		return nil
	})
	return out, err
}

// PlaceArrays places every array of the program on the subsystem
// with the given default striping (each array in its own file). It
// is a convenience used when no transformation has assigned custom
// layouts.
func PlaceArrays(p *ir.Program, sub *layout.Subsystem, st layout.Striping) error {
	for _, a := range p.Arrays {
		if err := sub.Place(a.Name, a.SizeBytes(), st); err != nil {
			return err
		}
	}
	return nil
}

// PlaceArraysWith places every array using the striping from the
// overrides map where present, falling back to the default striping.
func PlaceArraysWith(p *ir.Program, sub *layout.Subsystem, def layout.Striping, overrides map[string]layout.Striping) error {
	for _, a := range p.Arrays {
		st := def
		if o, ok := overrides[a.Name]; ok {
			st = o
		}
		if err := sub.Place(a.Name, a.SizeBytes(), st); err != nil {
			return err
		}
	}
	return nil
}

// PlaceArraysStaggered places every array with the given stripe
// factor and unit but staggers the starting disks (array i starts at
// disk i mod factor), the usual load-balancing placement. This
// avoids the degenerate alignment where unit k of every file lands
// on the same disk.
func PlaceArraysStaggered(p *ir.Program, sub *layout.Subsystem, factor int, unitBytes int64) error {
	nd := sub.NumDisks()
	for i, a := range p.Arrays {
		st := layout.Striping{StartDisk: i % nd, Factor: factor, UnitBytes: unitBytes}
		if err := sub.Place(a.Name, a.SizeBytes(), st); err != nil {
			return err
		}
	}
	return nil
}
