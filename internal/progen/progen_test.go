package progen

import (
	"math/rand"
	"testing"
)

func TestGenerateAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := MustGenerate(rng, DefaultOptions())
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(p.Arrays) == 0 || len(p.Nests) == 0 {
			t.Fatalf("trial %d: empty program", trial)
		}
	}
}

func TestGenerateInBounds(t *testing.T) {
	// Every reference stays within its array for every iteration.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		p := MustGenerate(rng, DefaultOptions())
		for _, n := range p.Nests {
			trips := n.Trips()
			if trips > 4096 {
				trips = 4096
			}
			for it := int64(0); it < trips; it++ {
				iv := n.IndexOf(it)
				for _, s := range n.Stmts {
					for ri := range s.Refs {
						r := &s.Refs[ri]
						for d, e := range r.Index {
							idx := e.Eval(iv)
							if idx < 0 || idx >= r.Array.Dims[d] {
								t.Fatalf("trial %d nest %s: index %d out of [0,%d)",
									trial, n.Label, idx, r.Array.Dims[d])
							}
						}
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(rand.New(rand.NewSource(7)), DefaultOptions())
	b := MustGenerate(rand.New(rand.NewSource(7)), DefaultOptions())
	if a.Name != b.Name || len(a.Arrays) != len(b.Arrays) || len(a.Nests) != len(b.Nests) {
		t.Error("same seed produced different programs")
	}
	if a.TotalCost() != b.TotalCost() {
		t.Error("costs differ")
	}
}

func TestGenerateBoundsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := MustGenerate(rng, Options{}) // all-zero options must be clamped
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
