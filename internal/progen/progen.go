// Package progen generates random, valid IR programs for
// differential and stress testing: random array shapes and layouts
// (including column-major and blocked), random affine subscripts
// (conforming, transposed, strided, reversed, partial windows), and
// random nest structures (fissionable and coupled). Every generated
// program validates and every reference stays in bounds, so the
// generators can drive the whole pipeline — access-pattern
// extraction, transformation, instrumentation, simulation — without
// hand-written cases.
package progen

import (
	"fmt"
	"math/rand"

	"sdpm/internal/ir"
)

// Options bounds the generated programs.
type Options struct {
	// MaxArrays and MaxNests bound the program size (minimum 1 each).
	MaxArrays int
	MaxNests  int
	// MaxDim bounds each array dimension (rounded to multiples of 8).
	MaxDim int64
	// MaxStmtsPerNest bounds statements per nest.
	MaxStmtsPerNest int
	// AllowBlocked permits blocked (tiled) array layouts.
	AllowBlocked bool
}

// DefaultOptions returns generation bounds suitable for fast tests.
func DefaultOptions() Options {
	return Options{MaxArrays: 5, MaxNests: 4, MaxDim: 64, MaxStmtsPerNest: 3, AllowBlocked: true}
}

// Generate builds a random valid program from the rng. A generator
// bug that produces a non-validating program surfaces as an error
// wrapping the validation failure rather than a panic.
func Generate(rng *rand.Rand, opts Options) (*ir.Program, error) {
	if opts.MaxArrays < 1 {
		opts.MaxArrays = 1
	}
	if opts.MaxNests < 1 {
		opts.MaxNests = 1
	}
	if opts.MaxDim < 8 {
		opts.MaxDim = 8
	}
	if opts.MaxStmtsPerNest < 1 {
		opts.MaxStmtsPerNest = 1
	}
	p := &ir.Program{Name: fmt.Sprintf("gen%d", rng.Intn(1<<20))}
	nArrays := 1 + rng.Intn(opts.MaxArrays)
	for i := 0; i < nArrays; i++ {
		p.Arrays = append(p.Arrays, genArray(rng, i, opts))
	}
	nNests := 1 + rng.Intn(opts.MaxNests)
	for i := 0; i < nNests; i++ {
		p.Nests = append(p.Nests, genNest(rng, i, p.Arrays, opts))
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("progen: generated invalid program: %w", err)
	}
	return p, nil
}

// MustGenerate is Generate for the differential tests, which seed the
// generator with known-good bounds; it panics on a generator bug.
func MustGenerate(rng *rand.Rand, opts Options) *ir.Program {
	p, err := Generate(rng, opts)
	if err != nil {
		panic(err)
	}
	return p
}

func genArray(rng *rand.Rand, i int, opts Options) *ir.Array {
	dim := func() int64 { return 8 * (1 + rng.Int63n(opts.MaxDim/8)) }
	a := &ir.Array{
		Name:     fmt.Sprintf("a%d", i),
		ElemSize: 8,
		RowMajor: rng.Intn(4) != 0, // mostly row-major
	}
	rank := 1 + rng.Intn(2)
	for d := 0; d < rank; d++ {
		a.Dims = append(a.Dims, dim())
	}
	if opts.AllowBlocked && rank == 2 && rng.Intn(5) == 0 {
		// Pick block extents dividing the dims.
		a.Block = []int64{pickDivisor(rng, a.Dims[0]), pickDivisor(rng, a.Dims[1])}
	}
	return a
}

func pickDivisor(rng *rand.Rand, n int64) int64 {
	var divs []int64
	for d := int64(1); d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	return divs[rng.Intn(len(divs))]
}

func genNest(rng *rand.Rand, i int, arrays []*ir.Array, opts Options) *ir.Nest {
	depth := 1 + rng.Intn(2)
	n := &ir.Nest{Label: fmt.Sprintf("n%d", i)}
	// Loop extents chosen after picking the statements' arrays so
	// subscripts can be kept in bounds; start with placeholders.
	for d := 0; d < depth; d++ {
		n.Loops = append(n.Loops, ir.Loop{Name: fmt.Sprintf("i%d", d), Lo: 0, Hi: 1, Step: 1})
	}
	nStmts := 1 + rng.Intn(opts.MaxStmtsPerNest)
	// The nest's loop extents are the minimum over its references'
	// allowed extents.
	ext := make([]int64, depth)
	for d := range ext {
		ext[d] = 1 << 30
	}
	for s := 0; s < nStmts; s++ {
		st := &ir.Stmt{Cost: int64(rng.Intn(5000))}
		nRefs := 1 + rng.Intn(3)
		for r := 0; r < nRefs; r++ {
			a := arrays[rng.Intn(len(arrays))]
			ref, maxIter := genRef(rng, a, depth)
			st.Refs = append(st.Refs, ref)
			for d := 0; d < depth; d++ {
				if maxIter[d] < ext[d] {
					ext[d] = maxIter[d]
				}
			}
		}
		n.Stmts = append(n.Stmts, st)
	}
	for d := 0; d < depth; d++ {
		if ext[d] < 1 {
			ext[d] = 1
		}
		if ext[d] > 64 {
			ext[d] = 64
		}
		n.Loops[d].Hi = ext[d]
		if rng.Intn(6) == 0 {
			n.Loops[d].Step = 2
		}
	}
	return n
}

// genRef builds a random in-bounds reference to a, returning the
// maximum loop extent (per depth) that keeps it in bounds.
func genRef(rng *rand.Rand, a *ir.Array, depth int) (ir.Ref, []int64) {
	ref := ir.Ref{Array: a, Kind: ir.RefKind(rng.Intn(2))}
	maxIter := make([]int64, depth)
	for d := range maxIter {
		maxIter[d] = 1 << 30
	}
	// Assign each array dimension one loop variable (or a constant).
	perm := rng.Perm(depth)
	for dim, extent := range a.Dims {
		style := rng.Intn(5)
		if dim >= depth || style == 4 {
			// Constant subscript.
			ref.Index = append(ref.Index, ir.Cnst(rng.Int63n(extent)))
			continue
		}
		v := perm[dim%depth]
		switch style {
		case 0: // identity: idx = iv
			ref.Index = append(ref.Index, ir.Var(v))
			cap := extent
			if cap < maxIter[v] {
				maxIter[v] = cap
			}
		case 1: // shifted: idx = iv + c
			c := rng.Int63n(extent)
			ref.Index = append(ref.Index, ir.Var(v).Plus(c))
			cap := extent - c
			if cap < maxIter[v] {
				maxIter[v] = cap
			}
		case 2: // strided: idx = 2*iv
			ref.Index = append(ref.Index, ir.Var(v).Times(2))
			cap := (extent + 1) / 2
			if cap < maxIter[v] {
				maxIter[v] = cap
			}
		default: // reversed: idx = extent-1 - iv
			ref.Index = append(ref.Index, ir.Var(v).Times(-1).Plus(extent-1))
			if extent < maxIter[v] {
				maxIter[v] = extent
			}
		}
	}
	return ref, maxIter
}
