package dsl

import (
	"fmt"
	"sort"
	"strings"

	"sdpm/internal/ir"
	"sdpm/internal/trace"
)

// CallSite is a power-management call anchored in iteration space,
// mirroring insert.Call without importing it (dsl stays independent
// of the compiler backend).
type CallSite struct {
	Nest int
	Iter int64
	Op   trace.PowerOp
}

// maxCallsPerNest bounds the annotation volume per nest.
const maxCallsPerNest = 12

// FormatAnnotated renders the program in the DSL with the inserted
// power-management calls shown as comments inside each nest — the
// paper's Figure 2(d) view of the compiler-modified code.
func FormatAnnotated(p *ir.Program, calls []CallSite) string {
	byNest := make(map[int][]CallSite)
	for _, c := range calls {
		byNest[c.Nest] = append(byNest[c.Nest], c)
	}
	for n := range byNest {
		sort.SliceStable(byNest[n], func(a, b int) bool { return byNest[n][a].Iter < byNest[n][b].Iter })
	}
	text := Format(p)
	var out strings.Builder
	nest := -1
	for _, line := range strings.Split(text, "\n") {
		out.WriteString(line)
		out.WriteString("\n")
		if strings.HasPrefix(line, "nest ") {
			nest++
			cs := byNest[nest]
			if len(cs) == 0 {
				continue
			}
			shown := cs
			if len(shown) > maxCallsPerNest {
				shown = shown[:maxCallsPerNest]
			}
			for _, c := range shown {
				out.WriteString("  # ")
				out.WriteString(formatCall(c))
				out.WriteString("\n")
			}
			if extra := len(cs) - len(shown); extra > 0 {
				fmt.Fprintf(&out, "  # ... %d more power calls\n", extra)
			}
		}
	}
	return strings.TrimRight(out.String(), "\n") + "\n"
}

func formatCall(c CallSite) string {
	switch c.Op.Kind {
	case trace.OpSetRPM:
		return fmt.Sprintf("set_RPM(%d, disk%d) near iteration %d", c.Op.RPM, c.Op.Disk, c.Iter)
	case trace.OpSpinDown:
		return fmt.Sprintf("spin_down(disk%d) near iteration %d", c.Op.Disk, c.Iter)
	default:
		return fmt.Sprintf("spin_up(disk%d) near iteration %d", c.Op.Disk, c.Iter)
	}
}
