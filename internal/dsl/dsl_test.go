package dsl

import (
	"strings"
	"testing"

	"sdpm/internal/ir"
	"sdpm/internal/trace"
	"sdpm/internal/workloads"
)

const sample = `
program demo

# twelve 8MB fields
array u[64][64] elem 8 rowmajor
array v[64][64] colmajor
array w[4096]
array t[64][64] block [16][16]

nest sweep {
  for i = 0..64
  for j = 0..64
  do cost 300 {
    read  u[i][j]
    read  u[i+1][-j+63]
    write v[j][i]
    write w[2*i+1]
  }
  do cost 50 { read t[i][j] }
}

nest strided {
  for k = 2..62 step 2
  do cost 10 { read w[k-1] }
}
`

func TestParseBasics(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || len(p.Arrays) != 4 || len(p.Nests) != 2 {
		t.Fatalf("shape: %s %d arrays %d nests", p.Name, len(p.Arrays), len(p.Nests))
	}
	u := p.ArrayByName("u")
	if u.ElemSize != 8 || !u.RowMajor || u.Dims[0] != 64 {
		t.Errorf("u = %+v", u)
	}
	if p.ArrayByName("v").RowMajor {
		t.Error("v not colmajor")
	}
	if p.ArrayByName("w").ElemSize != 8 {
		t.Error("w elem default")
	}
	tt := p.ArrayByName("t")
	if tt.Block == nil || tt.Block[0] != 16 {
		t.Errorf("t block = %v", tt.Block)
	}
	n := p.Nests[0]
	if n.Label != "sweep" || n.Depth() != 2 || len(n.Stmts) != 2 {
		t.Fatalf("nest = %+v", n)
	}
	if n.Stmts[0].Cost != 300 || len(n.Stmts[0].Refs) != 4 {
		t.Errorf("stmt0 = %+v", n.Stmts[0])
	}
	// Check parsed expressions: u[i+1][-j+63].
	r := n.Stmts[0].Refs[1]
	if got := r.Index[0].Eval([]int64{5, 7}); got != 6 {
		t.Errorf("i+1 at (5,7) = %d", got)
	}
	if got := r.Index[1].Eval([]int64{5, 7}); got != 56 {
		t.Errorf("-j+63 at (5,7) = %d", got)
	}
	// w[2*i+1].
	r = n.Stmts[0].Refs[3]
	if got := r.Index[0].Eval([]int64{5, 7}); got != 11 {
		t.Errorf("2*i+1 = %d", got)
	}
	// Strided loop.
	l := p.Nests[1].Loops[0]
	if l.Lo != 2 || l.Hi != 62 || l.Step != 2 {
		t.Errorf("loop = %+v", l)
	}
	// w[k-1].
	if got := p.Nests[1].Stmts[0].Refs[0].Index[0].Eval([]int64{10}); got != 9 {
		t.Errorf("k-1 at 10 = %d", got)
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if Format(q) != text {
		t.Errorf("format not stable:\n%s\nvs\n%s", text, Format(q))
	}
}

func TestRoundTripWorkloads(t *testing.T) {
	// Every built-in benchmark survives format -> parse -> format.
	for _, b := range workloads.All() {
		text := Format(b.Program)
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", b.Name, err)
		}
		if Format(q) != text {
			t.Errorf("%s: format not stable", b.Name)
		}
		if q.TotalCost() != b.Program.TotalCost() {
			t.Errorf("%s: cost changed", b.Name)
		}
		if q.TotalBytes() != b.Program.TotalBytes() {
			t.Errorf("%s: bytes changed", b.Name)
		}
		if len(q.Nests) != len(b.Program.Nests) {
			t.Errorf("%s: nest count changed", b.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no program
		"program",                           // missing name
		"program p array",                   // missing array name
		"program p array a",                 // missing dims
		"program p array a[0",               // unclosed dim
		"program p nest n { }",              // no loops
		"program p nest n { for i = 0..4 }", // no statements
		"program p nest n { for i = 0..4 do { } }",                                   // empty stmt
		"program p nest n { for i = 0..4 do { read a[i] } }",                         // undeclared array
		"program p array a[4] nest n { for i = 0..4 do { read a[q] } }",              // unknown var
		"program p array a[4] nest n { for i = 0..4 for i = 0..2 do { read a[i] } }", // dup var
		"program p array a[4] array a[4]",                                            // dup array
		"program p bogus",                                                            // unknown decl
		"program p array a[4] nest n { for i = 0..x do { read a[i] } }",              // bad bound
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestParseValidates(t *testing.T) {
	// Structurally parsable but semantically invalid (subscript rank).
	src := "program p array a[4][4] nest n { for i = 0..4 do { read a[i] } }"
	if _, err := Parse(src); err == nil {
		t.Error("rank mismatch accepted")
	}
}

func TestFormatExprFallbacks(t *testing.T) {
	// Expressions over loops beyond the named set still render.
	e := ir.Var(0).Times(-1)
	got := formatExpr(e, nil)
	if got != "-i0" {
		t.Errorf("formatExpr = %q", got)
	}
	if formatExpr(ir.Cnst(0), nil) != "0" {
		t.Error("zero expr")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "program p # trailing comment\narray a[4]\nnest n {\n for i = 0..4\n do { read a[i] }\n}\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(mustParse(t, src)), "program p") {
		t.Error("format lost name")
	}
}

func mustParse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFormatAnnotated(t *testing.T) {
	p := mustParse(t, "program p\narray a[4]\narray b[4]\nnest n0 { for i = 0..4 do { read a[i] } }\nnest n1 { for i = 0..4 do { read b[i] } }\n")
	calls := []CallSite{
		{Nest: 1, Iter: 2, Op: trace.PowerOp{Disk: 3, Kind: trace.OpSpinUp}},
		{Nest: 0, Iter: 0, Op: trace.PowerOp{Disk: 1, Kind: trace.OpSetRPM, RPM: 4200}},
		{Nest: 0, Iter: 3, Op: trace.PowerOp{Disk: 2, Kind: trace.OpSpinDown}},
	}
	out := FormatAnnotated(p, calls)
	// Calls land inside their nests, sorted by iteration.
	n0 := strings.Index(out, "nest n0")
	n1 := strings.Index(out, "nest n1")
	setIdx := strings.Index(out, "set_RPM(4200, disk1) near iteration 0")
	downIdx := strings.Index(out, "spin_down(disk2) near iteration 3")
	upIdx := strings.Index(out, "spin_up(disk3) near iteration 2")
	if setIdx < n0 || setIdx > n1 || downIdx < setIdx || downIdx > n1 {
		t.Fatalf("nest 0 calls misplaced:\n%s", out)
	}
	if upIdx < n1 {
		t.Fatalf("nest 1 call misplaced:\n%s", out)
	}
	// Annotated output with many calls truncates.
	var many []CallSite
	for i := 0; i < 40; i++ {
		many = append(many, CallSite{Nest: 0, Iter: int64(i), Op: trace.PowerOp{Disk: 0, Kind: trace.OpSpinUp}})
	}
	out = FormatAnnotated(p, many)
	if !strings.Contains(out, "more power calls") {
		t.Error("no truncation marker")
	}
	// The annotated text minus comments still parses.
	var clean []string
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "#") {
			clean = append(clean, line)
		}
	}
	if _, err := Parse(strings.Join(clean, "\n")); err != nil {
		t.Fatalf("stripped annotation does not parse: %v", err)
	}
}
