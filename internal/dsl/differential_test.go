package dsl

import (
	"math/rand"
	"testing"

	"sdpm/internal/progen"
)

// TestRoundTripGenerated formats randomly generated programs and
// parses them back: the round trip must preserve structure exactly.
func TestRoundTripGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 150; trial++ {
		p := progen.MustGenerate(rng, progen.DefaultOptions())
		text := Format(p)
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: re-parse: %v\n%s", trial, err, text)
		}
		if Format(q) != text {
			t.Fatalf("trial %d: format not a fixed point", trial)
		}
		if q.TotalCost() != p.TotalCost() || q.TotalBytes() != p.TotalBytes() {
			t.Fatalf("trial %d: totals changed", trial)
		}
		if len(q.Nests) != len(p.Nests) {
			t.Fatalf("trial %d: nest count changed", trial)
		}
		for ni, n := range p.Nests {
			qn := q.Nests[ni]
			if n.Trips() != qn.Trips() || len(n.Stmts) != len(qn.Stmts) {
				t.Fatalf("trial %d nest %d: shape changed", trial, ni)
			}
			// Spot-check subscript semantics at a few iterations.
			trips := n.Trips()
			for _, it := range []int64{0, trips / 2, trips - 1} {
				if it < 0 || trips == 0 {
					continue
				}
				iv := n.IndexOf(it)
				for si, s := range n.Stmts {
					for ri := range s.Refs {
						a := s.Refs[ri].OffsetAt(iv)
						b := qn.Stmts[si].Refs[ri].OffsetAt(iv)
						if a != b {
							t.Fatalf("trial %d: offset mismatch after round trip", trial)
						}
					}
				}
			}
		}
	}
}
