package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"sdpm/internal/ir"
)

// Parse reads a program in the DSL text format.
func Parse(src string) (*ir.Program, error) {
	p := &parser{toks: lex(src)}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type token struct {
	kind string // "ident", "int", "punct", "eof"
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{"ident", src[i:j], line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{"int", src[i:j], line})
			i = j
		case strings.ContainsRune("[]{}=*+-.", rune(c)):
			// ".." is one token.
			if c == '.' && i+1 < len(src) && src[i+1] == '.' {
				toks = append(toks, token{"punct", "..", line})
				i += 2
			} else {
				toks = append(toks, token{"punct", string(c), line})
				i++
			}
		default:
			toks = append(toks, token{"punct", string(c), line})
			i++
		}
	}
	toks = append(toks, token{"eof", "", line})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(text string) bool {
	t := p.peek()
	return t.text == text && t.kind != "eof"
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("dsl: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if !p.at(text) {
		return p.errf("expected %q, got %q", text, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != "ident" {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) integer() (int64, error) {
	neg := false
	if p.at("-") {
		neg = true
		p.next()
	}
	t := p.peek()
	if t.kind != "int" {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	p.next()
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) program() (*ir.Program, error) {
	if err := p.expect("program"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	prog := &ir.Program{Name: name}
	arrays := map[string]*ir.Array{}
	for {
		switch {
		case p.at("array"):
			a, err := p.array()
			if err != nil {
				return nil, err
			}
			if arrays[a.Name] != nil {
				return nil, p.errf("duplicate array %q", a.Name)
			}
			arrays[a.Name] = a
			prog.Arrays = append(prog.Arrays, a)
		case p.at("nest"):
			n, err := p.nest(arrays)
			if err != nil {
				return nil, err
			}
			prog.Nests = append(prog.Nests, n)
		case p.peek().kind == "eof":
			return prog, nil
		default:
			return nil, p.errf("expected 'array', 'nest', or end of file, got %q", p.peek().text)
		}
	}
}

func (p *parser) dims() ([]int64, error) {
	var out []int64
	for p.at("[") {
		p.next()
		v, err := p.integer()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, p.errf("expected at least one [dim]")
	}
	return out, nil
}

func (p *parser) array() (*ir.Array, error) {
	p.next() // "array"
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dims, err := p.dims()
	if err != nil {
		return nil, err
	}
	a := &ir.Array{Name: name, Dims: dims, ElemSize: 8, RowMajor: true}
	for {
		switch {
		case p.at("elem"):
			p.next()
			if a.ElemSize, err = p.integer(); err != nil {
				return nil, err
			}
		case p.at("rowmajor"):
			p.next()
			a.RowMajor = true
		case p.at("colmajor"):
			p.next()
			a.RowMajor = false
		case p.at("block"):
			p.next()
			if a.Block, err = p.dims(); err != nil {
				return nil, err
			}
		default:
			return a, nil
		}
	}
}

func (p *parser) nest(arrays map[string]*ir.Array) (*ir.Nest, error) {
	p.next() // "nest"
	label, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	n := &ir.Nest{Label: label}
	vars := map[string]int{}
	for p.at("for") {
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, dup := vars[name]; dup {
			return nil, p.errf("duplicate loop variable %q", name)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		lo, err := p.integer()
		if err != nil {
			return nil, err
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		hi, err := p.integer()
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if p.at("step") {
			p.next()
			if step, err = p.integer(); err != nil {
				return nil, err
			}
		}
		vars[name] = len(n.Loops)
		n.Loops = append(n.Loops, ir.Loop{Name: name, Lo: lo, Hi: hi, Step: step})
	}
	if len(n.Loops) == 0 {
		return nil, p.errf("nest %q has no loops", label)
	}
	for p.at("do") {
		s, err := p.stmt(arrays, vars)
		if err != nil {
			return nil, err
		}
		n.Stmts = append(n.Stmts, s)
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if len(n.Stmts) == 0 {
		return nil, fmt.Errorf("dsl: nest %q has no statements", label)
	}
	return n, nil
}

func (p *parser) stmt(arrays map[string]*ir.Array, vars map[string]int) (*ir.Stmt, error) {
	p.next() // "do"
	s := &ir.Stmt{}
	if p.at("cost") {
		p.next()
		c, err := p.integer()
		if err != nil {
			return nil, err
		}
		s.Cost = c
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.at("read") || p.at("write") {
		kind := ir.Read
		if p.peek().text == "write" {
			kind = ir.Write
		}
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		a := arrays[name]
		if a == nil {
			return nil, p.errf("reference to undeclared array %q", name)
		}
		var idx []ir.Expr
		for p.at("[") {
			p.next()
			e, err := p.expr(vars)
			if err != nil {
				return nil, err
			}
			idx = append(idx, e)
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		s.Refs = append(s.Refs, ir.Ref{Array: a, Index: idx, Kind: kind})
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if len(s.Refs) == 0 {
		return nil, fmt.Errorf("dsl: statement with no references")
	}
	return s, nil
}

// expr parses an affine expression: term (("+"|"-") term)*.
func (p *parser) expr(vars map[string]int) (ir.Expr, error) {
	e, err := p.term(vars, false)
	if err != nil {
		return ir.Expr{}, err
	}
	for p.at("+") || p.at("-") {
		negate := p.peek().text == "-"
		p.next()
		t, err := p.term(vars, negate)
		if err != nil {
			return ir.Expr{}, err
		}
		e = e.Add(t)
	}
	return e, nil
}

// term parses [INT "*"] IDENT | INT | "-" term.
func (p *parser) term(vars map[string]int, negate bool) (ir.Expr, error) {
	if p.at("-") {
		p.next()
		t, err := p.term(vars, !negate)
		if err != nil {
			return ir.Expr{}, err
		}
		return t, nil
	}
	sign := int64(1)
	if negate {
		sign = -1
	}
	t := p.peek()
	switch t.kind {
	case "int":
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return ir.Expr{}, p.errf("bad integer %q", t.text)
		}
		if p.at("*") {
			p.next()
			name, err := p.ident()
			if err != nil {
				return ir.Expr{}, err
			}
			d, ok := vars[name]
			if !ok {
				return ir.Expr{}, p.errf("unknown loop variable %q", name)
			}
			return ir.Var(d).Times(sign * v), nil
		}
		return ir.Cnst(sign * v), nil
	case "ident":
		p.next()
		d, ok := vars[t.text]
		if !ok {
			return ir.Expr{}, p.errf("unknown loop variable %q", t.text)
		}
		return ir.Var(d).Times(sign), nil
	default:
		return ir.Expr{}, p.errf("expected expression term, got %q", t.text)
	}
}
