package dsl

import "testing"

// FuzzParse exercises the DSL parser with arbitrary inputs: it must
// never panic, and anything it accepts must survive a
// format-and-reparse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("program p array a[4] nest n { for i = 0..4 do { read a[i] } }")
	f.Add("program p array a[4][4] block [2][2] nest n { for i = 0..4 for j = 0..4 do cost 5 { write a[i][j] } }")
	f.Add("program p # comment\narray a[8] colmajor elem 4 nest n { for k = 2..8 step 2 do { read a[-k+7] } }")
	f.Add("program p array a[4] nest n { for i = 0..4 do { read a[2*i-0] } }")
	f.Add("")
	f.Add("program")
	f.Add("}}}}]]]][[[")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(p)
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output failed to reparse: %v\n%s", err, text)
		}
		if Format(q) != text {
			t.Fatalf("format not a fixed point:\n%s\nvs\n%s", text, Format(q))
		}
	})
}
