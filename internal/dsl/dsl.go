// Package dsl defines a small text format for the loop-nest IR, so
// workloads can be authored, inspected, and fed to the command-line
// compiler without writing Go. The format mirrors the IR directly:
//
//	program swim
//
//	array u[1024][1024] elem 8 rowmajor
//	array v[1024][1024]
//
//	nest calc1 {
//	  for i = 0..1024
//	  for j = 0..1024 step 1
//	  do cost 300 {
//	    read  u[i][j]
//	    read  u[i+1][j]
//	    write v[2*j+1][i]
//	  }
//	}
//
// Arrays default to 8-byte elements in row-major order; an optional
// `block [b0][b1]` clause selects a blocked (tiled) layout.
// Subscripts are affine expressions over the enclosing loop
// variables: sums of `k*var`, `var`, and integer terms.
package dsl

import (
	"fmt"
	"strings"

	"sdpm/internal/ir"
)

// Format renders a program in the DSL text format; Parse inverts it.
func Format(p *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "\narray %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		fmt.Fprintf(&b, " elem %d", a.ElemSize)
		if a.RowMajor {
			b.WriteString(" rowmajor")
		} else {
			b.WriteString(" colmajor")
		}
		if a.Block != nil {
			b.WriteString(" block ")
			for _, d := range a.Block {
				fmt.Fprintf(&b, "[%d]", d)
			}
		}
		b.WriteString("\n")
	}
	for _, n := range p.Nests {
		fmt.Fprintf(&b, "\nnest %s {\n", n.Label)
		for _, l := range n.Loops {
			fmt.Fprintf(&b, "  for %s = %d..%d", l.Name, l.Lo, l.Hi)
			if l.Step != 1 {
				fmt.Fprintf(&b, " step %d", l.Step)
			}
			b.WriteString("\n")
		}
		for _, s := range n.Stmts {
			fmt.Fprintf(&b, "  do cost %d {\n", s.Cost)
			for _, r := range s.Refs {
				kw := "read "
				if r.Kind == ir.Write {
					kw = "write"
				}
				fmt.Fprintf(&b, "    %s %s", kw, r.Array.Name)
				for _, e := range r.Index {
					fmt.Fprintf(&b, "[%s]", formatExpr(e, n.Loops))
				}
				b.WriteString("\n")
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// formatExpr renders an affine expression using the nest's loop
// variable names.
func formatExpr(e ir.Expr, loops []ir.Loop) string {
	var parts []string
	for d, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("i%d", d)
		if d < len(loops) && loops[d].Name != "" {
			name = loops[d].Name
		}
		switch c {
		case 1:
			parts = append(parts, name)
		case -1:
			parts = append(parts, "-"+name)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, name))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += p
		} else {
			out += "+" + p
		}
	}
	return out
}
