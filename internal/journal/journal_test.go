package journal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Key: "a", Vals: nil},
		{Key: "table2|swim", Vals: []float64{1, 2.5, -3e-9}},
		{Key: "k|with|pipes and spaces", Vals: []float64{math.MaxFloat64, math.SmallestNonzeroFloat64}},
		{Key: "unicode-ключ", Vals: []float64{0.1, 0.2, 0.30000000000000004}},
	}
	for _, want := range cases {
		line, err := EncodeLine(want)
		if err != nil {
			t.Fatalf("EncodeLine(%v): %v", want, err)
		}
		if line[len(line)-1] != '\n' {
			t.Fatalf("encoded line missing newline: %q", line)
		}
		got, err := DecodeLine(line[:len(line)-1])
		if err != nil {
			t.Fatalf("DecodeLine(%q): %v", line, err)
		}
		if got.Key != want.Key || len(got.Vals) != len(want.Vals) {
			t.Fatalf("round trip: got %v want %v", got, want)
		}
		for i := range want.Vals {
			if got.Vals[i] != want.Vals[i] {
				t.Fatalf("value %d not bit-exact: got %v want %v", i, got.Vals[i], want.Vals[i])
			}
		}
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := EncodeLine(Record{Key: "k", Vals: []float64{v}}); err == nil {
			t.Fatalf("EncodeLine accepted non-finite %v", v)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	line, err := EncodeLine(Record{Key: "k", Vals: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	line = line[:len(line)-1] // strip newline
	bad := [][]byte{
		nil,
		[]byte(""),
		[]byte("short"),
		line[:len(line)-1],               // truncated payload
		line[1:],                         // truncated header
		[]byte("zzzzzzzz " + "{}"),       // non-hex checksum
		[]byte("00000000 {\"k\":\"x\"}"), // wrong checksum
	}
	flip := append([]byte(nil), line...)
	flip[len(flip)-3] ^= 0x40 // bit flip inside the payload
	bad = append(bad, flip)
	for _, b := range bad {
		if _, err := DecodeLine(b); err == nil {
			t.Fatalf("DecodeLine accepted corrupt input %q", b)
		}
	}
}

func TestCreateAppendOpenResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []float64{9, 9}); err != nil { // rewrite: last wins
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	v, ok := j2.Lookup("a")
	if !ok || len(v) != 2 || v[0] != 9 || v[1] != 9 {
		t.Fatalf("Lookup(a) = %v,%v; want [9 9]", v, ok)
	}
	if _, ok := j2.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) returned ok")
	}
	rec, trunc := j2.Recovered()
	if rec != 2 || trunc != 0 {
		t.Fatalf("Recovered = %d,%d; want 2,0", rec, trunc)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "c"} {
		if err := j.Append(k, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop N bytes off the end — every cut length that leaves the
	// "c" record incomplete must resume with exactly {a, b}.
	lines := strings.SplitAfter(string(whole), "\n")
	lastLen := len(lines[2])
	for cut := 1; cut < lastLen; cut++ {
		torn := whole[:len(whole)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := j2.Len(); got != 2 {
			t.Fatalf("cut %d: Len = %d, want 2", cut, got)
		}
		rec, trunc := j2.Recovered()
		if rec != 2 || trunc != lastLen-cut {
			t.Fatalf("cut %d: Recovered = %d,%d; want 2,%d", cut, rec, trunc, lastLen-cut)
		}
		// The torn bytes must be gone so a fresh Append lands cleanly.
		if err := j2.Append("d", []float64{4}); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if got := j3.Len(); got != 3 {
			t.Fatalf("cut %d reopen: Len = %d, want 3 (a, b, d)", cut, got)
		}
		j3.Close()
	}
}

func TestOpenRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "c"} {
		if err := j.Append(k, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xff // flip a bit inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Line != 1 {
		t.Fatalf("CorruptError.Line = %d, want 1", ce.Line)
	}
}

func TestFinalizeCompactsAndSorts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("b", []float64{2})
	j.Append("a", []float64{1})
	j.Append("b", []float64{20}) // duplicate: only the last survives
	if err := j.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v, want [a b]", got)
	}
	v, _ := j2.Lookup("b")
	if len(v) != 1 || v[0] != 20 {
		t.Fatalf("Lookup(b) = %v, want [20]", v)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("finalized file has %d records, want 2", n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append("a", []float64{1}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func FuzzJournalDecode(f *testing.F) {
	for _, rec := range []Record{
		{Key: "table2|swim|cfg", Vals: []float64{12.5, 3300}},
		{Key: "x", Vals: nil},
		{Key: "neg", Vals: []float64{-1e-300, 7}},
	} {
		line, err := EncodeLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line[:len(line)-1])
	}
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("deadbeef {\"k\":\"a\",\"v\":[1]}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeLine(line)
		if err != nil {
			return // rejected input is always fine
		}
		// Accepted input must re-encode to a line that decodes to the
		// same record: no mis-parse can survive the round trip.
		if rec.Key == "" {
			t.Fatal("accepted record with empty key")
		}
		out, err := EncodeLine(rec)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		rec2, err := DecodeLine(out[:len(out)-1])
		if err != nil {
			t.Fatalf("re-encoded line failed to decode: %v", err)
		}
		if rec2.Key != rec.Key || len(rec2.Vals) != len(rec.Vals) {
			t.Fatalf("round trip mismatch: %v vs %v", rec, rec2)
		}
		for i := range rec.Vals {
			v1, v2 := rec.Vals[i], rec2.Vals[i]
			if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
				t.Fatalf("value %d drifted: %v vs %v", i, v1, v2)
			}
		}
	})
}
