package journal

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"sdpm/internal/fsx"
)

// FuzzRecoverTail fuzzes journal recovery against the two corruption
// shapes a real disk produces: arbitrary truncation (a crash mid-write
// — exactly the durable states the crash explorer enumerates) and a
// single-bit flip of a valid journal (media corruption). Recovery must
// never panic, never fabricate a record, report only *CorruptError and
// only for a flip, and after a pure truncation recover exactly the
// records that lie fully within the cut.
func FuzzRecoverTail(f *testing.F) {
	// Seeds: record-boundary truncations, mid-record truncations
	// (header, payload, the trailing newline), and flips in the
	// checksum, the payload, and a newline separator.
	f.Add(uint8(3), uint32(0), false, uint32(0))         // empty file
	f.Add(uint8(3), uint32(1), false, uint32(0))         // mid-header cut
	f.Add(uint8(3), uint32(40), false, uint32(0))        // mid-payload cut
	f.Add(uint8(3), uint32(1<<30), false, uint32(0))     // no cut (full file)
	f.Add(uint8(0), uint32(9), false, uint32(0))         // single record, torn
	f.Add(uint8(7), uint32(200), false, uint32(0))       // deep boundary region
	f.Add(uint8(3), uint32(0), true, uint32(3))          // flip in first checksum
	f.Add(uint8(3), uint32(0), true, uint32(12*8))       // flip in first payload
	f.Add(uint8(3), uint32(0), true, uint32(300))        // flip somewhere mid-file
	f.Add(uint8(1), uint32(0), true, uint32(0))          // two records, flip bit 0
	f.Add(uint8(4), uint32(0), true, uint32(0xffffffff)) // flip clamps to last bit
	f.Fuzz(func(t *testing.T, nRecs uint8, cut uint32, doFlip bool, flipBit uint32) {
		n := int(nRecs)%8 + 1
		orig := make(map[string][]float64, n)
		var data []byte
		var bounds []int // cumulative end offset of each record
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("cell/%d", i)
			vals := []float64{float64(i), float64(i) * 0.5, -1.25}
			orig[key] = vals
			line, err := EncodeLine(Record{Key: key, Vals: vals})
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, line...)
			bounds = append(bounds, len(data))
		}

		if doFlip {
			bit := int(flipBit) % (len(data) * 8)
			data[bit/8] ^= 1 << (bit % 8)
		} else {
			c := int(cut) % (len(data) + 1)
			data = data[:c]
			cut = uint32(c)
		}

		fa := fsx.NewFaulty(1)
		fa.SetFile("j", data)
		j, err := OpenFS(fa, "j")
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("recovery failed with %v, want only *CorruptError", err)
			}
			if !doFlip {
				t.Fatalf("pure truncation at %d reported corruption: %v", cut, err)
			}
			return
		}
		defer j.Close()

		// Never fabricate: every recovered record must be an original,
		// bit-exact. (A single-bit flip cannot forge a valid checksum.)
		for _, k := range j.Keys() {
			want, ok := orig[k]
			got, _ := j.Lookup(k)
			if !ok || !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered fabricated or altered record %q = %v, want %v", k, got, want)
			}
		}

		if !doFlip {
			// Pure truncation: recovered set is exactly the records that
			// lie fully within the cut, and the torn remainder is
			// truncated away so the journal is appendable.
			want := 0
			for _, b := range bounds {
				if b <= int(cut) {
					want++
				}
			}
			if j.Len() != want {
				t.Fatalf("cut at %d recovered %d records, want %d (bounds %v)", cut, j.Len(), want, bounds)
			}
			recs, torn := j.Recovered()
			if recs != want {
				t.Fatalf("Recovered() = %d, want %d", recs, want)
			}
			if wantTorn := int(cut) - boundaryAtOrBelow(bounds, int(cut)); torn != wantTorn {
				t.Fatalf("cut at %d truncated %d torn bytes, want %d", cut, torn, wantTorn)
			}
			if err := j.Append("resumed", []float64{1}); err != nil {
				t.Fatalf("append after truncation recovery: %v", err)
			}
		}
	})
}

// boundaryAtOrBelow returns the largest record boundary ≤ off (0 if
// the cut lands inside the first record).
func boundaryAtOrBelow(bounds []int, off int) int {
	best := 0
	for _, b := range bounds {
		if b <= off {
			best = b
		}
	}
	return best
}
