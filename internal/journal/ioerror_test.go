package journal

import (
	"errors"
	"reflect"
	"testing"

	"sdpm/internal/fsx"
)

var (
	errNoSpace = errors.New("no space left on device")
	errIO      = errors.New("input/output error")
)

// A clean write failure (zero bytes landed) surfaces as a typed
// *IOError but leaves the journal usable: the file still ends at a
// record boundary, so a retry of the same Append succeeds.
func TestAppendCleanWriteFailureIsRetryable(t *testing.T) {
	fa := fsx.NewFaulty(1)
	j, err := CreateFS(fa, "j")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []float64{1}); err != nil {
		t.Fatal(err)
	}
	fa.FailAt(fa.OpCount(), errNoSpace) // next op is b's write
	err = j.Append("b", []float64{2})
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("Append error = %v, want *IOError", err)
	}
	if ioe.Op != "write" || !errors.Is(ioe, errNoSpace) {
		t.Fatalf("IOError = op %q err %v, want a write ENOSPC", ioe.Op, ioe.Err)
	}
	if j.Poisoned() != nil {
		t.Fatal("clean zero-byte write failure poisoned the journal")
	}
	if err := j.Append("b", []float64{2}); err != nil {
		t.Fatalf("retry after clean failure: %v", err)
	}
	if _, ok := j.Lookup("b"); !ok {
		t.Fatal("retried cell missing")
	}
}

// A short write tears the record mid-line: the typed error carries
// the torn offset, the journal is poisoned, and later Appends fail
// fast with an error still unwrapping to the original *IOError.
func TestAppendShortWritePoisons(t *testing.T) {
	fa := fsx.NewFaulty(1)
	j, err := CreateFS(fa, "j")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []float64{1}); err != nil {
		t.Fatal(err)
	}
	sizeBefore := j.size
	fa.ShortWriteAt(fa.OpCount(), errIO)
	err = j.Append("b", []float64{2})
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("Append error = %v, want *IOError", err)
	}
	if ioe.Op != "write" || ioe.Offset <= sizeBefore {
		t.Fatalf("IOError op %q offset %d, want a write past offset %d (the torn bytes)", ioe.Op, ioe.Offset, sizeBefore)
	}
	if j.Poisoned() == nil {
		t.Fatal("short write did not poison the journal")
	}
	err = j.Append("c", []float64{3})
	var fast *IOError
	if !errors.As(err, &fast) || fast != ioe {
		t.Fatalf("poisoned Append = %v, want fail-fast wrapping the original IOError", err)
	}
	// The torn record never became visible: resume truncates it away
	// and the journal is writable again.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFS(fa, "j")
	if err != nil {
		t.Fatalf("resume after torn write: %v", err)
	}
	defer r.Close()
	if _, torn := r.Recovered(); torn == 0 {
		t.Fatal("resume did not truncate the torn tail")
	}
	if _, ok := r.Lookup("b"); ok {
		t.Fatal("torn cell reported committed after resume")
	}
	if v, ok := r.Lookup("a"); !ok || !reflect.DeepEqual(v, []float64{1}) {
		t.Fatalf("intact cell lost on resume: %v %v", v, ok)
	}
	if err := r.Append("b", []float64{2}); err != nil {
		t.Fatalf("append after resume: %v", err)
	}
}

// A failed fsync poisons unconditionally: the page cache is undefined
// afterwards, so the journal refuses to write past the suspect bytes.
func TestAppendSyncFailurePoisons(t *testing.T) {
	fa := fsx.NewFaulty(1)
	j, err := CreateFS(fa, "j")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []float64{1}); err != nil {
		t.Fatal(err)
	}
	fa.FailAt(fa.OpCount()+1, errIO) // skip b's write, fail its sync
	err = j.Append("b", []float64{2})
	var ioe *IOError
	if !errors.As(err, &ioe) {
		t.Fatalf("Append error = %v, want *IOError", err)
	}
	if ioe.Op != "sync" {
		t.Fatalf("IOError op = %q, want sync", ioe.Op)
	}
	if j.Poisoned() == nil {
		t.Fatal("failed fsync did not poison the journal")
	}
	if _, ok := j.Lookup("b"); ok {
		t.Fatal("unsynced cell reported committed in memory")
	}
	if err := j.Append("c", []float64{3}); err == nil {
		t.Fatal("poisoned journal accepted another append")
	}
	// Finalize is still safe: it writes a fresh file from the
	// in-memory records and replaces the journal atomically.
	if err := j.Finalize(); err != nil {
		t.Fatalf("Finalize on poisoned journal: %v", err)
	}
	r, err := OpenFS(fa, "j")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Keys(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("finalized poisoned journal holds %v, want [a]", got)
	}
}
