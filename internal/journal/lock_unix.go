//go:build unix

package journal

import (
	"errors"
	"os"
	"syscall"
)

// lockFile takes the journal's exclusive advisory lock (flock). The
// lock belongs to the open file description, so it excludes a second
// opener in the same process just as it excludes another process, and
// the kernel releases it automatically when the descriptor closes —
// a crashed writer never leaves a stale lock behind.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return errHeld
	}
	return err
}
