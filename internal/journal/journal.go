// Package journal provides a crash-safe, append-only result journal
// for long experiment sweeps. Each completed cell is one JSONL record
// protected by a CRC32-C checksum and fsynced before the cell's value
// is considered durable, so a killed sweep can be resumed with
// -resume and recomputes only the cells that never made it to disk.
//
// On-disk format, one record per line:
//
//	<crc32c as 8 lowercase hex digits> <json>\n
//
// where <json> is {"k":"<cell key>","v":[<float64 values>]} and the
// checksum covers exactly the JSON bytes (not the trailing newline).
// The format is self-validating: a torn tail from a crash (partial
// line, missing newline, or a record whose checksum does not match)
// is detected on open and truncated away; corruption in the middle of
// the file is reported as an error rather than silently skipped.
//
// Values are float64 and round-trip through JSON bit-exactly
// (encoding/json emits the shortest representation that parses back
// to the same float), which is what makes a resumed run byte-identical
// to a cold one.
//
// All filesystem access goes through internal/fsx, so every failure
// path — ENOSPC, EIO, short writes, failed fsyncs, and a crash at any
// operation — is exercised deterministically by the crash explorer
// (fsx.Explore); see docs/robustness.md ("Crash consistency").
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sdpm/internal/fsx"
)

// castagnoli is the CRC32-C polynomial table; Castagnoli has better
// error-detection properties than IEEE and hardware support on most
// CPUs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled cell result.
type Record struct {
	Key  string    `json:"k"`
	Vals []float64 `json:"v"`
}

// DecodeError describes a record that failed validation.
type DecodeError struct {
	Reason string
}

func (e *DecodeError) Error() string { return "journal: " + e.Reason }

// CorruptError reports corruption that is not a torn tail: a record
// before the last one failed validation, which truncation cannot
// explain.
type CorruptError struct {
	Path string
	Line int // 1-based line number of the bad record
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: corrupt record at line %d: %v", e.Path, e.Line, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// LockError reports that the journal at Path is already open for
// writing — by another process, or by another Journal value in this
// one. Two concurrent writers would interleave appends and corrupt
// the file, so Create and Open fail fast with this typed error
// instead; a resume attempted while a finalize is still in flight
// fails the same way. The lock is advisory (flock) and the kernel
// drops it when the holder's descriptor closes, so a crashed writer
// never wedges the journal.
type LockError struct {
	Path string
}

func (e *LockError) Error() string {
	return fmt.Sprintf("journal: %s: already locked by another writer", e.Path)
}

// IOError reports a failed journal write or fsync: the record the
// caller tried to append did not become durable. Offset is the byte
// offset in the journal file where the failure happened; Op is
// "write" or "sync". After a failure that may have left torn bytes in
// the file (a partial write, or any fsync failure — the page cache is
// undefined after a failed fsync), the journal is poisoned: later
// Appends fail fast with an error wrapping the original IOError
// instead of writing after a torn record. A clean write failure that
// landed zero bytes leaves the journal usable, so callers may retry.
type IOError struct {
	Path   string
	Op     string // "write" or "sync"
	Offset int64  // byte offset in the journal where the failure hit
	Err    error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("journal: %s: %s failed at offset %d: %v", e.Path, e.Op, e.Offset, e.Err)
}

func (e *IOError) Unwrap() error { return e.Err }

// EncodeLine renders a record in the on-disk line format, including
// the trailing newline. It fails if the values cannot round-trip
// through JSON (NaN or infinity).
func EncodeLine(r Record) ([]byte, error) {
	for _, v := range r.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, &DecodeError{Reason: "non-finite value cannot be journaled"}
		}
	}
	js, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, 8+1+len(js)+1)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(js, castagnoli))
	line = append(line, js...)
	line = append(line, '\n')
	return line, nil
}

// DecodeLine parses one line (without the trailing newline). A record
// whose checksum does not cover its JSON payload, or whose payload is
// not the canonical record shape, is rejected — never mis-parsed.
func DecodeLine(line []byte) (Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, &DecodeError{Reason: "short or malformed record header"}
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return Record{}, &DecodeError{Reason: "bad checksum field: " + err.Error()}
	}
	js := line[9:]
	if got := crc32.Checksum(js, castagnoli); got != want {
		return Record{}, &DecodeError{Reason: fmt.Sprintf("checksum mismatch: header %08x, payload %08x", want, got)}
	}
	var r Record
	dec := json.NewDecoder(bytes.NewReader(js))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Record{}, &DecodeError{Reason: "bad payload: " + err.Error()}
	}
	if dec.More() {
		return Record{}, &DecodeError{Reason: "trailing data after record payload"}
	}
	if r.Key == "" {
		return Record{}, &DecodeError{Reason: "record has empty key"}
	}
	return r, nil
}

// Journal is an open result journal. All methods are safe for
// concurrent use; Append serializes writers.
type Journal struct {
	mu   sync.Mutex
	fs   fsx.FS
	path string
	f    fsx.File
	vals map[string][]float64

	size     int64    // current end-of-file offset (all valid records)
	poisoned *IOError // first torn-write/sync failure; Appends fail fast

	recovered int // records kept from a pre-existing file
	truncated int // bytes of torn tail discarded on open
}

// Create opens a fresh journal at path, truncating any existing
// file. It fails with a *LockError if another writer already holds
// the journal open.
func Create(path string) (*Journal, error) { return CreateFS(fsx.OS, path) }

// CreateFS is Create over an explicit filesystem — fsx.OS in
// production, a fault-injecting fsx.Faulty under test.
func CreateFS(fs fsx.FS, path string) (*Journal, error) {
	// Lock before truncating: opening with O_TRUNC would destroy a
	// live writer's records before the lock check could refuse.
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := acquire(fs, f, path); err != nil {
		f.Close()
		return nil, err
	}
	removeStaleTmp(fs, path)
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{fs: fs, path: path, f: f, vals: make(map[string][]float64)}, nil
}

// acquire wraps the filesystem lock with the typed error.
func acquire(fs fsx.FS, f fsx.File, path string) error {
	if err := fs.Lock(f); err != nil {
		if errors.Is(err, fsx.ErrLockHeld) {
			return &LockError{Path: path}
		}
		return err
	}
	return nil
}

// removeStaleTmp deletes a finalize temp file a crashed writer may
// have left next to the journal. Safe under the lock: no live writer
// can be mid-finalize on this path while we hold it.
func removeStaleTmp(fs fsx.FS, path string) {
	fs.Remove(path + ".tmp")
}

// Open opens the journal at path for resumption, creating it if it
// does not exist. Every valid record is loaded (the last write for a
// key wins); a torn tail left by a crash is truncated away. Invalid
// records that are *not* the tail mean the file was corrupted some
// other way, and Open fails with a *CorruptError. Like Create, Open
// fails with a *LockError while another writer holds the journal.
func Open(path string) (*Journal, error) { return OpenFS(fsx.OS, path) }

// OpenFS is Open over an explicit filesystem.
func OpenFS(fs fsx.FS, path string) (*Journal, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := acquire(fs, f, path); err != nil {
		f.Close()
		return nil, err
	}
	removeStaleTmp(fs, path)
	j := &Journal{fs: fs, path: path, f: f, vals: make(map[string][]float64)}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the file, loads valid records, and truncates a torn
// tail. A record is "the tail" only if nothing valid follows it. A
// final line without a trailing newline is always treated as torn,
// even if its bytes happen to validate, because Append writes record
// and newline together — a missing newline proves a partial write.
func (j *Journal) recover() error {
	data, err := j.fs.ReadFile(j.path)
	if err != nil {
		return err
	}
	var (
		validEnd int64 // file offset just past the last valid record
		offset   int64
		badLine  int   // line number of first invalid record, 0 = none
		badErr   error // its decode error
		line     int
	)
	for len(data) > 0 {
		line++
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Torn tail: no newline means Append never finished.
			break
		}
		raw := data[:nl]
		data = data[nl+1:]
		offset += int64(nl) + 1
		rec, err := DecodeLine(raw)
		if err != nil {
			if badLine == 0 {
				badLine, badErr = line, err
			}
			continue
		}
		if badLine != 0 {
			// A valid record after an invalid one: mid-file corruption.
			return &CorruptError{Path: j.path, Line: badLine, Err: badErr}
		}
		j.vals[rec.Key] = rec.Vals
		validEnd = offset
	}
	size, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if size > validEnd {
		// Torn tail (partial last line, or trailing records that fail
		// validation): cut it off so Append starts on a clean line.
		if err := j.f.Truncate(validEnd); err != nil {
			return err
		}
		if _, err := j.f.Seek(validEnd, io.SeekStart); err != nil {
			return err
		}
		j.truncated = int(size - validEnd)
	}
	j.size = validEnd
	j.recovered = len(j.vals)
	return nil
}

// Append journals one cell result durably: the record is written and
// fsynced before Append returns, so a crash after Append never loses
// the cell. A failure surfaces as a typed *IOError carrying the op
// (write vs sync) and byte offset; a failure that may have torn the
// file poisons the journal — see IOError.
func (j *Journal) Append(key string, vals []float64) error {
	line, err := EncodeLine(Record{Key: key, Vals: vals})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if j.poisoned != nil {
		return fmt.Errorf("journal: poisoned by earlier failure, refusing to write after a possibly torn record: %w", j.poisoned)
	}
	n, err := j.f.Write(line)
	if err != nil {
		ioe := &IOError{Path: j.path, Op: "write", Offset: j.size + int64(n), Err: err}
		if n > 0 {
			// Bytes may be torn mid-record; writing more would bury the
			// damage where recovery treats it as mid-file corruption.
			j.poisoned = ioe
		}
		return ioe
	}
	if err := j.f.Sync(); err != nil {
		// After a failed fsync the page cache is undefined (the kernel
		// may have dropped the dirty pages): poison unconditionally.
		ioe := &IOError{Path: j.path, Op: "sync", Offset: j.size, Err: err}
		j.poisoned = ioe
		return ioe
	}
	j.size += int64(len(line))
	j.vals[key] = append([]float64(nil), vals...)
	return nil
}

// Probe verifies the journal is writable without adding a record: it
// writes a single newline at end of file, fsyncs, truncates the byte
// back off, and fsyncs again. A crash mid-probe leaves at most a
// blank tail line, which recovery already discards as torn. Callers
// (the serving layer's degraded-mode reprobe) use this to prove a
// reopened journal is genuinely healthy before trusting it with
// durability again.
func (j *Journal) Probe() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if j.poisoned != nil {
		return fmt.Errorf("journal: poisoned by earlier failure: %w", j.poisoned)
	}
	if _, err := j.f.Write([]byte("\n")); err != nil {
		return &IOError{Path: j.path, Op: "write", Offset: j.size, Err: err}
	}
	if err := j.f.Sync(); err != nil {
		return &IOError{Path: j.path, Op: "sync", Offset: j.size, Err: err}
	}
	if err := j.f.Truncate(j.size); err != nil {
		return err
	}
	if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return &IOError{Path: j.path, Op: "sync", Offset: j.size, Err: err}
	}
	return nil
}

// Lookup returns the journaled values for key, if any.
func (j *Journal) Lookup(key string) ([]float64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.vals[key]
	return v, ok
}

// Len reports the number of distinct journaled cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.vals)
}

// Recovered reports how many records were loaded from a pre-existing
// file and how many bytes of torn tail were discarded.
func (j *Journal) Recovered() (records, truncatedBytes int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered, j.truncated
}

// Poisoned returns the failure that poisoned the journal, or nil.
func (j *Journal) Poisoned() *IOError {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.poisoned
}

// Close releases the file without compacting.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Finalize compacts the journal after a fully successful run: records
// are rewritten (deduplicated, in sorted key order) to <path>.tmp,
// fsynced, and atomically renamed over the journal, so the finalized
// file is either the complete old journal or the complete new one —
// never a mix. The journal is closed afterwards. Finalize is safe
// even on a poisoned journal: it writes a fresh file from the
// in-memory records and only replaces the journal after a successful
// fsync, so a failure here never damages the existing file.
func (j *Journal) Finalize() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	keys := make([]string, 0, len(j.vals))
	for k := range j.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tmp := j.path + ".tmp"
	tf, err := j.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tf)
	for _, k := range keys {
		line, err := EncodeLine(Record{Key: k, Vals: j.vals[k]})
		if err != nil {
			tf.Close()
			j.fs.Remove(tmp)
			return err
		}
		if _, err := w.Write(line); err != nil {
			tf.Close()
			j.fs.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tf.Close()
		j.fs.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		j.fs.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		j.fs.Remove(tmp)
		return err
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		j.fs.Remove(tmp)
		return err
	}
	if err := j.fs.SyncDir(filepath.Dir(j.path)); err != nil {
		// The rename may still be volatile: without the directory sync
		// its durability is genuinely unknown, which a finalize must
		// not paper over.
		return err
	}
	err = j.f.Close()
	j.f = nil
	return err
}

// Keys returns the journaled cell keys in sorted order.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, 0, len(j.vals))
	for k := range j.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
