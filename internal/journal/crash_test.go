package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"sdpm/internal/fsx"
)

// restoreDurable writes a crash point's durable bytes into a fresh
// real directory — the disk as the machine would find it on reboot.
func restoreDurable(t *testing.T, durable map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range durable {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCrashRecoveryEveryPoint enumerates every fsync-delimited crash
// point of a full journal run — create, four appends, finalize — and
// proves the two recovery invariants at each: an fsync-acknowledged
// cell is never lost, and a cell whose fsync barrier never completed
// is never reported committed. Recovery is then driven to completion
// (the kill-and-resume path): the remaining cells are appended and
// the journal finalized, landing the identical full record set no
// matter where the crash hit.
func TestCrashRecoveryEveryPoint(t *testing.T) {
	keys := []string{"cell/a", "cell/b", "cell/c", "cell/d"}
	vals := map[string][]float64{
		"cell/a": {1.5, -2.25},
		"cell/b": {3.0078125e-8},
		"cell/c": {0, 42},
		"cell/d": {9.869604401089358},
	}

	var acked []string
	finalized := false
	scenario := func(fs fsx.FS) error {
		acked, finalized = nil, false
		j, err := CreateFS(fs, "results.journal")
		if err != nil {
			return err
		}
		for _, k := range keys {
			if err := j.Append(k, vals[k]); err != nil {
				return err
			}
			acked = append(acked, k)
		}
		if err := j.Finalize(); err != nil {
			return err
		}
		finalized = true
		return nil
	}

	err := fsx.Explore(1, nil, scenario, func(p fsx.CrashPoint) error {
		dir := restoreDurable(t, p.Durable)
		path := filepath.Join(dir, "results.journal")
		j, err := Open(path)
		if err != nil {
			return err
		}
		// Invariant 1: every fsync-acknowledged cell survives, with its
		// exact values. Invariant 2: nothing beyond the acknowledged set
		// is reported committed — under the deterministic fsync-barrier
		// model the recovered set equals the acknowledged set exactly.
		got := j.Keys()
		want := append([]string{}, acked...)
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			j.Close()
			return errorsf("crash at op %d: recovered %v, acknowledged %v", p.Op, got, want)
		}
		for _, k := range got {
			v, _ := j.Lookup(k)
			if !reflect.DeepEqual(v, vals[k]) {
				j.Close()
				return errorsf("crash at op %d: cell %s recovered %v, want %v", p.Op, k, v, vals[k])
			}
		}
		// A stale finalize tmp never survives recovery.
		if left, _ := filepath.Glob(path + ".tmp*"); len(left) != 0 {
			j.Close()
			return errorsf("crash at op %d: stale tmp survived recovery: %v", p.Op, left)
		}
		// Kill-and-resume: complete the run from the recovered state.
		for _, k := range keys {
			if _, ok := j.Lookup(k); !ok {
				if err := j.Append(k, vals[k]); err != nil {
					j.Close()
					return err
				}
			}
		}
		if err := j.Finalize(); err != nil {
			return err
		}
		final, err := Open(path)
		if err != nil {
			return err
		}
		defer final.Close()
		if final.Len() != len(keys) {
			return errorsf("crash at op %d: resumed journal holds %d cells, want %d", p.Op, final.Len(), len(keys))
		}
		for _, k := range keys {
			v, ok := final.Lookup(k)
			if !ok || !reflect.DeepEqual(v, vals[k]) {
				return errorsf("crash at op %d: resumed cell %s = %v (%v)", p.Op, k, v, ok)
			}
		}
		_ = finalized
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringResume crashes a *resume* at every point: a journal
// with two durable records is reopened, two more cells are appended,
// and the file is finalized. Recovery must keep the pre-existing
// records at every crash point — a resume can never lose what an
// earlier run already made durable.
func TestCrashDuringResume(t *testing.T) {
	pre := map[string][]float64{"old/a": {1}, "old/b": {2}}
	var preBytes []byte
	for _, k := range []string{"old/a", "old/b"} {
		line, err := EncodeLine(Record{Key: k, Vals: pre[k]})
		if err != nil {
			t.Fatal(err)
		}
		preBytes = append(preBytes, line...)
	}
	// Simulate the torn tail a kill mid-append leaves behind.
	torn := append(append([]byte(nil), preBytes...), []byte("deadbeef {\"k\":\"torn")...)

	var acked []string
	scenario := func(fs fsx.FS) error {
		acked = nil
		j, err := OpenFS(fs, "results.journal")
		if err != nil {
			return err
		}
		for _, k := range []string{"new/c", "new/d"} {
			if err := j.Append(k, []float64{3}); err != nil {
				return err
			}
			acked = append(acked, k)
		}
		return j.Finalize()
	}
	setup := func(fa *fsx.Faulty) { fa.SetFile("results.journal", torn) }

	err := fsx.Explore(2, setup, scenario, func(p fsx.CrashPoint) error {
		dir := restoreDurable(t, p.Durable)
		j, err := Open(filepath.Join(dir, "results.journal"))
		if err != nil {
			return err
		}
		defer j.Close()
		for k, v := range pre {
			got, ok := j.Lookup(k)
			if !ok || !reflect.DeepEqual(got, v) {
				return errorsf("crash at op %d: pre-existing cell %s = %v (%v), want %v", p.Op, k, got, ok, v)
			}
		}
		for _, k := range acked {
			if _, ok := j.Lookup(k); !ok {
				return errorsf("crash at op %d: acknowledged cell %s lost", p.Op, k)
			}
		}
		if j.Len() > len(pre)+len(acked) {
			return errorsf("crash at op %d: journal reports %d cells, only %d ever acknowledged", p.Op, j.Len(), len(pre)+len(acked))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// errorsf is fmt.Errorf under a name that reads as an assertion
// failure inside the explorer callbacks.
func errorsf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
