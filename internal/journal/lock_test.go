//go:build unix

package journal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// Two writers on the same path must not interleave appends; the
// second opener fails fast with the typed lock error, whichever
// combination of Create/Open the two use.
func TestSecondWriterFailsFastWithLockError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.journal")
	first, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer first.Close()
	if err := first.Append("cell", []float64{1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	for _, open := range []struct {
		name string
		fn   func(string) (*Journal, error)
	}{
		{"Create", Create},
		{"Open", Open},
	} {
		j, err := open.fn(path)
		if err == nil {
			j.Close()
			t.Fatalf("%s succeeded while first writer holds the journal", open.name)
		}
		var le *LockError
		if !errors.As(err, &le) {
			t.Fatalf("%s: got %v, want *LockError", open.name, err)
		}
		if le.Path != path {
			t.Fatalf("%s: LockError.Path = %q, want %q", open.name, le.Path, path)
		}
	}
	// The refused Create must not have truncated the live journal.
	if _, ok := first.Lookup("cell"); !ok {
		t.Fatal("first writer lost its record after a refused second open")
	}
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Lock released with the descriptor: a resume now succeeds and
	// sees the record.
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer j.Close()
	if v, ok := j.Lookup("cell"); !ok || v[0] != 1 {
		t.Fatalf("resume after unlock: got %v %v, want [1] true", v, ok)
	}
}

// A resume racing a finalize must never see a half-written file: each
// Open either fails with the lock error (finalizer still holds the
// journal) or succeeds and reads a complete, valid journal.
func TestResumeDuringFinalize(t *testing.T) {
	const rounds = 50
	for i := 0; i < rounds; i++ {
		path := filepath.Join(t.TempDir(), "results.journal")
		j, err := Create(path)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for _, k := range []string{"b", "a", "c"} {
			if err := j.Append(k, []float64{float64(i)}); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.Finalize(); err != nil {
				t.Errorf("Finalize: %v", err)
			}
		}()
		r, err := Open(path)
		if err != nil {
			var le *LockError
			if !errors.As(err, &le) {
				t.Fatalf("Open during finalize: got %v, want success or *LockError", err)
			}
			wg.Wait()
			continue
		}
		// Open won the race (or read the finalized file): it must hold
		// all three records with no corruption and no torn tail.
		if r.Len() != 3 {
			t.Fatalf("resume saw %d records, want 3", r.Len())
		}
		if _, torn := r.Recovered(); torn != 0 {
			t.Fatalf("resume truncated %d bytes from a journal mid-finalize", torn)
		}
		r.Close()
		wg.Wait()
	}
}
