//go:build !unix

package journal

import "os"

// lockFile is a no-op where flock is unavailable; the journal then
// relies on the caller not to double-open, exactly as before the
// guard existed.
func lockFile(f *os.File) error { return nil }
