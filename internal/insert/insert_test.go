package insert

import (
	"math"
	"math/rand"
	"testing"

	"sdpm/internal/cycles"
	"sdpm/internal/disk"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
	"sdpm/internal/tracegen"
)

// rrSites builds n round-robin 64KB request sites over nd disks with
// the given compute think time between requests.
func rrSites(nd, n int, thinkMS float64) []tracegen.Site {
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	thinkCyc := m.CyclesForMS(thinkMS)
	out := make([]tracegen.Site, n)
	for i := range out {
		out[i] = tracegen.Site{
			Nest: 0, Iter: int64(i),
			File: "u", Unit: int64(i),
			Disk: i % nd, Block: int64(i/nd) * 128, Bytes: 65536,
			Kind:     trace.Read,
			CyclePos: int64(i) * thinkCyc,
		}
	}
	return out
}

// burstSites sends perBurst consecutive requests to each disk in
// turn, giving each disk long idle stretches.
func burstSites(nd, perBurst int, thinkMS float64) []tracegen.Site {
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	thinkCyc := m.CyclesForMS(thinkMS)
	var out []tracegen.Site
	i := 0
	for d := 0; d < nd; d++ {
		for k := 0; k < perBurst; k++ {
			out = append(out, tracegen.Site{
				Nest: d, Iter: int64(k), File: "u", Unit: int64(i),
				Disk: d, Block: int64(k) * 128, Bytes: 65536,
				Kind: trace.Read, CyclePos: int64(i) * thinkCyc,
			})
			i++
		}
	}
	return out
}

func baseTrace(nd int, ss []tracegen.Site, m *cycles.Model, p disk.Params) *trace.Trace {
	return tracegen.FromSites("t", nd, ss, tracegen.Options{
		Model:            m,
		NominalServiceMS: func(b int64) float64 { return p.ServiceTimeMS(p.MaxRPM, b) },
	})
}

func TestCMDRPMCloseToOracleNoJitter(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 1)
	ss := rrSites(8, 2000, 3.44)

	tr, plan, err := Instrument("rr", 8, ss, Options{Mode: ModeDRPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Ops == 0 {
		t.Fatal("no ops inserted")
	}
	cm, err := sim.Run(tr, sim.Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	bt := baseTrace(8, ss, m, p)
	base, _ := sim.Run(bt, sim.Config{Disk: p})
	oracle, _ := sim.Run(bt, sim.Config{Disk: p, Policy: policy.NewIDRPM(p)})

	// Energy: CMDRPM must land close to the oracle and far below base.
	if cm.EnergyJ > base.EnergyJ*0.7 {
		t.Errorf("CMDRPM saves too little: %.0f vs base %.0f", cm.EnergyJ, base.EnergyJ)
	}
	if cm.EnergyJ < oracle.EnergyJ*0.98 {
		t.Errorf("CMDRPM beats the oracle: %.0f vs %.0f", cm.EnergyJ, oracle.EnergyJ)
	}
	if cm.EnergyJ > oracle.EnergyJ*1.15 {
		t.Errorf("CMDRPM too far from oracle: %.0f vs %.0f", cm.EnergyJ, oracle.EnergyJ)
	}
	// Execution time: near-zero penalty (power-call overheads only).
	penalty := cm.ExecMS/base.ExecMS - 1
	if penalty > 0.02 {
		t.Errorf("CMDRPM penalty %.2f%%", penalty*100)
	}
	if cm.TotalWaitMS > base.ExecMS*0.001 {
		t.Errorf("CMDRPM wait %.1fms", cm.TotalWaitMS)
	}
}

func TestCMDRPMWithJitterStillNearOracle(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 20, 7)
	ss := rrSites(8, 2000, 3.44)
	tr, _, err := Instrument("rr", 8, ss, Options{Mode: ModeDRPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := sim.Run(tr, sim.Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	bt := baseTrace(8, ss, m, p)
	base, _ := sim.Run(bt, sim.Config{Disk: p})
	penalty := cm.ExecMS/base.ExecMS - 1
	if penalty > 0.05 {
		t.Errorf("CMDRPM penalty with jitter %.2f%%", penalty*100)
	}
	if cm.EnergyJ > base.EnergyJ*0.75 {
		t.Errorf("CMDRPM with jitter saves too little: %.0f vs %.0f", cm.EnergyJ, base.EnergyJ)
	}
}

func TestCMTPMNoOpsOnShortGaps(t *testing.T) {
	p := disk.DefaultParams()
	ss := rrSites(8, 500, 3.44)
	tr, plan, err := Instrument("rr", 8, ss, Options{Mode: ModeTPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	// 73ms gaps are far below the TPM break-even; only trailing gaps
	// could possibly qualify, and at ~70ms they do not.
	if plan.Ops != 0 {
		t.Errorf("CMTPM inserted %d ops on short gaps", plan.Ops)
	}
	if tr.NumPowerOps() != 0 {
		t.Error("trace contains ops")
	}
}

func TestCMTPMSavesOnBurstsWithoutPenalty(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 3)
	ss := burstSites(4, 3000, 10) // 30s bursts per disk
	tr, plan, err := Instrument("burst", 4, ss, Options{Mode: ModeTPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ops == 0 {
		t.Fatal("CMTPM inserted nothing on long gaps")
	}
	cm, err := sim.Run(tr, sim.Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	bt := baseTrace(4, ss, m, p)
	base, _ := sim.Run(bt, sim.Config{Disk: p})
	rtpm, _ := sim.Run(bt, sim.Config{Disk: p, Policy: policy.NewTPM(p, 0)})

	if cm.EnergyJ >= base.EnergyJ {
		t.Errorf("CMTPM saved nothing: %.0f vs %.0f", cm.EnergyJ, base.EnergyJ)
	}
	// Proactive TPM must beat reactive TPM on both axes.
	if cm.EnergyJ >= rtpm.EnergyJ {
		t.Errorf("CMTPM %.0f not better than reactive TPM %.0f", cm.EnergyJ, rtpm.EnergyJ)
	}
	if cm.ExecMS >= rtpm.ExecMS {
		t.Errorf("CMTPM exec %.0f not better than reactive TPM %.0f", cm.ExecMS, rtpm.ExecMS)
	}
	penalty := cm.ExecMS/base.ExecMS - 1
	if penalty > 0.02 {
		t.Errorf("CMTPM penalty %.2f%%", penalty*100)
	}
}

func TestPreactivationAblation(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 3)
	ss := burstSites(4, 2000, 10)
	on, _, err := Instrument("b", 4, ss, Options{Mode: ModeTPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := Instrument("b", 4, ss, Options{Mode: ModeTPM, Disk: p, Model: m, DisablePreactivation: true})
	if err != nil {
		t.Fatal(err)
	}
	ron, _ := sim.Run(on, sim.Config{Disk: p})
	roff, _ := sim.Run(off, sim.Config{Disk: p})
	// Without pre-activation the first access of each burst pays the
	// spin-up delay.
	if roff.ExecMS <= ron.ExecMS {
		t.Errorf("no-preactivation exec %.0f <= preactivated %.0f", roff.ExecMS, ron.ExecMS)
	}
	if roff.TotalWaitMS < p.SpinUpMS {
		t.Errorf("no-preactivation wait %.0fms, expected at least one spin-up", roff.TotalWaitMS)
	}
	if ron.TotalWaitMS > 1 {
		t.Errorf("preactivated wait %.1fms", ron.TotalWaitMS)
	}
}

func TestPlanShape(t *testing.T) {
	p := disk.DefaultParams()
	ss := rrSites(4, 40, 3.44)
	_, plan, err := Instrument("rr", 4, ss, Options{Mode: ModeDRPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != ModeDRPM {
		t.Error("mode")
	}
	// 4 disks x 10 requests -> 11 gaps each.
	if len(plan.Decisions) != 44 {
		t.Errorf("decisions = %d", len(plan.Decisions))
	}
	for d := 0; d < 4; d++ {
		if len(plan.Levels[d]) != 11 || len(plan.PredictedIdle[d]) != 11 {
			t.Fatalf("disk %d plan arrays wrong length", d)
		}
		for g, l := range plan.Levels[d] {
			if l != 0 && p.LevelIndex(l) < 0 {
				t.Errorf("disk %d gap %d level %d invalid", d, g, l)
			}
		}
	}
	// Trailing decisions flagged.
	trailing := 0
	for _, dec := range plan.Decisions {
		if dec.Trailing {
			trailing++
		}
		if dec.PredictedIdleMS < 0 {
			t.Error("negative predicted idle")
		}
	}
	if trailing != 4 {
		t.Errorf("trailing decisions = %d", trailing)
	}
	if plan.PredictedEndMS <= 0 {
		t.Error("predicted end not set")
	}
}

func TestInstrumentedRequestsMatchSites(t *testing.T) {
	p := disk.DefaultParams()
	ss := rrSites(8, 100, 3.44)
	tr, _, err := Instrument("rr", 8, ss, Options{Mode: ModeDRPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []trace.Request
	for _, e := range tr.Events {
		if e.Kind == trace.EvRequest {
			reqs = append(reqs, e.Req)
		}
	}
	if len(reqs) != len(ss) {
		t.Fatalf("requests = %d, want %d", len(reqs), len(ss))
	}
	for i, r := range reqs {
		s := ss[i]
		if r.Disk != s.Disk || r.Block != s.Block || r.Bytes != s.Bytes || r.Unit != s.Unit {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, r, s)
		}
	}
}

func TestComputeTimePreservedByInsertion(t *testing.T) {
	// The inserted ops split compute gaps; the total compute time of
	// the instrumented trace must equal the base trace (no jitter).
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 5)
	ss := rrSites(8, 500, 3.44)
	tr, _, err := Instrument("rr", 8, ss, Options{Mode: ModeDRPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	bt := baseTrace(8, ss, m, p)
	var a, b float64
	for _, e := range tr.Events {
		a += e.GapMS
	}
	for _, e := range bt.Events {
		b += e.GapMS
	}
	if math.Abs(a-b) > 1e-6 {
		t.Errorf("total compute changed: %.3f vs %.3f", a, b)
	}
}

func TestDownOpsFollowTheirRequest(t *testing.T) {
	p := disk.DefaultParams()
	ss := rrSites(2, 10, 60) // long gaps so every gap dips
	tr, _, err := Instrument("rr", 2, ss, Options{Mode: ModeDRPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	// After each request to disk d, the next event mentioning disk d
	// must not be a set_rpm(max) before a down-op (ordering sanity):
	// specifically a down op for d appears after d's request and
	// before d's next request.
	lastReq := -1
	for i, e := range tr.Events {
		if e.Kind == trace.EvRequest && e.Req.Disk == 0 {
			if lastReq >= 0 {
				sawDown := false
				for j := lastReq + 1; j < i; j++ {
					ev := tr.Events[j]
					if ev.Kind == trace.EvPowerOp && ev.Op.Disk == 0 && ev.Op.RPM != p.MaxRPM {
						sawDown = true
					}
				}
				if !sawDown {
					t.Fatalf("no down-op for disk 0 between requests at %d and %d", lastReq, i)
				}
			}
			lastReq = i
		}
	}
}

func TestInstrumentErrors(t *testing.T) {
	p := disk.DefaultParams()
	bad := p
	bad.RPMStep = 0
	if _, _, err := Instrument("x", 2, rrSites(2, 4, 1), Options{Mode: ModeDRPM, Disk: bad}); err == nil {
		t.Error("bad params accepted")
	}
	ss := rrSites(2, 4, 1)
	ss[0].Disk = 9
	if _, _, err := Instrument("x", 2, ss, Options{Mode: ModeDRPM, Disk: p}); err == nil {
		t.Error("bad sites accepted")
	}
}

func TestModeAndActionStrings(t *testing.T) {
	if ModeTPM.String() != "CMTPM" || ModeDRPM.String() != "CMDRPM" {
		t.Error("mode strings")
	}
	if Stay.String() != "stay" || Dip.String() != "dip" || Standby.String() != "standby" {
		t.Error("action strings")
	}
}

func TestEstimateMatchesManualCase(t *testing.T) {
	p := disk.DefaultParams()
	// One disk, two requests 200ms apart: one dip gap plus leading
	// and trailing gaps of zero length.
	ss := []tracegen.Site{
		{Disk: 0, Bytes: 65536, Kind: trace.Read, CyclePos: 0},
		{Disk: 0, Bytes: 65536, Kind: trace.Read, CyclePos: cycles.New(cycles.DefaultClockHz, 0, 0).CyclesForMS(200)},
	}
	_, plan, err := Instrument("m", 1, ss, Options{Mode: ModeDRPM, Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	est := plan.EstimateEnergyJ(p, ss)
	// Manual: 2 services active + gap0 idle(0) + dip(gap1) + trailing 0.
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	gap1 := plan.PredictedIdle[0][1]
	level := plan.Levels[0][1]
	want := 2*p.ActiveW*svc/1e3 + p.DipEnergyJ(gap1, level)
	if math.Abs(est-want) > 1e-9 {
		t.Errorf("estimate %g, want %g", est, want)
	}
	// Base estimate: idling through the same gaps.
	baseWant := 2*p.ActiveW*svc/1e3 + p.IdleEnergyJ(gap1)
	if got := plan.EstimateBaseEnergyJ(p, ss); math.Abs(got-baseWant) > 1e-9 {
		t.Errorf("base estimate %g, want %g", got, baseWant)
	}
	if est >= plan.EstimateBaseEnergyJ(p, ss) {
		t.Error("dip estimate not below base")
	}
}

func TestOptionKnobSwitches(t *testing.T) {
	o := &Options{}
	if o.safety() != DefaultSafetyPct {
		t.Error("default safety")
	}
	o.SafetyPct = -1
	if o.safety() != 0 {
		t.Error("disabled safety")
	}
	o.SafetyPct = 7
	if o.safety() != 7 {
		t.Error("explicit safety")
	}
	o = &Options{GuardMS: -1}
	if o.guard(100) != 0 {
		t.Error("disabled guard")
	}
	o.GuardMS = 2.5
	if o.guard(100) != 2.5 {
		t.Error("explicit guard")
	}
}

func TestEstimateTPMStandbyGaps(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	// One long gap well above break-even, plus a trailing gap.
	long := m.CyclesForMS(p.TPMBreakEvenMS() * 3)
	ss := []tracegen.Site{
		{Disk: 0, Bytes: 65536, Kind: trace.Read, CyclePos: 0},
		{Disk: 0, Bytes: 65536, Kind: trace.Read, CyclePos: long},
	}
	_, plan, err := Instrument("m", 1, ss, Options{Mode: ModeTPM, Disk: p, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Levels[0][1] != 0 {
		t.Fatalf("long gap not planned for standby: %v", plan.Levels[0])
	}
	est := plan.EstimateEnergyJ(p, ss)
	base := plan.EstimateBaseEnergyJ(p, ss)
	if est >= base {
		t.Errorf("TPM estimate %g not below base %g", est, base)
	}
}

// TestInstrumentOrderingInvariant generates randomized site streams —
// including clusters of requests sharing one cycle position, the
// shape that once broke restore-op ordering — and checks that in the
// instrumented trace every disk's power ops alternate correctly: a
// down-op is always restored before the disk's next request (or is
// the trailing dip), and under zero jitter no request ever waits.
func TestInstrumentOrderingInvariant(t *testing.T) {
	p := disk.DefaultParams()
	m := cycles.New(cycles.DefaultClockHz, 0, 0)
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 40; trial++ {
		nd := 2 + rng.Intn(7)
		var ss []tracegen.Site
		var cyc int64
		n := 30 + rng.Intn(200)
		for i := 0; i < n; i++ {
			// Random cluster: several requests at one cycle position.
			cyc += m.CyclesForMS(rng.Float64() * 30)
			cluster := 1 + rng.Intn(4)
			for c := 0; c < cluster && i < n; c++ {
				ss = append(ss, tracegen.Site{
					File: "u", Unit: int64(i), Iter: int64(i),
					Disk: rng.Intn(nd), Block: int64(i) * 128, Bytes: 65536,
					Kind: trace.Read, CyclePos: cyc,
				})
				i++
			}
			i--
		}
		tr, _, err := Instrument("rand", nd, ss, Options{Mode: ModeDRPM, Disk: p, Model: m})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Per-disk ordering: no request may arrive while a down-level
		// op is pending without a restore.
		pendingDown := make([]bool, nd)
		for i, e := range tr.Events {
			if e.Kind == trace.EvPowerOp {
				if e.Op.RPM == p.MaxRPM {
					pendingDown[e.Op.Disk] = false
				} else {
					pendingDown[e.Op.Disk] = true
				}
				continue
			}
			if pendingDown[e.Req.Disk] {
				t.Fatalf("trial %d: event %d: request on disk %d with unrestored dip", trial, i, e.Req.Disk)
			}
		}
		// And dynamically: zero jitter means zero waits.
		res, err := sim.Run(tr, sim.Config{Disk: p})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.TotalWaitMS > 1e-6 {
			t.Fatalf("trial %d: instrumented trace waited %.3fms under zero jitter", trial, res.TotalWaitMS)
		}
	}
}
