// Package insert implements the last stage of the paper's compiler:
// inserting explicit power-management calls into the program. Given
// the request sites and the predicted (mean) execution timeline, it
// decides, for every per-disk idle period, whether and how deep to
// power the disk down, and where to place the pre-activation call so
// the disk is back at full readiness when the next access arrives
// (the paper's Equation 1: d = ceil(Tsu / (s + Tm)) iterations of
// lead time; here expressed directly on the predicted timeline, with
// a guard margin absorbing the iteration-granularity rounding and
// execution jitter).
//
// The output is an instrumented trace: the original request stream
// with spin_down / spin_up / set_RPM events interleaved at the
// program points the compiler chose, plus a Plan recording every
// decision for the misprediction analysis of Table 3.
package insert

import (
	"fmt"
	"sort"

	"sdpm/internal/cycles"
	"sdpm/internal/disk"
	"sdpm/internal/trace"
	"sdpm/internal/tracegen"
)

// Mode selects the target power-management mechanism.
type Mode int

// Instrumentation modes.
const (
	// ModeTPM emits spin_down / spin_up calls (CMTPM).
	ModeTPM Mode = iota
	// ModeDRPM emits set_RPM calls (CMDRPM).
	ModeDRPM
)

// String returns the scheme name.
func (m Mode) String() string {
	if m == ModeTPM {
		return "CMTPM"
	}
	return "CMDRPM"
}

// Options configures instrumentation.
type Options struct {
	// Mode selects CMTPM or CMDRPM.
	Mode Mode
	// Disk supplies the power model used for break-even and level
	// decisions.
	Disk disk.Params
	// Model supplies the compiler's cycle estimates and the
	// runtime's jittered actuals.
	Model *cycles.Model
	// DisablePreactivation omits the pre-activation (spin-up /
	// restore-RPM) calls: the next access pays the wake-up cost on
	// demand. Used for the ablation study.
	DisablePreactivation bool
	// GuardMS is the extra lead time added to every pre-activation;
	// a negative value disables the guard, zero selects an automatic
	// margin scaled to the jitter model.
	GuardMS float64
	// SafetyPct shrinks every predicted idle period by this
	// percentage before choosing the power mode and placing the
	// pre-activation call, making the compiler robust to its own
	// estimation error: a gap that comes out shorter than predicted
	// by up to SafetyPct still hides the wake-up transition. Zero
	// selects DefaultSafetyPct; negative disables the margin.
	SafetyPct float64
}

// DefaultSafetyPct is the default idle-estimate safety margin.
const DefaultSafetyPct = 3

func (o *Options) safety() float64 {
	switch {
	case o.SafetyPct > 0:
		return o.SafetyPct
	case o.SafetyPct < 0:
		return 0
	default:
		return DefaultSafetyPct
	}
}

func (o *Options) model() *cycles.Model {
	if o.Model != nil {
		return o.Model
	}
	return cycles.New(cycles.DefaultClockHz, 0, 0)
}

func (o *Options) guard(transMS float64) float64 {
	switch {
	case o.GuardMS > 0:
		return o.GuardMS
	case o.GuardMS < 0:
		return 0
	default:
		return 0.2 + transMS*o.model().NoisePct/100
	}
}

// Action is the planned treatment of one idle period.
type Action uint8

// Idle-period actions.
const (
	// Stay leaves the disk at full speed.
	Stay Action = iota
	// Dip lowers the disk to an RPM level (DRPM).
	Dip
	// Standby spins the disk down (TPM).
	Standby
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Dip:
		return "dip"
	case Standby:
		return "standby"
	default:
		return "stay"
	}
}

// GapDecision records the compiler's decision for one idle period.
type GapDecision struct {
	Disk int
	// Gap is the idle-period index on the disk: 0 is the leading
	// period (program start to first access); the last index is the
	// trailing period.
	Gap int
	// PredictedIdleMS is the compiler's idle-length estimate.
	PredictedIdleMS float64
	// Act and RPM describe the decision (RPM meaningful for Dip).
	Act Action
	RPM int
	// Trailing marks the final idle period (no pre-activation).
	Trailing bool
}

// Call locates one inserted power-management call in the program's
// iteration space (the paper's Figure 2(d) view: explicit calls in
// the code).
type Call struct {
	// Nest and Iter anchor the call in iteration space (the request
	// site the call is ordered against).
	Nest int
	Iter int64
	Op   trace.PowerOp
}

// Plan is the complete instrumentation record.
type Plan struct {
	Mode Mode
	// PredictedEndMS is the compiler's program-completion estimate.
	PredictedEndMS float64
	// Decisions holds every idle-period decision.
	Decisions []GapDecision
	// Levels[d][g] is the RPM level planned for gap g of disk d
	// (MaxRPM when the disk stays up; 0 denotes standby). Used by
	// the Table 3 misprediction analysis.
	Levels [][]int
	// PredictedIdle[d][g] is the predicted idle length per gap.
	PredictedIdle [][]float64
	// Ops is the number of power-management calls inserted.
	Ops int
	// Calls locates every inserted call in iteration space, in
	// insertion order.
	Calls []Call
}

// mergedItem is a stream element being assembled: a request site or
// an inserted op, positioned by compute-cycle position with tie
// breaking that preserves program order around anchors.
type mergedItem struct {
	cyc    int64
	anchor int // site index the item is anchored to
	prio   int // -1: op before anchor; 0: the request; +1: op after anchor
	site   int // site index for requests
	op     trace.PowerOp
	isOp   bool
}

// Instrument builds the CMTPM/CMDRPM instrumented trace for the
// given request sites on a numDisks-disk subsystem.
func Instrument(program string, numDisks int, sites []tracegen.Site, opts Options) (*trace.Trace, *Plan, error) {
	if err := opts.Disk.Validate(); err != nil {
		return nil, nil, err
	}
	if err := tracegen.Check(sites, numDisks); err != nil {
		return nil, nil, err
	}
	m := opts.model()
	p := opts.Disk
	// The gap decisions below query the disk power model once per idle
	// period per disk; the memoized table turns each of those pow-heavy
	// scans into array lookups with bit-identical results.
	tbl := disk.TableFor(p)
	svc := func(b int64) float64 { return tbl.ServiceTimeMS(p.MaxRPM, b) }
	issue := tracegen.PredictedIssueMS(sites, m, svc)

	// Completion times and the predicted program end.
	comp := make([]float64, len(sites))
	predEnd := 0.0
	for i := range sites {
		comp[i] = issue[i] + svc(sites[i].Bytes)
		if comp[i] > predEnd {
			predEnd = comp[i]
		}
	}

	perDisk := make([][]int, numDisks)
	for i := range sites {
		perDisk[sites[i].Disk] = append(perDisk[sites[i].Disk], i)
	}

	// timeToCycle converts a predicted wall time into a compute-cycle
	// position, snapping times that fall inside a service interval to
	// its completion (the application executes no iterations while
	// blocked on I/O).
	timeToCycle := func(t float64) int64 {
		// Find the last site whose completion is <= t.
		j := sort.Search(len(sites), func(k int) bool { return comp[k] > t })
		var baseT float64
		var baseC int64
		if j > 0 {
			baseT = comp[j-1]
			baseC = sites[j-1].CyclePos
		}
		if t < baseT {
			t = baseT
		}
		c := baseC + m.CyclesForMS(t-baseT)
		if j < len(sites) && c > sites[j].CyclePos {
			c = sites[j].CyclePos
		}
		return c
	}
	// anchorFor returns the site index an op at cycle position c is
	// ordered against: the first site with CyclePos >= c.
	anchorFor := func(c int64) int {
		return sort.Search(len(sites), func(k int) bool { return sites[k].CyclePos >= c })
	}

	plan := &Plan{
		Mode:           opts.Mode,
		PredictedEndMS: predEnd,
		Levels:         make([][]int, numDisks),
		PredictedIdle:  make([][]float64, numDisks),
	}

	items := make([]mergedItem, 0, len(sites)*2)
	for i := range sites {
		items = append(items, mergedItem{cyc: sites[i].CyclePos, anchor: i, prio: 0, site: i})
	}
	// addOp inserts a power op at predicted time t. afterSite >= 0
	// anchors the op just after that request (down-ops at a gap
	// start). notBefore >= 0 enforces a program-order floor: the op
	// must sort after that request and after any op anchored to it —
	// required for restore ops whose lead time reaches back into a
	// cluster of requests sharing one cycle position, where the
	// time-based anchor alone could order the restore before its own
	// gap's power-down.
	addOp := func(t float64, afterSite, notBefore int, op trace.PowerOp) {
		c := timeToCycle(t)
		it := mergedItem{cyc: c, op: op, isOp: true}
		if afterSite >= 0 && c <= sites[afterSite].CyclePos {
			it.cyc = sites[afterSite].CyclePos
			it.anchor = afterSite
			it.prio = 1
		} else {
			it.anchor = anchorFor(c)
			it.prio = -1
		}
		if notBefore >= 0 {
			floorCyc := sites[notBefore].CyclePos
			if it.cyc < floorCyc ||
				(it.cyc == floorCyc && (it.anchor < notBefore || (it.anchor == notBefore && it.prio <= 1))) {
				it.cyc = floorCyc
				it.anchor = notBefore
				it.prio = 2
			}
		}
		items = append(items, it)
		plan.Ops++
		anchor := it.anchor
		if anchor >= len(sites) {
			anchor = len(sites) - 1
		}
		if anchor >= 0 {
			plan.Calls = append(plan.Calls, Call{Nest: sites[anchor].Nest, Iter: sites[anchor].Iter, Op: op})
		}
	}

	for d := 0; d < numDisks; d++ {
		nGaps := len(perDisk[d]) + 1
		plan.Levels[d] = make([]int, nGaps)
		plan.PredictedIdle[d] = make([]float64, nGaps)
		for g := 0; g < nGaps; g++ {
			var start, end float64
			afterSite := -1 // site the down-op is anchored after
			trailing := g == nGaps-1
			if g == 0 {
				start = 0
			} else {
				si := perDisk[d][g-1]
				start = comp[si]
				afterSite = si
			}
			if trailing {
				end = predEnd
			} else {
				end = issue[perDisk[d][g]]
			}
			idle := end - start
			if idle < 0 {
				idle = 0
			}
			plan.PredictedIdle[d][g] = idle
			dec := GapDecision{Disk: d, Gap: g, PredictedIdleMS: idle, Act: Stay, RPM: p.MaxRPM, Trailing: trailing}
			plan.Levels[d][g] = p.MaxRPM

			// Pre-activation is anchored a safety margin (a fraction
			// of the predicted idle length) ahead of the next
			// access, so a gap that comes out shorter than predicted
			// by up to that margin still hides the wake-up
			// transition. The power-mode choice itself uses the
			// unbiased estimate (what Table 3 compares).
			margin := idle * opts.safety() / 100
			switch opts.Mode {
			case ModeDRPM:
				var level int
				if trailing {
					level, _ = tbl.BestRPMForTrailingIdle(idle)
				} else {
					level, _ = tbl.BestRPMForIdle(idle)
				}
				if level != p.MaxRPM {
					dec.Act = Dip
					dec.RPM = level
					plan.Levels[d][g] = level
					addOp(start, afterSite, -1, trace.PowerOp{Disk: d, Kind: trace.OpSetRPM, RPM: level, PredictedIdleMS: idle})
					if !trailing && !opts.DisablePreactivation {
						tr := p.TransitionTimeMS(level, p.MaxRPM)
						up := end - tr - margin - opts.guard(tr)
						if min := start + p.TransitionTimeMS(p.MaxRPM, level); up < min {
							up = min
						}
						addOp(up, -1, afterSite, trace.PowerOp{Disk: d, Kind: trace.OpSetRPM, RPM: p.MaxRPM})
					}
				}
			case ModeTPM:
				worthIt := false
				if trailing {
					worthIt = p.TrailingStandbyWins(idle)
				} else {
					worthIt = p.StandbyEnergyJ(idle) < p.IdleEnergyJ(idle)
				}
				if worthIt {
					dec.Act = Standby
					plan.Levels[d][g] = 0
					addOp(start, afterSite, -1, trace.PowerOp{Disk: d, Kind: trace.OpSpinDown, PredictedIdleMS: idle})
					if !trailing && !opts.DisablePreactivation {
						up := end - p.SpinUpMS - margin - opts.guard(p.SpinUpMS)
						if min := start + p.SpinDownMS; up < min {
							up = min
						}
						addOp(up, -1, afterSite, trace.PowerOp{Disk: d, Kind: trace.OpSpinUp})
					}
				}
			default:
				return nil, nil, fmt.Errorf("insert: unknown mode %d", opts.Mode)
			}
			plan.Decisions = append(plan.Decisions, dec)
		}
	}

	sort.SliceStable(items, func(a, b int) bool {
		ia, ib := &items[a], &items[b]
		if ia.cyc != ib.cyc {
			return ia.cyc < ib.cyc
		}
		if ia.anchor != ib.anchor {
			return ia.anchor < ib.anchor
		}
		return ia.prio < ib.prio
	})

	// Emit the instrumented trace with jittered actual gaps.
	tr := &trace.Trace{Program: program, NumDisks: numDisks}
	tr.Events = make([]trace.Event, 0, len(items))
	var prevCyc int64
	var arrival float64
	for i, it := range items {
		gapCyc := it.cyc - prevCyc
		if gapCyc < 0 {
			gapCyc = 0
		}
		prevCyc = it.cyc
		nest := 0
		if it.anchor < len(sites) {
			nest = sites[it.anchor].Nest
		} else if len(sites) > 0 {
			nest = sites[len(sites)-1].Nest
		}
		gap := m.ActualMSIn(gapCyc, uint64(i), nest)
		arrival += gap
		if it.isOp {
			tr.Events = append(tr.Events, trace.Event{Kind: trace.EvPowerOp, GapMS: gap, Op: it.op})
			continue
		}
		s := sites[it.site]
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: gap,
			Req: trace.Request{
				ArrivalMS: arrival,
				Disk:      s.Disk, Block: s.Block, Bytes: s.Bytes, Kind: s.Kind,
				File: s.File, Unit: s.Unit, Nest: s.Nest, Iter: s.Iter,
			},
		})
		arrival += svc(s.Bytes)
	}
	return tr, plan, nil
}
