package insert

import (
	"sdpm/internal/disk"
	"sdpm/internal/tracegen"
)

// EstimateEnergyJ returns the compiler's prediction of the total disk
// subsystem energy for the instrumented program: the active energy of
// every predicted request plus, for each idle period, the energy of
// the power mode the plan chose for it (full-speed idle, an RPM dip,
// or standby), all on the predicted timeline. This is the quantity
// the compiler uses to "decide the most suitable disk power
// management strategy" (Section 3 of the paper): instrument for both
// mechanisms, estimate, and keep the cheaper plan.
func (pl *Plan) EstimateEnergyJ(p disk.Params, sites []tracegen.Site) float64 {
	tbl := disk.TableFor(p)
	var e float64
	for i := range sites {
		svc := tbl.ServiceTimeMS(p.MaxRPM, sites[i].Bytes)
		e += tbl.ActivePowerAt(p.MaxRPM) * svc / 1e3
	}
	for d := range pl.Levels {
		for g, level := range pl.Levels[d] {
			idle := pl.PredictedIdle[d][g]
			trailing := g == len(pl.Levels[d])-1
			switch {
			case level == p.MaxRPM:
				e += p.IdleEnergyJ(idle)
			case level == 0: // standby (TPM)
				if trailing {
					e += p.SpinDownJ + p.StandbyW*max0(idle-p.SpinDownMS)/1e3
				} else {
					e += p.StandbyEnergyJ(idle)
				}
			default: // RPM dip
				if trailing {
					tr := p.TransitionTimeMS(p.MaxRPM, level)
					e += tbl.TransitionEnergyJ(p.MaxRPM, level) +
						tbl.IdlePowerAt(level)*max0(idle-tr)/1e3
				} else {
					e += tbl.DipEnergyJ(idle, level)
				}
			}
		}
	}
	return e
}

// EstimateBaseEnergyJ predicts the energy with no power management:
// every idle period spent at full-speed idle.
func (pl *Plan) EstimateBaseEnergyJ(p disk.Params, sites []tracegen.Site) float64 {
	tbl := disk.TableFor(p)
	var e float64
	for i := range sites {
		svc := tbl.ServiceTimeMS(p.MaxRPM, sites[i].Bytes)
		e += tbl.ActivePowerAt(p.MaxRPM) * svc / 1e3
	}
	for d := range pl.PredictedIdle {
		for _, idle := range pl.PredictedIdle[d] {
			e += p.IdleEnergyJ(idle)
		}
	}
	return e
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
