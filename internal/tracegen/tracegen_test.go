package tracegen

import (
	"math"
	"testing"

	"sdpm/internal/access"
	"sdpm/internal/cycles"
	"sdpm/internal/ir"
	"sdpm/internal/layout"
	"sdpm/internal/trace"
)

// sweepProgram builds a program that sweeps a single 64KB-unit-
// striped array `sweeps` times.
func sweepProgram(t *testing.T, elems int64, sweeps int, costPerIter int64) (*ir.Program, *layout.Subsystem) {
	t.Helper()
	b := ir.NewBuilder("sweep")
	u := b.Array1D("u", elems)
	for s := 0; s < sweeps; s++ {
		b.Nest("n", ir.L("i", elems)).Stmt(costPerIter, ir.R(u, ir.Var(0)))
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub := layout.MustSubsystem(8)
	if err := access.PlaceArrays(p, sub, layout.Striping{StartDisk: 0, Factor: 8, UnitBytes: 65536}); err != nil {
		t.Fatal(err)
	}
	return p, sub
}

func TestSitesCountMatchesUnitsTimesSweeps(t *testing.T) {
	// 2MB array = 32 units of 64KB; 3 sweeps -> 96 requests.
	p, sub := sweepProgram(t, 256*1024, 3, 100)
	ss, err := Sites(p, sub, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 96 {
		t.Fatalf("sites = %d, want 96", len(ss))
	}
	if err := Check(ss, 8); err != nil {
		t.Fatal(err)
	}
	// Round-robin over 8 disks.
	for i, s := range ss {
		if s.Disk != i%8 {
			t.Fatalf("site %d disk = %d", i, s.Disk)
		}
		if s.Bytes != 65536 {
			t.Fatalf("site %d bytes = %d", i, s.Bytes)
		}
	}
}

func TestCacheSuppressesRepeats(t *testing.T) {
	// Array fits in cache: second sweep produces no requests.
	b := ir.NewBuilder("small")
	u := b.Array1D("u", 8192) // 64KB = 4 units of 16KB
	b.Nest("n0", ir.L("i", 8192)).Stmt(10, ir.R(u, ir.Var(0)))
	b.Nest("n1", ir.L("i", 8192)).Stmt(10, ir.R(u, ir.Var(0)))
	p := b.MustBuild()
	sub := layout.MustSubsystem(4)
	if err := access.PlaceArrays(p, sub, layout.Striping{StartDisk: 0, Factor: 4, UnitBytes: 16384}); err != nil {
		t.Fatal(err)
	}
	ss, err := Sites(p, sub, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("sites = %d, want 4 (second sweep cached)", len(ss))
	}
	// No-cache mode: both sweeps fetch.
	ss, err = SitesNoCache(p, sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 8 {
		t.Fatalf("no-cache sites = %d, want 8", len(ss))
	}
}

func TestCyclePositions(t *testing.T) {
	p, sub := sweepProgram(t, 8192*4, 2, 100) // 4 units per sweep
	ss, err := Sites(p, sub, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 8 {
		t.Fatalf("sites = %d", len(ss))
	}
	// First request of first nest at iteration 0 -> cycle 0.
	if ss[0].CyclePos != 0 {
		t.Errorf("first cycle pos = %d", ss[0].CyclePos)
	}
	// Second request at iteration 8192 -> 8192*100 cycles.
	if ss[1].CyclePos != 819200 {
		t.Errorf("second cycle pos = %d", ss[1].CyclePos)
	}
	// First request of second nest: base = 4*8192*100.
	if ss[4].Nest != 1 || ss[4].CyclePos != 4*8192*100 {
		t.Errorf("site 4 = %+v", ss[4])
	}
}

func TestGenerateGapsMeanNoNoise(t *testing.T) {
	p, sub := sweepProgram(t, 8192*4, 1, 750) // 750 cycles/iter at 750MHz = 1us/iter
	m := cycles.New(750e6, 0, 1)
	tr, err := Generate(p, sub, Options{Model: m, CacheUnits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 4 {
		t.Fatalf("requests = %d", tr.NumRequests())
	}
	// Gap between consecutive requests: 8192 iterations * 1us = 8.192ms.
	for i := 1; i < 4; i++ {
		if math.Abs(tr.Events[i].GapMS-8.192) > 1e-9 {
			t.Errorf("gap %d = %g", i, tr.Events[i].GapMS)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateNominalArrivals(t *testing.T) {
	p, sub := sweepProgram(t, 8192*4, 1, 750)
	m := cycles.New(750e6, 0, 1)
	svc := func(bytes int64) float64 { return 6.5 }
	tr, err := Generate(p, sub, Options{Model: m, NominalServiceMS: svc})
	if err != nil {
		t.Fatal(err)
	}
	// arrival[i] = arrival[i-1] + 6.5 + 8.192.
	for i := 1; i < len(tr.Events); i++ {
		d := tr.Events[i].Req.ArrivalMS - tr.Events[i-1].Req.ArrivalMS
		if math.Abs(d-14.692) > 1e-9 {
			t.Errorf("arrival delta %d = %g", i, d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, sub := sweepProgram(t, 8192*8, 2, 500)
	m := cycles.New(750e6, 20, 42)
	a, err := Generate(p, sub, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, sub, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i].GapMS != b.Events[i].GapMS {
			t.Fatal("gaps differ between identical runs")
		}
	}
}

func TestJitterChangesGapsNotSites(t *testing.T) {
	p, sub := sweepProgram(t, 8192*8, 1, 500)
	m0 := cycles.New(750e6, 0, 1)
	m1 := cycles.New(750e6, 25, 1)
	a, _ := Generate(p, sub, Options{Model: m0})
	b, _ := Generate(p, sub, Options{Model: m1})
	if len(a.Events) != len(b.Events) {
		t.Fatal("jitter changed request count")
	}
	diff := false
	for i := range a.Events {
		ra, rb := a.Events[i].Req, b.Events[i].Req
		if ra.Disk != rb.Disk || ra.Block != rb.Block || ra.Unit != rb.Unit {
			t.Fatal("jitter changed request placement")
		}
		if a.Events[i].GapMS != b.Events[i].GapMS {
			diff = true
		}
	}
	if !diff {
		t.Error("25% jitter produced identical gaps")
	}
}

func TestPredictedIssueMS(t *testing.T) {
	ss := []Site{
		{CyclePos: 0, Bytes: 65536},
		{CyclePos: 750000, Bytes: 65536},  // 1ms of compute later
		{CyclePos: 2250000, Bytes: 65536}, // 2ms later
	}
	m := cycles.New(750e6, 0, 1)
	svc := func(int64) float64 { return 6.5 }
	got := PredictedIssueMS(ss, m, svc)
	want := []float64{0, 0 + 6.5 + 1, 7.5 + 6.5 + 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("issue[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// nil service: pure compute offsets.
	got = PredictedIssueMS(ss, m, nil)
	want = []float64{0, 1, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("no-svc issue[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCheckCatches(t *testing.T) {
	ok := []Site{{Disk: 0, Bytes: 1, CyclePos: 0}, {Disk: 1, Bytes: 1, CyclePos: 5}}
	if err := Check(ok, 2); err != nil {
		t.Fatal(err)
	}
	if err := Check([]Site{{Disk: 2, Bytes: 1}}, 2); err == nil {
		t.Error("bad disk accepted")
	}
	if err := Check([]Site{{Disk: 0, Bytes: 0}}, 2); err == nil {
		t.Error("zero bytes accepted")
	}
	if err := Check([]Site{{Disk: 0, Bytes: 1, CyclePos: 5}, {Disk: 0, Bytes: 1, CyclePos: 1}}, 2); err == nil {
		t.Error("decreasing cycles accepted")
	}
}

func TestWriteKindPropagates(t *testing.T) {
	b := ir.NewBuilder("w")
	u := b.Array1D("u", 8192)
	v := b.Array1D("v", 8192)
	b.Nest("n0", ir.L("i", 8192)).Stmt(10, ir.R(u, ir.Var(0)), ir.W(v, ir.Var(0)))
	p := b.MustBuild()
	sub := layout.MustSubsystem(2)
	if err := access.PlaceArrays(p, sub, layout.Striping{StartDisk: 0, Factor: 2, UnitBytes: 16384}); err != nil {
		t.Fatal(err)
	}
	ss, err := Sites(p, sub, 8)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	for _, s := range ss {
		switch {
		case s.File == "u" && s.Kind == trace.Read:
			reads++
		case s.File == "v" && s.Kind == trace.Write:
			writes++
		default:
			t.Fatalf("unexpected site %+v", s)
		}
	}
	if reads != 4 || writes != 4 {
		t.Errorf("reads=%d writes=%d", reads, writes)
	}
}
