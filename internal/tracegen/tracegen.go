// Package tracegen implements the paper's trace generator: it turns
// an IR program plus a disk-subsystem placement into the stream of
// disk I/O requests the program makes, with closed-loop compute gaps
// derived from the program's per-iteration cycle costs.
//
// The same request-site sequence feeds both sides of the system: the
// runtime trace (actual, jittered timing) consumed by the simulator,
// and the compiler's predicted timeline (mean timing) used to place
// power-management calls. Because the buffer cache model is
// deterministic, compiler and runtime agree exactly on *which*
// requests occur; they differ only in *when* — the source of the
// paper's speed mispredictions.
package tracegen

import (
	"fmt"

	"sdpm/internal/access"
	"sdpm/internal/cache"
	"sdpm/internal/cycles"
	"sdpm/internal/ir"
	"sdpm/internal/layout"
	"sdpm/internal/trace"
)

// DefaultCacheUnits is the default buffer cache capacity in stripe
// units.
const DefaultCacheUnits = 64

// Site is one I/O request site: a buffer cache miss, located in the
// program's iteration space and on the disk subsystem.
type Site struct {
	// Nest and Iter locate the request in iteration space.
	Nest int
	Iter int64
	// File, Unit, Disk, Block, Bytes, Kind describe the access.
	File  string
	Unit  int64
	Disk  int
	Block int64
	Bytes int64
	Kind  trace.ReqKind
	// CyclePos is the cumulative compute-cycle position of the
	// issuing iteration from program start.
	CyclePos int64
}

// Sites runs the access-pattern walker through the buffer cache model
// and returns the program's request sites in program order.
// cacheUnits <= 0 selects DefaultCacheUnits; use Options.NoCache for
// a cacheless run.
func Sites(p *ir.Program, sub *layout.Subsystem, cacheUnits int) ([]Site, error) {
	if cacheUnits <= 0 {
		cacheUnits = DefaultCacheUnits
	}
	return sites(p, sub, cacheUnits)
}

// SitesNoCache returns the request sites with the buffer cache
// disabled: every stripe-unit touch becomes a request.
func SitesNoCache(p *ir.Program, sub *layout.Subsystem) ([]Site, error) {
	return sites(p, sub, 0)
}

func sites(p *ir.Program, sub *layout.Subsystem, cacheUnits int) ([]Site, error) {
	// Cumulative cycle base of each nest.
	base := make([]int64, len(p.Nests))
	var cum int64
	for i, n := range p.Nests {
		base[i] = cum
		cum += n.TotalCost()
	}
	bc := cache.New(cacheUnits)
	var out []Site
	err := access.Walk(p, sub, func(t access.Touch) error {
		if bc.Touch(cache.Key{File: t.File, Unit: t.Unit}) {
			return nil
		}
		ext, err := sub.MapUnit(t.File, t.Unit)
		if err != nil {
			return err
		}
		kind := trace.Read
		if t.Kind == ir.Write {
			kind = trace.Write
		}
		out = append(out, Site{
			Nest: t.Nest, Iter: t.Iter,
			File: t.File, Unit: t.Unit,
			Disk: ext.Disk, Block: ext.Block, Bytes: ext.Bytes,
			Kind:     kind,
			CyclePos: base[t.Nest] + t.Iter*p.Nests[t.Nest].IterCost(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Options configures trace generation.
type Options struct {
	// CacheUnits is the buffer cache capacity in stripe units;
	// <= 0 selects DefaultCacheUnits.
	CacheUnits int
	// NoCache disables the buffer cache entirely.
	NoCache bool
	// Model converts cycles to time and supplies execution jitter.
	// nil selects the default 750 MHz model with no jitter.
	Model *cycles.Model
	// NominalServiceMS, if non-nil, supplies the full-speed service
	// time used to compute the nominal arrival timestamps of the
	// paper's trace format. If nil, arrivals reflect compute gaps
	// only.
	NominalServiceMS func(bytes int64) float64
}

func (o *Options) model() *cycles.Model {
	if o.Model != nil {
		return o.Model
	}
	return cycles.New(cycles.DefaultClockHz, 0, 0)
}

// Generate produces the runtime I/O trace of the program: one request
// per site, with actual (jittered) closed-loop compute gaps.
func Generate(p *ir.Program, sub *layout.Subsystem, opts Options) (*trace.Trace, error) {
	var ss []Site
	var err error
	if opts.NoCache {
		ss, err = SitesNoCache(p, sub)
	} else {
		ss, err = Sites(p, sub, opts.CacheUnits)
	}
	if err != nil {
		return nil, err
	}
	return FromSites(p.Name, sub.NumDisks(), ss, opts), nil
}

// FromSites assembles a trace from precomputed request sites.
func FromSites(program string, numDisks int, ss []Site, opts Options) *trace.Trace {
	m := opts.model()
	tr := &trace.Trace{Program: program, NumDisks: numDisks}
	tr.Events = make([]trace.Event, 0, len(ss))
	var prevCycles int64
	var arrival float64
	for i, s := range ss {
		gapCycles := s.CyclePos - prevCycles
		if gapCycles < 0 {
			gapCycles = 0
		}
		prevCycles = s.CyclePos
		gap := m.ActualMSIn(gapCycles, uint64(i), s.Nest)
		arrival += gap
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: gap,
			Req: trace.Request{
				ArrivalMS: arrival,
				Disk:      s.Disk, Block: s.Block, Bytes: s.Bytes, Kind: s.Kind,
				File: s.File, Unit: s.Unit, Nest: s.Nest, Iter: s.Iter,
			},
		})
		if opts.NominalServiceMS != nil {
			arrival += opts.NominalServiceMS(s.Bytes)
		}
	}
	return tr
}

// PredictedIssueMS returns the compiler's predicted issue time of
// each site in a closed-loop schedule with the given full-speed
// service time: issue[i] = issue[i-1] + service(bytes[i-1]) + mean
// compute gap. This is the timeline the compiler uses to estimate
// disk idle periods.
func PredictedIssueMS(ss []Site, m *cycles.Model, serviceMS func(bytes int64) float64) []float64 {
	out := make([]float64, len(ss))
	var t float64
	var prevCycles int64
	for i, s := range ss {
		gapCycles := s.CyclePos - prevCycles
		if gapCycles < 0 {
			gapCycles = 0
		}
		prevCycles = s.CyclePos
		t += m.MeanMS(gapCycles)
		out[i] = t
		if serviceMS != nil {
			t += serviceMS(s.Bytes)
		}
	}
	return out
}

// Check verifies that the site stream is consistent with the
// subsystem (disks in range, cycle positions non-decreasing).
func Check(ss []Site, numDisks int) error {
	var prev int64
	for i, s := range ss {
		if s.Disk < 0 || s.Disk >= numDisks {
			return fmt.Errorf("tracegen: site %d disk %d out of range", i, s.Disk)
		}
		if s.CyclePos < prev {
			return fmt.Errorf("tracegen: site %d cycle position decreases", i)
		}
		if s.Bytes <= 0 {
			return fmt.Errorf("tracegen: site %d non-positive size", i)
		}
		prev = s.CyclePos
	}
	return nil
}
