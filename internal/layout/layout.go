// Package layout models the placement of array files on the disk
// subsystem. Following the paper (and PVFS), each array is stored in
// its own file, striped across I/O nodes according to a 3-tuple
// (starting disk, stripe factor, stripe size); each I/O node has one
// disk and no further striping is applied at the node level.
package layout

import (
	"fmt"
	"sort"
)

// BlockSize is the logical block size (bytes) used for request start
// block numbers, matching conventional 512-byte sectors.
const BlockSize = 512

// Striping is the disk layout of one array file, the paper's 3-tuple
// (starting disk, stripe factor, stripe size).
type Striping struct {
	// StartDisk is the first I/O node the file is striped from.
	StartDisk int
	// Factor is the number of disks the file is striped over.
	Factor int
	// UnitBytes is the stripe unit size in bytes.
	UnitBytes int64
}

// Validate checks the striping against the subsystem size.
func (s Striping) Validate(numDisks int) error {
	if s.Factor <= 0 || s.Factor > numDisks {
		return fmt.Errorf("layout: stripe factor %d out of range (1..%d)", s.Factor, numDisks)
	}
	if s.StartDisk < 0 || s.StartDisk >= numDisks {
		return fmt.Errorf("layout: starting disk %d out of range (0..%d)", s.StartDisk, numDisks-1)
	}
	if s.UnitBytes <= 0 {
		return fmt.Errorf("layout: stripe unit %d must be positive", s.UnitBytes)
	}
	if s.UnitBytes%BlockSize != 0 {
		return fmt.Errorf("layout: stripe unit %d not a multiple of the %d-byte block size", s.UnitBytes, BlockSize)
	}
	return nil
}

// Disks returns the list of disk ids the striping uses, in stripe
// order starting from StartDisk.
func (s Striping) Disks(numDisks int) []int {
	out := make([]int, s.Factor)
	for i := 0; i < s.Factor; i++ {
		out[i] = (s.StartDisk + i) % numDisks
	}
	return out
}

// DiskOfUnit returns the disk id that holds stripe unit u.
func (s Striping) DiskOfUnit(u int64, numDisks int) int {
	return (s.StartDisk + int(u%int64(s.Factor))) % numDisks
}

// UnitOf returns the stripe unit index containing byte offset off.
func (s Striping) UnitOf(off int64) int64 { return off / s.UnitBytes }

// Extent is a contiguous byte range on one disk, expressed as a start
// block number and a size in bytes.
type Extent struct {
	Disk  int
	Block int64
	Bytes int64
}

// Subsystem tracks the files placed on a multi-disk subsystem and
// maps array byte ranges to per-disk extents with absolute block
// numbers. Files are allocated disk space in placement order.
type Subsystem struct {
	numDisks  int
	stripings map[string]Striping
	sizes     map[string]int64
	// base[name] is the per-disk starting byte of the file's local
	// allocation on each disk it is striped over (indexed by disk id).
	base     map[string][]int64
	nextFree []int64
	order    []string
}

// SubsystemSizeError reports an invalid disk count passed to
// NewSubsystem.
type SubsystemSizeError struct {
	NumDisks int
}

func (e *SubsystemSizeError) Error() string {
	return fmt.Sprintf("layout: subsystem needs at least one disk, got %d", e.NumDisks)
}

// NotPlacedError reports a lookup of a file that was never placed on
// the subsystem.
type NotPlacedError struct {
	File string
}

func (e *NotPlacedError) Error() string {
	return fmt.Sprintf("layout: file %q not placed", e.File)
}

// NewSubsystem returns an empty subsystem with the given number of
// disks (I/O nodes). A non-positive disk count yields a
// *SubsystemSizeError.
func NewSubsystem(numDisks int) (*Subsystem, error) {
	if numDisks <= 0 {
		return nil, &SubsystemSizeError{NumDisks: numDisks}
	}
	return &Subsystem{
		numDisks:  numDisks,
		stripings: make(map[string]Striping),
		sizes:     make(map[string]int64),
		base:      make(map[string][]int64),
		nextFree:  make([]int64, numDisks),
	}, nil
}

// MustSubsystem is NewSubsystem for statically valid disk counts
// (tests, example setup); it panics on error.
func MustSubsystem(numDisks int) *Subsystem {
	s, err := NewSubsystem(numDisks)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDisks returns the number of disks in the subsystem.
func (s *Subsystem) NumDisks() int { return s.numDisks }

// Files returns the placed file names in placement order.
func (s *Subsystem) Files() []string { return append([]string(nil), s.order...) }

// Place allocates space for a file of the given size with the given
// striping. The per-disk share of the file is allocated contiguously
// at each disk's current allocation frontier.
func (s *Subsystem) Place(name string, size int64, st Striping) error {
	if _, dup := s.stripings[name]; dup {
		return fmt.Errorf("layout: file %q already placed", name)
	}
	if size <= 0 {
		return fmt.Errorf("layout: file %q has non-positive size %d", name, size)
	}
	if err := st.Validate(s.numDisks); err != nil {
		return fmt.Errorf("layout: file %q: %w", name, err)
	}
	bases := make([]int64, s.numDisks)
	for i := range bases {
		bases[i] = -1
	}
	units := (size + st.UnitBytes - 1) / st.UnitBytes
	for _, d := range st.Disks(s.numDisks) {
		// Per-disk share: ceil(units/Factor) stripe units, rounded up
		// so every disk in the stripe set reserves the same extent.
		perDisk := (units + int64(st.Factor) - 1) / int64(st.Factor) * st.UnitBytes
		bases[d] = s.nextFree[d]
		s.nextFree[d] += perDisk
	}
	s.stripings[name] = st
	s.sizes[name] = size
	s.base[name] = bases
	s.order = append(s.order, name)
	return nil
}

// StripingOf returns the striping of a placed file.
func (s *Subsystem) StripingOf(name string) (Striping, bool) {
	st, ok := s.stripings[name]
	return st, ok
}

// SizeOf returns the placed size of a file.
func (s *Subsystem) SizeOf(name string) (int64, bool) {
	sz, ok := s.sizes[name]
	return sz, ok
}

// DisksOf returns the disks a placed file occupies, sorted ascending.
func (s *Subsystem) DisksOf(name string) []int {
	st, ok := s.stripings[name]
	if !ok {
		return nil
	}
	ds := st.Disks(s.numDisks)
	sort.Ints(ds)
	return ds
}

// DiskOf returns the disk holding byte offset off of the named file.
func (s *Subsystem) DiskOf(name string, off int64) (int, error) {
	st, ok := s.stripings[name]
	if !ok {
		return 0, &NotPlacedError{File: name}
	}
	if off < 0 || off >= s.sizes[name] {
		return 0, fmt.Errorf("layout: file %q: offset %d out of range [0,%d)", name, off, s.sizes[name])
	}
	return st.DiskOfUnit(st.UnitOf(off), s.numDisks), nil
}

// UnitOf returns the stripe unit index containing byte offset off of
// the named file. Unit indices are file-global and suitable as buffer
// cache keys.
func (s *Subsystem) UnitOf(name string, off int64) (int64, error) {
	st, ok := s.stripings[name]
	if !ok {
		return 0, &NotPlacedError{File: name}
	}
	return st.UnitOf(off), nil
}

// Map splits the byte range [off, off+n) of the named file into
// per-disk extents with absolute block numbers, in ascending file
// offset order.
func (s *Subsystem) Map(name string, off, n int64) ([]Extent, error) {
	st, ok := s.stripings[name]
	if !ok {
		return nil, &NotPlacedError{File: name}
	}
	size := s.sizes[name]
	if off < 0 || n <= 0 || off+n > size {
		return nil, fmt.Errorf("layout: file %q: range [%d,%d) out of [0,%d)", name, off, off+n, size)
	}
	type span struct {
		disk  int
		start int64 // disk-local byte
		bytes int64
	}
	var spans []span
	for n > 0 {
		u := st.UnitOf(off)
		inUnit := off - u*st.UnitBytes
		take := st.UnitBytes - inUnit
		if take > n {
			take = n
		}
		d := st.DiskOfUnit(u, s.numDisks)
		localByte := s.base[name][d] + (u/int64(st.Factor))*st.UnitBytes + inUnit
		// Merge with the previous span when contiguous on disk.
		if k := len(spans) - 1; k >= 0 && spans[k].disk == d && spans[k].start+spans[k].bytes == localByte {
			spans[k].bytes += take
		} else {
			spans = append(spans, span{disk: d, start: localByte, bytes: take})
		}
		off += take
		n -= take
	}
	out := make([]Extent, len(spans))
	for i, sp := range spans {
		out[i] = Extent{Disk: sp.disk, Block: sp.start / BlockSize, Bytes: sp.bytes}
	}
	return out, nil
}

// MapUnit maps one whole stripe unit of the named file to its single
// disk extent. Requests in the simulated workloads are issued at
// stripe-unit granularity, so this is the hot path.
func (s *Subsystem) MapUnit(name string, u int64) (Extent, error) {
	st, ok := s.stripings[name]
	if !ok {
		return Extent{}, &NotPlacedError{File: name}
	}
	size := s.sizes[name]
	off := u * st.UnitBytes
	if off < 0 || off >= size {
		return Extent{}, fmt.Errorf("layout: file %q: unit %d out of range", name, u)
	}
	n := st.UnitBytes
	if off+n > size {
		n = size - off
	}
	d := st.DiskOfUnit(u, s.numDisks)
	localByte := s.base[name][d] + (u/int64(st.Factor))*st.UnitBytes
	return Extent{Disk: d, Block: localByte / BlockSize, Bytes: n}, nil
}
