package layout

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestNewSubsystemRejectsBadSize: a non-positive disk count yields a
// typed error (it used to panic in the constructor).
func TestNewSubsystemRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		s, err := NewSubsystem(n)
		var sse *SubsystemSizeError
		if !errors.As(err, &sse) || s != nil {
			t.Errorf("NewSubsystem(%d) = (%v, %v), want *SubsystemSizeError", n, s, err)
			continue
		}
		if sse.NumDisks != n {
			t.Errorf("error carries %d, want %d", sse.NumDisks, n)
		}
	}
	if s, err := NewSubsystem(4); err != nil || s == nil {
		t.Fatalf("NewSubsystem(4) = (%v, %v)", s, err)
	}
	// MustSubsystem panics on the same input.
	defer func() {
		if recover() == nil {
			t.Error("MustSubsystem(0) did not panic")
		}
	}()
	MustSubsystem(0)
}

func TestStripingValidate(t *testing.T) {
	good := Striping{StartDisk: 0, Factor: 8, UnitBytes: 64 * 1024}
	if err := good.Validate(8); err != nil {
		t.Fatalf("valid striping rejected: %v", err)
	}
	cases := []Striping{
		{StartDisk: 0, Factor: 0, UnitBytes: 65536},
		{StartDisk: 0, Factor: 9, UnitBytes: 65536},
		{StartDisk: -1, Factor: 4, UnitBytes: 65536},
		{StartDisk: 8, Factor: 4, UnitBytes: 65536},
		{StartDisk: 0, Factor: 4, UnitBytes: 0},
		{StartDisk: 0, Factor: 4, UnitBytes: 1000}, // not block aligned
	}
	for _, c := range cases {
		if err := c.Validate(8); err == nil {
			t.Errorf("striping %+v accepted", c)
		}
	}
}

func TestStripingDisks(t *testing.T) {
	st := Striping{StartDisk: 6, Factor: 4, UnitBytes: 65536}
	got := st.Disks(8)
	want := []int{6, 7, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Disks() = %v, want %v", got, want)
		}
	}
}

func TestDiskOfUnitRoundRobin(t *testing.T) {
	st := Striping{StartDisk: 2, Factor: 3, UnitBytes: 1024}
	want := []int{2, 3, 4, 2, 3, 4, 2}
	for u, w := range want {
		if got := st.DiskOfUnit(int64(u), 8); got != w {
			t.Errorf("DiskOfUnit(%d) = %d, want %d", u, got, w)
		}
	}
}

func TestPlaceAndMapSingleDisk(t *testing.T) {
	s := MustSubsystem(4)
	st := Striping{StartDisk: 1, Factor: 1, UnitBytes: 1024}
	if err := s.Place("f", 4096, st); err != nil {
		t.Fatal(err)
	}
	exts, err := s.Map("f", 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 {
		t.Fatalf("expected one merged extent, got %v", exts)
	}
	if exts[0].Disk != 1 || exts[0].Block != 0 || exts[0].Bytes != 4096 {
		t.Errorf("extent = %+v", exts[0])
	}
}

func TestMapStripedRange(t *testing.T) {
	s := MustSubsystem(4)
	st := Striping{StartDisk: 0, Factor: 4, UnitBytes: 1024}
	if err := s.Place("f", 8192, st); err != nil {
		t.Fatal(err)
	}
	// Range covering units 0..3 -> one extent per disk.
	exts, err := s.Map("f", 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 4 {
		t.Fatalf("expected 4 extents, got %v", exts)
	}
	for i, e := range exts {
		if e.Disk != i || e.Bytes != 1024 || e.Block != 0 {
			t.Errorf("extent %d = %+v", i, e)
		}
	}
	// Second stripe row lands at block 1024/512=2 on each disk.
	exts, _ = s.Map("f", 4096, 4096)
	for i, e := range exts {
		if e.Disk != i || e.Block != 2 {
			t.Errorf("row2 extent %d = %+v", i, e)
		}
	}
}

func TestMapPartialUnitAndMerge(t *testing.T) {
	s := MustSubsystem(2)
	st := Striping{StartDisk: 0, Factor: 1, UnitBytes: 1024}
	if err := s.Place("f", 10240, st); err != nil {
		t.Fatal(err)
	}
	// Unaligned range inside one file on one disk merges into one extent.
	exts, err := s.Map("f", 100, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 1 || exts[0].Bytes != 3000 {
		t.Fatalf("exts = %v", exts)
	}
}

func TestTwoFilesDoNotOverlap(t *testing.T) {
	s := MustSubsystem(4)
	st := Striping{StartDisk: 0, Factor: 4, UnitBytes: 1024}
	if err := s.Place("a", 8192, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Place("b", 8192, st); err != nil {
		t.Fatal(err)
	}
	ea, _ := s.Map("a", 0, 8192)
	eb, _ := s.Map("b", 0, 8192)
	type span struct {
		disk       int
		start, end int64
	}
	var spans []span
	for _, e := range append(ea, eb...) {
		spans = append(spans, span{e.Disk, e.Block * BlockSize, e.Block*BlockSize + e.Bytes})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.disk == b.disk && a.start < b.end && b.start < a.end {
				t.Fatalf("overlap: %+v vs %+v", a, b)
			}
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	s := MustSubsystem(2)
	st := Striping{StartDisk: 0, Factor: 2, UnitBytes: 1024}
	if err := s.Place("f", 2048, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Place("f", 2048, st); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := s.Place("g", 0, st); err == nil {
		t.Error("zero size accepted")
	}
	if err := s.Place("h", 10, Striping{StartDisk: 0, Factor: 3, UnitBytes: 1024}); err == nil {
		t.Error("factor > numDisks accepted")
	}
}

func TestMapErrors(t *testing.T) {
	s := MustSubsystem(2)
	st := Striping{StartDisk: 0, Factor: 2, UnitBytes: 1024}
	if err := s.Place("f", 2048, st); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map("nope", 0, 1); err == nil {
		t.Error("unknown file accepted")
	}
	if _, err := s.Map("f", -1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := s.Map("f", 0, 4096); err == nil {
		t.Error("out-of-range length accepted")
	}
	if _, err := s.DiskOf("f", 5000); err == nil {
		t.Error("DiskOf out of range accepted")
	}
	if _, err := s.DiskOf("nope", 0); err == nil {
		t.Error("DiskOf unknown file accepted")
	}
	if _, err := s.UnitOf("nope", 0); err == nil {
		t.Error("UnitOf unknown file accepted")
	}
	if _, err := s.MapUnit("nope", 0); err == nil {
		t.Error("MapUnit unknown file accepted")
	}
	if _, err := s.MapUnit("f", 99); err == nil {
		t.Error("MapUnit out-of-range accepted")
	}
}

func TestMapUnitAgreesWithMap(t *testing.T) {
	s := MustSubsystem(8)
	st := Striping{StartDisk: 3, Factor: 5, UnitBytes: 2048}
	size := int64(2048*37 + 500) // ragged tail
	if err := s.Place("f", size, st); err != nil {
		t.Fatal(err)
	}
	units := (size + st.UnitBytes - 1) / st.UnitBytes
	for u := int64(0); u < units; u++ {
		me, err := s.MapUnit("f", u)
		if err != nil {
			t.Fatal(err)
		}
		off := u * st.UnitBytes
		n := st.UnitBytes
		if off+n > size {
			n = size - off
		}
		exts, err := s.Map("f", off, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(exts) != 1 || exts[0] != me {
			t.Fatalf("unit %d: MapUnit=%+v Map=%v", u, me, exts)
		}
	}
}

func TestDiskOfMatchesMap(t *testing.T) {
	f := func(startDisk, factor uint8, offRaw uint16) bool {
		nd := 8
		sd := int(startDisk) % nd
		fc := int(factor)%nd + 1
		s := MustSubsystem(nd)
		st := Striping{StartDisk: sd, Factor: fc, UnitBytes: 1024}
		size := int64(64 * 1024)
		if err := s.Place("f", size, st); err != nil {
			return false
		}
		off := int64(offRaw) % size
		d, err := s.DiskOf("f", off)
		if err != nil {
			return false
		}
		exts, err := s.Map("f", off, 1)
		if err != nil {
			return false
		}
		return len(exts) == 1 && exts[0].Disk == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMapCoversRangeExactly(t *testing.T) {
	// Property: the extents of any range sum to the range length and
	// successive stripe rows on a disk are contiguous blocks.
	rng := rand.New(rand.NewSource(7))
	s := MustSubsystem(6)
	st := Striping{StartDisk: 2, Factor: 4, UnitBytes: 4096}
	size := int64(1 << 20)
	if err := s.Place("f", size, st); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		off := rng.Int63n(size - 1)
		n := 1 + rng.Int63n(size-off)
		exts, err := s.Map("f", off, n)
		if err != nil {
			t.Fatal(err)
		}
		var tot int64
		for _, e := range exts {
			tot += e.Bytes
			if e.Disk < 0 || e.Disk >= 6 {
				t.Fatalf("bad disk %d", e.Disk)
			}
		}
		if tot != n {
			t.Fatalf("extents cover %d of %d bytes", tot, n)
		}
	}
}

func TestSizeStripingAccessors(t *testing.T) {
	s := MustSubsystem(4)
	st := Striping{StartDisk: 1, Factor: 2, UnitBytes: 1024}
	if err := s.Place("f", 5000, st); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.SizeOf("f"); !ok || got != 5000 {
		t.Errorf("SizeOf = %d, %v", got, ok)
	}
	if _, ok := s.SizeOf("g"); ok {
		t.Error("SizeOf unknown file ok")
	}
	if got, ok := s.StripingOf("f"); !ok || got != st {
		t.Errorf("StripingOf = %+v, %v", got, ok)
	}
	ds := s.DisksOf("f")
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 2 {
		t.Errorf("DisksOf = %v", ds)
	}
	if s.DisksOf("g") != nil {
		t.Error("DisksOf unknown file non-nil")
	}
	if s.NumDisks() != 4 {
		t.Error("NumDisks")
	}
	fs := s.Files()
	if len(fs) != 1 || fs[0] != "f" {
		t.Errorf("Files = %v", fs)
	}
}
