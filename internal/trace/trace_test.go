package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Program:  "demo",
		NumDisks: 4,
		Events: []Event{
			{Kind: EvRequest, GapMS: 3.44, Req: Request{ArrivalMS: 0, Disk: 0, Block: 0, Bytes: 65536, Kind: Read, File: "u", Unit: 0, Nest: 0, Iter: 0}},
			{Kind: EvPowerOp, GapMS: 1.0, Op: PowerOp{Disk: 2, Kind: OpSetRPM, RPM: 4200, PredictedIdleMS: 73.5}},
			{Kind: EvRequest, GapMS: 2.44, Req: Request{ArrivalMS: 10, Disk: 1, Block: 128, Bytes: 65536, Kind: Write, File: "u", Unit: 1, Nest: 0, Iter: 8192}},
			{Kind: EvPowerOp, GapMS: 0, Op: PowerOp{Disk: 2, Kind: OpSpinUp}},
			{Kind: EvPowerOp, GapMS: 0, Op: PowerOp{Disk: 3, Kind: OpSpinDown, PredictedIdleMS: 20000}},
			{Kind: EvRequest, GapMS: 3.44, Req: Request{ArrivalMS: 20, Disk: 2, Block: 0, Bytes: 4096, Kind: Read, File: "v", Unit: 0, Nest: 1, Iter: 5}},
		},
	}
}

func TestCounters(t *testing.T) {
	tr := sampleTrace()
	if tr.NumRequests() != 3 {
		t.Errorf("NumRequests = %d", tr.NumRequests())
	}
	if tr.NumPowerOps() != 3 {
		t.Errorf("NumPowerOps = %d", tr.NumPowerOps())
	}
	if tr.TotalBytes() != 65536*2+4096 {
		t.Errorf("TotalBytes = %d", tr.TotalBytes())
	}
	pd := tr.PerDiskRequests()
	if pd[0] != 1 || pd[1] != 1 || pd[2] != 1 || pd[3] != 0 {
		t.Errorf("PerDiskRequests = %v", pd)
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateCatches(t *testing.T) {
	mut := []func(*Trace){
		func(tr *Trace) { tr.NumDisks = 0 },
		func(tr *Trace) { tr.Events[0].GapMS = -1 },
		func(tr *Trace) { tr.Events[0].Req.Disk = 9 },
		func(tr *Trace) { tr.Events[0].Req.Bytes = 0 },
		func(tr *Trace) { tr.Events[0].Req.Block = -1 },
		func(tr *Trace) { tr.Events[2].Req.ArrivalMS = -5 }, // before event 0's arrival 0
		func(tr *Trace) { tr.Events[1].Op.Disk = -1 },
		func(tr *Trace) { tr.Events[1].Op.RPM = 0 },
		func(tr *Trace) { tr.Events[0].Kind = 7 },
		// Non-finite times slip through ordered comparisons; Validate
		// must reject them explicitly.
		func(tr *Trace) { tr.Events[0].GapMS = math.NaN() },
		func(tr *Trace) { tr.Events[0].GapMS = math.Inf(1) },
		func(tr *Trace) { tr.Events[0].Req.ArrivalMS = math.NaN() },
		func(tr *Trace) { tr.Events[2].Req.ArrivalMS = math.Inf(1) },
		func(tr *Trace) { tr.Events[1].Op.PredictedIdleMS = math.NaN() },
		func(tr *Trace) { tr.Events[4].Op.PredictedIdleMS = math.Inf(-1) },
	}
	for i, m := range mut {
		tr := sampleTrace()
		m(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != tr.Program || got.NumDisks != tr.NumDisks {
		t.Fatalf("header mismatch: %q %d", got.Program, got.NumDisks)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.Kind != b.Kind {
			t.Fatalf("event %d kind mismatch", i)
		}
		if math.Abs(a.GapMS-b.GapMS) > 1e-6 {
			t.Fatalf("event %d gap %g != %g", i, a.GapMS, b.GapMS)
		}
		if a.Kind == EvRequest {
			if a.Req.Disk != b.Req.Disk || a.Req.Block != b.Req.Block ||
				a.Req.Bytes != b.Req.Bytes || a.Req.Kind != b.Req.Kind ||
				a.Req.File != b.Req.File || a.Req.Unit != b.Req.Unit ||
				a.Req.Nest != b.Req.Nest || a.Req.Iter != b.Req.Iter {
				t.Fatalf("event %d request mismatch: %+v vs %+v", i, a.Req, b.Req)
			}
		} else {
			if a.Op.Disk != b.Op.Disk || a.Op.Kind != b.Op.Kind || a.Op.RPM != b.Op.RPM {
				t.Fatalf("event %d op mismatch: %+v vs %+v", i, a.Op, b.Op)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                                 // missing header
		"R 0 0 0 64 r 0 - 0 0 0",           // request before header
		"H demo",                           // malformed header
		"H demo x",                         // bad disk count
		"H demo 4\nR 0 0 0",                // short request
		"H demo 4\nR x 0 0 64 r 0 - 0 0 0", // bad arrival
		"H demo 4\nR 0 0 0 64 z 0 - 0 0 0", // bad kind
		"H demo 4\nP 0 bogus 0 0 0",        // bad op kind
		"H demo 4\nP 0 spin_up",            // short op
		"H demo 4\nQ 1 2 3",                // unknown record
		"H demo 4\nP 0 spin_up x 0 0",      // bad rpm
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestDecodeSkipsCommentsAndBlank(t *testing.T) {
	src := "# comment\n\nH p 2\n# another\nR 0.5 1 2 512 w 0.25 f 3 1 42\n"
	tr, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 1 {
		t.Fatalf("NumRequests = %d", tr.NumRequests())
	}
	r := tr.Events[0].Req
	if r.Disk != 1 || r.Block != 2 || r.Bytes != 512 || r.Kind != Write || r.File != "f" || r.Unit != 3 || r.Nest != 1 || r.Iter != 42 {
		t.Errorf("request = %+v", r)
	}
}

func TestWithoutPowerOps(t *testing.T) {
	tr := sampleTrace()
	plain := tr.WithoutPowerOps()
	if plain.NumPowerOps() != 0 {
		t.Fatal("power ops survived")
	}
	if plain.NumRequests() != tr.NumRequests() {
		t.Fatal("requests lost")
	}
	// The removed ops' gaps fold into the next request's gap so the
	// total compute time is preserved.
	var before, after float64
	for _, e := range tr.Events {
		before += e.GapMS
	}
	for _, e := range plain.Events {
		after += e.GapMS
	}
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("total gap changed: %g -> %g", before, after)
	}
	// Specifically the op gap of 1.0 folded into the second request.
	if math.Abs(plain.Events[1].GapMS-3.44) > 1e-9 {
		t.Errorf("second request gap = %g, want 3.44", plain.Events[1].GapMS)
	}
}

func TestWithoutPowerOpsTrailingOps(t *testing.T) {
	tr := &Trace{Program: "p", NumDisks: 1, Events: []Event{
		{Kind: EvRequest, GapMS: 1, Req: Request{Bytes: 512}},
		{Kind: EvPowerOp, GapMS: 5, Op: PowerOp{Kind: OpSpinDown}},
	}}
	plain := tr.WithoutPowerOps()
	if len(plain.Events) != 1 {
		t.Fatalf("events = %d", len(plain.Events))
	}
}

func TestKindStrings(t *testing.T) {
	if Read.String() != "r" || Write.String() != "w" {
		t.Error("ReqKind strings")
	}
	if OpSpinDown.String() != "spin_down" || OpSpinUp.String() != "spin_up" || OpSetRPM.String() != "set_rpm" {
		t.Error("OpKind strings")
	}
}

func TestEmptyTraceEncode(t *testing.T) {
	tr := &Trace{Program: "", NumDisks: 1}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "" || got.NumDisks != 1 || len(got.Events) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestMergeOpen(t *testing.T) {
	a := &Trace{Program: "a", NumDisks: 2, Events: []Event{
		{Kind: EvRequest, GapMS: 5, Req: Request{ArrivalMS: 5, Disk: 0, Bytes: 512}},
		{Kind: EvPowerOp, GapMS: 1, Op: PowerOp{Disk: 0, Kind: OpSpinDown}},
		{Kind: EvRequest, GapMS: 10, Req: Request{ArrivalMS: 20, Disk: 1, Bytes: 512}},
	}}
	b := &Trace{Program: "b", NumDisks: 4, Events: []Event{
		{Kind: EvRequest, GapMS: 12, Req: Request{ArrivalMS: 12, Disk: 3, Bytes: 512}},
	}}
	m, err := MergeOpen(4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Program != "a+b" {
		t.Errorf("program = %q", m.Program)
	}
	if m.NumPowerOps() != 0 {
		t.Error("power ops survived merge")
	}
	if m.NumRequests() != 3 {
		t.Fatalf("requests = %d", m.NumRequests())
	}
	// Sorted by arrival: 5, 12, 20; gaps are deltas.
	wantArr := []float64{5, 12, 20}
	wantGap := []float64{5, 7, 8}
	for i, e := range m.Events {
		if e.Req.ArrivalMS != wantArr[i] || e.GapMS != wantGap[i] {
			t.Errorf("event %d: arrival %g gap %g", i, e.Req.ArrivalMS, e.GapMS)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Disk overflow rejected.
	if _, err := MergeOpen(2, a, b); err == nil {
		t.Error("merged despite disk overflow")
	}
}
