package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode exercises the trace decoder with arbitrary inputs: it
// must never panic, and anything it accepts must survive an
// encode-and-redecode round trip at the record level.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleTrace().Encode(&seed)
	f.Add(seed.String())
	f.Add("# sdpm-trace v1\nH p 2\nR 0.5 1 2 512 w 0.25 f 3 1 42\n")
	f.Add("H p 1\nP 0 set_rpm 4200 0 73.5\n")
	f.Add("")
	f.Add("H")
	f.Add("R 0 0 0 64 r 0 - 0 0 0")
	f.Add("H p 1\nR nan 0 0 64 r 0 - 0 0 0")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Decode(strings.NewReader(src))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same
		// number of events of the same kinds.
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("encode of decoded trace failed: %v", err)
		}
		tr2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr.Events {
			if tr.Events[i].Kind != tr2.Events[i].Kind {
				t.Fatalf("event %d kind changed", i)
			}
		}
	})
}
