package trace

// The paper's workloads are long regular array sweeps: stretches of
// back-to-back requests with identical size and near-identical
// compute gaps, punctuated only by phase boundaries where the access
// pattern changes and (for the compiler-managed schemes) power ops
// fire. Compile run-length encodes that structure once per trace so
// the simulator's batched executor can service each stretch in a
// tight steady-state loop instead of the general event path.

// Run is one run-length unit of a compiled trace: a maximal stretch
// of consecutive request events (no power ops inside). Start/End
// index the source trace's Events slice; the remaining fields
// summarize the stretch for the batched executor and for diagnostic
// tooling. Per-request service time is deliberately not part of the
// compiled form: it depends on the disk model and the spindle speed
// at execution time, so the simulator derives and caches it per
// (disk, rpm, size) while walking the run.
type Run struct {
	// Start and End delimit the half-open event index range
	// [Start, End) of the run.
	Start, End int
	// Count is End - Start.
	Count int
	// Disk is the uniform disk index of every request in the run, or
	// -1 when the run interleaves disks.
	Disk int
	// Disks is the per-request disk index sequence for interleaved
	// runs (nil when Disk >= 0). Reading 2 bytes per request here
	// instead of a cache line from the event array is what lets the
	// batched executor stream a steady-state run without touching the
	// events at all. Indexed by event index minus Start.
	Disks []uint16
	// Kind is the uniform request kind (int(ReqKind)), or -1 when the
	// run mixes reads and writes.
	Kind int
	// Bytes is the uniform request size, or 0 when sizes vary.
	Bytes int64
	// GapMS is the uniform inter-event compute gap, or -1 when the
	// gaps jitter (workload noise models produce per-request jitter,
	// so the executor always reads the gap per event; a uniform gap
	// here is informational).
	GapMS float64
}

// Compiled is the run-length compiled form of one trace. It is
// derived data only — the source trace remains the authority — and
// is memoized alongside instance memoization so schemes sharing a
// trace share the compiled form.
type Compiled struct {
	// NumEvents is len(Events) of the source trace; consumers use it
	// to reject a compiled form paired with the wrong trace.
	NumEvents int
	// Validated records that the source trace passed Validate at
	// compile time, letting the simulator skip re-validating the same
	// trace on every run. Like Runs, it speaks only for the exact
	// event slice Compile saw.
	Validated bool
	// NumDisks mirrors the source trace.
	NumDisks int
	// PerDisk counts the requests per disk (all requests, whether or
	// not they landed in a Run); the simulator sizes its idle-period
	// lists from it without re-walking the trace.
	PerDisk []int
	// Runs lists the request stretches long enough to batch, in
	// ascending, non-overlapping Start order.
	Runs []Run
}

// minRunEvents is the shortest request stretch worth a Run entry.
// Shorter stretches go through the general event path; the threshold
// only bounds compiled-form size on pathologically fragmented traces
// (e.g. alternating request / power-op streams).
const minRunEvents = 4

// Compile run-length encodes tr. The result indexes tr.Events and is
// valid only for that exact event slice.
func Compile(tr *Trace) *Compiled {
	c := &Compiled{NumEvents: len(tr.Events), NumDisks: tr.NumDisks, PerDisk: make([]int, tr.NumDisks)}
	c.Validated = tr.Validate() == nil
	i := 0
	for i < len(tr.Events) {
		if tr.Events[i].Kind != EvRequest {
			i++
			continue
		}
		j := i
		for j < len(tr.Events) && tr.Events[j].Kind == EvRequest {
			d := tr.Events[j].Req.Disk
			if d >= 0 && d < len(c.PerDisk) {
				c.PerDisk[d]++
			}
			j++
		}
		if j-i >= minRunEvents {
			first := &tr.Events[i]
			run := Run{
				Start: i, End: j, Count: j - i,
				Disk:  first.Req.Disk,
				Kind:  int(first.Req.Kind),
				Bytes: first.Req.Bytes,
				GapMS: first.GapMS,
			}
			for k := i + 1; k < j; k++ {
				e := &tr.Events[k]
				if e.Req.Disk != run.Disk {
					run.Disk = -1
				}
				if int(e.Req.Kind) != run.Kind {
					run.Kind = -1
				}
				if e.Req.Bytes != run.Bytes {
					run.Bytes = 0
				}
				if e.GapMS != run.GapMS {
					run.GapMS = -1
				}
			}
			if run.Disk < 0 {
				run.Disks = make([]uint16, run.Count)
				for k := i; k < j; k++ {
					d := tr.Events[k].Req.Disk
					if d < 0 || d > 0xFFFF {
						// Out-of-range index (an invalid trace, caught by
						// Validate elsewhere): no compact form.
						run.Disks = nil
						break
					}
					run.Disks[k-i] = uint16(d)
				}
			}
			c.Runs = append(c.Runs, run)
		}
		i = j
	}
	return c
}
