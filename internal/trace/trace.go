// Package trace defines the I/O trace format that connects the
// compiler side of the system (analysis, transformation, power-call
// insertion, trace generation) to the disk power simulator.
//
// A trace is an ordered stream of events in program order. Each I/O
// request carries the four attributes of the paper's simulator input
// (arrival time, start block, size, type) plus the closed-loop
// compute gap that separates it from the previous event, and
// provenance (file, stripe unit, nest, iteration) used by the oracle
// policies and the misprediction analysis. Power-management events
// are the explicit spin_down / spin_up / set_RPM calls inserted by
// the compiler; they occupy positions in program order exactly where
// the compiler placed them in the code.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// isFinite reports whether v is neither NaN nor infinite.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ReqKind is the request type: read or write.
type ReqKind uint8

// Request kinds.
const (
	Read ReqKind = iota
	Write
)

// String returns "r" or "w".
func (k ReqKind) String() string {
	if k == Write {
		return "w"
	}
	return "r"
}

// Request is one disk I/O request. Requests are issued at
// stripe-unit granularity, so each touches exactly one disk.
type Request struct {
	// ArrivalMS is the nominal arrival time in the unperturbed
	// (full-speed, no-power-management) schedule; the paper's trace
	// format field. The simulator recomputes actual issue times from
	// the closed-loop gaps.
	ArrivalMS float64
	// Disk, Block, Bytes, Kind describe the physical access.
	Disk  int
	Block int64
	Bytes int64
	Kind  ReqKind
	// File and Unit identify the stripe unit for cache/oracle
	// bookkeeping.
	File string
	Unit int64
	// Nest and Iter locate the request in the program's iteration
	// space (linearized iteration within the nest).
	Nest int
	Iter int64
}

// OpKind is the power-management call type.
type OpKind uint8

// Power-management call kinds.
const (
	OpSpinDown OpKind = iota
	OpSpinUp
	OpSetRPM
)

// String returns the call name as it appears in the paper.
func (k OpKind) String() string {
	switch k {
	case OpSpinDown:
		return "spin_down"
	case OpSpinUp:
		return "spin_up"
	default:
		return "set_rpm"
	}
}

// PowerOp is an explicit power-management call inserted by the
// compiler.
type PowerOp struct {
	Disk int
	Kind OpKind
	// RPM is the target speed for OpSetRPM.
	RPM int
	// PredictedIdleMS is the compiler's estimate of the idle period
	// this call begins (for spin_down/set_rpm to a lower level);
	// recorded for the Table 3 misprediction analysis.
	PredictedIdleMS float64
}

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	EvRequest EventKind = iota
	EvPowerOp
)

// Event is one entry of the program-order event stream. GapMS is the
// compute time separating this event from the completion of the
// previous blocking event (the closed-loop "think time").
type Event struct {
	Kind  EventKind
	GapMS float64
	Req   Request // valid when Kind == EvRequest
	Op    PowerOp // valid when Kind == EvPowerOp
}

// Trace is a complete program trace.
type Trace struct {
	// Program names the traced program.
	Program string
	// NumDisks is the size of the disk subsystem the trace targets.
	NumDisks int
	// Events is the program-order event stream.
	Events []Event
}

// NumRequests returns the number of I/O requests in the trace.
func (t *Trace) NumRequests() int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == EvRequest {
			n++
		}
	}
	return n
}

// NumPowerOps returns the number of power-management calls.
func (t *Trace) NumPowerOps() int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == EvPowerOp {
			n++
		}
	}
	return n
}

// TotalBytes returns the total bytes transferred by all requests.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for i := range t.Events {
		if t.Events[i].Kind == EvRequest {
			n += t.Events[i].Req.Bytes
		}
	}
	return n
}

// PerDiskRequests returns the request count per disk.
func (t *Trace) PerDiskRequests() []int {
	out := make([]int, t.NumDisks)
	for i := range t.Events {
		if t.Events[i].Kind == EvRequest {
			out[t.Events[i].Req.Disk]++
		}
	}
	return out
}

// WithoutPowerOps returns a copy of the trace with all power-
// management calls removed (their program positions' compute gaps are
// folded into the following event), for running a compiler-
// instrumented trace under a reactive or base policy.
func (t *Trace) WithoutPowerOps() *Trace {
	out := &Trace{Program: t.Program, NumDisks: t.NumDisks}
	var carry float64
	for i := range t.Events {
		ev := t.Events[i]
		if ev.Kind == EvPowerOp {
			carry += ev.GapMS
			continue
		}
		ev.GapMS += carry
		carry = 0
		out.Events = append(out.Events, ev)
	}
	return out
}

// MergeOpen merges several traces into one multiprogrammed workload
// on a shared subsystem, interleaving their requests by nominal
// arrival time. Power-op events are dropped (their program-order
// anchors are meaningless across programs), and the compute gaps are
// recomputed as arrival deltas, so the merged trace is intended for
// open-loop replay — the server scenario the paper's single-program
// evaluation sets aside.
func MergeOpen(numDisks int, traces ...*Trace) (*Trace, error) {
	out := &Trace{NumDisks: numDisks}
	var names []string
	for _, t := range traces {
		if t.NumDisks > numDisks {
			return nil, fmt.Errorf("trace: input uses %d disks, merged subsystem has %d", t.NumDisks, numDisks)
		}
		names = append(names, t.Program)
		for i := range t.Events {
			if t.Events[i].Kind == EvRequest {
				out.Events = append(out.Events, t.Events[i])
			}
		}
	}
	out.Program = strings.Join(names, "+")
	sort.SliceStable(out.Events, func(a, b int) bool {
		return out.Events[a].Req.ArrivalMS < out.Events[b].Req.ArrivalMS
	})
	prev := 0.0
	for i := range out.Events {
		out.Events[i].GapMS = out.Events[i].Req.ArrivalMS - prev
		prev = out.Events[i].Req.ArrivalMS
	}
	return out, nil
}

// Validate checks trace invariants: disks in range, positive request
// sizes, non-negative gaps, and non-decreasing nominal arrivals.
func (t *Trace) Validate() error {
	if t.NumDisks <= 0 {
		return fmt.Errorf("trace: non-positive disk count %d", t.NumDisks)
	}
	prevArrival := -1.0
	for i := range t.Events {
		ev := &t.Events[i]
		// NaN passes every ordered comparison below (NaN < 0 is false),
		// so non-finite times must be rejected explicitly.
		if !isFinite(ev.GapMS) || ev.GapMS < 0 {
			return fmt.Errorf("trace: event %d has bad gap %v", i, ev.GapMS)
		}
		switch ev.Kind {
		case EvRequest:
			r := &ev.Req
			if !isFinite(r.ArrivalMS) {
				return fmt.Errorf("trace: event %d has non-finite arrival %v", i, r.ArrivalMS)
			}
			if r.Disk < 0 || r.Disk >= t.NumDisks {
				return fmt.Errorf("trace: event %d disk %d out of range", i, r.Disk)
			}
			if r.Bytes <= 0 {
				return fmt.Errorf("trace: event %d has non-positive size", i)
			}
			if r.Block < 0 {
				return fmt.Errorf("trace: event %d has negative block", i)
			}
			if r.ArrivalMS < prevArrival {
				return fmt.Errorf("trace: event %d arrival %.3f before previous %.3f", i, r.ArrivalMS, prevArrival)
			}
			prevArrival = r.ArrivalMS
		case EvPowerOp:
			o := &ev.Op
			if o.Disk < 0 || o.Disk >= t.NumDisks {
				return fmt.Errorf("trace: event %d op disk %d out of range", i, o.Disk)
			}
			if o.Kind == OpSetRPM && o.RPM <= 0 {
				return fmt.Errorf("trace: event %d set_rpm with non-positive RPM", i)
			}
			if !isFinite(o.PredictedIdleMS) {
				return fmt.Errorf("trace: event %d has non-finite predicted idle %v", i, o.PredictedIdleMS)
			}
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// Encode writes the trace in the textual interchange format. The
// format is line oriented:
//
//	# sdpm-trace v1
//	H <program> <numdisks>
//	R <arrival_ms> <disk> <block> <bytes> <r|w> <gap_ms> <file> <unit> <nest> <iter>
//	P <disk> <spin_down|spin_up|set_rpm> <rpm> <gap_ms> <predicted_idle_ms>
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# sdpm-trace v1")
	fmt.Fprintf(bw, "H %s %d\n", nonEmpty(t.Program), t.NumDisks)
	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Kind {
		case EvRequest:
			r := &ev.Req
			fmt.Fprintf(bw, "R %.6f %d %d %d %s %.6f %s %d %d %d\n",
				r.ArrivalMS, r.Disk, r.Block, r.Bytes, r.Kind, ev.GapMS, nonEmpty(r.File), r.Unit, r.Nest, r.Iter)
		case EvPowerOp:
			o := &ev.Op
			fmt.Fprintf(bw, "P %d %s %d %.6f %.6f\n", o.Disk, o.Kind, o.RPM, ev.GapMS, o.PredictedIdleMS)
		}
	}
	return bw.Flush()
}

func nonEmpty(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fromDash(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Decode parses a trace in the textual interchange format.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "H":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed header", line)
			}
			t.Program = fromDash(fields[1])
			nd, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad disk count: %v", line, err)
			}
			t.NumDisks = nd
			sawHeader = true
		case "R":
			if !sawHeader {
				return nil, fmt.Errorf("trace: line %d: request before header", line)
			}
			if len(fields) != 11 {
				return nil, fmt.Errorf("trace: line %d: malformed request (%d fields)", line, len(fields))
			}
			var ev Event
			ev.Kind = EvRequest
			var err error
			if ev.Req.ArrivalMS, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: arrival: %v", line, err)
			}
			if ev.Req.Disk, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("trace: line %d: disk: %v", line, err)
			}
			if ev.Req.Block, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: block: %v", line, err)
			}
			if ev.Req.Bytes, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: bytes: %v", line, err)
			}
			switch fields[5] {
			case "r":
				ev.Req.Kind = Read
			case "w":
				ev.Req.Kind = Write
			default:
				return nil, fmt.Errorf("trace: line %d: bad request kind %q", line, fields[5])
			}
			if ev.GapMS, err = strconv.ParseFloat(fields[6], 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: gap: %v", line, err)
			}
			ev.Req.File = fromDash(fields[7])
			if ev.Req.Unit, err = strconv.ParseInt(fields[8], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: unit: %v", line, err)
			}
			if ev.Req.Nest, err = strconv.Atoi(fields[9]); err != nil {
				return nil, fmt.Errorf("trace: line %d: nest: %v", line, err)
			}
			if ev.Req.Iter, err = strconv.ParseInt(fields[10], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: iter: %v", line, err)
			}
			t.Events = append(t.Events, ev)
		case "P":
			if !sawHeader {
				return nil, fmt.Errorf("trace: line %d: power op before header", line)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("trace: line %d: malformed power op", line)
			}
			var ev Event
			ev.Kind = EvPowerOp
			var err error
			if ev.Op.Disk, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("trace: line %d: disk: %v", line, err)
			}
			switch fields[2] {
			case "spin_down":
				ev.Op.Kind = OpSpinDown
			case "spin_up":
				ev.Op.Kind = OpSpinUp
			case "set_rpm":
				ev.Op.Kind = OpSetRPM
			default:
				return nil, fmt.Errorf("trace: line %d: bad op kind %q", line, fields[2])
			}
			if ev.Op.RPM, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("trace: line %d: rpm: %v", line, err)
			}
			if ev.GapMS, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: gap: %v", line, err)
			}
			if ev.Op.PredictedIdleMS, err = strconv.ParseFloat(fields[5], 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: predicted idle: %v", line, err)
			}
			t.Events = append(t.Events, ev)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing header")
	}
	return t, nil
}
