package runner

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sdpm/internal/obs"
)

func TestMapCanceledBeforeStart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := New(workers).WithContext(ctx).Map(16, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d cells ran on a dead context", workers, ran.Load())
		}
	}
}

func TestMapCancelStopsClaims(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const n = 1000
		var ran atomic.Int64
		err := New(workers).WithContext(ctx).Map(n, func(i int) error {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight cells finish, but once every worker has observed the
		// cancellation no further cells are claimed — far fewer than n.
		if got := ran.Load(); got >= n/2 {
			t.Errorf("workers=%d: %d of %d cells ran after cancellation", workers, got, n)
		}
	}
}

func TestMapCancelKeepsLowestErrorPrecedence(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		err := New(workers).WithContext(ctx).Map(64, func(i int) error {
			if i == 0 {
				cancel()
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the cell error, not the cancellation", workers, err)
		}
	}
}

func TestMapCancelDrainsGaugesAndGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	c := obs.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 500
	err := New(4).Observe(c).WithContext(ctx).Map(n, func(i int) error {
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, _, active, queued := c.RunnerStats()
	if active != 0 || queued != 0 {
		t.Errorf("gauges not drained after cancellation: active=%d queued=%d", active, queued)
	}
	// Helper goroutines must all have exited: no leak survives Map.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across canceled Map: %d -> %d", before, after)
	}
}

func TestWithContextNilIsNoOp(t *testing.T) {
	p := New(2)
	if q := p.WithContext(nil); q != p {
		t.Error("WithContext(nil) should return the receiver")
	}
	var nilPool *Pool
	if q := nilPool.WithContext(context.Background()); q != nil {
		t.Error("nil pool WithContext should stay nil")
	}
	// A context on a live pool with no cancellation changes nothing.
	if err := p.WithContext(context.Background()).Map(8, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
