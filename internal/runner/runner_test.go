package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllCellsInSlotOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		p := New(workers)
		n := 100
		out := make([]int, n)
		err := p.Map(n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Map(50, func(i int) error {
			if i%10 == 7 {
				return fmt.Errorf("cell %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7" {
			t.Errorf("workers=%d: err = %v, want cell 7", workers, err)
		}
	}
}

func TestMapEmptyAndNilPool(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers = %d", p.Workers())
	}
	ran := 0
	if err := p.Map(3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("nil pool ran %d cells", ran)
	}
	if err := New(4).Map(0, func(i int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	p := New(1)
	ran := 0
	err := p.Map(10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Errorf("ran=%d err=%v, want 4 cells and an error", ran, err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	err := p.Map(64, func(i int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pk := peak.Load(); pk > workers {
		t.Errorf("observed %d concurrent cells, bound %d", pk, workers)
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	err := p.Map(8, func(i int) error {
		return p.Map(8, func(j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Errorf("ran %d inner cells, want 64", total.Load())
	}
}
