package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllCellsInSlotOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		p := New(workers)
		n := 100
		out := make([]int, n)
		err := p.Map(n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Map(50, func(i int) error {
			if i%10 == 7 {
				return fmt.Errorf("cell %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7" {
			t.Errorf("workers=%d: err = %v, want cell 7", workers, err)
		}
	}
}

func TestMapEmptyAndNilPool(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers = %d", p.Workers())
	}
	ran := 0
	if err := p.Map(3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("nil pool ran %d cells", ran)
	}
	if err := New(4).Map(0, func(i int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	p := New(1)
	ran := 0
	err := p.Map(10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Errorf("ran=%d err=%v, want 4 cells and an error", ran, err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	err := p.Map(64, func(i int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pk := peak.Load(); pk > workers {
		t.Errorf("observed %d concurrent cells, bound %d", pk, workers)
	}
}

func TestPanickingCellBecomesCellError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		n := 40
		done := make([]bool, n)
		err := p.Map(n, func(i int) error {
			if i == 13 {
				panic("boom in cell 13")
			}
			done[i] = true
			return nil
		})
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %v, want *CellError", workers, err)
		}
		if ce.Index != 13 || ce.Value != "boom in cell 13" || len(ce.Stack) == 0 {
			t.Fatalf("workers=%d: CellError = {%d %v stack:%d}", workers, ce.Index, ce.Value, len(ce.Stack))
		}
		// Isolation: with workers>1 every other cell still completed.
		if workers > 1 {
			for i, d := range done {
				if i != 13 && !d {
					t.Fatalf("workers=%d: cell %d did not complete", workers, i)
				}
			}
		}
	}
}

func TestNilPoolRecoversPanics(t *testing.T) {
	var p *Pool
	err := p.Map(3, func(i int) error {
		if i == 1 {
			panic(errors.New("wrapped"))
		}
		return nil
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("err = %v, want *CellError{Index:1}", err)
	}
}

func TestWithRetryBoundedAndRecovers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers).WithRetry(2)
		var attempts [5]atomic.Int64
		// Cells fail (by error or panic) on their first two attempts
		// and succeed on the third — within the retry budget.
		err := p.Map(5, func(i int) error {
			a := attempts[i].Add(1)
			if a <= 2 {
				if i%2 == 0 {
					return fmt.Errorf("transient %d/%d", i, a)
				}
				panic(fmt.Sprintf("transient panic %d/%d", i, a))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range attempts {
			if got := attempts[i].Load(); got != 3 {
				t.Fatalf("workers=%d: cell %d ran %d attempts, want 3", workers, i, got)
			}
		}
	}
	// A deterministic failure exhausts the budget and surfaces.
	p := New(2).WithRetry(3)
	var count atomic.Int64
	err := p.Map(1, func(i int) error {
		count.Add(1)
		return errors.New("always")
	})
	if err == nil || count.Load() != 4 {
		t.Fatalf("attempts=%d err=%v, want 4 attempts and an error", count.Load(), err)
	}
	// WithRetry(0) must not allocate a view.
	base := New(2)
	if base.WithRetry(0) != base {
		t.Fatal("WithRetry(0) returned a new pool")
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	err := p.Map(8, func(i int) error {
		return p.Map(8, func(j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Errorf("ran %d inner cells, want 64", total.Load())
	}
}
