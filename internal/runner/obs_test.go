package runner

import (
	"errors"
	"testing"
	"time"

	"sdpm/internal/obs"
)

func TestMapObservesTasksAndGauges(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := obs.New()
		p := New(workers).Observe(c)
		const n = 9
		err := p.Map(n, func(i int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks, busyNS, active, queued := c.RunnerStats()
		if tasks != n {
			t.Errorf("workers=%d: tasks = %d, want %d", workers, tasks, n)
		}
		if busyNS <= 0 {
			t.Errorf("workers=%d: busyNS = %d, want > 0", workers, busyNS)
		}
		if active != 0 || queued != 0 {
			t.Errorf("workers=%d: gauges not drained after Map: active=%d queued=%d", workers, active, queued)
		}
	}
}

func TestMapSequentialErrorDrainsQueueGauge(t *testing.T) {
	c := obs.New()
	boom := errors.New("boom")
	err := New(1).Observe(c).Map(8, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	tasks, _, active, queued := c.RunnerStats()
	if tasks != 3 { // cells 0, 1, and the failing 2 ran
		t.Errorf("tasks = %d, want 3", tasks)
	}
	if active != 0 || queued != 0 {
		t.Errorf("gauges not drained after early error: active=%d queued=%d", active, queued)
	}
}

func TestMapNilCollectorAndNilPool(t *testing.T) {
	// Observe(nil) and a nil pool must both stay no-ops.
	if err := New(2).Observe(nil).Map(4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var p *Pool
	if err := p.Observe(obs.New()).Map(4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
