// Package runner provides the bounded, deterministic worker pool the
// experiment drivers fan out on. Every table and figure of the
// paper's evaluation is an embarrassingly parallel grid of
// independent (benchmark, configuration, scheme) cells; the pool runs
// those cells concurrently while the callers reassemble results in
// canonical index order, so rendered output is byte-identical to a
// sequential run regardless of the worker count.
//
// Determinism contract:
//
//   - Map indexes identify cells; workers claim indexes from an
//     atomic counter, so scheduling order is arbitrary, but each
//     cell's result lands in its own slot and the caller reads the
//     slots in index order.
//   - Cell functions must not share mutable state except through
//     their own slot (or through concurrency-safe structures such as
//     core.Cache).
//   - On failure, Map always reports the error of the lowest failing
//     index — the same error a sequential loop would surface.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value is not useful; use
// New. A nil *Pool runs everything sequentially on the caller.
type Pool struct {
	workers int
	// helpers holds tokens for the pool's helper goroutines
	// (workers-1 of them: the calling goroutine always participates,
	// which keeps nested Map calls deadlock-free — a caller that
	// cannot obtain helpers still makes progress inline).
	helpers chan struct{}
}

// New returns a pool bounded at the given number of workers.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, helpers: make(chan struct{}, workers-1)}
}

// Workers returns the pool's worker bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map runs fn(i) for every i in [0, n), using the calling goroutine
// plus up to Workers()-1 helper goroutines. All cells run even when
// some fail; the returned error is the one with the lowest index
// (exactly what a sequential loop over [0, n) would return first).
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1 && spawned < p.workers-1; spawned++ {
		select {
		case p.helpers <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.helpers
					wg.Done()
				}()
				work()
			}()
		default:
			// No helper slots free (other Map calls on this pool hold
			// them); the caller alone keeps the bound intact.
			break spawn
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
