// Package runner provides the bounded, deterministic worker pool the
// experiment drivers fan out on. Every table and figure of the
// paper's evaluation is an embarrassingly parallel grid of
// independent (benchmark, configuration, scheme) cells; the pool runs
// those cells concurrently while the callers reassemble results in
// canonical index order, so rendered output is byte-identical to a
// sequential run regardless of the worker count.
//
// Determinism contract:
//
//   - Map indexes identify cells; workers claim indexes from an
//     atomic counter, so scheduling order is arbitrary, but each
//     cell's result lands in its own slot and the caller reads the
//     slots in index order.
//   - Cell functions must not share mutable state except through
//     their own slot (or through concurrency-safe structures such as
//     core.Cache).
//   - On failure, Map always reports the error of the lowest failing
//     index — the same error a sequential loop would surface.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
)

// CellError converts a panicking cell into an ordinary cell failure:
// the panic is recovered inside the worker, wrapped with the cell's
// index and stack, and reported through Map's normal lowest-index
// error path. One bad cell therefore degrades that cell instead of
// crashing the whole sweep, and already-completed cells (for example,
// cells journaled by the experiment engine) keep their results.
type CellError struct {
	Index int    // the Map index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack captured at the recovery point
}

func (e *CellError) Error() string {
	return fmt.Sprintf("runner: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Pool is a bounded worker pool. The zero value is not useful; use
// New. A nil *Pool runs everything sequentially on the caller.
type Pool struct {
	workers int
	// helpers holds tokens for the pool's helper goroutines
	// (workers-1 of them: the calling goroutine always participates,
	// which keeps nested Map calls deadlock-free — a caller that
	// cannot obtain helpers still makes progress inline).
	helpers chan struct{}
	// obs receives task counts, busy time, and the active-worker and
	// queue-depth gauges when non-nil (see Observe).
	obs *obs.Collector
	// ev receives cell-lifecycle events (retries, recovered panics)
	// when non-nil (see Trace).
	ev *events.Log
	// ctx, when non-nil, cancels Map early: in-flight cells finish,
	// unclaimed cells are skipped (see WithContext).
	ctx context.Context
	// retries, when positive, re-runs a failing cell up to that many
	// extra times before recording its error (see WithRetry).
	retries int
}

// New returns a pool bounded at the given number of workers.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, helpers: make(chan struct{}, workers-1)}
}

// Observe attaches a metrics collector to the pool and returns the
// pool (for chaining with New). Every Map cell then counts toward
// the collector's task total and busy time, and the active-worker
// and queue-depth gauges track the pool live. A nil collector (or a
// nil pool) is a no-op.
func (p *Pool) Observe(c *obs.Collector) *Pool {
	if p != nil {
		p.obs = c
	}
	return p
}

// Trace attaches a decision-provenance event log to the pool and
// returns the pool (for chaining with New, like Observe). Every cell
// retry and recovered panic is then recorded as a structured event
// carrying the cell index, alongside the collector's counters. Cell
// events carry no timestamp (TMS 0): wall-clock stamps would make
// otherwise-deterministic event logs differ run to run. A nil log
// (or a nil pool) is a no-op.
func (p *Pool) Trace(l *events.Log) *Pool {
	if p != nil {
		p.ev = l
	}
	return p
}

// WithContext returns a pool view whose Map calls observe ctx:
// cancellation stops workers from claiming further cells (cells
// already in flight run to completion — simulation cells are pure
// computation and finish fast) and Map returns the context's error.
// The view shares the receiver's helper bound and collector, so
// nested Map calls across views still respect one worker budget. A
// nil ctx (or a nil pool) returns the receiver unchanged.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	if p == nil || ctx == nil {
		return p
	}
	q := *p
	q.ctx = ctx
	return &q
}

// WithRetry returns a pool view whose Map calls re-run a failing cell
// up to n extra times before recording its error. Retries cover both
// returned errors and recovered panics; they are intended for cells
// with transient failure modes (a flaky external resource, an
// allocation spike) — a deterministic simulation cell that fails will
// simply fail n+1 times and report its last error. The view shares
// the receiver's helper bound, collector, and context. n <= 0 (or a
// nil pool) returns the receiver unchanged.
func (p *Pool) WithRetry(n int) *Pool {
	if p == nil || n <= 0 {
		return p
	}
	q := *p
	q.retries = n
	return &q
}

// Workers returns the pool's worker bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn as a single isolated cell on the calling goroutine:
// a panic inside fn is recovered and returned as a *CellError (index
// 0) exactly as Map would report it, the pool's retry policy applies,
// and the collector's task counters observe the cell. It is the
// serving layer's per-request isolation boundary — one poisoned
// request degrades to a typed error instead of killing the process —
// and is equivalent to Map(1, func(int) error { return fn() }).
func (p *Pool) Run(fn func() error) error {
	return p.Map(1, func(int) error { return fn() })
}

// Map runs fn(i) for every i in [0, n), using the calling goroutine
// plus up to Workers()-1 helper goroutines. All cells run even when
// some fail; the returned error is the one with the lowest index
// (exactly what a sequential loop over [0, n) would return first).
// A panicking cell is recovered and reported as a *CellError carrying
// the index, panic value, and stack — it fails like any other cell,
// and every other cell still runs to completion. When the pool
// carries a context (WithContext) and it is canceled, workers stop
// claiming cells, in-flight cells finish, and Map returns the
// lowest-index cell error if one occurred before the cancellation
// point, or the context's error otherwise.
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var c *obs.Collector
	var ev *events.Log
	var ctx context.Context
	retries := 0
	if p != nil {
		c = p.obs
		ev = p.ev
		ctx = p.ctx
		retries = p.retries
	}
	canceled := func() error {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	// base runs one attempt of one cell with panic isolation.
	base := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				c.CountCellPanic()
				ev.Emit(events.Event{Kind: events.KindCellPanic, Disk: -1,
					Detail: fmt.Sprintf("cell=%d", i)})
				err = &CellError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}
	// exec adds the bounded retry policy on top of an attempt.
	exec := base
	if retries > 0 {
		exec = func(i int) error {
			err := base(i)
			for r := 0; r < retries && err != nil && canceled() == nil; r++ {
				c.CountCellRetry()
				ev.Emit(events.Event{Kind: events.KindCellRetry, Disk: -1,
					Detail: fmt.Sprintf("cell=%d attempt=%d", i, r+2)})
				err = base(i)
			}
			return err
		}
	}
	run := exec
	if c != nil {
		c.RunnerQueue(int64(n))
		run = func(i int) error {
			c.RunnerQueue(-1)
			t0 := time.Now()
			err := exec(i)
			c.RunnerTask(time.Since(t0).Nanoseconds())
			return err
		}
	}
	if p == nil || p.workers <= 1 || n == 1 {
		c.RunnerWorker(1)
		defer c.RunnerWorker(-1)
		for i := 0; i < n; i++ {
			if err := canceled(); err != nil {
				// Cells i.. were never claimed; drain the gauge.
				c.RunnerQueue(int64(-(n - i)))
				return err
			}
			if err := run(i); err != nil {
				// Cells n-i-1.. were never claimed; drain the gauge.
				c.RunnerQueue(int64(-(n - i - 1)))
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, claimed atomic.Int64
	work := func() {
		c.RunnerWorker(1)
		defer c.RunnerWorker(-1)
		for {
			if canceled() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			claimed.Add(1)
			errs[i] = run(i)
		}
	}
	// Helpers spawn on demand, chained: each helper first checks that
	// unclaimed cells remain, then (if so) starts the next helper and
	// works. A grid whose cells drain faster than goroutines start —
	// or a machine whose CPUs are all busy — therefore never pays for
	// helpers that would find no work, and parallel Map never regresses
	// below the sequential loop. The helpers channel still caps the
	// pool-wide helper count (nested Map calls share one budget); when
	// no slot is free the caller alone keeps the bound intact.
	var wg sync.WaitGroup
	var spawn func()
	spawn = func() {
		if int(next.Load()) >= n || canceled() != nil {
			return
		}
		select {
		case p.helpers <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.helpers
					wg.Done()
				}()
				spawn()
				work()
			}()
		default:
		}
	}
	spawn()
	work()
	wg.Wait()
	if unclaimed := int64(n) - claimed.Load(); unclaimed > 0 {
		// Cancellation left cells unclaimed; drain the gauge.
		c.RunnerQueue(-unclaimed)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return canceled()
}
