// Package ir defines the loop-nest intermediate representation used by
// the software-directed disk power management compiler.
//
// The representation captures exactly the information the paper's
// analysis consumes: perfectly nested affine loop nests whose body
// statements reference multi-dimensional arrays through affine
// subscript expressions, plus a per-statement compute-cycle cost used
// for cycle estimation. Programs are a sequence of nests over a set of
// disk-resident arrays.
package ir

import (
	"fmt"
	"strings"
)

// Array describes a disk-resident multi-dimensional array. Each array
// is stored in its own file, striped over the disk subsystem according
// to a layout chosen outside the IR (see internal/layout).
type Array struct {
	// Name identifies the array; unique within a Program.
	Name string
	// Dims holds the extent of each dimension. For a row-major array
	// Dims[0] is the slowest-varying storage dimension.
	Dims []int64
	// ElemSize is the size of one element in bytes (8 for float64).
	ElemSize int64
	// RowMajor selects the storage order of the file holding the
	// array: true for row-major (C order), false for column-major
	// (Fortran order). The paper's tiling transformation may flip
	// this to make the access pattern conform to the storage layout.
	RowMajor bool
	// Block, when non-nil, selects a blocked (tiled) storage layout:
	// the array is stored tile-by-tile, each tile of extents Block
	// stored contiguously, with both the tile grid and the elements
	// within a tile ordered according to RowMajor. Every Block[d]
	// must divide Dims[d]. The layout-aware tiling transformation
	// (TL+DL) produces blocked layouts so one iteration tile maps to
	// one stripe unit.
	Block []int64
}

// Elems returns the total number of elements in the array.
func (a *Array) Elems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the total size of the array's file in bytes.
func (a *Array) SizeBytes() int64 { return a.Elems() * a.ElemSize }

// ArityError reports an index vector whose length does not match the
// array's rank. OffsetOf panics with it — the mismatch is a caller
// bug, not an input condition — but carrying a typed value lets
// recovery code (the experiment engine's cell isolation) identify the
// failure instead of matching on a message string.
type ArityError struct {
	Array   string
	Rank    int
	Indices int
}

func (e *ArityError) Error() string {
	return fmt.Sprintf("ir: array %s has %d dims, got %d indices", e.Array, e.Rank, e.Indices)
}

// OffsetOf returns the byte offset of the element at the given index
// vector within the array's file, honoring the storage order and, if
// set, the blocked layout. An index vector whose length differs from
// the array's rank is a caller bug: OffsetOf panics with an
// *ArityError.
func (a *Array) OffsetOf(idx []int64) int64 {
	if len(idx) != len(a.Dims) {
		panic(&ArityError{Array: a.Name, Rank: len(a.Dims), Indices: len(idx)})
	}
	if a.Block == nil {
		return a.linearize(idx, a.Dims) * a.ElemSize
	}
	// Blocked layout: linearize the tile coordinate over the tile
	// grid, then the element coordinate within the tile.
	n := len(idx)
	tile := make([]int64, n)
	within := make([]int64, n)
	grid := make([]int64, n)
	tileElems := int64(1)
	for d := 0; d < n; d++ {
		tile[d] = idx[d] / a.Block[d]
		within[d] = idx[d] % a.Block[d]
		grid[d] = a.Dims[d] / a.Block[d]
		tileElems *= a.Block[d]
	}
	return (a.linearize(tile, grid)*tileElems + a.linearize(within, a.Block)) * a.ElemSize
}

// linearize flattens an index vector over the given extents in the
// array's storage order.
func (a *Array) linearize(idx, dims []int64) int64 {
	var lin int64
	if a.RowMajor {
		for d := 0; d < len(idx); d++ {
			lin = lin*dims[d] + idx[d]
		}
	} else {
		for d := len(idx) - 1; d >= 0; d-- {
			lin = lin*dims[d] + idx[d]
		}
	}
	return lin
}

// InnerStride returns the byte distance between elements that differ
// by one in dimension dim, under the array's storage order. It is
// only meaningful for linear (non-blocked) layouts; for blocked
// arrays the distance depends on the position within the tile.
func (a *Array) InnerStride(dim int) int64 {
	stride := a.ElemSize
	if a.RowMajor {
		for d := len(a.Dims) - 1; d > dim; d-- {
			stride *= a.Dims[d]
		}
	} else {
		for d := 0; d < dim; d++ {
			stride *= a.Dims[d]
		}
	}
	return stride
}

// Expr is an affine expression over the loop variables of the
// enclosing nest: Coeffs[d]*iv[d] summed over depths d, plus Const.
// Coeffs may be shorter than the nest depth; missing coefficients are
// zero.
type Expr struct {
	Coeffs []int64
	Const  int64
}

// Var returns the affine expression that evaluates to the loop
// variable at the given depth.
func Var(depth int) Expr {
	c := make([]int64, depth+1)
	c[depth] = 1
	return Expr{Coeffs: c}
}

// Cnst returns the constant affine expression c.
func Cnst(c int64) Expr { return Expr{Const: c} }

// Plus returns e + c.
func (e Expr) Plus(c int64) Expr {
	out := Expr{Coeffs: append([]int64(nil), e.Coeffs...), Const: e.Const + c}
	return out
}

// Times returns e scaled by k.
func (e Expr) Times(k int64) Expr {
	out := Expr{Coeffs: make([]int64, len(e.Coeffs)), Const: e.Const * k}
	for i, c := range e.Coeffs {
		out.Coeffs[i] = c * k
	}
	return out
}

// Add returns the sum of two affine expressions.
func (e Expr) Add(o Expr) Expr {
	n := len(e.Coeffs)
	if len(o.Coeffs) > n {
		n = len(o.Coeffs)
	}
	out := Expr{Coeffs: make([]int64, n), Const: e.Const + o.Const}
	for i := range out.Coeffs {
		if i < len(e.Coeffs) {
			out.Coeffs[i] += e.Coeffs[i]
		}
		if i < len(o.Coeffs) {
			out.Coeffs[i] += o.Coeffs[i]
		}
	}
	return out
}

// Eval evaluates the expression for the given iteration vector.
func (e Expr) Eval(iter []int64) int64 {
	v := e.Const
	for d, c := range e.Coeffs {
		if c != 0 {
			v += c * iter[d]
		}
	}
	return v
}

// IsConst reports whether the expression has no loop-variable terms.
func (e Expr) IsConst() bool {
	for _, c := range e.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// CoeffAt returns the coefficient of the loop variable at depth d.
func (e Expr) CoeffAt(d int) int64 {
	if d < len(e.Coeffs) {
		return e.Coeffs[d]
	}
	return 0
}

// String renders the expression using i0, i1, ... for loop variables.
func (e Expr) String() string {
	var b strings.Builder
	first := true
	for d, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString("+")
		}
		first = false
		if c == 1 {
			fmt.Fprintf(&b, "i%d", d)
		} else {
			fmt.Fprintf(&b, "%d*i%d", c, d)
		}
	}
	if e.Const != 0 || first {
		if !first {
			if e.Const >= 0 {
				b.WriteString("+")
			}
		}
		fmt.Fprintf(&b, "%d", e.Const)
	}
	return b.String()
}

// RefKind distinguishes read references from write references.
type RefKind uint8

// Reference kinds.
const (
	Read RefKind = iota
	Write
)

// String returns "R" for reads and "W" for writes.
func (k RefKind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Ref is a single array reference with one affine subscript expression
// per array dimension.
type Ref struct {
	Array *Array
	Index []Expr
	Kind  RefKind
}

// OffsetAt returns the byte offset within the array's file touched by
// this reference for the given iteration vector.
func (r *Ref) OffsetAt(iter []int64) int64 {
	idx := make([]int64, len(r.Index))
	for d, e := range r.Index {
		idx[d] = e.Eval(iter)
	}
	return r.Array.OffsetOf(idx)
}

// Stmt is one body statement: a set of array references executed once
// per innermost iteration, plus the compute-cycle cost of executing
// the statement once (exclusive of I/O time).
type Stmt struct {
	Refs []Ref
	Cost int64
}

// Arrays returns the set of distinct arrays referenced by the
// statement, in first-reference order.
func (s *Stmt) Arrays() []*Array {
	seen := make(map[*Array]bool, len(s.Refs))
	var out []*Array
	for i := range s.Refs {
		a := s.Refs[i].Array
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Loop describes one loop of a nest, iterating over the half-open
// interval [Lo, Hi) with positive Step.
type Loop struct {
	Name   string
	Lo, Hi int64
	Step   int64
}

// Trip returns the number of iterations the loop executes.
func (l Loop) Trip() int64 {
	if l.Hi <= l.Lo {
		return 0
	}
	return (l.Hi - l.Lo + l.Step - 1) / l.Step
}

// Nest is a perfectly nested affine loop nest whose body executes all
// statements once per innermost iteration.
type Nest struct {
	Label string
	Loops []Loop
	Stmts []*Stmt
}

// Depth returns the nesting depth.
func (n *Nest) Depth() int { return len(n.Loops) }

// Trips returns the total number of innermost iterations of the nest.
func (n *Nest) Trips() int64 {
	t := int64(1)
	for _, l := range n.Loops {
		t *= l.Trip()
	}
	return t
}

// IterCost returns the compute-cycle cost of one innermost iteration
// (the sum of the statement costs).
func (n *Nest) IterCost() int64 {
	var c int64
	for _, s := range n.Stmts {
		c += s.Cost
	}
	return c
}

// TotalCost returns the compute-cycle cost of executing the whole
// nest.
func (n *Nest) TotalCost() int64 { return n.Trips() * n.IterCost() }

// IndexOf converts a linearized iteration number (0-based, in
// lexicographic execution order) into the iteration vector of actual
// loop-variable values.
func (n *Nest) IndexOf(iter int64) []int64 {
	iv := make([]int64, len(n.Loops))
	for d := len(n.Loops) - 1; d >= 0; d-- {
		t := n.Loops[d].Trip()
		if t == 0 {
			continue
		}
		iv[d] = n.Loops[d].Lo + (iter%t)*n.Loops[d].Step
		iter /= t
	}
	return iv
}

// IterOf is the inverse of IndexOf: it linearizes an iteration vector
// of loop-variable values into the 0-based execution-order index.
func (n *Nest) IterOf(iv []int64) int64 {
	var iter int64
	for d := 0; d < len(n.Loops); d++ {
		t := n.Loops[d].Trip()
		iter = iter*t + (iv[d]-n.Loops[d].Lo)/n.Loops[d].Step
	}
	return iter
}

// Arrays returns the set of distinct arrays referenced anywhere in
// the nest, in first-reference order.
func (n *Nest) Arrays() []*Array {
	seen := make(map[*Array]bool)
	var out []*Array
	for _, s := range n.Stmts {
		for i := range s.Refs {
			a := s.Refs[i].Array
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Program is a sequence of loop nests over a set of disk-resident
// arrays.
type Program struct {
	Name   string
	Arrays []*Array
	Nests  []*Nest
}

// ArrayByName returns the array with the given name, or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// TotalBytes returns the sum of the array file sizes.
func (p *Program) TotalBytes() int64 {
	var n int64
	for _, a := range p.Arrays {
		n += a.SizeBytes()
	}
	return n
}

// TotalCost returns the compute-cycle cost of the whole program.
func (p *Program) TotalCost() int64 {
	var c int64
	for _, n := range p.Nests {
		c += n.TotalCost()
	}
	return c
}

// Validate checks the structural invariants of the program: unique
// array names, positive dimensions and element sizes, positive loop
// steps, subscript arity matching array rank, subscript coefficients
// confined to the enclosing nest's depth, and every referenced array
// registered in Arrays.
func (p *Program) Validate() error {
	names := make(map[string]bool, len(p.Arrays))
	registered := make(map[*Array]bool, len(p.Arrays))
	for _, a := range p.Arrays {
		if a.Name == "" {
			return fmt.Errorf("ir: program %q: array with empty name", p.Name)
		}
		if names[a.Name] {
			return fmt.Errorf("ir: program %q: duplicate array name %q", p.Name, a.Name)
		}
		names[a.Name] = true
		registered[a] = true
		if len(a.Dims) == 0 {
			return fmt.Errorf("ir: array %q has no dimensions", a.Name)
		}
		for _, d := range a.Dims {
			if d <= 0 {
				return fmt.Errorf("ir: array %q has non-positive dimension %d", a.Name, d)
			}
		}
		if a.ElemSize <= 0 {
			return fmt.Errorf("ir: array %q has non-positive element size", a.Name)
		}
		if a.Block != nil {
			if len(a.Block) != len(a.Dims) {
				return fmt.Errorf("ir: array %q block rank %d != rank %d", a.Name, len(a.Block), len(a.Dims))
			}
			for d, b := range a.Block {
				if b <= 0 || a.Dims[d]%b != 0 {
					return fmt.Errorf("ir: array %q block extent %d does not divide dim %d", a.Name, b, a.Dims[d])
				}
			}
		}
	}
	for ni, n := range p.Nests {
		if len(n.Loops) == 0 {
			return fmt.Errorf("ir: nest %d (%q) has no loops", ni, n.Label)
		}
		for li, l := range n.Loops {
			if l.Step <= 0 {
				return fmt.Errorf("ir: nest %q loop %d has non-positive step", n.Label, li)
			}
		}
		if len(n.Stmts) == 0 {
			return fmt.Errorf("ir: nest %q has no statements", n.Label)
		}
		for si, s := range n.Stmts {
			if s.Cost < 0 {
				return fmt.Errorf("ir: nest %q stmt %d has negative cost", n.Label, si)
			}
			for ri, r := range s.Refs {
				if r.Array == nil {
					return fmt.Errorf("ir: nest %q stmt %d ref %d has nil array", n.Label, si, ri)
				}
				if !registered[r.Array] {
					return fmt.Errorf("ir: nest %q references unregistered array %q", n.Label, r.Array.Name)
				}
				if len(r.Index) != len(r.Array.Dims) {
					return fmt.Errorf("ir: nest %q stmt %d: array %q has rank %d, subscript has %d exprs",
						n.Label, si, r.Array.Name, len(r.Array.Dims), len(r.Index))
				}
				for _, e := range r.Index {
					if len(e.Coeffs) > len(n.Loops) {
						return fmt.Errorf("ir: nest %q stmt %d: subscript uses loop depth %d, nest depth is %d",
							n.Label, si, len(e.Coeffs), len(n.Loops))
					}
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the program. Arrays are copied too, so
// transformations can mutate layouts without affecting the original.
func (p *Program) Clone() *Program {
	cp := &Program{Name: p.Name}
	amap := make(map[*Array]*Array, len(p.Arrays))
	for _, a := range p.Arrays {
		na := &Array{Name: a.Name, Dims: append([]int64(nil), a.Dims...), ElemSize: a.ElemSize, RowMajor: a.RowMajor}
		if a.Block != nil {
			na.Block = append([]int64(nil), a.Block...)
		}
		amap[a] = na
		cp.Arrays = append(cp.Arrays, na)
	}
	for _, n := range p.Nests {
		nn := &Nest{Label: n.Label, Loops: append([]Loop(nil), n.Loops...)}
		for _, s := range n.Stmts {
			ns := &Stmt{Cost: s.Cost}
			for _, r := range s.Refs {
				nr := Ref{Array: amap[r.Array], Kind: r.Kind}
				for _, e := range r.Index {
					nr.Index = append(nr.Index, Expr{Coeffs: append([]int64(nil), e.Coeffs...), Const: e.Const})
				}
				ns.Refs = append(ns.Refs, nr)
			}
			nn.Stmts = append(nn.Stmts, ns)
		}
		cp.Nests = append(cp.Nests, nn)
	}
	return cp
}
