package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrayElemsAndSize(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{3, 4, 5}, ElemSize: 8, RowMajor: true}
	if got := a.Elems(); got != 60 {
		t.Errorf("Elems() = %d, want 60", got)
	}
	if got := a.SizeBytes(); got != 480 {
		t.Errorf("SizeBytes() = %d, want 480", got)
	}
}

func TestOffsetOfRowMajor(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{3, 4}, ElemSize: 8, RowMajor: true}
	cases := []struct {
		idx  []int64
		want int64
	}{
		{[]int64{0, 0}, 0},
		{[]int64{0, 1}, 8},
		{[]int64{1, 0}, 32},
		{[]int64{2, 3}, 88},
	}
	for _, c := range cases {
		if got := a.OffsetOf(c.idx); got != c.want {
			t.Errorf("OffsetOf(%v) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestOffsetOfColMajor(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{3, 4}, ElemSize: 8, RowMajor: false}
	cases := []struct {
		idx  []int64
		want int64
	}{
		{[]int64{0, 0}, 0},
		{[]int64{1, 0}, 8},
		{[]int64{0, 1}, 24},
		{[]int64{2, 3}, 88},
	}
	for _, c := range cases {
		if got := a.OffsetOf(c.idx); got != c.want {
			t.Errorf("OffsetOf(%v) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestOffsetOfBijective(t *testing.T) {
	// Every index maps to a distinct in-range offset, for both orders.
	for _, rm := range []bool{true, false} {
		a := &Array{Name: "u", Dims: []int64{5, 7, 3}, ElemSize: 4, RowMajor: rm}
		seen := make(map[int64]bool)
		for i := int64(0); i < 5; i++ {
			for j := int64(0); j < 7; j++ {
				for k := int64(0); k < 3; k++ {
					off := a.OffsetOf([]int64{i, j, k})
					if off < 0 || off >= a.SizeBytes() {
						t.Fatalf("rowMajor=%v: offset %d out of range", rm, off)
					}
					if off%a.ElemSize != 0 {
						t.Fatalf("offset %d not element-aligned", off)
					}
					if seen[off] {
						t.Fatalf("rowMajor=%v: duplicate offset %d", rm, off)
					}
					seen[off] = true
				}
			}
		}
	}
}

func TestInnerStride(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{3, 4}, ElemSize: 8, RowMajor: true}
	if got := a.InnerStride(1); got != 8 {
		t.Errorf("row-major InnerStride(1) = %d, want 8", got)
	}
	if got := a.InnerStride(0); got != 32 {
		t.Errorf("row-major InnerStride(0) = %d, want 32", got)
	}
	a.RowMajor = false
	if got := a.InnerStride(0); got != 8 {
		t.Errorf("col-major InnerStride(0) = %d, want 8", got)
	}
	if got := a.InnerStride(1); got != 24 {
		t.Errorf("col-major InnerStride(1) = %d, want 24", got)
	}
}

func TestExprEval(t *testing.T) {
	e := Var(0).Times(2).Add(Var(1)).Plus(3) // 2*i0 + i1 + 3
	if got := e.Eval([]int64{5, 7}); got != 20 {
		t.Errorf("Eval = %d, want 20", got)
	}
	if e.IsConst() {
		t.Error("expr with variables reported const")
	}
	if !Cnst(4).IsConst() {
		t.Error("constant expr not reported const")
	}
	if got := e.CoeffAt(0); got != 2 {
		t.Errorf("CoeffAt(0) = %d, want 2", got)
	}
	if got := e.CoeffAt(5); got != 0 {
		t.Errorf("CoeffAt(5) = %d, want 0", got)
	}
}

func TestExprAlgebraProperties(t *testing.T) {
	// Property: (a.Add(b)).Eval(iv) == a.Eval(iv) + b.Eval(iv),
	// and scaling/shifting commute with evaluation.
	f := func(c0, c1, k, x, y, shift int8) bool {
		a := Var(0).Times(int64(c0)).Plus(int64(shift))
		b := Var(1).Times(int64(c1))
		iv := []int64{int64(x), int64(y)}
		sum := a.Add(b)
		if sum.Eval(iv) != a.Eval(iv)+b.Eval(iv) {
			return false
		}
		scaled := a.Times(int64(k))
		return scaled.Eval(iv) == a.Eval(iv)*int64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExprString(t *testing.T) {
	if got := Cnst(0).String(); got != "0" {
		t.Errorf("Cnst(0).String() = %q", got)
	}
	if got := Var(1).String(); got != "i1" {
		t.Errorf("Var(1).String() = %q", got)
	}
	e := Var(0).Times(3).Plus(-2)
	if got := e.String(); got != "3*i0-2" {
		t.Errorf("String() = %q", got)
	}
}

func TestLoopTrip(t *testing.T) {
	cases := []struct {
		l    Loop
		want int64
	}{
		{Loop{Lo: 0, Hi: 10, Step: 1}, 10},
		{Loop{Lo: 0, Hi: 10, Step: 3}, 4},
		{Loop{Lo: 2, Hi: 2, Step: 1}, 0},
		{Loop{Lo: 5, Hi: 2, Step: 1}, 0},
		{Loop{Lo: 1, Hi: 8, Step: 2}, 4},
	}
	for _, c := range cases {
		if got := c.l.Trip(); got != c.want {
			t.Errorf("Trip(%+v) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestNestIterRoundTrip(t *testing.T) {
	n := &Nest{
		Label: "t",
		Loops: []Loop{
			{Name: "i", Lo: 1, Hi: 7, Step: 2},
			{Name: "j", Lo: 0, Hi: 5, Step: 1},
		},
	}
	trips := n.Trips()
	if trips != 15 {
		t.Fatalf("Trips() = %d, want 15", trips)
	}
	for it := int64(0); it < trips; it++ {
		iv := n.IndexOf(it)
		if got := n.IterOf(iv); got != it {
			t.Errorf("IterOf(IndexOf(%d)) = %d", it, got)
		}
	}
	// Lexicographic order: iteration 0 is (1,0), iteration 1 is (1,1).
	if iv := n.IndexOf(0); iv[0] != 1 || iv[1] != 0 {
		t.Errorf("IndexOf(0) = %v", iv)
	}
	if iv := n.IndexOf(5); iv[0] != 3 || iv[1] != 0 {
		t.Errorf("IndexOf(5) = %v", iv)
	}
}

func TestNestIterRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := &Nest{Loops: []Loop{
			{Lo: int64(rng.Intn(5)), Hi: int64(5 + rng.Intn(10)), Step: int64(1 + rng.Intn(3))},
			{Lo: int64(rng.Intn(3)), Hi: int64(3 + rng.Intn(8)), Step: int64(1 + rng.Intn(2))},
			{Lo: 0, Hi: int64(1 + rng.Intn(6)), Step: 1},
		}}
		trips := n.Trips()
		for it := int64(0); it < trips; it++ {
			if got := n.IterOf(n.IndexOf(it)); got != it {
				t.Fatalf("nest %+v: round trip failed at %d -> %d", n.Loops, it, got)
			}
		}
	}
}

func TestNestCosts(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{100}, ElemSize: 8, RowMajor: true}
	n := &Nest{
		Loops: []Loop{{Lo: 0, Hi: 10, Step: 1}},
		Stmts: []*Stmt{
			{Cost: 5, Refs: []Ref{{Array: a, Index: []Expr{Var(0)}, Kind: Read}}},
			{Cost: 7, Refs: []Ref{{Array: a, Index: []Expr{Var(0)}, Kind: Write}}},
		},
	}
	if got := n.IterCost(); got != 12 {
		t.Errorf("IterCost() = %d, want 12", got)
	}
	if got := n.TotalCost(); got != 120 {
		t.Errorf("TotalCost() = %d, want 120", got)
	}
}

func TestStmtAndNestArrays(t *testing.T) {
	a := &Array{Name: "a", Dims: []int64{10}, ElemSize: 8}
	b := &Array{Name: "b", Dims: []int64{10}, ElemSize: 8}
	s := &Stmt{Refs: []Ref{
		{Array: a, Index: []Expr{Var(0)}},
		{Array: b, Index: []Expr{Var(0)}},
		{Array: a, Index: []Expr{Var(0).Plus(1)}},
	}}
	if got := s.Arrays(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Stmt.Arrays() = %v", got)
	}
	n := &Nest{Stmts: []*Stmt{s, {Refs: []Ref{{Array: b, Index: []Expr{Var(0)}}}}}}
	if got := n.Arrays(); len(got) != 2 {
		t.Errorf("Nest.Arrays() = %v", got)
	}
}

func TestRefOffsetAt(t *testing.T) {
	a := &Array{Name: "u", Dims: []int64{4, 8}, ElemSize: 8, RowMajor: true}
	r := Ref{Array: a, Index: []Expr{Var(0), Var(1).Plus(2)}}
	// iter (1,3) -> element (1,5) -> offset (1*8+5)*8 = 104.
	if got := r.OffsetAt([]int64{1, 3}); got != 104 {
		t.Errorf("OffsetAt = %d, want 104", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func() *Program {
		a := &Array{Name: "u", Dims: []int64{10}, ElemSize: 8, RowMajor: true}
		return &Program{
			Name:   "p",
			Arrays: []*Array{a},
			Nests: []*Nest{{
				Label: "n0",
				Loops: []Loop{{Name: "i", Lo: 0, Hi: 10, Step: 1}},
				Stmts: []*Stmt{{Cost: 1, Refs: []Ref{{Array: a, Index: []Expr{Var(0)}, Kind: Read}}}},
			}},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	p := mk()
	p.Arrays = append(p.Arrays, &Array{Name: "u", Dims: []int64{5}, ElemSize: 8})
	if err := p.Validate(); err == nil {
		t.Error("duplicate array name accepted")
	}

	p = mk()
	p.Nests[0].Loops[0].Step = 0
	if err := p.Validate(); err == nil {
		t.Error("zero step accepted")
	}

	p = mk()
	p.Nests[0].Stmts[0].Refs[0].Index = nil
	if err := p.Validate(); err == nil {
		t.Error("rank mismatch accepted")
	}

	p = mk()
	p.Nests[0].Stmts[0].Refs[0].Array = &Array{Name: "ghost", Dims: []int64{5}, ElemSize: 8}
	if err := p.Validate(); err == nil {
		t.Error("unregistered array accepted")
	}

	p = mk()
	p.Nests[0].Stmts[0].Refs[0].Index = []Expr{Var(3)}
	if err := p.Validate(); err == nil {
		t.Error("subscript deeper than nest accepted")
	}

	p = mk()
	p.Nests[0].Stmts = nil
	if err := p.Validate(); err == nil {
		t.Error("empty nest accepted")
	}

	p = mk()
	p.Arrays[0].Dims = []int64{0}
	if err := p.Validate(); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := NewBuilder("p")
	u := b.Array2D("u", 4, 4)
	v := b.Array2D("v", 4, 4)
	b.Nest("n0", L("i", 4), L("j", 4)).
		Stmt(10, R(u, Var(0), Var(1)), W(v, Var(0), Var(1)))
	p := b.MustBuild()

	cp := p.Clone()
	if cp.ArrayByName("u") == p.ArrayByName("u") {
		t.Fatal("clone shares array pointers")
	}
	// The clone's refs must point at the clone's arrays.
	if cp.Nests[0].Stmts[0].Refs[0].Array != cp.ArrayByName("u") {
		t.Fatal("clone refs not remapped to clone arrays")
	}
	cp.Arrays[0].RowMajor = false
	cp.Nests[0].Stmts[0].Cost = 99
	cp.Nests[0].Loops[0].Hi = 2
	if !p.Arrays[0].RowMajor || p.Nests[0].Stmts[0].Cost != 10 || p.Nests[0].Loops[0].Hi != 4 {
		t.Fatal("mutating clone affected original")
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestBuilderProducesValidProgram(t *testing.T) {
	b := NewBuilder("demo")
	u := b.Array2D("u", 16, 16)
	w := b.Array1D("w", 256)
	z := b.Array3D("z", 4, 4, 4)
	b.Nest("n0", L("i", 16), L("j", 16)).
		Stmt(100, R(u, Var(0), Var(1)), W(w, Var(0).Times(16).Add(Var(1))))
	b.Nest("n1", L("i", 4), L("j", 4), L("k", 4)).
		Stmt(50, R(z, Var(0), Var(1), Var(2)))
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(p.Arrays) != 3 || len(p.Nests) != 2 {
		t.Fatalf("unexpected shape: %d arrays, %d nests", len(p.Arrays), len(p.Nests))
	}
	if p.TotalBytes() != 16*16*8+256*8+4*4*4*8 {
		t.Errorf("TotalBytes = %d", p.TotalBytes())
	}
	if p.TotalCost() != 100*256+50*64 {
		t.Errorf("TotalCost = %d", p.TotalCost())
	}
	if got := z.SizeBytes(); got != 512 {
		t.Errorf("3D size = %d", got)
	}
}

func TestProgramTotals(t *testing.T) {
	p := &Program{}
	if p.TotalBytes() != 0 || p.TotalCost() != 0 {
		t.Error("empty program totals nonzero")
	}
	if p.ArrayByName("x") != nil {
		t.Error("ArrayByName on empty program")
	}
}

func TestRefKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("RefKind strings wrong")
	}
}

func TestLRangeAndL(t *testing.T) {
	l := LRange("i", 2, 10, 2)
	if l.Lo != 2 || l.Hi != 10 || l.Step != 2 || l.Trip() != 4 {
		t.Errorf("LRange = %+v", l)
	}
	l2 := L("j", 5)
	if l2.Lo != 0 || l2.Hi != 5 || l2.Step != 1 {
		t.Errorf("L = %+v", l2)
	}
}
