package ir

import "fmt"

// Builder provides a fluent API for constructing programs. It is the
// primary way the built-in workloads and the tests assemble IR.
type Builder struct {
	p   *Program
	err error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name}}
}

// Array2D declares a 2-D row-major float64 array (8-byte elements)
// and returns it.
func (b *Builder) Array2D(name string, d0, d1 int64) *Array {
	a := &Array{Name: name, Dims: []int64{d0, d1}, ElemSize: 8, RowMajor: true}
	b.p.Arrays = append(b.p.Arrays, a)
	return a
}

// Array1D declares a 1-D float64 array and returns it.
func (b *Builder) Array1D(name string, d0 int64) *Array {
	a := &Array{Name: name, Dims: []int64{d0}, ElemSize: 8, RowMajor: true}
	b.p.Arrays = append(b.p.Arrays, a)
	return a
}

// Array3D declares a 3-D row-major float64 array and returns it.
func (b *Builder) Array3D(name string, d0, d1, d2 int64) *Array {
	a := &Array{Name: name, Dims: []int64{d0, d1, d2}, ElemSize: 8, RowMajor: true}
	b.p.Arrays = append(b.p.Arrays, a)
	return a
}

// NestBuilder accumulates statements for one loop nest.
type NestBuilder struct {
	b *Builder
	n *Nest
}

// Nest starts a new loop nest with the given label and loops.
func (b *Builder) Nest(label string, loops ...Loop) *NestBuilder {
	n := &Nest{Label: label, Loops: loops}
	b.p.Nests = append(b.p.Nests, n)
	return &NestBuilder{b: b, n: n}
}

// L is shorthand for a loop over [0, hi) with step 1.
func L(name string, hi int64) Loop { return Loop{Name: name, Lo: 0, Hi: hi, Step: 1} }

// LRange is shorthand for a loop over [lo, hi) with the given step.
func LRange(name string, lo, hi, step int64) Loop {
	return Loop{Name: name, Lo: lo, Hi: hi, Step: step}
}

// Stmt appends a statement with the given compute cost and references.
func (nb *NestBuilder) Stmt(cost int64, refs ...Ref) *NestBuilder {
	nb.n.Stmts = append(nb.n.Stmts, &Stmt{Cost: cost, Refs: refs})
	return nb
}

// R constructs a read reference to the array with the given subscript
// expressions.
func R(a *Array, idx ...Expr) Ref { return Ref{Array: a, Index: idx, Kind: Read} }

// W constructs a write reference to the array with the given
// subscript expressions.
func W(a *Array, idx ...Expr) Ref { return Ref{Array: a, Index: idx, Kind: Write} }

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// BuildError wraps the validation failure MustBuild panics with, so
// recovery code can identify and unwrap it.
type BuildError struct {
	Program string
	Err     error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("ir: building program %q: %v", e.Program, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// MustBuild is Build but panics with a *BuildError on failure;
// intended for the built-in workloads whose construction is exercised
// by tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(&BuildError{Program: b.p.Name, Err: err})
	}
	return p
}
