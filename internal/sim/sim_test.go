package sim

import (
	"math"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/trace"
)

func req(gap float64, d int, bytes int64) trace.Event {
	return trace.Event{Kind: trace.EvRequest, GapMS: gap, Req: trace.Request{Disk: d, Bytes: bytes, Kind: trace.Read}}
}

func op(gap float64, d int, k trace.OpKind, rpm int) trace.Event {
	return trace.Event{Kind: trace.EvPowerOp, GapMS: gap, Op: trace.PowerOp{Disk: d, Kind: k, RPM: rpm}}
}

func mkTrace(nd int, evs ...trace.Event) *trace.Trace {
	// Fill nominal arrivals to keep Validate happy.
	t := &trace.Trace{Program: "t", NumDisks: nd, Events: evs}
	arr := 0.0
	for i := range t.Events {
		if t.Events[i].Kind == trace.EvRequest {
			arr += t.Events[i].GapMS
			t.Events[i].Req.ArrivalMS = arr
		}
	}
	return t
}

func TestBaseEnergyAnalytic(t *testing.T) {
	p := disk.DefaultParams()
	// One request of 64KB to disk 0 after 10ms of compute, 2 disks.
	tr := mkTrace(2, req(10, 0, 65536))
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	wantExec := 10 + svc
	if math.Abs(res.ExecMS-wantExec) > 1e-9 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	// Disk 0: idle 10ms + active svc. Disk 1: idle the whole run.
	want := p.IdleW*10/1e3 + p.ActiveW*svc/1e3 + p.IdleW*wantExec/1e3
	if math.Abs(res.EnergyJ-want) > 1e-9 {
		t.Errorf("EnergyJ = %g, want %g", res.EnergyJ, want)
	}
	if res.Requests != 1 || res.TotalWaitMS != 0 {
		t.Errorf("requests=%d wait=%g", res.Requests, res.TotalWaitMS)
	}
}

func TestTimeAccountingIdentity(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(3,
		req(5, 0, 65536), req(3, 1, 65536), req(7, 2, 32768),
		req(2, 0, 65536), req(4, 1, 16384))
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	for d, st := range res.Disks {
		total := st.ActiveMS + st.IdleMS + st.StandbyMS + st.TransitionMS
		if math.Abs(total-res.ExecMS) > 1e-6 {
			t.Errorf("disk %d time sum %g != exec %g", d, total, res.ExecMS)
		}
	}
}

func TestOnDemandSpinUpPaysFullDelay(t *testing.T) {
	p := disk.DefaultParams()
	// Spin disk 0 down, then access it long after the spin-down
	// completed: the request must wait the full spin-up time.
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		req(20000, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	wantExec := DefaultPowerCallOverheadMS*0 + 20000 + p.SpinUpMS + svc
	// Config used zero overhead default? We passed no overhead: 0.
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	st := res.Disks[0]
	if st.SpinDowns != 1 || st.SpinUps != 1 {
		t.Errorf("spin downs/ups = %d/%d", st.SpinDowns, st.SpinUps)
	}
	if math.Abs(st.WaitMS-p.SpinUpMS) > 1e-9 {
		t.Errorf("WaitMS = %g, want %g", st.WaitMS, p.SpinUpMS)
	}
	// Energy: spin-down J + standby + spin-up J + active.
	standbyMS := 20000 - p.SpinDownMS
	wantE := p.SpinDownJ + p.StandbyW*standbyMS/1e3 + p.SpinUpJ + p.ActiveW*svc/1e3
	if math.Abs(res.EnergyJ-wantE) > 1e-6 {
		t.Errorf("EnergyJ = %g, want %g", res.EnergyJ, wantE)
	}
}

func TestRequestDuringSpinDownWaitsForBoth(t *testing.T) {
	p := disk.DefaultParams()
	// Request arrives 500ms after spin-down starts (down takes 1500ms):
	// it must wait for down completion + full spin-up.
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		req(500, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	wantExec := 500 + (p.SpinDownMS - 500) + p.SpinUpMS + svc
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
}

func TestSetRPMServiceSlowdown(t *testing.T) {
	p := disk.DefaultParams()
	// Drop to 3000 RPM; request arrives after the shift completes.
	tr := mkTrace(1,
		op(0, 0, trace.OpSetRPM, 3000),
		req(1000, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svcSlow := p.ServiceTimeMS(3000, 65536)
	wantExec := 1000 + svcSlow
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	if res.Disks[0].RPMShifts != 1 {
		t.Errorf("shifts = %d", res.Disks[0].RPMShifts)
	}
	// Energy: shift + low idle + active at low speed.
	shiftMS := p.TransitionTimeMS(p.MaxRPM, 3000)
	wantE := p.TransitionEnergyJ(p.MaxRPM, 3000) +
		p.IdlePowerAt(3000)*(1000-shiftMS)/1e3 +
		p.ActivePowerAt(3000)*svcSlow/1e3
	if math.Abs(res.EnergyJ-wantE) > 1e-6 {
		t.Errorf("EnergyJ = %g, want %g", res.EnergyJ, wantE)
	}
}

func TestRequestDuringShiftWaits(t *testing.T) {
	p := disk.DefaultParams()
	shiftMS := p.TransitionTimeMS(p.MaxRPM, 3000) // 30ms
	tr := mkTrace(1,
		op(0, 0, trace.OpSetRPM, 3000),
		req(shiftMS/2, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svcSlow := p.ServiceTimeMS(3000, 65536)
	wantExec := shiftMS + svcSlow
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	if math.Abs(res.Disks[0].WaitMS-shiftMS/2) > 1e-9 {
		t.Errorf("WaitMS = %g", res.Disks[0].WaitMS)
	}
}

func TestPreActivationHidesSpinUp(t *testing.T) {
	p := disk.DefaultParams()
	// Spin down at t=0; spin up exactly SpinUpMS before the access:
	// no wait at all.
	idle := p.TPMBreakEvenMS() * 2
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		op(idle-p.SpinUpMS, 0, trace.OpSpinUp, 0),
		req(p.SpinUpMS, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWaitMS > 1e-9 {
		t.Errorf("pre-activated access waited %g ms", res.TotalWaitMS)
	}
	// And it must save energy versus idling for the same duration.
	base := mkTrace(1, req(idle, 0, 65536))
	bres, err := Run(base, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ >= bres.EnergyJ {
		t.Errorf("TPM dip saved nothing: %g >= %g", res.EnergyJ, bres.EnergyJ)
	}
}

func TestRetroactiveOracleDipNoPenalty(t *testing.T) {
	p := disk.DefaultParams()
	// An oracle-style policy that, at each request issue, dips the
	// just-ended idle period to the optimal RPM level retroactively.
	pol := &testOraclePolicy{p: p}
	tr := mkTrace(1, req(73, 0, 65536), req(73, 0, 65536), req(73, 0, 65536))
	res, err := Run(tr, Config{Disk: p, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Run(tr, Config{Disk: p})
	if math.Abs(res.ExecMS-base.ExecMS) > 1e-9 {
		t.Errorf("oracle changed exec time: %g vs %g", res.ExecMS, base.ExecMS)
	}
	if res.TotalWaitMS > 1e-9 {
		t.Errorf("oracle caused waiting: %g", res.TotalWaitMS)
	}
	if res.EnergyJ >= base.EnergyJ {
		t.Errorf("oracle saved nothing: %g >= %g", res.EnergyJ, base.EnergyJ)
	}
	if res.Scheme != "test-oracle" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}

type testOraclePolicy struct{ p disk.Params }

func (*testOraclePolicy) Name() string { return "test-oracle" }
func (tp *testOraclePolicy) BeforeService(m *Machine, d int, t float64) {
	start := m.IdleFrom(d)
	idle := t - start
	if rpm, _ := tp.p.BestRPMForIdle(idle); rpm != tp.p.MaxRPM {
		m.SetRPMAt(d, start, rpm)
		m.SetRPMAt(d, t-tp.p.TransitionTimeMS(rpm, tp.p.MaxRPM), tp.p.MaxRPM)
	}
}
func (*testOraclePolicy) AfterService(*Machine, int, float64, float64) {}
func (*testOraclePolicy) Finish(*Machine, float64)                     {}

func TestIdlePeriodsRecorded(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(2, req(10, 0, 65536), req(5, 1, 65536), req(5, 0, 65536))
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	// Disk 0: [0,10), then a gap of 5+svc+5 after its first
	// completion; its last request ends exactly at program end, so
	// its trailing idle record has zero length.
	d0 := res.Idles[0]
	if len(d0) != 3 {
		t.Fatalf("disk0 idles = %v", d0)
	}
	if d0[2].LenMS != 0 {
		t.Errorf("trailing idle = %g, want 0", d0[2].LenMS)
	}
	if math.Abs(d0[0].LenMS-10) > 1e-9 {
		t.Errorf("first idle = %g", d0[0].LenMS)
	}
	if math.Abs(d0[1].LenMS-(5+svc+5)) > 1e-9 {
		t.Errorf("second idle = %g", d0[1].LenMS)
	}
	// Disk 1: one leading idle, one trailing of length 5+svc.
	d1 := res.Idles[1]
	if len(d1) != 2 {
		t.Fatalf("disk1 idles = %v", d1)
	}
	if math.Abs(d1[1].LenMS-(5+svc)) > 1e-9 {
		t.Errorf("disk1 trailing idle = %g", d1[1].LenMS)
	}
}

func TestIgnorePowerOps(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1,
		op(0, 0, trace.OpSetRPM, 3000),
		req(1000, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p, IgnorePowerOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disks[0].RPMShifts != 0 || res.PowerOps != 0 {
		t.Error("ops not ignored")
	}
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	if math.Abs(res.ExecMS-(1000+svc)) > 1e-9 {
		t.Errorf("ExecMS = %g", res.ExecMS)
	}
}

func TestPowerCallOverheadAdvancesClock(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1, op(0, 0, trace.OpSetRPM, 13800), req(1000, 0, 65536))
	res, err := Run(tr, Config{Disk: p, PowerCallOverheadMS: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.ServiceTimeMS(13800, 65536)
	want := 0.5 + 1000 + svc
	if math.Abs(res.ExecMS-want) > 1e-9 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, want)
	}
	if res.PowerOps != 1 {
		t.Errorf("PowerOps = %d", res.PowerOps)
	}
}

func TestRedundantOpsAreNoOps(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinUp, 0),     // already spinning
		op(1, 0, trace.OpSetRPM, 15000), // already at max
		op(1, 0, trace.OpSpinDown, 0),   // begins down
		op(1, 0, trace.OpSpinDown, 0),   // already heading down
		req(30000, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Disks[0]
	if st.SpinDowns != 1 || st.SpinUps != 1 || st.RPMShifts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetRPMOnStandbyIsNoOp(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		op(5000, 0, trace.OpSetRPM, 3000),
		req(25000, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disks[0].RPMShifts != 0 {
		t.Error("set_rpm on standby disk shifted")
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1, req(1, 0, 512))
	bad := p
	bad.RPMStep = 0
	if _, err := Run(tr, Config{Disk: bad}); err == nil {
		t.Error("bad disk params accepted")
	}
	if _, err := Run(tr, Config{Disk: p, PowerCallOverheadMS: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
	badTr := mkTrace(1, req(1, 5, 512))
	if _, err := Run(badTr, Config{Disk: p}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestEnergyNonNegativeAndAdditive(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(4,
		req(10, 0, 65536), req(10, 1, 65536), req(10, 2, 65536),
		req(10, 3, 65536), req(10, 0, 65536))
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range res.Disks {
		if st.EnergyJ < 0 {
			t.Fatal("negative disk energy")
		}
		sum += st.EnergyJ
	}
	if math.Abs(sum-res.EnergyJ) > 1e-9 {
		t.Errorf("per-disk sum %g != total %g", sum, res.EnergyJ)
	}
}

func TestMachineAccessors(t *testing.T) {
	p := disk.DefaultParams()
	m := NewMachine(2, p)
	if m.NumDisks() != 2 {
		t.Error("NumDisks")
	}
	if m.CurRPM(0) != p.MaxRPM {
		t.Error("initial RPM")
	}
	if m.StatusOf(1) != StSpinning {
		t.Error("initial status")
	}
	if m.IdleFrom(0) != 0 || m.AccountedTo(0) != 0 {
		t.Error("initial times")
	}
	if m.Params().MaxRPM != p.MaxRPM {
		t.Error("Params")
	}
	for _, s := range []Status{StSpinning, StStandby, StDown, StUp, StShift} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestDistanceAwareSeek(t *testing.T) {
	p := disk.DefaultParams()
	// Two requests: sequential (head already there) vs far away.
	seq := mkTrace(1, req(10, 0, 65536), req(10, 0, 65536))
	seq.Events[0].Req.Block = 0
	seq.Events[1].Req.Block = 128 // right after the first request's 64KB
	far := mkTrace(1, req(10, 0, 65536), req(10, 0, 65536))
	far.Events[0].Req.Block = 0
	far.Events[1].Req.Block = p.CapacityBlocks() - 1000

	rseq, err := Run(seq, Config{Disk: p, DistanceAwareSeek: true})
	if err != nil {
		t.Fatal(err)
	}
	rfar, err := Run(far, Config{Disk: p, DistanceAwareSeek: true})
	if err != nil {
		t.Fatal(err)
	}
	if rseq.ExecMS >= rfar.ExecMS {
		t.Errorf("sequential %g not faster than far %g", rseq.ExecMS, rfar.ExecMS)
	}
	// The far request pays nearly the full-stroke seek; sequential
	// pays none.
	diff := rfar.ExecMS - rseq.ExecMS
	if diff < p.SeekMaxMS*0.8 || diff > p.SeekMaxMS*1.2 {
		t.Errorf("seek difference %g, want near full stroke %g", diff, p.SeekMaxMS)
	}
	// Without the flag both cost the same (average seek).
	a, _ := Run(seq, Config{Disk: p})
	b, _ := Run(far, Config{Disk: p})
	if math.Abs(a.ExecMS-b.ExecMS) > 1e-9 {
		t.Error("average-seek model depended on distance")
	}
}

func TestSeekCurveCalibration(t *testing.T) {
	// The distance model's random-access average stays near the
	// datasheet average seek time.
	p := disk.DefaultParams()
	maxB := p.CapacityBlocks()
	var sum float64
	const n = 10000
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		a := int64(seed % uint64(maxB))
		seed = seed*6364136223846793005 + 1442695040888963407
		b := int64(seed % uint64(maxB))
		d := a - b
		if d < 0 {
			d = -d
		}
		sum += p.SeekTimeMS(d, maxB)
	}
	avg := sum / n
	if math.Abs(avg-p.AvgSeekMS) > 0.5 {
		t.Errorf("random-access mean seek %.2fms, datasheet %.2fms", avg, p.AvgSeekMS)
	}
}

func TestTimelineRecording(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(2,
		op(0, 0, trace.OpSetRPM, 9000),
		req(100, 0, 65536),
		req(50, 1, 65536),
	)
	res, err := Run(tr, Config{Disk: p, RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timelines) != 2 {
		t.Fatalf("timelines = %d", len(res.Timelines))
	}
	for d, segs := range res.Timelines {
		if len(segs) == 0 {
			t.Fatalf("disk %d has empty timeline", d)
		}
		// Segments are contiguous from 0 and energy re-integrates to
		// the reported disk energy.
		var prevEnd float64
		var energy float64
		for i, s := range segs {
			if s.StartMS != prevEnd {
				t.Fatalf("disk %d segment %d starts at %g, previous ended %g", d, i, s.StartMS, prevEnd)
			}
			if s.EndMS <= s.StartMS {
				t.Fatalf("disk %d segment %d empty", d, i)
			}
			energy += s.PowerW * (s.EndMS - s.StartMS) / 1e3
			prevEnd = s.EndMS
		}
		if math.Abs(prevEnd-res.ExecMS) > 1e-6 {
			t.Errorf("disk %d timeline ends at %g, exec %g", d, prevEnd, res.ExecMS)
		}
		if math.Abs(energy-res.Disks[d].EnergyJ) > 1e-9 {
			t.Errorf("disk %d timeline energy %g != stats %g", d, energy, res.Disks[d].EnergyJ)
		}
	}
	// Disk 0's timeline must contain the shift and an active segment.
	var sawShift, sawActive bool
	for _, s := range res.Timelines[0] {
		if s.Stat == StShift {
			sawShift = true
		}
		if s.Active {
			sawActive = true
		}
	}
	if !sawShift || !sawActive {
		t.Errorf("disk 0 timeline missing shift/active: %+v", res.Timelines[0])
	}
	// Without the flag, no timelines.
	res2, _ := Run(tr, Config{Disk: p})
	if res2.Timelines != nil {
		t.Error("timelines recorded without flag")
	}
}

func TestEnergyBreakdownSums(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(2,
		op(0, 0, trace.OpSetRPM, 3000),
		req(200, 0, 65536),
		op(0, 1, trace.OpSpinDown, 0),
		req(30000, 1, 65536),
		req(10, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	for d, st := range res.Disks {
		sum := st.ActiveEnergyJ + st.IdleEnergyJ + st.StandbyEnergyJ + st.TransitionEnergyJ
		if math.Abs(sum-st.EnergyJ) > 1e-9 {
			t.Errorf("disk %d: breakdown %g != total %g", d, sum, st.EnergyJ)
		}
	}
	// Disk 1 spun down: standby energy present; disk 0 shifted.
	if res.Disks[1].StandbyEnergyJ == 0 {
		t.Error("no standby energy on spun-down disk")
	}
	if res.Disks[0].TransitionEnergyJ == 0 {
		t.Error("no transition energy on shifted disk")
	}
}

func TestRPMResidency(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1,
		op(0, 0, trace.OpSetRPM, 3000),
		req(500, 0, 65536),
	)
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	resid := res.Disks[0].RPMResidencyMS
	if resid == nil {
		t.Fatal("no residency recorded")
	}
	// Residency covers the spinning (non-transition) time only.
	var total float64
	for rpm, ms := range resid {
		if p.LevelIndex(rpm) < 0 {
			t.Errorf("residency at non-level %d", rpm)
		}
		total += ms
	}
	want := res.Disks[0].IdleMS + res.Disks[0].ActiveMS
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("residency total %g != idle+active %g", total, want)
	}
	// Most of the 500ms gap was spent at 3000 RPM.
	if resid[3000] < 400 {
		t.Errorf("3000 RPM residency = %g", resid[3000])
	}
}
