package sim

import (
	"math"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/trace"
)

func arrivalTrace(nd int, arrivals []float64, disks []int) *trace.Trace {
	tr := &trace.Trace{Program: "ol", NumDisks: nd}
	prev := 0.0
	for i, at := range arrivals {
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: at - prev,
			Req:   trace.Request{ArrivalMS: at, Disk: disks[i], Bytes: 65536, Kind: trace.Read},
		})
		prev = at
	}
	return tr
}

func TestOpenLoopNoContention(t *testing.T) {
	p := disk.DefaultParams()
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	// Requests far apart: open loop equals per-request service.
	tr := arrivalTrace(2, []float64{0, 100, 200}, []int{0, 1, 0})
	res, err := RunOpenLoop(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExecMS-(200+svc)) > 1e-9 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, 200+svc)
	}
	if res.TotalWaitMS != 0 {
		t.Errorf("wait = %g", res.TotalWaitMS)
	}
	if res.Requests != 3 {
		t.Errorf("requests = %d", res.Requests)
	}
}

func TestOpenLoopQueueing(t *testing.T) {
	p := disk.DefaultParams()
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	// Three simultaneous arrivals on one disk: FIFO.
	tr := arrivalTrace(1, []float64{0, 0, 0}, []int{0, 0, 0})
	res, err := RunOpenLoop(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExecMS-3*svc) > 1e-9 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, 3*svc)
	}
	// Queueing: second waits svc, third waits 2*svc.
	if math.Abs(res.TotalWaitMS-3*svc) > 1e-9 {
		t.Errorf("wait = %g, want %g", res.TotalWaitMS, 3*svc)
	}
}

func TestOpenLoopBurstAbsorption(t *testing.T) {
	// The defining open-loop property: a power-management delay does
	// NOT stretch later arrivals. Compare closed vs open on the same
	// trace with an oracle policy (no delays: both agree) and with a
	// deliberately slow reactive policy.
	p := disk.DefaultParams()
	tr := arrivalTrace(2, []float64{0, 80, 160, 240, 320}, []int{0, 1, 0, 1, 0})
	closed, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	open, err := RunOpenLoop(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	// Closed-loop execution adds each request's service to the
	// application timeline; open-loop replay overlaps service with
	// the inter-arrival gaps, so it can only finish earlier.
	if open.ExecMS > closed.ExecMS+1e-9 {
		t.Errorf("open %g slower than closed %g without PM", open.ExecMS, closed.ExecMS)
	}
	// Specifically: open completes at the last arrival plus one
	// service; closed accumulates all five services.
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	if math.Abs(open.ExecMS-(320+svc)) > 1e-9 {
		t.Errorf("open ExecMS = %g", open.ExecMS)
	}
	if math.Abs(closed.ExecMS-(320+5*svc)) > 1e-9 {
		t.Errorf("closed ExecMS = %g", closed.ExecMS)
	}
}

func TestOpenLoopOraclePolicy(t *testing.T) {
	p := disk.DefaultParams()
	tr := arrivalTrace(2, []float64{0, 80, 160, 240, 320, 400}, []int{0, 1, 0, 1, 0, 1})
	base, err := RunOpenLoop(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	pol := &testOraclePolicy{p: p}
	res, err := RunOpenLoop(tr, Config{Disk: p, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ >= base.EnergyJ {
		t.Errorf("oracle saved nothing in open loop: %g >= %g", res.EnergyJ, base.EnergyJ)
	}
	if math.Abs(res.ExecMS-base.ExecMS) > 1e-6 {
		t.Errorf("oracle changed open-loop completion: %g vs %g", res.ExecMS, base.ExecMS)
	}
	if res.Scheme != "test-oracle/open" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}

func TestOpenLoopInvalid(t *testing.T) {
	p := disk.DefaultParams()
	bad := p
	bad.RPMStep = 0
	tr := arrivalTrace(1, []float64{0}, []int{0})
	if _, err := RunOpenLoop(tr, Config{Disk: bad}); err == nil {
		t.Error("bad params accepted")
	}
	badTr := arrivalTrace(1, []float64{0}, []int{5})
	if _, err := RunOpenLoop(badTr, Config{Disk: p}); err == nil {
		t.Error("bad trace accepted")
	}
}
