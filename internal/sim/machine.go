// Package sim implements the trace-driven disk power simulator used
// for all of the paper's experiments. It executes a program-order
// event trace in a closed loop (request n+1 is issued after request n
// completes plus the compute gap), maintains a per-disk power state
// machine, and integrates energy over piecewise-constant power
// segments.
//
// Power-management policies act through the Machine's per-disk
// operations. Energy accounting is lazy: a disk's timeline is only
// committed up to its accounting cursor, so a policy may apply
// actions retroactively anywhere inside the idle period that is just
// ending. This is what makes the paper's oracle schemes (ITPM,
// IDRPM) realizable in a single simulation pass.
package sim

import (
	"math"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
)

// Status enumerates the per-disk power states.
type Status uint8

// Disk power states.
const (
	StSpinning Status = iota // platters at d.rpm; idle or servicing
	StStandby                // spun down
	StDown                   // spinning down (idle -> standby)
	StUp                     // spinning up (standby -> full speed)
	StShift                  // RPM modulation in progress
)

// String returns a short state name.
func (s Status) String() string {
	switch s {
	case StSpinning:
		return "spinning"
	case StStandby:
		return "standby"
	case StDown:
		return "spindown"
	case StUp:
		return "spinup"
	default:
		return "rpmshift"
	}
}

// IdlePeriod records one inter-request idle period on a disk.
type IdlePeriod struct {
	StartMS float64
	LenMS   float64
}

// DiskStats aggregates one disk's activity over a run.
type DiskStats struct {
	EnergyJ      float64
	ActiveMS     float64
	IdleMS       float64 // spinning, not servicing
	StandbyMS    float64
	TransitionMS float64 // spin up/down + RPM shifts
	// Per-mode energy breakdown (sums to EnergyJ).
	ActiveEnergyJ     float64
	IdleEnergyJ       float64
	StandbyEnergyJ    float64
	TransitionEnergyJ float64
	Requests          int
	SpinDowns         int
	SpinUps           int
	RPMShifts         int
	// WaitMS is the total time requests waited for the disk to become
	// ready (spin-up or shift completion) — the performance penalty.
	WaitMS float64
	// Injected-fault accounting (all zero unless a fault plan is
	// attached; see AttachFaults).
	SpinUpFailures int // spin-up attempts that failed
	SpinUpRetries  int // backoff retries taken after failures
	SpinUpTimeouts int // spin-up calls abandoned at the timeout cap
	Fallbacks      int // requests served on demand after a given-up pre-activation
	RemapHits      int // requests that hit a remapped bad sector
	DegradedHits   int // requests serviced inside a degradation window
	// DegradedExtraMS is the extra transfer time injected by
	// degradation windows (already included in ActiveMS).
	DegradedExtraMS float64
	// RPMResidencyMS maps RPM level -> total spinning time at that
	// level (idle plus servicing).
	RPMResidencyMS map[int]float64
}

// addResidency accumulates spinning time at an RPM level. The hot
// path uses the dense per-level slice (one backing array for the
// whole machine, allocated once); the map in DiskStats is only
// materialized at Finish. The overflow map handles RPMs outside the
// disk's level grid, which no current caller produces.
func (s *dstate) addResidency(p *disk.Params, rpm int, ms float64) {
	if idx := p.LevelIndex(rpm); idx >= 0 {
		s.resid[idx] += ms
		return
	}
	if s.residOverflow == nil {
		s.residOverflow = make(map[int]float64)
	}
	s.residOverflow[rpm] += ms
}

// Segment is one piece of a disk's recorded timeline: a maximal span
// during which the disk stayed in one state at one power draw.
type Segment struct {
	StartMS, EndMS float64
	Stat           Status
	// RPM is the spindle speed during the segment (the target level
	// during a shift; 0 in standby).
	RPM int
	// PowerW is the constant power draw of the segment.
	PowerW float64
	// Active marks a request-service segment.
	Active bool
}

type dstate struct {
	accT        float64 // energy accounted up to here
	status      Status
	rpm         int     // speed when spinning (target during StShift)
	statusUntil float64 // end of transitional status
	transPowerW float64 // power during current transitional status
	idleFrom    float64 // completion time of the last request
	stats       DiskStats
	idles       []IdlePeriod
	timeline    []Segment
	// resid is the dense per-RPM-level spinning-time accumulator
	// (index = disk.Params.LevelIndex); residOverflow catches
	// non-level RPMs.
	resid         []float64
	residOverflow map[int]float64
	// Fault-injection state (untouched when no plan is attached).
	// upAttempts indexes this disk's spin-up attempts into the fault
	// plan's decision stream; upAborted marks an in-progress StUp that
	// resolves back to standby (the cascade gave up); upGaveUp flags
	// that the next request must fall back to on-demand service.
	upAttempts int
	upAborted  bool
	upGaveUp   bool
}

// record appends a timeline segment, merging with the previous one
// when the state continues unchanged.
func (s *dstate) record(enabled bool, start, end float64, stat Status, rpm int, powerW float64, active bool) {
	if !enabled || end <= start {
		return
	}
	if n := len(s.timeline); n > 0 {
		last := &s.timeline[n-1]
		if last.Stat == stat && last.RPM == rpm && last.PowerW == powerW &&
			last.Active == active && last.EndMS == start {
			last.EndMS = end
			return
		}
	}
	s.timeline = append(s.timeline, Segment{StartMS: start, EndMS: end, Stat: stat, RPM: rpm, PowerW: powerW, Active: active})
}

// Machine is the multi-disk power state machine.
type Machine struct {
	p disk.Params
	// tbl serves the per-level power and timing queries of the hot
	// path from precomputed arrays; every value is bitwise identical
	// to the Params method it caches.
	tbl   *disk.Table
	disks []dstate
	// Distance-aware seek state (disabled by default).
	distSeek  bool
	maxBlocks int64
	headPos   []int64
	// timeline recording (disabled by default).
	recTimeline bool
	// obs receives metric events when non-nil; the nil case costs one
	// branch per emit point (see AttachCollector).
	obs *obs.Collector
	// faults is the injected-fault schedule; nil (the default) keeps
	// every fault path disabled and the machine's arithmetic
	// bit-identical to a fault-free build.
	faults *faults.Plan
	// ev is the decision-provenance event log (see AttachEvents in
	// events.go); nil keeps every event path disabled. The ev* fields
	// label emitted events and carry the current trigger context.
	ev        *events.Log
	evProg    string
	evPolicy  string
	evPolTrig string
	evTrig    string
	evPred    float64
	evBE      float64
	evd       []evDisk
	// batch is the batched executor's per-disk constant cache,
	// allocated on first use (see batchScratchFor). Cached entries
	// depend only on the disk model, so they survive Reset.
	batch batchScratch
}

// obsState maps a power state (plus the active flag) onto the
// collector's residency labels.
func obsState(st Status, active bool) obs.DiskState {
	switch {
	case active:
		return obs.StateService
	case st == StStandby:
		return obs.StateStandby
	case st == StDown:
		return obs.StateSpinDown
	case st == StUp:
		return obs.StateSpinUp
	case st == StShift:
		return obs.StateRPMShift
	default:
		return obs.StateIdle
	}
}

// NewMachine returns a machine of n disks, all spinning at full speed
// with their timelines starting at time zero.
func NewMachine(n int, p disk.Params) *Machine {
	m := &Machine{p: p, tbl: disk.TableFor(p), disks: make([]dstate, n)}
	levels := p.NumLevels()
	residAll := make([]float64, n*levels)
	for i := range m.disks {
		m.disks[i].status = StSpinning
		m.disks[i].rpm = p.MaxRPM
		m.disks[i].resid = residAll[i*levels : (i+1)*levels : (i+1)*levels]
	}
	return m
}

// ReserveIdles preallocates each disk's idle-period list for the
// given per-disk request count (one idle period per request plus the
// trailing one), eliminating append growth on the simulation hot
// path. A single backing array serves all disks.
func (m *Machine) ReserveIdles(perDisk []int) {
	total := 0
	for d := range m.disks {
		if d < len(perDisk) {
			total += perDisk[d] + 1
		}
	}
	buf := make([]IdlePeriod, total)
	off := 0
	for d := range m.disks {
		if d >= len(perDisk) {
			break
		}
		c := perDisk[d] + 1
		m.disks[d].idles = buf[off : off : off+c]
		off += c
	}
}

// Reset returns the machine to its initial state (all disks spinning
// at full speed at time zero) while keeping every per-disk allocation
// — idle lists, residency accumulators, timelines — for reuse, so a
// simulation loop over many traces of the same shape allocates only
// on its first iteration.
func (m *Machine) Reset() {
	for d := range m.disks {
		s := &m.disks[d]
		idles, timeline, resid := s.idles[:0], s.timeline[:0], s.resid
		*s = dstate{status: StSpinning, rpm: m.p.MaxRPM, idles: idles, timeline: timeline, resid: resid}
		for i := range resid {
			resid[i] = 0
		}
	}
	for d := range m.evd {
		m.evd[d].pending = m.evd[d].pending[:0]
		m.evd[d].baseJ = 0
	}
	for i := range m.headPos {
		m.headPos[i] = 0
	}
}

// EnableDistanceSeek switches the machine from average-seek to
// distance-dependent seek times: each disk tracks its head position
// and ServiceBlock charges the square-root seek curve for the
// distance travelled.
func (m *Machine) EnableDistanceSeek(maxBlocks int64) {
	m.distSeek = true
	m.maxBlocks = maxBlocks
	m.headPos = make([]int64, len(m.disks))
}

// NumDisks returns the number of disks.
func (m *Machine) NumDisks() int { return len(m.disks) }

// Params returns the disk parameters.
func (m *Machine) Params() disk.Params { return m.p }

// CurRPM returns disk d's current (or shift-target) speed.
func (m *Machine) CurRPM(d int) int { return m.disks[d].rpm }

// StatusOf returns disk d's current status.
func (m *Machine) StatusOf(d int) Status { return m.disks[d].status }

// IdleFrom returns the completion time of disk d's last request
// (zero if the disk has not been accessed).
func (m *Machine) IdleFrom(d int) float64 { return m.disks[d].idleFrom }

// AccountedTo returns the time up to which disk d's energy has been
// committed; policy actions must not be scheduled before it.
func (m *Machine) AccountedTo(d int) float64 { return m.disks[d].accT }

// EnableTimeline turns on per-disk timeline recording; segments are
// returned by Timelines after Finish.
func (m *Machine) EnableTimeline() { m.recTimeline = true }

// AttachCollector streams metric events (residency, request
// latencies, power ops, spin-up mispredictions) into c as the
// machine runs. A nil c detaches. The caller should size c with
// EnsureDisks first so the per-event paths never allocate.
func (m *Machine) AttachCollector(c *obs.Collector) { m.obs = c }

// AttachFaults threads a fault plan through the machine: spin-up
// attempts may fail and retry per the plan, remapped blocks pay their
// relocation seek, and requests inside degradation windows transfer
// slower. A nil plan detaches. The plan must cover at least the
// machine's disk count.
func (m *Machine) AttachFaults(p *faults.Plan) { m.faults = p }

// Timelines returns the recorded per-disk timelines (nil per disk
// unless EnableTimeline was called before simulation).
func (m *Machine) Timelines() [][]Segment {
	out := make([][]Segment, len(m.disks))
	for d := range m.disks {
		out[d] = m.disks[d].timeline
	}
	return out
}

// advance commits disk d's energy up to time t, resolving any
// transitional statuses that complete before t.
func (m *Machine) advance(d int, t float64) {
	s := &m.disks[d]
	for s.accT < t {
		switch s.status {
		case StSpinning:
			dt := t - s.accT
			pw := m.tbl.IdlePowerAt(s.rpm)
			s.stats.EnergyJ += pw * dt / 1e3
			s.stats.IdleEnergyJ += pw * dt / 1e3
			s.stats.IdleMS += dt
			s.addResidency(&m.p, s.rpm, dt)
			s.record(m.recTimeline, s.accT, t, StSpinning, s.rpm, pw, false)
			if m.obs != nil {
				m.obs.ObserveResidency(d, obs.StateIdle, s.rpm, dt)
			}
			s.accT = t
		case StStandby:
			dt := t - s.accT
			s.stats.EnergyJ += m.p.StandbyW * dt / 1e3
			s.stats.StandbyEnergyJ += m.p.StandbyW * dt / 1e3
			s.stats.StandbyMS += dt
			s.record(m.recTimeline, s.accT, t, StStandby, 0, m.p.StandbyW, false)
			if m.obs != nil {
				m.obs.ObserveResidency(d, obs.StateStandby, 0, dt)
			}
			s.accT = t
		case StDown, StUp, StShift:
			end := math.Min(t, s.statusUntil)
			dt := end - s.accT
			s.stats.EnergyJ += s.transPowerW * dt / 1e3
			s.stats.TransitionEnergyJ += s.transPowerW * dt / 1e3
			s.stats.TransitionMS += dt
			s.record(m.recTimeline, s.accT, end, s.status, s.rpm, s.transPowerW, false)
			if m.obs != nil {
				m.obs.ObserveResidency(d, obsState(s.status, false), s.rpm, dt)
			}
			s.accT = end
			if s.accT >= s.statusUntil {
				switch s.status {
				case StDown:
					s.status = StStandby
				case StUp:
					if s.upAborted {
						// The spin-up cascade gave up (injected
						// failures exhausted its retry budget); the
						// platters settle back into standby.
						s.upAborted = false
						s.status = StStandby
					} else {
						s.status = StSpinning
						s.rpm = m.p.MaxRPM
					}
				case StShift:
					s.status = StSpinning
				}
			}
		}
	}
}

// effectiveAt returns the earliest time >= t at which a new state
// change may begin on disk d (after any in-progress transition), and
// advances the disk there.
func (m *Machine) effectiveAt(d int, t float64) float64 {
	s := &m.disks[d]
	if t < s.accT {
		t = s.accT
	}
	if (s.status == StDown || s.status == StUp || s.status == StShift) && s.statusUntil > t {
		t = s.statusUntil
	}
	m.advance(d, t)
	return t
}

// SpinDownAt initiates a TPM spin-down on disk d at time t (or as
// soon after as the disk is free). It is a no-op if the disk is
// already in or heading to standby. t must not precede the disk's
// accounting cursor.
func (m *Machine) SpinDownAt(d int, t float64) {
	s := &m.disks[d]
	if s.status == StStandby || s.status == StDown {
		return
	}
	eff := m.effectiveAt(d, t)
	s.status = StDown
	s.statusUntil = eff + m.p.SpinDownMS
	s.transPowerW = m.p.SpinDownJ / m.p.SpinDownMS * 1e3
	s.stats.SpinDowns++
	if m.obs != nil {
		m.obs.CountPowerOp(obs.OpSpinDown)
	}
	if m.ev != nil {
		m.emitDecision(d, events.KindSpinDown, 0, eff)
	}
}

// SpinUpAt initiates a TPM spin-up on disk d at time t. It is a
// no-op unless the disk is in (or heading to) standby. Under an
// attached fault plan the spin-up may fail and retry; a
// pre-activation call that exhausts its retry budget (or its timeout
// cap) gives up, leaving the disk in standby for the next request to
// spin up on demand.
func (m *Machine) SpinUpAt(d int, t float64) {
	m.spinUp(d, t, false)
}

// spinUp implements SpinUpAt; onDemand marks the request-service
// path, on which the retry cascade is forced to succeed eventually
// (the degraded-mode no-deadlock guarantee).
func (m *Machine) spinUp(d int, t float64, onDemand bool) {
	s := &m.disks[d]
	if s.status != StStandby && s.status != StDown {
		return
	}
	eff := m.effectiveAt(d, t)
	if s.status != StStandby {
		// A queued spin-down resolved differently than expected;
		// nothing to do.
		return
	}
	if m.faults == nil || m.faults.Config().SpinUpFailProb <= 0 {
		s.status = StUp
		s.statusUntil = eff + m.p.SpinUpMS
		s.transPowerW = m.p.SpinUpJ / m.p.SpinUpMS * 1e3
	} else {
		// The whole cascade — attempts, backoffs — is modeled as one
		// transitional segment at its average power, so energy is
		// conserved exactly regardless of how many retries it holds.
		dur, energy, ok := m.spinUpCascade(d, eff, onDemand)
		s.status = StUp
		s.statusUntil = eff + dur
		s.transPowerW = energy / dur * 1e3
		s.upAborted = !ok
		s.upGaveUp = !ok
	}
	s.stats.SpinUps++
	if m.obs != nil {
		m.obs.CountPowerOp(obs.OpSpinUp)
	}
	if m.ev != nil {
		m.emitDecision(d, events.KindSpinUp, 0, eff)
	}
}

// spinUpCascade rolls the fault plan over one spin-up call's attempt
// sequence and returns the cascade's total duration and energy, and
// whether the platters end up at full speed. t is the cascade's start
// time (it stamps fault lifecycle events). Every attempt costs the
// full spin-up time and energy whether or not it succeeds; failed
// attempts are separated by exponentially growing backoff spent at
// standby power. A pre-activation cascade (onDemand false) gives up
// once the retry budget or the timeout cap is exhausted; the
// on-demand path instead forces success after the retry budget so a
// request can never be stuck behind an unlucky decision stream.
func (m *Machine) spinUpCascade(d int, t float64, onDemand bool) (durMS, energyJ float64, ok bool) {
	s := &m.disks[d]
	cfg := m.faults.Config()
	backoff := cfg.RetryBackoffMS
	for try := 0; ; try++ {
		attempt := s.upAttempts
		s.upAttempts++
		durMS += m.p.SpinUpMS
		energyJ += m.p.SpinUpJ
		if onDemand && try >= cfg.MaxRetries {
			// Forced success: the service path must terminate even at
			// a 100% failure probability.
			return durMS, energyJ, true
		}
		if !m.faults.SpinUpFails(d, attempt) {
			return durMS, energyJ, true
		}
		s.stats.SpinUpFailures++
		if m.obs != nil {
			m.obs.CountFault(obs.FaultSpinUpFail)
		}
		if m.ev != nil {
			m.emitFault(d, t+durMS, obs.FaultSpinUpFail.String())
		}
		if !onDemand {
			if try >= cfg.MaxRetries {
				return durMS, energyJ, false
			}
			if cfg.SpinUpTimeoutMS > 0 && durMS+backoff+m.p.SpinUpMS > cfg.SpinUpTimeoutMS {
				s.stats.SpinUpTimeouts++
				if m.obs != nil {
					m.obs.CountFault(obs.FaultTimeout)
				}
				if m.ev != nil {
					m.emitFault(d, t+durMS, obs.FaultTimeout.String())
				}
				return durMS, energyJ, false
			}
		}
		durMS += backoff
		energyJ += m.p.StandbyW * backoff / 1e3
		backoff *= 2
		s.stats.SpinUpRetries++
		if m.obs != nil {
			m.obs.CountFault(obs.FaultRetry)
		}
		if m.ev != nil {
			m.emitFault(d, t+durMS, obs.FaultRetry.String())
		}
	}
}

// SetRPMAt initiates an RPM modulation on disk d toward the given
// level at time t (or after the in-progress transition completes).
// It is a no-op if the disk is in standby or already at the level.
func (m *Machine) SetRPMAt(d int, t float64, rpm int) {
	s := &m.disks[d]
	if s.status == StStandby || s.status == StDown || s.status == StUp {
		return
	}
	rpm = m.p.ClampLevel(rpm)
	if s.rpm == rpm && s.status == StSpinning {
		return
	}
	eff := m.effectiveAt(d, t)
	if s.rpm == rpm {
		return
	}
	from := s.rpm
	s.status = StShift
	s.rpm = rpm
	dur := m.p.TransitionTimeMS(from, rpm)
	s.statusUntil = eff + dur
	s.transPowerW = m.tbl.TransitionEnergyJ(from, rpm) / dur * 1e3
	s.stats.RPMShifts++
	if m.obs != nil {
		m.obs.CountPowerOp(obs.OpSetRPM)
	}
	if m.ev != nil {
		m.emitDecision(d, events.KindRPMShift, rpm, eff)
	}
}

// Service issues a request of the given size to disk d at time t. It
// records the idle period that ends at t, waits out any spin-up or
// shift in progress (spinning the disk up from standby on demand),
// services the request, and returns the completion time. The seek
// component uses the average seek time; use ServiceBlock for
// distance-aware seeks. A non-nil error (*NotSpinningError) reports a
// machine-invariant violation: the disk failed to reach full speed.
func (m *Machine) Service(d int, t float64, bytes int64) (float64, error) {
	return m.ServiceBlock(d, t, bytes, -1)
}

// ServiceBlock is Service with the request's start block: when
// distance-aware seeking is enabled, the seek time follows the head
// movement from the previous request's end position (a negative
// block keeps the average-seek model for this request).
func (m *Machine) ServiceBlock(d int, t float64, bytes, block int64) (float64, error) {
	s := &m.disks[d]
	idleLen := t - s.idleFrom
	s.idles = append(s.idles, IdlePeriod{StartMS: s.idleFrom, LenMS: idleLen})
	pre := s.status
	start := m.effectiveAt(d, t)
	if s.status == StStandby {
		if m.faults != nil && s.upGaveUp {
			// A pre-activation cascade gave up on this disk; the
			// request degrades gracefully to on-demand service.
			s.upGaveUp = false
			s.stats.Fallbacks++
			if m.obs != nil {
				m.obs.CountFault(obs.FaultFallback)
			}
			if m.ev != nil {
				m.emitFault(d, start, obs.FaultFallback.String())
			}
		}
		// On-demand spin-up: the request pays the full delay. The
		// service path forces the retry cascade to succeed, so one
		// call always leaves the disk heading to full speed.
		if m.ev != nil {
			m.setTrigger(events.TrigDemand, 0)
			m.spinUp(d, start, true)
			m.restoreTrigger()
		} else {
			m.spinUp(d, start, true)
		}
		start = m.effectiveAt(d, start)
	}
	if s.status != StSpinning {
		return 0, &NotSpinningError{Disk: d, Status: s.status}
	}
	if m.ev != nil {
		// The idle period ending here is fully accounted (the disk has
		// been advanced through start): resolve its pending decisions.
		m.resolvePeriod(d, idleLen, start-s.idleFrom, false)
	}
	s.stats.WaitMS += start - t
	seek := m.p.AvgSeekMS
	remapped := m.faults != nil && block >= 0 && m.faults.Remapped(d, block)
	if remapped {
		s.stats.RemapHits++
		if m.obs != nil {
			m.obs.CountFault(obs.FaultRemap)
		}
		if m.ev != nil {
			m.emitFault(d, start, obs.FaultRemap.String())
		}
	}
	if m.distSeek && block >= 0 {
		target := block
		if remapped {
			// The bad sector is served from the spare area near the
			// end of the platter; the head genuinely travels there.
			target = m.faults.RemapTarget(block, m.maxBlocks)
		}
		dist := target - m.headPos[d]
		if dist < 0 {
			dist = -dist
		}
		seek = m.p.SeekTimeMS(dist, m.maxBlocks)
		m.headPos[d] = target + bytes/512
	} else if remapped {
		// Average-seek model: the relocation costs a flat penalty.
		seek += m.faults.Config().RemapPenaltyMS
	}
	svc := m.tbl.ServiceTimeSeekMS(s.rpm, bytes, seek)
	if m.faults != nil {
		if factor, _ := m.faults.Degraded(d, start); factor > 1 {
			extra := m.tbl.TransferTimeMS(s.rpm, bytes) * (factor - 1)
			svc += extra
			s.stats.DegradedHits++
			s.stats.DegradedExtraMS += extra
			if m.obs != nil {
				m.obs.CountFault(obs.FaultDegraded)
			}
			if m.ev != nil {
				m.emitFault(d, start, obs.FaultDegraded.String())
			}
		}
	}
	pw := m.tbl.ActivePowerAt(s.rpm)
	s.stats.EnergyJ += pw * svc / 1e3
	s.stats.ActiveEnergyJ += pw * svc / 1e3
	s.stats.ActiveMS += svc
	s.addResidency(&m.p, s.rpm, svc)
	s.stats.Requests++
	end := start + svc
	if m.obs != nil {
		m.obs.ObserveResidency(d, obs.StateService, s.rpm, svc)
		m.obs.ObserveRequest(d, svc, start-t, idleLen)
		if start > t {
			// The request blocked on a spin-up: the paper's
			// pre-activation failure mode. "inflight" means the
			// spin-up was already underway (issued too late);
			// "ondemand" means the disk was still in (or heading to)
			// standby and the request paid the full delay.
			switch pre {
			case StUp:
				m.obs.CountSpinupMiss(false)
			case StStandby, StDown:
				m.obs.CountSpinupMiss(true)
			}
		}
	}
	if m.ev != nil {
		if start > t {
			// Same classification as the collector's spinup-miss
			// counters; the event also carries the wait and the idle
			// period so a timeline can be rebuilt from the log alone.
			switch pre {
			case StUp:
				m.emitMiss(d, t, idleLen, start-t, false)
			case StStandby, StDown:
				m.emitMiss(d, t, idleLen, start-t, true)
			}
		}
		// A new idle period starts at end: snapshot the disk's energy
		// so the period's actual cost is a subtraction at resolution.
		m.evd[d].baseJ = s.stats.EnergyJ
	}
	s.record(m.recTimeline, start, end, StSpinning, s.rpm, pw, true)
	s.accT = end
	s.idleFrom = end
	return end, nil
}

// Finish commits all disks' energy up to the program end time and
// returns the per-disk statistics and idle-period records (including
// the trailing idle period of each disk).
func (m *Machine) Finish(endT float64) ([]DiskStats, [][]IdlePeriod) {
	stats := make([]DiskStats, len(m.disks))
	idles := make([][]IdlePeriod, len(m.disks))
	for d := range m.disks {
		m.advance(d, endT)
		s := &m.disks[d]
		// The trailing idle period is always recorded (possibly with
		// zero length) so idle-period lists align index-for-index
		// with the compiler's per-gap plans.
		trail := endT - s.idleFrom
		if trail < 0 {
			trail = 0
		}
		s.idles = append(s.idles, IdlePeriod{StartMS: s.idleFrom, LenMS: trail})
		if m.ev != nil {
			// Trailing-period decisions resolve against the trailing
			// oracle (no spin-up back is ever needed).
			m.resolvePeriod(d, trail, trail, true)
		}
		// Materialize the per-level residency map from the dense
		// accumulator (plus any overflow entries).
		if s.stats.RPMResidencyMS == nil {
			var touched int
			for _, ms := range s.resid {
				if ms != 0 {
					touched++
				}
			}
			if touched+len(s.residOverflow) > 0 {
				rm := make(map[int]float64, touched+len(s.residOverflow))
				for i, ms := range s.resid {
					if ms != 0 {
						rm[m.p.MinRPM+i*m.p.RPMStep] = ms
					}
				}
				for rpm, ms := range s.residOverflow {
					rm[rpm] += ms
				}
				s.stats.RPMResidencyMS = rm
			}
		}
		stats[d] = s.stats
		idles[d] = s.idles
	}
	return stats, idles
}
