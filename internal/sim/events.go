package sim

// Decision-provenance event plumbing. The machine, when a log is
// attached, records every power action (spin-down, spin-up, RPM
// shift) with its trigger and inputs, and resolves each decision with
// the measured idle period it acted inside and the energy regret
// against the oracle choice for a period of that length.
//
// The attribution model: an idle period on disk d spans
// [idleFrom, next service start]. Every decision whose effect lands
// inside the period is "pending" until the period resolves. The
// period's actual energy is the disk's energy delta from the period
// start to the moment the next request begins service (so the cost of
// a readiness wait the decision caused is charged to it); the oracle
// energy is the cheapest way a clairvoyant policy could have spent an
// idle gap of the measured length (full-speed idle, perfectly-timed
// standby dip, or the best RPM dip). Only the first pending decision
// of a period carries the actual/oracle/regret numbers — later
// decisions of the same period get the measured idle only — so
// summing regret over the log never double-counts a period.
//
// Everything here is behind `m.ev != nil` checks: with no log
// attached the hot path pays one predictable branch per site and
// allocates nothing, and the arithmetic of the run is untouched
// either way (events only read state the simulator already computed).

import (
	"sdpm/internal/obs/events"
	"sdpm/internal/trace"
)

// evDisk is the per-disk decision-tracking state.
type evDisk struct {
	// pending holds the log seqs of decisions awaiting this disk's
	// current idle period to resolve. Reused across periods.
	pending []uint64
	// baseJ is the disk's accumulated energy at the period start
	// (maintained at every request completion while a log is
	// attached), so actual period energy is one subtraction.
	baseJ float64
}

// AttachEvents threads a decision-provenance log through the machine.
// program and scheme label every emitted event; trigger is the
// deciding policy's default decision trigger (events.Trig*);
// breakEvenMS is the threshold input stamped on decision events. A
// nil log detaches.
func (m *Machine) AttachEvents(l *events.Log, program, scheme, trigger string, breakEvenMS float64) {
	m.ev = l
	if l == nil {
		return
	}
	m.evProg = program
	m.evPolicy = scheme
	m.evPolTrig = trigger
	m.evTrig = trigger
	m.evBE = breakEvenMS
	if len(m.evd) < len(m.disks) {
		m.evd = make([]evDisk, len(m.disks))
	}
}

// setTrigger switches the decision-trigger context (and the predicted
// idle that rides with hint triggers). Callers bracket policy or
// trace-op call-outs with it; restoreTrigger returns to the policy's
// default.
func (m *Machine) setTrigger(trig string, predictedIdleMS float64) {
	m.evTrig = trig
	m.evPred = predictedIdleMS
}

func (m *Machine) restoreTrigger() {
	m.evTrig = m.evPolTrig
	m.evPred = 0
}

// emitDecision records one power action on disk d effective at time t
// and marks it pending on d's current idle period.
func (m *Machine) emitDecision(d int, kind string, rpm int, t float64) {
	seq := m.ev.Emit(events.Event{
		TMS:             t,
		Kind:            kind,
		Program:         m.evProg,
		Policy:          m.evPolicy,
		Disk:            d,
		Trigger:         m.evTrig,
		TargetRPM:       rpm,
		PredictedIdleMS: m.evPred,
		BreakEvenMS:     m.evBE,
	})
	pd := &m.evd[d]
	pd.pending = append(pd.pending, seq)
}

// emitMiss records a request that blocked on disk readiness.
func (m *Machine) emitMiss(d int, t, idleMS, waitMS float64, onDemand bool) {
	detail := "inflight"
	if onDemand {
		detail = "ondemand"
	}
	m.ev.Emit(events.Event{
		TMS:            t,
		Kind:           events.KindSpinupMiss,
		Program:        m.evProg,
		Policy:         m.evPolicy,
		Disk:           d,
		MeasuredIdleMS: idleMS,
		WindowMS:       waitMS,
		Detail:         detail,
	})
}

// emitFault records one injected-fault lifecycle event; detail uses
// the metrics collector's fault-kind labels so the two surfaces
// cross-check one for one.
func (m *Machine) emitFault(d int, t float64, detail string) {
	m.ev.Emit(events.Event{
		TMS:     t,
		Kind:    events.KindFault,
		Program: m.evProg,
		Policy:  m.evPolicy,
		Disk:    d,
		Detail:  detail,
	})
}

// oracleIdleJ returns the minimum energy a clairvoyant policy could
// spend over an idle gap of the given length that ends with the disk
// back at full speed: full-speed idle, a perfectly-timed standby dip,
// or the best RPM dip.
func (m *Machine) oracleIdleJ(idleMS float64) float64 {
	e := m.p.IdleEnergyJ(idleMS)
	if s := m.p.StandbyEnergyJ(idleMS); s < e {
		e = s
	}
	if _, dip := m.p.BestRPMForIdle(idleMS); dip < e {
		e = dip
	}
	return e
}

// oracleTrailJ is oracleIdleJ for a trailing idle period: the disk
// never needs to return to full speed, so the dips pay no way back.
func (m *Machine) oracleTrailJ(idleMS float64) float64 {
	_, e := m.p.BestRPMForTrailingIdle(idleMS)
	if idleMS >= m.p.SpinDownMS {
		if s := m.p.SpinDownJ + m.p.StandbyW*(idleMS-m.p.SpinDownMS)/1e3; s < e {
			e = s
		}
	}
	return e
}

// emitBailout records why the batched executor dropped event i of a
// compiled run to the general path, re-deriving the bail condition
// with the same (pure) checks serviceRun just made. Detail holds the
// reason: disk_transition (a power action or spin-up is in flight on
// the disk), policy_decision (the policy's horizon says BeforeService
// may act), fault_remap / fault_degraded (a fault-plan hit needs the
// general service path).
func (m *Machine) emitBailout(evs []trace.Event, i int, run *trace.Run, clock float64, hz Horizon) {
	ev := &evs[i]
	d := run.Disk
	if run.Disks != nil {
		d = int(run.Disks[i-run.Start])
	} else if d < 0 {
		d = ev.Req.Disk
	}
	s := &m.disks[d]
	gap := run.GapMS
	if gap < 0 {
		gap = ev.GapMS
	}
	t := clock + gap
	reason := "unknown"
	if s.status != StSpinning || s.accT != s.idleFrom {
		reason = "disk_transition"
	} else if hz.NoOpBefore != nil && !hz.NoOpBefore(d, s.idleFrom, t, s.rpm) {
		reason = "policy_decision"
	} else if m.faults != nil {
		if ev.Req.Block >= 0 && m.faults.Remapped(d, ev.Req.Block) {
			reason = "fault_remap"
		} else if factor, _ := m.faults.Degraded(d, t); factor > 1 {
			reason = "fault_degraded"
		}
	}
	m.ev.Emit(events.Event{
		TMS:     t,
		Kind:    events.KindBailout,
		Program: m.evProg,
		Policy:  m.evPolicy,
		Disk:    d,
		Detail:  reason,
	})
}

// resolvePeriod finalizes disk d's just-ended idle period against its
// pending decisions: measured idle idleMS, full window windowMS
// (through any readiness wait), actual energy from the period-start
// snapshot, and the oracle minimum (trailing periods use the trailing
// oracle). No-op when no decisions are pending; the period-start
// energy snapshot is advanced by the request-completion paths, not
// here.
func (m *Machine) resolvePeriod(d int, idleMS, windowMS float64, trailing bool) {
	pd := &m.evd[d]
	if len(pd.pending) == 0 {
		return
	}
	actual := m.disks[d].stats.EnergyJ - pd.baseJ
	var oracle float64
	if trailing {
		oracle = m.oracleTrailJ(idleMS)
	} else {
		oracle = m.oracleIdleJ(idleMS)
	}
	m.ev.Resolve(pd.pending[0], events.Outcome{
		MeasuredIdleMS: idleMS,
		WindowMS:       windowMS,
		ActualJ:        actual,
		OracleJ:        oracle,
		RegretJ:        actual - oracle,
	})
	for _, seq := range pd.pending[1:] {
		m.ev.Resolve(seq, events.Outcome{MeasuredIdleMS: idleMS, WindowMS: windowMS})
	}
	pd.pending = pd.pending[:0]
}
