package sim_test

import (
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/obs"
	"sdpm/internal/sim"
)

// runAllocs measures allocations per sim.Run of the given trace size
// with an optional pre-attached collector.
func runAllocs(t *testing.T, nReqs int, coll *obs.Collector) float64 {
	t.Helper()
	tr := hotTrace(4, nReqs, 2.0)
	cfg := sim.Config{Disk: disk.DefaultParams(), Obs: coll}
	run := func() {
		if _, err := sim.Run(tr, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up (EnsureDisks, pools) outside the measured region
	return testing.AllocsPerRun(50, run)
}

// TestRunAllocsNilCollector guards the uninstrumented hot path: with
// a nil collector, a whole closed-loop run must stay within the
// baseline allocation budget regardless of trace length — per-request
// work allocates nothing.
func TestRunAllocsNilCollector(t *testing.T) {
	if got := runAllocs(t, 2000, nil); got > 24 {
		t.Errorf("sim.Run with nil collector: %.0f allocs/run, want <= 24", got)
	}
}

// TestRunAllocsAttachedCollector guards the instrumented hot path: an
// attached, pre-warmed collector must add zero allocations per
// request event, so runs of different lengths allocate identically.
func TestRunAllocsAttachedCollector(t *testing.T) {
	coll := obs.New()
	small := runAllocs(t, 500, coll)
	large := runAllocs(t, 4000, coll)
	if large != small {
		t.Errorf("allocs grew with trace length under an attached collector: %.0f (500 reqs) vs %.0f (4000 reqs); the per-event path must not allocate", small, large)
	}
	if base := runAllocs(t, 500, nil); small > base {
		t.Errorf("attaching a collector raised per-run allocs: %.0f with vs %.0f without", small, base)
	}
}
