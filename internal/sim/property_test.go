package sim_test

import (
	"math"
	"math/rand"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// randomTrace builds a random but valid request trace.
func randomTrace(rng *rand.Rand, nd, n int) *trace.Trace {
	tr := &trace.Trace{Program: "rand", NumDisks: nd}
	arr := 0.0
	for i := 0; i < n; i++ {
		gap := rng.Float64() * 120
		arr += gap
		sz := int64(512 * (1 + rng.Intn(256)))
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: gap,
			Req: trace.Request{
				ArrivalMS: arr,
				Disk:      rng.Intn(nd),
				Block:     int64(rng.Intn(1 << 20)),
				Bytes:     sz,
				Kind:      trace.ReqKind(rng.Intn(2)),
			},
		})
	}
	return tr
}

// TestSimulatorInvariantsRandomTraces drives the simulator with
// randomized traces under every policy and checks global invariants:
//
//   - energy bounded below by all-standby and above by all-active;
//   - per-disk time components sum to the execution time;
//   - oracle policies never increase energy or execution time;
//   - execution time at least the sum of gaps plus services.
func TestSimulatorInvariantsRandomTraces(t *testing.T) {
	p := disk.DefaultParams()
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 25; trial++ {
		nd := 1 + rng.Intn(8)
		tr := randomTrace(rng, nd, 20+rng.Intn(200))
		base, err := sim.Run(tr, sim.Config{Disk: p})
		if err != nil {
			t.Fatal(err)
		}

		var minGapSvc float64
		for _, e := range tr.Events {
			minGapSvc += e.GapMS + p.ServiceTimeMS(p.MaxRPM, e.Req.Bytes)
		}
		if base.ExecMS < minGapSvc-1e-6 {
			t.Fatalf("trial %d: exec %.3f below lower bound %.3f", trial, base.ExecMS, minGapSvc)
		}

		pols := []sim.Policy{
			policy.NewBase(),
			policy.NewTPM(p, 0),
			policy.NewITPM(p),
			policy.NewDRPM(p, nd),
			policy.NewIDRPM(p),
		}
		for _, pol := range pols {
			res, err := sim.Run(tr, sim.Config{Disk: p, Policy: pol})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
			// The fitted DRPM curve's minimum-RPM idle power sits
			// slightly below the standby draw, so the true floor is
			// the smaller of the two.
			floorW := math.Min(p.StandbyW, p.IdlePowerAt(p.MinRPM))
			lower := floorW * res.ExecMS / 1e3 * float64(nd)
			upper := p.ActiveW*res.ExecMS/1e3*float64(nd) +
				p.SpinUpJ*float64(res.Requests) // transitions can exceed active draw briefly
			if res.EnergyJ < lower-1e-6 || res.EnergyJ > upper+1e-6 {
				t.Fatalf("trial %d %s: energy %.3f outside [%.3f, %.3f]",
					trial, pol.Name(), res.EnergyJ, lower, upper)
			}
			for d, st := range res.Disks {
				total := st.ActiveMS + st.IdleMS + st.StandbyMS + st.TransitionMS
				// Committed segments may run slightly past the end
				// when a transition is still in flight at program
				// end; never below.
				if total < res.ExecMS-1e-6 {
					t.Fatalf("trial %d %s disk %d: time sum %.3f below exec %.3f",
						trial, pol.Name(), d, total, res.ExecMS)
				}
				if st.EnergyJ < 0 {
					t.Fatalf("negative disk energy")
				}
			}
			switch pol.Name() {
			case "ITPM", "IDRPM":
				if res.EnergyJ > base.EnergyJ+1e-6 {
					t.Fatalf("trial %d: %s energy %.3f above base %.3f",
						trial, pol.Name(), res.EnergyJ, base.EnergyJ)
				}
				if math.Abs(res.ExecMS-base.ExecMS) > 1e-6 {
					t.Fatalf("trial %d: %s changed exec time", trial, pol.Name())
				}
			case "Base":
				if math.Abs(res.EnergyJ-base.EnergyJ) > 1e-9 {
					t.Fatalf("base policy diverged from nil policy")
				}
			}
		}
	}
}

// TestOpenLoopInvariantsRandomTraces checks the open-loop replayer on
// the same random traces: completion never before the last arrival,
// oracle saves energy without moving completions.
func TestOpenLoopInvariantsRandomTraces(t *testing.T) {
	p := disk.DefaultParams()
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 15; trial++ {
		nd := 1 + rng.Intn(6)
		tr := randomTrace(rng, nd, 20+rng.Intn(120))
		base, err := sim.RunOpenLoop(tr, sim.Config{Disk: p})
		if err != nil {
			t.Fatal(err)
		}
		lastArrival := tr.Events[len(tr.Events)-1].Req.ArrivalMS
		if base.ExecMS < lastArrival {
			t.Fatalf("trial %d: completion %.3f before last arrival %.3f", trial, base.ExecMS, lastArrival)
		}
		id, err := sim.RunOpenLoop(tr, sim.Config{Disk: p, Policy: policy.NewIDRPM(p)})
		if err != nil {
			t.Fatal(err)
		}
		if id.EnergyJ > base.EnergyJ+1e-6 {
			t.Fatalf("trial %d: open-loop IDRPM energy above base", trial)
		}
		if math.Abs(id.ExecMS-base.ExecMS) > 1e-6 {
			t.Fatalf("trial %d: open-loop IDRPM moved completion", trial)
		}
	}
}
