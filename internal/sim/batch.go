package sim

import (
	"sdpm/internal/obs"
	evpkg "sdpm/internal/obs/events"
	"sdpm/internal/trace"
)

// Horizon is a policy's decision-horizon contract with the batched
// executor. The fast path may only skip a policy's BeforeService call
// when the policy guarantees the call would not act; NoOpBefore is
// that guarantee, evaluated with the same floating-point comparisons
// the policy itself would perform so the prediction can never
// disagree with the real call.
type Horizon struct {
	// NoOpBefore reports whether the policy's BeforeService for disk
	// d at time now is guaranteed to be a no-op, given that the disk
	// has been idle since start and is spinning at rpm. The executor
	// only consults it for spinning disks. A false return is always
	// safe: the executor bails to the general path, which runs the
	// real BeforeService. A nil NoOpBefore means BeforeService never
	// acts (the base policy).
	NoOpBefore func(d int, start, now float64, rpm int) bool
	// AfterPerRequest marks policies whose AfterService observes
	// every request (the reactive DRPM controller window); the fast
	// path then invokes AfterService per request exactly as the
	// general path does. Policies with an empty AfterService leave it
	// false and the fast path skips the call entirely.
	AfterPerRequest bool
}

// HorizonPolicy is implemented by policies that can describe their
// decision horizon to the batched executor. A Policy that does not
// implement it disables batching for the run (correctness first).
type HorizonPolicy interface {
	Policy
	Horizon() Horizon
}

// batchEntry caches one disk's steady-state constants for the
// batched fast path, keyed by the (rpm, bytes) pair they were
// computed for and recomputed whenever either changes. Every cached
// value is produced by the same table call the general path makes,
// so the fast path's arithmetic is bit-identical.
type batchEntry struct {
	rpm      int
	residIdx int // LevelIndex(rpm)
	bytes    int64
	svc      float64 // ServiceTimeSeekMS(rpm, bytes, AvgSeekMS)
	addActJ  float64 // ActivePowerAt(rpm) * svc / 1e3
	pwIdle   float64 // IdlePowerAt(rpm)
	pwAct    float64 // ActivePowerAt(rpm)
	// idleLen/idleE memoize the last idle-energy product
	// pwIdle * idleLen / 1e3 — in steady state every idle period has
	// the same length, so the division runs once per length change
	// rather than once per request. Same inputs, same bits.
	idleLen float64
	idleE   float64
}

// batchScratch is the per-disk constant cache (one entry per disk,
// one allocation per machine).
type batchScratch []batchEntry

func (m *Machine) batchScratchFor(n int) batchScratch {
	if m.batch != nil {
		return m.batch
	}
	sc := make(batchScratch, n)
	for d := range sc {
		sc[d].rpm = -1 // no valid cached entry yet
	}
	m.batch = sc
	return sc
}

// serviceRun walks events[run.Start:run.End] — a compiled run of
// request events — through the steady-state fast path, servicing
// requests back to back from index i until it reaches the run's end
// or encounters an event it cannot batch: a disk that is not plainly
// spinning, a policy decision point (per the horizon), or a
// fault-plan hit (remap or degradation window). It returns the index
// of the first unprocessed event and the updated clock; the caller
// services one event through the general path and re-enters.
//
// The fast path performs, per request, exactly the floating-point
// operations of the general path (Machine.advance + ServiceBlock) in
// the same order, with the per-(rpm, size) constants cached. The
// only eliminated float operations are ones that cannot change
// state: the WaitMS += 0 accumulation (start always equals the issue
// time here) and the policy's no-op BeforeService comparisons.
// Results are therefore bit-identical to the general path, which the
// differential tests in batch_diff_test.go enforce.
func (m *Machine) serviceRun(events []trace.Event, i int, run *trace.Run, clock float64, hz Horizon, pol Policy) (int, float64) {
	sc := m.batchScratchFor(len(m.disks))
	if m.obs == nil && m.ev == nil && !m.recTimeline && m.faults == nil && hz.NoOpBefore == nil && !hz.AfterPerRequest {
		// No per-request instrumentation, faults, or policy horizon to
		// consult: take the branch-free steady-state loop.
		return m.serviceRunLean(events, i, run, clock, sc)
	}
	hi := run.End
	// Runs compiled as fully uniform let the loop skip the per-event
	// gap and size loads (the branches below predict perfectly either
	// way); the per-disk Block load is only needed when a fault plan
	// could remap it.
	uniformGap, gapMS := run.GapMS >= 0, run.GapMS
	uniformBytes, runBytes := run.Bytes != 0, run.Bytes
	runDisk, pat, start := run.Disk, run.Disks, run.Start
	checkFaults := m.faults != nil
	checkHorizon := hz.NoOpBefore != nil
	recTL := m.recTimeline
	for i < hi {
		ev := &events[i]
		d := runDisk
		if pat != nil {
			d = int(pat[i-start])
		} else if d < 0 {
			d = ev.Req.Disk
		}
		s := &m.disks[d]
		if s.status != StSpinning || s.accT != s.idleFrom {
			// A power op or spin-up is in flight on this disk; the
			// general path resolves it (and pays any wait).
			return i, clock
		}
		gap := gapMS
		if !uniformGap {
			gap = ev.GapMS
		}
		t := clock + gap
		if checkHorizon && !hz.NoOpBefore(d, s.idleFrom, t, s.rpm) {
			return i, clock
		}
		if checkFaults {
			if ev.Req.Block >= 0 && m.faults.Remapped(d, ev.Req.Block) {
				return i, clock
			}
			if factor, _ := m.faults.Degraded(d, t); factor > 1 {
				return i, clock
			}
		}
		bytes := runBytes
		if !uniformBytes {
			bytes = ev.Req.Bytes
		}
		c := &sc[d]
		if c.rpm != s.rpm || c.bytes != bytes {
			c.rpm = s.rpm
			c.bytes = bytes
			c.pwIdle = m.tbl.IdlePowerAt(s.rpm)
			c.pwAct = m.tbl.ActivePowerAt(s.rpm)
			c.svc = m.tbl.ServiceTimeSeekMS(s.rpm, bytes, m.p.AvgSeekMS)
			c.addActJ = c.pwAct * c.svc / 1e3
			c.residIdx = m.p.LevelIndex(s.rpm)
			c.idleLen = -1 // unmatchable: idle memo invalid for new rpm
		}
		idleLen := t - s.idleFrom
		s.idles = append(s.idles, IdlePeriod{StartMS: s.idleFrom, LenMS: idleLen})
		if idleLen > 0 {
			// Machine.advance's StSpinning branch for [accT, t].
			e := c.idleE
			if idleLen != c.idleLen {
				e = c.pwIdle * idleLen / 1e3
				c.idleLen, c.idleE = idleLen, e
			}
			s.stats.EnergyJ += e
			s.stats.IdleEnergyJ += e
			s.stats.IdleMS += idleLen
			s.resid[c.residIdx] += idleLen
			if recTL {
				s.record(true, s.accT, t, StSpinning, s.rpm, c.pwIdle, false)
			}
			if m.obs != nil {
				m.obs.ObserveResidency(d, obs.StateIdle, s.rpm, idleLen)
			}
		}
		// ServiceBlock's spinning steady state: start == t, no wait.
		svc := c.svc
		s.stats.EnergyJ += c.addActJ
		s.stats.ActiveEnergyJ += c.addActJ
		s.stats.ActiveMS += svc
		s.resid[c.residIdx] += svc
		s.stats.Requests++
		end := t + svc
		if m.obs != nil {
			m.obs.ObserveResidency(d, obs.StateService, s.rpm, svc)
			m.obs.ObserveRequest(d, svc, 0, idleLen)
		}
		if recTL {
			s.record(true, t, end, StSpinning, s.rpm, c.pwAct, true)
		}
		s.accT = end
		s.idleFrom = end
		if m.ev != nil {
			// Keep the period-start energy snapshot current (the next
			// idle period on d starts here); see events.go.
			m.evd[d].baseJ = s.stats.EnergyJ
		}
		clock = end
		i++
		if hz.AfterPerRequest {
			// The controller may act on any disk (e.g. DRPM's restore
			// sweep); the per-disk status and cache checks above pick
			// that up on the next iteration.
			if m.ev != nil {
				m.setTrigger(evpkg.TrigController, 0)
				pol.AfterService(m, d, end, end-t)
				m.restoreTrigger()
			} else {
				pol.AfterService(m, d, end, end-t)
			}
		}
	}
	return i, clock
}

// serviceRunLean is serviceRun specialized for the common engine
// configuration — no collector, no timeline, no fault plan, and a
// policy (if any) with neither a BeforeService horizon nor a
// per-request AfterService. The arithmetic is identical to serviceRun;
// only the always-false instrumentation branches are gone.
func (m *Machine) serviceRunLean(events []trace.Event, i int, run *trace.Run, clock float64, sc batchScratch) (int, float64) {
	if run.Disk >= 0 && run.GapMS >= 0 && run.Bytes != 0 {
		// Fully homogeneous run on one disk: the steady-state loop
		// below keeps the disk's accumulators in locals.
		return m.serviceRunSteady(i, run, clock, sc)
	}
	hi := run.End
	uniformGap, gapMS := run.GapMS >= 0, run.GapMS
	uniformBytes, runBytes := run.Bytes != 0, run.Bytes
	runDisk, pat, start := run.Disk, run.Disks, run.Start
	for i < hi {
		d := runDisk
		if pat != nil {
			d = int(pat[i-start])
		} else if d < 0 {
			d = events[i].Req.Disk
		}
		s := &m.disks[d]
		if s.status != StSpinning || s.accT != s.idleFrom {
			return i, clock
		}
		gap := gapMS
		if !uniformGap {
			gap = events[i].GapMS
		}
		t := clock + gap
		bytes := runBytes
		if !uniformBytes {
			bytes = events[i].Req.Bytes
		}
		c := &sc[d]
		if c.rpm != s.rpm || c.bytes != bytes {
			c.rpm = s.rpm
			c.bytes = bytes
			c.pwIdle = m.tbl.IdlePowerAt(s.rpm)
			c.pwAct = m.tbl.ActivePowerAt(s.rpm)
			c.svc = m.tbl.ServiceTimeSeekMS(s.rpm, bytes, m.p.AvgSeekMS)
			c.addActJ = c.pwAct * c.svc / 1e3
			c.residIdx = m.p.LevelIndex(s.rpm)
			c.idleLen = -1 // unmatchable: idle memo invalid for new rpm
		}
		idleLen := t - s.idleFrom
		s.idles = append(s.idles, IdlePeriod{StartMS: s.idleFrom, LenMS: idleLen})
		if idleLen > 0 {
			e := c.idleE
			if idleLen != c.idleLen {
				e = c.pwIdle * idleLen / 1e3
				c.idleLen, c.idleE = idleLen, e
			}
			s.stats.EnergyJ += e
			s.stats.IdleEnergyJ += e
			s.stats.IdleMS += idleLen
			s.resid[c.residIdx] += idleLen
		}
		svc := c.svc
		s.stats.EnergyJ += c.addActJ
		s.stats.ActiveEnergyJ += c.addActJ
		s.stats.ActiveMS += svc
		s.resid[c.residIdx] += svc
		s.stats.Requests++
		end := t + svc
		s.accT = end
		s.idleFrom = end
		clock = end
		i++
	}
	return i, clock
}

// serviceRunSteady services a fully homogeneous run — one disk, one
// request size, one gap — with the disk's accumulators held in
// locals and written back once. No state outside this disk can change
// inside the loop (no policy, faults, or instrumentation on this
// path), so hoisting is safe; the accumulation order over the locals
// is exactly the per-request order, so the results are bit-identical.
func (m *Machine) serviceRunSteady(i int, run *trace.Run, clock float64, sc batchScratch) (int, float64) {
	d := run.Disk
	s := &m.disks[d]
	if s.status != StSpinning || s.accT != s.idleFrom {
		return i, clock
	}
	gap, bytes := run.GapMS, run.Bytes
	c := &sc[d]
	if c.rpm != s.rpm || c.bytes != bytes {
		c.rpm = s.rpm
		c.bytes = bytes
		c.pwIdle = m.tbl.IdlePowerAt(s.rpm)
		c.pwAct = m.tbl.ActivePowerAt(s.rpm)
		c.svc = m.tbl.ServiceTimeSeekMS(s.rpm, bytes, m.p.AvgSeekMS)
		c.addActJ = c.pwAct * c.svc / 1e3
		c.residIdx = m.p.LevelIndex(s.rpm)
		c.idleLen = -1
	}
	idleFrom := s.idleFrom
	idles := s.idles
	energyJ, idleEJ, idleMS := s.stats.EnergyJ, s.stats.IdleEnergyJ, s.stats.IdleMS
	actEJ, actMS := s.stats.ActiveEnergyJ, s.stats.ActiveMS
	reqs := s.stats.Requests
	resid := s.resid[c.residIdx]
	svc, addActJ, pwIdle := c.svc, c.addActJ, c.pwIdle
	memoLen, memoE := c.idleLen, c.idleE
	for ; i < run.End; i++ {
		t := clock + gap
		idleLen := t - idleFrom
		idles = append(idles, IdlePeriod{StartMS: idleFrom, LenMS: idleLen})
		if idleLen > 0 {
			e := memoE
			if idleLen != memoLen {
				e = pwIdle * idleLen / 1e3
				memoLen, memoE = idleLen, e
			}
			energyJ += e
			idleEJ += e
			idleMS += idleLen
			resid += idleLen
		}
		energyJ += addActJ
		actEJ += addActJ
		actMS += svc
		resid += svc
		reqs++
		end := t + svc
		idleFrom = end
		clock = end
	}
	s.idles = idles
	s.accT = idleFrom
	s.idleFrom = idleFrom
	s.stats.EnergyJ, s.stats.IdleEnergyJ, s.stats.IdleMS = energyJ, idleEJ, idleMS
	s.stats.ActiveEnergyJ, s.stats.ActiveMS = actEJ, actMS
	s.stats.Requests = reqs
	s.resid[c.residIdx] = resid
	c.idleLen, c.idleE = memoLen, memoE
	return i, clock
}
