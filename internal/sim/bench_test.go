package sim_test

// Allocation-regression benchmarks for the simulator hot path. The
// closed-loop executor services one request at a time over the whole
// trace, so per-request allocations multiply by trace length; these
// benchmarks report allocs/op so a regression is visible in a plain
// `go test -bench SimHotPath -benchmem ./internal/sim` run (see
// docs/performance.md and results/bench_baseline.txt).

import (
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// hotTrace builds a synthetic closed-loop trace: nReqs requests
// round-robined over nDisks with a fixed compute gap, long enough to
// exercise idle-period bookkeeping on every disk.
func hotTrace(nDisks, nReqs int, gapMS float64) *trace.Trace {
	tr := &trace.Trace{Program: "hot", NumDisks: nDisks}
	tr.Events = make([]trace.Event, 0, nReqs)
	arrival := 0.0
	for i := 0; i < nReqs; i++ {
		arrival += gapMS
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: gapMS,
			Req: trace.Request{
				ArrivalMS: arrival,
				Disk:      i % nDisks,
				Block:     int64(i) * 128,
				Bytes:     65536,
				Kind:      trace.Read,
			},
		})
	}
	return tr
}

// BenchmarkSimHotPath measures the closed-loop simulator on a
// 10k-request trace with no policy (the pure machine path), with the
// trace's compiled form memoized outside the loop the way the
// experiment engine memoizes it per trace.
func BenchmarkSimHotPath(b *testing.B) {
	tr := hotTrace(8, 10000, 2.0)
	cfg := sim.Config{Disk: disk.DefaultParams(), Compiled: trace.Compile(tr)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("requests = %d", res.Requests)
		}
	}
}

// BenchmarkSimHotPathNoBatch is BenchmarkSimHotPath with the batched
// executor disabled — the general per-request path, for before/after
// comparison under `make bench`.
func BenchmarkSimHotPathNoBatch(b *testing.B) {
	tr := hotTrace(8, 10000, 2.0)
	cfg := sim.Config{Disk: disk.DefaultParams(), DisableBatch: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("requests = %d", res.Requests)
		}
	}
}

// BenchmarkSimSteadyRun measures the fully homogeneous case the
// batched executor is built for: one disk, uniform size and gap — a
// single compiled run serviced end to end by the steady-state loop.
func BenchmarkSimSteadyRun(b *testing.B) {
	tr := hotTrace(1, 10000, 2.0)
	cfg := sim.Config{Disk: disk.DefaultParams(), Compiled: trace.Compile(tr)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("requests = %d", res.Requests)
		}
	}
}

// BenchmarkSimSteadyRunNoBatch is BenchmarkSimSteadyRun through the
// general per-request path — the denominator of the batching speedup.
func BenchmarkSimSteadyRunNoBatch(b *testing.B) {
	tr := hotTrace(1, 10000, 2.0)
	cfg := sim.Config{Disk: disk.DefaultParams(), DisableBatch: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 10000 {
			b.Fatalf("requests = %d", res.Requests)
		}
	}
}

// BenchmarkSimHotPathDRPM measures the same trace under the reactive
// DRPM policy (RPM shifts on every long idle period).
func BenchmarkSimHotPathDRPM(b *testing.B) {
	p := disk.DefaultParams()
	tr := hotTrace(8, 10000, 40.0)
	comp := trace.Compile(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Disk: p, Policy: policy.NewDRPM(p, 8), Compiled: comp}
		if _, err := sim.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMachineResetReuse checks that a reset machine reproduces a
// fresh machine's run exactly (the reuse contract behind the
// allocation-free simulation loop).
func TestMachineResetReuse(t *testing.T) {
	p := disk.DefaultParams()
	run := func(m *sim.Machine) ([]sim.DiskStats, [][]sim.IdlePeriod) {
		m.SetRPMAt(0, 0, 3000)
		end, err := m.Service(0, 500, 65536)
		if err != nil {
			t.Fatal(err)
		}
		end, err = m.Service(1, end+200, 65536)
		if err != nil {
			t.Fatal(err)
		}
		m.SpinDownAt(1, end+5)
		return m.Finish(end + 400)
	}
	fresh := sim.NewMachine(2, p)
	wantStats, wantIdles := run(fresh)

	reused := sim.NewMachine(2, p)
	run(reused)
	reused.Reset()
	gotStats, gotIdles := run(reused)

	for d := range wantStats {
		w, g := wantStats[d], gotStats[d]
		if w.EnergyJ != g.EnergyJ || w.IdleMS != g.IdleMS || w.Requests != g.Requests ||
			w.SpinDowns != g.SpinDowns || w.RPMShifts != g.RPMShifts {
			t.Errorf("disk %d stats differ after Reset: %+v vs %+v", d, w, g)
		}
		if len(w.RPMResidencyMS) != len(g.RPMResidencyMS) {
			t.Errorf("disk %d residency differs: %v vs %v", d, w.RPMResidencyMS, g.RPMResidencyMS)
		}
		for rpm, ms := range w.RPMResidencyMS {
			if g.RPMResidencyMS[rpm] != ms {
				t.Errorf("disk %d residency[%d] = %g, want %g", d, rpm, g.RPMResidencyMS[rpm], ms)
			}
		}
		if len(wantIdles[d]) != len(gotIdles[d]) {
			t.Errorf("disk %d idle count %d vs %d", d, len(wantIdles[d]), len(gotIdles[d]))
			continue
		}
		for i := range wantIdles[d] {
			if wantIdles[d][i] != gotIdles[d][i] {
				t.Errorf("disk %d idle %d: %+v vs %+v", d, i, gotIdles[d][i], wantIdles[d][i])
			}
		}
	}
}

// BenchmarkOpenLoopHotPath measures the open-loop replayer (arrival
// queue construction plus per-disk FIFO service).
func BenchmarkOpenLoopHotPath(b *testing.B) {
	p := disk.DefaultParams()
	tr := hotTrace(8, 10000, 2.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Disk: p, Policy: policy.NewBase()}
		if _, err := sim.RunOpenLoop(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
