package sim

import (
	"fmt"

	"sdpm/internal/obs/events"
	"sdpm/internal/trace"
)

// RunOpenLoop replays a trace in open-loop mode: requests are issued
// at their nominal arrival times regardless of earlier completions,
// queueing FIFO per disk when the disk is busy — the classical
// DiskSim-style replay, in contrast to Run's closed-loop execution
// where power-management delays stretch the application.
//
// Open-loop replay cannot honor the trace's embedded power ops (their
// positions are program-order, not wall-clock), so it supports only
// policy-driven schemes; traces containing power ops are replayed
// with the ops dropped.
//
// The result's ExecMS is the last completion time; TotalWaitMS
// aggregates queueing plus readiness delays (completion - arrival -
// service).
func RunOpenLoop(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	// Requests are replayed in arrival order. Validate already
	// guarantees arrivals are non-decreasing in event order, so the
	// event walk below IS the arrival order — materializing and
	// stable-sorting an arrival queue (as earlier revisions did) was a
	// per-run allocation that could never change the order.
	perDisk := make([]int, tr.NumDisks)
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.EvRequest {
			perDisk[tr.Events[i].Req.Disk]++
		}
	}
	m := NewMachine(tr.NumDisks, cfg.Disk)
	if cfg.DistanceAwareSeek {
		m.EnableDistanceSeek(cfg.Disk.CapacityBlocks())
	}
	if cfg.RecordTimeline || cfg.Audit {
		m.EnableTimeline()
	}
	if cfg.Obs != nil {
		cfg.Obs.CountSimRun()
		cfg.Obs.EnsureDisks(tr.NumDisks, cfg.Disk.MinRPM, cfg.Disk.RPMStep, cfg.Disk.NumLevels())
		m.AttachCollector(cfg.Obs)
	}
	if cfg.Faults != nil {
		if cfg.Faults.NumDisks() < tr.NumDisks {
			return nil, fmt.Errorf("sim: fault plan covers %d disks, trace uses %d", cfg.Faults.NumDisks(), tr.NumDisks)
		}
		m.AttachFaults(cfg.Faults)
	}
	if cfg.Events != nil {
		label := cfg.SchemeLabel
		if label == "" {
			if cfg.Policy != nil {
				label = cfg.Policy.Name() + "/open"
			} else {
				label = "embedded/open"
			}
		}
		polTrig := ""
		if tp, ok := cfg.Policy.(TriggerPolicy); ok {
			polTrig = tp.DecisionTrigger()
		} else if cfg.Policy != nil {
			polTrig = "policy"
		}
		m.AttachEvents(cfg.Events, tr.Program, label, polTrig, cfg.Disk.TPMBreakEvenMS())
	}
	m.ReserveIdles(perDisk)
	lastCompletion := make([]float64, tr.NumDisks)
	end := 0.0
	queueMS := 0.0
	for i := range tr.Events {
		if tr.Events[i].Kind != trace.EvRequest {
			continue
		}
		req := &tr.Events[i].Req
		d := req.Disk
		at := req.ArrivalMS
		issue := at
		if lastCompletion[d] > issue {
			// FIFO queueing behind the previous request on this disk.
			issue = lastCompletion[d]
			queueMS += issue - at
		}
		// Note: the machine may have accounted ahead of `issue` when a
		// policy scheduled an RPM shift that is still in progress; the
		// machine defers the service start in that case.
		if cfg.Policy != nil {
			cfg.Policy.BeforeService(m, d, issue)
		}
		compl, err := m.ServiceBlock(d, issue, req.Bytes, req.Block)
		if err != nil {
			return nil, err
		}
		if cfg.Policy != nil {
			if m.ev != nil {
				m.setTrigger(events.TrigController, 0)
				cfg.Policy.AfterService(m, d, compl, compl-at)
				m.restoreTrigger()
			} else {
				cfg.Policy.AfterService(m, d, compl, compl-at)
			}
		}
		lastCompletion[d] = compl
		if compl > end {
			end = compl
		}
	}
	if cfg.Policy != nil {
		if m.ev != nil {
			m.setTrigger(events.TrigFinish, 0)
			cfg.Policy.Finish(m, end)
			m.restoreTrigger()
		} else {
			cfg.Policy.Finish(m, end)
		}
	}
	stats, idles := m.Finish(end)
	res := &Result{Program: tr.Program, ExecMS: end, Disks: stats, Idles: idles}
	if cfg.RecordTimeline || cfg.Audit {
		res.Timelines = m.Timelines()
	}
	if cfg.Policy != nil {
		res.Scheme = cfg.Policy.Name() + "/open"
	} else {
		res.Scheme = "embedded/open"
	}
	for d := range stats {
		res.EnergyJ += stats[d].EnergyJ
		res.Requests += stats[d].Requests
		res.TotalWaitMS += stats[d].WaitMS
	}
	// Readiness waits (from the machine) plus FIFO queueing delays.
	res.TotalWaitMS += queueMS
	if cfg.Audit {
		if aerr := Audit(res, cfg.Disk, cfg.Faults != nil); aerr != nil {
			return nil, aerr
		}
		if !cfg.RecordTimeline {
			res.Timelines = nil
		}
	}
	return res, nil
}
