package sim

import (
	"errors"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/trace"
)

// auditTrace exercises every state-machine edge the audit checks:
// spin-downs, on-demand and explicit spin-ups, RPM shifts, and
// requests on multiple disks.
func auditTrace() *trace.Trace {
	return mkTrace(2,
		req(10, 0, 65536),
		op(5, 0, trace.OpSetRPM, 6000),
		req(400, 0, 32768),
		op(0, 0, trace.OpSpinDown, 0),
		req(20000, 0, 65536), // on-demand spin-up
		op(10, 1, trace.OpSpinDown, 0),
		op(15000, 1, trace.OpSpinUp, 0), // pre-activation
		req(6000, 1, 65536),
		req(100, 0, 16384),
	)
}

func TestAuditPassesCleanRuns(t *testing.T) {
	p := disk.DefaultParams()
	tr := auditTrace()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fault-free", Config{Disk: p, Audit: true}},
		{"fault-free/timeline", Config{Disk: p, Audit: true, RecordTimeline: true}},
		{"forced-cascade", Config{Disk: p, Audit: true,
			Faults: plan(t, 7, 2, faults.Config{SpinUpFailProb: 1, MaxRetries: 2, RetryBackoffMS: 100})}},
		{"distance-seek", Config{Disk: p, Audit: true, DistanceAwareSeek: true}},
	}
	for _, tc := range cases {
		res, err := Run(tr, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// The audit's internal timeline must not leak into the result
		// unless the caller asked for it.
		if tc.cfg.RecordTimeline && len(res.Timelines) == 0 {
			t.Fatalf("%s: RecordTimeline produced no timelines", tc.name)
		}
		if !tc.cfg.RecordTimeline && res.Timelines != nil {
			t.Fatalf("%s: audit leaked timelines into the result", tc.name)
		}
		if _, err := RunOpenLoop(tr, tc.cfg); err != nil {
			t.Fatalf("%s (open loop): %v", tc.name, err)
		}
	}
	// Every fault preset must survive the audit too.
	for _, name := range faults.PresetNames() {
		fc, ok := faults.Preset(name)
		if !ok {
			t.Fatalf("unknown preset %q", name)
		}
		if _, err := Run(tr, Config{Disk: p, Audit: true, Faults: plan(t, 3, 2, fc)}); err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
	}
}

// auditedRun returns a faulted, timeline-carrying result for the
// tampering tests below.
func auditedRun(t *testing.T) (*Result, disk.Params) {
	t.Helper()
	p := disk.DefaultParams()
	fc := faults.Config{SpinUpFailProb: 1, MaxRetries: 2, RetryBackoffMS: 100}
	res, err := Run(auditTrace(), Config{Disk: p, RecordTimeline: true, Faults: plan(t, 7, 2, fc)})
	if err != nil {
		t.Fatal(err)
	}
	if aerr := Audit(res, p, true); aerr != nil {
		t.Fatalf("untampered run failed audit: %v", aerr)
	}
	return res, p
}

func wantViolation(t *testing.T, res *Result, p disk.Params, faultsOn bool, invariant string) {
	t.Helper()
	aerr := Audit(res, p, faultsOn)
	if aerr == nil {
		t.Fatalf("audit passed, want %q violation", invariant)
	}
	var ae *AuditError
	if !errors.As(error(aerr), &ae) {
		t.Fatalf("audit error has wrong type: %T", aerr)
	}
	for _, v := range ae.Violations {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("audit failed with %v, want %q among the violations", ae.Violations, invariant)
}

// TestAuditCatchesDoubleChargedFaultEnergy seeds the bug the audit
// exists for: the spin-up cascade's energy charged twice to the
// accumulators. The per-mode breakdown and run totals are adjusted
// consistently, so only the timeline power integral can expose it.
func TestAuditCatchesDoubleChargedFaultEnergy(t *testing.T) {
	res, p := auditedRun(t)
	res.Disks[0].TransitionEnergyJ += p.SpinUpJ
	res.Disks[0].EnergyJ += p.SpinUpJ
	res.EnergyJ += p.SpinUpJ
	wantViolation(t, res, p, true, "timeline-energy")
}

func TestAuditCatchesBreakdownMismatch(t *testing.T) {
	res, p := auditedRun(t)
	res.Disks[0].TransitionEnergyJ += p.SpinUpJ // breakdown no longer sums
	wantViolation(t, res, p, true, "energy-breakdown")
}

func TestAuditCatchesTimeLoss(t *testing.T) {
	res, p := auditedRun(t)
	res.Disks[1].IdleMS -= 5
	wantViolation(t, res, p, true, "time-conservation")
}

func TestAuditCatchesNegativeCounter(t *testing.T) {
	res, p := auditedRun(t)
	res.Disks[0].WaitMS = -1
	wantViolation(t, res, p, true, "non-negative")
}

func TestAuditCatchesIllegalTransition(t *testing.T) {
	res, p := auditedRun(t)
	// Rewrite a mid-timeline spinning segment as standby: both edges
	// around it become illegal for the state machine.
	tampered := false
	tl := res.Timelines[0]
	for i := 1; i < len(tl)-1; i++ {
		if tl[i].Stat == StSpinning && tl[i-1].Stat == StSpinning {
			tl[i].Stat = StStandby
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no suitable segment to tamper with")
	}
	wantViolation(t, res, p, true, "transition-legality")
}

func TestAuditCatchesFaultCounterLeak(t *testing.T) {
	p := disk.DefaultParams()
	res, err := Run(auditTrace(), Config{Disk: p, RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Disks[0].RemapHits = 1
	wantViolation(t, res, p, false, "fault-free")
}

func TestAuditCatchesRunLevelDrift(t *testing.T) {
	res, p := auditedRun(t)
	res.EnergyJ *= 1.01
	wantViolation(t, res, p, true, "run-energy")
}
