package sim

import "fmt"

// NotSpinningError reports a request issued to a disk whose platters
// were not at full speed when service was about to start. The machine
// guarantees this cannot happen on any well-formed run — the service
// path waits out transitions and spins standby disks up on demand —
// so the error marks internal-state corruption (e.g. a policy
// mutating the machine outside its contract). It used to be a panic;
// it is a typed error so embedding applications can fail one
// simulation without taking down the process.
type NotSpinningError struct {
	Disk   int
	Status Status
}

func (e *NotSpinningError) Error() string {
	return fmt.Sprintf("sim: disk %d not spinning at service start (status %v)", e.Disk, e.Status)
}
