package sim

import (
	"fmt"
	"math"
	"strings"

	"sdpm/internal/disk"
)

// Violation is one failed conservation-audit invariant.
type Violation struct {
	// Disk is the violating disk index, or -1 for a run-level check.
	Disk int
	// Invariant names the check that failed.
	Invariant string
	// Detail quantifies the failure.
	Detail string
}

// AuditError is the structured report of a failed conservation audit:
// the simulator produced a result that breaks physics invariants the
// model must satisfy, so the result cannot be trusted. It is returned
// by Run/RunOpenLoop under Config.Audit and by Audit directly.
type AuditError struct {
	Program    string
	Scheme     string
	Violations []Violation
}

func (e *AuditError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: audit failed: %s/%s: %d violation(s)", e.Program, e.Scheme, len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		if v.Disk >= 0 {
			fmt.Fprintf(&b, "disk %d: ", v.Disk)
		}
		fmt.Fprintf(&b, "%s: %s", v.Invariant, v.Detail)
	}
	return b.String()
}

// auditTol is the audit's relative tolerance. The audited identities
// hold exactly up to floating-point reassociation (the same
// increments are summed in a different order), so the tolerance only
// needs to absorb rounding noise, not modeling slack.
const auditTol = 1e-6

func auditClose(a, b float64) bool {
	tol := auditTol * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

type auditor struct {
	viol []Violation
}

func (a *auditor) fail(d int, invariant, format string, args ...any) {
	a.viol = append(a.viol, Violation{Disk: d, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Audit checks the conservation invariants of one simulation result:
//
//   - all per-disk times, energies, and counters are non-negative;
//   - per-disk residency (active + idle + standby + transition) sums
//     to the run's execution time;
//   - the per-mode energy breakdown sums to the disk's total energy,
//     standby energy equals standby power x standby time, and idle and
//     active energies lie within the power envelope of the disk's RPM
//     levels;
//   - RPM residency sums to the disk's spinning (active + idle) time;
//   - run totals (energy, requests, wait) aggregate the disks;
//   - fault counters are zero when no fault plan was attached, and
//     internally consistent when one was;
//   - when a timeline is available (Config.Audit records one), the
//     timeline is contiguous from 0 to ExecMS, its power integral
//     reproduces the disk's energy exactly — so a fault cascade (or
//     anything else) charged twice to the stats but once to the
//     timeline is caught — and every observed state transition is
//     legal for the disk state machine.
//
// A nil return means every invariant held. faultsOn tells the audit
// whether a fault plan was attached (fault counters must be zero
// otherwise).
func Audit(res *Result, p disk.Params, faultsOn bool) *AuditError {
	a := &auditor{}
	sumEnergy, sumWait := 0.0, 0.0
	sumRequests := 0
	if res.ExecMS < 0 {
		a.fail(-1, "non-negative-exec", "ExecMS = %g", res.ExecMS)
	}
	minIdleW, maxIdleW := powerEnvelope(p, p.IdlePowerAt)
	minActW, maxActW := powerEnvelope(p, p.ActivePowerAt)
	for d := range res.Disks {
		s := &res.Disks[d]
		a.auditNonNegative(d, s)
		// Residency conservation: the four states partition [0, ExecMS].
		total := s.ActiveMS + s.IdleMS + s.StandbyMS + s.TransitionMS
		if !auditClose(total, res.ExecMS) {
			a.fail(d, "time-conservation", "active+idle+standby+transition = %g ms, ExecMS = %g ms", total, res.ExecMS)
		}
		// Energy conservation: the per-mode breakdown is the total.
		brk := s.ActiveEnergyJ + s.IdleEnergyJ + s.StandbyEnergyJ + s.TransitionEnergyJ
		if !auditClose(brk, s.EnergyJ) {
			a.fail(d, "energy-breakdown", "mode sum = %g J, EnergyJ = %g J", brk, s.EnergyJ)
		}
		// Standby draws one constant power; its energy is closed-form.
		if want := p.StandbyW * s.StandbyMS / 1e3; !auditClose(s.StandbyEnergyJ, want) {
			a.fail(d, "standby-energy", "StandbyEnergyJ = %g J, StandbyW x StandbyMS = %g J", s.StandbyEnergyJ, want)
		}
		// Idle/active energy must lie inside the RPM power envelope.
		if lo, hi := minIdleW*s.IdleMS/1e3, maxIdleW*s.IdleMS/1e3; !withinEnvelope(s.IdleEnergyJ, lo, hi) {
			a.fail(d, "idle-power-envelope", "IdleEnergyJ = %g J outside [%g, %g] J for %g idle ms", s.IdleEnergyJ, lo, hi, s.IdleMS)
		}
		if lo, hi := minActW*s.ActiveMS/1e3, maxActW*s.ActiveMS/1e3; !withinEnvelope(s.ActiveEnergyJ, lo, hi) {
			a.fail(d, "active-power-envelope", "ActiveEnergyJ = %g J outside [%g, %g] J for %g active ms", s.ActiveEnergyJ, lo, hi, s.ActiveMS)
		}
		// RPM residency covers exactly the spinning time.
		resid := 0.0
		for _, ms := range s.RPMResidencyMS {
			resid += ms
		}
		if spin := s.ActiveMS + s.IdleMS; !auditClose(resid, spin) {
			a.fail(d, "rpm-residency", "sum RPMResidencyMS = %g ms, active+idle = %g ms", resid, spin)
		}
		a.auditFaultCounters(d, s, faultsOn)
		sumEnergy += s.EnergyJ
		sumWait += s.WaitMS
		sumRequests += s.Requests
	}
	// Run-level aggregation.
	if !auditClose(sumEnergy, res.EnergyJ) {
		a.fail(-1, "run-energy", "sum disk EnergyJ = %g J, Result.EnergyJ = %g J", sumEnergy, res.EnergyJ)
	}
	if sumRequests != res.Requests {
		a.fail(-1, "run-requests", "sum disk Requests = %d, Result.Requests = %d", sumRequests, res.Requests)
	}
	// Closed-loop wait equals the disk sum; open-loop replay adds FIFO
	// queueing on top, so the disk sum is a lower bound.
	if sumWait > res.TotalWaitMS+auditTol*math.Max(1, sumWait) {
		a.fail(-1, "run-wait", "sum disk WaitMS = %g ms exceeds TotalWaitMS = %g ms", sumWait, res.TotalWaitMS)
	}
	// Idle periods are forward-running spans.
	for d := range res.Idles {
		for i, ip := range res.Idles[d] {
			if ip.LenMS < -auditTol || ip.StartMS < -auditTol {
				a.fail(d, "idle-period", "idle period %d is [%g, +%g] ms", i, ip.StartMS, ip.LenMS)
				break
			}
		}
	}
	for d := range res.Timelines {
		if d < len(res.Disks) {
			a.auditTimeline(d, res.Timelines[d], res.ExecMS, res.Disks[d].EnergyJ)
		}
	}
	if len(a.viol) == 0 {
		return nil
	}
	return &AuditError{Program: res.Program, Scheme: res.Scheme, Violations: a.viol}
}

func (a *auditor) auditNonNegative(d int, s *DiskStats) {
	checks := []struct {
		name string
		v    float64
	}{
		{"EnergyJ", s.EnergyJ}, {"ActiveMS", s.ActiveMS}, {"IdleMS", s.IdleMS},
		{"StandbyMS", s.StandbyMS}, {"TransitionMS", s.TransitionMS},
		{"ActiveEnergyJ", s.ActiveEnergyJ}, {"IdleEnergyJ", s.IdleEnergyJ},
		{"StandbyEnergyJ", s.StandbyEnergyJ}, {"TransitionEnergyJ", s.TransitionEnergyJ},
		{"WaitMS", s.WaitMS}, {"DegradedExtraMS", s.DegradedExtraMS},
		{"Requests", float64(s.Requests)}, {"SpinDowns", float64(s.SpinDowns)},
		{"SpinUps", float64(s.SpinUps)}, {"RPMShifts", float64(s.RPMShifts)},
		{"SpinUpFailures", float64(s.SpinUpFailures)}, {"SpinUpRetries", float64(s.SpinUpRetries)},
		{"SpinUpTimeouts", float64(s.SpinUpTimeouts)}, {"Fallbacks", float64(s.Fallbacks)},
		{"RemapHits", float64(s.RemapHits)}, {"DegradedHits", float64(s.DegradedHits)},
	}
	for _, c := range checks {
		if c.v < 0 {
			a.fail(d, "non-negative", "%s = %g", c.name, c.v)
		}
	}
	for rpm, ms := range s.RPMResidencyMS {
		if ms < 0 {
			a.fail(d, "non-negative", "RPMResidencyMS[%d] = %g", rpm, ms)
		}
	}
}

func (a *auditor) auditFaultCounters(d int, s *DiskStats, faultsOn bool) {
	if !faultsOn {
		if s.SpinUpFailures != 0 || s.SpinUpRetries != 0 || s.SpinUpTimeouts != 0 ||
			s.Fallbacks != 0 || s.RemapHits != 0 || s.DegradedHits != 0 || s.DegradedExtraMS != 0 {
			a.fail(d, "fault-free", "fault counters nonzero without a fault plan: failures=%d retries=%d timeouts=%d fallbacks=%d remaps=%d degraded=%d extra=%gms",
				s.SpinUpFailures, s.SpinUpRetries, s.SpinUpTimeouts, s.Fallbacks, s.RemapHits, s.DegradedHits, s.DegradedExtraMS)
		}
		return
	}
	// Every retry backs off after a failed attempt, and every timeout
	// abandons a cascade that failed at least once.
	if s.SpinUpRetries > s.SpinUpFailures {
		a.fail(d, "fault-counters", "SpinUpRetries = %d exceeds SpinUpFailures = %d", s.SpinUpRetries, s.SpinUpFailures)
	}
	if s.SpinUpTimeouts > s.SpinUpFailures {
		a.fail(d, "fault-counters", "SpinUpTimeouts = %d exceeds SpinUpFailures = %d", s.SpinUpTimeouts, s.SpinUpFailures)
	}
	if s.DegradedHits == 0 && s.DegradedExtraMS != 0 {
		a.fail(d, "fault-counters", "DegradedExtraMS = %g ms with zero DegradedHits", s.DegradedExtraMS)
	}
}

// legalNext is the disk state machine's allowed-successor table for
// *observed* timeline transitions. Zero-length states are elided from
// the timeline (record drops empty segments), so the table includes
// one-step shortcuts across an elided state: spindown->spinup skips a
// zero-length standby, spinup->spinup separates two back-to-back
// cascades, rpmshift->spindown skips a zero-length spinning gap.
// Same-state successions (idle->service, shift->shift) are always
// legal: adjacent segments merge only when RPM, power, and the active
// flag all match.
var legalNext = map[Status][]Status{
	StSpinning: {StSpinning, StDown, StShift},
	StDown:     {StStandby, StUp},
	StStandby:  {StUp},
	StUp:       {StSpinning, StStandby, StUp},
	StShift:    {StSpinning, StShift, StDown},
}

func (a *auditor) auditTimeline(d int, tl []Segment, execMS, energyJ float64) {
	if len(tl) == 0 {
		if execMS > auditTol {
			a.fail(d, "timeline-coverage", "empty timeline for ExecMS = %g ms", execMS)
		}
		return
	}
	if !auditClose(tl[0].StartMS, 0) {
		a.fail(d, "timeline-coverage", "first segment starts at %g ms, want 0", tl[0].StartMS)
	}
	if !auditClose(tl[len(tl)-1].EndMS, execMS) {
		a.fail(d, "timeline-coverage", "last segment ends at %g ms, ExecMS = %g ms", tl[len(tl)-1].EndMS, execMS)
	}
	integral := 0.0
	for i := range tl {
		seg := &tl[i]
		if seg.EndMS <= seg.StartMS {
			a.fail(d, "timeline-order", "segment %d is empty or reversed: [%g, %g]", i, seg.StartMS, seg.EndMS)
		}
		if seg.PowerW < 0 {
			a.fail(d, "timeline-power", "segment %d has negative power %g W", i, seg.PowerW)
		}
		if seg.Active && seg.Stat != StSpinning {
			a.fail(d, "timeline-active", "segment %d active in state %s", i, seg.Stat)
		}
		integral += seg.PowerW * (seg.EndMS - seg.StartMS) / 1e3
		if i == 0 {
			continue
		}
		prev := &tl[i-1]
		if !auditClose(prev.EndMS, seg.StartMS) {
			a.fail(d, "timeline-contiguity", "gap between segment %d end %g ms and segment %d start %g ms", i-1, prev.EndMS, i, seg.StartMS)
		}
		if !transitionLegal(prev.Stat, seg.Stat) {
			a.fail(d, "transition-legality", "segment %d: %s -> %s", i, prev.Stat, seg.Stat)
		}
	}
	// The timeline records the same piecewise-constant power the energy
	// accumulators integrate, so the two must agree exactly. Energy
	// charged twice to the stats but once to the timeline (or vice
	// versa) — e.g. a double-charged fault cascade — lands here.
	if !auditClose(integral, energyJ) {
		a.fail(d, "timeline-energy", "timeline power integral = %g J, EnergyJ = %g J", integral, energyJ)
	}
}

func transitionLegal(from, to Status) bool {
	if from == to {
		return true
	}
	for _, s := range legalNext[from] {
		if s == to {
			return true
		}
	}
	return false
}

// powerEnvelope returns the min and max of a per-RPM power curve over
// the disk's level grid.
func powerEnvelope(p disk.Params, powerAt func(int) float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < p.NumLevels(); i++ {
		w := powerAt(p.MinRPM + i*p.RPMStep)
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 0
	}
	return lo, hi
}

// withinEnvelope checks lo <= v <= hi with the audit tolerance.
func withinEnvelope(v, lo, hi float64) bool {
	tol := auditTol * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	return v >= lo-tol && v <= hi+tol
}
