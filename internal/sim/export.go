package sim

import (
	"fmt"
	"io"

	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
)

// ChromeTraceEvents converts a recorded run into Chrome trace-event /
// Perfetto JSON events. The run must have been executed with
// Config.RecordTimeline set; each disk becomes one thread (tid) of a
// single process named after the program and scheme. Every timeline
// segment becomes a complete span carrying its RPM and power draw,
// transition starts additionally emit instant power-op markers, and
// per-disk RPM and power counters track the spindle over time.
func ChromeTraceEvents(res *Result) ([]obs.TraceEvent, error) {
	if res.Timelines == nil {
		return nil, fmt.Errorf("sim: no timelines recorded; run with Config.RecordTimeline")
	}
	name := res.Program
	if res.Scheme != "" {
		name += "/" + res.Scheme
	}
	events := []obs.TraceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": name},
	}}
	for d := range res.Timelines {
		events = append(events, obs.TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: d,
			Args: map[string]any{"name": fmt.Sprintf("disk%d", d)},
		})
	}
	for d, segs := range res.Timelines {
		for _, sg := range segs {
			label := sg.Stat.String()
			if sg.Active {
				label = "service"
			} else if sg.Stat == StSpinning {
				label = "idle"
			}
			ts, dur := sg.StartMS*1e3, (sg.EndMS-sg.StartMS)*1e3
			events = append(events, obs.TraceEvent{
				Name: label, Cat: "disk", Ph: "X", TS: ts, Dur: dur, Pid: 0, Tid: d,
				Args: map[string]any{"rpm": sg.RPM, "power_w": sg.PowerW},
			})
			if !sg.Active {
				// Transition segments mark where a power op took
				// effect; surface them as instant events so they are
				// findable in the Perfetto timeline.
				switch sg.Stat {
				case StDown:
					events = append(events, opInstant("spin_down", ts, d, 0))
				case StUp:
					events = append(events, opInstant("spin_up", ts, d, sg.RPM))
				case StShift:
					events = append(events, opInstant("set_rpm", ts, d, sg.RPM))
				}
			}
			events = append(events,
				obs.TraceEvent{Name: fmt.Sprintf("disk%d rpm", d), Ph: "C", TS: ts, Pid: 0, Tid: d,
					Args: map[string]any{"rpm": sg.RPM}},
				obs.TraceEvent{Name: fmt.Sprintf("disk%d power_w", d), Ph: "C", TS: ts, Pid: 0, Tid: d,
					Args: map[string]any{"w": sg.PowerW}},
			)
		}
	}
	return events, nil
}

func opInstant(name string, ts float64, d, rpm int) obs.TraceEvent {
	ev := obs.TraceEvent{Name: name, Cat: "powerop", Ph: "i", TS: ts, Pid: 0, Tid: d, S: "t"}
	if rpm > 0 {
		ev.Args = map[string]any{"rpm": rpm}
	}
	return ev
}

// ChromeTraceEventsAnnotated is ChromeTraceEvents with the run's
// decision-provenance log merged in: every logged decision, spin-up
// miss, fault, and batching bail-out becomes an instant event on its
// disk's track, carrying the provenance as args (trigger, predicted
// and measured idle, break-even, energy regret, fault detail).
// Suite-level events with no disk (worker-pool retries, journal
// lifecycle) are skipped — they have no place on a disk timeline.
// The base exporter's output is unchanged; annotation only appends.
func ChromeTraceEventsAnnotated(res *Result, log []events.Event) ([]obs.TraceEvent, error) {
	out, err := ChromeTraceEvents(res)
	if err != nil {
		return nil, err
	}
	for i := range log {
		ev := &log[i]
		if ev.Disk < 0 || ev.Disk >= len(res.Timelines) {
			continue
		}
		cat := "fault"
		if events.IsDecision(ev.Kind) {
			cat = "decision"
		} else if ev.Kind == events.KindSpinupMiss {
			cat = "miss"
		} else if ev.Kind == events.KindBailout {
			cat = "bailout"
		}
		args := map[string]any{}
		if ev.Policy != "" {
			args["policy"] = ev.Policy
		}
		if ev.Trigger != "" {
			args["trigger"] = ev.Trigger
		}
		if ev.TargetRPM != 0 {
			args["rpm"] = ev.TargetRPM
		}
		if ev.PredictedIdleMS != 0 {
			args["predicted_idle_ms"] = ev.PredictedIdleMS
		}
		if ev.BreakEvenMS != 0 {
			args["break_even_ms"] = ev.BreakEvenMS
		}
		if ev.MeasuredIdleMS != 0 {
			args["measured_idle_ms"] = ev.MeasuredIdleMS
		}
		if ev.ActualJ != 0 {
			args["actual_j"] = ev.ActualJ
		}
		if ev.OracleJ != 0 {
			args["oracle_j"] = ev.OracleJ
		}
		if ev.RegretJ != 0 {
			args["regret_j"] = ev.RegretJ
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, obs.TraceEvent{
			Name: ev.Kind, Cat: cat, Ph: "i", TS: ev.TMS * 1e3,
			Pid: 0, Tid: ev.Disk, S: "t", Args: args,
		})
	}
	return out, nil
}

// WriteChromeTrace writes the run's recorded timelines as a Chrome
// trace-event JSON file that loads in Perfetto (ui.perfetto.dev) or
// chrome://tracing. See ChromeTraceEvents for the event model.
func WriteChromeTrace(w io.Writer, res *Result) error {
	events, err := ChromeTraceEvents(res)
	if err != nil {
		return err
	}
	return obs.WriteChromeTrace(w, events)
}

// WriteChromeTraceAnnotated is WriteChromeTrace with the run's
// decision-provenance log merged in (see ChromeTraceEventsAnnotated).
func WriteChromeTraceAnnotated(w io.Writer, res *Result, log []events.Event) error {
	evs, err := ChromeTraceEventsAnnotated(res, log)
	if err != nil {
		return err
	}
	return obs.WriteChromeTrace(w, evs)
}
