package sim

import (
	"fmt"
	"io"

	"sdpm/internal/obs"
)

// ChromeTraceEvents converts a recorded run into Chrome trace-event /
// Perfetto JSON events. The run must have been executed with
// Config.RecordTimeline set; each disk becomes one thread (tid) of a
// single process named after the program and scheme. Every timeline
// segment becomes a complete span carrying its RPM and power draw,
// transition starts additionally emit instant power-op markers, and
// per-disk RPM and power counters track the spindle over time.
func ChromeTraceEvents(res *Result) ([]obs.TraceEvent, error) {
	if res.Timelines == nil {
		return nil, fmt.Errorf("sim: no timelines recorded; run with Config.RecordTimeline")
	}
	name := res.Program
	if res.Scheme != "" {
		name += "/" + res.Scheme
	}
	events := []obs.TraceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": name},
	}}
	for d := range res.Timelines {
		events = append(events, obs.TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: d,
			Args: map[string]any{"name": fmt.Sprintf("disk%d", d)},
		})
	}
	for d, segs := range res.Timelines {
		for _, sg := range segs {
			label := sg.Stat.String()
			if sg.Active {
				label = "service"
			} else if sg.Stat == StSpinning {
				label = "idle"
			}
			ts, dur := sg.StartMS*1e3, (sg.EndMS-sg.StartMS)*1e3
			events = append(events, obs.TraceEvent{
				Name: label, Cat: "disk", Ph: "X", TS: ts, Dur: dur, Pid: 0, Tid: d,
				Args: map[string]any{"rpm": sg.RPM, "power_w": sg.PowerW},
			})
			if !sg.Active {
				// Transition segments mark where a power op took
				// effect; surface them as instant events so they are
				// findable in the Perfetto timeline.
				switch sg.Stat {
				case StDown:
					events = append(events, opInstant("spin_down", ts, d, 0))
				case StUp:
					events = append(events, opInstant("spin_up", ts, d, sg.RPM))
				case StShift:
					events = append(events, opInstant("set_rpm", ts, d, sg.RPM))
				}
			}
			events = append(events,
				obs.TraceEvent{Name: fmt.Sprintf("disk%d rpm", d), Ph: "C", TS: ts, Pid: 0, Tid: d,
					Args: map[string]any{"rpm": sg.RPM}},
				obs.TraceEvent{Name: fmt.Sprintf("disk%d power_w", d), Ph: "C", TS: ts, Pid: 0, Tid: d,
					Args: map[string]any{"w": sg.PowerW}},
			)
		}
	}
	return events, nil
}

func opInstant(name string, ts float64, d, rpm int) obs.TraceEvent {
	ev := obs.TraceEvent{Name: name, Cat: "powerop", Ph: "i", TS: ts, Pid: 0, Tid: d, S: "t"}
	if rpm > 0 {
		ev.Args = map[string]any{"rpm": rpm}
	}
	return ev
}

// WriteChromeTrace writes the run's recorded timelines as a Chrome
// trace-event JSON file that loads in Perfetto (ui.perfetto.dev) or
// chrome://tracing. See ChromeTraceEvents for the event model.
func WriteChromeTrace(w io.Writer, res *Result) error {
	events, err := ChromeTraceEvents(res)
	if err != nil {
		return err
	}
	return obs.WriteChromeTrace(w, events)
}
