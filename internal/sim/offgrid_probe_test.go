package sim

import (
	"fmt"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/trace"
)

func TestOffGridRPMBatchProbe(t *testing.T) {
	tr := &trace.Trace{NumDisks: 1}
	tr.Events = append(tr.Events, trace.Event{Kind: trace.EvPowerOp,
		Op: trace.PowerOp{Kind: trace.OpSetRPM, Disk: 0, RPM: 7000}})
	for i := 0; i < 8; i++ {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.EvRequest, GapMS: 1000,
			Req: trace.Request{ArrivalMS: float64(i) * 1000, Disk: 0, Block: int64(i), Bytes: 4096}})
	}
	comp := trace.Compile(tr)
	fmt.Printf("runs: %+v\n", comp.Runs)
	p := disk.DefaultParams()
	fmt.Printf("LevelIndex(7000)=%d\n", p.LevelIndex(7000))
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	fmt.Printf("energy=%v rpm-resid=%v\n", res.Stats[0].EnergyJ, res.Stats[0].RPMResidencyMS)
}
