package sim

import (
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/trace"
)

// TestOffGridRPMBatchProbe pins down the batched executor's handling
// of an RPM level outside the disk's grid: an embedded set_rpm to an
// off-grid speed must clamp to a real level, and the run's residency
// must land on the grid (not in the overflow map).
func TestOffGridRPMBatchProbe(t *testing.T) {
	tr := &trace.Trace{NumDisks: 1}
	tr.Events = append(tr.Events, trace.Event{Kind: trace.EvPowerOp,
		Op: trace.PowerOp{Kind: trace.OpSetRPM, Disk: 0, RPM: 7000}})
	for i := 0; i < 8; i++ {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.EvRequest, GapMS: 1000,
			Req: trace.Request{ArrivalMS: float64(i) * 1000, Disk: 0, Block: int64(i), Bytes: 4096}})
	}
	comp := trace.Compile(tr)
	if len(comp.Runs) == 0 {
		t.Fatal("trace compiled to zero runs")
	}
	p := disk.DefaultParams()
	res, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Disks[0].EnergyJ <= 0 {
		t.Fatalf("energy = %v, want > 0", res.Disks[0].EnergyJ)
	}
	for rpm := range res.Disks[0].RPMResidencyMS {
		if p.LevelIndex(rpm) < 0 {
			t.Errorf("residency recorded at off-grid rpm %d (SetRPMAt clamp failed)", rpm)
		}
	}
}
