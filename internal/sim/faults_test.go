package sim

import (
	"errors"
	"math"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/trace"
)

func plan(t *testing.T, seed int64, nd int, cfg faults.Config) *faults.Plan {
	t.Helper()
	p, err := faults.New(seed, nd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestZeroPlanMatchesNoPlan: attaching a plan whose configuration
// injects nothing must leave every figure bit-identical to running
// with no plan at all — the fault-free baseline is not perturbed.
func TestZeroPlanMatchesNoPlan(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(2,
		op(0, 0, trace.OpSpinDown, 0),
		req(20000, 0, 65536),
		req(10, 1, 32768),
		req(500, 0, 65536))
	clean, err := Run(tr, Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(tr, Config{Disk: p, Faults: plan(t, 1, 2, faults.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if clean.EnergyJ != faulted.EnergyJ || clean.ExecMS != faulted.ExecMS || clean.TotalWaitMS != faulted.TotalWaitMS {
		t.Fatalf("zero-config plan changed the run: (%v,%v,%v) vs (%v,%v,%v)",
			clean.EnergyJ, clean.ExecMS, clean.TotalWaitMS,
			faulted.EnergyJ, faulted.ExecMS, faulted.TotalWaitMS)
	}
}

// TestOnDemandCascadeEnergy: at a 100% spin-up failure probability the
// on-demand path is forced to succeed after MaxRetries failures, and
// the cascade's time and energy are charged exactly — attempts at
// spin-up cost, backoffs at standby power.
func TestOnDemandCascadeEnergy(t *testing.T) {
	p := disk.DefaultParams()
	fc := faults.Config{SpinUpFailProb: 1, MaxRetries: 2, RetryBackoffMS: 100}
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		req(20000, 0, 65536))
	res, err := Run(tr, Config{Disk: p, Faults: plan(t, 7, 1, fc)})
	if err != nil {
		t.Fatal(err)
	}
	// Three attempts (two drawn failures, then the forced success),
	// separated by backoffs of 100 and 200 ms.
	const backoffMS = 100 + 200
	attempts := 3.0
	cascadeMS := attempts*p.SpinUpMS + backoffMS
	cascadeJ := attempts*p.SpinUpJ + p.StandbyW*backoffMS/1e3
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	wantExec := 20000 + cascadeMS + svc
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	wantE := p.SpinDownJ + p.StandbyW*(20000-p.SpinDownMS)/1e3 + cascadeJ + p.ActiveW*svc/1e3
	if math.Abs(res.EnergyJ-wantE) > 1e-6 {
		t.Errorf("EnergyJ = %g, want %g", res.EnergyJ, wantE)
	}
	st := res.Disks[0]
	if st.SpinUpFailures != 2 || st.SpinUpRetries != 2 || st.SpinUpTimeouts != 0 || st.Fallbacks != 0 {
		t.Errorf("counters = %d failures, %d retries, %d timeouts, %d fallbacks",
			st.SpinUpFailures, st.SpinUpRetries, st.SpinUpTimeouts, st.Fallbacks)
	}
}

// TestPreActivationGiveUpFallsBack: a pre-activation spin-up that
// exhausts its retries leaves the disk in standby; the next request
// counts a fallback and succeeds on demand. All cascade energy is
// conserved.
func TestPreActivationGiveUpFallsBack(t *testing.T) {
	p := disk.DefaultParams()
	fc := faults.Config{SpinUpFailProb: 1, MaxRetries: 1, RetryBackoffMS: 500}
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		op(20000, 0, trace.OpSpinUp, 0),
		req(30000, 0, 65536))
	res, err := Run(tr, Config{Disk: p, Faults: plan(t, 7, 1, fc)})
	if err != nil {
		t.Fatal(err)
	}
	// Both cascades run two attempts split by one 500 ms backoff: the
	// pre-activation one fails both draws and gives up; the on-demand
	// one fails once and is then forced to succeed.
	cascadeMS := 2*p.SpinUpMS + 500
	cascadeJ := 2*p.SpinUpJ + p.StandbyW*500/1e3
	svc := p.ServiceTimeMS(p.MaxRPM, 65536)
	wantExec := 50000 + cascadeMS + svc
	if math.Abs(res.ExecMS-wantExec) > 1e-6 {
		t.Errorf("ExecMS = %g, want %g", res.ExecMS, wantExec)
	}
	standbyMS := (20000 - p.SpinDownMS) + (50000 - (20000 + cascadeMS))
	wantE := p.SpinDownJ + p.StandbyW*standbyMS/1e3 + 2*cascadeJ + p.ActiveW*svc/1e3
	if math.Abs(res.EnergyJ-wantE) > 1e-6 {
		t.Errorf("EnergyJ = %g, want %g", res.EnergyJ, wantE)
	}
	st := res.Disks[0]
	if st.SpinUps != 2 || st.SpinUpFailures != 3 || st.SpinUpRetries != 2 || st.Fallbacks != 1 {
		t.Errorf("counters = %d spin-ups, %d failures, %d retries, %d fallbacks",
			st.SpinUps, st.SpinUpFailures, st.SpinUpRetries, st.Fallbacks)
	}
}

// TestSpinUpTimeoutCapsCascade: a pre-activation cascade whose next
// retry would blow the timeout gives up early and counts a timeout.
func TestSpinUpTimeoutCapsCascade(t *testing.T) {
	p := disk.DefaultParams()
	// First attempt (10900 ms) + backoff (300) + second attempt would
	// exceed 12000 ms, so the cascade times out after one attempt.
	fc := faults.Config{SpinUpFailProb: 1, MaxRetries: 5, RetryBackoffMS: 300, SpinUpTimeoutMS: 12000}
	tr := mkTrace(1,
		op(0, 0, trace.OpSpinDown, 0),
		op(20000, 0, trace.OpSpinUp, 0),
		req(40000, 0, 65536))
	res, err := Run(tr, Config{Disk: p, Faults: plan(t, 7, 1, fc)})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Disks[0]
	if st.SpinUpTimeouts != 1 || st.Fallbacks != 1 {
		t.Errorf("timeouts = %d, fallbacks = %d; want 1, 1", st.SpinUpTimeouts, st.Fallbacks)
	}
	// The request still completed (no-deadlock guarantee).
	if res.Requests != 1 {
		t.Errorf("requests = %d", res.Requests)
	}
	total := st.ActiveMS + st.IdleMS + st.StandbyMS + st.TransitionMS
	if math.Abs(total-res.ExecMS) > 1e-6 {
		t.Errorf("time components %g != exec %g", total, res.ExecMS)
	}
}

// TestRemapPenaltyAvgSeek: under the average-seek model a remapped
// block costs exactly the configured flat penalty.
func TestRemapPenaltyAvgSeek(t *testing.T) {
	p := disk.DefaultParams()
	clean := NewMachine(1, p)
	end0, err := clean.ServiceBlock(0, 0, 65536, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(1, p)
	m.AttachFaults(plan(t, 7, 1, faults.Config{BadSectorFrac: 1, RemapPenaltyMS: 4}))
	end1, err := m.ServiceBlock(0, 0, 65536, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((end1-end0)-4) > 1e-9 {
		t.Errorf("remap penalty = %g ms, want 4", end1-end0)
	}
	stats, _ := m.Finish(end1)
	if stats[0].RemapHits != 1 {
		t.Errorf("remap hits = %d", stats[0].RemapHits)
	}
}

// TestRemapDistanceSeekTravelsToSpareArea: under the distance-aware
// model the head genuinely seeks to the spare area at the end of the
// platter.
func TestRemapDistanceSeekTravelsToSpareArea(t *testing.T) {
	p := disk.DefaultParams()
	pl := plan(t, 7, 1, faults.Config{BadSectorFrac: 1})
	maxBlocks := p.CapacityBlocks()
	m := NewMachine(1, p)
	m.EnableDistanceSeek(maxBlocks)
	m.AttachFaults(pl)
	end, err := m.ServiceBlock(0, 0, 65536, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := pl.RemapTarget(0, maxBlocks)
	want := p.ServiceTimeSeekMS(p.MaxRPM, 65536, p.SeekTimeMS(target, maxBlocks))
	if math.Abs(end-want) > 1e-9 {
		t.Errorf("end = %g, want %g (seek to spare block %d)", end, want, target)
	}
}

// TestDegradedWindowStretchesTransfer: inside a degradation window the
// media-transfer component is multiplied by the slowdown factor.
func TestDegradedWindowStretchesTransfer(t *testing.T) {
	p := disk.DefaultParams()
	fc := faults.Config{DegradedProb: 1, DegradedPeriodMS: 1e6, DegradedDurMS: 1e6, DegradedFactor: 3}
	m := NewMachine(1, p)
	m.AttachFaults(plan(t, 7, 1, fc))
	end, err := m.Service(0, 0, 65536)
	if err != nil {
		t.Fatal(err)
	}
	want := p.ServiceTimeMS(p.MaxRPM, 65536) + 2*p.TransferTimeMS(p.MaxRPM, 65536)
	if math.Abs(end-want) > 1e-9 {
		t.Errorf("degraded service = %g, want %g", end, want)
	}
	stats, _ := m.Finish(end)
	if stats[0].DegradedHits != 1 || math.Abs(stats[0].DegradedExtraMS-2*p.TransferTimeMS(p.MaxRPM, 65536)) > 1e-9 {
		t.Errorf("degraded hits = %d, extra = %g", stats[0].DegradedHits, stats[0].DegradedExtraMS)
	}
}

// TestNotSpinningErrorTyped: the invariant guard reports a typed error
// instead of panicking when a disk is in an unservable state.
func TestNotSpinningErrorTyped(t *testing.T) {
	p := disk.DefaultParams()
	m := NewMachine(1, p)
	// Corrupt the state machine: an already-expired spin-down that was
	// never resolved cannot reach the service path legitimately.
	m.disks[0].status = StDown
	m.disks[0].statusUntil = 0
	_, err := m.Service(0, 0, 65536)
	var nse *NotSpinningError
	if !errors.As(err, &nse) {
		t.Fatalf("err = %v, want *NotSpinningError", err)
	}
	if nse.Disk != 0 || nse.Status != StDown {
		t.Errorf("error payload = disk %d status %v", nse.Disk, nse.Status)
	}
}

// corruptPolicy breaks a disk's state machine right before a request
// is serviced, forcing the invariant guard in ServiceBlock.
type corruptPolicy struct{}

func (corruptPolicy) Name() string { return "corrupt" }
func (corruptPolicy) BeforeService(m *Machine, d int, t float64) {
	m.advance(d, t)
	m.disks[d].status = StDown
	m.disks[d].statusUntil = t
}
func (corruptPolicy) AfterService(*Machine, int, float64, float64) {}
func (corruptPolicy) Finish(*Machine, float64)                     {}

// TestNotSpinningErrorThroughRun: the typed error propagates out of
// the public closed-loop entry point instead of crashing the run.
func TestNotSpinningErrorThroughRun(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(1, req(10, 0, 65536))
	_, err := Run(tr, Config{Disk: p, Policy: corruptPolicy{}, IgnorePowerOps: true})
	var nse *NotSpinningError
	if !errors.As(err, &nse) {
		t.Fatalf("Run returned %v, want *NotSpinningError", err)
	}
}

// TestFaultPlanDiskMismatch: a plan derived for fewer disks than the
// trace uses is rejected up front.
func TestFaultPlanDiskMismatch(t *testing.T) {
	p := disk.DefaultParams()
	tr := mkTrace(4, req(10, 3, 65536))
	pl := plan(t, 1, 2, faults.Config{SpinUpFailProb: 0.5})
	if _, err := Run(tr, Config{Disk: p, Faults: pl}); err == nil {
		t.Fatal("undersized fault plan accepted")
	}
	if _, err := RunOpenLoop(tr, Config{Disk: p, Faults: pl, Policy: corruptPolicy{}}); err == nil {
		t.Fatal("undersized fault plan accepted by open loop")
	}
}

// TestFaultDeterminism: two runs of the same trace under the same
// fault plan produce bit-identical results.
func TestFaultDeterminism(t *testing.T) {
	p := disk.DefaultParams()
	fc, _ := faults.Preset("heavy")
	tr := mkTrace(2,
		op(0, 0, trace.OpSpinDown, 0),
		req(20000, 0, 65536),
		req(100, 1, 32768),
		op(10, 1, trace.OpSpinDown, 0),
		req(30000, 1, 65536))
	a, err := Run(tr, Config{Disk: p, Faults: plan(t, 42, 2, fc)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Config{Disk: p, Faults: plan(t, 42, 2, fc)})
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.ExecMS != b.ExecMS || a.TotalWaitMS != b.TotalWaitMS {
		t.Fatalf("identical plans diverged: (%v,%v) vs (%v,%v)", a.EnergyJ, a.ExecMS, b.EnergyJ, b.ExecMS)
	}
	// Per-disk time components still account for the whole run.
	for d, st := range a.Disks {
		total := st.ActiveMS + st.IdleMS + st.StandbyMS + st.TransitionMS
		if math.Abs(total-a.ExecMS) > 1e-6 {
			t.Errorf("disk %d time sum %g != exec %g under faults", d, total, a.ExecMS)
		}
	}
}
