package sim_test

// Tests for the decision-provenance event layer threaded through the
// simulator: provenance contents, regret attribution, cross-checks
// against the metrics collector, bail-out reasons, and the alloc
// guarantee with a log attached.

import (
	"math/rand"
	"reflect"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// idleTrace builds a single-disk trace of n requests separated by a
// fixed gap.
func idleTrace(n int, gapMS float64) *trace.Trace {
	tr := &trace.Trace{Program: "evt", NumDisks: 1}
	arrival := 0.0
	for i := 0; i < n; i++ {
		arrival += gapMS
		tr.Events = append(tr.Events, trace.Event{
			Kind: trace.EvRequest, GapMS: gapMS,
			Req: trace.Request{ArrivalMS: arrival, Disk: 0, Block: int64(i * 128), Bytes: 65536},
		})
	}
	return tr
}

// TestEventsTPMProvenanceAndRegret pins the full decision lifecycle
// for reactive TPM over one long idle period: the spin-down carries
// its trigger and break-even input, the on-demand spin-up is
// demand-triggered, the period resolves with the measured idle, and
// only the first decision carries the energy attribution.
func TestEventsTPMProvenanceAndRegret(t *testing.T) {
	p := disk.DefaultParams()
	const gap = 30000.0
	tr := idleTrace(3, gap)
	log := events.NewLog(0)
	cfg := sim.Config{Disk: p, Policy: policy.NewTPM(p, 0), Events: log, DisableBatch: true}
	res, err := sim.Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := log.Events()
	var downs, ups, misses []events.Event
	for _, e := range evs {
		switch e.Kind {
		case events.KindSpinDown:
			downs = append(downs, e)
		case events.KindSpinUp:
			ups = append(ups, e)
		case events.KindSpinupMiss:
			misses = append(misses, e)
		}
	}
	// All three gaps exceed the threshold (arrivals start at t=gap, so
	// the leading idle counts too); the trailing idle is zero (the
	// trace ends at the last completion), so Finish adds no spin-down.
	if len(downs) != 3 || len(ups) != 3 || len(misses) != 3 {
		t.Fatalf("downs/ups/misses = %d/%d/%d, want 3/3/3", len(downs), len(ups), len(misses))
	}
	be := p.TPMBreakEvenMS()
	for _, d := range downs {
		if d.Trigger != events.TrigThreshold {
			t.Errorf("spin-down trigger = %q, want threshold", d.Trigger)
		}
		if d.BreakEvenMS != be {
			t.Errorf("spin-down break-even = %v, want %v", d.BreakEvenMS, be)
		}
		if d.Policy != "TPM" || d.Program != "evt" {
			t.Errorf("spin-down labels = %q/%q", d.Policy, d.Program)
		}
		if d.MeasuredIdleMS != gap {
			t.Errorf("spin-down measured idle = %v, want %v", d.MeasuredIdleMS, gap)
		}
		// First decision of its period: full energy attribution. TPM
		// idles through the threshold before dipping, so it must show
		// positive regret against the oracle.
		oracle := p.IdleEnergyJ(gap)
		if s := p.StandbyEnergyJ(gap); s < oracle {
			oracle = s
		}
		if _, dip := p.BestRPMForIdle(gap); dip < oracle {
			oracle = dip
		}
		if d.OracleJ != oracle {
			t.Errorf("spin-down oracle = %v, want %v", d.OracleJ, oracle)
		}
		if d.ActualJ <= d.OracleJ || d.RegretJ != d.ActualJ-d.OracleJ {
			t.Errorf("spin-down attribution: actual %v oracle %v regret %v", d.ActualJ, d.OracleJ, d.RegretJ)
		}
	}
	for _, u := range ups {
		if u.Trigger != events.TrigDemand {
			t.Errorf("spin-up trigger = %q, want demand", u.Trigger)
		}
		// Not the first decision of the period: measured idle only.
		if u.ActualJ != 0 || u.RegretJ != 0 || u.MeasuredIdleMS != gap {
			t.Errorf("spin-up attribution = %+v", u)
		}
		// The window extends past the idle gap by the spin-up wait.
		if u.WindowMS <= u.MeasuredIdleMS {
			t.Errorf("spin-up window %v not beyond idle %v", u.WindowMS, u.MeasuredIdleMS)
		}
	}
	for _, ms := range misses {
		if ms.Detail != "ondemand" {
			t.Errorf("miss detail = %q, want ondemand", ms.Detail)
		}
		if ms.WindowMS != p.SpinUpMS {
			t.Errorf("miss wait = %v, want %v", ms.WindowMS, p.SpinUpMS)
		}
	}
	// The per-period actual energies sum (with the periods the policy
	// left alone) to no more than the run total; sanity-check the
	// attribution is in Joules of this run's scale.
	var attributed float64
	for _, d := range downs {
		attributed += d.ActualJ
	}
	if attributed <= 0 || attributed >= res.EnergyJ {
		t.Errorf("attributed energy %v outside (0, total %v)", attributed, res.EnergyJ)
	}
}

// TestEventsMatchCollector is the acceptance cross-check: spin-up
// misprediction counts (and fault lifecycle counts) derived from the
// event log alone must equal the metrics collector's counters.
func TestEventsMatchCollector(t *testing.T) {
	p := disk.DefaultParams()
	spec, err := faults.ParseSpec("moderate")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		nDisks := 1 + r.Intn(3)
		tr := randomBatchTrace(r, nDisks)
		plan, err := faults.New(seed, nDisks, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []string{"tpm", "drpm", "itpm"} {
			coll := obs.New()
			log := events.NewLog(1 << 16)
			cfg := sim.Config{
				Disk: p, Policy: diffPolicy(pol, p, nDisks),
				PowerCallOverheadMS: sim.DefaultPowerCallOverheadMS,
				Obs:                 coll, Events: log, Faults: plan,
			}
			if _, err := sim.Run(tr, cfg); err != nil {
				t.Fatal(err)
			}
			evs := log.Events()
			od, inf := events.MissCounts(evs)
			wantOD, wantInf := coll.SpinupMisses()
			if int64(od) != wantOD || int64(inf) != wantInf {
				t.Errorf("seed %d %s: event misses %d/%d, collector %d/%d", seed, pol, od, inf, wantOD, wantInf)
			}
			faultEvs := events.CountByDetail(evs, events.KindFault)
			for _, k := range []obs.FaultKind{0, 1, 2, 3, 4, 5} {
				if got, want := int64(faultEvs[k.String()]), coll.FaultCount(k); got != want {
					t.Errorf("seed %d %s: fault %s events %d, collector %d", seed, pol, k.String(), got, want)
				}
			}
			// Decision events match the power-op counters too.
			byKind := events.CountByKind(evs)
			for kind, op := range map[string]obs.PowerOpKind{
				events.KindSpinDown: obs.OpSpinDown,
				events.KindSpinUp:   obs.OpSpinUp,
				events.KindRPMShift: obs.OpSetRPM,
			} {
				if got, want := int64(byKind[kind]), coll.PowerOps(op); got != want {
					t.Errorf("seed %d %s: %s events %d, collector %d", seed, pol, kind, got, want)
				}
			}
		}
	}
}

// TestEventsBailoutReasons asserts the batched executor records why
// it dropped an event to the general path: a policy decision point
// inside a steady run, and a disk still in transition at run entry
// (here: an embedded spin-down right before a steady stretch).
func TestEventsBailoutReasons(t *testing.T) {
	p := disk.DefaultParams()

	t.Run("policy_decision", func(t *testing.T) {
		tr := &trace.Trace{Program: "bail", NumDisks: 1}
		arrival := 0.0
		add := func(gap float64) {
			arrival += gap
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.EvRequest, GapMS: gap,
				Req: trace.Request{ArrivalMS: arrival, Disk: 0, Bytes: 65536},
			})
		}
		for i := 0; i < 10; i++ {
			add(2)
		}
		add(30000) // TPM decision territory, inside the same compiled run
		for i := 0; i < 10; i++ {
			add(2)
		}
		comp := trace.Compile(tr)
		if len(comp.Runs) != 1 {
			t.Fatalf("compiled to %d runs, want 1", len(comp.Runs))
		}
		log := events.NewLog(0)
		cfg := sim.Config{Disk: p, Policy: policy.NewTPM(p, 0), Events: log, Compiled: comp}
		if _, err := sim.Run(tr, cfg); err != nil {
			t.Fatal(err)
		}
		bails := events.CountByDetail(log.Events(), events.KindBailout)
		if bails["policy_decision"] == 0 {
			t.Errorf("no policy_decision bail-out recorded: %v", bails)
		}
		if bails["unknown"] != 0 {
			t.Errorf("unclassified bail-outs: %v", bails)
		}
	})

	t.Run("disk_transition", func(t *testing.T) {
		tr := &trace.Trace{Program: "bail", NumDisks: 1}
		arrival := 0.0
		for i := 0; i < 10; i++ {
			arrival += 2
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.EvRequest, GapMS: 2,
				Req: trace.Request{ArrivalMS: arrival, Disk: 0, Bytes: 65536},
			})
		}
		// Compiler-inserted spin-down: the next steady run opens with
		// the disk in standby, forcing the first request through the
		// general path (on-demand spin-up).
		tr.Events = append(tr.Events, trace.Event{
			Kind: trace.EvPowerOp, GapMS: 0,
			Op: trace.PowerOp{Kind: trace.OpSpinDown, Disk: 0},
		})
		for i := 0; i < 10; i++ {
			arrival += 2
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.EvRequest, GapMS: 2,
				Req: trace.Request{ArrivalMS: arrival, Disk: 0, Bytes: 65536},
			})
		}
		comp := trace.Compile(tr)
		if len(comp.Runs) == 0 {
			t.Fatal("trace compiled to zero runs")
		}
		log := events.NewLog(0)
		cfg := sim.Config{Disk: p, Events: log, Compiled: comp}
		if _, err := sim.Run(tr, cfg); err != nil {
			t.Fatal(err)
		}
		bails := events.CountByDetail(log.Events(), events.KindBailout)
		if bails["disk_transition"] == 0 {
			t.Errorf("no disk_transition bail-out recorded: %v", bails)
		}
		if bails["unknown"] != 0 {
			t.Errorf("unclassified bail-outs: %v", bails)
		}
	})
}

// TestEventsResultUnperturbed: attaching a log must not change the
// Result on the general path either (the batched path is covered by
// TestBatchDifferential).
func TestEventsResultUnperturbed(t *testing.T) {
	p := disk.DefaultParams()
	tr := idleTrace(50, 4000)
	for _, pol := range []string{"base", "tpm", "itpm", "drpm", "idrpm"} {
		plain := sim.Config{Disk: p, Policy: diffPolicy(pol, p, 1), DisableBatch: true}
		traced := sim.Config{Disk: p, Policy: diffPolicy(pol, p, 1), DisableBatch: true, Events: events.NewLog(0)}
		a, err := sim.Run(tr, plain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(tr, traced)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("policy %s: event tracing perturbed the result", pol)
		}
	}
}

// TestEventsOpenLoop smoke-checks the open-loop executor's event
// wiring: decisions are labelled with the /open scheme suffix.
func TestEventsOpenLoop(t *testing.T) {
	p := disk.DefaultParams()
	tr := idleTrace(5, 20000)
	log := events.NewLog(0)
	cfg := sim.Config{Disk: p, Policy: policy.NewTPM(p, 0), Events: log}
	if _, err := sim.RunOpenLoop(tr, cfg); err != nil {
		t.Fatal(err)
	}
	evs := log.Events()
	if len(evs) == 0 {
		t.Fatal("open-loop run emitted no events")
	}
	for _, e := range evs {
		if e.Policy != "TPM/open" {
			t.Fatalf("open-loop event policy = %q, want TPM/open", e.Policy)
		}
	}
}

// TestRunAllocsAttachedEvents extends the alloc guard: a pre-warmed
// event log must add no per-request allocations, so runs of different
// lengths allocate identically with a log attached.
func TestRunAllocsAttachedEvents(t *testing.T) {
	log := events.NewLog(1 << 16)
	measure := func(nReqs int) float64 {
		tr := hotTrace(4, nReqs, 2.0)
		cfg := sim.Config{Disk: disk.DefaultParams(), Policy: policy.NewTPM(disk.DefaultParams(), 0), Events: log}
		run := func() {
			if _, err := sim.Run(tr, cfg); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm up outside the measured region
		return testing.AllocsPerRun(20, run)
	}
	small := measure(500)
	large := measure(4000)
	if large != small {
		t.Errorf("allocs grew with trace length under an attached event log: %.0f (500 reqs) vs %.0f (4000 reqs)", small, large)
	}
}
