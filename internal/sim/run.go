package sim

import (
	"fmt"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/trace"
)

// Policy is a reactive or oracle power-management policy. The
// compiler-managed schemes need no Policy: their decisions arrive as
// power-op events in the trace.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// BeforeService runs when a request is about to be issued to
	// disk d at time t. The idle period ending now spans
	// [m.IdleFrom(d), t]; the policy may apply retroactive actions
	// anywhere inside it.
	BeforeService(m *Machine, d int, t float64)
	// AfterService runs when the request completes at time end with
	// the given response time (wait + service).
	AfterService(m *Machine, d int, end, responseMS float64)
	// Finish runs once after the last event, before final energy
	// accounting; endT is the program completion time. Oracle
	// policies exploit each disk's trailing idle period here.
	Finish(m *Machine, endT float64)
}

// Config configures a simulation run.
type Config struct {
	// Disk supplies the disk model parameters.
	Disk disk.Params
	// Policy is the reactive/oracle policy; nil means no power
	// management beyond the trace's explicit power ops.
	Policy Policy
	// PowerCallOverheadMS is Tm of the paper's Equation 1: the
	// application-side overhead of one explicit power-management
	// call.
	PowerCallOverheadMS float64
	// IgnorePowerOps drops the trace's power-op events (used to run
	// an instrumented trace under a reactive baseline).
	IgnorePowerOps bool
	// DistanceAwareSeek replaces the average-seek model with the
	// square-root seek curve over the head's actual movement
	// (requests carry start block numbers).
	DistanceAwareSeek bool
	// RecordTimeline collects per-disk state timelines into the
	// result (Result.Timelines).
	RecordTimeline bool
	// Audit verifies the conservation invariants of every run (see
	// Audit): residency and energy-breakdown conservation, the
	// timeline power integral, and state-machine transition legality.
	// A violated invariant fails the run with a structured
	// *AuditError instead of returning a plausible-but-wrong result.
	// The audit records an internal timeline even when RecordTimeline
	// is off (the result's Timelines field stays empty in that case).
	Audit bool
	// Obs, when non-nil, receives metric events (request latencies,
	// residency, power ops, spin-up mispredictions) as the run
	// executes. A nil Obs adds no overhead beyond one branch per
	// emit point; an attached collector allocates nothing per event.
	Obs *obs.Collector
	// Faults, when non-nil, injects the plan's deterministic fault
	// schedule (spin-up failures with bounded retry, bad-sector
	// remaps, degradation windows) into the run. The plan must cover
	// at least the trace's disk count.
	Faults *faults.Plan
}

// DefaultPowerCallOverheadMS is the default power-management call
// overhead (Tm).
const DefaultPowerCallOverheadMS = 0.05

// Result reports one simulation run.
type Result struct {
	Program string
	Scheme  string
	// ExecMS is the application completion time.
	ExecMS float64
	// EnergyJ is the total disk-subsystem energy.
	EnergyJ float64
	// Disks holds per-disk statistics.
	Disks []DiskStats
	// Idles holds, per disk, every inter-request idle period plus
	// the trailing idle period.
	Idles [][]IdlePeriod
	// Requests is the number of I/O requests serviced.
	Requests int
	// PowerOps is the number of explicit power-management calls
	// executed.
	PowerOps int
	// TotalWaitMS is the total request wait (readiness) time — the
	// source of any execution-time penalty.
	TotalWaitMS float64
	// Timelines holds the per-disk state timelines when
	// Config.RecordTimeline was set.
	Timelines [][]Segment
}

// Run simulates the trace under the configuration and returns the
// result.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cfg.PowerCallOverheadMS < 0 {
		return nil, fmt.Errorf("sim: negative power call overhead")
	}
	m := NewMachine(tr.NumDisks, cfg.Disk)
	if cfg.DistanceAwareSeek {
		m.EnableDistanceSeek(cfg.Disk.CapacityBlocks())
	}
	if cfg.RecordTimeline || cfg.Audit {
		// The audit needs the timeline for its power-integral and
		// transition-legality checks even when the caller did not ask
		// to keep it.
		m.EnableTimeline()
	}
	if cfg.Obs != nil {
		cfg.Obs.CountSimRun()
		cfg.Obs.EnsureDisks(tr.NumDisks, cfg.Disk.MinRPM, cfg.Disk.RPMStep, cfg.Disk.NumLevels())
		m.AttachCollector(cfg.Obs)
	}
	if cfg.Faults != nil {
		if cfg.Faults.NumDisks() < tr.NumDisks {
			return nil, fmt.Errorf("sim: fault plan covers %d disks, trace uses %d", cfg.Faults.NumDisks(), tr.NumDisks)
		}
		m.AttachFaults(cfg.Faults)
	}
	// Size the per-disk idle-period lists exactly (one idle period per
	// request plus the trailing one) so the event loop never grows
	// them.
	perDisk := make([]int, tr.NumDisks)
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.EvRequest {
			perDisk[tr.Events[i].Req.Disk]++
		}
	}
	m.ReserveIdles(perDisk)
	clock := 0.0
	powerOps := 0
	for i := range tr.Events {
		ev := &tr.Events[i]
		clock += ev.GapMS
		switch ev.Kind {
		case trace.EvPowerOp:
			if cfg.IgnorePowerOps {
				continue
			}
			op := &ev.Op
			switch op.Kind {
			case trace.OpSpinDown:
				m.SpinDownAt(op.Disk, clock)
			case trace.OpSpinUp:
				m.SpinUpAt(op.Disk, clock)
			case trace.OpSetRPM:
				m.SetRPMAt(op.Disk, clock, op.RPM)
			}
			powerOps++
			clock += cfg.PowerCallOverheadMS
		case trace.EvRequest:
			d := ev.Req.Disk
			if cfg.Policy != nil {
				cfg.Policy.BeforeService(m, d, clock)
			}
			end, err := m.ServiceBlock(d, clock, ev.Req.Bytes, ev.Req.Block)
			if err != nil {
				return nil, err
			}
			if cfg.Policy != nil {
				cfg.Policy.AfterService(m, d, end, end-clock)
			}
			clock = end
		}
	}
	if cfg.Policy != nil {
		cfg.Policy.Finish(m, clock)
	}
	stats, idles := m.Finish(clock)
	res := &Result{
		Program:  tr.Program,
		ExecMS:   clock,
		Disks:    stats,
		Idles:    idles,
		PowerOps: powerOps,
	}
	if cfg.RecordTimeline || cfg.Audit {
		res.Timelines = m.Timelines()
	}
	if cfg.Policy != nil {
		res.Scheme = cfg.Policy.Name()
	} else {
		// No policy means the trace's embedded power ops (if any)
		// drove the disks; name the scheme so result tables and
		// metric labels are never blank.
		res.Scheme = "embedded"
	}
	for d := range stats {
		res.EnergyJ += stats[d].EnergyJ
		res.Requests += stats[d].Requests
		res.TotalWaitMS += stats[d].WaitMS
	}
	if cfg.Audit {
		if aerr := Audit(res, cfg.Disk, cfg.Faults != nil); aerr != nil {
			return nil, aerr
		}
		if !cfg.RecordTimeline {
			res.Timelines = nil
		}
	}
	return res, nil
}
