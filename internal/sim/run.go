package sim

import (
	"fmt"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/trace"
)

// Policy is a reactive or oracle power-management policy. The
// compiler-managed schemes need no Policy: their decisions arrive as
// power-op events in the trace.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// BeforeService runs when a request is about to be issued to
	// disk d at time t. The idle period ending now spans
	// [m.IdleFrom(d), t]; the policy may apply retroactive actions
	// anywhere inside it.
	BeforeService(m *Machine, d int, t float64)
	// AfterService runs when the request completes at time end with
	// the given response time (wait + service).
	AfterService(m *Machine, d int, end, responseMS float64)
	// Finish runs once after the last event, before final energy
	// accounting; endT is the program completion time. Oracle
	// policies exploit each disk's trailing idle period here.
	Finish(m *Machine, endT float64)
}

// TriggerPolicy is optionally implemented by policies to name the
// decision trigger stamped on their provenance events (one of the
// events.Trig* constants). Policies without it are labelled with the
// generic "policy" trigger.
type TriggerPolicy interface {
	DecisionTrigger() string
}

// Config configures a simulation run.
type Config struct {
	// Disk supplies the disk model parameters.
	Disk disk.Params
	// Policy is the reactive/oracle policy; nil means no power
	// management beyond the trace's explicit power ops.
	Policy Policy
	// PowerCallOverheadMS is Tm of the paper's Equation 1: the
	// application-side overhead of one explicit power-management
	// call.
	PowerCallOverheadMS float64
	// IgnorePowerOps drops the trace's power-op events (used to run
	// an instrumented trace under a reactive baseline).
	IgnorePowerOps bool
	// DistanceAwareSeek replaces the average-seek model with the
	// square-root seek curve over the head's actual movement
	// (requests carry start block numbers).
	DistanceAwareSeek bool
	// RecordTimeline collects per-disk state timelines into the
	// result (Result.Timelines).
	RecordTimeline bool
	// Audit verifies the conservation invariants of every run (see
	// Audit): residency and energy-breakdown conservation, the
	// timeline power integral, and state-machine transition legality.
	// A violated invariant fails the run with a structured
	// *AuditError instead of returning a plausible-but-wrong result.
	// The audit records an internal timeline even when RecordTimeline
	// is off (the result's Timelines field stays empty in that case).
	Audit bool
	// Obs, when non-nil, receives metric events (request latencies,
	// residency, power ops, spin-up mispredictions) as the run
	// executes. A nil Obs adds no overhead beyond one branch per
	// emit point; an attached collector allocates nothing per event.
	Obs *obs.Collector
	// Faults, when non-nil, injects the plan's deterministic fault
	// schedule (spin-up failures with bounded retry, bad-sector
	// remaps, degradation windows) into the run. The plan must cover
	// at least the trace's disk count.
	Faults *faults.Plan
	// Compiled is the trace's run-length compiled form (see
	// trace.Compile), enabling the batched steady-state executor.
	// When nil (and batching is not disabled or ineligible), Run
	// compiles the trace itself; callers that run many schemes over
	// one trace should pass a memoized form instead. A Compiled built
	// from a different trace is detected and recompiled.
	Compiled *trace.Compiled
	// DisableBatch forces the general per-request path even when a
	// compiled form is available — the -batch=off escape hatch.
	// Results are bit-identical either way (enforced by differential
	// tests); the switch exists to prove exactly that in the field.
	DisableBatch bool
	// Events, when non-nil, receives decision-provenance events
	// (power decisions with trigger and inputs, later resolved with
	// the measured idle and energy regret; spin-up misses; fault
	// lifecycle; batch bail-out reasons). Like Obs, a nil log costs
	// one branch per site; an attached log changes no result bit.
	Events *events.Log
	// SchemeLabel overrides the scheme name stamped on events (the
	// engine labels runs by its scheme enum, which can differ from
	// the policy's own name). Empty uses Policy.Name() or "embedded".
	SchemeLabel string
}

// DefaultPowerCallOverheadMS is the default power-management call
// overhead (Tm).
const DefaultPowerCallOverheadMS = 0.05

// Result reports one simulation run.
type Result struct {
	Program string
	Scheme  string
	// ExecMS is the application completion time.
	ExecMS float64
	// EnergyJ is the total disk-subsystem energy.
	EnergyJ float64
	// Disks holds per-disk statistics.
	Disks []DiskStats
	// Idles holds, per disk, every inter-request idle period plus
	// the trailing idle period.
	Idles [][]IdlePeriod
	// Requests is the number of I/O requests serviced.
	Requests int
	// PowerOps is the number of explicit power-management calls
	// executed.
	PowerOps int
	// TotalWaitMS is the total request wait (readiness) time — the
	// source of any execution-time penalty.
	TotalWaitMS float64
	// Timelines holds the per-disk state timelines when
	// Config.RecordTimeline was set.
	Timelines [][]Segment
}

// runExec carries the mutable cursor state of one simulation's event
// walk. Both the per-request loop and the batched executor's
// bail-outs go through its step method, so there is exactly one
// implementation of general event semantics.
type runExec struct {
	m        *Machine
	tr       *trace.Trace
	cfg      *Config
	clock    float64
	powerOps int
}

// step executes one event through the general path.
func (e *runExec) step(i int) error {
	ev := &e.tr.Events[i]
	e.clock += ev.GapMS
	switch ev.Kind {
	case trace.EvPowerOp:
		if e.cfg.IgnorePowerOps {
			return nil
		}
		op := &ev.Op
		if e.m.ev != nil {
			// Trace-embedded ops are the compiler's hints; they carry
			// its idle prediction into the decision event.
			e.m.setTrigger(events.TrigHint, op.PredictedIdleMS)
		}
		switch op.Kind {
		case trace.OpSpinDown:
			e.m.SpinDownAt(op.Disk, e.clock)
		case trace.OpSpinUp:
			e.m.SpinUpAt(op.Disk, e.clock)
		case trace.OpSetRPM:
			e.m.SetRPMAt(op.Disk, e.clock, op.RPM)
		}
		if e.m.ev != nil {
			e.m.restoreTrigger()
		}
		e.powerOps++
		e.clock += e.cfg.PowerCallOverheadMS
	case trace.EvRequest:
		d := ev.Req.Disk
		if e.cfg.Policy != nil {
			e.cfg.Policy.BeforeService(e.m, d, e.clock)
		}
		end, err := e.m.ServiceBlock(d, e.clock, ev.Req.Bytes, ev.Req.Block)
		if err != nil {
			return err
		}
		if e.cfg.Policy != nil {
			if e.m.ev != nil {
				e.m.setTrigger(events.TrigController, 0)
				e.cfg.Policy.AfterService(e.m, d, end, end-e.clock)
				e.m.restoreTrigger()
			} else {
				e.cfg.Policy.AfterService(e.m, d, end, end-e.clock)
			}
		}
		e.clock = end
	}
	return nil
}

// Run simulates the trace under the configuration and returns the
// result.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	// A compiled form whose NumEvents matches carries a Validated flag
	// from compile time; trusting it saves a full trace walk per run
	// (the engine runs many schemes over one memoized trace). A nil or
	// mismatched form falls back to validating here.
	comp := cfg.Compiled
	if comp != nil && comp.NumEvents != len(tr.Events) {
		comp = nil
	}
	if comp == nil || !comp.Validated {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.PowerCallOverheadMS < 0 {
		return nil, fmt.Errorf("sim: negative power call overhead")
	}
	m := NewMachine(tr.NumDisks, cfg.Disk)
	if cfg.DistanceAwareSeek {
		m.EnableDistanceSeek(cfg.Disk.CapacityBlocks())
	}
	if cfg.RecordTimeline || cfg.Audit {
		// The audit needs the timeline for its power-integral and
		// transition-legality checks even when the caller did not ask
		// to keep it.
		m.EnableTimeline()
	}
	if cfg.Obs != nil {
		cfg.Obs.CountSimRun()
		cfg.Obs.EnsureDisks(tr.NumDisks, cfg.Disk.MinRPM, cfg.Disk.RPMStep, cfg.Disk.NumLevels())
		m.AttachCollector(cfg.Obs)
	}
	if cfg.Faults != nil {
		if cfg.Faults.NumDisks() < tr.NumDisks {
			return nil, fmt.Errorf("sim: fault plan covers %d disks, trace uses %d", cfg.Faults.NumDisks(), tr.NumDisks)
		}
		m.AttachFaults(cfg.Faults)
	}
	if cfg.Events != nil {
		label := cfg.SchemeLabel
		if label == "" {
			if cfg.Policy != nil {
				label = cfg.Policy.Name()
			} else {
				label = "embedded"
			}
		}
		polTrig := ""
		if tp, ok := cfg.Policy.(TriggerPolicy); ok {
			polTrig = tp.DecisionTrigger()
		} else if cfg.Policy != nil {
			polTrig = "policy"
		}
		m.AttachEvents(cfg.Events, tr.Program, label, polTrig, cfg.Disk.TPMBreakEvenMS())
	}
	// Batching eligibility: the distance-aware seek model carries
	// per-request head state the fast path does not track, and a
	// policy must describe its decision horizon to be skipped over.
	var hz Horizon
	batching := !cfg.DisableBatch && !cfg.DistanceAwareSeek
	if cfg.Policy != nil {
		if hp, ok := cfg.Policy.(HorizonPolicy); ok {
			hz = hp.Horizon()
		} else {
			batching = false
		}
	}
	if batching && comp == nil {
		comp = trace.Compile(tr)
	}
	// Size the per-disk idle-period lists exactly (one idle period per
	// request plus the trailing one) so the event loop never grows
	// them.
	var perDisk []int
	if comp != nil {
		perDisk = comp.PerDisk
	} else {
		perDisk = make([]int, tr.NumDisks)
		for i := range tr.Events {
			if tr.Events[i].Kind == trace.EvRequest {
				perDisk[tr.Events[i].Req.Disk]++
			}
		}
	}
	m.ReserveIdles(perDisk)
	e := runExec{m: m, tr: tr, cfg: &cfg}
	if batching {
		ri := 0
		i := 0
		for i < len(tr.Events) {
			if ri < len(comp.Runs) && comp.Runs[ri].Start == i {
				run := &comp.Runs[ri]
				ri++
				for i < run.End {
					i, e.clock = m.serviceRun(tr.Events, i, run, e.clock, hz, cfg.Policy)
					if i < run.End {
						// One event through the general path (a policy
						// action, fault hit, or transitional disk
						// state), then back to the fast loop.
						if m.ev != nil {
							m.emitBailout(tr.Events, i, run, e.clock, hz)
						}
						if err := e.step(i); err != nil {
							return nil, err
						}
						i++
					}
				}
				continue
			}
			if err := e.step(i); err != nil {
				return nil, err
			}
			i++
		}
	} else {
		for i := range tr.Events {
			if err := e.step(i); err != nil {
				return nil, err
			}
		}
	}
	clock := e.clock
	powerOps := e.powerOps
	if cfg.Policy != nil {
		if m.ev != nil {
			m.setTrigger(events.TrigFinish, 0)
			cfg.Policy.Finish(m, clock)
			m.restoreTrigger()
		} else {
			cfg.Policy.Finish(m, clock)
		}
	}
	stats, idles := m.Finish(clock)
	res := &Result{
		Program:  tr.Program,
		ExecMS:   clock,
		Disks:    stats,
		Idles:    idles,
		PowerOps: powerOps,
	}
	if cfg.RecordTimeline || cfg.Audit {
		res.Timelines = m.Timelines()
	}
	if cfg.Policy != nil {
		res.Scheme = cfg.Policy.Name()
	} else {
		// No policy means the trace's embedded power ops (if any)
		// drove the disks; name the scheme so result tables and
		// metric labels are never blank.
		res.Scheme = "embedded"
	}
	for d := range stats {
		res.EnergyJ += stats[d].EnergyJ
		res.Requests += stats[d].Requests
		res.TotalWaitMS += stats[d].WaitMS
	}
	if cfg.Audit {
		if aerr := Audit(res, cfg.Disk, cfg.Faults != nil); aerr != nil {
			return nil, aerr
		}
		if !cfg.RecordTimeline {
			res.Timelines = nil
		}
	}
	return res, nil
}
