package sim_test

// Differential property test for the batched steady-state executor:
// on randomized traces — varying disk counts, request mixes, gaps,
// embedded power ops, policies, and fault plans — the batched and the
// general per-request paths must produce identical Results, down to
// the last bit of every float. Any divergence is a correctness bug in
// the batching fast path, never acceptable drift. The test runs under
// `make race` (internal/sim is in the race list).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs/events"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

// randomBatchTrace generates a trace alternating steady stretches (the
// compiled runs the fast path batches) with jittered stretches and
// embedded power ops (the bail-out cases).
func randomBatchTrace(r *rand.Rand, nDisks int) *trace.Trace {
	tr := &trace.Trace{Program: "diff", NumDisks: nDisks}
	arrival := 0.0
	sizes := []int64{4096, 65536, 262144}
	block := int64(0)
	addReq := func(d int, gap float64, bytes int64) {
		arrival += gap
		kind := trace.Read
		if r.Intn(4) == 0 {
			kind = trace.Write
		}
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.EvRequest,
			GapMS: gap,
			Req: trace.Request{
				ArrivalMS: arrival, Disk: d, Block: block % (1 << 20),
				Bytes: bytes, Kind: kind,
			},
		})
		block += bytes / 512
	}
	p := disk.DefaultParams()
	for len(tr.Events) < 2500 {
		switch r.Intn(5) {
		case 0, 1: // steady stretch: uniform gap and size
			n := 4 + r.Intn(120)
			gap := []float64{0, 2, 7.5, 60, 300}[r.Intn(5)]
			bytes := sizes[r.Intn(len(sizes))]
			roundRobin := r.Intn(2) == 0
			d := r.Intn(nDisks)
			for i := 0; i < n; i++ {
				if roundRobin {
					d = i % nDisks
				}
				addReq(d, gap, bytes)
			}
		case 2: // jittered stretch
			n := 1 + r.Intn(30)
			for i := 0; i < n; i++ {
				addReq(r.Intn(nDisks), r.Float64()*40, sizes[r.Intn(len(sizes))])
			}
		case 3: // long-idle stretch (policy decision territory)
			n := 4 + r.Intn(10)
			for i := 0; i < n; i++ {
				addReq(r.Intn(nDisks), 1000+r.Float64()*14000, 65536)
			}
		case 4: // embedded power op
			d := r.Intn(nDisks)
			op := trace.PowerOp{Disk: d}
			switch r.Intn(3) {
			case 0:
				op.Kind = trace.OpSpinDown
			case 1:
				op.Kind = trace.OpSpinUp
			default:
				op.Kind = trace.OpSetRPM
				op.RPM = p.MinRPM + r.Intn(p.NumLevels())*p.RPMStep
				op.PredictedIdleMS = r.Float64() * 5000
			}
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.EvPowerOp, GapMS: r.Float64() * 5, Op: op,
			})
		}
	}
	return tr
}

// diffPolicy builds one fresh policy per name; fresh instances per
// run keep the stateful controllers (DRPM's window) independent.
func diffPolicy(name string, p disk.Params, nDisks int) sim.Policy {
	switch name {
	case "none":
		return nil
	case "base":
		return policy.NewBase()
	case "tpm":
		return policy.NewTPM(p, 0)
	case "itpm":
		return policy.NewITPM(p)
	case "drpm":
		return policy.NewDRPM(p, nDisks)
	case "idrpm":
		return policy.NewIDRPM(p)
	}
	panic("unknown policy " + name)
}

// TestBatchDifferential is the batched-vs-general equivalence sweep.
func TestBatchDifferential(t *testing.T) {
	p := disk.DefaultParams()
	moderate, err := faults.ParseSpec("moderate")
	if err != nil {
		t.Fatal(err)
	}
	policies := []string{"none", "base", "tpm", "itpm", "drpm", "idrpm"}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			nDisks := 1 + r.Intn(4)
			tr := randomBatchTrace(r, nDisks)
			comp := trace.Compile(tr)
			if len(comp.Runs) == 0 {
				t.Fatal("generated trace compiled to zero runs; the sweep would not exercise the fast path")
			}
			for _, pol := range policies {
				for _, withFaults := range []bool{false, true} {
					cfg := sim.Config{
						Disk:                p,
						PowerCallOverheadMS: sim.DefaultPowerCallOverheadMS,
						// Timeline + audit on every other seed: the audit
						// re-derives energy from the timeline, so a fast
						// path that drifted would fail twice over.
						RecordTimeline: seed%2 == 0,
						Audit:          seed%2 == 0,
						IgnorePowerOps: seed%3 == 0,
					}
					if withFaults {
						plan, err := faults.New(seed, nDisks, moderate)
						if err != nil {
							t.Fatal(err)
						}
						cfg.Faults = plan
					}
					batched := cfg
					batched.Policy = diffPolicy(pol, p, nDisks)
					batched.Compiled = comp
					want := cfg
					want.Policy = diffPolicy(pol, p, nDisks)
					want.DisableBatch = true
					// Event tracing attached to the batched path must
					// change no result bit (the log only reads state).
					traced := cfg
					traced.Policy = diffPolicy(pol, p, nDisks)
					traced.Compiled = comp
					traced.Events = events.NewLog(1 << 16)

					rb, errB := sim.Run(tr, batched)
					rg, errG := sim.Run(tr, want)
					rt, errT := sim.Run(tr, traced)
					if (errB == nil) != (errG == nil) || (errB == nil) != (errT == nil) {
						t.Fatalf("policy %s faults=%t: batched err=%v, general err=%v, traced err=%v", pol, withFaults, errB, errG, errT)
					}
					if errB != nil {
						continue
					}
					if !reflect.DeepEqual(rb, rt) {
						t.Errorf("policy %s faults=%t: event tracing perturbed the batched result", pol, withFaults)
					}
					if !reflect.DeepEqual(rb, rg) {
						t.Errorf("policy %s faults=%t: batched and general results differ", pol, withFaults)
						if rb.EnergyJ != rg.EnergyJ {
							t.Errorf("  EnergyJ %v vs %v", rb.EnergyJ, rg.EnergyJ)
						}
						if rb.ExecMS != rg.ExecMS {
							t.Errorf("  ExecMS %v vs %v", rb.ExecMS, rg.ExecMS)
						}
						if rb.TotalWaitMS != rg.TotalWaitMS {
							t.Errorf("  TotalWaitMS %v vs %v", rb.TotalWaitMS, rg.TotalWaitMS)
						}
					}
				}
			}
		})
	}
}
