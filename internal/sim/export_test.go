package sim_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sdpm/internal/disk"
	"sdpm/internal/faults"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/sim"
	"sdpm/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is a small two-disk embedded-scheme workload that
// exercises every timeline segment kind: service, idle, an RPM shift,
// a spin-down, and the on-demand spin-up forced by the request that
// follows it.
func goldenTrace() *trace.Trace {
	req := func(d int, block int64, gap float64) trace.Event {
		return trace.Event{Kind: trace.EvRequest, GapMS: gap, Req: trace.Request{
			Disk: d, Block: block, Bytes: 65536, Kind: trace.Read,
		}}
	}
	op := func(d int, k trace.OpKind, rpm int) trace.Event {
		return trace.Event{Kind: trace.EvPowerOp, Op: trace.PowerOp{Disk: d, Kind: k, RPM: rpm}}
	}
	return &trace.Trace{Program: "golden", NumDisks: 2, Events: []trace.Event{
		req(0, 0, 2),
		req(1, 128, 2),
		op(1, trace.OpSetRPM, 3000), // shift disk 1 down
		req(0, 256, 50),
		op(1, trace.OpSpinUp, 0), // pre-activate disk 1
		req(1, 384, 20),
		op(0, trace.OpSpinDown, 0), // park disk 0
		req(1, 512, 100),
		req(0, 640, 3000), // disk 0 reaches standby, then on-demand spin-up
	}}
}

func goldenRun(t *testing.T) *sim.Result {
	t.Helper()
	cfg := sim.Config{Disk: disk.DefaultParams(), RecordTimeline: true}
	res, err := sim.Run(goldenTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChromeTraceGolden locks the exporter's JSON byte-for-byte
// against testdata/trace_two_disk.golden.json. Regenerate with
// `go test ./internal/sim -run ChromeTraceGolden -update` after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	res := goldenRun(t)
	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_two_disk.golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from %s (rerun with -update if the change is intended)\ngot %d bytes, want %d bytes",
			path, buf.Len(), len(want))
	}
}

// TestChromeTraceStructure checks the exported JSON independently of
// the golden bytes: it must parse, carry the metadata Perfetto uses,
// and contain every event class the run produced.
func TestChromeTraceStructure(t *testing.T) {
	res := goldenRun(t)
	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Ph+":"+ev.Name] = true
		tids[ev.Tid] = true
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("span %q at ts=%g has negative duration %g", ev.Name, ev.TS, ev.Dur)
		}
	}
	for _, want := range []string{
		"M:process_name", "M:thread_name",
		"X:service", "X:idle", "X:standby", "X:spindown", "X:spinup", "X:rpmshift",
		"i:spin_down", "i:spin_up", "i:set_rpm",
		"C:disk0 rpm", "C:disk1 power_w",
	} {
		if !seen[want] {
			t.Errorf("missing event %q in exported trace", want)
		}
	}
	if !tids[0] || !tids[1] {
		t.Errorf("expected events on both disk threads, got tids %v", tids)
	}

	// Exporting a run without timelines must fail loudly rather than
	// emit an empty trace.
	bare, err := sim.Run(goldenTrace(), sim.Config{Disk: disk.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ChromeTraceEvents(bare); err == nil {
		t.Error("ChromeTraceEvents on a run without timelines: want error, got nil")
	}
}

// faultTrace parks disk 0, pre-activates it under a fault plan that
// fails every spin-up attempt (so the pre-activation gives up), and
// then issues a request: the service degrades to on-demand with
// forced success after retries, producing the full fault lifecycle —
// failed attempts, retries, and the fallback.
func faultTrace() *trace.Trace {
	req := func(d int, block int64, gap, arrival float64) trace.Event {
		return trace.Event{Kind: trace.EvRequest, GapMS: gap, Req: trace.Request{
			ArrivalMS: arrival, Disk: d, Block: block, Bytes: 65536, Kind: trace.Read,
		}}
	}
	op := func(d int, k trace.OpKind) trace.Event {
		return trace.Event{Kind: trace.EvPowerOp, Op: trace.PowerOp{Disk: d, Kind: k}}
	}
	return &trace.Trace{Program: "faulty", NumDisks: 1, Events: []trace.Event{
		req(0, 0, 2, 2),
		op(0, trace.OpSpinDown),
		op(0, trace.OpSpinUp), // pre-activation: fails, retries, gives up
		req(0, 128, 30000, 30002),
		req(0, 256, 1000, 31002),
	}}
}

// TestChromeTraceAnnotatedFaultsGolden locks the annotated exporter —
// timeline plus merged decision/fault events — byte-for-byte under a
// deterministic all-failures fault plan, and asserts the fault
// lifecycle (failed attempts, retries, on-demand fallback) surfaces
// as instant events whose args carry the detail, in the same numbers
// the metrics collector counted.
func TestChromeTraceAnnotatedFaultsGolden(t *testing.T) {
	plan, err := faults.New(1, 1, faults.Config{
		SpinUpFailProb: 1, MaxRetries: 2, RetryBackoffMS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	coll := obs.New()
	log := events.NewLog(0)
	cfg := sim.Config{
		Disk: disk.DefaultParams(), RecordTimeline: true,
		Obs: coll, Events: log, Faults: plan,
	}
	res, err := sim.Run(faultTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteChromeTraceAnnotated(&buf, res, log.Events()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_faults.golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("annotated trace JSON differs from %s (rerun with -update if the change is intended)\ngot %d bytes, want %d bytes",
			path, buf.Len(), len(want))
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("annotated output is not valid JSON: %v", err)
	}
	faultDetails := map[string]int{}
	decisions := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "fault" && ev.Ph == "i":
			detail, _ := ev.Args["detail"].(string)
			faultDetails[detail]++
		case ev.Cat == "decision" && ev.Ph == "i":
			decisions++
		}
	}
	for _, k := range []obs.FaultKind{obs.FaultSpinUpFail, obs.FaultRetry, obs.FaultFallback} {
		if got, want := int64(faultDetails[k.String()]), coll.FaultCount(k); got == 0 || got != want {
			t.Errorf("fault %q: %d instants in trace, collector counted %d", k.String(), got, want)
		}
	}
	if decisions == 0 {
		t.Error("no decision instants in annotated trace (embedded spin-down/spin-up missing)")
	}
}
