package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"sdpm/internal/fsx"
)

// degrade drives one journaled experiment through a failing filesystem
// and asserts the server ends up degraded.
func degrade(t *testing.T, s *Server) {
	t.Helper()
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("experiment during journal failure = %d (%s)", w.Code, w.Body.String())
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("server not degraded after unwritable journal")
	}
}

// A reprobe against a healed filesystem re-attaches the journal:
// degraded mode lifts, /readyz flips back to ready, durable requests
// succeed again, and the recovery is counted on every surface.
func TestReprobeRecoversAfterHeal(t *testing.T) {
	fa := fsx.NewFaulty(21).FailWrites(1, errInjectedIO)
	s := newDegradableServer(t, fa, func(c *Config) { c.JournalRetries = -1 })
	degrade(t, s)

	// Still broken: the probe write fails and the server stays degraded.
	if err := s.reprobe(); err == nil {
		t.Fatal("reprobe succeeded against a still-failing filesystem")
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("failed reprobe lifted degraded mode")
	}
	if n := s.coll.ServeJournalRecoveries(); n != 0 {
		t.Fatalf("recoveries = %d after a failed probe, want 0", n)
	}

	// Heal the filesystem; the next probe re-attaches.
	fa.FailWrites(0, nil)
	if err := s.reprobe(); err != nil {
		t.Fatalf("reprobe after heal: %v", err)
	}
	if deg, reason := s.Degraded(); deg {
		t.Fatalf("still degraded after recovery: %q", reason)
	}
	if r := do(s, "GET", "/readyz", "", nil); r.Body.String() != "ready\n" {
		t.Fatalf("readyz after recovery = %q, want ready", r.Body.String())
	}
	if n := s.coll.ServeJournalRecoveries(); n != 1 {
		t.Fatalf("recoveries = %d, want 1", n)
	}
	if m := do(s, "GET", "/metrics", "", nil); !strings.Contains(m.Body.String(), "sdpm_serve_journal_recoveries_total 1") {
		t.Fatal("metrics missing the recovery counter")
	}
	if st := do(s, "GET", "/status", "", nil); !strings.Contains(st.Body.String(), `"journal_recoveries": 1`) {
		t.Fatalf("status missing journal_recoveries: %s", st.Body.String())
	}

	// Durability is genuinely back: a durable request succeeds and its
	// cells land in the re-attached journal.
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2","durable":true}`, nil); w.Code != http.StatusOK {
		t.Fatalf("durable request after recovery = %d (%s)", w.Code, w.Body.String())
	}
	if s.jrnl().Len() == 0 {
		t.Fatal("recovered journal has no cells after a durable request")
	}
}

// A poisoned journal (failed fsync tears the durability story) also
// recovers: the reprobe abandons the poisoned handle and reopens the
// file, truncating any torn tail.
func TestReprobeRecoversFromPoisonedJournal(t *testing.T) {
	fa := fsx.NewFaulty(22).FailSyncs(1, errInjectedIO)
	s := newDegradableServer(t, fa, nil)
	degrade(t, s)

	fa.FailSyncs(0, nil)
	if err := s.reprobe(); err != nil {
		t.Fatalf("reprobe after heal: %v", err)
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("still degraded after recovering a poisoned journal")
	}
	// The fresh handle is unpoisoned and writable.
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2","durable":true}`, nil); w.Code != http.StatusOK {
		t.Fatalf("durable request after poison recovery = %d (%s)", w.Code, w.Body.String())
	}
}

// The background loop performs the recovery on its own when armed via
// JournalReprobe, and BeginDrain stops it.
func TestReprobeLoopAutoRecovers(t *testing.T) {
	fa := fsx.NewFaulty(23).FailWrites(1, errInjectedIO)
	s := newDegradableServer(t, fa, func(c *Config) {
		c.JournalReprobe = 5 * time.Millisecond
	})
	degrade(t, s)

	fa.FailWrites(0, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if deg, _ := s.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reprobe loop never recovered the journal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := s.coll.ServeJournalRecoveries(); n != 1 {
		t.Fatalf("recoveries = %d, want exactly 1", n)
	}
	s.BeginDrain() // closes the loop's stop channel; must not panic or hang
	s.BeginDrain() // idempotent
}

// Drain must not race the reprobe loop: BeginDrain waits the loop out,
// so the journal handle Drain finalizes is the final one — never a
// handle the loop closed moments before swapping in a fresh one.
func TestDrainWaitsForReprobeLoop(t *testing.T) {
	fa := fsx.NewFaulty(24).FailWrites(1, errInjectedIO)
	s := newDegradableServer(t, fa, func(c *Config) {
		c.JournalReprobe = time.Millisecond
	})
	degrade(t, s)
	fa.FailWrites(0, nil)

	// Drain while the loop is probing hot; whichever side of a recovery
	// the drain lands on, the finalize must target a live handle.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain racing the reprobe loop: %v", err)
	}
}
