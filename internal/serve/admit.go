package serve

import (
	"context"
	"errors"
	"time"

	"sdpm/internal/obs"
)

// admitter bounds the service's concurrency: at most maxInflight
// requests execute at once, at most maxQueue more wait for a slot,
// and no request waits longer than the queue-wait budget. Anything
// beyond those bounds is shed immediately with a typed overload error
// — the service degrades by refusing work it cannot serve in time,
// never by queuing without bound.
type admitter struct {
	slots     chan struct{} // capacity = maxInflight; a token is one execution slot
	queued    chan struct{} // capacity = maxQueue; a token is one waiting spot
	queueWait time.Duration
	coll      *obs.Collector
}

func newAdmitter(maxInflight, maxQueue int, queueWait time.Duration, coll *obs.Collector) *admitter {
	return &admitter{
		slots:     make(chan struct{}, maxInflight),
		queued:    make(chan struct{}, maxQueue),
		queueWait: queueWait,
		coll:      coll,
	}
}

// acquire claims an execution slot, waiting up to the queue-wait
// budget (and never past ctx). On success it returns the release
// function and the time spent queued; the caller must invoke release
// exactly once. On failure it returns a typed error: overload when
// the queue is full or the wait budget expired, deadline/canceled
// when ctx fired first.
func (a *admitter) acquire(ctx context.Context) (release func(), waitMS float64, aerr *Error) {
	// Fast path: a free slot means no queuing at all.
	select {
	case a.slots <- struct{}{}:
		return a.release, 0, nil
	default:
	}
	// Claim a waiting spot; a full queue sheds instantly.
	select {
	case a.queued <- struct{}{}:
	default:
		a.coll.CountServeShed()
		return nil, 0, &Error{
			Kind:       KindOverload,
			Msg:        "admission queue full",
			RetryAfter: a.queueWait,
		}
	}
	a.coll.ServeQueued(1)
	start := time.Now()
	timer := time.NewTimer(a.queueWait)
	defer func() {
		timer.Stop()
		<-a.queued
		a.coll.ServeQueued(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		return a.release, float64(time.Since(start)) / float64(time.Millisecond), nil
	case <-timer.C:
		a.coll.CountServeShed()
		return nil, 0, &Error{
			Kind:       KindOverload,
			Msg:        "no execution slot freed within the queue-wait budget",
			RetryAfter: a.queueWait,
		}
	case <-ctx.Done():
		return nil, 0, ctxError(ctx, nil)
	}
}

func (a *admitter) release() { <-a.slots }

// ctxError maps a fired context to the deadline/canceled taxonomy,
// attaching optional partial-progress metadata.
func ctxError(ctx context.Context, meta map[string]any) *Error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return &Error{Kind: KindDeadline, Msg: "request deadline exceeded", Meta: meta}
	}
	return &Error{Kind: KindCanceled, Msg: "request canceled by client", Meta: meta}
}
