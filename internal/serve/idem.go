package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// idemEntry is one idempotency key's lifecycle: the first request
// with the key (the leader) computes; concurrent duplicates wait on
// done; once complete holds a success, every later request with the
// same key and body replays the stored bytes verbatim.
type idemEntry struct {
	fp          string // request fingerprint the key is bound to
	done        chan struct{}
	ok          bool // complete() was called — body/contentType are valid
	body        []byte
	contentType string
}

// idemCache deduplicates requests by Idempotency-Key header. The
// engine underneath is deterministic, so a replayed response is
// byte-identical to the original by construction; the cache makes it
// also free, and makes client retries after an ambiguous network
// failure safe.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
}

func newIdemCache() *idemCache {
	return &idemCache{entries: make(map[string]*idemEntry)}
}

// fingerprint canonically identifies a request body + route, binding
// an idempotency key to exactly one logical request.
func fingerprint(route string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(route))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// begin claims the key. Outcomes:
//   - leader=true: the caller computes and must call complete or
//     abandon on the returned entry, exactly once.
//   - leader=false, err=nil: a previous request finished; the entry
//     holds its replayable response.
//   - err != nil: the key is bound to a different body (conflict), or
//     ctx fired while waiting for an in-flight leader.
func (c *idemCache) begin(ctx context.Context, key, fp string) (e *idemEntry, leader bool, err *Error) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok {
		c.mu.Unlock()
		if cur.fp != fp {
			return nil, false, &Error{Kind: KindConflict, Msg: "idempotency key already used with a different request"}
		}
		select {
		case <-cur.done:
			if !cur.ok {
				// The leader failed and removed the entry; its error was
				// returned to the leader's client. This waiter races a
				// fresh begin — tell it to retry.
				return nil, false, &Error{Kind: KindInternal, Msg: "idempotent request failed; retry"}
			}
			return cur, false, nil
		case <-ctx.Done():
			return nil, false, ctxError(ctx, nil)
		}
	}
	e = &idemEntry{fp: fp, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	return e, true, nil
}

// complete stores the leader's successful response for replay and
// releases every waiter.
func (c *idemCache) complete(key string, e *idemEntry, body []byte, contentType string) {
	c.mu.Lock()
	e.ok = true
	e.body = body
	e.contentType = contentType
	c.mu.Unlock()
	close(e.done)
}

// abandon removes a failed leader's claim so a later retry can run
// fresh; waiters are released with ok=false.
func (c *idemCache) abandon(key string, e *idemEntry) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	close(e.done)
}
