package serve

// Degraded-mode auto-recovery. A transient filesystem fault (full
// disk, flaky mount) degrades the server to memory-only operation;
// without recovery the durability guarantee stays lost until a
// restart even after the filesystem heals. When Config.JournalReprobe
// is set, a background loop periodically re-probes the journal path
// while degraded: it closes the dead handle (releasing the path
// lock), reopens the journal in resume mode — every record that made
// it to disk survives — swaps the fresh handle in, lifts degraded
// mode, and counts the recovery. Requests in flight keep working
// throughout: lookups read the in-memory record set, and an append
// racing the swap fails cleanly on the closed handle and retries on
// the new one.

import (
	"log/slog"
	"time"

	"sdpm/internal/faults"
	"sdpm/internal/journal"
	"sdpm/internal/obs/events"
)

// streamReprobe keys the probe-interval jitter draws.
const streamReprobe = 0x7265700a00000001

// reprobeLoop runs until drain begins, probing at the configured
// interval plus a seeded jitter of up to a quarter interval (so a
// fleet of servers sharing storage does not re-probe in lockstep,
// while any single server's schedule stays deterministic).
func (s *Server) reprobeLoop() {
	defer s.reprobeWG.Done()
	for k := uint64(0); ; k++ {
		wait := s.cfg.JournalReprobe
		wait += time.Duration(faults.Uniform(int64(s.cfg.JournalReprobe), streamReprobe, k) * float64(wait) / 4)
		t := time.NewTimer(wait)
		select {
		case <-s.reprobeStop:
			t.Stop()
			return
		case <-t.C:
		}
		// The select above picks randomly when both channels are ready:
		// re-check stop so no recovery swaps the journal once drain has
		// begun (BeginDrain waits for this loop before Drain finalizes).
		select {
		case <-s.reprobeStop:
			return
		default:
		}
		if deg, _ := s.Degraded(); deg {
			if err := s.reprobe(); err != nil {
				slog.Warn("journal reprobe failed; staying degraded", "err", err)
			}
		}
	}
}

// reprobe attempts one recovery: reopen the journal path and, on
// success, re-attach it. Called by the loop, and directly by tests.
// A probe failure leaves the server degraded exactly as before.
func (s *Server) reprobe() error {
	old := s.jrnl()
	// Release the old handle first: it holds the path's writer lock,
	// and its in-memory state is not trusted past the poisoning
	// failure anyway. Close is idempotent and lookups against the old
	// handle keep working for requests that already hold it.
	if err := old.Close(); err != nil {
		slog.Warn("journal reprobe: closing degraded handle", "err", err)
	}
	j, err := journal.OpenFS(s.cfg.FS, s.cfg.JournalPath)
	if err != nil {
		return err
	}
	// Prove writability before declaring recovery: opening can succeed
	// on a filesystem that still fails writes, and flipping healthy on
	// an unwritable journal would bounce straight back to degraded.
	if err := j.Probe(); err != nil {
		j.Close()
		return err
	}
	s.swapJournal(j)
	s.clearDegraded()
	s.coll.CountServeJournalRecovery()
	s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: "journal_recovered"})
	slog.Info("journal recovered from degraded mode",
		"path", s.cfg.JournalPath, "cells", j.Len())
	return nil
}
