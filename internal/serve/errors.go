// Package serve turns the simulation engine into a hardened HTTP/JSON
// service: bounded admission with load shedding, per-request deadlines
// propagated as contexts into the engine's existing cancellation
// paths, idempotency-key result caching, per-request panic isolation
// on the worker-pool cell boundary, and graceful drain that finishes
// in-flight work and finalizes the shared journal before exit. Every
// request-path failure is a typed *Error with a stable kind and HTTP
// status — the service never panics or exits on a bad request.
//
// cmd/dpmd is the daemon wrapping this package; docs/serving.md
// documents the API and the operational contract.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Kind classifies a request failure. Kinds are the service's error
// contract: clients branch on the kind string (and the paired HTTP
// status), never on message text.
type Kind string

const (
	// KindValidation — the request itself is malformed: unknown
	// benchmark or experiment, bad JSON, out-of-range parameter. 400.
	KindValidation Kind = "validation"
	// KindOverload — the service shed the request: the admission
	// queue is full or the queue-wait budget expired before a slot
	// freed. Retry after the hinted backoff. 429.
	KindOverload Kind = "overload"
	// KindDeadline — the per-request deadline expired while the work
	// ran; partial-progress metadata rides in Meta. 504.
	KindDeadline Kind = "deadline"
	// KindCanceled — the client went away before the work finished
	// (connection closed). 499 (the de-facto client-closed status).
	KindCanceled Kind = "canceled"
	// KindConflict — an idempotency key was reused with a different
	// request body. 409.
	KindConflict Kind = "conflict"
	// KindTooLarge — the request body exceeds the configured size cap;
	// the connection may also be closed by the transport. 413.
	KindTooLarge Kind = "too_large"
	// KindUnavailable — the service is draining and accepts no new
	// work. 503.
	KindUnavailable Kind = "unavailable"
	// KindInternal — the work failed or panicked; the panic is
	// contained to this request. 500.
	KindInternal Kind = "internal"
)

// Error is the service's typed request failure.
type Error struct {
	Kind Kind
	Msg  string
	// RetryAfter, when positive, becomes a Retry-After header — the
	// backoff hint on overload and drain responses.
	RetryAfter time.Duration
	// Meta carries structured context, e.g. partial-progress fields
	// (elapsed_ms, journal_cells) on a deadline failure.
	Meta map[string]any
}

func (e *Error) Error() string { return fmt.Sprintf("serve: %s: %s", e.Kind, e.Msg) }

// HTTPStatus maps the kind to its response status.
func (e *Error) HTTPStatus() int {
	switch e.Kind {
	case KindValidation:
		return http.StatusBadRequest
	case KindOverload:
		return http.StatusTooManyRequests
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindCanceled:
		return 499
	case KindConflict:
		return http.StatusConflict
	case KindTooLarge:
		return http.StatusRequestEntityTooLarge
	case KindUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errBody is the JSON error envelope every failure returns.
type errBody struct {
	Error errDetail `json:"error"`
}

type errDetail struct {
	Kind    Kind           `json:"kind"`
	Message string         `json:"message"`
	Meta    map[string]any `json:"meta,omitempty"`
}

// writeError renders e as the JSON error envelope with its status and
// optional Retry-After header.
func writeError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		secs := int(e.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(e.HTTPStatus())
	json.NewEncoder(w).Encode(errBody{Error: errDetail{Kind: e.Kind, Message: e.Msg, Meta: e.Meta}})
}

// validationf builds a KindValidation error.
func validationf(format string, args ...any) *Error {
	return &Error{Kind: KindValidation, Msg: fmt.Sprintf(format, args...)}
}
