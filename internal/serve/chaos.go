package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sdpm/internal/faults"
)

// Chaos is the service's self-test fault injector: with -chaos armed,
// a deterministic fraction of requests stall inside the handler (to
// exercise deadlines and drain) and a fraction panic (to exercise the
// cell-boundary isolation). Draws come from the same splitmix64
// stream generator as the simulator's fault plans, keyed by the
// request's admission sequence number, so a given seed reproduces the
// exact same stall/panic pattern run after run.
type Chaos struct {
	Seed      int64
	StallProb float64 // probability a request stalls
	StallMS   float64 // stall length in wall milliseconds
	PanicProb float64 // probability a request panics mid-work
}

// Distinct draw streams keep the stall and panic decisions
// independent of each other for the same request index.
const (
	chaosStallStream = 0x7365727665730a01
	chaosPanicStream = 0x7365727665730a02
)

// ParseChaos parses a -chaos spec: "off" or "" disables; otherwise a
// comma-separated key=value list with keys seed, stall (probability),
// stall_ms, and panic (probability).
func ParseChaos(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	c := &Chaos{Seed: 1, StallMS: 100}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("serve: chaos spec %q: want key=value", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: chaos %s=%q: %v", key, val, err)
		}
		switch key {
		case "seed":
			c.Seed = int64(f)
		case "stall":
			c.StallProb = f
		case "stall_ms":
			c.StallMS = f
		case "panic":
			c.PanicProb = f
		default:
			return nil, fmt.Errorf("serve: unknown chaos key %q (seed, stall, stall_ms, panic)", key)
		}
	}
	if c.StallProb < 0 || c.StallProb > 1 || c.PanicProb < 0 || c.PanicProb > 1 {
		return nil, fmt.Errorf("serve: chaos probabilities must be in [0,1]")
	}
	if c.StallMS < 0 {
		return nil, fmt.Errorf("serve: chaos stall_ms must be >= 0")
	}
	return c, nil
}

// maybeStall sleeps the configured stall when request k draws one,
// returning early (with the context's typed error) if ctx fires
// mid-stall. A nil receiver never stalls.
func (c *Chaos) maybeStall(ctx context.Context, k uint64) *Error {
	if c == nil || c.StallProb <= 0 {
		return nil
	}
	if faults.Uniform(c.Seed, chaosStallStream, k) >= c.StallProb {
		return nil
	}
	t := time.NewTimer(time.Duration(c.StallMS * float64(time.Millisecond)))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctxError(ctx, nil)
	}
}

// shouldPanic reports whether request k draws a synthetic panic.
func (c *Chaos) shouldPanic(k uint64) bool {
	if c == nil || c.PanicProb <= 0 {
		return false
	}
	return faults.Uniform(c.Seed, chaosPanicStream, k) < c.PanicProb
}
