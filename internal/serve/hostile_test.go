package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Hostile-client tests: abusive or broken clients over a real TCP
// listener. The server must answer (or drop) each with a typed error,
// keep serving afterwards, and leak no goroutines.

// hostileServer boots the handler on a real listener.
func hostileServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	s := newTestServer(t, mutate)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs.URL
}

// checkGoroutines asserts the goroutine count settles back to the
// baseline (background pools aside) after hostile traffic.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across hostile traffic: %d -> %d", before, after)
	}
}

// A client that promises a body and disconnects halfway through it:
// the read error is contained, the connection is dropped, and the
// server keeps serving normal requests.
func TestHostileMidBodyDisconnect(t *testing.T) {
	s, base := hostileServer(t, nil)
	addr := strings.TrimPrefix(base, "http://")
	before := runtime.NumGoroutine() // baseline after the listener's own goroutines exist

	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		// Content-Length says 4096; send 10 bytes and vanish.
		fmt.Fprintf(conn, "POST /v1/sim HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"bench\":\"")
		time.Sleep(10 * time.Millisecond)
		conn.Close()
	}

	// The server is still healthy and still serves work.
	if w := do(s, "POST", "/v1/sim", `{"bench":"swim"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("request after hostile disconnects = %d (%s)", w.Code, w.Body.String())
	}
	checkGoroutines(t, before)
}

// Truncated and malformed JSON over a real connection get a typed 400
// and the connection stays usable for the next request.
func TestHostileMalformedJSON(t *testing.T) {
	_, base := hostileServer(t, nil)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, body := range []string{
		`{"bench":"swim"`,   // truncated
		`{"bench":`,         // cut mid-value
		"\x00\x01\x02",      // binary garbage
		`{"bench":"swim"}}`, // trailing brace
	} {
		resp, err := client.Post(base+"/v1/sim", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %q: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed body %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

// A client that sends a request and never reads the response must not
// wedge the server: the handler finishes, the response sits in the
// kernel buffer, and closing the connection cleans everything up.
func TestHostileNeverReads(t *testing.T) {
	s, base := hostileServer(t, nil)
	addr := strings.TrimPrefix(base, "http://")
	before := runtime.NumGoroutine() // baseline after the listener's own goroutines exist

	conns := make([]net.Conn, 0, 4)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		body := `{"bench":"swim"}`
		fmt.Fprintf(conn, "POST /v1/sim HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
		conns = append(conns, conn)
	}
	// Give the handlers time to finish writing into the socket buffers,
	// then vanish without reading a byte.
	time.Sleep(200 * time.Millisecond)
	for _, c := range conns {
		c.Close()
	}

	if w := do(s, "POST", "/v1/sim", `{"bench":"swim"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("request after never-reading clients = %d", w.Code)
	}
	checkGoroutines(t, before)
}

// A client that disconnects while its request is executing is counted
// as canceled, not as a server failure.
func TestHostileDisconnectMidExecution(t *testing.T) {
	s, base := hostileServer(t, func(c *Config) {
		c.Chaos = &Chaos{StallProb: 1, StallMS: 300, Seed: 1}
	})
	client := &http.Client{Timeout: 50 * time.Millisecond}
	_, err := client.Post(base+"/v1/sim", "application/json", strings.NewReader(`{"bench":"swim"}`))
	if err == nil {
		t.Fatal("expected the client timeout to abort the request")
	}
	// The handler notices the dead client when the stall checks its
	// context; the canceled counter advances.
	deadline := time.Now().Add(5 * time.Second)
	for s.coll.Snapshot().ServeCanceled == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.coll.Snapshot().ServeCanceled; n != 1 {
		t.Fatalf("serve_canceled = %d, want 1", n)
	}
}

// Oversized bodies get a typed 413 and do not reach the engine.
func TestMaxBody413(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBody = 256 })
	big := `{"bench":"swim","faults":"` + strings.Repeat("x", 400) + `"}`
	w := do(s, "POST", "/v1/sim", big, nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413 (%s)", w.Code, w.Body.String())
	}
	if k := kindOf(t, w); k != KindTooLarge {
		t.Fatalf("kind = %q, want too_large", k)
	}
	// A small request on the same server still works.
	if w := do(s, "POST", "/v1/sim", `{"bench":"swim"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("small body on capped server = %d", w.Code)
	}
}

// The cap applies to /v1/experiment too, and respects the configured
// value rather than a hardcoded one.
func TestMaxBodyConfigured(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBody = 64 })
	pad := strings.Repeat("y", 80)
	w := do(s, "POST", "/v1/experiment", `{"id":"`+pad+`"}`, nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized experiment body = %d, want 413", w.Code)
	}
	var echo struct {
		Error struct {
			Meta map[string]any `json:"meta"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &echo); err != nil {
		t.Fatalf("decoding 413 envelope: %v", err)
	}
	if echo.Error.Meta["max_body_bytes"] != float64(64) {
		t.Fatalf("413 meta = %v, want max_body_bytes 64", echo.Error.Meta)
	}
}
