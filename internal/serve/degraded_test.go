package serve

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"sdpm/internal/fsx"
)

var errInjectedIO = errors.New("injected: input/output error")

// newDegradableServer builds a server whose journal writes through a
// seeded fault-injecting filesystem.
func newDegradableServer(t *testing.T, fa *fsx.Faulty, mutate func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.JournalPath = "serve.journal"
		c.FS = fa
		c.JournalRetryBackoff = time.Millisecond
		if mutate != nil {
			mutate(c)
		}
	})
}

// A failed fsync poisons the journal, so the server degrades without
// burning retries: the request still succeeds with the exact bytes a
// journal-less server produces, /readyz and /status report the
// degradation, the error counter advances, and durable requests get a
// typed 503.
func TestDegradedOnSyncFailure(t *testing.T) {
	fa := fsx.NewFaulty(11).FailSyncs(1, errInjectedIO)
	s := newDegradableServer(t, fa, nil)
	plain := newTestServer(t, nil)

	w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("experiment during journal failure = %d (%s)", w.Code, w.Body.String())
	}
	if want := do(plain, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Body.String() != want.Body.String() {
		t.Fatal("degraded response differs from a journal-less server's bytes")
	}
	if deg, reason := s.Degraded(); !deg || reason == "" {
		t.Fatalf("server not degraded after unwritable journal (deg=%v reason=%q)", deg, reason)
	}
	if r := do(s, "GET", "/readyz", "", nil); r.Code != http.StatusOK || r.Body.String() != "degraded: journal\n" {
		t.Fatalf("readyz = %d %q, want 200 \"degraded: journal\"", r.Code, r.Body.String())
	}
	if st := do(s, "GET", "/status", "", nil); !strings.Contains(st.Body.String(), `"degraded": "journal"`) {
		t.Fatalf("status missing degraded flag: %s", st.Body.String())
	}
	if n := s.coll.ServeJournalErrors(); n == 0 {
		t.Fatal("journal error counter did not advance")
	}
	// Poisoned journal: retries are futile and must not have happened.
	if n := s.coll.ServeJournalErrors(); n != 1 {
		t.Fatalf("poisoned journal burned %d attempts, want 1 (no retries)", n)
	}

	// Degraded but serving: plain requests keep working from memory.
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("request after degradation = %d", w.Code)
	}
	// Durability-requiring requests get the typed 503.
	w = do(s, "POST", "/v1/experiment", `{"id":"table2","durable":true}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("durable request while degraded = %d, want 503", w.Code)
	}
	if k := kindOf(t, w); k != KindUnavailable {
		t.Fatalf("kind = %q, want unavailable", k)
	}
	if !strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("503 body does not say degraded: %s", w.Body.String())
	}
	// The Prometheus surface exports the counter.
	if m := do(s, "GET", "/metrics", "", nil); !strings.Contains(m.Body.String(), "sdpm_serve_journal_errors_total 1") {
		t.Fatalf("metrics missing journal error counter: %v", m.Code)
	}
}

// Clean write failures (no bytes landed) are retried with backoff
// before the server gives up and degrades: the configured budget is
// exactly exhausted and every attempt is counted.
func TestDegradedAfterRetryBudget(t *testing.T) {
	fa := fsx.NewFaulty(12).FailWrites(1, errInjectedIO)
	s := newDegradableServer(t, fa, func(c *Config) { c.JournalRetries = 3 })

	if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("experiment during journal failure = %d (%s)", w.Code, w.Body.String())
	}
	if deg, _ := s.Degraded(); !deg {
		t.Fatal("server not degraded after exhausting the retry budget")
	}
	// 1 initial + 3 retries on the first cell; later cells skip the
	// journal entirely once degraded.
	if n := s.coll.ServeJournalErrors(); n != 4 {
		t.Fatalf("journal error counter = %d, want 4 (initial + 3 retries)", n)
	}
}

// Seeded chaos: a journal whose fsyncs fail probabilistically. Some
// cells land durably before the first failure poisons the file; the
// server degrades exactly once, never fails a request, and the cells
// journaled before the failure stay recorded.
func TestDegradedChaosSeededSyncFaults(t *testing.T) {
	// Seed 2: with this stream the 4th append's fsync fails, so three
	// cells land durably before the journal poisons and degrades.
	fa := fsx.NewFaulty(2).FailSyncs(0.3, errInjectedIO)
	s := newDegradableServer(t, fa, nil)

	for i := 0; i < 3; i++ {
		if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
			t.Fatalf("request %d under sync chaos = %d (%s)", i, w.Code, w.Body.String())
		}
	}
	deg, _ := s.Degraded()
	if !deg {
		// 18 appends at p=0.3 failing none is astronomically unlikely
		// with this seed; treat survival as a test bug worth seeing.
		t.Fatal("chaos run never degraded; pick a different seed")
	}
	if s.journal.Len() == 0 {
		t.Fatal("no cell survived in memory")
	}
	// A retry never follows a poisoning failure, so errors == 1.
	if n := s.coll.ServeJournalErrors(); n != 1 {
		t.Fatalf("journal error counter = %d, want 1", n)
	}
}

// Without a configured journal, durable requests are rejected up
// front as validation errors — there is nothing to be durable on.
func TestDurableWithoutJournalIsValidationError(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(s, "POST", "/v1/experiment", `{"id":"table2","durable":true}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("durable without journal = %d, want 400", w.Code)
	}
	if k := kindOf(t, w); k != KindValidation {
		t.Fatalf("kind = %q, want validation", k)
	}
}

// With a healthy journal, durable requests succeed and their cells
// are journaled.
func TestDurableWithHealthyJournal(t *testing.T) {
	fa := fsx.NewFaulty(13)
	s := newDegradableServer(t, fa, nil)
	w := do(s, "POST", "/v1/experiment", `{"id":"table2","durable":true}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("durable request = %d (%s)", w.Code, w.Body.String())
	}
	if s.journal.Len() == 0 {
		t.Fatal("durable request journaled no cells")
	}
	if deg, _ := s.Degraded(); deg {
		t.Fatal("healthy journal degraded")
	}
}
