package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdpm/internal/cli"
	"sdpm/internal/core"
	"sdpm/internal/experiments"
	"sdpm/internal/faults"
	"sdpm/internal/fsx"
	"sdpm/internal/journal"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/runner"
	"sdpm/internal/workloads"
)

// Config tunes the service. The zero value is usable: Complete fills
// every unset field with the defaults below.
type Config struct {
	// MaxInflight bounds concurrently executing requests
	// (0 = GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; a full
	// queue sheds new work with 429 (0 = 4x MaxInflight).
	MaxQueue int
	// QueueWait bounds how long an admitted-to-queue request may wait
	// for a slot before it is shed (0 = 1s).
	QueueWait time.Duration
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout (0 = 2m).
	MaxTimeout time.Duration
	// DrainTimeout bounds graceful drain: in-flight requests get this
	// long to finish after shutdown begins (0 = 15s).
	DrainTimeout time.Duration
	// Workers is each experiment request's simulation parallelism
	// (0 = GOMAXPROCS); results are byte-identical for every value.
	Workers int
	// Retries re-runs a failing or panicking experiment cell, exactly
	// as dpmexp -retries does.
	Retries int
	// JournalPath, when set, records every completed experiment cell
	// to this crash-safe journal, shared across all requests; it is
	// compacted and finalized atomically on drain. The file uses the
	// same cell keys as dpmexp, so a dpmd journal resumes a dpmexp run
	// and vice versa.
	JournalPath string
	// Resume reopens an existing journal instead of truncating it.
	Resume bool
	// FS is the filesystem the journal writes through; nil selects the
	// real OS. Tests inject a seeded fault-injecting filesystem
	// (internal/fsx.Faulty) to exercise degraded mode deterministically.
	FS fsx.FS
	// JournalRetries is how many extra attempts a failed journal append
	// gets (with backoff) before the server degrades to memory-only
	// operation (0 = 2; negative = no retries). A poisoned journal —
	// torn write or failed fsync — skips retries: they cannot help.
	JournalRetries int
	// JournalRetryBackoff is the sleep before the first append retry,
	// doubling per attempt (0 = 10ms).
	JournalRetryBackoff time.Duration
	// JournalReprobe, when positive, arms degraded-mode auto-recovery:
	// while the journal is degraded, a background loop re-probes the
	// journal path at this interval (with a small seeded jitter) and —
	// when the filesystem has healed — re-attaches a fresh journal,
	// flips /readyz back to ok, and counts the recovery. Zero disables
	// auto-recovery (degraded stays until restart, the pre-existing
	// behavior).
	JournalReprobe time.Duration
	// MaxBody caps the request body in bytes; a larger body gets a
	// typed 413 (0 = 1 MiB).
	MaxBody int64
	// Chaos, when non-nil, arms deterministic self-fault injection
	// (handler stalls and synthetic panics) for robustness testing.
	Chaos *Chaos
	// Obs receives the service's metrics next to the engine's; nil
	// creates a private collector (exposed on /metrics either way).
	Obs *obs.Collector
	// Events receives serving-layer and engine events; nil creates a
	// private log.
	Events *events.Log
}

// Complete fills unset fields with defaults.
func (c *Config) Complete() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.FS == nil {
		c.FS = fsx.OS
	}
	if c.JournalRetries == 0 {
		c.JournalRetries = 2
	} else if c.JournalRetries < 0 {
		c.JournalRetries = 0
	}
	if c.JournalRetryBackoff <= 0 {
		c.JournalRetryBackoff = 10 * time.Millisecond
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20 // a request is a small JSON document; anything bigger is abuse
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	if c.Events == nil {
		c.Events = events.NewLog(0)
	}
}

// Server is the simulation service. Create with New; serve its
// Handler; stop with BeginDrain + Drain.
type Server struct {
	cfg   Config
	coll  *obs.Collector
	event *events.Log
	admit *admitter
	idem  *idemCache
	chaos *Chaos

	// benchmarks is the one workloads.All() slice the server ever
	// uses: the shared instance cache keys on program identity, so
	// every request must see the same *workloads.Benchmark values.
	benchmarks []*workloads.Benchmark
	cache      *core.Cache

	// journalMu guards the journal pointer, which the reprobe loop
	// swaps for a fresh handle on recovery. Read through jrnl(); the
	// pointer is non-nil for the server's whole lifetime iff
	// JournalPath is configured.
	journalMu sync.RWMutex
	journal   *journal.Journal
	// reprobeStop ends the auto-recovery loop; closed by BeginDrain,
	// which then waits on reprobeWG so no journal swap can race
	// Drain's finalize of the handle it read.
	reprobeStop chan struct{}
	reprobeWG   sync.WaitGroup

	// mu orders the drain flag against in-flight registration: a
	// handler holds the read side while it checks draining and joins
	// the WaitGroup, so BeginDrain's write observes either the
	// registered request (and waits for it) or the flag already set
	// (and the request is refused). No request is ever both refused
	// and waited for, or neither.
	mu       sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	// degraded flips (one-way, until restart) when the journal stays
	// unwritable past the retry budget: requests are served from
	// memory and durability-requiring requests get a typed 503. See
	// degraded.go.
	degraded       atomic.Bool
	degradedMu     sync.Mutex
	degradedReason string

	reqSeq  atomic.Uint64 // admission sequence, keys the chaos draws
	started time.Time
}

// New builds the service: one shared instance cache and benchmark set
// for its lifetime, and — when configured — the shared crash-safe
// journal. A held journal lock (another dpmd or dpmexp writing the
// same path) surfaces as the journal's typed *LockError.
func New(cfg Config) (*Server, error) {
	cfg.Complete()
	s := &Server{
		cfg:        cfg,
		coll:       cfg.Obs,
		event:      cfg.Events,
		idem:       newIdemCache(),
		chaos:      cfg.Chaos,
		benchmarks: workloads.All(),
		cache:      core.NewCache(),
		started:    time.Now(),
	}
	s.admit = newAdmitter(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueWait, s.coll)
	s.cache.Obs = s.coll
	s.cache.Events = s.event
	if cfg.JournalPath != "" {
		var (
			j   *journal.Journal
			err error
		)
		if cfg.Resume {
			j, err = journal.OpenFS(cfg.FS, cfg.JournalPath)
		} else {
			j, err = journal.CreateFS(cfg.FS, cfg.JournalPath)
		}
		if err != nil {
			return nil, err
		}
		if records, torn := j.Recovered(); records > 0 || torn > 0 {
			slog.Info("journal recovered", "path", cfg.JournalPath, "records", records, "truncated_bytes", torn)
		}
		s.journal = j
		if cfg.JournalReprobe > 0 {
			s.reprobeStop = make(chan struct{})
			s.reprobeWG.Add(1)
			go s.reprobeLoop()
		}
	}
	return s, nil
}

// jrnl returns the current journal handle (nil when no journal is
// configured). The pointer is re-read on every call because the
// reprobe loop swaps it on recovery.
func (s *Server) jrnl() *journal.Journal {
	s.journalMu.RLock()
	defer s.journalMu.RUnlock()
	return s.journal
}

// swapJournal installs a fresh journal handle and returns the old one.
func (s *Server) swapJournal(j *journal.Journal) *journal.Journal {
	s.journalMu.Lock()
	old := s.journal
	s.journal = j
	s.journalMu.Unlock()
	return old
}

// Handler returns the service's routes mounted next to the standard
// introspection endpoints (/metrics, /status, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	mux := cli.DebugMux(s.coll, s.status)
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/experiment", s.handleExperiment)
	mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	mux.HandleFunc("GET /v1/benchmarks", s.handleListBenchmarks)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// Degraded is still ready — requests are served correctly from
		// memory — but the body tells the operator durability is gone.
		if deg, _ := s.Degraded(); deg {
			w.Write([]byte("degraded: journal\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	return mux
}

// status feeds the /status endpoint.
func (s *Server) status() any {
	inflight, queued := s.coll.ServeGauges()
	accepted, shed, deadline, canceled, drains := s.coll.ServeStats()
	st := map[string]any{
		"tool":        "dpmd",
		"uptime_s":    time.Since(s.started).Seconds(),
		"draining":    s.Draining(),
		"inflight":    inflight,
		"queued":      queued,
		"accepted":    accepted,
		"shed":        shed,
		"deadline":    deadline,
		"canceled":    canceled,
		"drains":      drains,
		"cache_len":   s.cache.Len(),
		"chaos_armed": s.chaos != nil,
	}
	if j := s.jrnl(); j != nil {
		st["journal_cells"] = j.Len()
		st["journal_errors"] = s.coll.ServeJournalErrors()
		st["journal_recoveries"] = s.coll.ServeJournalRecoveries()
	}
	if deg, reason := s.Degraded(); deg {
		st["degraded"] = "journal"
		st["degraded_reason"] = reason
	}
	return st
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// BeginDrain flips the server into draining: /readyz turns 503 and
// every new request is refused with a typed unavailable error.
// In-flight requests keep running; Drain waits for them.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return
	}
	if s.reprobeStop != nil {
		// Wait the loop out: a reprobe already past its stop check could
		// otherwise swap in a fresh journal after Drain has read the
		// handle it is about to finalize, leaking the new handle and
		// finalizing a closed one.
		close(s.reprobeStop)
		s.reprobeWG.Wait()
	}
	s.coll.CountServeDrain()
	s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: "drain_begin"})
	slog.Info("drain started", "drain_timeout", s.cfg.DrainTimeout)
}

// Drain completes graceful shutdown: it waits (bounded by ctx) for
// every in-flight request to finish, then finalizes the shared
// journal — compacted and atomically renamed, so the file on disk is
// complete and deduplicated. A ctx expiry is reported after the
// journal is still safely closed with every fsynced record intact.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = fmt.Errorf("serve: drain deadline expired with requests still in flight: %w", ctx.Err())
	}
	if j := s.jrnl(); j != nil {
		deg, _ := s.Degraded()
		switch {
		case waitErr != nil:
			if err := j.Close(); err != nil {
				slog.Warn("journal close failed", "err", err)
			}
		case deg:
			// Degraded: the handle may already be closed (a failed
			// reprobe releases it before reopening) or the filesystem
			// still broken. Finalize is best-effort — the durability
			// loss is already surfaced through degraded mode, so its
			// failure must not turn a clean drain into an error.
			if err := j.Finalize(); err != nil {
				slog.Warn("journal finalize skipped in degraded mode", "err", err)
			}
		default:
			if err := j.Finalize(); err != nil {
				waitErr = fmt.Errorf("serve: journal finalize: %w", err)
			}
		}
	}
	s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: "drain_done"})
	slog.Info("drain finished", "err", waitErr)
	return waitErr
}

// deadlineFor resolves the request's deadline: ?timeout= capped by
// MaxTimeout, DefaultTimeout otherwise.
func (s *Server) deadlineFor(r *http.Request) (time.Duration, *Error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, validationf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, validationf("timeout must be positive, got %q", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// execute runs one request through the full hardened path: drain
// gate, deadline, idempotency, admission, chaos, panic-isolated work,
// and taxonomy-mapped response. work computes the success body; it
// must honor ctx.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, route string, body []byte, work func(ctx context.Context) ([]byte, string, *Error)) {
	start := time.Now()
	// Drain gate + in-flight registration, atomically vs BeginDrain.
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		writeError(w, &Error{Kind: KindUnavailable, Msg: "service is draining", RetryAfter: s.cfg.DrainTimeout})
		return
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	defer s.inflight.Done()

	timeout, verr := s.deadlineFor(r)
	if verr != nil {
		writeError(w, verr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Idempotency: duplicates of a finished request replay its bytes;
	// duplicates of an in-flight one wait for the leader.
	var (
		key   = r.Header.Get("Idempotency-Key")
		entry *idemEntry
	)
	if key != "" {
		fp := fingerprint(route, body)
		e, leader, ierr := s.idem.begin(ctx, key, fp)
		if ierr != nil {
			s.finishObs(ierr, start)
			writeError(w, ierr)
			return
		}
		if !leader {
			w.Header().Set("Idempotency-Replayed", "true")
			writeSuccess(w, e.body, e.contentType)
			s.finishObs(nil, start)
			return
		}
		entry = e
	}

	respBody, contentType, xerr := s.admitAndRun(ctx, work)
	if xerr != nil {
		if entry != nil {
			s.idem.abandon(key, entry)
		}
		s.finishObs(xerr, start)
		writeError(w, xerr)
		return
	}
	if entry != nil {
		s.idem.complete(key, entry, respBody, contentType)
	}
	writeSuccess(w, respBody, contentType)
	s.finishObs(nil, start)
}

// writeSuccess writes a success body with its content type and an
// end-to-end integrity digest: X-Sdpm-Digest commits to the exact
// body bytes, so a client can detect silent corruption on the wire
// (internal/client verifies it and treats a mismatch as retryable).
func writeSuccess(w http.ResponseWriter, body []byte, contentType string) {
	w.Header().Set("Content-Type", contentType)
	sum := sha256.Sum256(body)
	w.Header().Set("X-Sdpm-Digest", "sha256="+hex.EncodeToString(sum[:]))
	w.Write(body)
}

// admitAndRun claims an execution slot and runs work inside a
// one-cell worker pool, so a panic — the work's own or a chaos
// injection — is recovered at the cell boundary and mapped to a typed
// internal error instead of killing the process.
func (s *Server) admitAndRun(ctx context.Context, work func(ctx context.Context) ([]byte, string, *Error)) ([]byte, string, *Error) {
	release, waitMS, aerr := s.admit.acquire(ctx)
	if aerr != nil {
		return nil, "", aerr
	}
	defer release()
	s.coll.ServeAdmitted(waitMS)
	s.coll.ServeInflight(1)
	defer s.coll.ServeInflight(-1)

	seq := s.reqSeq.Add(1) - 1
	started := time.Now()
	var (
		respBody    []byte
		contentType string
		werr        *Error
	)
	err := runner.New(1).Observe(s.coll).Trace(s.event).Run(func() error {
		if serr := s.chaos.maybeStall(ctx, seq); serr != nil {
			werr = serr
			return nil
		}
		if s.chaos.shouldPanic(seq) {
			panic(fmt.Sprintf("chaos: synthetic panic (request %d)", seq))
		}
		respBody, contentType, werr = work(ctx)
		return nil
	})
	if err != nil {
		var ce *runner.CellError
		if errors.As(err, &ce) {
			s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: fmt.Sprintf("panic: %v", ce.Value)})
			slog.Error("request panicked; isolated", "panic", ce.Value)
			return nil, "", &Error{Kind: KindInternal, Msg: fmt.Sprintf("request work panicked: %v", ce.Value)}
		}
		return nil, "", &Error{Kind: KindInternal, Msg: err.Error()}
	}
	if werr != nil {
		// Attach partial-progress metadata to deadline failures: how
		// long the work ran and how many cells the shared journal has
		// already made durable (those survive for a resume).
		if werr.Kind == KindDeadline && werr.Meta == nil {
			meta := map[string]any{"elapsed_ms": time.Since(started).Milliseconds()}
			if j := s.jrnl(); j != nil {
				meta["journal_cells"] = j.Len()
			}
			werr.Meta = meta
		}
		return nil, "", werr
	}
	return respBody, contentType, nil
}

// finishObs records the request's terminal counters and latency.
func (s *Server) finishObs(e *Error, start time.Time) {
	if e != nil {
		switch e.Kind {
		case KindDeadline:
			s.coll.CountServeDeadline()
			s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: "deadline"})
		case KindCanceled:
			s.coll.CountServeCanceled()
		case KindOverload:
			s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: "shed"})
		}
	}
	s.coll.ServeFinished(float64(time.Since(start)) / float64(time.Millisecond))
}

// simRequest is the POST /v1/sim body.
type simRequest struct {
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme"`
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Audit     bool   `json:"audit,omitempty"`
}

// simResponse is the POST /v1/sim success body.
type simResponse struct {
	Bench    string  `json:"bench"`
	Scheme   string  `json:"scheme"`
	EnergyJ  float64 `json:"energy_j"`
	ExecMS   float64 `json:"exec_ms"`
	WaitMS   float64 `json:"wait_ms"`
	Requests int     `json:"requests"`
	PowerOps int     `json:"power_ops"`
}

// handleSim runs one (benchmark, scheme) simulation under the shared
// instance cache and returns its headline numbers.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	body, req, verr := decodeBody[simRequest](w, r, s.cfg.MaxBody)
	if verr != nil {
		writeError(w, verr)
		return
	}
	b, verr := s.benchByName(req.Bench)
	if verr != nil {
		writeError(w, verr)
		return
	}
	scheme, verr := schemeByName(req.Scheme)
	if verr != nil {
		writeError(w, verr)
		return
	}
	cfg := core.DefaultConfig()
	cfg.Model = b.Model()
	cfg.CacheUnits = b.CacheUnits
	cfg.Audit = req.Audit
	if req.Faults != "" {
		fc, err := faults.ParseSpec(req.Faults)
		if err != nil {
			writeError(w, validationf("%v", err))
			return
		}
		cfg.Faults = fc
		cfg.FaultSeed = req.FaultSeed
	}
	s.execute(w, r, "/v1/sim", body, func(ctx context.Context) ([]byte, string, *Error) {
		if ctx.Err() != nil {
			return nil, "", ctxError(ctx, nil)
		}
		in, err := s.cache.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, "", &Error{Kind: KindInternal, Msg: err.Error()}
		}
		res, err := in.Run(scheme)
		if err != nil {
			return nil, "", &Error{Kind: KindInternal, Msg: err.Error()}
		}
		out, err := json.Marshal(simResponse{
			Bench:    b.Name,
			Scheme:   string(scheme),
			EnergyJ:  res.EnergyJ,
			ExecMS:   res.ExecMS,
			WaitMS:   res.TotalWaitMS,
			Requests: res.Requests,
			PowerOps: res.PowerOps,
		})
		if err != nil {
			return nil, "", &Error{Kind: KindInternal, Msg: err.Error()}
		}
		return append(out, '\n'), "application/json", nil
	})
}

// expRequest is the POST /v1/experiment body.
type expRequest struct {
	ID        string `json:"id"`
	Format    string `json:"format,omitempty"` // text (default) or csv
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	Audit     bool   `json:"audit,omitempty"`
	// Durable demands the crash-safety guarantee: every cell of this
	// request is journaled durably before the response is written.
	// While the journal is degraded (unwritable) such requests get a
	// typed 503 instead of a silently non-durable success; without a
	// configured journal they are rejected outright (validation).
	Durable bool `json:"durable,omitempty"`
}

// handleExperiment renders one experiment exactly as dpmexp would —
// same suite, same cell keys, same shared-journal semantics — and
// returns the rendered table verbatim, so the response bytes are
// identical to an offline dpmexp run of the same experiment.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	body, req, verr := decodeBody[expRequest](w, r, s.cfg.MaxBody)
	if verr != nil {
		writeError(w, verr)
		return
	}
	if !slices.Contains(experiments.IDs(), req.ID) {
		writeError(w, validationf("unknown experiment %q (have %v)", req.ID, experiments.IDs()))
		return
	}
	format := req.Format
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "csv" {
		writeError(w, validationf("unknown format %q (text or csv)", format))
		return
	}
	var fc faults.Config
	if req.Faults != "" {
		parsed, err := faults.ParseSpec(req.Faults)
		if err != nil {
			writeError(w, validationf("%v", err))
			return
		}
		fc = parsed
	}
	if req.Durable && s.jrnl() == nil {
		writeError(w, validationf("durable requested but the service has no journal configured (-journal)"))
		return
	}
	s.execute(w, r, "/v1/experiment", body, func(ctx context.Context) ([]byte, string, *Error) {
		if req.Durable {
			if deg, reason := s.Degraded(); deg {
				return nil, "", unavailableDegraded(reason)
			}
		}
		su := experiments.NewSuite()
		su.Benchmarks = s.benchmarks // pointer-stable: shared cache keys on program identity
		su.Cache = s.cache
		su.Workers = s.cfg.Workers
		su.Retries = s.cfg.Retries
		su.Ctx = ctx
		su.Obs = s.coll
		su.Events = s.event
		if s.jrnl() != nil {
			// Always through the degrading wrapper (never the bare
			// journal): appends retry, then degrade, and the request is
			// still served from memory. Assigning only when non-nil
			// keeps su.Journal a true nil interface otherwise.
			su.Journal = &degradingJournal{s: s}
		}
		su.Cfg.Audit = req.Audit
		if req.Faults != "" {
			su.Cfg.Faults = fc
			su.Cfg.FaultSeed = req.FaultSeed
		}
		su.FaultSeed = req.FaultSeed
		var buf bytes.Buffer
		if err := experiments.Render(su, req.ID, &buf, format); err != nil {
			if ctx.Err() != nil {
				return nil, "", ctxError(ctx, nil)
			}
			return nil, "", &Error{Kind: KindInternal, Msg: err.Error()}
		}
		// Re-check after the work: if the journal degraded while THIS
		// request ran, some of its cells were served from memory and
		// the durability promise is already broken.
		if req.Durable {
			if deg, reason := s.Degraded(); deg {
				return nil, "", unavailableDegraded(reason)
			}
		}
		ct := "text/plain; charset=utf-8"
		if format == "csv" {
			ct = "text/csv; charset=utf-8"
		}
		return buf.Bytes(), ct, nil
	})
}

// handleListExperiments returns the experiment ids.
func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, experiments.IDs())
}

// handleListBenchmarks returns the benchmark names.
func (s *Server) handleListBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, workloads.Names())
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, &Error{Kind: KindInternal, Msg: err.Error()})
		return
	}
	writeSuccess(w, append(data, '\n'), "application/json")
}

// decodeBody reads and strictly decodes a JSON request body,
// returning the raw bytes too (the idempotency fingerprint covers
// them). The body is bounded by http.MaxBytesReader — an oversized
// one gets a typed 413 and the transport stops reading the rest.
func decodeBody[T any](w http.ResponseWriter, r *http.Request, max int64) ([]byte, *T, *Error) {
	defer r.Body.Close()
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, nil, &Error{
				Kind: KindTooLarge,
				Msg:  fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit),
				Meta: map[string]any{"max_body_bytes": mbe.Limit},
			}
		}
		return nil, nil, validationf("reading body: %v", err)
	}
	var req T
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, validationf("bad JSON body: %v", err)
	}
	// Demand a clean EOF after the document: a second Decode catches
	// trailing values AND stray tokens (a bare '}') that More() lets
	// through.
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, nil, validationf("trailing data after JSON body")
	}
	return raw, &req, nil
}

// benchByName resolves a benchmark against the server's stable set.
func (s *Server) benchByName(name string) (*workloads.Benchmark, *Error) {
	if name == "" {
		return nil, validationf("bench is required (have %v)", workloads.Names())
	}
	for _, b := range s.benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, validationf("unknown benchmark %q (have %v)", name, workloads.Names())
}

// schemeByName resolves a scheme name case-insensitively; empty
// selects Base.
func schemeByName(name string) (core.Scheme, *Error) {
	if name == "" {
		return core.Base, nil
	}
	for _, sc := range core.AllSchemes() {
		if strings.EqualFold(string(sc), name) {
			return sc, nil
		}
	}
	return "", validationf("unknown scheme %q (have %v)", name, core.AllSchemes())
}
