package serve

// Degraded mode: the service survives persistence faults instead of
// failing requests on them. Every journal append goes through
// degradingJournal, which retries transient failures with backoff and
// — when the journal stays unwritable or is poisoned (a torn write or
// failed fsync, after which the file tail is suspect) — flips the
// server into degraded mode: requests keep computing and returning
// correct results from memory, /readyz reports "degraded: journal",
// and clients that need the durability guarantee (requests with
// "durable": true) receive a typed 503 instead of a silently
// non-durable success.

import (
	"errors"
	"log/slog"
	"time"

	"sdpm/internal/experiments"
	"sdpm/internal/journal"
	"sdpm/internal/obs/events"
)

// degradingJournal is the experiments.CellJournal the server threads
// into every request's suite. Lookups pass through; appends retry and
// then degrade rather than fail the request.
type degradingJournal struct{ s *Server }

var _ experiments.CellJournal = (*degradingJournal)(nil)

// Lookup serves resumed cells straight from the journal's in-memory
// record set (which stays valid even when the file is unwritable).
func (d *degradingJournal) Lookup(key string) ([]float64, bool) {
	return d.s.jrnl().Lookup(key)
}

// Append journals one completed cell. A failure is retried up to
// JournalRetries times with doubling backoff — unless the journal is
// poisoned (the failure tore the file or broke an fsync, so retrying
// cannot help). If no attempt succeeds the server degrades and the
// cell's result is served from memory: Append reports success to the
// suite so the request completes, and the lost durability is surfaced
// through /readyz, /status, the sdpm_serve_journal_errors_total
// counter, and 503s on durability-requiring requests.
func (d *degradingJournal) Append(key string, vals []float64) error {
	s := d.s
	if s.degraded.Load() {
		return nil // already memory-only; don't hammer a dead disk
	}
	backoff := s.cfg.JournalRetryBackoff
	var last error
	for attempt := 0; ; attempt++ {
		// Refetch the handle every attempt: the reprobe loop may have
		// swapped in a fresh journal since the last one (an append to
		// the closed old handle fails cleanly and the retry lands on
		// the new one).
		j := s.jrnl()
		err := j.Append(key, vals)
		if err == nil {
			if attempt > 0 {
				slog.Info("journal append recovered after retry", "attempts", attempt+1)
			}
			return nil
		}
		last = err
		s.coll.CountServeJournalError()
		slog.Warn("journal append failed", "key", key, "attempt", attempt+1, "err", err)
		if j.Poisoned() != nil || attempt >= s.cfg.JournalRetries || s.degraded.Load() {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	s.setDegraded(last)
	return nil
}

// Degraded reports whether the server has fallen back to memory-only
// operation, and why.
func (s *Server) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedReason
}

// setDegraded flips the server into degraded mode (idempotent; the
// first cause wins as the reason).
func (s *Server) setDegraded(cause error) {
	s.degradedMu.Lock()
	first := !s.degraded.Load()
	if first {
		s.degradedReason = cause.Error()
		s.degraded.Store(true)
	}
	s.degradedMu.Unlock()
	if !first {
		return
	}
	var ioe *journal.IOError
	detail := "degraded: journal"
	if errors.As(cause, &ioe) {
		detail = "degraded: journal " + ioe.Op + " failed"
	}
	s.event.Emit(events.Event{Kind: events.KindServe, Disk: -1, Detail: detail})
	slog.Error("journal degraded; serving from memory, results are no longer durable", "err", cause)
}

// clearDegraded lifts degraded mode after a successful reprobe
// re-attached the journal.
func (s *Server) clearDegraded() {
	s.degradedMu.Lock()
	s.degraded.Store(false)
	s.degradedReason = ""
	s.degradedMu.Unlock()
}

// unavailableDegraded is the typed 503 a durability-requiring request
// receives while the journal is degraded.
func unavailableDegraded(reason string) *Error {
	return &Error{
		Kind: KindUnavailable,
		Msg:  "degraded: journal is unwritable, results are not durable: " + reason,
		Meta: map[string]any{"degraded": "journal"},
	}
}
