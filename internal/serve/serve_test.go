package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sdpm/internal/experiments"
	"sdpm/internal/journal"
	"sdpm/internal/obs"
)

// newTestServer builds a service with test-friendly defaults; mutate
// applies per-test config overrides before New.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		MaxInflight:    2,
		MaxQueue:       4,
		QueueWait:      200 * time.Millisecond,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     time.Minute,
		DrainTimeout:   10 * time.Second,
		Workers:        1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return s
}

// do runs one request against the handler and returns the recorder.
func do(s *Server, method, target string, body string, header map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	for k, v := range header {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// kindOf decodes the typed error envelope.
func kindOf(t *testing.T, w *httptest.ResponseRecorder) Kind {
	t.Helper()
	var b errBody
	if err := json.Unmarshal(w.Body.Bytes(), &b); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v (%s)", err, w.Body.String())
	}
	if b.Error.Kind == "" {
		t.Fatalf("error body missing kind: %s", w.Body.String())
	}
	return b.Error.Kind
}

// Every malformed request maps to a 400 with the validation kind —
// never a panic, never a 500.
func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, target, body string
	}{
		{"bad json", "/v1/sim", "{not json"},
		{"unknown field", "/v1/sim", `{"bench":"swim","nope":1}`},
		{"trailing data", "/v1/sim", `{"bench":"swim"} extra`},
		{"missing bench", "/v1/sim", `{}`},
		{"unknown bench", "/v1/sim", `{"bench":"doom"}`},
		{"unknown scheme", "/v1/sim", `{"bench":"swim","scheme":"WARP"}`},
		{"bad faults spec", "/v1/sim", `{"bench":"swim","faults":"zap=1"}`},
		{"unknown experiment", "/v1/experiment", `{"id":"fig99"}`},
		{"bad format", "/v1/experiment", `{"id":"table1","format":"yaml"}`},
		{"bad timeout", "/v1/sim?timeout=banana", `{"bench":"swim"}`},
		{"negative timeout", "/v1/sim?timeout=-3s", `{"bench":"swim"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, "POST", tc.target, tc.body, nil)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", w.Code, w.Body.String())
			}
			if k := kindOf(t, w); k != KindValidation {
				t.Fatalf("kind = %q, want validation", k)
			}
		})
	}
}

// A simulation request succeeds; replays under the same idempotency
// key return byte-identical bodies without recomputing, and reusing
// the key with a different body is a typed conflict.
func TestSimAndIdempotency(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"bench":"swim","scheme":"CMDRPM"}`
	hdr := map[string]string{"Idempotency-Key": "req-1"}
	first := do(s, "POST", "/v1/sim", body, hdr)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d (%s)", first.Code, first.Body.String())
	}
	var res simResponse
	if err := json.Unmarshal(first.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad sim response: %v", err)
	}
	if res.Bench != "swim" || res.Scheme != "CMDRPM" || res.EnergyJ <= 0 || res.ExecMS <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	replay := do(s, "POST", "/v1/sim", body, hdr)
	if replay.Code != http.StatusOK {
		t.Fatalf("replay: %d (%s)", replay.Code, replay.Body.String())
	}
	if replay.Header().Get("Idempotency-Replayed") != "true" {
		t.Fatal("replay missing Idempotency-Replayed header")
	}
	if !bytes.Equal(first.Body.Bytes(), replay.Body.Bytes()) {
		t.Fatalf("replay bytes differ:\n%s\nvs\n%s", first.Body.String(), replay.Body.String())
	}
	conflict := do(s, "POST", "/v1/sim", `{"bench":"mgrid"}`, hdr)
	if conflict.Code != http.StatusConflict {
		t.Fatalf("conflict status = %d, want 409", conflict.Code)
	}
	if k := kindOf(t, conflict); k != KindConflict {
		t.Fatalf("kind = %q, want conflict", k)
	}
}

// The served experiment bytes are identical to the same experiment
// rendered offline the way dpmexp does it — the service adds serving
// machinery, never changes results.
func TestExperimentByteIdentityWithOffline(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct{ id, format string }{
		{"table2", "text"},
		{"table1", "csv"},
	} {
		w := do(s, "POST", "/v1/experiment", fmt.Sprintf(`{"id":%q,"format":%q}`, tc.id, tc.format), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", tc.id, w.Code, w.Body.String())
		}
		var offline bytes.Buffer
		su := experiments.NewSuite()
		su.Workers = 1
		if err := experiments.Render(su, tc.id, &offline, tc.format); err != nil {
			t.Fatalf("offline render %s: %v", tc.id, err)
		}
		if !bytes.Equal(w.Body.Bytes(), offline.Bytes()) {
			t.Fatalf("%s/%s: served bytes differ from offline render:\n--- served ---\n%s\n--- offline ---\n%s",
				tc.id, tc.format, w.Body.String(), offline.String())
		}
	}
}

// A chaos stall past the request deadline maps to 504 with the
// deadline kind and partial-progress metadata.
func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Chaos = &Chaos{Seed: 1, StallProb: 1, StallMS: 5000}
	})
	start := time.Now()
	w := do(s, "POST", "/v1/sim?timeout=50ms", `{"bench":"swim"}`, nil)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline did not cut the stall short (took %v)", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", w.Code, w.Body.String())
	}
	if k := kindOf(t, w); k != KindDeadline {
		t.Fatalf("kind = %q, want deadline", k)
	}
	var b errBody
	json.Unmarshal(w.Body.Bytes(), &b)
	if _, ok := b.Error.Meta["elapsed_ms"]; !ok {
		t.Fatalf("deadline error missing partial-progress metadata: %s", w.Body.String())
	}
	if _, _, deadline, _, _ := s.coll.ServeStats(); deadline != 1 {
		t.Fatalf("deadline counter = %d, want 1", deadline)
	}
}

// A panicking request — here a chaos injection at the exact point
// user work runs — returns a typed 500 and leaves the server fully
// alive for the next request.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Chaos = &Chaos{Seed: 1, PanicProb: 1}
	})
	for i := 0; i < 2; i++ {
		w := do(s, "POST", "/v1/sim", `{"bench":"swim"}`, nil)
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 (%s)", i, w.Code, w.Body.String())
		}
		if k := kindOf(t, w); k != KindInternal {
			t.Fatalf("kind = %q, want internal", k)
		}
		if !strings.Contains(w.Body.String(), "panicked") {
			t.Fatalf("error does not mention the panic: %s", w.Body.String())
		}
	}
	if w := do(s, "GET", "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("server unhealthy after isolated panics: %d", w.Code)
	}
	if w := do(s, "GET", "/v1/experiments", "", nil); w.Code != http.StatusOK {
		t.Fatalf("listing failed after isolated panics: %d", w.Code)
	}
}

// Admission control, unit level: a full queue sheds instantly, a
// queue-wait expiry sheds, and a fired request context maps to the
// deadline kind — all with the slot accounting intact.
func TestAdmitterBounds(t *testing.T) {
	coll := obs.New()
	a := newAdmitter(1, 1, 80*time.Millisecond, coll)
	release1, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Occupy the single queue spot with a waiter.
	waiterDone := make(chan *Error, 1)
	go func() {
		release, _, werr := a.acquire(context.Background())
		if werr == nil {
			release()
		}
		waiterDone <- werr
	}()
	waitFor(t, func() bool { _, q := coll.ServeGauges(); return q == 1 })
	// Queue full: instant shed.
	if _, _, err := a.acquire(context.Background()); err == nil || err.Kind != KindOverload {
		t.Fatalf("full queue: err = %v, want overload", err)
	}
	// Free the slot: the waiter gets it within its budget.
	release1()
	if werr := <-waiterDone; werr != nil {
		t.Fatalf("queued waiter failed: %v", werr)
	}
	// Now the slot is free again (waiter released). Take it, and let a
	// queued request time out against the wait budget.
	release2, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if _, _, err := a.acquire(context.Background()); err == nil || err.Kind != KindOverload {
		t.Fatalf("queue-wait expiry: err = %v, want overload", err)
	}
	// A queued request whose own deadline fires first reports deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := a.acquire(ctx); err == nil || err.Kind != KindDeadline {
		t.Fatalf("ctx deadline in queue: err = %v, want deadline", err)
	}
	release2()
	if _, _, err := a.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after releases: %v", err)
	}
}

// HTTP-level load shedding: with one slot held by a stalled request
// and the queue sized to zero spare, concurrent requests are shed
// with 429 and a Retry-After hint.
func TestOverloadShedsWith429(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = 1
		c.QueueWait = 100 * time.Millisecond
		c.Chaos = &Chaos{Seed: 1, StallProb: 1, StallMS: 1500}
	})
	var wg sync.WaitGroup
	codes := make([]int, 4)
	retryAfter := make([]string, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(s, "POST", "/v1/sim?timeout=3s", `{"bench":"swim"}`, nil)
			codes[i] = w.Code
			retryAfter[i] = w.Header().Get("Retry-After")
		}(i)
		time.Sleep(30 * time.Millisecond) // deterministic arrival order
	}
	wg.Wait()
	var shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Fatalf("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Fatalf("no request was shed under overload: %v", codes)
	}
	if _, shedN, _, _, _ := s.coll.ServeStats(); int(shedN) != shed {
		t.Fatalf("shed counter = %d, want %d", shedN, shed)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// Drain flips readiness to 503, refuses new work with the typed
// unavailable error, and finalizes the shared journal atomically.
func TestDrainRefusesAndFinalizes(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.journal")
	s := newTestServer(t, func(c *Config) { c.JournalPath = jpath })
	if w := do(s, "GET", "/readyz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("experiment: %d (%s)", w.Code, w.Body.String())
	}
	s.BeginDrain()
	if w := do(s, "GET", "/readyz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", w.Code)
	}
	w := do(s, "POST", "/v1/sim", `{"bench":"swim"}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request while draining = %d, want 503", w.Code)
	}
	if k := kindOf(t, w); k != KindUnavailable {
		t.Fatalf("kind = %q, want unavailable", k)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The finalized journal is complete, deduplicated, and unlocked.
	assertJournalFinalized(t, jpath, 6) // table2 = one cell per benchmark
}

// assertJournalFinalized opens the finalized journal file and checks
// it parses cleanly with exactly n unique, non-duplicated records.
func assertJournalFinalized(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("journal missing after drain: %v", err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	seen := make(map[string]bool)
	for _, line := range lines {
		rec, err := journal.DecodeLine(line)
		if err != nil {
			t.Fatalf("finalized journal has invalid record: %v", err)
		}
		if seen[rec.Key] {
			t.Fatalf("finalized journal has duplicate cell %q", rec.Key)
		}
		seen[rec.Key] = true
	}
	if len(seen) != n {
		t.Fatalf("finalized journal has %d cells, want %d", len(seen), n)
	}
	j, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopening finalized journal: %v", err)
	}
	defer j.Close()
	if records, torn := j.Recovered(); records != n || torn != 0 {
		t.Fatalf("reopen recovered %d records, %d torn bytes; want %d, 0", records, torn, n)
	}
}

// The acceptance scenario: under seeded chaos stalls, a burst of
// concurrent requests meets a drain mid-flight. Every accepted
// request must complete or fail with a typed deadline/overload error,
// requests after drain get the typed unavailable refusal, the drain
// finishes within its deadline, and the journal finalizes with zero
// lost or duplicated cells.
func TestDrainUnderChaosCompletesEveryAcceptedRequest(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "chaos.journal")
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 2
		c.MaxQueue = 8
		c.QueueWait = 2 * time.Second
		c.JournalPath = jpath
		c.Chaos = &Chaos{Seed: 7, StallProb: 0.5, StallMS: 120}
	})
	const burst = 10
	var wg sync.WaitGroup
	type outcome struct {
		code int
		kind Kind
		body []byte
	}
	outcomes := make([]outcome, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := "/v1/experiment"
			if i%2 == 1 {
				// Odd requests carry a deadline shorter than the chaos
				// stall: if they draw a stall they must come back as a
				// typed 504, never hang.
				target += "?timeout=60ms"
			}
			w := do(s, "POST", target, `{"id":"table2"}`, nil)
			o := outcome{code: w.Code, body: w.Body.Bytes()}
			if w.Code != http.StatusOK {
				var b errBody
				if err := json.Unmarshal(w.Body.Bytes(), &b); err == nil {
					o.kind = b.Error.Kind
				}
			}
			outcomes[i] = o
		}(i)
	}
	// Give the burst a moment to be in flight, then drain under it.
	time.Sleep(30 * time.Millisecond)
	s.BeginDrain()
	if w := do(s, "GET", "/readyz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", w.Code)
	}
	late := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil)
	if late.Code != http.StatusServiceUnavailable || kindOf(t, late) != KindUnavailable {
		t.Fatalf("post-drain request = %d %s, want typed 503", late.Code, late.Body.String())
	}
	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not finish cleanly: %v", err)
	}
	if d := time.Since(drainStart); d > 8*time.Second {
		t.Fatalf("drain exceeded its deadline: %v", d)
	}
	wg.Wait()

	var succeeded int
	var reference []byte
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			succeeded++
			if reference == nil {
				reference = o.body
			} else if !bytes.Equal(reference, o.body) {
				t.Fatalf("request %d: success bytes differ across concurrent requests", i)
			}
		case http.StatusGatewayTimeout:
			if o.kind != KindDeadline {
				t.Fatalf("request %d: 504 with kind %q", i, o.kind)
			}
		case http.StatusTooManyRequests:
			if o.kind != KindOverload {
				t.Fatalf("request %d: 429 with kind %q", i, o.kind)
			}
		case http.StatusServiceUnavailable:
			// Arrived after the drain flag flipped.
			if o.kind != KindUnavailable {
				t.Fatalf("request %d: 503 with kind %q", i, o.kind)
			}
		case 499:
			if o.kind != KindCanceled {
				t.Fatalf("request %d: 499 with kind %q", i, o.kind)
			}
		default:
			t.Fatalf("request %d: unexpected status %d (%s)", i, o.code, string(o.body))
		}
	}
	if succeeded == 0 {
		t.Fatal("no request in the burst succeeded; the scenario proves nothing")
	}
	// Zero lost or duplicated cells: at least one table2 request
	// completed, so the finalized journal holds exactly its six cells,
	// each once, and the offline byte-identity holds for the survivors.
	assertJournalFinalized(t, jpath, 6)
	var offline bytes.Buffer
	su := experiments.NewSuite()
	su.Workers = 1
	if err := experiments.Render(su, "table2", &offline, "text"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reference, offline.Bytes()) {
		t.Fatalf("served table2 differs from offline render under chaos+drain")
	}
}

// A journal written by the service resumes a dpmexp-style offline
// suite and vice versa: the cell keys are the same namespace.
func TestJournalInterchangeableWithOffline(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "shared.journal")
	s := newTestServer(t, func(c *Config) { c.JournalPath = jpath })
	if w := do(s, "POST", "/v1/experiment", `{"id":"table2"}`, nil); w.Code != http.StatusOK {
		t.Fatalf("experiment: %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Resume the service's journal offline: every cell must hit.
	j, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	coll := obs.New()
	su := experiments.NewSuite()
	su.Workers = 1
	su.Journal = j
	su.Obs = coll
	var out bytes.Buffer
	if err := experiments.Render(su, "table2", &out, "text"); err != nil {
		t.Fatal(err)
	}
	j.Close()
	snap := coll.Snapshot()
	if snap.JournalMisses != 0 || snap.JournalHits == 0 {
		t.Fatalf("offline resume of the service journal recomputed cells: hits=%d misses=%d",
			snap.JournalHits, snap.JournalMisses)
	}
}

// The chaos spec parser accepts the documented grammar and rejects
// everything else.
func TestParseChaos(t *testing.T) {
	if c, err := ParseChaos(""); err != nil || c != nil {
		t.Fatalf("empty spec: %v %v", c, err)
	}
	if c, err := ParseChaos("off"); err != nil || c != nil {
		t.Fatalf("off: %v %v", c, err)
	}
	c, err := ParseChaos("seed=9,stall=0.25,stall_ms=50,panic=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 9 || c.StallProb != 0.25 || c.StallMS != 50 || c.PanicProb != 0.1 {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{"stall", "zap=1", "stall=2", "panic=-0.5", "stall_ms=-1", "seed=x"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	// Determinism: the same seed draws the same stall/panic pattern.
	a, _ := ParseChaos("seed=3,stall=0.5,panic=0.5")
	b, _ := ParseChaos("seed=3,stall=0.5,panic=0.5")
	for k := uint64(0); k < 64; k++ {
		if a.shouldPanic(k) != b.shouldPanic(k) {
			t.Fatalf("panic draw %d not deterministic", k)
		}
	}
}

// The service's second journal opener fails fast with the journal's
// typed lock error — two daemons cannot corrupt one journal.
func TestTwoServersOneJournalFailFast(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "locked.journal")
	s := newTestServer(t, func(c *Config) { c.JournalPath = jpath })
	_, err := New(Config{JournalPath: jpath})
	var le *journal.LockError
	if err == nil || !errors.As(err, &le) {
		t.Fatalf("second server: err = %v, want *journal.LockError", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
}
