package obs

// Snapshot support: a point-in-time plain-struct copy of every
// counter, gauge, and histogram in a Collector. Exporters render from
// a snapshot rather than interleaving atomic loads with formatting,
// so a live scrape mid-run can never show torn histogram totals (a
// _count that disagrees with the bucket sums because observations
// landed between the two loads). The JSON tags make a snapshot
// directly servable as the live /status endpoint's body.

// HistogramSnapshot is a point-in-time copy of one Histogram. Count
// is derived from the bucket counts (not the independent count
// atomic), so Count == sum(Buckets) holds by construction even when
// the snapshot races concurrent observers.
type HistogramSnapshot struct {
	// Buckets holds per-bucket (non-cumulative) observation counts;
	// the last entry is the +Inf bucket.
	Buckets [len(bucketBoundsMS) + 1]int64 `json:"buckets"`
	Sum     float64                        `json:"sum"`
	Count   int64                          `json:"count"`
}

// snapshot copies h. The per-bucket loads race concurrent Observe
// calls benignly: each bucket is internally consistent, and Count is
// summed from exactly the loaded values.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// BucketBoundsMS returns the shared histogram bucket upper bounds
// (the +Inf bucket is implicit after the last bound).
func BucketBoundsMS() []float64 {
	out := make([]float64, len(bucketBoundsMS))
	copy(out, bucketBoundsMS[:])
	return out
}

// DiskSnapshot is a point-in-time copy of one disk's accumulators.
type DiskSnapshot struct {
	Requests int64 `json:"requests"`
	// StateMS maps residency-state label (DiskState.String) to
	// accumulated milliseconds.
	StateMS map[string]float64 `json:"state_ms"`
	// RPMMS maps RPM level to accumulated spinning milliseconds
	// (levels with zero residency are omitted); OtherMS catches RPMs
	// outside the disk's level grid.
	RPMMS   map[int]float64 `json:"rpm_ms,omitempty"`
	OtherMS float64         `json:"other_rpm_ms,omitempty"`
}

// Snapshot is a point-in-time copy of a whole Collector.
type Snapshot struct {
	SimRuns  int64 `json:"sim_runs"`
	Requests int64 `json:"requests"`
	// PowerOps maps op kind label (PowerOpKind.String) to count.
	PowerOps map[string]int64 `json:"power_ops"`
	// Spin-up mispredictions by flavor.
	MissOnDemand int64 `json:"spinup_miss_ondemand"`
	MissInflight int64 `json:"spinup_miss_inflight"`
	// Faults maps fault kind label (FaultKind.String) to count.
	Faults map[string]int64 `json:"faults"`

	ServiceMS HistogramSnapshot `json:"service_ms"`
	WaitMS    HistogramSnapshot `json:"wait_ms"`
	IdleMS    HistogramSnapshot `json:"idle_ms"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheWaits  int64 `json:"cache_singleflight_waits"`

	RunnerTasks  int64 `json:"runner_tasks"`
	RunnerBusyNS int64 `json:"runner_busy_ns"`
	RunnerActive int64 `json:"runner_workers_active"`
	RunnerQueue  int64 `json:"runner_queue_depth"`

	CellPanics  int64 `json:"cell_panics"`
	CellRetries int64 `json:"cell_retries"`

	JournalHits   int64 `json:"journal_hits"`
	JournalMisses int64 `json:"journal_misses"`

	ServeAccepted int64 `json:"serve_accepted"`
	ServeShed     int64 `json:"serve_shed"`
	ServeDeadline int64 `json:"serve_deadline"`
	ServeCanceled int64 `json:"serve_canceled"`
	ServeDrains   int64 `json:"serve_drains"`
	// ServeJournalErrors counts journal append failures seen by the
	// serving layer (every failed retry, before and after degrading).
	ServeJournalErrors int64 `json:"serve_journal_errors"`
	// ServeJournalRecoveries counts degraded-mode recoveries (the
	// journal re-probe re-attached durability).
	ServeJournalRecoveries int64             `json:"serve_journal_recoveries"`
	ServeInflight          int64             `json:"serve_inflight"`
	ServeQueued            int64             `json:"serve_queue_depth"`
	ServeWaitMS            HistogramSnapshot `json:"serve_queue_wait_ms"`
	ServeMS                HistogramSnapshot `json:"serve_handle_ms"`

	Disks []DiskSnapshot `json:"disks,omitempty"`
}

// Snapshot reads every counter, gauge, and histogram once and returns
// the copies. A nil collector returns a zero snapshot. The snapshot
// allocates (maps, disk slice); it is meant for scrape/export paths,
// not per-event ones.
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	s.PowerOps = make(map[string]int64, int(numPowerOpKinds))
	s.Faults = make(map[string]int64, int(numFaultKinds))
	if c == nil {
		for k := PowerOpKind(0); k < numPowerOpKinds; k++ {
			s.PowerOps[k.String()] = 0
		}
		for k := FaultKind(0); k < numFaultKinds; k++ {
			s.Faults[k.String()] = 0
		}
		return s
	}
	s.SimRuns = c.simRuns.Load()
	s.Requests = c.requests.Load()
	for k := PowerOpKind(0); k < numPowerOpKinds; k++ {
		s.PowerOps[k.String()] = c.powerOps[k].Load()
	}
	s.MissOnDemand = c.missOnDemand.Load()
	s.MissInflight = c.missInflight.Load()
	for k := FaultKind(0); k < numFaultKinds; k++ {
		s.Faults[k.String()] = c.faults[k].Load()
	}
	s.ServiceMS = c.serviceMS.snapshot()
	s.WaitMS = c.waitMS.snapshot()
	s.IdleMS = c.idleMS.snapshot()
	s.CacheHits, s.CacheMisses, s.CacheWaits = c.cacheHits.Load(), c.cacheMisses.Load(), c.cacheWaits.Load()
	s.RunnerTasks = c.runnerTasks.Load()
	s.RunnerBusyNS = c.runnerBusyNS.Load()
	s.RunnerActive = c.runnerActive.Load()
	s.RunnerQueue = c.runnerQueue.Load()
	s.CellPanics, s.CellRetries = c.cellPanics.Load(), c.cellRetries.Load()
	s.JournalHits, s.JournalMisses = c.journalHits.Load(), c.journalMisses.Load()
	s.ServeAccepted, s.ServeShed, s.ServeDeadline, s.ServeCanceled, s.ServeDrains = c.ServeStats()
	s.ServeJournalErrors = c.ServeJournalErrors()
	s.ServeJournalRecoveries = c.ServeJournalRecoveries()
	s.ServeInflight, s.ServeQueued = c.ServeGauges()
	s.ServeWaitMS = c.serveWaitMS.snapshot()
	s.ServeMS = c.serveMS.snapshot()
	if ds := c.disks.Load(); ds != nil {
		s.Disks = make([]DiskSnapshot, len(*ds))
		for d, dm := range *ds {
			out := &s.Disks[d]
			out.Requests = dm.requests.Load()
			out.StateMS = make(map[string]float64, int(numDiskStates))
			for st := DiskState(0); st < numDiskStates; st++ {
				out.StateMS[st.String()] = dm.stateMS[st].Load()
			}
			for i := range dm.rpmMS {
				if ms := dm.rpmMS[i].Load(); ms != 0 {
					if out.RPMMS == nil {
						out.RPMMS = make(map[int]float64)
					}
					out.RPMMS[dm.minRPM+i*dm.rpmStep] = ms
				}
			}
			out.OtherMS = dm.otherMS.Load()
		}
	}
	return s
}
