package events

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	if seq := l.Emit(Event{Kind: KindSpinDown}); seq != 0 {
		t.Fatalf("nil Emit returned seq %d, want 0", seq)
	}
	l.Resolve(1, Outcome{RegretJ: 5})
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil {
		t.Fatal("nil log reported contents")
	}
}

func TestEmitResolveRoundTrip(t *testing.T) {
	l := NewLog(16)
	s1 := l.Emit(Event{TMS: 10, Kind: KindSpinDown, Disk: 0, Trigger: TrigThreshold, BreakEvenMS: 1200})
	s2 := l.Emit(Event{TMS: 20, Kind: KindRPMShift, Disk: 1, Trigger: TrigHint, TargetRPM: 6000, PredictedIdleMS: 900})
	if s1 != 1 || s2 != 2 {
		t.Fatalf("seqs = %d, %d; want 1, 2", s1, s2)
	}
	l.Resolve(s1, Outcome{MeasuredIdleMS: 5000, WindowMS: 5100, ActualJ: 9, OracleJ: 7, RegretJ: 2})
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if evs[0].RegretJ != 2 || evs[0].MeasuredIdleMS != 5000 || evs[0].WindowMS != 5100 {
		t.Fatalf("resolved event = %+v", evs[0])
	}
	if evs[1].RegretJ != 0 || evs[1].TargetRPM != 6000 {
		t.Fatalf("unresolved event = %+v", evs[1])
	}
	// Resolving seq 0 (the nil-log sentinel) and unknown seqs is inert.
	l.Resolve(0, Outcome{RegretJ: 99})
	l.Resolve(77, Outcome{RegretJ: 99})
	for _, e := range l.Events() {
		if e.RegretJ == 99 {
			t.Fatal("bogus Resolve mutated the log")
		}
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{TMS: float64(i), Kind: KindBailout})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	// An evicted seq must not resolve into the slot that replaced it.
	l.Resolve(3, Outcome{RegretJ: 99})
	for _, e := range l.Events() {
		if e.RegretJ == 99 {
			t.Fatal("evicted Resolve mutated a survivor")
		}
	}
	// A surviving seq still resolves.
	l.Resolve(9, Outcome{RegretJ: 1})
	found := false
	for _, e := range l.Events() {
		if e.Seq == 9 && e.RegretJ == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("surviving seq did not resolve")
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	l := NewLog(1024)
	ev := Event{TMS: 1, Kind: KindSpinDown, Disk: 0, Trigger: TrigThreshold}
	allocs := testing.AllocsPerRun(500, func() {
		seq := l.Emit(ev)
		l.Resolve(seq, Outcome{RegretJ: 1})
	})
	if allocs != 0 {
		t.Fatalf("Emit+Resolve allocated %.1f per op, want 0", allocs)
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := NewLog(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq := l.Emit(Event{Kind: KindFault, Disk: i % 4})
				l.Resolve(seq, Outcome{ActualJ: 1})
			}
		}()
	}
	wg.Wait()
	if got := l.Len() + int(l.Dropped()); got != 8*200 {
		t.Fatalf("held+dropped = %d, want %d", got, 8*200)
	}
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("Events not in seq order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seq: 1, TMS: 12.5, Kind: KindSpinDown, Program: "lu", Policy: "tpm", Disk: 2,
			Trigger: TrigThreshold, BreakEvenMS: 1800, MeasuredIdleMS: 6000, WindowMS: 6010,
			ActualJ: 11.25, OracleJ: 9.5, RegretJ: 1.75},
		{Seq: 2, TMS: -1, Kind: KindJournalHit, Detail: "suite.cell"},
		{Seq: 3, TMS: 40, Kind: KindRPMShift, Disk: 0, Trigger: TrigHint, TargetRPM: 5400, PredictedIdleMS: 750},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestDecodeJSONLErrors(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("malformed line decoded without error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
	out, err := DecodeJSONL(strings.NewReader("\n\n"))
	if err != nil || out != nil {
		t.Fatalf("blank input: %v, %v", out, err)
	}
}

func TestAggregateRegret(t *testing.T) {
	evs := []Event{
		{Kind: KindSpinDown, Policy: "tpm", Disk: 0, ActualJ: 10, OracleJ: 6, RegretJ: 4},
		{Kind: KindSpinUp, Policy: "tpm", Disk: 0}, // unattributed
		{Kind: KindSpinDown, Policy: "tpm", Disk: 1, ActualJ: 3, OracleJ: 3, RegretJ: 0},
		{Kind: KindRPMShift, Policy: "drpm", Disk: 0, ActualJ: 9, OracleJ: 2, RegretJ: 7},
		{Kind: KindSpinupMiss, Policy: "tpm", Disk: 0, Detail: "ondemand"}, // not a decision
	}
	groups := AggregateRegret(evs)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].Policy != "drpm" || groups[0].RegretJ != 7 {
		t.Fatalf("top group = %+v", groups[0])
	}
	if groups[1].Policy != "tpm" || groups[1].Disk != 0 || groups[1].Decisions != 2 || groups[1].Attributed != 1 {
		t.Fatalf("tpm/0 group = %+v", groups[1])
	}
}

func TestTopRegretAndCounts(t *testing.T) {
	var evs []Event
	for i := 0; i < 5; i++ {
		evs = append(evs, Event{Seq: uint64(i + 1), Kind: KindSpinDown, RegretJ: float64(i)})
	}
	evs = append(evs,
		Event{Kind: KindSpinupMiss, Detail: "ondemand"},
		Event{Kind: KindSpinupMiss, Detail: "ondemand"},
		Event{Kind: KindSpinupMiss, Detail: "inflight"},
		Event{Kind: KindBailout, Detail: "policy_decision"},
		Event{Kind: KindBailout, Detail: "disk_transition"},
		Event{Kind: KindBailout, Detail: "policy_decision"},
	)
	top := TopRegret(evs, 2)
	if len(top) != 2 || top[0].RegretJ != 4 || top[1].RegretJ != 3 {
		t.Fatalf("top = %+v", top)
	}
	od, inf := MissCounts(evs)
	if od != 2 || inf != 1 {
		t.Fatalf("MissCounts = %d, %d", od, inf)
	}
	bail := CountByDetail(evs, KindBailout)
	if bail["policy_decision"] != 2 || bail["disk_transition"] != 1 {
		t.Fatalf("bailouts = %v", bail)
	}
	byKind := CountByKind(evs)
	if byKind[KindSpinDown] != 5 || byKind[KindSpinupMiss] != 3 {
		t.Fatalf("byKind = %v", byKind)
	}
}

func TestFilter(t *testing.T) {
	evs := []Event{
		{Kind: KindSpinDown, Policy: "tpm", Disk: 0},
		{Kind: KindSpinDown, Policy: "itpm", Disk: 1},
		{Kind: KindSpinUp, Policy: "tpm", Disk: 1},
	}
	if got := Filter(evs, KindSpinDown, "", -1); len(got) != 2 {
		t.Fatalf("kind filter = %d", len(got))
	}
	if got := Filter(evs, "", "tpm", 1); len(got) != 1 || got[0].Kind != KindSpinUp {
		t.Fatalf("policy+disk filter = %+v", got)
	}
	if got := Filter(evs, "", "", -1); len(got) != 3 {
		t.Fatalf("no-op filter = %d", len(got))
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := NewLog(0)
	if cap(l.buf) != DefaultCapacity {
		t.Fatalf("cap = %d, want %d", cap(l.buf), DefaultCapacity)
	}
}

func TestEventsOrderAcrossWrap(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 7; i++ {
		l.Emit(Event{Detail: fmt.Sprintf("e%d", i)})
	}
	evs := l.Events()
	want := []string{"e4", "e5", "e6"}
	for i, e := range evs {
		if e.Detail != want[i] {
			t.Fatalf("evs[%d] = %s, want %s", i, e.Detail, want[i])
		}
	}
}
