package events

// Aggregation helpers shared by the dpmquery CLI and the dpmsim/dpmexp
// regret report blocks. All helpers are pure functions over decoded
// event slices, so they work identically on a live log's Events()
// copy and on a JSONL file read back from disk.

import "sort"

// RegretGroup aggregates decision outcomes per (policy, disk).
type RegretGroup struct {
	Policy     string
	Disk       int
	Decisions  int     // decision events in the group
	Attributed int     // decisions carrying a period attribution
	ActualJ    float64 // summed measured energy of attributed periods
	OracleJ    float64 // summed oracle minima
	RegretJ    float64 // ActualJ - OracleJ
}

// AggregateRegret groups decision events by (policy, disk) and sums
// their energy attributions, sorted by descending regret (ties broken
// by policy then disk for determinism).
func AggregateRegret(evs []Event) []RegretGroup {
	type key struct {
		policy string
		disk   int
	}
	groups := make(map[key]*RegretGroup)
	for i := range evs {
		e := &evs[i]
		if !IsDecision(e.Kind) {
			continue
		}
		k := key{e.Policy, e.Disk}
		g := groups[k]
		if g == nil {
			g = &RegretGroup{Policy: e.Policy, Disk: e.Disk}
			groups[k] = g
		}
		g.Decisions++
		if e.ActualJ != 0 || e.OracleJ != 0 {
			g.Attributed++
			g.ActualJ += e.ActualJ
			g.OracleJ += e.OracleJ
			g.RegretJ += e.RegretJ
		}
	}
	out := make([]RegretGroup, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RegretJ != out[j].RegretJ {
			return out[i].RegretJ > out[j].RegretJ
		}
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		return out[i].Disk < out[j].Disk
	})
	return out
}

// TopRegret returns the n decision events with the largest regret, in
// descending regret order (ties broken by seq for determinism).
func TopRegret(evs []Event, n int) []Event {
	var dec []Event
	for i := range evs {
		if IsDecision(evs[i].Kind) {
			dec = append(dec, evs[i])
		}
	}
	sort.Slice(dec, func(i, j int) bool {
		if dec[i].RegretJ != dec[j].RegretJ {
			return dec[i].RegretJ > dec[j].RegretJ
		}
		return dec[i].Seq < dec[j].Seq
	})
	if n >= 0 && len(dec) > n {
		dec = dec[:n]
	}
	return dec
}

// MissCounts tallies spinup_miss events by flavor: ondemand (the
// request paid the full spin-up) and inflight (a spin-up was already
// underway but finished too late). These match the metrics
// collector's sdpm_spinup_miss_total counters one for one.
func MissCounts(evs []Event) (ondemand, inflight int) {
	for i := range evs {
		if evs[i].Kind != KindSpinupMiss {
			continue
		}
		switch evs[i].Detail {
		case "ondemand":
			ondemand++
		case "inflight":
			inflight++
		}
	}
	return ondemand, inflight
}

// CountByDetail tallies events of one kind by their Detail string.
func CountByDetail(evs []Event, kind string) map[string]int {
	out := make(map[string]int)
	for i := range evs {
		if evs[i].Kind == kind {
			out[evs[i].Detail]++
		}
	}
	return out
}

// CountByKind tallies all events by kind.
func CountByKind(evs []Event) map[string]int {
	out := make(map[string]int)
	for i := range evs {
		out[evs[i].Kind]++
	}
	return out
}

// Filter returns the events matching every non-zero criterion:
// kind and policy match exactly when non-empty; disk matches exactly
// when >= 0.
func Filter(evs []Event, kind, policy string, disk int) []Event {
	var out []Event
	for i := range evs {
		e := &evs[i]
		if kind != "" && e.Kind != kind {
			continue
		}
		if policy != "" && e.Policy != policy {
			continue
		}
		if disk >= 0 && e.Disk != disk {
			continue
		}
		out = append(out, *e)
	}
	return out
}
