package events

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzEventDecode drives the JSONL decoder with arbitrary input and,
// when the input decodes, checks the encode→decode round trip is a
// fixed point: re-encoding the decoded events and decoding again must
// reproduce them exactly.
func FuzzEventDecode(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t_ms":10,"kind":"spin_down","disk":0,"trigger":"threshold","break_even_ms":1500}`))
	f.Add([]byte(`{"seq":2,"t_ms":-1,"kind":"journal_hit","disk":-1,"detail":"lu.tpm"}` + "\n" +
		`{"seq":3,"t_ms":99.5,"kind":"rpm_shift","disk":3,"rpm":5400,"predicted_idle_ms":800,"regret_j":0.25}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"kind":"spinup_miss","detail":"ondemand"}`))
	f.Add([]byte(`{"seq":18446744073709551615,"t_ms":1e308,"kind":"bailout"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, evs); err != nil {
			t.Fatalf("re-encode of decoded events failed: %v", err)
		}
		again, err := DecodeJSONL(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded events failed: %v", err)
		}
		if len(evs) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(evs, again) {
			t.Fatalf("round trip not a fixed point:\n first  %+v\n second %+v", evs, again)
		}
	})
}
