// Package events provides the decision-provenance event log: a
// nil-safe, allocation-conscious structured record of every power
// decision the simulator makes (and the engine events around it),
// with enough context to attribute energy to individual decisions.
//
// Where the metrics collector (package obs) answers "how much" in
// aggregate — histograms, counters, residency — the event log answers
// "which decision, why, and what did it cost": each spin-down,
// spin-up, and RPM shift is recorded with its deciding policy, its
// trigger, its inputs (predicted idle, break-even time), and — once
// the idle period it gambled on has resolved — the measured idle and
// the energy regret against the oracle choice for that period.
//
// The log is a fixed-capacity ring: when full, the oldest events are
// evicted (and counted) rather than growing without bound. A nil
// *Log is a valid sink that records nothing, so the simulator can
// thread one unconditionally and pay a single predictable branch per
// emit point.
package events

import "sync"

// Event kinds. Decision kinds (spin_down, spin_up, rpm_shift) carry
// provenance inputs and are later resolved with a measured outcome;
// the remaining kinds are point records of engine lifecycle moments.
const (
	KindSpinDown    = "spin_down"    // decision: spin to standby
	KindSpinUp      = "spin_up"      // decision: spin back to full speed
	KindRPMShift    = "rpm_shift"    // decision: modulate spindle speed
	KindSpinupMiss  = "spinup_miss"  // a request blocked on disk readiness
	KindBailout     = "bailout"      // batched executor dropped to the general path
	KindFault       = "fault"        // injected-fault lifecycle (fail/retry/timeout/fallback)
	KindJournalHit  = "journal_hit"  // experiment cell restored from the journal
	KindJournalMiss = "journal_miss" // experiment cell computed (journal had no entry)
	KindCellRetry   = "cell_retry"   // runner retried a failed cell
	KindCellPanic   = "cell_panic"   // runner recovered a cell panic
	KindServe       = "serve"        // serving-layer lifecycle (shed/deadline/drain/panic)
)

// Decision triggers: what prompted a decision-kind event.
const (
	TrigThreshold  = "threshold"  // reactive idle-threshold expiry (TPM)
	TrigOracle     = "oracle"     // retroactive oracle placement (ITPM/IDRPM)
	TrigRamp       = "ramp"       // array-wide ramp controller (DRPM)
	TrigHint       = "hint"       // compiler-inserted power op in the trace
	TrigDemand     = "demand"     // on-demand spin-up forced by a request
	TrigController = "controller" // per-request controller update (AfterService)
	TrigFinish     = "finish"     // trailing-idle handling at program end
)

// IsDecision reports whether kind is a power-decision kind (one that
// carries provenance inputs and an energy-regret outcome).
func IsDecision(kind string) bool {
	return kind == KindSpinDown || kind == KindSpinUp || kind == KindRPMShift
}

// Event is one structured log entry. Decision events are emitted when
// the power action fires and resolved in place (via Log.Resolve) when
// the idle period they belong to ends; all other kinds are complete
// at emit time. Fields that do not apply to a kind are zero and
// omitted from the JSONL encoding.
type Event struct {
	// Seq is the log-assigned sequence number, starting at 1. It
	// orders events within one run and keys Resolve.
	Seq uint64 `json:"seq"`
	// TMS is the simulated time of the event in milliseconds, or -1
	// for engine events with no simulated clock (journal, runner).
	TMS float64 `json:"t_ms"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Program and Policy label the run (trace program name and scheme
	// label) so merged logs from a suite stay attributable.
	Program string `json:"program,omitempty"`
	Policy  string `json:"policy,omitempty"`
	// Disk is the disk index, or -1 when the event is not disk-scoped.
	Disk int `json:"disk"`
	// Trigger is one of the Trig* constants (decision kinds), or a
	// free-form reason for bailout/fault kinds.
	Trigger string `json:"trigger,omitempty"`
	// TargetRPM is the target spindle speed of an rpm_shift decision.
	TargetRPM int `json:"rpm,omitempty"`
	// PredictedIdleMS is the decision's idle-length input: the
	// compiler's estimate for hint-triggered ops, or 0 when the
	// policy used no prediction.
	PredictedIdleMS float64 `json:"predicted_idle_ms,omitempty"`
	// BreakEvenMS is the break-even threshold the decision compared
	// against (TPM-style decisions).
	BreakEvenMS float64 `json:"break_even_ms,omitempty"`
	// MeasuredIdleMS is the actual length of the idle period the
	// decision acted inside, filled in at resolution.
	MeasuredIdleMS float64 `json:"measured_idle_ms,omitempty"`
	// WindowMS is the span from the period start to the moment the
	// next request could be serviced (includes any readiness wait).
	WindowMS float64 `json:"window_ms,omitempty"`
	// ActualJ/OracleJ/RegretJ carry the period's energy attribution:
	// energy actually spent over the idle period, the oracle minimum
	// for a period of that length, and their difference. Only the
	// first decision of a period carries them (so sums over the log
	// never double-count a period).
	ActualJ float64 `json:"actual_j,omitempty"`
	OracleJ float64 `json:"oracle_j,omitempty"`
	RegretJ float64 `json:"regret_j,omitempty"`
	// Detail disambiguates within a kind: spinup_miss "ondemand" vs
	// "inflight", fault "fail"/"retry"/"timeout"/"fallback", bailout
	// reasons, journal/cell keys.
	Detail string `json:"detail,omitempty"`
}

// Outcome is the measured resolution of a decision event.
type Outcome struct {
	MeasuredIdleMS float64
	WindowMS       float64
	ActualJ        float64
	OracleJ        float64
	RegretJ        float64
}

// DefaultCapacity is the ring capacity CLIs use unless overridden:
// large enough to hold every decision of any experiment in the suite,
// small enough to preallocate without ceremony.
const DefaultCapacity = 1 << 16

// Log is a fixed-capacity ring of events. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops that report an
// empty log), so a single branch-free "is there a log" decision can
// be threaded through hot paths.
type Log struct {
	mu      sync.Mutex
	buf     []Event // ring storage; event seq s lives at (s-1) % cap(buf)
	seq     uint64  // last assigned sequence number
	dropped uint64  // events evicted by ring wrap-around
}

// NewLog returns a log holding at most capacity events (the oldest
// are evicted first). Non-positive capacities use DefaultCapacity.
// The ring storage is preallocated so Emit never allocates.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// Emit appends ev, assigning and returning its sequence number. The
// returned seq keys a later Resolve. A nil log returns 0 (a seq no
// Resolve will ever match).
func (l *Log) Emit(ev Event) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	idx := int((l.seq - 1) % uint64(cap(l.buf)))
	if idx < len(l.buf) {
		if l.buf[idx].Seq != 0 {
			l.dropped++
		}
		l.buf[idx] = ev
	} else {
		l.buf = append(l.buf, ev)
	}
	seq := l.seq
	l.mu.Unlock()
	return seq
}

// Resolve fills in the measured outcome of the decision event with
// the given seq. Resolving seq 0, an evicted event, or on a nil log
// is a silent no-op: by the time a long idle period resolves, its
// decision may legitimately have been evicted.
func (l *Log) Resolve(seq uint64, out Outcome) {
	if l == nil || seq == 0 {
		return
	}
	l.mu.Lock()
	idx := int((seq - 1) % uint64(cap(l.buf)))
	if idx < len(l.buf) && l.buf[idx].Seq == seq {
		e := &l.buf[idx]
		e.MeasuredIdleMS = out.MeasuredIdleMS
		e.WindowMS = out.WindowMS
		e.ActualJ = out.ActualJ
		e.OracleJ = out.OracleJ
		e.RegretJ = out.RegretJ
	}
	l.mu.Unlock()
}

// Len returns the number of events currently held.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns the number of events evicted by ring wrap-around.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the held events in ascending seq order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(l.buf))
	// The oldest surviving seq is l.seq - len + 1; walk the ring from
	// its slot forward.
	oldest := l.seq - uint64(len(l.buf)) + 1
	for s := oldest; s <= l.seq; s++ {
		out = append(out, l.buf[int((s-1)%uint64(cap(l.buf)))])
	}
	return out
}
