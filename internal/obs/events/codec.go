package events

// JSONL codec for event logs: one JSON object per line, in seq
// order. JSONL (rather than one big array) keeps logs greppable,
// streamable, and mergeable with cat.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxLineBytes bounds a single encoded event line; real events are a
// few hundred bytes, so the cap only guards the decoder against
// pathological input.
const maxLineBytes = 1 << 20

// WriteJSONL writes events to w, one JSON object per line.
func WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return fmt.Errorf("events: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a JSONL event stream from r. Blank lines are
// skipped; any malformed line fails the decode with its line number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: line %d: %w", line+1, err)
	}
	return out, nil
}
