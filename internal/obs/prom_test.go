package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// sample is one parsed exposition line: name, sorted label pairs, value.
type sample struct {
	name   string
	labels string
	value  float64
}

// parsePrometheus is a minimal text-exposition parser used to
// round-trip WritePrometheus output: it checks line-level syntax and
// returns every sample, plus the declared TYPE of each family.
func parsePrometheus(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := parseSample(t, line)
		key := s.name
		if s.labels != "" {
			key += "{" + s.labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = s.value
	}
	return samples, types
}

func parseSample(t *testing.T, line string) sample {
	t.Helper()
	rest := line
	var labels []string
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			t.Fatalf("bad label block: %q", line)
		}
		for _, lp := range strings.Split(rest[i+1:j], ",") {
			k, v, ok := strings.Cut(lp, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("bad label pair %q in %q", lp, line)
			}
			labels = append(labels, k+"="+v)
		}
		rest = rest[j+1:]
	} else {
		if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			name = rest[:sp]
			rest = rest[sp:]
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		t.Fatalf("want exactly one value on %q", line)
	}
	var v float64
	var err error
	if fields[0] == "+Inf" {
		v = 0 // not used as a value in our output
	} else if v, err = strconv.ParseFloat(fields[0], 64); err != nil {
		t.Fatalf("bad value on %q: %v", line, err)
	}
	sort.Strings(labels)
	return sample{name: name, labels: strings.Join(labels, ","), value: v}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	c := New()
	c.EnsureDisks(2, 3000, 1200, 11)
	c.CountSimRun()
	for i := 0; i < 5; i++ {
		c.ObserveRequest(0, 4.2, 0, 100)
	}
	c.ObserveRequest(1, 7.5, 12000, 60001)
	c.ObserveResidency(0, StateIdle, 15000, 250.5)
	c.ObserveResidency(0, StateService, 15000, 10)
	c.ObserveResidency(1, StateStandby, 0, 5000)
	c.ObserveResidency(1, StateIdle, 3001, 3) // off-grid -> rpm="other"
	c.CountPowerOp(OpSpinDown)
	c.CountPowerOp(OpSpinUp)
	c.CountPowerOp(OpSetRPM)
	c.CountPowerOp(OpSetRPM)
	c.CountSpinupMiss(true)
	c.CountSpinupMiss(false)
	c.CountSpinupMiss(false)
	c.CountCacheMiss()
	c.CountCacheHit()
	c.CountCacheHit()
	c.CountCacheWait()
	c.RunnerTask(2e9)
	c.RunnerQueue(3)
	c.RunnerWorker(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, c); err != nil {
		t.Fatal(err)
	}
	samples, types := parsePrometheus(t, sb.String())

	// Every sample's family must have a TYPE declaration.
	for key := range samples {
		name, _, _ := strings.Cut(key, "{")
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if types[base] == "" {
			t.Errorf("sample %s has no TYPE declaration", key)
		}
	}

	want := map[string]float64{
		"sdpm_sim_runs_total":                                1,
		"sdpm_requests_total":                                6,
		`sdpm_power_ops_total{kind="spin_down"}`:             1,
		`sdpm_power_ops_total{kind="spin_up"}`:               1,
		`sdpm_power_ops_total{kind="set_rpm"}`:               2,
		`sdpm_spinup_mispredictions_total{kind="ondemand"}`:  1,
		`sdpm_spinup_mispredictions_total{kind="inflight"}`:  2,
		`sdpm_disk_requests_total{disk="0"}`:                 5,
		`sdpm_disk_requests_total{disk="1"}`:                 1,
		`sdpm_disk_state_ms_total{disk="0",state="idle"}`:    250.5,
		`sdpm_disk_state_ms_total{disk="0",state="service"}`: 10,
		`sdpm_disk_state_ms_total{disk="1",state="standby"}`: 5000,
		`sdpm_disk_rpm_ms_total{disk="0",rpm="15000"}`:       260.5,
		`sdpm_disk_rpm_ms_total{disk="1",rpm="other"}`:       3,
		"sdpm_cache_hits_total":                              2,
		"sdpm_cache_misses_total":                            1,
		"sdpm_cache_singleflight_waits_total":                1,
		"sdpm_runner_tasks_total":                            1,
		"sdpm_runner_busy_seconds_total":                     2,
		"sdpm_runner_workers_active":                         2,
		"sdpm_runner_queue_depth":                            3,
		"sdpm_request_service_ms_count":                      6,
		`sdpm_request_wait_ms_bucket{le="+Inf"}`:             6,
		`sdpm_idle_period_ms_bucket{le="100"}`:               5,
		`sdpm_idle_period_ms_bucket{le="300000"}`:            6,
	}
	for key, v := range want {
		got, ok := samples[key]
		if !ok {
			t.Errorf("missing sample %s", key)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", key, got, v)
		}
	}

	// Histogram invariants: buckets cumulative and le="+Inf" == count.
	for _, h := range []string{"sdpm_request_service_ms", "sdpm_request_wait_ms", "sdpm_idle_period_ms"} {
		prev := -1.0
		for i := range bucketBoundsMS {
			key := fmt.Sprintf("%s_bucket{le=%q}", h, fmtFloat(bucketBoundsMS[i]))
			v, ok := samples[key]
			if !ok {
				t.Fatalf("missing bucket %s", key)
			}
			if v < prev {
				t.Errorf("%s buckets not cumulative at %s", h, key)
			}
			prev = v
		}
		if samples[h+`_bucket{le="+Inf"}`] != samples[h+"_count"] {
			t.Errorf("%s: +Inf bucket %g != count %g", h, samples[h+`_bucket{le="+Inf"}`], samples[h+"_count"])
		}
	}
}
