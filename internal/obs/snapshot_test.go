package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotConsistentUnderWriters is the torn-total regression
// test: while writers hammer the collector, every snapshot must
// satisfy Count == sum(Buckets) for each histogram — the invariant a
// direct _count atomic read cannot guarantee mid-scrape.
func TestSnapshotConsistentUnderWriters(t *testing.T) {
	c := New()
	c.EnsureDisks(2, 4200, 600, 8)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				c.ObserveRequest(i%2, float64(i%7), float64(i%3), float64(i%1000))
				c.ObserveResidency(i%2, StateIdle, 4200+600*(i%8), 1.5)
				c.CountPowerOp(PowerOpKind(i % int(numPowerOpKinds)))
				c.CountFault(FaultKind(i % int(numFaultKinds)))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := c.Snapshot()
		for name, h := range map[string]*HistogramSnapshot{
			"service": &s.ServiceMS, "wait": &s.WaitMS, "idle": &s.IdleMS,
		} {
			var sum int64
			for _, b := range h.Buckets {
				sum += b
			}
			if sum != h.Count {
				t.Errorf("snapshot %d: %s histogram torn: count %d != bucket sum %d", i, name, h.Count, sum)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// A concurrent Prometheus render must also hold the invariant:
	// the +Inf cumulative bucket equals _count for every histogram.
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	checkExpositionTotals(t, buf.String())
}

// checkExpositionTotals parses the exposition's histogram lines and
// asserts each family's +Inf bucket equals its _count.
func checkExpositionTotals(t *testing.T, text string) {
	t.Helper()
	inf := make(map[string]string)
	count := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `_bucket{le="+Inf"}`) {
			name := line[:strings.Index(line, "_bucket")]
			inf[name] = line[strings.LastIndex(line, " ")+1:]
		} else if i := strings.Index(line, "_count "); i >= 0 && !strings.HasPrefix(line, "#") {
			count[line[:i]] = line[i+len("_count "):]
		}
	}
	if len(inf) == 0 || len(inf) != len(count) {
		t.Fatalf("exposition parse found %d +Inf buckets, %d counts", len(inf), len(count))
	}
	for name, v := range inf {
		if count[name] != v {
			t.Errorf("%s: +Inf bucket %s != count %s", name, v, count[name])
		}
	}
}

func TestSnapshotValues(t *testing.T) {
	c := New()
	c.EnsureDisks(1, 6000, 1200, 4)
	c.CountSimRun()
	c.ObserveRequest(0, 3, 0, 120)
	c.ObserveRequest(0, 4, 50, 9000)
	c.ObserveResidency(0, StateService, 6000, 7)
	c.ObserveResidency(0, StateStandby, 0, 300)
	c.ObserveResidency(0, StateIdle, 4242, 1) // off-grid -> other
	c.CountPowerOp(OpSpinDown)
	c.CountSpinupMiss(true)
	c.CountFault(FaultRemap)
	c.CountCacheHit()
	c.RunnerTask(2e9)
	c.RunnerQueue(3)
	c.CountCellRetry()
	c.CountJournalHit()

	s := c.Snapshot()
	if s.SimRuns != 1 || s.Requests != 2 {
		t.Fatalf("runs/requests = %d/%d", s.SimRuns, s.Requests)
	}
	if s.ServiceMS.Count != 2 || s.ServiceMS.Sum != 7 {
		t.Fatalf("service histogram = %+v", s.ServiceMS)
	}
	if s.PowerOps["spin_down"] != 1 || s.PowerOps["spin_up"] != 0 {
		t.Fatalf("power ops = %v", s.PowerOps)
	}
	if s.MissOnDemand != 1 || s.MissInflight != 0 {
		t.Fatalf("misses = %d/%d", s.MissOnDemand, s.MissInflight)
	}
	if s.Faults["remap_hit"] != 1 {
		t.Fatalf("faults = %v", s.Faults)
	}
	if len(s.Disks) != 1 {
		t.Fatalf("disks = %d", len(s.Disks))
	}
	d := s.Disks[0]
	if d.Requests != 2 || d.StateMS["service"] != 7 || d.StateMS["standby"] != 300 {
		t.Fatalf("disk snapshot = %+v", d)
	}
	if d.RPMMS[6000] != 7 || d.OtherMS != 1 {
		t.Fatalf("rpm residency = %v other %v", d.RPMMS, d.OtherMS)
	}
	if s.CacheHits != 1 || s.RunnerTasks != 1 || s.RunnerBusyNS != 2e9 || s.RunnerQueue != 3 {
		t.Fatalf("engine counters: %+v", s)
	}
	if s.CellRetries != 1 || s.JournalHits != 1 {
		t.Fatalf("cell/journal counters: %+v", s)
	}

	// The snapshot is the /status body; it must marshal cleanly with
	// integer-keyed RPM maps becoming string keys.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"6000":7`) {
		t.Fatalf("marshalled snapshot lacks rpm residency: %s", b)
	}
}

func TestSnapshotNil(t *testing.T) {
	var c *Collector
	s := c.Snapshot()
	if s.Requests != 0 || len(s.Disks) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	// Label maps are populated (with zeros) so renderers need no nil
	// checks.
	if _, ok := s.PowerOps["spin_up"]; !ok {
		t.Fatal("nil snapshot lacks power-op labels")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil collector rendered %d bytes", buf.Len())
	}
}

// TestPrometheusSnapshotRender pins the snapshot-rendered exposition
// to the same shape the pre-snapshot exporter produced.
func TestPrometheusSnapshotRender(t *testing.T) {
	c := New()
	c.EnsureDisks(1, 6000, 1200, 2)
	c.ObserveRequest(0, 3, 0, 120)
	c.ObserveResidency(0, StateIdle, 6000, 10)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sdpm_requests_total 1\n",
		fmt.Sprintf("sdpm_request_service_ms_bucket{le=%q} 1\n", "5"),
		"sdpm_request_service_ms_sum 3\n",
		"sdpm_request_service_ms_count 1\n",
		"sdpm_disk_rpm_ms_total{disk=\"0\",rpm=\"6000\"} 10\n",
		"sdpm_disk_state_ms_total{disk=\"0\",state=\"idle\"} 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
