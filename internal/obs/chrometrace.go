package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one event of the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing). Timestamps and
// durations are in microseconds. The field set covers the phases the
// exporter emits: complete spans ("X"), instants ("i"), counters
// ("C"), and metadata ("M").
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" thread, "p" process, "g" global
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of a trace file.
type chromeTrace struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON
// object that loads in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Output is deterministic for a given event slice
// (map-valued args are marshaled with sorted keys).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}
