package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the collector in Prometheus text exposition
// format (version 0.0.4). The collector is read once into a Snapshot
// and rendered from it, so a scrape racing live writers can never
// show a histogram whose _count disagrees with its bucket sums.
// Output is deterministic: metric families appear in a fixed order,
// disks in index order, RPM levels ascending. Histogram buckets are
// cumulative, as the format requires. A nil collector renders an
// empty (but valid) exposition.
func WritePrometheus(w io.Writer, c *Collector) error {
	if c == nil {
		return bufio.NewWriter(w).Flush()
	}
	s := c.Snapshot()
	return WritePrometheusSnapshot(w, &s)
}

// WritePrometheusSnapshot renders a previously-taken snapshot. Live
// endpoints that serve both /metrics and /status from one consistent
// read use this directly.
func WritePrometheusSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	writeCounter(bw, "sdpm_sim_runs_total", "Simulation runs started.", s.SimRuns)
	writeCounter(bw, "sdpm_requests_total", "Disk requests serviced.", s.Requests)
	writeHistogram(bw, "sdpm_request_service_ms", "Request service time in milliseconds.", &s.ServiceMS)
	writeHistogram(bw, "sdpm_request_wait_ms", "Request readiness wait (spin-up or shift completion) in milliseconds.", &s.WaitMS)
	writeHistogram(bw, "sdpm_idle_period_ms", "Length of the inter-request idle period ending at each request, in milliseconds.", &s.IdleMS)

	header(bw, "sdpm_power_ops_total", "Executed power-management operations by kind.", "counter")
	for k := PowerOpKind(0); k < numPowerOpKinds; k++ {
		fmt.Fprintf(bw, "sdpm_power_ops_total{kind=%q} %d\n", k.String(), s.PowerOps[k.String()])
	}

	header(bw, "sdpm_spinup_mispredictions_total", "Requests that blocked on a disk spin-up: ondemand = no pre-activation (disk in standby), inflight = pre-activation issued too late.", "counter")
	fmt.Fprintf(bw, "sdpm_spinup_mispredictions_total{kind=\"ondemand\"} %d\n", s.MissOnDemand)
	fmt.Fprintf(bw, "sdpm_spinup_mispredictions_total{kind=\"inflight\"} %d\n", s.MissInflight)

	header(bw, "sdpm_faults_total", "Injected fault events by kind: spin-up failures, retries, timeout give-ups, on-demand fallbacks, bad-sector remap hits, degraded-window services.", "counter")
	for k := FaultKind(0); k < numFaultKinds; k++ {
		fmt.Fprintf(bw, "sdpm_faults_total{kind=%q} %d\n", k.String(), s.Faults[k.String()])
	}

	if len(s.Disks) > 0 {
		header(bw, "sdpm_disk_requests_total", "Requests serviced per disk.", "counter")
		for d := range s.Disks {
			fmt.Fprintf(bw, "sdpm_disk_requests_total{disk=\"%d\"} %d\n", d, s.Disks[d].Requests)
		}
		header(bw, "sdpm_disk_state_ms_total", "Per-disk residency by power state, in milliseconds.", "counter")
		for d := range s.Disks {
			for st := DiskState(0); st < numDiskStates; st++ {
				fmt.Fprintf(bw, "sdpm_disk_state_ms_total{disk=\"%d\",state=%q} %s\n",
					d, st.String(), fmtFloat(s.Disks[d].StateMS[st.String()]))
			}
		}
		header(bw, "sdpm_disk_rpm_ms_total", "Per-disk spinning-time residency by RPM level, in milliseconds (zero levels omitted).", "counter")
		for d := range s.Disks {
			dm := &s.Disks[d]
			rpms := make([]int, 0, len(dm.RPMMS))
			for rpm := range dm.RPMMS {
				rpms = append(rpms, rpm)
			}
			sort.Ints(rpms)
			for _, rpm := range rpms {
				fmt.Fprintf(bw, "sdpm_disk_rpm_ms_total{disk=\"%d\",rpm=\"%d\"} %s\n",
					d, rpm, fmtFloat(dm.RPMMS[rpm]))
			}
			if dm.OtherMS != 0 {
				fmt.Fprintf(bw, "sdpm_disk_rpm_ms_total{disk=\"%d\",rpm=\"other\"} %s\n", d, fmtFloat(dm.OtherMS))
			}
		}
	}

	writeCounter(bw, "sdpm_cache_hits_total", "Instance-cache hits (preparation already memoized).", s.CacheHits)
	writeCounter(bw, "sdpm_cache_misses_total", "Instance-cache misses (preparation executed).", s.CacheMisses)
	writeCounter(bw, "sdpm_cache_singleflight_waits_total", "Instance-cache callers that blocked on a concurrent preparation of the same key.", s.CacheWaits)

	writeCounter(bw, "sdpm_runner_tasks_total", "Worker-pool cells completed.", s.RunnerTasks)
	header(bw, "sdpm_runner_busy_seconds_total", "Cumulative worker busy time in seconds.", "counter")
	fmt.Fprintf(bw, "sdpm_runner_busy_seconds_total %s\n", fmtFloat(float64(s.RunnerBusyNS)/1e9))
	writeGauge(bw, "sdpm_runner_workers_active", "Workers currently executing a cell.", s.RunnerActive)
	writeGauge(bw, "sdpm_runner_queue_depth", "Cells claimed by no worker yet.", s.RunnerQueue)
	writeCounter(bw, "sdpm_runner_cell_panics_total", "Worker-pool cells recovered from a panic (reported as CellError).", s.CellPanics)
	writeCounter(bw, "sdpm_runner_cell_retries_total", "Retries of failing worker-pool cells.", s.CellRetries)

	writeCounter(bw, "sdpm_journal_hits_total", "Experiment cells served from the result journal on resume.", s.JournalHits)
	writeCounter(bw, "sdpm_journal_misses_total", "Experiment cells computed and appended to the result journal.", s.JournalMisses)

	writeCounter(bw, "sdpm_serve_accepted_total", "Requests admitted past the serving layer's admission queue.", s.ServeAccepted)
	writeCounter(bw, "sdpm_serve_shed_total", "Requests rejected by admission control (queue full or queue-wait budget expired).", s.ServeShed)
	writeCounter(bw, "sdpm_serve_deadline_total", "Requests whose deadline expired while queued or executing (504).", s.ServeDeadline)
	writeCounter(bw, "sdpm_serve_canceled_total", "Requests abandoned by their client before completion.", s.ServeCanceled)
	writeCounter(bw, "sdpm_serve_drains_total", "Drain transitions (readiness flipped to draining).", s.ServeDrains)
	writeCounter(bw, "sdpm_serve_journal_errors_total", "Journal append failures seen by the serving layer (each failed retry counts).", s.ServeJournalErrors)
	writeCounter(bw, "sdpm_serve_journal_recoveries_total", "Degraded-mode recoveries: the journal re-probe re-attached durability.", s.ServeJournalRecoveries)
	writeGauge(bw, "sdpm_serve_inflight", "Requests currently executing in the serving layer.", s.ServeInflight)
	writeGauge(bw, "sdpm_serve_queue_depth", "Requests currently waiting in the admission queue.", s.ServeQueued)
	writeHistogram(bw, "sdpm_serve_queue_wait_ms", "Admission-queue wait of accepted requests in milliseconds.", &s.ServeWaitMS)
	writeHistogram(bw, "sdpm_serve_handle_ms", "Handler latency of admitted requests in milliseconds.", &s.ServeMS)
	return bw.Flush()
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeCounter(w io.Writer, name, help string, v int64) {
	header(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeGauge(w io.Writer, name, help string, v int64) {
	header(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeHistogram(w io.Writer, name, help string, h *HistogramSnapshot) {
	header(w, name, help, "histogram")
	cum := int64(0)
	for i := range bucketBoundsMS {
		cum += h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(bucketBoundsMS[i]), cum)
	}
	cum += h.Buckets[len(bucketBoundsMS)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
