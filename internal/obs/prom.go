package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the collector in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metric families
// appear in a fixed order, disks in index order, RPM levels ascending.
// Histogram buckets are cumulative, as the format requires. A nil
// collector renders an empty (but valid) exposition.
func WritePrometheus(w io.Writer, c *Collector) error {
	bw := bufio.NewWriter(w)
	if c != nil {
		writeCounter(bw, "sdpm_sim_runs_total", "Simulation runs started.", c.simRuns.Load())
		writeCounter(bw, "sdpm_requests_total", "Disk requests serviced.", c.requests.Load())
		writeHistogram(bw, "sdpm_request_service_ms", "Request service time in milliseconds.", &c.serviceMS)
		writeHistogram(bw, "sdpm_request_wait_ms", "Request readiness wait (spin-up or shift completion) in milliseconds.", &c.waitMS)
		writeHistogram(bw, "sdpm_idle_period_ms", "Length of the inter-request idle period ending at each request, in milliseconds.", &c.idleMS)

		header(bw, "sdpm_power_ops_total", "Executed power-management operations by kind.", "counter")
		for k := PowerOpKind(0); k < numPowerOpKinds; k++ {
			fmt.Fprintf(bw, "sdpm_power_ops_total{kind=%q} %d\n", k.String(), c.powerOps[k].Load())
		}

		header(bw, "sdpm_spinup_mispredictions_total", "Requests that blocked on a disk spin-up: ondemand = no pre-activation (disk in standby), inflight = pre-activation issued too late.", "counter")
		fmt.Fprintf(bw, "sdpm_spinup_mispredictions_total{kind=\"ondemand\"} %d\n", c.missOnDemand.Load())
		fmt.Fprintf(bw, "sdpm_spinup_mispredictions_total{kind=\"inflight\"} %d\n", c.missInflight.Load())

		header(bw, "sdpm_faults_total", "Injected fault events by kind: spin-up failures, retries, timeout give-ups, on-demand fallbacks, bad-sector remap hits, degraded-window services.", "counter")
		for k := FaultKind(0); k < numFaultKinds; k++ {
			fmt.Fprintf(bw, "sdpm_faults_total{kind=%q} %d\n", k.String(), c.faults[k].Load())
		}

		if ds := c.disks.Load(); ds != nil && len(*ds) > 0 {
			header(bw, "sdpm_disk_requests_total", "Requests serviced per disk.", "counter")
			for d, dm := range *ds {
				fmt.Fprintf(bw, "sdpm_disk_requests_total{disk=\"%d\"} %d\n", d, dm.requests.Load())
			}
			header(bw, "sdpm_disk_state_ms_total", "Per-disk residency by power state, in milliseconds.", "counter")
			for d, dm := range *ds {
				for st := DiskState(0); st < numDiskStates; st++ {
					fmt.Fprintf(bw, "sdpm_disk_state_ms_total{disk=\"%d\",state=%q} %s\n",
						d, st.String(), fmtFloat(dm.stateMS[st].Load()))
				}
			}
			header(bw, "sdpm_disk_rpm_ms_total", "Per-disk spinning-time residency by RPM level, in milliseconds (zero levels omitted).", "counter")
			for d, dm := range *ds {
				for i := range dm.rpmMS {
					if ms := dm.rpmMS[i].Load(); ms != 0 {
						fmt.Fprintf(bw, "sdpm_disk_rpm_ms_total{disk=\"%d\",rpm=\"%d\"} %s\n",
							d, dm.minRPM+i*dm.rpmStep, fmtFloat(ms))
					}
				}
				if ms := dm.otherMS.Load(); ms != 0 {
					fmt.Fprintf(bw, "sdpm_disk_rpm_ms_total{disk=\"%d\",rpm=\"other\"} %s\n", d, fmtFloat(ms))
				}
			}
		}

		writeCounter(bw, "sdpm_cache_hits_total", "Instance-cache hits (preparation already memoized).", c.cacheHits.Load())
		writeCounter(bw, "sdpm_cache_misses_total", "Instance-cache misses (preparation executed).", c.cacheMisses.Load())
		writeCounter(bw, "sdpm_cache_singleflight_waits_total", "Instance-cache callers that blocked on a concurrent preparation of the same key.", c.cacheWaits.Load())

		writeCounter(bw, "sdpm_runner_tasks_total", "Worker-pool cells completed.", c.runnerTasks.Load())
		header(bw, "sdpm_runner_busy_seconds_total", "Cumulative worker busy time in seconds.", "counter")
		fmt.Fprintf(bw, "sdpm_runner_busy_seconds_total %s\n", fmtFloat(float64(c.runnerBusyNS.Load())/1e9))
		writeGauge(bw, "sdpm_runner_workers_active", "Workers currently executing a cell.", c.runnerActive.Load())
		writeGauge(bw, "sdpm_runner_queue_depth", "Cells claimed by no worker yet.", c.runnerQueue.Load())
		writeCounter(bw, "sdpm_runner_cell_panics_total", "Worker-pool cells recovered from a panic (reported as CellError).", c.cellPanics.Load())
		writeCounter(bw, "sdpm_runner_cell_retries_total", "Retries of failing worker-pool cells.", c.cellRetries.Load())

		writeCounter(bw, "sdpm_journal_hits_total", "Experiment cells served from the result journal on resume.", c.journalHits.Load())
		writeCounter(bw, "sdpm_journal_misses_total", "Experiment cells computed and appended to the result journal.", c.journalMisses.Load())
	}
	return bw.Flush()
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeCounter(w io.Writer, name, help string, v int64) {
	header(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeGauge(w io.Writer, name, help string, v int64) {
	header(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeHistogram(w io.Writer, name, help string, h *Histogram) {
	header(w, name, help, "histogram")
	cum := int64(0)
	for i := range bucketBoundsMS {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(bucketBoundsMS[i]), cum)
	}
	cum += h.counts[len(bucketBoundsMS)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.sum.Load()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
