package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The serving-layer counters, gauges, and histograms accumulate,
// snapshot, and render — and every method is nil-receiver safe, like
// the rest of the collector.
func TestServeMetrics(t *testing.T) {
	c := New()
	c.ServeAdmitted(1.5)
	c.ServeAdmitted(40)
	c.ServeFinished(12)
	c.CountServeShed()
	c.CountServeShed()
	c.CountServeDeadline()
	c.CountServeCanceled()
	c.CountServeDrain()
	c.CountServeJournalError()
	c.CountServeJournalRecovery()
	c.CountServeJournalRecovery()
	c.ServeInflight(1)
	c.ServeQueued(2)
	c.ServeQueued(-1)

	accepted, shed, deadline, canceled, drains := c.ServeStats()
	if accepted != 2 || shed != 2 || deadline != 1 || canceled != 1 || drains != 1 {
		t.Fatalf("ServeStats = %d %d %d %d %d", accepted, shed, deadline, canceled, drains)
	}
	if c.ServeJournalErrors() != 1 || c.ServeJournalRecoveries() != 2 {
		t.Fatalf("journal counters = %d errors, %d recoveries", c.ServeJournalErrors(), c.ServeJournalRecoveries())
	}
	inflight, queued := c.ServeGauges()
	if inflight != 1 || queued != 1 {
		t.Fatalf("ServeGauges = %d %d", inflight, queued)
	}

	s := c.Snapshot()
	if s.ServeAccepted != 2 || s.ServeShed != 2 || s.ServeDeadline != 1 ||
		s.ServeCanceled != 1 || s.ServeDrains != 1 ||
		s.ServeJournalErrors != 1 || s.ServeJournalRecoveries != 2 ||
		s.ServeInflight != 1 || s.ServeQueued != 1 {
		t.Fatalf("snapshot serve fields wrong: %+v", s)
	}
	if s.ServeWaitMS.Count != 2 || s.ServeMS.Count != 1 {
		t.Fatalf("serve histograms: wait count %d, handle count %d", s.ServeWaitMS.Count, s.ServeMS.Count)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"sdpm_serve_accepted_total 2",
		"sdpm_serve_shed_total 2",
		"sdpm_serve_deadline_total 1",
		"sdpm_serve_canceled_total 1",
		"sdpm_serve_drains_total 1",
		"sdpm_serve_journal_errors_total 1",
		"sdpm_serve_journal_recoveries_total 2",
		"sdpm_serve_inflight 1",
		"sdpm_serve_queue_depth 1",
		"sdpm_serve_queue_wait_ms_count 2",
		"sdpm_serve_handle_ms_count 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("prometheus output missing %q:\n%s", series, out)
		}
	}
}

// A nil collector absorbs every serving-layer call and reports zeros,
// so unobserved servers need no branches.
func TestServeMetricsNilCollector(t *testing.T) {
	var c *Collector
	c.ServeAdmitted(1)
	c.ServeFinished(1)
	c.CountServeShed()
	c.CountServeDeadline()
	c.CountServeCanceled()
	c.CountServeDrain()
	c.CountServeJournalError()
	c.CountServeJournalRecovery()
	c.ServeInflight(1)
	c.ServeQueued(1)
	if a, s, d, x, dr := c.ServeStats(); a|s|d|x|dr != 0 {
		t.Fatalf("nil ServeStats = %d %d %d %d %d", a, s, d, x, dr)
	}
	if c.ServeJournalErrors() != 0 || c.ServeJournalRecoveries() != 0 {
		t.Fatalf("nil journal counters nonzero")
	}
	if i, q := c.ServeGauges(); i|q != 0 {
		t.Fatalf("nil ServeGauges = %d %d", i, q)
	}
}
