// Package obs is the engine's observability layer: a low-overhead
// metrics collector threaded through the simulator (request service
// and wait latency, idle-period lengths, per-disk state and RPM
// residency, power ops, spin-up mispredictions), the instance cache
// (hit/miss/singleflight-wait), and the worker pool (task counts,
// utilization, queue depth), plus two exporters — Prometheus text
// exposition (WritePrometheus) and Chrome trace-event / Perfetto JSON
// (WriteChromeTrace).
//
// A nil *Collector is a valid no-op everywhere: every method guards
// its receiver, so instrumented code paths carry a single branch and
// zero allocations when observability is off. An attached Collector
// also allocates nothing per event: histograms are fixed atomic
// arrays, per-disk storage is preallocated by EnsureDisks, and all
// updates are atomic adds (float accumulators use a CAS loop). One
// Collector may be shared by any number of concurrent simulations,
// cache lookups, and pool workers.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// afloat is an atomically-updatable float64 accumulator.
type afloat struct{ bits atomic.Uint64 }

func (f *afloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *afloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// bucketBoundsMS holds the shared latency/duration bucket upper
// bounds in milliseconds. Service times are single-digit ms, waits
// span zero to multi-second spin-ups, and idle periods reach minutes,
// so the grid covers 0.5 ms through 5 minutes.
var bucketBoundsMS = [16]float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100,
	250, 500, 1000, 2500, 5000, 15000, 60000, 300000,
}

// Histogram is a fixed-bucket histogram of millisecond durations.
// Observations are lock-free and allocation-free.
type Histogram struct {
	counts [len(bucketBoundsMS) + 1]atomic.Int64 // last bucket is +Inf
	sum    afloat
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(bucketBoundsMS) && v > bucketBoundsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DiskState labels per-disk residency time. The states mirror the
// simulator's power states, with spinning time split into idle and
// request service.
type DiskState uint8

// Disk residency states.
const (
	StateService DiskState = iota
	StateIdle
	StateStandby
	StateSpinDown
	StateSpinUp
	StateRPMShift
	numDiskStates
)

// String returns the Prometheus label value of the state.
func (s DiskState) String() string {
	switch s {
	case StateService:
		return "service"
	case StateIdle:
		return "idle"
	case StateStandby:
		return "standby"
	case StateSpinDown:
		return "spindown"
	case StateSpinUp:
		return "spinup"
	default:
		return "rpmshift"
	}
}

// PowerOpKind labels executed power-management operations.
type PowerOpKind uint8

// Power op kinds (matching the trace's call names).
const (
	OpSpinDown PowerOpKind = iota
	OpSpinUp
	OpSetRPM
	numPowerOpKinds
)

// String returns the Prometheus label value of the kind.
func (k PowerOpKind) String() string {
	switch k {
	case OpSpinDown:
		return "spin_down"
	case OpSpinUp:
		return "spin_up"
	default:
		return "set_rpm"
	}
}

// FaultKind labels injected-fault events (see internal/faults).
type FaultKind uint8

// Fault kinds.
const (
	// FaultSpinUpFail is one failed spin-up attempt.
	FaultSpinUpFail FaultKind = iota
	// FaultRetry is one spin-up retry (backoff taken after a failure).
	FaultRetry
	// FaultTimeout is a spin-up call abandoned at its timeout cap.
	FaultTimeout
	// FaultFallback is a request served on demand because an earlier
	// pre-activation gave up.
	FaultFallback
	// FaultRemap is a request that hit a remapped bad sector.
	FaultRemap
	// FaultDegraded is a request serviced inside a degradation window.
	FaultDegraded
	numFaultKinds
)

// String returns the Prometheus label value of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSpinUpFail:
		return "spinup_fail"
	case FaultRetry:
		return "spinup_retry"
	case FaultTimeout:
		return "spinup_timeout"
	case FaultFallback:
		return "ondemand_fallback"
	case FaultRemap:
		return "remap_hit"
	default:
		return "degraded_service"
	}
}

// diskMetrics holds one disk's accumulators. The RPM residency grid
// is fixed at creation (EnsureDisks) from the disk model's level
// parameters; residency at an RPM outside the grid lands in otherMS.
type diskMetrics struct {
	requests atomic.Int64
	stateMS  [numDiskStates]afloat
	minRPM   int
	rpmStep  int
	rpmMS    []afloat
	otherMS  afloat
}

// levelIndex maps an RPM value onto the residency grid.
func (d *diskMetrics) levelIndex(rpm int) (int, bool) {
	if d.rpmStep <= 0 {
		return 0, false
	}
	off := rpm - d.minRPM
	if off < 0 || off%d.rpmStep != 0 {
		return 0, false
	}
	i := off / d.rpmStep
	if i >= len(d.rpmMS) {
		return 0, false
	}
	return i, true
}

// Collector accumulates engine metrics. Construct with New; a nil
// *Collector is a valid no-op sink.
type Collector struct {
	simRuns  atomic.Int64
	requests atomic.Int64
	powerOps [numPowerOpKinds]atomic.Int64
	// Spin-up mispredictions: requests that blocked on a disk that
	// was not ready because of a spin-up. "inflight" is the paper's
	// pre-activation failure mode (the spin-up was issued but too
	// late); "ondemand" means no pre-activation happened at all (the
	// request found the disk in or heading to standby).
	missOnDemand atomic.Int64
	missInflight atomic.Int64

	// faults counts injected-fault events by kind (all zero unless a
	// fault plan is attached to the simulation).
	faults [numFaultKinds]atomic.Int64

	serviceMS Histogram
	waitMS    Histogram
	idleMS    Histogram

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheWaits  atomic.Int64

	runnerTasks  atomic.Int64
	runnerBusyNS atomic.Int64
	runnerActive atomic.Int64
	runnerQueue  atomic.Int64

	cellPanics  atomic.Int64
	cellRetries atomic.Int64

	journalHits   atomic.Int64
	journalMisses atomic.Int64

	// Serving-layer counters (see internal/serve): request admission,
	// load shedding, deadline expiries, client cancellations, and the
	// drain transition, plus live inflight/queued gauges and the
	// queue-wait and handler latency histograms.
	serveAccepted atomic.Int64
	serveShed     atomic.Int64
	serveDeadline atomic.Int64
	serveCanceled atomic.Int64
	serveDrains   atomic.Int64
	// serveJournalErrs counts journal append failures seen by the
	// serving layer, including every failed retry before it degrades
	// to memory-only operation.
	serveJournalErrs atomic.Int64
	// serveJournalRecov counts degraded-mode recoveries: the periodic
	// re-probe successfully re-attached the journal and durability
	// resumed.
	serveJournalRecov atomic.Int64
	serveInflight     atomic.Int64
	serveQueued       atomic.Int64
	serveWaitMS       Histogram
	serveMS           Histogram

	mu    sync.Mutex // serializes EnsureDisks growth
	disks atomic.Pointer[[]*diskMetrics]
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// EnsureDisks guarantees per-disk storage for disks [0, n) with an
// RPM residency grid of numLevels levels starting at minRPM in steps
// of rpmStep. It is idempotent and may be called concurrently; disks
// already present keep their grid. Call it once per simulation setup
// so the per-event paths never allocate.
func (c *Collector) EnsureDisks(n, minRPM, rpmStep, numLevels int) {
	if c == nil {
		return
	}
	if cur := c.disks.Load(); cur != nil && len(*cur) >= n {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.disks.Load()
	if cur != nil && len(*cur) >= n {
		return
	}
	var ds []*diskMetrics
	if cur != nil {
		ds = append(ds, *cur...)
	}
	for i := len(ds); i < n; i++ {
		if numLevels < 1 {
			numLevels = 1
		}
		ds = append(ds, &diskMetrics{minRPM: minRPM, rpmStep: rpmStep, rpmMS: make([]afloat, numLevels)})
	}
	c.disks.Store(&ds)
}

// disk returns disk d's accumulators (nil when EnsureDisks has not
// covered d).
func (c *Collector) disk(d int) *diskMetrics {
	ds := c.disks.Load()
	if ds == nil || d < 0 || d >= len(*ds) {
		return nil
	}
	return (*ds)[d]
}

// NumDisks reports how many disks EnsureDisks has covered.
func (c *Collector) NumDisks() int {
	if c == nil {
		return 0
	}
	ds := c.disks.Load()
	if ds == nil {
		return 0
	}
	return len(*ds)
}

// CountSimRun records the start of one simulation run.
func (c *Collector) CountSimRun() {
	if c == nil {
		return
	}
	c.simRuns.Add(1)
}

// ObserveRequest records one serviced request on disk d: its service
// time, its readiness wait, and the idle period that ended at its
// issue.
func (c *Collector) ObserveRequest(d int, svcMS, waitMS, idleMS float64) {
	if c == nil {
		return
	}
	c.requests.Add(1)
	if dm := c.disk(d); dm != nil {
		dm.requests.Add(1)
	}
	c.serviceMS.Observe(svcMS)
	c.waitMS.Observe(waitMS)
	c.idleMS.Observe(idleMS)
}

// ObserveResidency accumulates ms of residency for disk d in the
// given state; rpm attributes spinning time (service/idle) to the
// disk's RPM residency grid and is ignored for the other states.
func (c *Collector) ObserveResidency(d int, st DiskState, rpm int, ms float64) {
	if c == nil {
		return
	}
	dm := c.disk(d)
	if dm == nil {
		return
	}
	dm.stateMS[st].Add(ms)
	if st == StateService || st == StateIdle {
		if i, ok := dm.levelIndex(rpm); ok {
			dm.rpmMS[i].Add(ms)
		} else {
			dm.otherMS.Add(ms)
		}
	}
}

// CountPowerOp records one executed power-management operation.
func (c *Collector) CountPowerOp(k PowerOpKind) {
	if c == nil {
		return
	}
	c.powerOps[k].Add(1)
}

// CountSpinupMiss records a request that blocked on a spin-up:
// onDemand when the disk was still in (or heading to) standby — no
// pre-activation at all — and in-flight otherwise (the spin-up was
// issued but completed too late).
func (c *Collector) CountSpinupMiss(onDemand bool) {
	if c == nil {
		return
	}
	if onDemand {
		c.missOnDemand.Add(1)
	} else {
		c.missInflight.Add(1)
	}
}

// SpinupMisses returns the (ondemand, inflight) misprediction counts.
func (c *Collector) SpinupMisses() (onDemand, inflight int64) {
	if c == nil {
		return 0, 0
	}
	return c.missOnDemand.Load(), c.missInflight.Load()
}

// Requests returns the total request count.
func (c *Collector) Requests() int64 {
	if c == nil {
		return 0
	}
	return c.requests.Load()
}

// PowerOps returns the executed op count for one kind.
func (c *Collector) PowerOps(k PowerOpKind) int64 {
	if c == nil {
		return 0
	}
	return c.powerOps[k].Load()
}

// CountFault records one injected-fault event.
func (c *Collector) CountFault(k FaultKind) {
	if c == nil {
		return
	}
	c.faults[k].Add(1)
}

// FaultCount returns the injected-fault event count for one kind.
func (c *Collector) FaultCount(k FaultKind) int64 {
	if c == nil {
		return 0
	}
	return c.faults[k].Load()
}

// CountCacheHit records an instance-cache hit (preparation already
// memoized).
func (c *Collector) CountCacheHit() {
	if c == nil {
		return
	}
	c.cacheHits.Add(1)
}

// CountCacheMiss records an instance-cache miss (this caller did the
// preparation).
func (c *Collector) CountCacheMiss() {
	if c == nil {
		return
	}
	c.cacheMisses.Add(1)
}

// CountCacheWait records a singleflight wait (another goroutine was
// already preparing the same key and this caller blocked on it).
func (c *Collector) CountCacheWait() {
	if c == nil {
		return
	}
	c.cacheWaits.Add(1)
}

// CacheStats returns the (hits, misses, singleflight-waits) counts.
func (c *Collector) CacheStats() (hits, misses, waits int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.cacheHits.Load(), c.cacheMisses.Load(), c.cacheWaits.Load()
}

// RunnerTask records one completed worker-pool cell and the time it
// kept its worker busy.
func (c *Collector) RunnerTask(busyNS int64) {
	if c == nil {
		return
	}
	c.runnerTasks.Add(1)
	c.runnerBusyNS.Add(busyNS)
}

// RunnerWorker adjusts the active-worker gauge.
func (c *Collector) RunnerWorker(delta int64) {
	if c == nil {
		return
	}
	c.runnerActive.Add(delta)
}

// RunnerQueue adjusts the queued-cell gauge.
func (c *Collector) RunnerQueue(delta int64) {
	if c == nil {
		return
	}
	c.runnerQueue.Add(delta)
}

// RunnerStats returns the pool counters: completed tasks, cumulative
// busy nanoseconds, and the current active/queued gauges.
func (c *Collector) RunnerStats() (tasks, busyNS, active, queued int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.runnerTasks.Load(), c.runnerBusyNS.Load(), c.runnerActive.Load(), c.runnerQueue.Load()
}

// CountCellPanic records a worker-pool cell recovered from a panic.
func (c *Collector) CountCellPanic() {
	if c == nil {
		return
	}
	c.cellPanics.Add(1)
}

// CountCellRetry records one retry of a failing worker-pool cell.
func (c *Collector) CountCellRetry() {
	if c == nil {
		return
	}
	c.cellRetries.Add(1)
}

// CellStats returns the (recovered panics, retries) cell counts.
func (c *Collector) CellStats() (panics, retries int64) {
	if c == nil {
		return 0, 0
	}
	return c.cellPanics.Load(), c.cellRetries.Load()
}

// CountJournalHit records an experiment cell served from the result
// journal (its simulation was skipped on resume).
func (c *Collector) CountJournalHit() {
	if c == nil {
		return
	}
	c.journalHits.Add(1)
}

// CountJournalMiss records an experiment cell that was computed and
// appended to the result journal.
func (c *Collector) CountJournalMiss() {
	if c == nil {
		return
	}
	c.journalMisses.Add(1)
}

// JournalStats returns the (hits, misses) journal cell counts.
func (c *Collector) JournalStats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.journalHits.Load(), c.journalMisses.Load()
}

// ServeAdmitted records one request admitted past the serving layer's
// admission queue after waiting waitMS milliseconds for a slot.
func (c *Collector) ServeAdmitted(waitMS float64) {
	if c == nil {
		return
	}
	c.serveAccepted.Add(1)
	c.serveWaitMS.Observe(waitMS)
}

// ServeFinished records one admitted request's handler latency.
func (c *Collector) ServeFinished(handleMS float64) {
	if c == nil {
		return
	}
	c.serveMS.Observe(handleMS)
}

// CountServeShed records a request rejected by admission control
// (queue full, or the queue-wait budget expired before a slot freed).
func (c *Collector) CountServeShed() {
	if c == nil {
		return
	}
	c.serveShed.Add(1)
}

// CountServeDeadline records a request whose deadline expired while
// it was queued or executing (a 504 response).
func (c *Collector) CountServeDeadline() {
	if c == nil {
		return
	}
	c.serveDeadline.Add(1)
}

// CountServeCanceled records a request abandoned by its client before
// a result could be written.
func (c *Collector) CountServeCanceled() {
	if c == nil {
		return
	}
	c.serveCanceled.Add(1)
}

// CountServeDrain records one drain transition (readiness flipped to
// draining; the listener stops accepting new work).
func (c *Collector) CountServeDrain() {
	if c == nil {
		return
	}
	c.serveDrains.Add(1)
}

// CountServeJournalError records one journal append failure in the
// serving layer (each failed retry counts separately).
func (c *Collector) CountServeJournalError() {
	if c == nil {
		return
	}
	c.serveJournalErrs.Add(1)
}

// ServeJournalErrors returns the journal append failures the serving
// layer has observed.
func (c *Collector) ServeJournalErrors() int64 {
	if c == nil {
		return 0
	}
	return c.serveJournalErrs.Load()
}

// CountServeJournalRecovery records one degraded-mode recovery: the
// serving layer re-attached its journal and durability resumed.
func (c *Collector) CountServeJournalRecovery() {
	if c == nil {
		return
	}
	c.serveJournalRecov.Add(1)
}

// ServeJournalRecoveries returns how many times the serving layer has
// recovered from journal degradation.
func (c *Collector) ServeJournalRecoveries() int64 {
	if c == nil {
		return 0
	}
	return c.serveJournalRecov.Load()
}

// ServeInflight adjusts the executing-request gauge.
func (c *Collector) ServeInflight(delta int64) {
	if c == nil {
		return
	}
	c.serveInflight.Add(delta)
}

// ServeQueued adjusts the admission-queue depth gauge.
func (c *Collector) ServeQueued(delta int64) {
	if c == nil {
		return
	}
	c.serveQueued.Add(delta)
}

// ServeStats returns the serving-layer counters: admitted requests,
// shed requests, deadline expiries, client cancellations, and drain
// transitions.
func (c *Collector) ServeStats() (accepted, shed, deadline, canceled, drains int64) {
	if c == nil {
		return 0, 0, 0, 0, 0
	}
	return c.serveAccepted.Load(), c.serveShed.Load(),
		c.serveDeadline.Load(), c.serveCanceled.Load(), c.serveDrains.Load()
}

// ServeGauges returns the live (inflight, queued) serving gauges.
func (c *Collector) ServeGauges() (inflight, queued int64) {
	if c == nil {
		return 0, 0
	}
	return c.serveInflight.Load(), c.serveQueued.Load()
}
