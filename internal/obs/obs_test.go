package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.CountSimRun()
	c.EnsureDisks(4, 3000, 1200, 11)
	c.ObserveRequest(0, 1, 2, 3)
	c.ObserveResidency(0, StateIdle, 15000, 5)
	c.CountPowerOp(OpSpinDown)
	c.CountSpinupMiss(true)
	c.CountCacheHit()
	c.CountCacheMiss()
	c.CountCacheWait()
	c.RunnerTask(10)
	c.RunnerWorker(1)
	c.RunnerQueue(1)
	if c.Requests() != 0 || c.NumDisks() != 0 {
		t.Fatal("nil collector reported data")
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, c); err != nil {
		t.Fatalf("WritePrometheus(nil): %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil collector exposition not empty: %q", sb.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	vals := []float64{0, 0.5, 0.6, 10, 1e9}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if got := h.counts[0].Load(); got != 2 { // 0 and 0.5 both <= 0.5
		t.Errorf("bucket le=0.5 = %d, want 2", got)
	}
	if got := h.counts[len(bucketBoundsMS)].Load(); got != 1 { // 1e9 -> +Inf
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	if h.Sum() != want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestEnsureDisksGrowsAndKeeps(t *testing.T) {
	c := New()
	c.EnsureDisks(2, 3000, 1200, 11)
	c.ObserveResidency(1, StateIdle, 3000, 7)
	c.EnsureDisks(4, 3000, 1200, 11) // grow; disk 1 data must survive
	c.EnsureDisks(1, 3000, 1200, 11) // shrink request is a no-op
	if c.NumDisks() != 4 {
		t.Fatalf("NumDisks = %d, want 4", c.NumDisks())
	}
	if got := c.disk(1).rpmMS[0].Load(); got != 7 {
		t.Fatalf("disk1 rpm residency lost on grow: %g", got)
	}
	// Out-of-range disk and off-grid RPM must not panic.
	c.ObserveRequest(99, 1, 0, 0)
	c.ObserveResidency(0, StateIdle, 3001, 1)
	if got := c.disk(0).otherMS.Load(); got != 1 {
		t.Fatalf("off-grid residency = %g, want 1", got)
	}
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := New()
	c.EnsureDisks(2, 3000, 1200, 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.ObserveRequest(i%2, 1.5, 0, 10)
				c.ObserveResidency(i%2, StateIdle, 15000, 0.25)
				c.CountPowerOp(OpSetRPM)
			}
		}()
	}
	wg.Wait()
	if got := c.Requests(); got != 8000 {
		t.Errorf("requests = %d, want 8000", got)
	}
	if got := c.PowerOps(OpSetRPM); got != 8000 {
		t.Errorf("set_rpm ops = %d, want 8000", got)
	}
	if got := c.serviceMS.Sum(); got != 8000*1.5 {
		t.Errorf("service sum = %g, want %g", got, 8000*1.5)
	}
}
