package faults

import (
	"strings"
	"testing"
)

// FuzzParseSpec checks the spec parser never panics and that every
// accepted spec round-trips through its canonical rendering: parsing
// FormatSpec's output must reproduce the exact configuration.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("light")
	f.Add("heavy")
	f.Add("spinup=0.1,retries=3,backoff=500,timeout=40000")
	f.Add("badfrac=1e-4 remap=4")
	f.Add("degraded=0.05, period=30000, duration=5000, slowdown=2")
	f.Add("spinup=1 retries=0")
	f.Add("# comment\nspinup=0.5\n")
	f.Add("spinup=nan")
	f.Add("slowdown=0.5")
	f.Add("warp=9")
	f.Fuzz(func(t *testing.T, spec string) {
		// "@path" specs read files; the parser's file handling is
		// covered by unit tests, and fuzzing arbitrary paths would
		// leave the input domain of the grammar under test.
		if strings.HasPrefix(strings.TrimSpace(spec), "@") {
			t.Skip()
		}
		c, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails validation: %v", spec, verr)
		}
		canonical := FormatSpec(c)
		c2, err := ParseSpec(canonical)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canonical, spec, err)
		}
		if c != c2 {
			t.Fatalf("round trip changed config: %q -> %+v, %q -> %+v", spec, c, canonical, c2)
		}
	})
}
