package faults

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustPlan(t *testing.T, seed int64, n int, cfg Config) *Plan {
	t.Helper()
	p, err := New(seed, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDeterminism: two plans built from the same triple agree on every
// decision; a different seed disagrees somewhere.
func TestDeterminism(t *testing.T) {
	cfg, _ := Preset("moderate")
	a := mustPlan(t, 42, 8, cfg)
	b := mustPlan(t, 42, 8, cfg)
	c := mustPlan(t, 43, 8, cfg)
	var diff bool
	for d := 0; d < 8; d++ {
		for k := 0; k < 200; k++ {
			if a.SpinUpFails(d, k) != b.SpinUpFails(d, k) {
				t.Fatalf("spin-up decision (%d,%d) differs for equal seeds", d, k)
			}
			if a.Remapped(d, int64(k)) != b.Remapped(d, int64(k)) {
				t.Fatalf("remap decision (%d,%d) differs for equal seeds", d, k)
			}
			fa, ua := a.Degraded(d, float64(k)*1000)
			fb, ub := b.Degraded(d, float64(k)*1000)
			if fa != fb || ua != ub {
				t.Fatalf("degradation (%d,%d) differs for equal seeds", d, k)
			}
			if a.SpinUpFails(d, k) != c.SpinUpFails(d, k) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical spin-up streams")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds share a fingerprint")
	}
}

// TestStreamIndependence: the three decision streams must not be
// correlated copies of each other.
func TestStreamIndependence(t *testing.T) {
	cfg := Config{SpinUpFailProb: 0.5, BadSectorFrac: 0.5, DegradedProb: 0.5,
		DegradedPeriodMS: 1000, DegradedDurMS: 500, DegradedFactor: 2}
	p := mustPlan(t, 7, 1, cfg)
	same := 0
	const n = 512
	for k := 0; k < n; k++ {
		if p.SpinUpFails(0, k) == p.Remapped(0, int64(k)) {
			same++
		}
	}
	// Independent fair coins agree ~50% of the time; identical streams
	// agree 100%.
	if same < n/4 || same > 3*n/4 {
		t.Fatalf("spin-up and remap streams look correlated: %d/%d agreements", same, n)
	}
}

func TestSpinUpFailsExtremes(t *testing.T) {
	off := mustPlan(t, 1, 2, Config{})
	always := mustPlan(t, 1, 2, Config{SpinUpFailProb: 1})
	for k := 0; k < 50; k++ {
		if off.SpinUpFails(0, k) {
			t.Fatal("p=0 produced a failure")
		}
		if !always.SpinUpFails(0, k) {
			t.Fatal("p=1 produced a success")
		}
	}
}

func TestSpinUpFailureRate(t *testing.T) {
	cfg := Config{SpinUpFailProb: 0.3}
	p := mustPlan(t, 99, 4, cfg)
	fails := 0
	const n = 20000
	for k := 0; k < n; k++ {
		if p.SpinUpFails(1, k) {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("empirical failure rate %.3f far from configured 0.3", got)
	}
}

func TestRemapTargetInSpareArea(t *testing.T) {
	p := mustPlan(t, 1, 1, Config{BadSectorFrac: 0.5})
	const maxBlocks = int64(1 << 20)
	spare := maxBlocks - maxBlocks/16
	for _, block := range []int64{0, 1, 12345, maxBlocks - 1, maxBlocks * 3} {
		tgt := p.RemapTarget(block, maxBlocks)
		if tgt < spare || tgt >= maxBlocks {
			t.Fatalf("RemapTarget(%d) = %d outside spare area [%d,%d)", block, tgt, spare, maxBlocks)
		}
	}
	// Degenerate platters must not divide by zero or escape the disk.
	for _, mb := range []int64{0, 1, 2, 15} {
		tgt := p.RemapTarget(7, mb)
		if mb > 0 && (tgt < 0 || tgt >= mb) {
			t.Fatalf("RemapTarget(7, %d) = %d out of range", mb, tgt)
		}
	}
}

func TestDegradedWindows(t *testing.T) {
	cfg := Config{DegradedProb: 1, DegradedPeriodMS: 1000, DegradedDurMS: 250, DegradedFactor: 4}
	p := mustPlan(t, 5, 1, cfg)
	// Every period opens a window covering its first 250 ms.
	for _, tc := range []struct {
		t      float64
		factor float64
		until  float64
	}{
		{0, 4, 250},
		{249.9, 4, 250},
		{250, 1, 0},
		{999, 1, 0},
		{1000, 4, 1250},
		{1100, 4, 1250},
		{1300, 1, 0},
	} {
		f, until := p.Degraded(0, tc.t)
		if f != tc.factor || until != tc.until {
			t.Errorf("Degraded(0, %g) = (%g, %g), want (%g, %g)", tc.t, f, until, tc.factor, tc.until)
		}
	}
	// Negative time and disabled configurations are healthy.
	if f, _ := p.Degraded(0, -1); f != 1 {
		t.Fatal("negative time reported degradation")
	}
	healthy := mustPlan(t, 5, 1, Config{})
	if f, _ := healthy.Degraded(0, 100); f != 1 {
		t.Fatal("zero config reported degradation")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		c, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if name == "off" && c.Enabled() {
			t.Fatal("off preset injects faults")
		}
		if name != "off" && !c.Enabled() {
			t.Fatalf("preset %q injects nothing", name)
		}
	}
	if _, ok := Preset("catastrophic"); ok {
		t.Fatal("unknown preset accepted")
	}
}

func TestValidateTable(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	valid, _ := Preset("light")
	mod := func(f func(*Config)) Config { c := valid; f(&c); return c }
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"light", valid, true},
		{"nan prob", mod(func(c *Config) { c.SpinUpFailProb = nan }), false},
		{"inf backoff", mod(func(c *Config) { c.RetryBackoffMS = inf }), false},
		{"neg inf timeout", mod(func(c *Config) { c.SpinUpTimeoutMS = math.Inf(-1) }), false},
		{"nan badfrac", mod(func(c *Config) { c.BadSectorFrac = nan }), false},
		{"nan slowdown", mod(func(c *Config) { c.DegradedFactor = nan }), false},
		{"negative remap", mod(func(c *Config) { c.RemapPenaltyMS = -1 }), false},
		{"prob above one", mod(func(c *Config) { c.SpinUpFailProb = 1.5 }), false},
		{"badfrac above one", mod(func(c *Config) { c.BadSectorFrac = 2 }), false},
		{"degraded above one", mod(func(c *Config) { c.DegradedProb = 1.1 }), false},
		{"negative retries", mod(func(c *Config) { c.MaxRetries = -1 }), false},
		{"slowdown below one", mod(func(c *Config) { c.DegradedFactor = 0.5 }), false},
		{"window longer than period", mod(func(c *Config) { c.DegradedDurMS = c.DegradedPeriodMS + 1 }), false},
		{"degradation without period", mod(func(c *Config) { c.DegradedPeriodMS = 0 }), false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"", "off", "none", "light", "moderate", "heavy",
		"spinup=0.25,retries=2,backoff=100,timeout=5000",
		"badfrac=0.001 remap=7.5",
		"degraded=0.2, period=10000, duration=2000, slowdown=3",
	}
	for _, spec := range specs {
		c, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		formatted := FormatSpec(c)
		c2, err := ParseSpec(formatted)
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", formatted, spec, err)
		}
		if c != c2 {
			t.Fatalf("round trip of %q changed config: %+v vs %+v", spec, c, c2)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"spinup",            // no value
		"spinup=banana",     // not a number
		"spinup=nan",        // non-finite
		"backoff=+Inf",      // non-finite
		"spinup=2",          // out of range
		"warp=9",            // unknown key
		"retries=1.5",       // retries must be integral
		"slowdown=0.1",      // below 1
		"@/no/such/file-xx", // unreadable spec file
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", spec)
		}
	}
}

func TestParseSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.spec")
	body := "# heavy spin-up trouble\nspinup=0.4 retries=2\nbackoff=250, timeout=20000 # cascade cap\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ParseSpec("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{SpinUpFailProb: 0.4, MaxRetries: 2, RetryBackoffMS: 250, SpinUpTimeoutMS: 20000}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(1, 0, Config{}); err == nil {
		t.Fatal("accepted zero disks")
	}
	if _, err := New(1, -3, Config{}); err == nil {
		t.Fatal("accepted negative disks")
	}
	if _, err := New(1, 4, Config{SpinUpFailProb: math.NaN()}); err == nil {
		t.Fatal("accepted NaN probability")
	}
	p, err := New(1, 4, Config{})
	if err != nil || p.NumDisks() != 4 {
		t.Fatalf("New(1, 4, zero) = %v, %v", p, err)
	}
	if !strings.Contains(p.Fingerprint(), "off") {
		t.Fatalf("zero-config fingerprint %q should render as off", p.Fingerprint())
	}
}
