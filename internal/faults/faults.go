// Package faults is the simulator's deterministic fault-injection
// layer: it models the failure modes real disk subsystems exhibit but
// the paper's evaluation assumes away — spin-up attempts that fail
// and must be retried, bad sectors remapped to a spare area whose
// service pays an extra seek, and transient degradation windows
// during which a disk's transfer rate drops.
//
// Everything is derived from a (seed, nDisks, Config) triple. A Plan
// is immutable and all of its queries are pure functions of their
// arguments, so one Plan may be shared by any number of concurrent
// simulations and the same seed yields a byte-identical fault
// schedule at any worker count. Determinism is per decision stream —
// (disk, attempt index), (disk, block), (disk, window index) — not
// per wall-clock event, so two runs that consume the streams in the
// same order (as any single simulation does) see identical faults.
//
// See docs/robustness.md for the fault models, the retry/backoff/
// timeout semantics, and the degraded-mode guarantees.
package faults

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Config holds the fault-injection knobs. The zero value injects
// nothing (Enabled reports false); construct presets with Preset or
// parse a spec with ParseSpec.
type Config struct {
	// SpinUpFailProb is the probability that one spin-up attempt
	// fails: the platters do not reach full speed, the full spin-up
	// time and energy are spent, and the disk falls back to standby.
	SpinUpFailProb float64
	// MaxRetries bounds the retries after the first failed attempt of
	// one spin-up call. A pre-activation call that exhausts its
	// retries gives up (the disk stays in standby and the next request
	// is served on demand); the on-demand service path instead forces
	// success after MaxRetries failures, so a request is never stuck
	// behind an unlucky stream — the degraded-mode no-deadlock
	// guarantee.
	MaxRetries int
	// RetryBackoffMS is the delay before the first retry; it doubles
	// after every failed attempt (exponential backoff). Backoff time
	// is spent at standby power and is charged to the disk.
	RetryBackoffMS float64
	// SpinUpTimeoutMS caps the total duration of one spin-up call's
	// retry cascade: when the next backoff + attempt would exceed it,
	// the call gives up. Zero means no timeout.
	SpinUpTimeoutMS float64

	// BadSectorFrac is the fraction of each disk's blocks that are
	// remapped to the spare area (a seeded per-disk set).
	BadSectorFrac float64
	// RemapPenaltyMS is the extra seek charged when a remapped block
	// is serviced under the average-seek model. Under the
	// distance-aware seek model the penalty is implicit: the request
	// seeks to the spare area near the end of the platter and the
	// head stays there.
	RemapPenaltyMS float64

	// DegradedProb is the probability that any given
	// DegradedPeriodMS-long period of a disk's timeline opens with a
	// degradation window.
	DegradedProb float64
	// DegradedPeriodMS is the recurrence grid of degradation windows.
	DegradedPeriodMS float64
	// DegradedDurMS is the length of one degradation window (at most
	// one per period; must not exceed the period).
	DegradedDurMS float64
	// DegradedFactor multiplies the media-transfer time of requests
	// serviced inside a window (>= 1; 1 disables degradation).
	DegradedFactor float64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.SpinUpFailProb > 0 || c.BadSectorFrac > 0 ||
		(c.DegradedProb > 0 && c.DegradedFactor > 1)
}

// finite reports a usable float: not NaN, not infinite.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the configuration for NaN/Inf and out-of-range
// values.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"spinup", c.SpinUpFailProb},
		{"backoff", c.RetryBackoffMS},
		{"timeout", c.SpinUpTimeoutMS},
		{"badfrac", c.BadSectorFrac},
		{"remap", c.RemapPenaltyMS},
		{"degraded", c.DegradedProb},
		{"period", c.DegradedPeriodMS},
		{"duration", c.DegradedDurMS},
		{"slowdown", c.DegradedFactor},
	} {
		if !finite(f.v) {
			return fmt.Errorf("faults: %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("faults: %s is negative", f.name)
		}
	}
	if c.SpinUpFailProb > 1 {
		return fmt.Errorf("faults: spinup probability %g outside [0,1]", c.SpinUpFailProb)
	}
	if c.BadSectorFrac > 1 {
		return fmt.Errorf("faults: badfrac %g outside [0,1]", c.BadSectorFrac)
	}
	if c.DegradedProb > 1 {
		return fmt.Errorf("faults: degraded probability %g outside [0,1]", c.DegradedProb)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry bound %d", c.MaxRetries)
	}
	if c.DegradedFactor != 0 && c.DegradedFactor < 1 {
		return fmt.Errorf("faults: slowdown factor %g below 1", c.DegradedFactor)
	}
	if c.DegradedProb > 0 && c.DegradedFactor > 1 {
		if c.DegradedPeriodMS <= 0 || c.DegradedDurMS <= 0 {
			return fmt.Errorf("faults: degradation needs positive period and duration")
		}
		if c.DegradedDurMS > c.DegradedPeriodMS {
			return fmt.Errorf("faults: window duration %g exceeds period %g", c.DegradedDurMS, c.DegradedPeriodMS)
		}
	}
	return nil
}

// Preset returns a named severity level. The names are the rows of
// the fault-sensitivity experiment table:
//
//	off       no faults
//	light     2% spin-up failures, 0.01% bad sectors, rare mild slowdowns
//	moderate  10% spin-up failures, 0.1% bad sectors, occasional 4x slowdowns
//	heavy     30% spin-up failures, 0.5% bad sectors, frequent 8x slowdowns
func Preset(name string) (Config, bool) {
	switch name {
	case "off", "none":
		return Config{}, true
	case "light":
		return Config{
			SpinUpFailProb: 0.02, MaxRetries: 3, RetryBackoffMS: 500, SpinUpTimeoutMS: 40000,
			BadSectorFrac: 1e-4, RemapPenaltyMS: 4,
			DegradedProb: 0.05, DegradedPeriodMS: 30000, DegradedDurMS: 5000, DegradedFactor: 2,
		}, true
	case "moderate":
		return Config{
			SpinUpFailProb: 0.10, MaxRetries: 3, RetryBackoffMS: 500, SpinUpTimeoutMS: 40000,
			BadSectorFrac: 1e-3, RemapPenaltyMS: 4,
			DegradedProb: 0.15, DegradedPeriodMS: 30000, DegradedDurMS: 5000, DegradedFactor: 4,
		}, true
	case "heavy":
		return Config{
			SpinUpFailProb: 0.30, MaxRetries: 4, RetryBackoffMS: 500, SpinUpTimeoutMS: 60000,
			BadSectorFrac: 5e-3, RemapPenaltyMS: 4,
			DegradedProb: 0.30, DegradedPeriodMS: 30000, DegradedDurMS: 10000, DegradedFactor: 8,
		}, true
	}
	return Config{}, false
}

// PresetNames returns the preset severities in increasing order.
func PresetNames() []string { return []string{"off", "light", "moderate", "heavy"} }

// specKeys maps spec keys onto Config fields, in canonical output
// order (FormatSpec).
var specKeys = []string{
	"spinup", "retries", "backoff", "timeout",
	"badfrac", "remap",
	"degraded", "period", "duration", "slowdown",
}

// ParseSpec parses a fault specification. A spec is either a preset
// name (see Preset), "@path" naming a file holding a spec, or a
// comma/whitespace-separated list of key=value pairs:
//
//	spinup=P     spin-up failure probability per attempt [0,1]
//	retries=N    retry bound per spin-up call
//	backoff=MS   first retry backoff (doubles per retry)
//	timeout=MS   cap on one call's retry cascade (0 = none)
//	badfrac=P    fraction of blocks remapped [0,1]
//	remap=MS     extra seek per remapped service (average-seek model)
//	degraded=P   probability a period opens a degradation window [0,1]
//	period=MS    degradation window recurrence grid
//	duration=MS  degradation window length
//	slowdown=F   transfer-time multiplier inside a window (>= 1)
//
// Files may also carry '#' comments and newline-separated pairs. The
// empty spec is the zero (disabled) configuration.
func ParseSpec(spec string) (Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Config{}, nil
	}
	if c, ok := Preset(spec); ok {
		return c, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return Config{}, fmt.Errorf("faults: reading spec: %w", err)
		}
		return parsePairs(string(data))
	}
	return parsePairs(spec)
}

func parsePairs(text string) (Config, error) {
	var c Config
	// Strip comments, then split on commas and whitespace alike.
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte(' ')
	}
	fields := strings.FieldsFunc(clean.String(), func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\r'
	})
	for _, kv := range fields {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec entry %q (want key=value)", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if key == "retries" {
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("faults: retries: %v", err)
			}
			c.MaxRetries = n
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: %s: %v", key, err)
		}
		if !finite(f) {
			return Config{}, fmt.Errorf("faults: %s is not finite", key)
		}
		switch key {
		case "spinup":
			c.SpinUpFailProb = f
		case "backoff":
			c.RetryBackoffMS = f
		case "timeout":
			c.SpinUpTimeoutMS = f
		case "badfrac":
			c.BadSectorFrac = f
		case "remap":
			c.RemapPenaltyMS = f
		case "degraded":
			c.DegradedProb = f
		case "period":
			c.DegradedPeriodMS = f
		case "duration":
			c.DegradedDurMS = f
		case "slowdown":
			c.DegradedFactor = f
		default:
			keys := append([]string(nil), specKeys...)
			sort.Strings(keys)
			return Config{}, fmt.Errorf("faults: unknown spec key %q (have %v)", key, keys)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// FormatSpec renders the configuration as a canonical spec string
// that ParseSpec round-trips. Zero-valued knobs are omitted; the
// zero configuration renders as "off".
func FormatSpec(c Config) string {
	vals := map[string]float64{
		"spinup": c.SpinUpFailProb, "backoff": c.RetryBackoffMS, "timeout": c.SpinUpTimeoutMS,
		"badfrac": c.BadSectorFrac, "remap": c.RemapPenaltyMS,
		"degraded": c.DegradedProb, "period": c.DegradedPeriodMS,
		"duration": c.DegradedDurMS, "slowdown": c.DegradedFactor,
	}
	var parts []string
	for _, k := range specKeys {
		if k == "retries" {
			if c.MaxRetries != 0 {
				parts = append(parts, fmt.Sprintf("retries=%d", c.MaxRetries))
			}
			continue
		}
		if v := vals[k]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", k, strconv.FormatFloat(v, 'g', -1, 64)))
		}
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// Plan is a fault schedule for one disk subsystem, derived entirely
// from (seed, nDisks, Config). It is immutable; every query is a pure
// function, so a Plan is safe for unsynchronized sharing across
// simulations and goroutines.
type Plan struct {
	seed uint64
	n    int
	cfg  Config
}

// New derives a fault plan for nDisks disks. A nil plan (or a
// disabled configuration) is handled by the simulator as
// "no faults".
func New(seed int64, nDisks int, cfg Config) (*Plan, error) {
	if nDisks <= 0 {
		return nil, fmt.Errorf("faults: non-positive disk count %d", nDisks)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Plan{seed: uint64(seed), n: nDisks, cfg: cfg}, nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// NumDisks returns the subsystem size the plan was derived for.
func (p *Plan) NumDisks() int { return p.n }

// Fingerprint returns a canonical string identifying the plan: two
// plans with equal fingerprints produce identical fault schedules.
func (p *Plan) Fingerprint() string {
	return fmt.Sprintf("faults{seed=%d n=%d %s}", p.seed, p.n, FormatSpec(p.cfg))
}

// Decision stream tags, mixed into the hash so the three fault models
// draw from independent streams.
const (
	streamSpinUp uint64 = 0x9e3779b97f4a7c15
	streamRemap  uint64 = 0xbf58476d1ce4e5b9
	streamWindow uint64 = 0x94d049bb133111eb
)

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw maps one decision-stream coordinate to a uniform [0,1) float.
func (p *Plan) draw(stream uint64, disk int, k uint64) float64 {
	h := mix64(p.seed ^ stream)
	h = mix64(h ^ (uint64(disk) + 1))
	h = mix64(h ^ (k + 1))
	return float64(h>>11) / (1 << 53)
}

// Uniform maps one (seed, stream, k) coordinate to a deterministic
// uniform [0,1) float through the splitmix64 finalizer — the same
// generator the fault plans draw from, exported so other subsystems
// (for example the serving layer's chaos injector) derive their own
// independent decision streams with identical reproducibility
// guarantees: the same triple always yields the same value, on any
// platform, at any concurrency.
func Uniform(seed int64, stream uint64, k uint64) float64 {
	h := mix64(uint64(seed) ^ stream)
	h = mix64(h ^ (k + 1))
	return float64(h>>11) / (1 << 53)
}

// SpinUpFails reports whether the attempt-th spin-up attempt on the
// given disk fails (attempt indexes every attempt on the disk over a
// run, in simulation order).
func (p *Plan) SpinUpFails(disk, attempt int) bool {
	pr := p.cfg.SpinUpFailProb
	if pr <= 0 {
		return false
	}
	if pr >= 1 {
		return true
	}
	return p.draw(streamSpinUp, disk, uint64(attempt)) < pr
}

// Remapped reports whether the given block of the given disk belongs
// to the seeded bad-sector set (and is therefore served from the
// spare area).
func (p *Plan) Remapped(disk int, block int64) bool {
	pr := p.cfg.BadSectorFrac
	if pr <= 0 || block < 0 {
		return false
	}
	if pr >= 1 {
		return true
	}
	return p.draw(streamRemap, disk, uint64(block)) < pr
}

// RemapTarget maps a remapped logical block to its spare-area
// physical block on a disk of maxBlocks blocks. The spare area is the
// last 1/16th of the platter, so distance-aware seeks pay a real
// head excursion.
func (p *Plan) RemapTarget(block, maxBlocks int64) int64 {
	if maxBlocks <= 1 {
		return 0
	}
	spare := maxBlocks - maxBlocks/16
	span := maxBlocks - spare
	if span <= 0 {
		spare, span = maxBlocks-1, 1
	}
	return spare + block%span
}

// Degraded reports the transfer-time multiplier in effect on the
// given disk at time tMS (1 when the disk is healthy) and, when
// degraded, the time the current window ends.
func (p *Plan) Degraded(disk int, tMS float64) (factor, untilMS float64) {
	c := &p.cfg
	if c.DegradedProb <= 0 || c.DegradedFactor <= 1 || c.DegradedPeriodMS <= 0 || tMS < 0 {
		return 1, 0
	}
	k := math.Floor(tMS / c.DegradedPeriodMS)
	if p.draw(streamWindow, disk, uint64(k)) >= c.DegradedProb {
		return 1, 0
	}
	start := k * c.DegradedPeriodMS
	if tMS < start+c.DegradedDurMS {
		return c.DegradedFactor, start + c.DegradedDurMS
	}
	return 1, 0
}
