//go:build unix

package fsx

import (
	"errors"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking flock on f. A lock held
// elsewhere surfaces as ErrLockHeld so callers can produce their own
// typed errors.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return ErrLockHeld
	}
	return err
}
