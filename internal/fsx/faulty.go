package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"sdpm/internal/faults"
)

// Decision streams for the seeded failure draws — the same
// splitmix64 construction internal/faults uses, so a (seed, op index)
// pair reproduces the exact failure pattern on any platform.
const (
	streamWriteFail uint64 = 0xa0761d6478bd642f
	streamSyncFail  uint64 = 0xe7037ed1a0b428db
)

// memNode is one file's content: the volatile bytes a running process
// sees (the "page cache") and the durable bytes a power loss would
// leave on the platter. Handles reference nodes, not names, so a file
// renamed while open keeps working — exactly like an inode.
type memNode struct {
	data    []byte // volatile content
	durable []byte // content as of the last successful Sync
	synced  bool   // has this node ever been fsynced
}

// Faulty is a deterministic in-memory filesystem with seeded fault
// injection and a shadow durable-state model:
//
//   - Writes land in the volatile view only. Sync copies a file's
//     volatile bytes to its durable shadow — the fsync barrier.
//   - A file's directory entry becomes durable when the file is
//     fsynced under that name (ext4-style) or when its directory is
//     SyncDir'd. Renames and removes are durable only after SyncDir —
//     the pessimistic reading of POSIX, so recovery code proven
//     correct here is correct on any real filesystem.
//   - CrashAt(n) simulates power loss at operation n: that operation
//     and every later one fail with ErrCrashed, and DurableFiles
//     returns exactly the bytes a real crash could leave behind.
//   - FailAt / ShortWriteAt / FailWrites / FailSyncs inject ENOSPC,
//     EIO, short writes, and fsync failures — one-shot on the Nth
//     operation or seeded per-operation probabilities.
//
// Mutating operations (open/create, write, truncate, sync, rename,
// remove, dir-sync) each consume one operation index; reads are free
// (a crash between two reads is indistinguishable from a crash at the
// next mutation). All methods are safe for concurrent use, though
// crash-point exploration is only meaningful for single-goroutine
// scenarios (the operation order must be deterministic).
type Faulty struct {
	mu   sync.Mutex
	seed int64

	ops     int // operation index counter
	crashAt int // -1 = never
	crashed bool

	failAt  map[int]error // op index -> clean failure
	shortAt map[int]error // write op index -> half write, then failure

	writeFailProb float64
	writeFailErr  error
	syncFailProb  float64
	syncFailErr   error

	volatile   map[string]*memNode // live namespace
	durableDir map[string]*memNode // namespace as a power loss would leave it
	locks      map[*memNode]*memFile
	tempSeq    int
}

// NewFaulty returns a fault-free in-memory filesystem; arm faults
// with CrashAt, FailAt, ShortWriteAt, FailWrites, or FailSyncs. The
// seed feeds the probabilistic failure draws.
func NewFaulty(seed int64) *Faulty {
	return &Faulty{
		seed:       seed,
		crashAt:    -1,
		failAt:     map[int]error{},
		shortAt:    map[int]error{},
		volatile:   map[string]*memNode{},
		durableDir: map[string]*memNode{},
		locks:      map[*memNode]*memFile{},
	}
}

// CrashAt arms a simulated power loss at operation index op (0-based
// over the mutating operations); -1 disarms.
func (f *Faulty) CrashAt(op int) *Faulty {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = op
	return f
}

// FailAt makes the op-th operation fail cleanly with err (no bytes
// written); later operations proceed normally.
func (f *Faulty) FailAt(op int, err error) *Faulty {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt[op] = err
	return f
}

// ShortWriteAt makes the op-th operation, if it is a write, write
// only half its bytes and then return err — the torn-record case.
func (f *Faulty) ShortWriteAt(op int, err error) *Faulty {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortAt[op] = err
	return f
}

// FailWrites makes each write fail cleanly with probability prob
// (seeded per operation index).
func (f *Faulty) FailWrites(prob float64, err error) *Faulty {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeFailProb, f.writeFailErr = prob, err
	return f
}

// FailSyncs makes each fsync fail with probability prob (seeded per
// operation index). After a failed fsync the durable shadow is left
// unchanged — the kernel's page-cache state after a failed fsync is
// undefined, so callers must treat the data as lost.
func (f *Faulty) FailSyncs(prob float64, err error) *Faulty {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncFailProb, f.syncFailErr = prob, err
	return f
}

// SetFile installs a file as both volatile and durable — pre-existing
// state for a scenario, consuming no operation.
func (f *Faulty) SetFile(path string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	path = filepath.Clean(path)
	n := &memNode{
		data:    append([]byte(nil), data...),
		durable: append([]byte(nil), data...),
		synced:  true,
	}
	f.volatile[path] = n
	f.durableDir[path] = n
}

// OpCount reports how many mutating operations have executed — the
// crash-point space for Explore.
func (f *Faulty) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the simulated power loss has happened.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// DurableFiles returns the bytes a power loss right now would leave
// on disk: every durable directory entry mapped to its node's last
// fsynced content (a created-but-never-synced entry maps to empty).
func (f *Faulty) DurableFiles() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.durableDir))
	for name, n := range f.durableDir {
		out[name] = append([]byte(nil), n.durable...)
	}
	return out
}

// VolatileFiles returns the live (process-visible) view, sorted names
// to content.
func (f *Faulty) VolatileFiles() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.volatile))
	for name, n := range f.volatile {
		out[name] = append([]byte(nil), n.data...)
	}
	return out
}

// opKind classifies an operation for the injection rules.
type opKind int

const (
	opOpen opKind = iota
	opWrite
	opTruncate
	opSync
	opRename
	opRemove
	opSyncDir
)

// step consumes one operation index and resolves the fault rules for
// it. Callers hold f.mu. short reports that the operation should
// write half its payload before failing with fault.
func (f *Faulty) step(kind opKind) (fault error, short bool) {
	if f.crashed {
		return ErrCrashed, false
	}
	idx := f.ops
	f.ops++
	if f.crashAt >= 0 && idx >= f.crashAt {
		f.crashed = true
		return ErrCrashed, false
	}
	if err, ok := f.failAt[idx]; ok {
		return err, false
	}
	if err, ok := f.shortAt[idx]; ok && kind == opWrite {
		return err, true
	}
	switch kind {
	case opWrite:
		if f.writeFailProb > 0 && faults.Uniform(f.seed, streamWriteFail, uint64(idx)) < f.writeFailProb {
			return f.writeFailErr, false
		}
	case opSync:
		if f.syncFailProb > 0 && faults.Uniform(f.seed, streamSyncFail, uint64(idx)) < f.syncFailProb {
			return f.syncFailErr, false
		}
	}
	return nil, false
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if fault, _ := f.step(opOpen); fault != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: fault}
	}
	n, ok := f.volatile[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		n = &memNode{}
		f.volatile[name] = n
	} else if flag&os.O_TRUNC != 0 {
		n.data = nil
	}
	return &memFile{fs: f, node: n, name: name}, nil
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault, _ := f.step(opOpen); fault != nil {
		return nil, &os.PathError{Op: "createtemp", Path: pattern, Err: fault}
	}
	prefix, suffix := pattern, ""
	if i := lastStar(pattern); i >= 0 {
		prefix, suffix = pattern[:i], pattern[i+1:]
	}
	var name string
	for {
		name = filepath.Join(dir, prefix+strconv.Itoa(f.tempSeq)+suffix)
		f.tempSeq++
		if _, exists := f.volatile[name]; !exists {
			break
		}
	}
	n := &memNode{}
	f.volatile[name] = n
	return &memFile{fs: f, node: n, name: name}, nil
}

// lastStar finds the last "*" in an os.CreateTemp pattern.
func lastStar(pattern string) int {
	for i := len(pattern) - 1; i >= 0; i-- {
		if pattern[i] == '*' {
			return i
		}
	}
	return -1
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if f.crashed {
		return nil, &os.PathError{Op: "read", Path: name, Err: ErrCrashed}
	}
	n, ok := f.volatile[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), n.data...), nil
}

func (f *Faulty) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: ErrCrashed}
	}
	dir = filepath.Clean(dir)
	var names []string
	for name := range f.volatile {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if fault, _ := f.step(opRename); fault != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fault}
	}
	n, ok := f.volatile[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	delete(f.volatile, oldpath)
	f.volatile[newpath] = n
	return nil
}

func (f *Faulty) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if fault, _ := f.step(opRemove); fault != nil {
		return &os.PathError{Op: "remove", Path: name, Err: fault}
	}
	if _, ok := f.volatile[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(f.volatile, name)
	return nil
}

// SyncDir makes the directory's entries durable: creates, renames,
// and removes in dir now survive a crash. Content durability is
// separate — it still requires each file's own Sync.
func (f *Faulty) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if fault, _ := f.step(opSyncDir); fault != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: fault}
	}
	for name, n := range f.volatile {
		if filepath.Dir(name) == dir {
			f.durableDir[name] = n
		}
	}
	for name := range f.durableDir {
		if filepath.Dir(name) == dir {
			if _, live := f.volatile[name]; !live {
				delete(f.durableDir, name)
			}
		}
	}
	return nil
}

func (f *Faulty) Lock(file File) error {
	mf, ok := file.(*memFile)
	if !ok {
		return fmt.Errorf("fsx: Lock needs a Faulty file, got %T", file)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if holder, held := f.locks[mf.node]; held && holder != mf && !holder.closed {
		return ErrLockHeld
	}
	f.locks[mf.node] = mf
	return nil
}

// memFile is an open handle on a memNode.
type memFile struct {
	fs     *Faulty
	node   *memNode
	name   string
	off    int64
	closed bool
}

func (m *memFile) Name() string { return m.name }

func (m *memFile) Read(p []byte) (int, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return 0, os.ErrClosed
	}
	if m.fs.crashed {
		return 0, ErrCrashed
	}
	if m.off >= int64(len(m.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.node.data[m.off:])
	m.off += int64(n)
	return n, nil
}

func (m *memFile) Write(p []byte) (int, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return 0, os.ErrClosed
	}
	fault, short := m.fs.step(opWrite)
	if fault != nil && !short {
		return 0, &os.PathError{Op: "write", Path: m.name, Err: fault}
	}
	data := p
	if short {
		data = p[:len(p)/2]
	}
	m.writeAt(data)
	if short {
		return len(data), &os.PathError{Op: "write", Path: m.name, Err: fault}
	}
	return len(p), nil
}

// writeAt lands bytes at the handle's offset, extending the volatile
// content as needed. Callers hold fs.mu.
func (m *memFile) writeAt(p []byte) {
	end := m.off + int64(len(p))
	if end > int64(len(m.node.data)) {
		grown := make([]byte, end)
		copy(grown, m.node.data)
		m.node.data = grown
	}
	copy(m.node.data[m.off:], p)
	m.off = end
}

func (m *memFile) Seek(offset int64, whence int) (int64, error) {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		m.off = offset
	case io.SeekCurrent:
		m.off += offset
	case io.SeekEnd:
		m.off = int64(len(m.node.data)) + offset
	default:
		return 0, fmt.Errorf("fsx: bad whence %d", whence)
	}
	if m.off < 0 {
		return 0, fmt.Errorf("fsx: negative seek offset")
	}
	return m.off, nil
}

func (m *memFile) Truncate(size int64) error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return os.ErrClosed
	}
	if fault, _ := m.fs.step(opTruncate); fault != nil {
		return &os.PathError{Op: "truncate", Path: m.name, Err: fault}
	}
	if size < 0 {
		return &os.PathError{Op: "truncate", Path: m.name, Err: fmt.Errorf("negative size")}
	}
	if size <= int64(len(m.node.data)) {
		m.node.data = m.node.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, m.node.data)
		m.node.data = grown
	}
	return nil
}

// Sync is the durability barrier: the node's volatile bytes become
// its durable shadow, and — when the file still lives under the name
// it was opened with — the directory entry becomes durable too
// (fsync of a file persists the file itself; ext4-style, it also
// persists a newly created entry).
func (m *memFile) Sync() error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return os.ErrClosed
	}
	if fault, _ := m.fs.step(opSync); fault != nil {
		return &os.PathError{Op: "sync", Path: m.name, Err: fault}
	}
	m.node.durable = append([]byte(nil), m.node.data...)
	m.node.synced = true
	if m.fs.volatile[m.name] == m.node {
		m.fs.durableDir[m.name] = m.node
	}
	return nil
}

func (m *memFile) Close() error {
	m.fs.mu.Lock()
	defer m.fs.mu.Unlock()
	if m.closed {
		return os.ErrClosed
	}
	m.closed = true
	if holder, held := m.fs.locks[m.node]; held && holder == m {
		delete(m.fs.locks, m.node)
	}
	return nil
}
