// Package fsx abstracts the small slice of the filesystem the
// persistence layer depends on — open/create/write/sync/rename/
// remove/read plus directory sync and advisory locking — behind an
// interface with two implementations:
//
//   - OS, a zero-cost passthrough over package os (the production
//     path, byte-identical to calling os directly), and
//   - Faulty, a deterministic seeded in-memory fault injector that
//     can return ENOSPC/EIO, short writes, and fsync failures on the
//     Nth operation, and that maintains a shadow "durable state"
//     model honoring fsync barriers: a simulated crash at any
//     operation yields exactly the bytes a real power loss could
//     leave on disk.
//
// The durability story built on this package (internal/journal's
// append-fsync records, internal/cli's atomic tmp+rename writes)
// rests on os.* calls whose failure paths are otherwise untestable;
// fsx makes every one of those paths — and every crash point between
// them — enumerable. The crash explorer (Explore) replays a scenario
// once per operation index, crashing at each, and hands the caller
// the exact durable bytes to run recovery against.
//
// See docs/robustness.md ("Crash consistency") for the fault model,
// the recovery invariants, and how the explorer drives them.
package fsx

import (
	"errors"
	"io"
	"os"
)

// File is the open-file surface the persistence layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's bytes to stable storage (fsync). On the
	// fault injector this is the durability barrier: only synced bytes
	// survive a simulated crash.
	Sync() error
	// Truncate changes the file's size (used to cut a torn tail).
	Truncate(size int64) error
	// Name reports the name the file was opened under.
	Name() string
}

// FS is the filesystem interface. All paths are interpreted like
// package os does; implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens with os-style flags (O_RDWR, O_CREATE, O_TRUNC...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new uniquely-named file in dir, with the
	// final path derived from pattern exactly as os.CreateTemp does
	// (the last "*" replaced by a unique string).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file (the volatile view: what a running
	// process sees, not necessarily what survives a crash).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the names (not full paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath. The rename is
	// immediately visible but only durable after SyncDir on the
	// containing directory.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames/creates/removes in it
	// durable. An unopenable directory is ignored (some platforms
	// cannot open directories for syncing); a real fsync failure on an
	// opened directory is reported.
	SyncDir(dir string) error
	// Lock takes an exclusive advisory lock on f, failing fast with an
	// error wrapping ErrLockHeld when another open handle (in this
	// process or, for OS, any process) already holds it. The lock is
	// released when f closes.
	Lock(f File) error
}

// ErrLockHeld reports that Lock found the file already locked by
// another writer.
var ErrLockHeld = errors.New("fsx: lock held by another writer")

// ErrCrashed is the error every operation returns at and after a
// Faulty filesystem's simulated crash point: from the process's view
// the machine lost power, and nothing it does afterwards changes the
// durable state.
var ErrCrashed = errors.New("fsx: simulated crash (power loss)")
