package fsx

import (
	"fmt"
	"os"
)

// OS is the passthrough filesystem: every method delegates straight
// to package os, so code threaded through fsx behaves byte-identically
// to code calling os directly.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		// Nothing actionable: the platform or filesystem cannot open
		// directories for syncing.
		return nil
	}
	defer d.Close()
	return d.Sync()
}

// Lock takes the platform's exclusive advisory lock (flock on unix).
// The lock belongs to the open file description, so it excludes a
// second opener in the same process just as it excludes another
// process, and the kernel releases it automatically when the
// descriptor closes — a crashed holder never leaves a stale lock.
func (osFS) Lock(f File) error {
	of, ok := f.(*os.File)
	if !ok {
		return fmt.Errorf("fsx: Lock needs an OS file, got %T", f)
	}
	return lockFile(of)
}
