//go:build !unix

package fsx

import "os"

// lockFile is a no-op where flock is unavailable; callers then rely
// on not double-opening, exactly as before the guard existed.
func lockFile(f *os.File) error { return nil }
