package fsx

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

// The OS passthrough round-trips bytes, generates unique temp names,
// lists directories, and enforces the advisory lock across two
// handles of the same file.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Lock(f); err != nil {
		t.Fatalf("first lock: %v", err)
	}
	second, err := OS.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := OS.Lock(second); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second lock = %v, want ErrLockHeld", err)
	}
	second.Close()
	f.Close()

	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	t1, err := OS.CreateTemp(dir, "a.txt.tmp.*")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := OS.CreateTemp(dir, "a.txt.tmp.*")
	if err != nil {
		t.Fatal(err)
	}
	if t1.Name() == t2.Name() {
		t.Fatalf("CreateTemp names collide: %s", t1.Name())
	}
	t1.Close()
	t2.Close()
	names, err := OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("ReadDir = %v, want 3 entries", names)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// Bytes written but never fsynced do not survive a crash; fsynced
// bytes always do. The fsync barrier is the durability line.
func TestFaultyFsyncBarrier(t *testing.T) {
	fa := NewFaulty(1)
	f, err := fa.OpenFile("data", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" and not"))
	d := fa.DurableFiles()
	if string(d["data"]) != "synced" {
		t.Fatalf("durable = %q, want only the fsynced prefix", d["data"])
	}
	v := fa.VolatileFiles()
	if string(v["data"]) != "synced and not" {
		t.Fatalf("volatile = %q, want the full write", v["data"])
	}
}

// A rename is visible immediately but durable only after SyncDir —
// the pessimistic model a crash-safe writer must assume.
func TestFaultyRenameDurableOnlyAfterSyncDir(t *testing.T) {
	fa := NewFaulty(1)
	fa.SetFile("dest", []byte("old"))
	f, _ := fa.OpenFile("dest.tmp.0", os.O_RDWR|os.O_CREATE, 0o644)
	f.Write([]byte("new"))
	f.Sync()
	f.Close()
	if err := fa.Rename("dest.tmp.0", "dest"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fa.ReadFile("dest"); string(got) != "new" {
		t.Fatalf("volatile dest = %q, want new", got)
	}
	d := fa.DurableFiles()
	if string(d["dest"]) != "old" {
		t.Fatalf("durable dest before SyncDir = %q, want old", d["dest"])
	}
	if string(d["dest.tmp.0"]) != "new" {
		t.Fatalf("durable tmp before SyncDir = %q, want new (it was fsynced)", d["dest.tmp.0"])
	}
	if err := fa.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	d = fa.DurableFiles()
	if string(d["dest"]) != "new" {
		t.Fatalf("durable dest after SyncDir = %q, want new", d["dest"])
	}
	if _, left := d["dest.tmp.0"]; left {
		t.Fatal("tmp entry still durable after SyncDir")
	}
}

// CrashAt kills the filesystem deterministically: the same crash
// point always yields the same durable state, and every operation at
// or after it fails with ErrCrashed.
func TestFaultyCrashDeterministic(t *testing.T) {
	scenario := func(fa *Faulty) error {
		f, err := fa.OpenFile("j", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		for _, s := range []string{"one\n", "two\n", "three\n"} {
			if _, err := f.Write([]byte(s)); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
		}
		return f.Close()
	}
	// Crash at op 4: open(0), write(1), sync(2), write(3), CRASH on
	// sync(4) — the second record was written but never synced.
	run := func() map[string][]byte {
		fa := NewFaulty(7).CrashAt(4)
		if err := scenario(fa); !errors.Is(err, ErrCrashed) {
			t.Fatalf("scenario error = %v, want ErrCrashed", err)
		}
		if !fa.Crashed() {
			t.Fatal("filesystem did not record the crash")
		}
		return fa.DurableFiles()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("crash not deterministic: %v vs %v", a, b)
	}
	if string(a["j"]) != "one\n" {
		t.Fatalf("durable after crash = %q, want only the first synced record", a["j"])
	}
}

// FailAt injects a clean one-shot failure; ShortWriteAt writes half
// the payload before failing — the torn-record generator.
func TestFaultyInjectedErrors(t *testing.T) {
	fa := NewFaulty(1).FailAt(1, syscall.ENOSPC).ShortWriteAt(2, syscall.EIO)
	f, err := fa.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef")) // op 1: clean ENOSPC
	if n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("clean failure: n=%d err=%v, want 0, ENOSPC", n, err)
	}
	n, err = f.Write([]byte("abcdef")) // op 2: short write + EIO
	if n != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write: n=%d err=%v, want 3, EIO", n, err)
	}
	if got, _ := fa.ReadFile("x"); string(got) != "abc" {
		t.Fatalf("file holds %q after short write, want the torn half", got)
	}
	if _, err := f.Write([]byte("!")); err != nil { // op 3: healthy again
		t.Fatalf("post-fault write: %v", err)
	}
}

// FailSyncs draws per-operation from the seeded stream: the same seed
// reproduces the same failure pattern; different seeds differ.
func TestFaultySeededSyncFailures(t *testing.T) {
	pattern := func(seed int64) []bool {
		fa := NewFaulty(seed).FailSyncs(0.5, syscall.EIO)
		f, _ := fa.OpenFile("x", os.O_RDWR|os.O_CREATE, 0o644)
		var out []bool
		for i := 0; i < 32; i++ {
			f.Write([]byte("r"))
			out = append(out, f.Sync() != nil)
		}
		return out
	}
	if !reflect.DeepEqual(pattern(42), pattern(42)) {
		t.Fatal("same seed produced different sync-failure patterns")
	}
	if reflect.DeepEqual(pattern(42), pattern(43)) {
		t.Fatal("different seeds produced identical patterns (suspicious)")
	}
	fails := 0
	for _, f := range pattern(42) {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == 32 {
		t.Fatalf("0.5 failure rate produced %d/32 failures", fails)
	}
}

// The faulty file supports the full handle surface the journal needs:
// seek to end, truncate a torn tail, read back, and the advisory lock
// excludes a second handle until close.
func TestFaultyHandleSurfaceAndLock(t *testing.T) {
	fa := NewFaulty(1)
	f, err := fa.OpenFile("j", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Lock(f); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("good line\ntorn"))
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil || end != 14 {
		t.Fatalf("Seek(end) = %d, %v", end, err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "good line\n" {
		t.Fatalf("read after truncate = %q, %v", got, err)
	}

	g, err := fa.OpenFile("j", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Lock(g); !errors.Is(err, ErrLockHeld) {
		t.Fatalf("second lock = %v, want ErrLockHeld", err)
	}
	f.Close()
	if err := fa.Lock(g); err != nil {
		t.Fatalf("lock after holder closed: %v", err)
	}
	g.Close()
}

// Explore enumerates exactly one point per operation plus the final
// crash-free run, and the acknowledged-write invariant holds at every
// point of a simple append-fsync loop.
func TestExploreEnumeratesEveryCrashPoint(t *testing.T) {
	var acked []string
	records := []string{"alpha\n", "beta\n", "gamma\n"}
	scenario := func(fs FS) error {
		acked = nil
		f, err := fs.OpenFile("log", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		for _, r := range records {
			if _, err := f.Write([]byte(r)); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				return err
			}
			acked = append(acked, r)
		}
		return f.Close()
	}
	var points []int
	err := Explore(1, nil, scenario, func(p CrashPoint) error {
		points = append(points, p.Op)
		durable := p.Durable["log"]
		prefix := bytes.Join(func() [][]byte {
			var bs [][]byte
			for _, a := range acked {
				bs = append(bs, []byte(a))
			}
			return bs
		}(), nil)
		if !bytes.HasPrefix(durable, prefix) {
			return errors.New("an acknowledged (fsynced) record is missing from the durable bytes")
		}
		if p.Err == nil && p.Op != 7 {
			return errors.New("non-final point without a crash error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// open + 3*(write+sync) = 7 ops -> points 0..6 plus the final run.
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(points, want) {
		t.Fatalf("explored points %v, want %v", points, want)
	}
}
