package fsx

import "fmt"

// CrashPoint is one explored crash: the scenario was killed by a
// simulated power loss at operation index Op, leaving Durable as the
// only bytes on disk. Err is what the scenario returned (it wraps
// ErrCrashed for every point except the final, crash-free one).
type CrashPoint struct {
	// Op is the operation index the power loss hit; it equals the
	// scenario's total operation count for the final crash-free point.
	Op int
	// Durable maps file path to the exact bytes a real power loss at
	// this point could leave on disk under the pessimistic model
	// (fsync barriers honored, renames durable only after dir-sync).
	Durable map[string][]byte
	// Err is the scenario's return at this point: non-nil (wrapping
	// ErrCrashed) at every true crash point, nil for the final
	// crash-free run.
	Err error
}

// Explore enumerates every crash point of a filesystem scenario. It
// first runs scenario crash-free against a fresh Faulty filesystem to
// learn the operation count N, then replays it N more times with a
// simulated power loss at each operation index 0..N-1, invoking check
// with the durable state a real crash there could leave behind. A
// final crash-free point (Op == N, Err == nil) is checked last, so
// recovery is also proven against the fully successful run.
//
// setup (optional) seeds pre-existing files on each fresh filesystem
// before the scenario runs; scenario must be deterministic and
// single-goroutine, and must propagate filesystem errors — a crashed
// operation's error is how the "kill" reaches it. check typically
// restores the durable bytes into a real directory, runs recovery,
// and asserts the crash-consistency invariants; its first error
// aborts the exploration.
func Explore(seed int64, setup func(*Faulty), scenario func(FS) error, check func(CrashPoint) error) error {
	run := func(crashAt int) (*Faulty, error) {
		fa := NewFaulty(seed)
		if setup != nil {
			setup(fa)
		}
		if crashAt >= 0 {
			fa.CrashAt(crashAt)
		}
		return fa, scenario(fa)
	}

	fa, err := run(-1)
	if err != nil {
		return fmt.Errorf("fsx: crash-free scenario run failed: %w", err)
	}
	n := fa.OpCount()
	for k := 0; k < n; k++ {
		crashed, serr := run(k)
		if serr == nil {
			return fmt.Errorf("fsx: scenario survived a crash at op %d/%d without reporting an error", k, n)
		}
		if !crashed.Crashed() {
			return fmt.Errorf("fsx: scenario is nondeterministic: crash point %d/%d was never reached", k, n)
		}
		if err := check(CrashPoint{Op: k, Durable: crashed.DurableFiles(), Err: serr}); err != nil {
			return fmt.Errorf("fsx: crash at op %d/%d: %w", k, n, err)
		}
	}
	final, err := run(-1)
	if err != nil {
		return fmt.Errorf("fsx: final crash-free scenario run failed: %w", err)
	}
	if got := final.OpCount(); got != n {
		return fmt.Errorf("fsx: scenario is nondeterministic: %d ops, then %d", n, got)
	}
	return check(CrashPoint{Op: n, Durable: final.DurableFiles(), Err: nil})
}
