package workloads

import (
	"fmt"

	"sdpm/internal/ir"
)

// Applu models 173.applu: an SSOR solver over two independent field
// families — the solution side {u, a, c} and the residual side
// {rsd, b, d} (~52MB) — plus a 2.5MB pivot panel traversed
// column-wise against its layout. The phase nests carry one
// statement per family, so the program fissions into the two family
// groups plus the panel (LF+DL applies), and the transposed panel
// sweep gives TL+DL something to repair — matching applu's behaviour
// in Figure 13, where it benefits from both transformations.
func Applu() *Benchmark {
	b := ir.NewBuilder("applu")
	u := b.Array2D("u", 1536, 1024) // 12MB, 192 units
	rsd := b.Array2D("rsd", 1536, 1024)
	a := b.Array2D("a", 1024, 1024) // 8MB, 128 units
	bb := b.Array2D("b", 1024, 1024)
	c := b.Array2D("c", 768, 1024) // 6MB, 96 units
	d := b.Array2D("d", 768, 1024)
	e := b.Array2D("e", 1280, 256) // 2.5MB, 40 units: pivot panel

	at := func(x *ir.Array) ir.Ref { return ir.R(x, ir.Var(0), ir.Var(1)) }
	wr := func(x *ir.Array) ir.Ref { return ir.W(x, ir.Var(0), ir.Var(1)) }

	iA := int64(1024) * 1024
	iC := int64(768) * 1024
	uA, uC := units(a), units(c) // 128, 96

	for cy := 0; cy < 3; cy++ {
		l := func(name string) string { return fmt.Sprintf("%s%d", name, cy) }
		// Jacobian assembly: each side reads the leading rows of its
		// 12MB field (the 1024x1024 window touches 128 units) and
		// fills its 8MB block.
		cst := split(costFor(iA, 2*2*uA, 10.6), 2)
		b.Nest(l("jacld"), ir.L("i", 1024), ir.L("j", 1024)).
			Stmt(cst[0], wr(a), ir.R(u, ir.Var(0), ir.Var(1))).
			Stmt(cst[1], wr(bb), ir.R(rsd, ir.Var(0), ir.Var(1)))
		// Lower/upper triangular sweeps: 768-row windows of u/a plus
		// full sweeps of c/d — 96 units per stream.
		cst = split(costFor(iC, 2*3*uC, 10.4), 2)
		b.Nest(l("blts"), ir.L("i", 768), ir.L("j", 1024)).
			Stmt(cst[0], wr(c), at(u), at(a)).
			Stmt(cst[1], wr(d), at(rsd), at(bb))
		// Field update.
		cst = split(costFor(iC, 2*3*uC, 10.5), 2)
		b.Nest(l("buts"), ir.L("i", 768), ir.L("j", 1024)).
			Stmt(cst[0], ir.W(u, ir.Var(0), ir.Var(1)), at(c), at(a)).
			Stmt(cst[1], ir.W(rsd, ir.Var(0), ir.Var(1)), at(d), at(bb))
	}
	// The non-conforming pivot traversal: e[j][i] with j innermost
	// cycles through all 40 stripe units of the panel once per run —
	// beyond the buffer cache — for 64 x 40 = 2560 requests.
	b.Nest("pivot", ir.L("i", 64), ir.L("j", 1280)).
		Stmt(costFor(64*1280, 64*40, 8.2),
			ir.R(e, ir.Var(1), ir.Var(0)))

	return &Benchmark{
		Name:        "applu",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    10,
		BiasPct:     23,
		Seed:        173,
		Paper:       Targets{DataMB: 54.7, Requests: 7004, EnergyJ: 5875.11, ExecMS: 70142.24},
		Fissionable: true,
	}
}
