package workloads

import (
	"fmt"

	"sdpm/internal/ir"
)

// Galgel models 178.galgel: a Galerkin spectral solver over four 4MB
// coefficient matrices (16MB) swept eight times. Every sweep is a
// single statement coupling all four matrices, so no nest is
// fissionable, and every access conforms to the row-major layouts —
// which is why galgel gains nothing from either LF+DL or TL+DL in
// the paper's Figure 13.
func Galgel() *Benchmark {
	const n0, n1 = 512, 1024 // 4MB per matrix
	b := ir.NewBuilder("galgel")
	g := make([]*ir.Array, 4)
	for i := range g {
		g[i] = b.Array2D(fmt.Sprintf("g%d", i+1), n0, n1)
	}
	at := func(a *ir.Array) ir.Ref { return ir.R(a, ir.Var(0), ir.Var(1)) }
	wr := func(a *ir.Array) ir.Ref { return ir.W(a, ir.Var(0), ir.Var(1)) }

	iters := int64(n0) * int64(n1)
	un := units(g[0]) // 64 units per matrix
	// Eight Galerkin sweeps; each touches all four matrices. The
	// per-request periods vary across sweeps (9..12ms), providing
	// the per-nest heterogeneity of a real iterative solver.
	periods := []float64{9.0, 10.5, 11.5, 9.5, 10.0, 12.0, 9.2, 10.8}
	for s := 0; s < 8; s++ {
		cost := costFor(iters, 4*un, periods[s])
		out := g[(s+3)%4]
		b.Nest(fmt.Sprintf("galerkin%d", s), ir.L("i", n0), ir.L("j", n1)).
			Stmt(cost, wr(out), at(g[s%4]), at(g[(s+1)%4]), at(g[(s+2)%4]))
	}
	return &Benchmark{
		Name:        "galgel",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    10,
		BiasPct:     22,
		Seed:        178,
		Paper:       Targets{DataMB: 16.0, Requests: 2048, EnergyJ: 1715.37, ExecMS: 20478.80},
		Fissionable: false,
	}
}
