package workloads

import (
	"fmt"

	"sdpm/internal/ir"
)

// Mgrid models 172.mgrid: V-cycle multigrid over two independent
// field hierarchies (a potential field u and a workspace field w),
// three levels each (5MB, 1MB, 0.125MB per field plus a residual per
// level; ~24.5MB total), seven V-cycles. Every phase nest carries
// one statement per hierarchy, and the two hierarchies share no
// arrays, so the program is fissionable into two array groups — the
// property that gives mgrid its LF+DL benefit in Figure 13. Note
// how the request rate varies strongly between fine- and
// coarse-level nests; this heterogeneity is what spreads mgrid's
// per-disk idle periods across the DRPM decision boundaries.
func Mgrid() *Benchmark {
	b := ir.NewBuilder("mgrid")
	type side struct {
		f0, r0, f1, r1, f2, r2 *ir.Array
	}
	mk := func(prefix string) side {
		return side{
			f0: b.Array2D(prefix+"0", 1024, 640), // 5MB, 80 units
			r0: b.Array2D("r"+prefix+"0", 1024, 640),
			f1: b.Array2D(prefix+"1", 512, 256), // 1MB, 16 units
			r1: b.Array2D("r"+prefix+"1", 512, 256),
			f2: b.Array2D(prefix+"2", 256, 64), // 0.125MB, 2 units
			r2: b.Array2D("r"+prefix+"2", 256, 64),
		}
	}
	u := mk("u")
	w := mk("w")

	at := func(x *ir.Array) ir.Ref { return ir.R(x, ir.Var(0), ir.Var(1)) }
	wr := func(x *ir.Array) ir.Ref { return ir.W(x, ir.Var(0), ir.Var(1)) }

	i0 := int64(1024) * 640
	i1 := int64(512) * 256
	i2 := int64(256) * 64
	u0, u1 := units(u.f0), units(u.f1) // 80, 16
	u2 := units(u.f2)                  // 2

	for cy := 0; cy < 7; cy++ {
		l := func(name string) string { return fmt.Sprintf("%s%d", name, cy) }
		// Pre-smoothing on the fine grid: 2 fields per side.
		c := split(costFor(i0, 2*2*u0, 11.2), 2)
		b.Nest(l("smooth0"), ir.L("i", 1024), ir.L("j", 640)).
			Stmt(c[0], wr(u.f0), at(u.f0), at(u.r0)).
			Stmt(c[1], wr(w.f0), at(w.f0), at(w.r0))
		// Restriction to level 1 (iterates the coarse index space,
		// reading the fine grid at stride 2).
		c = split(costFor(i1, 2*(u0+u0+u1), 10.0), 2)
		b.Nest(l("rprj1"), ir.L("i", 512), ir.L("j", 256)).
			Stmt(c[0], wr(u.r1),
				ir.R(u.r0, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				ir.R(u.f0, ir.Var(0).Times(2), ir.Var(1).Times(2))).
			Stmt(c[1], wr(w.r1),
				ir.R(w.r0, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				ir.R(w.f0, ir.Var(0).Times(2), ir.Var(1).Times(2)))
		// Level-1 smoothing.
		c = split(costFor(i1, 2*2*u1, 9.0), 2)
		b.Nest(l("smooth1"), ir.L("i", 512), ir.L("j", 256)).
			Stmt(c[0], wr(u.f1), at(u.f1), at(u.r1)).
			Stmt(c[1], wr(w.f1), at(w.f1), at(w.r1))
		// Restriction to level 2.
		c = split(costFor(i2, 2*(u1+u1+u2), 8.0), 2)
		b.Nest(l("rprj2"), ir.L("i", 256), ir.L("j", 64)).
			Stmt(c[0], wr(u.r2),
				ir.R(u.r1, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				ir.R(u.f1, ir.Var(0).Times(2), ir.Var(1).Times(2))).
			Stmt(c[1], wr(w.r2),
				ir.R(w.r1, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				ir.R(w.f1, ir.Var(0).Times(2), ir.Var(1).Times(2)))
		// Coarsest smoothing (tiny; often buffer-cache resident).
		c = split(costFor(i2, 2*2*u2, 7.5), 2)
		b.Nest(l("smooth2"), ir.L("i", 256), ir.L("j", 64)).
			Stmt(c[0], wr(u.f2), at(u.f2), at(u.r2)).
			Stmt(c[1], wr(w.f2), at(w.f2), at(w.r2))
		// Prolongation back to level 1: iterate the coarse (level-2)
		// space, write the level-1 field at stride 2, read level 2
		// pointwise.
		c = split(costFor(i2, 2*(u1+u2), 9.0), 2)
		b.Nest(l("interp1"), ir.L("i", 256), ir.L("j", 64)).
			Stmt(c[0],
				ir.W(u.f1, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				at(u.f2)).
			Stmt(c[1],
				ir.W(w.f1, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				at(w.f2))
		// Post-smoothing on level 1.
		c = split(costFor(i1, 2*2*u1, 9.5), 2)
		b.Nest(l("smooth1b"), ir.L("i", 512), ir.L("j", 256)).
			Stmt(c[0], wr(u.f1), at(u.f1), at(u.r1)).
			Stmt(c[1], wr(w.f1), at(w.f1), at(w.r1))
		// Prolongation to the fine grid: iterate the level-1 space,
		// write the fine field at stride 2, read level 1 pointwise.
		c = split(costFor(i1, 2*(u0+u1), 10.5), 2)
		b.Nest(l("interp0"), ir.L("i", 512), ir.L("j", 256)).
			Stmt(c[0],
				ir.W(u.f0, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				at(u.f1)).
			Stmt(c[1],
				ir.W(w.f0, ir.Var(0).Times(2), ir.Var(1).Times(2)),
				at(w.f1))
		// Two post-smoothing sweeps on the fine grid.
		c = split(costFor(i0, 2*2*u0, 11.0), 2)
		b.Nest(l("smooth0b"), ir.L("i", 1024), ir.L("j", 640)).
			Stmt(c[0], wr(u.f0), at(u.f0), at(u.r0)).
			Stmt(c[1], wr(w.f0), at(w.f0), at(w.r0))
		b.Nest(l("smooth0c"), ir.L("i", 1024), ir.L("j", 640)).
			Stmt(c[0], wr(u.f0), at(u.f0), at(u.r0)).
			Stmt(c[1], wr(w.f0), at(w.f0), at(w.r0))
	}

	return &Benchmark{
		Name:        "mgrid",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    10,
		BiasPct:     15,
		Seed:        172,
		Paper:       Targets{DataMB: 24.7, Requests: 12288, EnergyJ: 10600.54, ExecMS: 126651.12},
		Fissionable: true,
	}
}
