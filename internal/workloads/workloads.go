// Package workloads defines the six disk-resident benchmark programs
// of the paper's Table 2 as IR programs. The originals are SPEC
// CFP2000 codes (wupwise, swim, mgrid, applu, mesa, galgel) with
// their data made disk resident; here each is a synthetic loop-nest
// program calibrated to the paper's reported aggregates — dataset
// size, disk request count (at the 64KB stripe-unit granularity the
// paper's numbers imply), base energy and base execution time — and
// to the structural properties the paper's evaluation relies on:
//
//   - swim, mgrid, applu, mesa contain fissionable nests (disjoint
//     statement groups), so LF+DL helps them;
//   - wupwise and galgel contain no fissionable nests;
//   - wupwise, applu, mesa contain a layout-nonconforming access
//     (a transposed traversal), so TL+DL helps them;
//   - galgel's accesses conform to its layouts, so neither
//     transformation helps it.
package workloads

import (
	"fmt"

	"sdpm/internal/cycles"
	"sdpm/internal/ir"
)

// UnitBytes is the stripe unit size of Table 1 (64 KB).
const UnitBytes = 65536

// DefaultDisks is the stripe factor of Table 1.
const DefaultDisks = 8

// DefaultCacheUnits is the buffer cache capacity used for the
// benchmarks (in stripe units). It is large enough to coalesce the
// per-unit element touches of every concurrently swept array stream,
// and far smaller than any major array, so full sweeps miss on every
// unit — which is what makes the request counts of Table 2 come out
// at one request per stripe unit per sweep.
const DefaultCacheUnits = 16

// nominalServiceMS is the full-speed service time of one 64KB
// request under the Table 1 disk (seek 3.4 + rotation 2.0 + transfer
// 1.19 ms), used only for calibrating statement costs.
const nominalServiceMS = 3.4 + 2.0 + 65536.0/55e6*1e3

// Targets holds the paper's Table 2 row for a benchmark.
type Targets struct {
	DataMB   float64
	Requests int
	EnergyJ  float64
	ExecMS   float64
}

// Benchmark bundles a workload program with its modelling parameters
// and its Table 2 calibration targets.
type Benchmark struct {
	Name    string
	Program *ir.Program
	// CacheUnits is the buffer cache capacity for this benchmark.
	CacheUnits int
	// NoisePct and BiasPct configure the execution-time variation
	// (see internal/cycles); BiasPct drives Table 3.
	NoisePct float64
	BiasPct  float64
	// Seed fixes the deterministic jitter streams.
	Seed uint64
	// Paper holds the Table 2 values the workload is calibrated to.
	Paper Targets
	// Fissionable records whether the paper reports the benchmark as
	// having fissionable nests.
	Fissionable bool
}

// Model returns the benchmark's cycle model.
func (b *Benchmark) Model() *cycles.Model {
	m := cycles.New(cycles.DefaultClockHz, b.NoisePct, b.Seed)
	m.BiasPct = b.BiasPct
	return m
}

// All returns the six benchmarks in the paper's Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		Wupwise(), Swim(), Mgrid(), Applu(), Mesa(), Galgel(),
	}
}

// Names returns the benchmark names in Table 2 order.
func Names() []string {
	return []string{"wupwise", "swim", "mgrid", "applu", "mesa", "galgel"}
}

// ByName returns the named benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
}

// units returns the number of 64KB stripe units an array occupies.
func units(a *ir.Array) int64 {
	return (a.SizeBytes() + UnitBytes - 1) / UnitBytes
}

// costFor computes the per-iteration compute-cycle cost that makes a
// nest with the given iteration and request counts run at the given
// per-request period (service + think), at the default 750 MHz
// clock.
func costFor(iters, requests int64, periodMS float64) int64 {
	if iters == 0 || requests == 0 {
		return 0
	}
	think := (periodMS - nominalServiceMS) * float64(requests)
	if think < 0 {
		think = 0
	}
	return int64(think / float64(iters) / 1e3 * cycles.DefaultClockHz)
}

// split divides a per-iteration cost evenly over n statements, giving
// the remainder to the first.
func split(total int64, n int) []int64 {
	out := make([]int64, n)
	each := total / int64(n)
	for i := range out {
		out[i] = each
	}
	out[0] += total - each*int64(n)
	return out
}
