package workloads

import (
	"math"
	"testing"

	"sdpm/internal/access"
	"sdpm/internal/disk"
	"sdpm/internal/layout"
	"sdpm/internal/sim"
	"sdpm/internal/tracegen"
	"sdpm/internal/xform"
)

// baseRun generates the benchmark's base trace under the default
// (staggered, Table 1) placement and simulates it without power
// management.
func baseRun(t *testing.T, b *Benchmark) (*sim.Result, []tracegen.Site) {
	t.Helper()
	p := disk.DefaultParams()
	sub := layout.MustSubsystem(DefaultDisks)
	if err := access.PlaceArraysStaggered(b.Program, sub, DefaultDisks, UnitBytes); err != nil {
		t.Fatal(err)
	}
	sites, err := tracegen.Sites(b.Program, sub, b.CacheUnits)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracegen.FromSites(b.Name, DefaultDisks, sites, tracegen.Options{
		Model:            b.Model(),
		NominalServiceMS: func(n int64) float64 { return p.ServiceTimeMS(p.MaxRPM, n) },
	})
	res, err := sim.Run(tr, sim.Config{Disk: p})
	if err != nil {
		t.Fatal(err)
	}
	return res, sites
}

func within(got, want, tolPct float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got/want-1) <= tolPct/100
}

func TestBenchmarkRegistry(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("benchmarks = %d", len(all))
	}
	names := Names()
	for i, b := range all {
		if b.Name != names[i] {
			t.Errorf("order mismatch: %s vs %s", b.Name, names[i])
		}
		got, err := ByName(b.Name)
		if err != nil || got.Name != b.Name {
			t.Errorf("ByName(%s) failed: %v", b.Name, err)
		}
		if err := b.Program.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", b.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDataSizesMatchTable2(t *testing.T) {
	for _, b := range All() {
		gotMB := float64(b.Program.TotalBytes()) / (1 << 20)
		if !within(gotMB, b.Paper.DataMB, 5) {
			t.Errorf("%s: data %.1fMB, paper %.1fMB", b.Name, gotMB, b.Paper.DataMB)
		}
	}
}

func TestTable2Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	for _, b := range All() {
		res, sites := baseRun(t, b)
		reqTol, timeTol := 10.0, 12.0
		if !within(float64(len(sites)), float64(b.Paper.Requests), reqTol) {
			t.Errorf("%s: requests %d, paper %d (%.1f%%)",
				b.Name, len(sites), b.Paper.Requests,
				100*(float64(len(sites))/float64(b.Paper.Requests)-1))
		}
		if !within(res.ExecMS, b.Paper.ExecMS, timeTol) {
			t.Errorf("%s: exec %.0fms, paper %.0fms (%.1f%%)",
				b.Name, res.ExecMS, b.Paper.ExecMS, 100*(res.ExecMS/b.Paper.ExecMS-1))
		}
		if !within(res.EnergyJ, b.Paper.EnergyJ, timeTol) {
			t.Errorf("%s: energy %.0fJ, paper %.0fJ (%.1f%%)",
				b.Name, res.EnergyJ, b.Paper.EnergyJ, 100*(res.EnergyJ/b.Paper.EnergyJ-1))
		}
		t.Logf("%-8s reqs %6d (paper %6d)  exec %8.0fms (paper %8.0f)  energy %7.0fJ (paper %8.2f)",
			b.Name, len(sites), b.Paper.Requests, res.ExecMS, b.Paper.ExecMS, res.EnergyJ, b.Paper.EnergyJ)
	}
}

func TestFissionabilityMatchesPaper(t *testing.T) {
	for _, b := range All() {
		if got := xform.Fissionable(b.Program); got != b.Fissionable {
			t.Errorf("%s: fissionable = %v, paper says %v", b.Name, got, b.Fissionable)
		}
	}
}

func TestArrayGroupCounts(t *testing.T) {
	// The fissionable benchmarks must form more than one array group
	// so LF+DL can separate disks; wupwise and galgel collapse to at
	// most two groups (galgel exactly one).
	wantMin := map[string]int{
		"swim": 3, "mgrid": 2, "applu": 3, "mesa": 3,
	}
	for _, b := range All() {
		groups := xform.ArrayGroups(b.Program)
		if min, ok := wantMin[b.Name]; ok {
			if len(groups) < min {
				t.Errorf("%s: %d array groups, want >= %d", b.Name, len(groups), min)
			}
		}
	}
	g, _ := ByName("galgel")
	if n := len(xform.ArrayGroups(g.Program)); n != 1 {
		t.Errorf("galgel groups = %d, want 1", n)
	}
}

func TestTransposedBenchmarksAreTileable(t *testing.T) {
	// wupwise, applu, mesa contain the non-conforming nest that
	// TL+DL repairs; tiling their costliest nest must succeed and
	// must transpose at least one array.
	for _, name := range []string{"wupwise", "applu", "mesa"} {
		b, _ := ByName(name)
		res, err := xform.Tile(b.Program, xform.TileOptions{
			UnitBytes: UnitBytes, NumDisks: DefaultDisks, LayoutAware: true,
			NestCost: nestRequestCounts(t, b),
		})
		if err != nil {
			t.Errorf("%s: tiling failed: %v", name, err)
			continue
		}
		if len(res.Transposed) == 0 {
			t.Errorf("%s: TL+DL transposed nothing", name)
		}
	}
}

// nestRequestCounts computes per-nest request counts of the base
// trace, the cost metric the experiments hand to the tiler.
func nestRequestCounts(t *testing.T, b *Benchmark) []float64 {
	t.Helper()
	sub := layout.MustSubsystem(DefaultDisks)
	if err := access.PlaceArraysStaggered(b.Program, sub, DefaultDisks, UnitBytes); err != nil {
		t.Fatal(err)
	}
	sites, err := tracegen.Sites(b.Program, sub, b.CacheUnits)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(b.Program.Nests))
	for _, s := range sites {
		out[s.Nest]++
	}
	return out
}

func TestGalgelGainsNothingFromTransforms(t *testing.T) {
	b, _ := ByName("galgel")
	// Not fissionable, single array group: LF+DL degenerates to the
	// default layout.
	if xform.Fissionable(b.Program) {
		t.Error("galgel fissionable")
	}
	groups := xform.ArrayGroups(b.Program)
	st, err := xform.AssignGroupDisks(groups, DefaultDisks, UnitBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st {
		if s.Factor != DefaultDisks {
			t.Errorf("galgel group striped over %d disks, want %d", s.Factor, DefaultDisks)
		}
	}
	// Tiling succeeds but transposes nothing (conforming accesses).
	res, err := xform.Tile(b.Program, xform.TileOptions{
		UnitBytes: UnitBytes, NumDisks: DefaultDisks, LayoutAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transposed) != 0 {
		t.Errorf("galgel transposed %v", res.Transposed)
	}
}

func TestHeterogeneousGapStructure(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	// Table 3 needs idle periods spread across the DRPM decision
	// boundaries: check that the benchmarks' per-disk idle periods
	// are not all in the saturated (>70ms) region.
	for _, name := range []string{"mesa", "applu", "mgrid"} {
		b, _ := ByName(name)
		res, _ := baseRun(t, b)
		short, total := 0, 0
		for _, idles := range res.Idles {
			for _, ip := range idles {
				if ip.LenMS <= 0 {
					continue
				}
				total++
				if ip.LenMS < 70 {
					short++
				}
			}
		}
		if total == 0 || float64(short)/float64(total) < 0.05 {
			t.Errorf("%s: only %d/%d idle periods below 70ms — no level sensitivity", name, short, total)
		}
	}
}

func TestRequestsSpreadAcrossDisks(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	// Under the default staggered placement every disk carries a
	// meaningful share of each benchmark's requests — the structure
	// behind the paper's per-disk idle-period lengths.
	for _, b := range All() {
		sub := layout.MustSubsystem(DefaultDisks)
		if err := access.PlaceArraysStaggered(b.Program, sub, DefaultDisks, UnitBytes); err != nil {
			t.Fatal(err)
		}
		sites, err := tracegen.Sites(b.Program, sub, b.CacheUnits)
		if err != nil {
			t.Fatal(err)
		}
		perDisk := make([]int, DefaultDisks)
		for _, s := range sites {
			perDisk[s.Disk]++
		}
		mean := float64(len(sites)) / DefaultDisks
		for d, n := range perDisk {
			if float64(n) < 0.5*mean || float64(n) > 1.5*mean {
				t.Errorf("%s: disk %d carries %d of %d requests (mean %.0f)",
					b.Name, d, n, len(sites), mean)
			}
		}
	}
}
