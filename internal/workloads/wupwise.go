package workloads

import (
	"fmt"

	"sdpm/internal/ir"
)

// Wupwise models 168.wupwise: lattice-QCD style dense linear algebra
// over four ~44MB matrices (three update sweeps repeated three
// times) plus a smaller working panel that one routine traverses
// column-wise against its row-major layout. Every nest is a single
// coupled statement, so nothing is fissionable — but the transposed
// panel traversal thrashes the buffer cache, and layout-aware tiling
// (TL+DL) repairs exactly that, which is how wupwise gains from
// TL+DL but not LF+DL in the paper's Figure 13.
func Wupwise() *Benchmark {
	const n0, n1 = 2048, 2688 // 44.0MB, 672 units per matrix
	b := ir.NewBuilder("wupwise")
	a := b.Array2D("a", n0, n1)
	bb := b.Array2D("b", n0, n1)
	c := b.Array2D("c", n0, n1)
	d := b.Array2D("d", n0, n1)
	e := b.Array2D("e", 3456, 192) // 5.1MB, 81 units: the panel

	at := func(x *ir.Array) ir.Ref { return ir.R(x, ir.Var(0), ir.Var(1)) }
	wr := func(x *ir.Array) ir.Ref { return ir.W(x, ir.Var(0), ir.Var(1)) }

	iters := int64(n0) * int64(n1)
	un := units(a) // 672
	for cycle := 0; cycle < 3; cycle++ {
		// Three coupled full-matrix sweeps per cycle, ~11.5ms per
		// request.
		b.Nest(fmt.Sprintf("zgemm%d", cycle), ir.L("i", n0), ir.L("j", n1)).
			Stmt(costFor(iters, 3*un, 11.4), wr(c), at(a), at(bb))
		b.Nest(fmt.Sprintf("zaxpy%d", cycle), ir.L("i", n0), ir.L("j", n1)).
			Stmt(costFor(iters, 3*un, 11.6), wr(d), at(c), at(a))
		b.Nest(fmt.Sprintf("zcopy%d", cycle), ir.L("i", n0), ir.L("j", n1)).
			Stmt(costFor(iters, 3*un, 11.5), wr(bb), at(d), at(c))
	}
	// The non-conforming panel traversal: e[j][i] with j innermost
	// walks down the columns of the row-major panel, entering a new
	// stripe unit every 32 steps and cycling through all 81 units of
	// the panel once per run — far beyond the buffer cache — for
	// 64 x 81 = 5184 requests from a 5MB array.
	b.Nest("su3mul", ir.L("i", 64), ir.L("j", 3456)).
		Stmt(costFor(64*3456, 64*81, 8.0),
			ir.R(e, ir.Var(1), ir.Var(0)))

	return &Benchmark{
		Name:        "wupwise",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    4,
		BiasPct:     5,
		Seed:        168,
		Paper:       Targets{DataMB: 176.7, Requests: 24718, EnergyJ: 20835.96, ExecMS: 248790.00},
		Fissionable: false,
	}
}
