package workloads

import "sdpm/internal/ir"

// Swim models 171.swim: a shallow-water stencil over twelve 8MB
// fields (96MB), one time step of three sweeps (CALC1, CALC2,
// CALC3). Every sweep consists of statement groups over disjoint
// field families, so the program is fully fissionable into the three
// array groups {u,cu,unew,uold}, {v,cv,vnew,vold}, {p,z,h,pnew} —
// the property that makes LF+DL effective on swim (Fig. 13). All
// accesses conform to the row-major layouts.
func Swim() *Benchmark {
	const n0, n1 = 1024, 1024 // 8MB per field
	b := ir.NewBuilder("swim")
	u := b.Array2D("u", n0, n1)
	v := b.Array2D("v", n0, n1)
	p := b.Array2D("p", n0, n1)
	cu := b.Array2D("cu", n0, n1)
	cv := b.Array2D("cv", n0, n1)
	z := b.Array2D("z", n0, n1)
	h := b.Array2D("h", n0, n1)
	unew := b.Array2D("unew", n0, n1)
	vnew := b.Array2D("vnew", n0, n1)
	pnew := b.Array2D("pnew", n0, n1)
	uold := b.Array2D("uold", n0, n1)
	vold := b.Array2D("vold", n0, n1)

	at := func(a *ir.Array) ir.Ref { return ir.R(a, ir.Var(0), ir.Var(1)) }
	wr := func(a *ir.Array) ir.Ref { return ir.W(a, ir.Var(0), ir.Var(1)) }

	iters := int64(n0) * int64(n1)
	un := units(u) // 128 units per field

	// CALC1: capacities and vorticity; 4 uncoupled statement groups
	// touching 7 distinct fields -> 7*128 requests at 8.0ms/request.
	c1 := split(costFor(iters, 7*un, 8.0), 4)
	b.Nest("calc1", ir.L("i", n0), ir.L("j", n1)).
		Stmt(c1[0], wr(cu), at(u)).
		Stmt(c1[1], wr(cv), at(v)).
		Stmt(c1[2], wr(z), at(p)).
		Stmt(c1[3], wr(h), at(p))

	// CALC2: new field values; 10 distinct fields at 11.5ms/request.
	c2 := split(costFor(iters, 10*un, 11.5), 3)
	b.Nest("calc2", ir.L("i", n0), ir.L("j", n1)).
		Stmt(c2[0], wr(unew), at(u), at(cu)).
		Stmt(c2[1], wr(vnew), at(v), at(cv)).
		Stmt(c2[2], wr(pnew), at(p), at(z), at(h))

	// CALC3: time smoothing; 8 distinct fields at 10.3ms/request.
	c3 := split(costFor(iters, 8*un, 10.3), 3)
	b.Nest("calc3", ir.L("i", n0), ir.L("j", n1)).
		Stmt(c3[0], at(unew), wr(u), wr(uold)).
		Stmt(c3[1], at(vnew), wr(v), wr(vold)).
		Stmt(c3[2], at(pnew), wr(p))

	return &Benchmark{
		Name:        "swim",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    6,
		BiasPct:     4,
		Seed:        171,
		Paper:       Targets{DataMB: 96.0, Requests: 3159, EnergyJ: 2686.79, ExecMS: 32088.98},
		Fissionable: true,
	}
}
