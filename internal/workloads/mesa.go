package workloads

import (
	"fmt"

	"sdpm/internal/ir"
)

// Mesa models 177.mesa: a software-rendering pipeline over six 3.25MB
// buffers (vertex/normal data {m1,m2}, texture coordinates {m3,m4},
// frame/depth buffers {m5,m6}) processed in four pipeline rounds,
// plus a 5MB texture image that one sampling pass walks column-wise
// against its row-major layout. The round nests carry independent
// per-family statements (LF+DL applies) and the transposed sampling
// pass gives TL+DL its opportunity, matching mesa's behaviour in
// Figure 13 (it benefits from both transformations).
func Mesa() *Benchmark {
	const n0, n1 = 416, 1024 // 3.25MB per buffer, 52 units
	b := ir.NewBuilder("mesa")
	m := make([]*ir.Array, 7)
	for i := 1; i <= 6; i++ {
		m[i] = b.Array2D(fmt.Sprintf("m%d", i), n0, n1)
	}
	tex := b.Array2D("tex", 512, 1280) // 5MB, 80 units

	at := func(x *ir.Array) ir.Ref { return ir.R(x, ir.Var(0), ir.Var(1)) }
	wr := func(x *ir.Array) ir.Ref { return ir.W(x, ir.Var(0), ir.Var(1)) }

	iters := int64(n0) * int64(n1)
	un := units(m[1]) // 52 units per buffer
	for round := 0; round < 4; round++ {
		l := func(name string) string { return fmt.Sprintf("%s%d", name, round) }
		cst := split(costFor(iters, 2*2*un, 11.4), 2)
		b.Nest(l("xform"), ir.L("i", n0), ir.L("j", n1)).
			Stmt(cst[0], wr(m[2]), at(m[1])).
			Stmt(cst[1], wr(m[4]), at(m[3]))
		cst = split(costFor(iters, 2*2*un, 11.6), 2)
		b.Nest(l("shade"), ir.L("i", n0), ir.L("j", n1)).
			Stmt(cst[0], wr(m[1]), at(m[2])).
			Stmt(cst[1], wr(m[6]), at(m[5]))
	}
	// The texture-sampling pass walks the row-major texture
	// column-wise: 80 stripe units per run, 16 runs — 1280
	// cache-thrashing requests from a 5MB image.
	b.Nest("texsample", ir.L("i", 16), ir.L("j", 512)).
		Stmt(costFor(16*512, 16*80, 8.5),
			ir.R(tex, ir.Var(1), ir.Var(0)))

	return &Benchmark{
		Name:        "mesa",
		Program:     b.MustBuild(),
		CacheUnits:  DefaultCacheUnits,
		NoisePct:    10,
		BiasPct:     15,
		Seed:        177,
		Paper:       Targets{DataMB: 24.0, Requests: 3072, EnergyJ: 2667.00, ExecMS: 31869.54},
		Fissionable: true,
	}
}
