package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// RootContext builds the tools' shared root context: it is canceled
// by SIGINT/SIGTERM, and — when timeout is positive — additionally
// expires after that duration (the -timeout flag). Cancellation flows
// through the engine's existing paths (runner pools stop claiming
// cells, suites return the context's error) and the callers' partial
// flushes still run, so a timed-out run behaves exactly like an
// interrupted one: metrics, events, and journal records produced so
// far survive. The returned stop function releases the signal
// registration and the timer; call it on every exit path.
func RootContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}
