// Package cli holds the shared helpers of the command-line tools:
// workload loading and layout-spec parsing.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"sdpm"
)

// LoadWorkload resolves the -bench / -dsl flag pair common to the
// tools: exactly one must be set.
func LoadWorkload(bench, dslFile string) (*sdpm.Workload, error) {
	switch {
	case bench != "" && dslFile != "":
		return nil, fmt.Errorf("use either -bench or -dsl, not both")
	case bench != "":
		return sdpm.Benchmark(bench)
	case dslFile != "":
		src, err := os.ReadFile(dslFile)
		if err != nil {
			return nil, err
		}
		return sdpm.ParseProgram(string(src))
	default:
		return nil, fmt.Errorf("one of -bench or -dsl is required (benchmarks: %v)", sdpm.BenchmarkNames())
	}
}

// ApplyLayoutSpecs parses and applies -layout specifications of the
// form "array=start:factor:unitKB", comma separated — the command
// line route for handing the compiler pre-existing disk layouts
// (Section 3 of the paper).
func ApplyLayoutSpecs(w *sdpm.Workload, specs string) error {
	if specs == "" {
		return nil
	}
	for _, spec := range strings.Split(specs, ",") {
		name, tuple, ok := strings.Cut(strings.TrimSpace(spec), "=")
		if !ok {
			return fmt.Errorf("cli: layout %q: want array=start:factor:unitKB", spec)
		}
		parts := strings.Split(tuple, ":")
		if len(parts) != 3 {
			return fmt.Errorf("cli: layout %q: want start:factor:unitKB", spec)
		}
		start, err := strconv.Atoi(parts[0])
		if err != nil {
			return fmt.Errorf("cli: layout %q: bad starting disk: %v", spec, err)
		}
		factor, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("cli: layout %q: bad stripe factor: %v", spec, err)
		}
		unitKB, err := strconv.Atoi(parts[2])
		if err != nil {
			return fmt.Errorf("cli: layout %q: bad unit size: %v", spec, err)
		}
		if err := w.SetLayout(name, start, factor, int64(unitKB)*1024); err != nil {
			return err
		}
	}
	return nil
}
