package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadWorkloadBench(t *testing.T) {
	w, err := LoadWorkload("galgel", "")
	if err != nil || w.Name() != "galgel" {
		t.Fatalf("LoadWorkload: %v", err)
	}
	if _, err := LoadWorkload("nope", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := LoadWorkload("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := LoadWorkload("galgel", "x.sdpm"); err == nil {
		t.Error("both sources accepted")
	}
}

func TestLoadWorkloadDSL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.sdpm")
	src := "program p\narray a[8192]\nnest n { for i = 0..8192 do cost 10 { read a[i] } }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadWorkload("", path)
	if err != nil || w.Name() != "p" {
		t.Fatalf("LoadWorkload: %v", err)
	}
	if _, err := LoadWorkload("", filepath.Join(dir, "missing.sdpm")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.sdpm")
	_ = os.WriteFile(bad, []byte("garbage"), 0o644)
	if _, err := LoadWorkload("", bad); err == nil {
		t.Error("garbage accepted")
	}
}

func TestApplyLayoutSpecs(t *testing.T) {
	w, _ := LoadWorkload("galgel", "")
	if err := ApplyLayoutSpecs(w, ""); err != nil {
		t.Fatal(err)
	}
	if err := ApplyLayoutSpecs(w, "g1=0:4:64, g2=4:4:64"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"g1",           // no tuple
		"g1=1:2",       // short tuple
		"g1=x:2:64",    // bad start
		"g1=0:x:64",    // bad factor
		"g1=0:2:x",     // bad unit
		"ghost=0:2:64", // unknown array
	} {
		if err := ApplyLayoutSpecs(w, bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "layout") && !strings.Contains(err.Error(), "array") {
			t.Errorf("spec %q: unhelpful error %v", bad, err)
		}
	}
}
