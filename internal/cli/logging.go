package cli

import (
	"flag"
	"log/slog"
	"os"
)

// LogFlags registers the logging verbosity flags shared by all four
// tools and returns their destinations; call SetupLogging with them
// after flag.Parse.
func LogFlags(fs *flag.FlagSet) (verbose, quiet *bool) {
	verbose = fs.Bool("v", false, "verbose: enable debug-level logging on stderr")
	quiet = fs.Bool("q", false, "quiet: log only warnings and errors")
	return verbose, quiet
}

// SetupLogging installs the tools' structured logger: slog text
// output on stderr at info level by default, debug with -v, warn
// with -q. Timestamps are omitted so stderr stays deterministic and
// diffable; the tool name is attached to every record.
func SetupLogging(tool string, verbose, quiet bool) {
	lvl := slog.LevelInfo
	switch {
	case verbose:
		lvl = slog.LevelDebug
	case quiet:
		lvl = slog.LevelWarn
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: lvl,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	slog.SetDefault(slog.New(h).With("tool", tool))
}

// Fatal logs the error through the structured logger and exits 1 —
// the tools' replacement for ad-hoc fmt.Fprintf(os.Stderr, ...).
func Fatal(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
