package cli

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sdpm/internal/fsx"
)

// TestCrashWriteFileAtomicOldOrNew enumerates every crash point of an
// atomic overwrite — create-temp, write, fsync, rename, dir-sync —
// and asserts the recovery invariant at each: after restoring the
// durable bytes and sweeping stale tmps, the destination holds the
// complete old bytes or the complete new bytes, never a mix, and no
// tmp sibling remains visible. The final crash-free point must land
// the new bytes.
func TestCrashWriteFileAtomicOldOrNew(t *testing.T) {
	oldBytes := []byte("old metrics snapshot\nline two\n")
	newBytes := []byte("NEW metrics snapshot — longer payload\nline two\nline three\n")

	scenario := func(fs fsx.FS) error {
		return WriteFileAtomicFS(fs, "metrics.prom", func(w io.Writer) error {
			_, err := w.Write(newBytes)
			return err
		})
	}
	setup := func(fa *fsx.Faulty) { fa.SetFile("metrics.prom", oldBytes) }

	err := fsx.Explore(3, setup, scenario, func(p fsx.CrashPoint) error {
		// The durable destination is old-complete or new-complete at
		// every single point — the mix-free invariant.
		dest, ok := p.Durable["metrics.prom"]
		if !ok {
			return fmt.Errorf("crash at op %d: destination vanished from the durable state", p.Op)
		}
		if !bytes.Equal(dest, oldBytes) && !bytes.Equal(dest, newBytes) {
			return fmt.Errorf("crash at op %d: destination is a mix: %q", p.Op, dest)
		}
		if p.Err == nil && !bytes.Equal(dest, newBytes) {
			return fmt.Errorf("crash-free run left the old bytes in place")
		}
		// Reboot: restore the durable bytes to a real directory, run
		// the recovery sweep, and verify nothing but the destination
		// remains.
		dir := t.TempDir()
		for name, data := range p.Durable {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				return err
			}
		}
		path := filepath.Join(dir, "metrics.prom")
		if _, err := CleanStaleTmps(fsx.OS, path); err != nil {
			return err
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		if len(entries) != 1 || entries[0].Name() != "metrics.prom" {
			names := make([]string, 0, len(entries))
			for _, e := range entries {
				names = append(names, e.Name())
			}
			return fmt.Errorf("crash at op %d: recovery left %v, want only metrics.prom", p.Op, names)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, oldBytes) && !bytes.Equal(got, newBytes) {
			return fmt.Errorf("crash at op %d: recovered destination is a mix: %q", p.Op, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashWriteFileAtomicFreshFile is the same exploration when no
// destination pre-exists: at every crash point recovery finds either
// nothing or the complete new file — never a partial one.
func TestCrashWriteFileAtomicFreshFile(t *testing.T) {
	payload := []byte("fresh event log\n")
	scenario := func(fs fsx.FS) error {
		return WriteFileAtomicFS(fs, "events.jsonl", func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		})
	}
	err := fsx.Explore(4, nil, scenario, func(p fsx.CrashPoint) error {
		dest, ok := p.Durable["events.jsonl"]
		if ok && !bytes.Equal(dest, payload) {
			return fmt.Errorf("crash at op %d: partial destination %q", p.Op, dest)
		}
		if p.Err == nil && !ok {
			return fmt.Errorf("crash-free run produced no durable destination")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
