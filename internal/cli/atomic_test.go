package cli

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// A successful write lands the exact bytes at the destination and
// leaves no .tmp sibling behind; writing into a subdirectory
// exercises the rename + directory-fsync path on a dir that is not
// the test's cwd.
func TestWriteFileAtomic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "out.txt")
	// Overwrite an existing file to prove rename replaces, not appends.
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("fresh contents\n"))
		return err
	})
	if err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh contents\n" {
		t.Fatalf("destination holds %q, want %q", got, "fresh contents\n")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: stat err = %v", err)
	}
}

// A failing writer must leave the old destination untouched and clean
// up its temp file — the atomicity contract under error.
func TestWriteFileAtomicWriterErrorKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want the writer's", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("destination changed to %q after failed write", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after failure: stat err = %v", err)
	}
}

// SyncDir ignores an unopenable directory (nothing actionable) but
// succeeds on a real one.
func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir(real dir): %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err != nil {
		t.Fatalf("SyncDir(missing dir) = %v, want nil", err)
	}
}
