package cli

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sdpm/internal/fsx"
)

// tmpSiblings lists leftover temp files for path in its directory.
func tmpSiblings(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".tmp*")
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// A successful write lands the exact bytes at the destination and
// leaves no tmp sibling behind; writing into a subdirectory
// exercises the rename + directory-fsync path on a dir that is not
// the test's cwd.
func TestWriteFileAtomic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "out.txt")
	// Overwrite an existing file to prove rename replaces, not appends.
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("fresh contents\n"))
		return err
	})
	if err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh contents\n" {
		t.Fatalf("destination holds %q, want %q", got, "fresh contents\n")
	}
	if left := tmpSiblings(t, path); len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// A failing writer must leave the old destination untouched and clean
// up its temp file — the atomicity contract under error.
func TestWriteFileAtomicWriterErrorKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want the writer's", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("destination changed to %q after failed write", got)
	}
	if left := tmpSiblings(t, path); len(left) != 0 {
		t.Fatalf("temp files left behind after failure: %v", left)
	}
}

// Concurrent writers of the same destination never clobber each
// other: each call uses its own unique tmp name, so every rename is
// atomic and the final file is exactly one writer's complete payload
// — the two-dpmd-one-metrics-file scenario.
func TestWriteFileAtomicConcurrentWritersSameDest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	const writers = 8
	payload := func(i int) string {
		return fmt.Sprintf("writer %d line a\nwriter %d line b\n", i, i)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = WriteFileAtomic(path, func(w io.Writer) error {
				_, err := io.WriteString(w, payload(i))
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := false
	for i := 0; i < writers; i++ {
		if string(got) == payload(i) {
			whole = true
			break
		}
	}
	if !whole {
		t.Fatalf("destination is not any single writer's complete payload:\n%q", got)
	}
	if left := tmpSiblings(t, path); len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// CleanStaleTmps sweeps both the unique-suffix tmps and the legacy
// fixed .tmp name, and leaves the destination and unrelated files
// alone.
func TestCleanStaleTmps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	keep := []string{"out.txt", "other.txt", "out.txt2.tmp.3"}
	stale := []string{"out.txt.tmp", "out.txt.tmp.0", "out.txt.tmp.1234abcd"}
	for _, name := range append(append([]string{}, keep...), stale...) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(name), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := CleanStaleTmps(fsx.OS, path)
	if err != nil {
		t.Fatalf("CleanStaleTmps: %v", err)
	}
	if n != len(stale) {
		t.Fatalf("removed %d, want %d", n, len(stale))
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale tmp %s survived the sweep", name)
		}
	}
	for _, name := range keep {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("sweep removed %s: %v", name, err)
		}
	}
}

// SyncDir ignores an unopenable directory (nothing actionable) but
// succeeds on a real one.
func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir(real dir): %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err != nil {
		t.Fatalf("SyncDir(missing dir) = %v, want nil", err)
	}
}
