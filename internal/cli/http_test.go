package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sdpm/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	coll := obs.New()
	coll.CountSimRun()
	coll.EnsureDisks(1, 3000, 3000, 1)
	coll.ObserveRequest(0, 1.5, 0, 10)
	addr, shutdown, err := StartDebugServer("127.0.0.1:0", coll, func() any {
		return map[string]string{"phase": "testing"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "sdpm_sim_runs_total 1") {
		t.Errorf("/metrics missing sim-run counter:\n%s", body)
	}

	code, body = get(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status = %d", code)
	}
	var status struct {
		App     map[string]string `json:"app"`
		Metrics *obs.Snapshot     `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/status is not valid JSON: %v\n%s", err, body)
	}
	if status.App["phase"] != "testing" {
		t.Errorf("/status app = %v, want phase=testing", status.App)
	}
	if status.Metrics == nil || status.Metrics.SimRuns != 1 || status.Metrics.Requests != 1 {
		t.Errorf("/status metrics snapshot = %+v", status.Metrics)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestDebugServerNilCollector: -http without -metrics-out must still
// serve, with empty exposition and a null metrics field.
func TestDebugServerNilCollector(t *testing.T) {
	addr, shutdown, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := "http://" + addr
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
	code, body := get(t, base+"/status")
	if code != http.StatusOK {
		t.Errorf("/status status = %d", code)
	}
	var status struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if status.Metrics != nil {
		t.Errorf("nil collector rendered a snapshot: %+v", status.Metrics)
	}
}
