package cli

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"sdpm/internal/obs"
)

// StartDebugServer starts the tools' live introspection endpoint on
// addr (e.g. ":6060"; ":0" picks a free port) and returns the bound
// address plus a shutdown function. It serves:
//
//	/metrics       Prometheus text exposition of the collector,
//	               rendered from a consistent snapshot (a scrape
//	               mid-run never sees torn count/sum pairs)
//	/status        a JSON snapshot of the same counters plus an
//	               optional application status value (experiment or
//	               run identity, progress), for humans and scripts
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The server runs on a background goroutine and never blocks the run
// it observes: handlers only read atomics. status may be nil; coll
// may be nil (the endpoints then render empty data rather than 500s,
// so -http works even without -metrics-out).
func StartDebugServer(addr string, coll *obs.Collector, status func() any) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := DebugMux(coll, status)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			slog.Warn("debug server stopped", "err", err)
		}
	}()
	bound := ln.Addr().String()
	slog.Info("debug endpoint listening", "addr", bound)
	return bound, func() { _ = srv.Close() }, nil
}

// DebugMux builds the introspection mux behind StartDebugServer —
// /metrics, /status, and /debug/pprof/ — without binding a listener,
// so a long-lived service (cmd/dpmd) can mount the same endpoints on
// its own mux next to its API routes. coll and status may be nil, as
// in StartDebugServer.
func DebugMux(coll *obs.Collector, status func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, coll); err != nil {
			slog.Warn("metrics scrape failed", "err", err)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		var app any
		if status != nil {
			app = status()
		}
		body := struct {
			App     any           `json:"app,omitempty"`
			Metrics *obs.Snapshot `json:"metrics"`
		}{App: app}
		if coll != nil {
			snap := coll.Snapshot()
			body.Metrics = &snap
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(body); err != nil {
			slog.Warn("status render failed", "err", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
