package cli

import (
	"io"
	"path/filepath"
	"strings"

	"sdpm/internal/fsx"
)

// WriteFileAtomic writes a file through a temporary sibling: the
// writer runs against a uniquely named "<path>.tmp.*" file, which is
// fsynced, closed, and renamed over the destination only if every
// step succeeded. A crash or write error never leaves a half-written
// file at path — at worst a stale tmp, which CleanStaleTmps (or the
// next successful write of the same name) disposes of. The tmp name
// is unique per call (os.CreateTemp-style), so two concurrent writers
// of the same destination — e.g. two dpmd instances pointed at
// different journals but the same -metrics-out — cannot clobber each
// other's tmp file: both renames are atomic and the destination is
// always exactly one writer's complete bytes. After the rename the
// containing directory is fsynced too, so the new directory entry
// itself survives a crash — without it the rename can still be
// sitting in the page cache when the machine dies, and the
// journal/metrics/events file quietly reverts to its old bytes (or
// vanishes).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return WriteFileAtomicFS(fsx.OS, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem —
// fsx.OS in production, a fault-injecting fsx.Faulty under test. The
// crash explorer (fsx.Explore) proves the old-bytes-or-new-bytes
// invariant at every operation a power loss could interrupt.
func WriteFileAtomicFS(fs fsx.FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, filepath.Base(path)+tmpInfix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}

// tmpInfix marks WriteFileAtomic's temporary siblings; the unique
// suffix follows it. CleanStaleTmps keys on the same marker.
const tmpInfix = ".tmp."

// CleanStaleTmps removes temporary siblings a crashed or killed
// writer left next to path: every "<base>.tmp.*" in path's directory,
// plus the legacy fixed "<base>.tmp" name. It returns how many were
// removed. Call it only when no live writer can be mid-write to path
// — a swept tmp makes that writer's rename fail.
func CleanStaleTmps(fs fsx.FS, path string) (int, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		if strings.HasPrefix(name, base+tmpInfix) || name == base+".tmp" {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// SyncDir fsyncs a directory so a rename within it is durable. On
// platforms or filesystems where directories cannot be opened for
// syncing the open failure is ignored (there is nothing actionable),
// but a real fsync failure on an opened directory is reported: it
// means the rename's durability is genuinely unknown.
func SyncDir(dir string) error { return fsx.OS.SyncDir(dir) }
