package cli

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file through a temporary sibling: the
// writer runs against "<path>.tmp", which is fsynced, closed, and
// renamed over the destination only if every step succeeded. A crash
// or write error never leaves a half-written file at path — at worst
// a stale .tmp, which the next successful write replaces. After the
// rename the containing directory is fsynced too, so the new
// directory entry itself survives a crash — without it the rename can
// still be sitting in the page cache when the machine dies, and the
// journal/metrics/events file quietly reverts to its old bytes (or
// vanishes).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a rename within it is durable. On
// platforms or filesystems where directories cannot be opened for
// syncing the open failure is ignored (there is nothing actionable),
// but a real fsync failure on an opened directory is reported: it
// means the rename's durability is genuinely unknown.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	return d.Sync()
}
