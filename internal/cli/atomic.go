package cli

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file through a temporary sibling: the
// writer runs against "<path>.tmp", which is fsynced, closed, and
// renamed over the destination only if every step succeeded. A crash
// or write error never leaves a half-written file at path — at worst
// a stale .tmp, which the next successful write replaces. The
// containing directory is fsynced best-effort so the rename itself
// survives a crash.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}
