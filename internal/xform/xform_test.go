package xform

import (
	"fmt"
	"sort"
	"testing"

	"sdpm/internal/ir"
)

// fig9Program reconstructs the shape of the paper's Figure 9 example:
// three nests over ten equal arrays whose statement structure yields
// the four array groups {U1,U2,U5}, {U3,U4,U8}, {U6,U7}, {U9,U10}.
func fig9Program(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("fig9")
	u := make([]*ir.Array, 11)
	for i := 1; i <= 10; i++ {
		u[i] = b.Array1D(arrName(i), 1024)
	}
	x := func(a *ir.Array) ir.Ref { return ir.R(a, ir.Var(0)) }
	b.Nest("n1", ir.L("i", 1024)).
		Stmt(10, x(u[1]), x(u[2])).
		Stmt(10, x(u[1]), x(u[5])).
		Stmt(10, x(u[3]), x(u[4]))
	b.Nest("n2", ir.L("i", 1024)).
		Stmt(10, x(u[3]), x(u[8])).
		Stmt(10, x(u[6]), x(u[7]))
	b.Nest("n3", ir.L("i", 1024)).
		Stmt(10, x(u[9]), x(u[10]))
	return b.MustBuild()
}

func arrName(i int) string { return fmt.Sprintf("U%d", i) }

func TestFissionSplitsUncoupledStatements(t *testing.T) {
	p := fig9Program(t)
	fp := Fission(p)
	// n1 -> {S1,S2} + {S3}; n2 -> {S4} + {S5}; n3 unchanged.
	if len(fp.Nests) != 5 {
		t.Fatalf("nests after fission = %d, want 5", len(fp.Nests))
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Statement counts preserved.
	count := func(q *ir.Program) int {
		n := 0
		for _, nest := range q.Nests {
			n += len(nest.Stmts)
		}
		return n
	}
	if count(fp) != count(p) {
		t.Error("statements lost in fission")
	}
	// Total compute preserved.
	if fp.TotalCost() != p.TotalCost() {
		t.Errorf("cost changed: %d -> %d", fp.TotalCost(), p.TotalCost())
	}
	// Original untouched.
	if len(p.Nests) != 3 {
		t.Error("fission mutated its input")
	}
	if !Fissionable(p) {
		t.Error("Fissionable = false for fissionable program")
	}
}

func TestFissionCoupledNestUnchanged(t *testing.T) {
	b := ir.NewBuilder("coupled")
	u := b.Array1D("u", 64)
	v := b.Array1D("v", 64)
	w := b.Array1D("w", 64)
	b.Nest("n", ir.L("i", 64)).
		Stmt(1, ir.R(u, ir.Var(0)), ir.R(v, ir.Var(0))).
		Stmt(1, ir.R(v, ir.Var(0)), ir.W(w, ir.Var(0)))
	p := b.MustBuild()
	fp := Fission(p)
	if len(fp.Nests) != 1 || len(fp.Nests[0].Stmts) != 2 {
		t.Errorf("coupled nest was split: %d nests", len(fp.Nests))
	}
	if Fissionable(p) {
		t.Error("Fissionable = true for coupled program")
	}
}

func TestArrayGroupsFig9(t *testing.T) {
	p := fig9Program(t)
	groups := ArrayGroups(p)
	got := make([][]string, len(groups))
	for i, g := range groups {
		for _, a := range g {
			got[i] = append(got[i], a.Name)
		}
		sort.Strings(got[i])
	}
	want := [][]string{
		{"U1", "U2", "U5"},
		{"U3", "U4", "U8"},
		{"U6", "U7"},
		{"U9", "U10"},
	}
	for i := range want {
		sort.Strings(want[i])
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestAssignGroupDisksProportionalDisjoint(t *testing.T) {
	p := fig9Program(t)
	groups := ArrayGroups(p)
	st, err := AssignGroupDisks(groups, 8, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 10 {
		t.Fatalf("stripings for %d arrays", len(st))
	}
	// Every array in a group shares the group's striping; group disk
	// ranges are disjoint and within bounds.
	used := make([]int, 8)
	seen := map[int]bool{}
	for _, g := range groups {
		s0 := st[g[0].Name]
		for _, a := range g {
			if st[a.Name] != s0 {
				t.Fatalf("group of %s not uniformly striped", a.Name)
			}
		}
		if seen[s0.StartDisk] {
			t.Fatalf("duplicate start disk %d", s0.StartDisk)
		}
		seen[s0.StartDisk] = true
		for i := 0; i < s0.Factor; i++ {
			d := s0.StartDisk + i
			if d >= 8 {
				t.Fatalf("group overflows disks: %+v", s0)
			}
			used[d]++
		}
	}
	for d, c := range used {
		if c > 1 {
			t.Fatalf("disk %d assigned to %d groups", d, c)
		}
	}
	// Proportional: group sizes 3:3:2:2 over 8 disks -> 2 disks each.
	for _, g := range groups {
		if st[g[0].Name].Factor != 2 {
			t.Errorf("group of %s got %d disks, want 2", g[0].Name, st[g[0].Name].Factor)
		}
	}
}

func TestAssignGroupDisksSkewedSizes(t *testing.T) {
	b := ir.NewBuilder("skew")
	big := b.Array1D("big", 1<<20)
	small := b.Array1D("small", 1<<10)
	b.Nest("n1", ir.L("i", 16)).Stmt(1, ir.R(big, ir.Var(0)))
	b.Nest("n2", ir.L("i", 16)).Stmt(1, ir.R(small, ir.Var(0)))
	p := b.MustBuild()
	groups := ArrayGroups(p)
	st, err := AssignGroupDisks(groups, 8, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if st["big"].Factor < 6 {
		t.Errorf("big group got %d disks", st["big"].Factor)
	}
	if st["small"].Factor < 1 {
		t.Errorf("small group got %d disks", st["small"].Factor)
	}
	if st["big"].Factor+st["small"].Factor != 8 {
		t.Errorf("allocation does not cover all disks: %d + %d", st["big"].Factor, st["small"].Factor)
	}
}

func TestAssignGroupDisksErrors(t *testing.T) {
	if _, err := AssignGroupDisks(nil, 8, 65536); err == nil {
		t.Error("empty groups accepted")
	}
	b := ir.NewBuilder("many")
	var groups [][]*ir.Array
	for i := 0; i < 5; i++ {
		groups = append(groups, []*ir.Array{b.Array1D(arrName(i+1), 64)})
	}
	if _, err := AssignGroupDisks(groups, 4, 65536); err == nil {
		t.Error("more groups than disks accepted")
	}
}
