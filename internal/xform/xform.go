// Package xform implements the paper's layout-aware code
// transformations (Section 6):
//
//   - Loop fission (distribution) with array grouping and
//     proportional disk allocation (Figure 11). Statements that share
//     no arrays are split into separate nests; arrays coupled through
//     statements form array groups; each group is assigned a disjoint
//     set of disks sized proportionally to the group's data, so that
//     while one group is being accessed the other groups' disks can
//     be placed into low-power modes.
//
//   - Layout-aware loop tiling (Figure 12). The costliest nest is
//     tiled so that one iteration tile touches exactly one stored
//     data tile per array; arrays whose access pattern does not
//     conform to their storage order are layout-transposed, arrays
//     are re-stored in blocked (tile-contiguous) order, and each
//     array's stripe size is set to its per-tile data size DS(i), so
//     tiles map one-to-one onto stripe units and co-used tiles
//     collocate on the same disk.
//
// Both transformations are also available in layout-oblivious form
// (the paper's LF and TL versions) by simply not applying the layout
// assignments they compute.
package xform

import (
	"fmt"

	"sdpm/internal/ir"
	"sdpm/internal/layout"
)

// Fission applies maximal loop distribution to every nest of the
// program (Figure 11's loop structure part): within each nest,
// statements are grouped by shared arrays (two statements that
// reference a common array are data-coupled and stay together), and
// each group becomes its own nest. Nests whose statements are all
// coupled are left intact — such nests are "not fissionable" in the
// paper's terms.
func Fission(p *ir.Program) *ir.Program {
	cp := p.Clone()
	var nests []*ir.Nest
	for _, n := range cp.Nests {
		groups := stmtGroups(n)
		if len(groups) == 1 {
			nests = append(nests, n)
			continue
		}
		for gi, g := range groups {
			nests = append(nests, &ir.Nest{
				Label: fmt.Sprintf("%s_f%d", n.Label, gi),
				Loops: append([]ir.Loop(nil), n.Loops...),
				Stmts: g,
			})
		}
	}
	cp.Nests = nests
	return cp
}

// Fissionable reports whether any nest of the program can be
// distributed into two or more statement groups.
func Fissionable(p *ir.Program) bool {
	for _, n := range p.Nests {
		if len(stmtGroups(n)) > 1 {
			return true
		}
	}
	return false
}

// stmtGroups partitions a nest's statements into array-connected
// components, preserving statement order within and across groups.
func stmtGroups(n *ir.Nest) [][]*ir.Stmt {
	parent := make([]int, len(n.Stmts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	owner := make(map[*ir.Array]int)
	for si, s := range n.Stmts {
		for _, a := range s.Arrays() {
			if prev, ok := owner[a]; ok {
				union(si, prev)
			} else {
				owner[a] = si
			}
		}
	}
	order := make(map[int]int)
	var groups [][]*ir.Stmt
	for si, s := range n.Stmts {
		root := find(si)
		gi, ok := order[root]
		if !ok {
			gi = len(groups)
			order[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], s)
	}
	return groups
}

// ClusterByGroup reorders the program's nests so nests over the same
// array group run consecutively, preserving the original order within
// each group. After fission, nests of different array groups share no
// arrays (and hence no data dependences), so the reordering is legal;
// it lengthens each group's contiguous idle periods, which is the
// point of the layout-aware distribution. Group order follows each
// group's first appearance.
func ClusterByGroup(p *ir.Program) *ir.Program {
	cp := p.Clone()
	groups := ArrayGroups(cp)
	gid := make(map[*ir.Array]int)
	for i, g := range groups {
		for _, a := range g {
			gid[a] = i
		}
	}
	nestGroup := func(n *ir.Nest) int {
		as := n.Arrays()
		if len(as) == 0 {
			return len(groups)
		}
		return gid[as[0]]
	}
	ordered := make([]*ir.Nest, 0, len(cp.Nests))
	for g := 0; g <= len(groups); g++ {
		for _, n := range cp.Nests {
			if nestGroup(n) == g {
				ordered = append(ordered, n)
			}
		}
	}
	cp.Nests = ordered
	return cp
}

// ArrayGroups computes the program's array groups (Figure 11): the
// connected components of the "co-referenced by a statement"
// relation over arrays, in first-appearance order. Arrays never
// referenced form their own singleton groups at the end.
func ArrayGroups(p *ir.Program) [][]*ir.Array {
	idx := make(map[*ir.Array]int, len(p.Arrays))
	for i, a := range p.Arrays {
		idx[a] = i
	}
	parent := make([]int, len(p.Arrays))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, n := range p.Nests {
		for _, s := range n.Stmts {
			as := s.Arrays()
			for i := 1; i < len(as); i++ {
				parent[find(idx[as[i]])] = find(idx[as[0]])
			}
		}
	}
	order := make(map[int]int)
	var groups [][]*ir.Array
	for i, a := range p.Arrays {
		root := find(i)
		gi, ok := order[root]
		if !ok {
			gi = len(groups)
			order[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], a)
	}
	return groups
}

// AssignGroupDisks allocates the subsystem's disks to the array
// groups proportionally to each group's total data size (Figure 11's
// allocation step): every group receives at least one disk, the
// remainder is distributed by largest share, and each group's arrays
// are striped over the group's contiguous disk range.
func AssignGroupDisks(groups [][]*ir.Array, numDisks int, unitBytes int64) (map[string]layout.Striping, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("xform: no array groups")
	}
	if len(groups) > numDisks {
		return nil, fmt.Errorf("xform: %d array groups exceed %d disks", len(groups), numDisks)
	}
	sizes := make([]int64, len(groups))
	var total int64
	for i, g := range groups {
		for _, a := range g {
			sizes[i] += a.SizeBytes()
		}
		total += sizes[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("xform: array groups hold no data")
	}
	// Proportional allocation with one-disk floors, by largest
	// remainder.
	alloc := make([]int, len(groups))
	remaining := numDisks
	type rem struct {
		i    int
		frac float64
	}
	var rems []rem
	for i := range groups {
		share := float64(sizes[i]) / float64(total) * float64(numDisks)
		alloc[i] = int(share)
		if alloc[i] < 1 {
			alloc[i] = 1
		}
		remaining -= alloc[i]
		rems = append(rems, rem{i, share - float64(int(share))})
	}
	for remaining < 0 {
		// Floors overshot: take disks back from the largest
		// allocations.
		maxI := 0
		for i := range alloc {
			if alloc[i] > alloc[maxI] {
				maxI = i
			}
		}
		if alloc[maxI] <= 1 {
			return nil, fmt.Errorf("xform: cannot fit %d groups on %d disks", len(groups), numDisks)
		}
		alloc[maxI]--
		remaining++
	}
	for remaining > 0 {
		best := -1
		for i := range rems {
			if rems[i].frac >= 0 && (best == -1 || rems[i].frac > rems[best].frac) {
				best = i
			}
		}
		if best == -1 {
			// All remainders consumed this cycle; start another.
			for i := range rems {
				rems[i].frac = 0
			}
			continue
		}
		alloc[rems[best].i]++
		rems[best].frac = -1
		remaining--
	}
	out := make(map[string]layout.Striping)
	start := 0
	for i, g := range groups {
		st := layout.Striping{StartDisk: start, Factor: alloc[i], UnitBytes: unitBytes}
		for _, a := range g {
			out[a.Name] = st
		}
		start += alloc[i]
	}
	return out, nil
}
