package xform

import (
	"sort"
	"testing"

	"sdpm/internal/ir"
)

// tileProgram: a depth-2 nest over a conforming array u[i][j] and a
// non-conforming (transposed access) array v[j][i].
func tileProgram(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("tp")
	u := b.Array2D("u", 256, 256)
	v := b.Array2D("v", 256, 256)
	b.Nest("main", ir.L("i", 256), ir.L("j", 256)).
		Stmt(100,
			ir.R(u, ir.Var(0), ir.Var(1)),
			ir.W(v, ir.Var(1), ir.Var(0)))
	return b.MustBuild()
}

func TestTileBasicShape(t *testing.T) {
	p := tileProgram(t)
	res, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8, LayoutAware: true})
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Program
	if len(res.TiledNests) != 1 || res.TiledNests[0] != 0 {
		t.Fatalf("tiled nests = %v", res.TiledNests)
	}
	n := tp.Nests[0]
	if n.Depth() != 4 {
		t.Fatalf("tiled depth = %d", n.Depth())
	}
	// 64KB / 8B = 8192 elems; t1=128, t0=64 for 256x256.
	dims := res.TileDims[0]
	if dims[0] != 64 || dims[1] != 128 {
		t.Fatalf("tile dims = %v", dims)
	}
	if n.Loops[0].Hi != 4 || n.Loops[1].Hi != 2 || n.Loops[2].Hi != 64 || n.Loops[3].Hi != 128 {
		t.Fatalf("loops = %+v", n.Loops)
	}
	// Iteration count preserved.
	if n.Trips() != 256*256 {
		t.Errorf("trips = %d", n.Trips())
	}
	if tp.TotalCost() != p.TotalCost() {
		t.Errorf("cost changed")
	}
	// Original untouched.
	if p.Nests[0].Depth() != 2 || p.ArrayByName("v").RowMajor != true {
		t.Error("Tile mutated its input")
	}
}

func TestTileLayoutAwareBlocksAndTransposes(t *testing.T) {
	p := tileProgram(t)
	res, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8, LayoutAware: true})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Program.ArrayByName("u")
	v := res.Program.ArrayByName("v")
	if u.Block == nil || u.Block[0] != 64 || u.Block[1] != 128 {
		t.Errorf("u block = %v", u.Block)
	}
	if !u.RowMajor {
		t.Error("conforming array transposed")
	}
	// v is accessed transposed: footprint is [128, 64] and storage
	// is flipped to column-major.
	if v.Block == nil || v.Block[0] != 128 || v.Block[1] != 64 {
		t.Errorf("v block = %v", v.Block)
	}
	if v.RowMajor {
		t.Error("non-conforming array not transposed")
	}
	if len(res.Transposed) != 1 || res.Transposed[0] != "v" {
		t.Errorf("transposed = %v", res.Transposed)
	}
	// Both arrays' stripe units equal the tile data size.
	for _, name := range []string{"u", "v"} {
		st, ok := res.Stripings[name]
		if !ok || st.UnitBytes != 65536 || st.Factor != 8 {
			t.Errorf("%s striping = %+v ok=%v", name, st, ok)
		}
	}
}

func TestTilePlainTLNoLayoutChanges(t *testing.T) {
	p := tileProgram(t)
	res, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8, LayoutAware: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.ArrayByName("u").Block != nil || res.Program.ArrayByName("v").Block != nil {
		t.Error("plain TL blocked arrays")
	}
	if !res.Program.ArrayByName("v").RowMajor {
		t.Error("plain TL transposed an array")
	}
	if len(res.Stripings) != 0 {
		t.Error("plain TL produced stripings")
	}
}

// elementSet returns the sorted multiset of (array, element-offset)
// pairs a program touches, using linear layouts, for semantics
// preservation checks.
func elementSet(t *testing.T, p *ir.Program) []int64 {
	t.Helper()
	var out []int64
	for _, n := range p.Nests {
		trips := n.Trips()
		for it := int64(0); it < trips; it++ {
			iv := n.IndexOf(it)
			for _, s := range n.Stmts {
				for ri := range s.Refs {
					r := &s.Refs[ri]
					// Encode (array identity, logical element index)
					// independent of storage layout.
					idx := make([]int64, len(r.Index))
					for d, e := range r.Index {
						idx[d] = e.Eval(iv)
					}
					var lin int64
					for d := 0; d < len(idx); d++ {
						lin = lin*r.Array.Dims[d] + idx[d]
					}
					out = append(out, int64(len(r.Array.Name))<<56|lin)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTilePreservesAccessedElements(t *testing.T) {
	b := ir.NewBuilder("small")
	u := b.Array2D("u", 32, 32)
	vv := b.Array2D("vbig", 32, 32)
	b.Nest("n", ir.L("i", 32), ir.L("j", 32)).
		Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)), ir.W(vv, ir.Var(1), ir.Var(0)))
	p := b.MustBuild()
	res, err := Tile(p, TileOptions{UnitBytes: 16 * 16 * 8, NumDisks: 4, LayoutAware: false})
	if err != nil {
		t.Fatal(err)
	}
	before := elementSet(t, p)
	after := elementSet(t, res.Program)
	if len(before) != len(after) {
		t.Fatalf("element count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("element multiset changed at %d", i)
		}
	}
}

func TestTileUntileable(t *testing.T) {
	b := ir.NewBuilder("bad")
	u := b.Array1D("u", 100)
	b.Nest("n", ir.L("i", 100)).Stmt(1, ir.R(u, ir.Var(0))) // depth 1
	p := b.MustBuild()
	if _, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8}); err == nil {
		t.Error("depth-1 nest tiled")
	}
	// Indivisible trip counts.
	b2 := ir.NewBuilder("bad2")
	w := b2.Array2D("w", 100, 100)
	b2.Nest("n", ir.L("i", 100), ir.L("j", 100)).Stmt(1, ir.R(w, ir.Var(0), ir.Var(1)))
	p2 := b2.MustBuild()
	if _, err := Tile(p2, TileOptions{UnitBytes: 65536, NumDisks: 8}); err == nil {
		t.Error("indivisible nest tiled")
	}
	if _, err := Tile(p2, TileOptions{UnitBytes: 0, NumDisks: 8}); err == nil {
		t.Error("zero unit accepted")
	}
}

func TestTileAllNestsExtension(t *testing.T) {
	b := ir.NewBuilder("multi")
	u := b.Array2D("u", 256, 256)
	v := b.Array2D("v", 256, 256)
	b.Nest("n0", ir.L("i", 256), ir.L("j", 256)).Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	b.Nest("n1", ir.L("i", 256), ir.L("j", 256)).Stmt(1, ir.W(v, ir.Var(0), ir.Var(1)))
	b.Nest("n2", ir.L("i", 100)).Stmt(1, ir.R(u, ir.Var(0), ir.Cnst(0))) // untileable
	p := b.MustBuild()
	res, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8, AllNests: true, LayoutAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TiledNests) != 2 {
		t.Errorf("tiled nests = %v", res.TiledNests)
	}
	if res.Program.ArrayByName("u").Block == nil || res.Program.ArrayByName("v").Block == nil {
		t.Error("arrays not blocked in AllNests mode")
	}
}

func TestTileCostliestSelection(t *testing.T) {
	b := ir.NewBuilder("pick")
	small := b.Array2D("small", 128, 128)
	big := b.Array2D("big", 512, 512)
	b.Nest("light", ir.L("i", 128), ir.L("j", 128)).Stmt(1, ir.R(small, ir.Var(0), ir.Var(1)))
	b.Nest("heavy", ir.L("i", 512), ir.L("j", 512)).Stmt(1, ir.R(big, ir.Var(0), ir.Var(1)))
	p := b.MustBuild()
	res, err := Tile(p, TileOptions{UnitBytes: 65536, NumDisks: 8, LayoutAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TiledNests) != 1 || res.TiledNests[0] != 1 {
		t.Errorf("tiled nests = %v, want [1]", res.TiledNests)
	}
	if res.Program.ArrayByName("big").Block == nil {
		t.Error("big not blocked")
	}
	if res.Program.ArrayByName("small").Block != nil {
		t.Error("small blocked despite untiled nest")
	}
}

func TestPanelShape(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 256, 1024)
	b.Nest("n", ir.L("i", 256), ir.L("j", 1024)).Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	p := b.MustBuild()
	t0, t1, ok := panelShape(p.Nests[0], 65536)
	if !ok {
		t.Fatal("panel shape failed")
	}
	// 8192 elems / 1024 cols = 8 rows per panel, full width.
	if t0 != 8 || t1 != 1024 {
		t.Errorf("panel = %dx%d", t0, t1)
	}
	// Narrow row counts fall back to divisors.
	b2 := ir.NewBuilder("p2")
	v := b2.Array2D("v", 9, 2048)
	b2.Nest("n", ir.L("i", 9), ir.L("j", 2048)).Stmt(1, ir.R(v, ir.Var(0), ir.Var(1)))
	p2 := b2.MustBuild()
	t0, t1, ok = panelShape(p2.Nests[0], 65536)
	if !ok || t1 != 2048 {
		t.Fatalf("panel2 = %dx%d ok=%v", t0, t1, ok)
	}
	if 9%t0 != 0 {
		t.Errorf("panel rows %d do not divide 9", t0)
	}
	// Depth-1 nests are not panelable.
	b3 := ir.NewBuilder("p3")
	w := b3.Array1D("w", 64)
	b3.Nest("n", ir.L("i", 64)).Stmt(1, ir.R(w, ir.Var(0)))
	p3 := b3.MustBuild()
	if _, _, ok := panelShape(p3.Nests[0], 65536); ok {
		t.Error("depth-1 panelable")
	}
}

func TestPanelTilePreservesAccessOrder(t *testing.T) {
	// Panel-tiling a conforming row-major sweep leaves the element
	// visit order identical.
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 32, 64)
	b.Nest("n", ir.L("i", 32), ir.L("j", 64)).Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	p := b.MustBuild()
	res, err := Tile(p, TileOptions{UnitBytes: 4096, NumDisks: 4, PanelTiles: true})
	if err != nil {
		t.Fatal(err)
	}
	tn := res.Program.Nests[0]
	orig := p.Nests[0]
	if tn.Trips() != orig.Trips() {
		t.Fatal("trip count changed")
	}
	for it := int64(0); it < orig.Trips(); it++ {
		a := orig.Stmts[0].Refs[0].OffsetAt(orig.IndexOf(it))
		bOff := tn.Stmts[0].Refs[0].OffsetAt(tn.IndexOf(it))
		if a != bOff {
			t.Fatalf("visit order changed at iteration %d: %d vs %d", it, a, bOff)
		}
	}
}

func TestClusterByGroup(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array1D("u", 1024)
	v := b.Array1D("v", 1024)
	// Interleaved nests over two independent arrays.
	b.Nest("u1", ir.L("i", 1024)).Stmt(1, ir.R(u, ir.Var(0)))
	b.Nest("v1", ir.L("i", 1024)).Stmt(1, ir.R(v, ir.Var(0)))
	b.Nest("u2", ir.L("i", 1024)).Stmt(1, ir.W(u, ir.Var(0)))
	b.Nest("v2", ir.L("i", 1024)).Stmt(1, ir.W(v, ir.Var(0)))
	p := b.MustBuild()
	cp := ClusterByGroup(p)
	var order []string
	for _, n := range cp.Nests {
		order = append(order, n.Label)
	}
	want := []string{"u1", "u2", "v1", "v2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Original untouched; totals preserved.
	if p.Nests[1].Label != "v1" {
		t.Error("input mutated")
	}
	if cp.TotalCost() != p.TotalCost() {
		t.Error("cost changed")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}
