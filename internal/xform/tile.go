package xform

import (
	"fmt"

	"sdpm/internal/ir"
	"sdpm/internal/layout"
)

// TileOptions configures the layout-aware loop tiling transformation
// of Figure 12.
type TileOptions struct {
	// UnitBytes is the target per-tile data size DS(i) — the stripe
	// unit the blocked arrays will use.
	UnitBytes int64
	// NumDisks is the subsystem size used for the tile-to-disk
	// striping the transformation emits.
	NumDisks int
	// AllNests tiles every tileable nest instead of only the
	// costliest one. The paper applies the algorithm to the single
	// costliest nest and leaves the multi-nest extension as future
	// work; AllNests implements that extension.
	AllNests bool
	// LayoutAware enables the DL part: layout transposition for
	// non-conforming arrays, blocked storage, and per-array stripe
	// sizes equal to the tile size. Without it the result is the
	// paper's plain TL version.
	LayoutAware bool
	// NestCost optionally supplies a per-nest disk-energy cost (for
	// example the per-nest request counts of a base trace). When
	// set, the costliest nest is the one with the highest NestCost;
	// otherwise the total referenced data size is used as a proxy.
	NestCost []float64
	// PanelTiles selects conventional row-panel tiles (full loop
	// width, unit-sized row strips) instead of square-ish 2-D tiles.
	// This is the shape a layout-oblivious (CPU-cache oriented)
	// tiler would use on these sweeps; with linear layouts it leaves
	// the disk access order unchanged — which is precisely why the
	// paper's plain TL version yields no disk-energy benefit.
	PanelTiles bool
}

// TileResult is the outcome of the tiling transformation.
type TileResult struct {
	// Program is the transformed program.
	Program *ir.Program
	// TiledNests lists the indices (in Program.Nests) of the nests
	// that were tiled.
	TiledNests []int
	// TileDims maps a tiled nest index to the tile extents chosen
	// for its original loops.
	TileDims map[int][]int64
	// Stripings holds the per-array disk layouts the transformation
	// determined (only for LayoutAware mode; arrays it did not block
	// are absent and keep the default layout).
	Stripings map[string]layout.Striping
	// Transposed lists arrays whose storage order was flipped to
	// conform to the access pattern.
	Transposed []string
}

// candidate tile edge lengths for the innermost dimension, tried in
// order.
var tileEdges = []int64{128, 64, 256, 32, 512, 16}

// Tile applies the layout-aware tiling algorithm. It selects the
// costliest nest (the one referencing the most data — the paper's
// "most costly nest as far as disk energy is concerned"), tiles it,
// and in LayoutAware mode re-layouts the arrays it references. It
// returns an error if no nest is tileable.
func Tile(p *ir.Program, opts TileOptions) (*TileResult, error) {
	if opts.UnitBytes <= 0 {
		return nil, fmt.Errorf("xform: tile unit must be positive")
	}
	cp := p.Clone()
	res := &TileResult{
		Program:   cp,
		TileDims:  make(map[int][]int64),
		Stripings: make(map[string]layout.Striping),
	}
	var order []int
	if opts.AllNests {
		for i := range cp.Nests {
			order = append(order, i)
		}
	} else {
		ci := -1
		if len(opts.NestCost) == len(cp.Nests) && len(cp.Nests) > 0 {
			for i := range opts.NestCost {
				if ci < 0 || opts.NestCost[i] > opts.NestCost[ci] {
					ci = i
				}
			}
		} else {
			ci = costliestNest(cp)
		}
		if ci < 0 {
			return nil, fmt.Errorf("xform: program has no nests")
		}
		order = []int{ci}
	}
	tiledAny := false
	shape := tileShape
	if opts.PanelTiles {
		shape = panelShape
	}
	for _, ni := range order {
		t0, t1, ok := shape(cp.Nests[ni], opts.UnitBytes)
		if !ok {
			if !opts.AllNests {
				return nil, fmt.Errorf("xform: costliest nest %q is not tileable", cp.Nests[ni].Label)
			}
			continue
		}
		tileNest(cp.Nests[ni], t0, t1)
		res.TiledNests = append(res.TiledNests, ni)
		res.TileDims[ni] = []int64{t0, t1}
		tiledAny = true
		if opts.LayoutAware {
			res.applyLayout(cp.Nests[ni], t0, t1, opts)
		}
	}
	if !tiledAny {
		return nil, fmt.Errorf("xform: no tileable nest found")
	}
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("xform: tiled program invalid: %w", err)
	}
	return res, nil
}

// costliestNest returns the index of the nest referencing the most
// array data, the proxy for per-nest disk energy.
func costliestNest(p *ir.Program) int {
	best, bestBytes := -1, int64(-1)
	for i, n := range p.Nests {
		var b int64
		for _, a := range n.Arrays() {
			b += a.SizeBytes()
		}
		if b > bestBytes {
			best, bestBytes = i, b
		}
	}
	return best
}

// tileShape decides the tile extents (t0, t1) for a nest, or reports
// that the nest is not tileable: it must be a depth-2 nest with
// zero-based unit-step loops whose trip counts are divisible by a
// tile shape holding unitBytes of an 8-byte-element array.
func tileShape(n *ir.Nest, unitBytes int64) (int64, int64, bool) {
	if n.Depth() != 2 {
		return 0, 0, false
	}
	for _, l := range n.Loops {
		if l.Lo != 0 || l.Step != 1 {
			return 0, 0, false
		}
	}
	var elem int64 = 8
	for _, a := range n.Arrays() {
		elem = a.ElemSize
		break
	}
	tileElems := unitBytes / elem
	if tileElems <= 0 {
		return 0, 0, false
	}
	n0, n1 := n.Loops[0].Hi, n.Loops[1].Hi
	for _, t1 := range tileEdges {
		t0 := tileElems / t1
		if t0 <= 0 || t0*t1 != tileElems {
			continue
		}
		if n1%t1 == 0 && n0%t0 == 0 && t0 <= n0 && t1 <= n1 {
			return t0, t1, true
		}
	}
	return 0, 0, false
}

// panelShape decides row-panel tile extents: the full inner width
// and a row-strip height holding roughly one stripe unit.
func panelShape(n *ir.Nest, unitBytes int64) (int64, int64, bool) {
	if n.Depth() != 2 {
		return 0, 0, false
	}
	for _, l := range n.Loops {
		if l.Lo != 0 || l.Step != 1 {
			return 0, 0, false
		}
	}
	var elem int64 = 8
	for _, a := range n.Arrays() {
		elem = a.ElemSize
		break
	}
	tileElems := unitBytes / elem
	n0, n1 := n.Loops[0].Hi, n.Loops[1].Hi
	t0 := tileElems / n1
	if t0 < 1 {
		t0 = 1
	}
	for t0 > 1 && n0%t0 != 0 {
		t0--
	}
	if n0%t0 != 0 {
		return 0, 0, false
	}
	return t0, n1, true
}

// tileNest rewrites a depth-2 nest in place into its tiled form with
// tile iterators (ii, jj) and element iterators (ti, tj), using the
// affine substitution i = ii*t0 + ti, j = jj*t1 + tj.
func tileNest(n *ir.Nest, t0, t1 int64) {
	n0, n1 := n.Loops[0].Hi, n.Loops[1].Hi
	name0, name1 := n.Loops[0].Name, n.Loops[1].Name
	n.Loops = []ir.Loop{
		{Name: name0 + name0, Lo: 0, Hi: n0 / t0, Step: 1},
		{Name: name1 + name1, Lo: 0, Hi: n1 / t1, Step: 1},
		{Name: "t" + name0, Lo: 0, Hi: t0, Step: 1},
		{Name: "t" + name1, Lo: 0, Hi: t1, Step: 1},
	}
	for _, s := range n.Stmts {
		for ri := range s.Refs {
			for di, e := range s.Refs[ri].Index {
				c0, c1 := e.CoeffAt(0), e.CoeffAt(1)
				s.Refs[ri].Index[di] = ir.Expr{
					Coeffs: []int64{c0 * t0, c1 * t1, c0, c1},
					Const:  e.Const,
				}
			}
		}
	}
}

// applyLayout performs the DL part of TL+DL on the arrays of a tiled
// nest: transpose non-conforming arrays, store them in blocked
// (tile-contiguous) order, and set their stripe size to the per-tile
// data size.
func (res *TileResult) applyLayout(n *ir.Nest, t0, t1 int64, opts TileOptions) {
	for _, a := range n.Arrays() {
		if len(a.Dims) != 2 || a.Block != nil {
			continue
		}
		// Find a representative reference to determine the access
		// orientation and the per-dimension tile footprint.
		var ref *ir.Ref
		for _, s := range n.Stmts {
			for ri := range s.Refs {
				if s.Refs[ri].Array == a {
					ref = &s.Refs[ri]
					break
				}
			}
			if ref != nil {
				break
			}
		}
		if ref == nil {
			continue
		}
		// Footprint of each array dimension over the element
		// iterators (depths 2 and 3 after tiling).
		ext := make([]int64, 2)
		for di, e := range ref.Index {
			f := abs64(e.CoeffAt(2))*t0 + abs64(e.CoeffAt(3))*t1
			ext[di] = f
		}
		if ext[0] <= 0 || ext[1] <= 0 ||
			a.Dims[0]%ext[0] != 0 || a.Dims[1]%ext[1] != 0 {
			continue
		}
		// Non-conforming access: the innermost element iterator (tj,
		// depth 3) drives array dimension 0 — transpose the storage
		// (row-major -> column-major), the paper's layout transform.
		if ref.Index[0].CoeffAt(3) != 0 && ref.Index[1].CoeffAt(3) == 0 {
			if a.RowMajor {
				a.RowMajor = false
				res.Transposed = append(res.Transposed, a.Name)
			}
		}
		a.Block = []int64{ext[0], ext[1]}
		res.Stripings[a.Name] = layout.Striping{
			StartDisk: 0,
			Factor:    opts.NumDisks,
			UnitBytes: ext[0] * ext[1] * a.ElemSize,
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
