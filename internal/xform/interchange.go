package xform

import (
	"sdpm/internal/ir"
)

// Interchange swaps the two loops of every depth-2 nest whose access
// pattern does not conform to the storage layouts and would conform
// after the swap — the classical loop-interchange remedy for
// transposed traversals, implementing the paper's closing remark that
// "most of the other known loop transformations can also be adapted
// to work with disk layouts". Unlike TL+DL it requires no layout
// change at all: it fixes the iteration order instead of the data
// order. It returns the transformed program and the labels of the
// nests it interchanged.
func Interchange(p *ir.Program) (*ir.Program, []string) {
	cp := p.Clone()
	var changed []string
	for _, n := range cp.Nests {
		if n.Depth() != 2 {
			continue
		}
		if nonConformBytes(n, false) > nonConformBytes(n, true) {
			swapLoops(n)
			changed = append(changed, n.Label)
		}
	}
	return cp, changed
}

// nonConformBytes scores a nest's layout conformance: the total
// absolute byte stride its references take per innermost iteration
// (optionally as if the two loops were swapped). Lower is better — a
// perfectly conforming sweep strides by one element.
func nonConformBytes(n *ir.Nest, swapped bool) int64 {
	inner := 1
	if swapped {
		inner = 0
	}
	var total int64
	for _, s := range n.Stmts {
		for ri := range s.Refs {
			r := &s.Refs[ri]
			if r.Array.Block != nil {
				continue
			}
			var stride int64
			for dim, e := range r.Index {
				stride += e.CoeffAt(inner) * r.Array.InnerStride(dim)
			}
			if stride < 0 {
				stride = -stride
			}
			total += stride
		}
	}
	return total
}

// swapLoops interchanges the two loops of a depth-2 nest, rewriting
// every subscript's coefficients accordingly.
func swapLoops(n *ir.Nest) {
	n.Loops[0], n.Loops[1] = n.Loops[1], n.Loops[0]
	for _, s := range n.Stmts {
		for ri := range s.Refs {
			for di, e := range s.Refs[ri].Index {
				c0, c1 := e.CoeffAt(0), e.CoeffAt(1)
				s.Refs[ri].Index[di] = ir.Expr{Coeffs: []int64{c1, c0}, Const: e.Const}
			}
		}
	}
}
