package xform

import (
	"reflect"
	"testing"

	"sdpm/internal/ir"
)

func TestInterchangeFixesTransposedNest(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 64, 128)
	v := b.Array2D("v", 64, 128)
	// n0 conforming, n1 transposed.
	b.Nest("good", ir.L("i", 64), ir.L("j", 128)).
		Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	b.Nest("bad", ir.L("c", 128), ir.L("r", 64)).
		Stmt(1, ir.R(v, ir.Var(1), ir.Var(0)))
	p := b.MustBuild()

	ip, changed := Interchange(p)
	if len(changed) != 1 || changed[0] != "bad" {
		t.Fatalf("changed = %v", changed)
	}
	if err := ip.Validate(); err != nil {
		t.Fatal(err)
	}
	// The conforming nest is untouched.
	if !reflect.DeepEqual(ip.Nests[0].Loops, p.Nests[0].Loops) {
		t.Error("conforming nest modified")
	}
	// The transposed nest now iterates rows outermost.
	n := ip.Nests[1]
	if n.Loops[0].Name != "r" || n.Loops[1].Name != "c" {
		t.Errorf("loops = %+v", n.Loops)
	}
	// After interchange the ref v[r][c] is driven by the new loop
	// order: innermost variable must stride by one element.
	if got := nonConformBytes(n, false); got != 8 {
		t.Errorf("post-interchange stride = %d, want 8", got)
	}
	// The original program is untouched.
	if p.Nests[1].Loops[0].Name != "c" {
		t.Error("Interchange mutated input")
	}
}

func TestInterchangePreservesElements(t *testing.T) {
	b := ir.NewBuilder("p")
	v := b.Array2D("v", 16, 24)
	b.Nest("bad", ir.L("c", 24), ir.L("r", 16)).
		Stmt(1, ir.R(v, ir.Var(1), ir.Var(0)))
	p := b.MustBuild()
	ip, changed := Interchange(p)
	if len(changed) != 1 {
		t.Fatal("nothing interchanged")
	}
	if ip.Nests[0].Trips() != p.Nests[0].Trips() {
		t.Error("trip count changed")
	}
	before := elementSet(t, p)
	after := elementSet(t, ip)
	if len(before) != len(after) {
		t.Fatalf("element counts differ")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("element multiset changed")
		}
	}
}

func TestInterchangeSkipsConformingAndDeep(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 16, 16)
	w := b.Array3D("w", 8, 8, 8)
	b.Nest("flat", ir.L("i", 16), ir.L("j", 16)).
		Stmt(1, ir.R(u, ir.Var(0), ir.Var(1)))
	b.Nest("deep", ir.L("i", 8), ir.L("j", 8), ir.L("k", 8)).
		Stmt(1, ir.R(w, ir.Var(2), ir.Var(1), ir.Var(0))) // transposed but depth 3
	p := b.MustBuild()
	_, changed := Interchange(p)
	if len(changed) != 0 {
		t.Errorf("changed = %v", changed)
	}
}

func TestInterchangeSkipsBlockedArrays(t *testing.T) {
	b := ir.NewBuilder("p")
	u := b.Array2D("u", 16, 16)
	u.Block = []int64{4, 4}
	b.Nest("n", ir.L("c", 16), ir.L("r", 16)).
		Stmt(1, ir.R(u, ir.Var(1), ir.Var(0)))
	p := b.MustBuild()
	// Blocked arrays are excluded from the conformance score, so this
	// nest scores zero both ways and stays put.
	_, changed := Interchange(p)
	if len(changed) != 0 {
		t.Errorf("changed = %v", changed)
	}
}
