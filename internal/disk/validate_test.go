package disk

import (
	"math"
	"strings"
	"testing"
)

// TestValidateRejectsNonFinite: every float knob must reject NaN and
// both infinities — ordered comparisons alone let NaN through.
func TestValidateRejectsNonFinite(t *testing.T) {
	fields := []struct {
		name string
		set  func(*Params, float64)
	}{
		{"CapacityGB", func(p *Params, v float64) { p.CapacityGB = v }},
		{"AvgSeekMS", func(p *Params, v float64) { p.AvgSeekMS = v }},
		{"SeekMinMS", func(p *Params, v float64) { p.SeekMinMS = v }},
		{"SeekMaxMS", func(p *Params, v float64) { p.SeekMaxMS = v }},
		{"AvgRotMS", func(p *Params, v float64) { p.AvgRotMS = v }},
		{"TransferMBps", func(p *Params, v float64) { p.TransferMBps = v }},
		{"ActiveW", func(p *Params, v float64) { p.ActiveW = v }},
		{"IdleW", func(p *Params, v float64) { p.IdleW = v }},
		{"StandbyW", func(p *Params, v float64) { p.StandbyW = v }},
		{"SpinDownJ", func(p *Params, v float64) { p.SpinDownJ = v }},
		{"SpinDownMS", func(p *Params, v float64) { p.SpinDownMS = v }},
		{"SpinUpJ", func(p *Params, v float64) { p.SpinUpJ = v }},
		{"SpinUpMS", func(p *Params, v float64) { p.SpinUpMS = v }},
		{"RPMStepTimeMS", func(p *Params, v float64) { p.RPMStepTimeMS = v }},
		{"LowerTolerancePct", func(p *Params, v float64) { p.LowerTolerancePct = v }},
		{"UpperTolerancePct", func(p *Params, v float64) { p.UpperTolerancePct = v }},
		{"ElectronicsW", func(p *Params, v float64) { p.ElectronicsW = v }},
		{"SpindleExp", func(p *Params, v float64) { p.SpindleExp = v }},
	}
	for _, f := range fields {
		for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			p := DefaultParams()
			f.set(&p, v)
			err := p.Validate()
			if err == nil {
				t.Errorf("%s = %v accepted", f.name, v)
				continue
			}
			if !strings.Contains(err.Error(), f.name) {
				t.Errorf("%s = %v: error %q does not name the field", f.name, v, err)
			}
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}
