package disk

import (
	"math"
	"sync"
)

// Table is a precomputed power and timing table for one Params value.
// The DRPM spindle power model costs a math.Pow per query, and the
// derived quantities (transition energies, dip energies, best-RPM
// scans) each fan out into many such queries; profiles show those
// evaluations dominating both the compiler instrumentation pass and
// the simulator's per-request accounting. A Table evaluates every
// per-level quantity once — by calling the corresponding Params
// method, so each cached value is bitwise identical to what the
// uncached code computes — and serves every later query as an array
// load. Methods that combine cached values (DipEnergyJ, the best-RPM
// scans, ServiceTimeSeekMS) replicate the exact floating-point
// operation order of their Params counterparts, so switching a call
// site to the Table never changes a result bit.
//
// Queries for an rpm that is not an exact level fall back to the
// Params method; the simulator and compiler only ever use exact
// levels, so the fast path is the only one exercised in practice.
type Table struct {
	// P is the Params the table was built from.
	P Params

	n      int   // number of levels, 0 when Params are unusable
	levels []int // ascending, MinRPM..MaxRPM by RPMStep

	idleW     []float64 // IdlePowerAt per level
	activeW   []float64 // ActivePowerAt per level
	rotMS     []float64 // AvgRotMS / (level/MaxRPM) per level
	xferDenom []float64 // TransferMBps*1e6*(level/MaxRPM) per level
	transMS   []float64 // TransitionTimeMS(MaxRPM, level) per level
	transJ    []float64 // TransitionEnergyJ(MaxRPM, level) per level
	transJ2   []float64 // TransitionEnergyJ(MaxRPM, level)*2 per level
	transPair []float64 // TransitionEnergyJ(level_i, level_j), i*n+j
}

var tableCache sync.Map // Params -> *Table

// TableFor returns the memoized Table for p, building it on first
// use. Params is a comparable value type, so the cache key is the
// full parameter set: two configurations differing in any field get
// distinct tables. Safe for concurrent use.
func TableFor(p Params) *Table {
	if v, ok := tableCache.Load(p); ok {
		return v.(*Table)
	}
	v, _ := tableCache.LoadOrStore(p, newTable(p))
	return v.(*Table)
}

func newTable(p Params) *Table {
	t := &Table{P: p}
	if p.RPMStep <= 0 || p.MinRPM <= 0 || p.MinRPM > p.MaxRPM ||
		(p.MaxRPM-p.MinRPM)%p.RPMStep != 0 {
		return t // degenerate Params: every query falls back
	}
	t.n = p.NumLevels()
	t.levels = p.Levels()
	t.idleW = make([]float64, t.n)
	t.activeW = make([]float64, t.n)
	t.rotMS = make([]float64, t.n)
	t.xferDenom = make([]float64, t.n)
	t.transMS = make([]float64, t.n)
	t.transJ = make([]float64, t.n)
	t.transJ2 = make([]float64, t.n)
	t.transPair = make([]float64, t.n*t.n)
	for i, r := range t.levels {
		frac := float64(r) / float64(p.MaxRPM)
		t.idleW[i] = p.IdlePowerAt(r)
		t.activeW[i] = p.ActivePowerAt(r)
		t.rotMS[i] = p.AvgRotMS / frac
		t.xferDenom[i] = p.TransferMBps * 1e6 * frac
		t.transMS[i] = p.TransitionTimeMS(p.MaxRPM, r)
		t.transJ[i] = p.TransitionEnergyJ(p.MaxRPM, r)
		t.transJ2[i] = t.transJ[i] * 2
		for j, r2 := range t.levels {
			t.transPair[i*t.n+j] = p.TransitionEnergyJ(r, r2)
		}
	}
	return t
}

// idx returns the level index of rpm, or -1 when rpm is not an exact
// level (or the table is degenerate).
func (t *Table) idx(rpm int) int {
	if t.n == 0 || rpm < t.P.MinRPM || rpm > t.P.MaxRPM || (rpm-t.P.MinRPM)%t.P.RPMStep != 0 {
		return -1
	}
	return (rpm - t.P.MinRPM) / t.P.RPMStep
}

// IdlePowerAt is Params.IdlePowerAt served from the table.
func (t *Table) IdlePowerAt(rpm int) float64 {
	if i := t.idx(rpm); i >= 0 {
		return t.idleW[i]
	}
	return t.P.IdlePowerAt(rpm)
}

// ActivePowerAt is Params.ActivePowerAt served from the table.
func (t *Table) ActivePowerAt(rpm int) float64 {
	if i := t.idx(rpm); i >= 0 {
		return t.activeW[i]
	}
	return t.P.ActivePowerAt(rpm)
}

// ServiceTimeMS is Params.ServiceTimeMS served from the table.
func (t *Table) ServiceTimeMS(rpm int, bytes int64) float64 {
	return t.ServiceTimeSeekMS(rpm, bytes, t.P.AvgSeekMS)
}

// ServiceTimeSeekMS is Params.ServiceTimeSeekMS served from the
// table: the rotational latency and transfer denominator for the
// level are cached, the seek and per-request transfer arithmetic
// keep the original evaluation order.
func (t *Table) ServiceTimeSeekMS(rpm int, bytes int64, seekMS float64) float64 {
	i := t.idx(rpm)
	if i < 0 {
		return t.P.ServiceTimeSeekMS(rpm, bytes, seekMS)
	}
	return seekMS + t.rotMS[i] + float64(bytes)/t.xferDenom[i]*1e3
}

// TransferTimeMS is Params.TransferTimeMS served from the table.
func (t *Table) TransferTimeMS(rpm int, bytes int64) float64 {
	i := t.idx(rpm)
	if i < 0 {
		return t.P.TransferTimeMS(rpm, bytes)
	}
	return float64(bytes) / t.xferDenom[i] * 1e3
}

// TransitionEnergyJ is Params.TransitionEnergyJ served from the
// precomputed pair table.
func (t *Table) TransitionEnergyJ(from, to int) float64 {
	i, j := t.idx(from), t.idx(to)
	if i < 0 || j < 0 {
		return t.P.TransitionEnergyJ(from, to)
	}
	return t.transPair[i*t.n+j]
}

// dipByIndex is Params.DipEnergyJ for the i-th level, with the
// transition time/energy pulled from the table and the remaining
// arithmetic in the original order.
func (t *Table) dipByIndex(idleMS float64, i int) float64 {
	if t.levels[i] == t.P.MaxRPM {
		return t.P.IdleEnergyJ(idleMS)
	}
	down := t.transMS[i]
	if down+down > idleMS {
		return math.Inf(1)
	}
	stay := idleMS - down - down
	return t.transJ2[i] + t.idleW[i]*stay/1e3
}

// DipEnergyJ is Params.DipEnergyJ served from the table.
func (t *Table) DipEnergyJ(idleMS float64, rpm int) float64 {
	i := t.idx(rpm)
	if i < 0 {
		return t.P.DipEnergyJ(idleMS, rpm)
	}
	return t.dipByIndex(idleMS, i)
}

// BestRPMForIdle is Params.BestRPMForIdle served from the table: the
// same ascending scan with the same strict-less comparison, without
// the Levels allocation or the per-level pow evaluations.
func (t *Table) BestRPMForIdle(idleMS float64) (int, float64) {
	if t.n == 0 {
		return t.P.BestRPMForIdle(idleMS)
	}
	best := t.P.MaxRPM
	bestE := t.P.IdleEnergyJ(idleMS)
	for i := 0; i < t.n; i++ {
		if e := t.dipByIndex(idleMS, i); e < bestE {
			bestE = e
			best = t.levels[i]
		}
	}
	return best, bestE
}

// BestRPMForTrailingIdle is Params.BestRPMForTrailingIdle served from
// the table.
func (t *Table) BestRPMForTrailingIdle(idleMS float64) (int, float64) {
	if t.n == 0 {
		return t.P.BestRPMForTrailingIdle(idleMS)
	}
	best := t.P.MaxRPM
	bestE := t.P.IdleEnergyJ(idleMS)
	for i := 0; i < t.n; i++ {
		tr := t.transMS[i]
		if tr > idleMS {
			continue
		}
		e := t.transJ[i] + t.idleW[i]*(idleMS-tr)/1e3
		if e < bestE {
			best, bestE = t.levels[i], e
		}
	}
	return best, bestE
}
