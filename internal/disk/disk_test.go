package disk

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.MaxRPM != 15000 || p.MinRPM != 3000 || p.RPMStep != 1200 {
		t.Errorf("RPM config = %d..%d/%d", p.MinRPM, p.MaxRPM, p.RPMStep)
	}
}

func TestValidateCatches(t *testing.T) {
	mod := []func(*Params){
		func(p *Params) { p.MinRPM = 0 },
		func(p *Params) { p.MinRPM = 20000 },
		func(p *Params) { p.RPMStep = 0 },
		func(p *Params) { p.RPMStep = 900 }, // does not divide range
		func(p *Params) { p.TransferMBps = 0 },
		func(p *Params) { p.ActiveW = 1 }, // below idle
		func(p *Params) { p.StandbyW = -1 },
		func(p *Params) { p.SpinUpJ = -5 },
		func(p *Params) { p.RPMStepTimeMS = 0 },
		func(p *Params) { p.WindowSize = 0 },
		func(p *Params) { p.ElectronicsW = 99 },
		func(p *Params) { p.SpindleExp = 0 },
	}
	for i, m := range mod {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLevels(t *testing.T) {
	p := DefaultParams()
	ls := p.Levels()
	if len(ls) != 11 || p.NumLevels() != 11 {
		t.Fatalf("levels = %v", ls)
	}
	if ls[0] != 3000 || ls[10] != 15000 || ls[1] != 4200 {
		t.Errorf("levels = %v", ls)
	}
	for i, r := range ls {
		if p.LevelIndex(r) != i {
			t.Errorf("LevelIndex(%d) = %d, want %d", r, p.LevelIndex(r), i)
		}
	}
	if p.LevelIndex(5000) != -1 || p.LevelIndex(2000) != -1 || p.LevelIndex(16000) != -1 {
		t.Error("non-levels accepted")
	}
}

func TestClampLevel(t *testing.T) {
	p := DefaultParams()
	cases := map[int]int{
		16000: 15000, 15000: 15000, 14999: 13800,
		4200: 4200, 4199: 3000, 3000: 3000, 100: 3000,
	}
	for in, want := range cases {
		if got := p.ClampLevel(in); got != want {
			t.Errorf("ClampLevel(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerModelAnchors(t *testing.T) {
	p := DefaultParams()
	if got := p.IdlePowerAt(p.MaxRPM); math.Abs(got-p.IdleW) > 1e-9 {
		t.Errorf("idle power at max = %.3f, want %.1f", got, p.IdleW)
	}
	if got := p.ActivePowerAt(p.MaxRPM); math.Abs(got-p.ActiveW) > 1e-9 {
		t.Errorf("active power at max = %.3f, want %.1f", got, p.ActiveW)
	}
	// At the minimum level the disk should draw close to standby power
	// (the published DRPM behaviour).
	low := p.IdlePowerAt(p.MinRPM)
	if low < p.ElectronicsW || low > 2*p.StandbyW {
		t.Errorf("idle power at min RPM = %.3f, expected near standby %.1f", low, p.StandbyW)
	}
}

func TestPowerMonotoneInRPM(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for _, r := range p.Levels() {
		pw := p.IdlePowerAt(r)
		if pw <= prev {
			t.Fatalf("idle power not strictly increasing at %d RPM", r)
		}
		if p.ActivePowerAt(r) <= pw {
			t.Fatalf("active power not above idle at %d RPM", r)
		}
		prev = pw
	}
}

func TestServiceTime(t *testing.T) {
	p := DefaultParams()
	// 64KB at full speed: 3.4 + 2.0 + 65536/(55e6)*1e3 = 6.59ms.
	got := p.ServiceTimeMS(p.MaxRPM, 64*1024)
	want := 3.4 + 2.0 + 65536.0/55e6*1e3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("service time = %.4f, want %.4f", got, want)
	}
	// Service time strictly decreases with RPM.
	prev := math.Inf(1)
	for _, r := range p.Levels() {
		s := p.ServiceTimeMS(r, 64*1024)
		if s >= prev {
			t.Fatalf("service time not decreasing at %d RPM", r)
		}
		prev = s
	}
	// At half speed rotation and transfer take twice as long.
	half := p.ServiceTimeMS(7500, 64*1024)
	wantHalf := 3.4 + 4.0 + 2*65536.0/55e6*1e3
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Errorf("half-speed service = %.4f, want %.4f", half, wantHalf)
	}
}

func TestTransitionTime(t *testing.T) {
	p := DefaultParams()
	if got := p.TransitionTimeMS(15000, 15000); got != 0 {
		t.Errorf("no-op transition time = %f", got)
	}
	if got := p.TransitionTimeMS(15000, 13800); got != p.RPMStepTimeMS {
		t.Errorf("one-step time = %f", got)
	}
	if got := p.TransitionTimeMS(3000, 15000); got != 10*p.RPMStepTimeMS {
		t.Errorf("full-range time = %f", got)
	}
	if p.TransitionTimeMS(3000, 15000) != p.TransitionTimeMS(15000, 3000) {
		t.Error("transition time not symmetric")
	}
}

func TestTransitionEnergy(t *testing.T) {
	p := DefaultParams()
	if p.TransitionEnergyJ(9000, 9000) != 0 {
		t.Error("no-op transition energy nonzero")
	}
	// Symmetric by construction (billed at the faster level per step).
	if p.TransitionEnergyJ(3000, 15000) != p.TransitionEnergyJ(15000, 3000) {
		t.Error("transition energy not symmetric")
	}
	// One step down from max is billed at full idle power.
	want := p.IdleW * p.RPMStepTimeMS / 1e3
	if got := p.TransitionEnergyJ(15000, 13800); math.Abs(got-want) > 1e-12 {
		t.Errorf("one-step energy = %g, want %g", got, want)
	}
	// Energy is additive over sub-ranges.
	whole := p.TransitionEnergyJ(15000, 3000)
	split := p.TransitionEnergyJ(15000, 9000) + p.TransitionEnergyJ(9000, 3000)
	if math.Abs(whole-split) > 1e-12 {
		t.Errorf("transition energy not additive: %g vs %g", whole, split)
	}
}

func TestTPMBreakEven(t *testing.T) {
	p := DefaultParams()
	be := p.TPMBreakEvenMS()
	// Must at least cover the physical transition time.
	if be < p.SpinDownMS+p.SpinUpMS {
		t.Fatalf("break-even %.0fms below transition time", be)
	}
	// At exactly the break-even, standby is no better than idling.
	if p.StandbyEnergyJ(be) > p.IdleEnergyJ(be)+1e-6 {
		t.Errorf("standby loses at break-even: %.3f > %.3f", p.StandbyEnergyJ(be), p.IdleEnergyJ(be))
	}
	// Just below, standby must not win.
	if p.StandbyEnergyJ(be*0.9) < p.IdleEnergyJ(be*0.9) {
		t.Errorf("standby wins below break-even")
	}
	// Well above, standby must win clearly.
	if p.StandbyEnergyJ(be*3) >= p.IdleEnergyJ(be*3) {
		t.Errorf("standby does not win above break-even")
	}
	// The server-class break-even is huge (order 10s of seconds) —
	// this is the fact that makes TPM useless for the paper's codes.
	if be < 10000 {
		t.Errorf("break-even %.0fms implausibly small for server disk", be)
	}
}

func TestDipEnergy(t *testing.T) {
	p := DefaultParams()
	// Dipping to max RPM is just idling.
	if got := p.DipEnergyJ(100, p.MaxRPM); math.Abs(got-p.IdleEnergyJ(100)) > 1e-12 {
		t.Errorf("dip to max = %g", got)
	}
	// Too-short period is infeasible.
	if !math.IsInf(p.DipEnergyJ(1, 3000), 1) {
		t.Error("infeasible dip accepted")
	}
	// A 73ms gap (the default workloads' per-disk gap) must be
	// exploitable: some level beats full-speed idling by a wide
	// margin. This property is what makes (I)DRPM effective in the
	// paper.
	best, e := p.BestRPMForIdle(73)
	if best == p.MaxRPM {
		t.Fatal("73ms gap not exploitable by DRPM")
	}
	if e > 0.75*p.IdleEnergyJ(73) {
		t.Errorf("73ms dip saves too little: %.3fJ vs %.3fJ", e, p.IdleEnergyJ(73))
	}
}

func TestBestRPMMonotoneIdle(t *testing.T) {
	// Longer idle periods never prefer a faster level, and the best
	// energy is always <= plain idling.
	p := DefaultParams()
	prevRPM := p.MaxRPM + p.RPMStep
	for _, idle := range []float64{1, 5, 10, 20, 40, 80, 160, 320, 640, 5000} {
		r, e := p.BestRPMForIdle(idle)
		if r > prevRPM {
			t.Fatalf("best RPM increased with idle length at %v", idle)
		}
		if e > p.IdleEnergyJ(idle)+1e-12 {
			t.Fatalf("best energy exceeds idling at %v", idle)
		}
		prevRPM = r
	}
}

func TestBestRPMQuick(t *testing.T) {
	p := DefaultParams()
	f := func(ms uint16) bool {
		idle := float64(ms)
		r, e := p.BestRPMForIdle(idle)
		if p.LevelIndex(r) < 0 {
			return false
		}
		// Reported energy must match recomputation and be minimal.
		if r != p.MaxRPM && math.Abs(e-p.DipEnergyJ(idle, r)) > 1e-9 {
			return false
		}
		for _, l := range p.Levels() {
			if p.DipEnergyJ(idle, l) < e-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBestRPMForTrailingIdle(t *testing.T) {
	p := DefaultParams()
	// Tiny trailing idle: stay at max.
	if r, e := p.BestRPMForTrailingIdle(0.5); r != p.MaxRPM || math.Abs(e-p.IdleEnergyJ(0.5)) > 1e-12 {
		t.Errorf("tiny trailing: %d %g", r, e)
	}
	// Long trailing idle: go to the minimum level (no return needed).
	r, e := p.BestRPMForTrailingIdle(10000)
	if r != p.MinRPM {
		t.Errorf("long trailing level = %d", r)
	}
	if e >= p.IdleEnergyJ(10000) {
		t.Error("trailing dip saves nothing")
	}
	// One-way dips beat round trips for the same period.
	_, round := p.BestRPMForIdle(200)
	_, oneway := p.BestRPMForTrailingIdle(200)
	if oneway >= round {
		t.Errorf("one-way %g not cheaper than round trip %g", oneway, round)
	}
}

func TestTrailingStandbyWins(t *testing.T) {
	p := DefaultParams()
	if p.TrailingStandbyWins(1000) {
		t.Error("standby wins below spin-down time")
	}
	if !p.TrailingStandbyWins(60000) {
		t.Error("standby loses on a minute of idleness")
	}
	// Break-even for one-way standby: solve SpinDownJ + StandbyW*(T-d) = IdleW*T.
	be := (p.SpinDownJ - p.StandbyW*p.SpinDownMS/1e3) / (p.IdleW - p.StandbyW) * 1e3
	if p.TrailingStandbyWins(be * 0.9) {
		t.Error("standby wins below one-way break-even")
	}
	if !p.TrailingStandbyWins(be*1.1 + p.SpinDownMS) {
		t.Error("standby loses above one-way break-even")
	}
}

func TestSeekTimeMS(t *testing.T) {
	p := DefaultParams()
	maxB := p.CapacityBlocks()
	if maxB <= 0 {
		t.Fatal("capacity blocks")
	}
	if p.SeekTimeMS(0, maxB) != 0 {
		t.Error("zero distance seeks")
	}
	if p.SeekTimeMS(100, 0) != 0 {
		t.Error("zero capacity seeks")
	}
	// Full stroke = SeekMaxMS; clamped beyond.
	if got := p.SeekTimeMS(maxB, maxB); math.Abs(got-p.SeekMaxMS) > 1e-9 {
		t.Errorf("full stroke = %g", got)
	}
	if got := p.SeekTimeMS(2*maxB, maxB); math.Abs(got-p.SeekMaxMS) > 1e-9 {
		t.Errorf("clamped stroke = %g", got)
	}
	// Monotone in distance.
	prev := 0.0
	for _, d := range []int64{1, maxB / 100, maxB / 10, maxB / 2, maxB} {
		got := p.SeekTimeMS(d, maxB)
		if got <= prev {
			t.Fatalf("seek not increasing at %d", d)
		}
		prev = got
	}
}
