package disk

import (
	"math"
	"testing"
)

// FuzzBreakEven drives the idle-energy decision math with arbitrary
// parameter combinations: any Params that Validate accepts must yield
// panic-free, NaN-free break-even and idle-energy figures, since the
// policies consume them without further checks.
func FuzzBreakEven(f *testing.F) {
	d := DefaultParams()
	f.Add(d.MaxRPM, d.MinRPM, d.RPMStep, d.AvgSeekMS, d.AvgRotMS, d.TransferMBps,
		d.ActiveW, d.IdleW, d.StandbyW, d.SpinDownJ, d.SpinDownMS, d.SpinUpJ, d.SpinUpMS)
	f.Add(6000, 3000, 3000, 1.0, 1.0, 10.0, 5.0, 4.0, 4.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(15000, 15000, 1200, 0.0, 0.1, 0.5, 20.0, 1.0, 0.0, 1e6, 1e6, 1e6, 1e6)
	f.Add(15000, 3000, 1200, 3.4, 2.0, 55.0, 13.5, 10.2, 2.5, 13.0, 1500.0, math.Inf(1), 10900.0)
	f.Fuzz(func(t *testing.T, maxRPM, minRPM, step int,
		avgSeek, avgRot, transfer, activeW, idleW, standbyW,
		spinDownJ, spinDownMS, spinUpJ, spinUpMS float64) {
		p := DefaultParams()
		p.MaxRPM, p.MinRPM, p.RPMStep = maxRPM, minRPM, step
		p.AvgSeekMS, p.AvgRotMS, p.TransferMBps = avgSeek, avgRot, transfer
		p.ActiveW, p.IdleW, p.StandbyW = activeW, idleW, standbyW
		p.SpinDownJ, p.SpinDownMS, p.SpinUpJ, p.SpinUpMS = spinDownJ, spinDownMS, spinUpJ, spinUpMS
		if p.ElectronicsW >= p.IdleW {
			p.ElectronicsW = 0
		}
		if p.Validate() != nil {
			return
		}
		if p.NumLevels() > 1024 {
			t.Skip("level grid too large to sweep")
		}
		be := p.TPMBreakEvenMS()
		if math.IsNaN(be) || be < 0 {
			t.Fatalf("TPMBreakEvenMS = %v for %+v", be, p)
		}
		for _, idle := range []float64{0, 1, p.SpinDownMS + p.SpinUpMS, be, 2 * be, 1e7} {
			if math.IsInf(idle, 0) {
				continue
			}
			if e := p.IdleEnergyJ(idle); math.IsNaN(e) || e < 0 {
				t.Fatalf("IdleEnergyJ(%g) = %v", idle, e)
			}
			if e := p.StandbyEnergyJ(idle); math.IsNaN(e) {
				t.Fatalf("StandbyEnergyJ(%g) = NaN", idle)
			}
			rpm, e := p.BestRPMForIdle(idle)
			if math.IsNaN(e) || p.LevelIndex(rpm) < 0 {
				t.Fatalf("BestRPMForIdle(%g) = (%d, %v)", idle, rpm, e)
			}
			rpm, e = p.BestRPMForTrailingIdle(idle)
			if math.IsNaN(e) || p.LevelIndex(rpm) < 0 {
				t.Fatalf("BestRPMForTrailingIdle(%g) = (%d, %v)", idle, rpm, e)
			}
			p.TrailingStandbyWins(idle)
		}
		if svc := p.ServiceTimeMS(p.MaxRPM, 65536); math.IsNaN(svc) || svc < 0 {
			t.Fatalf("ServiceTimeMS = %v", svc)
		}
	})
}
