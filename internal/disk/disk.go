// Package disk models the server-class disk used throughout the
// paper's evaluation: the IBM Ultrastar 36Z15 (Table 1), extended
// with the DRPM multi-speed model of Gurumurthi et al. All times are
// float64 milliseconds and all energies are joules; power is watts
// (J = W * ms / 1000).
//
// The DRPM spindle power model is P(r) = Pe + Pr*(r/rmax)^k with the
// electronics floor Pe and exponent k fitted so that idle power is
// 10.2 W at 15000 RPM (the datasheet figure) and approximately the
// standby power at the minimum 3000 RPM level, matching the published
// DRPM behaviour. Transition energy is billed at the idle power of
// the faster level involved, the paper's stated conservative
// assumption.
package disk

import (
	"fmt"
	"math"
)

// Params holds every simulation parameter of Table 1 plus the derived
// DRPM power-model constants.
type Params struct {
	// Identity (informational).
	Model     string
	Interface string
	// CapacityGB is the formatted capacity in gigabytes.
	CapacityGB float64

	// MaxRPM is the full rotation speed (15000 RPM).
	MaxRPM int
	// AvgSeekMS is the average seek time in milliseconds.
	AvgSeekMS float64
	// SeekMinMS and SeekMaxMS bound the distance-dependent seek
	// model (track-to-track and full-stroke); SeekTimeMS
	// interpolates with the classical square-root curve. The
	// defaults are calibrated so a uniformly random access pattern
	// averages AvgSeekMS.
	SeekMinMS float64
	SeekMaxMS float64
	// AvgRotMS is the average rotational latency at MaxRPM (half a
	// revolution).
	AvgRotMS float64
	// TransferMBps is the internal transfer rate at MaxRPM; it scales
	// linearly with rotation speed.
	TransferMBps float64

	// ActiveW, IdleW, StandbyW are the mode power draws at MaxRPM.
	ActiveW  float64
	IdleW    float64
	StandbyW float64

	// TPM spin transition costs (idle <-> standby).
	SpinDownJ  float64
	SpinDownMS float64
	SpinUpJ    float64
	SpinUpMS   float64

	// DRPM parameters.
	MinRPM  int
	RPMStep int
	// RPMStepTimeMS is the time to modulate the spindle by one RPM
	// step. The paper states RPM modulation is much faster than TPM
	// spin-up/down; the value here is fitted so that the idle gaps of
	// the evaluated workloads are exploitable by (I)DRPM, which the
	// paper's reported savings imply.
	RPMStepTimeMS float64
	// WindowSize is the reactive DRPM controller's request window
	// (30 in the paper, chosen for single-program workloads).
	WindowSize int
	// LowerTolerancePct and UpperTolerancePct bound the per-window
	// response-time change within which the reactive DRPM controller
	// steps the speed down, or above which it restores full speed.
	LowerTolerancePct float64
	UpperTolerancePct float64

	// ElectronicsW is the non-spindle power floor Pe of the DRPM
	// power model.
	ElectronicsW float64
	// SpindleExp is the spindle power exponent k (~2.8 for air drag).
	SpindleExp float64
}

// DefaultParams returns the Table 1 configuration: an IBM Ultrastar
// 36Z15 with DRPM support over 3000..15000 RPM in 1200 RPM steps.
func DefaultParams() Params {
	return Params{
		Model:             "IBM Ultrastar 36Z15",
		Interface:         "SCSI",
		CapacityGB:        18,
		MaxRPM:            15000,
		AvgSeekMS:         3.4,
		SeekMinMS:         0.6,
		SeekMaxMS:         5.9,
		AvgRotMS:          2.0,
		TransferMBps:      55,
		ActiveW:           13.5,
		IdleW:             10.2,
		StandbyW:          2.5,
		SpinDownJ:         13,
		SpinDownMS:        1500,
		SpinUpJ:           135,
		SpinUpMS:          10900,
		MinRPM:            3000,
		RPMStep:           1200,
		RPMStepTimeMS:     3.5,
		WindowSize:        30,
		LowerTolerancePct: 5,
		UpperTolerancePct: 15,
		ElectronicsW:      2.0,
		SpindleExp:        2.8,
	}
}

// Validate checks parameter sanity. Every float field must be finite:
// a NaN would slip through ordered comparisons (NaN < x is always
// false) and silently poison energy totals downstream.
func (p Params) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{
		{"CapacityGB", p.CapacityGB},
		{"AvgSeekMS", p.AvgSeekMS},
		{"SeekMinMS", p.SeekMinMS},
		{"SeekMaxMS", p.SeekMaxMS},
		{"AvgRotMS", p.AvgRotMS},
		{"TransferMBps", p.TransferMBps},
		{"ActiveW", p.ActiveW},
		{"IdleW", p.IdleW},
		{"StandbyW", p.StandbyW},
		{"SpinDownJ", p.SpinDownJ},
		{"SpinDownMS", p.SpinDownMS},
		{"SpinUpJ", p.SpinUpJ},
		{"SpinUpMS", p.SpinUpMS},
		{"RPMStepTimeMS", p.RPMStepTimeMS},
		{"LowerTolerancePct", p.LowerTolerancePct},
		{"UpperTolerancePct", p.UpperTolerancePct},
		{"ElectronicsW", p.ElectronicsW},
		{"SpindleExp", p.SpindleExp},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("disk: %s is %v, must be finite", f.name, f.v)
		}
	}
	switch {
	case p.MaxRPM <= 0 || p.MinRPM <= 0 || p.MinRPM > p.MaxRPM:
		return fmt.Errorf("disk: bad RPM range [%d,%d]", p.MinRPM, p.MaxRPM)
	case p.RPMStep <= 0:
		return fmt.Errorf("disk: non-positive RPM step %d", p.RPMStep)
	case (p.MaxRPM-p.MinRPM)%p.RPMStep != 0:
		return fmt.Errorf("disk: RPM step %d does not divide range [%d,%d]", p.RPMStep, p.MinRPM, p.MaxRPM)
	case p.AvgSeekMS < 0 || p.AvgRotMS <= 0 || p.TransferMBps <= 0:
		return fmt.Errorf("disk: bad timing parameters")
	case p.SeekMinMS < 0 || p.SeekMaxMS < p.SeekMinMS:
		return fmt.Errorf("disk: bad seek curve [%g, %g]", p.SeekMinMS, p.SeekMaxMS)
	case p.ActiveW < p.IdleW || p.IdleW < p.StandbyW || p.StandbyW < 0:
		return fmt.Errorf("disk: power ordering violated (active %.1f, idle %.1f, standby %.1f)", p.ActiveW, p.IdleW, p.StandbyW)
	case p.SpinDownMS < 0 || p.SpinUpMS < 0 || p.SpinDownJ < 0 || p.SpinUpJ < 0:
		return fmt.Errorf("disk: negative TPM transition cost")
	case p.RPMStepTimeMS <= 0:
		return fmt.Errorf("disk: non-positive RPM step time")
	case p.WindowSize <= 0:
		return fmt.Errorf("disk: non-positive window size")
	case p.ElectronicsW < 0 || p.ElectronicsW >= p.IdleW:
		return fmt.Errorf("disk: electronics floor %.1f outside [0, idle)", p.ElectronicsW)
	case p.SpindleExp <= 0:
		return fmt.Errorf("disk: non-positive spindle exponent")
	}
	return nil
}

// Levels returns the available RPM levels in ascending order,
// MinRPM..MaxRPM by RPMStep.
func (p Params) Levels() []int {
	n := (p.MaxRPM-p.MinRPM)/p.RPMStep + 1
	out := make([]int, n)
	for i := range out {
		out[i] = p.MinRPM + i*p.RPMStep
	}
	return out
}

// NumLevels returns the number of RPM levels.
func (p Params) NumLevels() int { return (p.MaxRPM-p.MinRPM)/p.RPMStep + 1 }

// LevelIndex returns the index of rpm within Levels, or -1 if rpm is
// not an exact level.
func (p Params) LevelIndex(rpm int) int {
	if rpm < p.MinRPM || rpm > p.MaxRPM || (rpm-p.MinRPM)%p.RPMStep != 0 {
		return -1
	}
	return (rpm - p.MinRPM) / p.RPMStep
}

// ClampLevel returns the nearest valid level at or below rpm (at
// least MinRPM).
func (p Params) ClampLevel(rpm int) int {
	if rpm >= p.MaxRPM {
		return p.MaxRPM
	}
	if rpm <= p.MinRPM {
		return p.MinRPM
	}
	return p.MinRPM + (rpm-p.MinRPM)/p.RPMStep*p.RPMStep
}

// IdlePowerAt returns the power drawn while idle (spinning, not
// servicing) at the given RPM.
func (p Params) IdlePowerAt(rpm int) float64 {
	frac := float64(rpm) / float64(p.MaxRPM)
	return p.ElectronicsW + (p.IdleW-p.ElectronicsW)*math.Pow(frac, p.SpindleExp)
}

// ActivePowerAt returns the power drawn while servicing a request at
// the given RPM. The active-idle delta (head positioning and channel
// electronics) is modelled as speed independent.
func (p Params) ActivePowerAt(rpm int) float64 {
	return p.IdlePowerAt(rpm) + (p.ActiveW - p.IdleW)
}

// ServiceTimeMS returns the time to service one request of the given
// size at the given RPM: average seek, rotational latency scaled
// inversely with speed, and media transfer scaled linearly with
// speed.
func (p Params) ServiceTimeMS(rpm int, bytes int64) float64 {
	return p.ServiceTimeSeekMS(rpm, bytes, p.AvgSeekMS)
}

// ServiceTimeSeekMS is ServiceTimeMS with an explicit seek time,
// for distance-aware simulation.
func (p Params) ServiceTimeSeekMS(rpm int, bytes int64, seekMS float64) float64 {
	frac := float64(rpm) / float64(p.MaxRPM)
	rot := p.AvgRotMS / frac
	return seekMS + rot + p.TransferTimeMS(rpm, bytes)
}

// TransferTimeMS returns the media-transfer component of a request's
// service time: the transfer rate scales linearly with rotation
// speed.
func (p Params) TransferTimeMS(rpm int, bytes int64) float64 {
	frac := float64(rpm) / float64(p.MaxRPM)
	return float64(bytes) / (p.TransferMBps * 1e6 * frac) * 1e3
}

// SeekTimeMS returns the distance-dependent seek time for a head
// movement of dist blocks on a disk of maxBlocks, using the
// classical square-root seek curve between SeekMinMS (track to
// track) and SeekMaxMS (full stroke). A zero distance needs no seek.
func (p Params) SeekTimeMS(dist, maxBlocks int64) float64 {
	if dist <= 0 || maxBlocks <= 0 {
		return 0
	}
	if dist > maxBlocks {
		dist = maxBlocks
	}
	frac := float64(dist) / float64(maxBlocks)
	return p.SeekMinMS + (p.SeekMaxMS-p.SeekMinMS)*math.Sqrt(frac)
}

// CapacityBlocks returns the disk capacity in 512-byte blocks.
func (p Params) CapacityBlocks() int64 {
	return int64(p.CapacityGB * 1e9 / 512)
}

// TransitionTimeMS returns the time to modulate the spindle between
// two RPM levels (linear in the number of steps).
func (p Params) TransitionTimeMS(from, to int) float64 {
	d := from - to
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(p.RPMStep) * p.RPMStepTimeMS
}

// TransitionEnergyJ returns the energy consumed by an RPM modulation.
// Per the paper's conservative assumption, each step is billed at the
// idle power of the faster level involved in that step.
func (p Params) TransitionEnergyJ(from, to int) float64 {
	if from == to {
		return 0
	}
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	var e float64
	for r := hi; r > lo; r -= p.RPMStep {
		e += p.IdlePowerAt(r) * p.RPMStepTimeMS / 1e3
	}
	return e
}

// TPMBreakEvenMS returns the minimum idle-period length for which
// spinning down to standby and back saves energy over idling, and
// for which the spin-down + spin-up sequence fits inside the period.
func (p Params) TPMBreakEvenMS() float64 {
	transMS := p.SpinDownMS + p.SpinUpMS
	// Solve IdleW*T > SpinDownJ + SpinUpJ + StandbyW*(T - trans).
	denom := p.IdleW - p.StandbyW
	if denom <= 0 {
		return math.Inf(1)
	}
	t := (p.SpinDownJ + p.SpinUpJ - p.StandbyW*transMS/1e3) * 1e3 / denom
	if t < transMS {
		t = transMS
	}
	return t
}

// IdleEnergyJ returns the energy of spending an idle period of the
// given length entirely at full-speed idle.
func (p Params) IdleEnergyJ(idleMS float64) float64 {
	return p.IdleW * idleMS / 1e3
}

// DipEnergyJ returns the energy of an idle period of the given length
// during which the disk ramps down to the given RPM level, stays
// there, and ramps back to full speed in time for the next access.
// It returns +Inf when the two transitions do not fit in the period.
func (p Params) DipEnergyJ(idleMS float64, rpm int) float64 {
	if rpm == p.MaxRPM {
		return p.IdleEnergyJ(idleMS)
	}
	down := p.TransitionTimeMS(p.MaxRPM, rpm)
	up := down
	if down+up > idleMS {
		return math.Inf(1)
	}
	stay := idleMS - down - up
	return p.TransitionEnergyJ(p.MaxRPM, rpm)*2 + p.IdlePowerAt(rpm)*stay/1e3
}

// StandbyEnergyJ returns the energy of an idle period of the given
// length during which the disk spins down to standby and back up in
// time for the next access (TPM with perfect pre-activation). It
// returns +Inf when the transitions do not fit.
func (p Params) StandbyEnergyJ(idleMS float64) float64 {
	trans := p.SpinDownMS + p.SpinUpMS
	if trans > idleMS {
		return math.Inf(1)
	}
	return p.SpinDownJ + p.SpinUpJ + p.StandbyW*(idleMS-trans)/1e3
}

// BestRPMForIdle returns the RPM level minimizing the energy of an
// idle period of the given length (including both transitions), and
// that minimum energy. For periods too short to exploit it returns
// (MaxRPM, full-speed idle energy).
func (p Params) BestRPMForIdle(idleMS float64) (int, float64) {
	best := p.MaxRPM
	bestE := p.IdleEnergyJ(idleMS)
	for _, r := range p.Levels() {
		if e := p.DipEnergyJ(idleMS, r); e < bestE {
			bestE = e
			best = r
		}
	}
	return best, bestE
}

// BestRPMForTrailingIdle returns the RPM level minimizing the energy
// of a trailing idle period — one after which the disk never needs
// to return to full speed — and that minimum energy.
func (p Params) BestRPMForTrailingIdle(idleMS float64) (int, float64) {
	best := p.MaxRPM
	bestE := p.IdleEnergyJ(idleMS)
	for _, r := range p.Levels() {
		tr := p.TransitionTimeMS(p.MaxRPM, r)
		if tr > idleMS {
			continue
		}
		e := p.TransitionEnergyJ(p.MaxRPM, r) + p.IdlePowerAt(r)*(idleMS-tr)/1e3
		if e < bestE {
			best, bestE = r, e
		}
	}
	return best, bestE
}

// TrailingStandbyWins reports whether spinning down (with no
// subsequent spin-up) saves energy over idling for a trailing idle
// period of the given length.
func (p Params) TrailingStandbyWins(idleMS float64) bool {
	if idleMS < p.SpinDownMS {
		return false
	}
	return p.SpinDownJ+p.StandbyW*(idleMS-p.SpinDownMS)/1e3 < p.IdleW*idleMS/1e3
}
