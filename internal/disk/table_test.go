package disk

import (
	"math"
	"testing"
)

// tableTestParams returns the parameter sets the bitwise-equality
// sweep covers: the defaults plus variants that move every constant
// feeding the cached expressions.
func tableTestParams() []Params {
	base := DefaultParams()
	alt := base
	alt.SpindleExp = 2.2
	alt.ElectronicsW = 1.1
	alt.IdleW = 9.7
	alt.ActiveW = 14.1
	alt.TransferMBps = 42
	alt.AvgRotMS = 3.1
	alt.RPMStepTimeMS = 2.25
	coarse := base
	coarse.MinRPM = 6000
	coarse.RPMStep = 3000
	return []Params{base, alt, coarse}
}

// TestTableBitwiseIdentical sweeps every table method against its
// Params counterpart and requires bit-for-bit equality: the table is
// only allowed into the simulator's accounting because switching to
// it can never change a result.
func TestTableBitwiseIdentical(t *testing.T) {
	idles := []float64{0, 0.5, 7, 40, 100, 1500, 12400, 12400.000001, 99999.25, 1e7}
	sizes := []int64{512, 4096, 65536, 1 << 20}
	seeks := []float64{0, 0.6, 3.4, 5.9}
	for _, p := range tableTestParams() {
		if err := p.Validate(); err != nil {
			t.Fatalf("bad test params: %v", err)
		}
		tbl := TableFor(p)
		if tbl != TableFor(p) {
			t.Fatalf("TableFor is not memoized for %+v", p)
		}
		levels := p.Levels()
		for _, r := range levels {
			eq(t, "IdlePowerAt", p.IdlePowerAt(r), tbl.IdlePowerAt(r))
			eq(t, "ActivePowerAt", p.ActivePowerAt(r), tbl.ActivePowerAt(r))
			for _, b := range sizes {
				eq(t, "ServiceTimeMS", p.ServiceTimeMS(r, b), tbl.ServiceTimeMS(r, b))
				eq(t, "TransferTimeMS", p.TransferTimeMS(r, b), tbl.TransferTimeMS(r, b))
				for _, s := range seeks {
					eq(t, "ServiceTimeSeekMS", p.ServiceTimeSeekMS(r, b, s), tbl.ServiceTimeSeekMS(r, b, s))
				}
			}
			for _, r2 := range levels {
				eq(t, "TransitionEnergyJ", p.TransitionEnergyJ(r, r2), tbl.TransitionEnergyJ(r, r2))
			}
			for _, idle := range idles {
				eq(t, "DipEnergyJ", p.DipEnergyJ(idle, r), tbl.DipEnergyJ(idle, r))
			}
		}
		for _, idle := range idles {
			wantR, wantE := p.BestRPMForIdle(idle)
			gotR, gotE := tbl.BestRPMForIdle(idle)
			if wantR != gotR {
				t.Errorf("BestRPMForIdle(%g): rpm %d != %d", idle, gotR, wantR)
			}
			eq(t, "BestRPMForIdle energy", wantE, gotE)
			wantR, wantE = p.BestRPMForTrailingIdle(idle)
			gotR, gotE = tbl.BestRPMForTrailingIdle(idle)
			if wantR != gotR {
				t.Errorf("BestRPMForTrailingIdle(%g): rpm %d != %d", idle, gotR, wantR)
			}
			eq(t, "BestRPMForTrailingIdle energy", wantE, gotE)
		}
		// Off-grid RPMs take the fallback path.
		for _, r := range []int{0, p.MinRPM - 1, p.MinRPM + 1, p.MaxRPM + p.RPMStep} {
			eq(t, "IdlePowerAt off-grid", p.IdlePowerAt(r), tbl.IdlePowerAt(r))
			eq(t, "ActivePowerAt off-grid", p.ActivePowerAt(r), tbl.ActivePowerAt(r))
		}
	}
}

// eq fails unless a and b are the same float64 bit pattern (treating
// all NaNs as equal).
func eq(t *testing.T, what string, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) &&
		!(math.IsNaN(want) && math.IsNaN(got)) {
		t.Errorf("%s: got %v (%#x), want %v (%#x)", what,
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestTableDegenerateParamsFallBack(t *testing.T) {
	p := DefaultParams()
	p.RPMStep = 0 // invalid: table must stay degenerate, not panic
	tbl := TableFor(p)
	if tbl.n != 0 {
		t.Fatalf("degenerate params built %d levels", tbl.n)
	}
}
