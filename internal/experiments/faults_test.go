package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestFaultImpactDeterministicAcrossWorkers: the fault-sensitivity
// tables must be byte-identical at any worker count — the plan is
// derived from (seed, nDisks, severity) alone, never from scheduling.
func TestFaultImpactDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	render := func(workers int) string {
		s := NewSuite()
		s.Workers = workers
		energy, times, err := s.FaultImpact("swim", 12345)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		energy.Render(&sb)
		times.Render(&sb)
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("fault tables differ between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "heavy") || !strings.Contains(seq, "off") {
		t.Fatalf("severity rows missing:\n%s", seq)
	}
}

// TestFaultImpactShape: the fault-free Base cell is the normalization
// reference (exactly 1), every cell is positive and finite, and
// injected faults never reduce a scheme's execution time below its
// fault-free run.
func TestFaultImpactShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := NewSuite()
	energy, times, err := s.FaultImpact("swim", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := energy.Value("off", "Base"); !ok || v != 1 {
		t.Errorf("off/Base energy = %v, want exactly 1", v)
	}
	if v, ok := times.Value("off", "Base"); !ok || v != 1 {
		t.Errorf("off/Base time = %v, want exactly 1", v)
	}
	for _, tb := range []struct {
		name string
		t    interface {
			Value(string, string) (float64, bool)
		}
	}{{"energy", energy}, {"time", times}} {
		for _, row := range []string{"off", "light", "moderate", "heavy"} {
			for _, col := range []string{"Base", "TPM", "ITPM", "DRPM", "IDRPM", "CMTPM", "CMDRPM"} {
				v, ok := tb.t.Value(row, col)
				if !ok {
					t.Fatalf("%s table missing %s/%s", tb.name, row, col)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("%s %s/%s = %v, want positive finite", tb.name, row, col, v)
				}
			}
		}
	}
}
