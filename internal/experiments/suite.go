// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 4-6): Table 1 (parameters), Table 2
// (benchmark characteristics), Figures 3/4 (normalized energy and
// execution time under the seven schemes), Table 3 (CMDRPM speed
// mispredictions), Figures 5-8 (stripe size and stripe factor
// sensitivity on swim), and Figure 13 (the code-transformation
// versions), plus the ablation studies DESIGN.md calls out.
package experiments

import (
	"fmt"
	"strings"

	"sdpm/internal/core"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
)

// Suite runs the paper's experiments over the Table 2 benchmarks.
type Suite struct {
	// Cfg is the base configuration (Table 1 defaults).
	Cfg core.Config
	// Benchmarks are the workloads (Table 2 order).
	Benchmarks []*workloads.Benchmark
}

// NewSuite returns a suite with the paper's default configuration and
// all six benchmarks.
func NewSuite() *Suite {
	return &Suite{Cfg: core.DefaultConfig(), Benchmarks: workloads.All()}
}

// configFor specializes the suite configuration for one benchmark.
func (s *Suite) configFor(b *workloads.Benchmark) core.Config {
	cfg := s.Cfg
	cfg.Model = b.Model()
	if cfg.CacheUnits == core.DefaultConfig().CacheUnits {
		cfg.CacheUnits = b.CacheUnits
	}
	return cfg
}

// instance prepares one benchmark under the suite configuration.
func (s *Suite) instance(b *workloads.Benchmark) (*core.Instance, error) {
	return core.Prepare(b.Name, b.Program, s.configFor(b), nil)
}

// Table1 renders the simulation parameters (the paper's Table 1).
func (s *Suite) Table1() string {
	p := s.Cfg.Disk
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Default simulation parameters\n")
	fmt.Fprintf(&b, "  Disk model                 %s\n", p.Model)
	fmt.Fprintf(&b, "  Interface                  %s\n", p.Interface)
	fmt.Fprintf(&b, "  Storage capacity           %.0f GB\n", p.CapacityGB)
	fmt.Fprintf(&b, "  RPM                        %d\n", p.MaxRPM)
	fmt.Fprintf(&b, "  Average seek time          %.1f msec\n", p.AvgSeekMS)
	fmt.Fprintf(&b, "  Average rotation time      %.1f msec\n", p.AvgRotMS)
	fmt.Fprintf(&b, "  Internal transfer rate     %.0f MB/sec\n", p.TransferMBps)
	fmt.Fprintf(&b, "  Power (active)             %.1f W\n", p.ActiveW)
	fmt.Fprintf(&b, "  Power (idle)               %.1f W\n", p.IdleW)
	fmt.Fprintf(&b, "  Power (standby)            %.1f W\n", p.StandbyW)
	fmt.Fprintf(&b, "  Energy (spin down)         %.0f J\n", p.SpinDownJ)
	fmt.Fprintf(&b, "  Time (spin down)           %.1f sec\n", p.SpinDownMS/1e3)
	fmt.Fprintf(&b, "  Energy (spin up)           %.0f J\n", p.SpinUpJ)
	fmt.Fprintf(&b, "  Time (spin up)             %.1f sec\n", p.SpinUpMS/1e3)
	fmt.Fprintf(&b, "  Maximum RPM level          %d RPM\n", p.MaxRPM)
	fmt.Fprintf(&b, "  Minimum RPM level          %d RPM\n", p.MinRPM)
	fmt.Fprintf(&b, "  RPM step-size              %d RPM\n", p.RPMStep)
	fmt.Fprintf(&b, "  RPM step time              %.1f msec (fitted; see DESIGN.md)\n", p.RPMStepTimeMS)
	fmt.Fprintf(&b, "  Window size                %d\n", p.WindowSize)
	fmt.Fprintf(&b, "  Stripe unit (stripe size)  %d KB\n", s.Cfg.UnitBytes/1024)
	fmt.Fprintf(&b, "  Stripe factor (disks)      %d\n", s.Cfg.NumDisks)
	fmt.Fprintf(&b, "  Starting iodevice          staggered per file (see DESIGN.md)\n")
	return b.String()
}

// Table2 runs the base scheme on every benchmark and reports the
// benchmark characteristics next to the paper's values.
func (s *Suite) Table2() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Table 2: Benchmarks and their characteristics (measured vs paper)",
		Columns: []string{
			"DataMB", "Requests", "EnergyJ", "ExecMS",
			"paper:DataMB", "paper:Requests", "paper:EnergyJ", "paper:ExecMS",
		},
		Precision: 1,
	}
	for _, b := range s.Benchmarks {
		in, err := s.instance(b)
		if err != nil {
			return nil, err
		}
		res, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name,
			float64(b.Program.TotalBytes())/(1<<20), float64(len(in.Sites)),
			res.EnergyJ, res.ExecMS,
			b.Paper.DataMB, float64(b.Paper.Requests), b.Paper.EnergyJ, b.Paper.ExecMS)
	}
	return t, nil
}

// schemeMatrix runs every scheme on every benchmark and returns the
// raw energy and execution-time tables.
func (s *Suite) schemeMatrix() (*stats.Table, *stats.Table, error) {
	cols := make([]string, 0, len(core.AllSchemes()))
	for _, sc := range core.AllSchemes() {
		cols = append(cols, string(sc))
	}
	energy := &stats.Table{Title: "Energy (J)", Columns: cols, Precision: 1}
	times := &stats.Table{Title: "Execution time (ms)", Columns: cols, Precision: 1}
	for _, b := range s.Benchmarks {
		in, err := s.instance(b)
		if err != nil {
			return nil, nil, err
		}
		evals := make([]float64, 0, len(cols))
		tvals := make([]float64, 0, len(cols))
		for _, sc := range core.AllSchemes() {
			res, err := in.Run(sc)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", b.Name, sc, err)
			}
			evals = append(evals, res.EnergyJ)
			tvals = append(tvals, res.ExecMS)
		}
		energy.Add(b.Name, evals...)
		times.Add(b.Name, tvals...)
	}
	return energy, times, nil
}

// Figure3 reports the normalized energy consumption of the seven
// schemes (the paper's Figure 3), with the cross-benchmark average.
func (s *Suite) Figure3() (*stats.Table, error) {
	energy, _, err := s.schemeMatrix()
	if err != nil {
		return nil, err
	}
	n, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, err
	}
	n.Precision = 3
	n.Title = "Figure 3: Normalized energy consumption"
	return n.WithMeanRow(), nil
}

// Figure4 reports the normalized execution times (the paper's
// Figure 4).
func (s *Suite) Figure4() (*stats.Table, error) {
	_, times, err := s.schemeMatrix()
	if err != nil {
		return nil, err
	}
	n, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, err
	}
	n.Precision = 3
	n.Title = "Figure 4: Normalized execution time"
	return n.WithMeanRow(), nil
}

// Figures34 computes Figures 3 and 4 from a single scheme-matrix run.
func (s *Suite) Figures34() (*stats.Table, *stats.Table, error) {
	energy, times, err := s.schemeMatrix()
	if err != nil {
		return nil, nil, err
	}
	ne, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	nt, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	ne.Precision = 3
	ne.Title = "Figure 3: Normalized energy consumption"
	nt.Precision = 3
	nt.Title = "Figure 4: Normalized execution time"
	return ne.WithMeanRow(), nt.WithMeanRow(), nil
}

// Table3 reports the percentage of mispredicted disk speeds of
// CMDRPM versus the ideal scheme (the paper's Table 3).
func (s *Suite) Table3() (*stats.Table, error) {
	t := &stats.Table{
		Title:     "Table 3: Percentage of mispredicted disk speeds (CMDRPM vs IDRPM)",
		Columns:   []string{"mispredicted%", "paper%"},
		Precision: 2,
	}
	paper := map[string]float64{
		"wupwise": 6.78, "swim": 5.14, "mgrid": 13.02,
		"applu": 18.97, "mesa": 27.35, "galgel": 15.9,
	}
	for _, b := range s.Benchmarks {
		in, err := s.instance(b)
		if err != nil {
			return nil, err
		}
		st, err := in.Mispredictions()
		if err != nil {
			return nil, err
		}
		t.Add(b.Name, st.Pct, paper[b.Name])
	}
	return t, nil
}
