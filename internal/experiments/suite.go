// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 4-6): Table 1 (parameters), Table 2
// (benchmark characteristics), Figures 3/4 (normalized energy and
// execution time under the seven schemes), Table 3 (CMDRPM speed
// mispredictions), Figures 5-8 (stripe size and stripe factor
// sensitivity on swim), and Figure 13 (the code-transformation
// versions), plus the ablation studies DESIGN.md calls out.
//
// Every experiment is an embarrassingly parallel grid of independent
// (benchmark, configuration, scheme) cells. The suite fans those
// cells out on a bounded worker pool (internal/runner) and reassembles
// results in canonical order, so rendered output is byte-identical
// for any worker count; a shared instance memo (core.Cache) ensures
// the compile→analysis→trace pipeline runs once per (workload,
// configuration) no matter how many schemes or experiments ask for
// it. See docs/performance.md.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"sdpm/internal/core"
	"sdpm/internal/journal"
	"sdpm/internal/obs"
	"sdpm/internal/obs/events"
	"sdpm/internal/runner"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
)

// CellJournal is the durability surface the suite needs from a result
// journal: lookup of a completed cell and a durable (fsynced-before-
// return) append. *journal.Journal satisfies it directly; a serving
// layer can wrap one to add retries or degraded-mode fallback without
// the suite knowing.
type CellJournal interface {
	Lookup(key string) ([]float64, bool)
	Append(key string, vals []float64) error
}

// *journal.Journal is the canonical CellJournal.
var _ CellJournal = (*journal.Journal)(nil)

// CacheUnitsAuto is the suite's "unset" sentinel for
// Config.CacheUnits: each benchmark then uses its own calibrated
// buffer-cache capacity. Any positive value applies uniformly to all
// benchmarks (even when it equals the core default).
const CacheUnitsAuto = 0

// Suite runs the paper's experiments over the Table 2 benchmarks.
type Suite struct {
	// Cfg is the base configuration (Table 1 defaults). A CacheUnits
	// of CacheUnitsAuto selects each benchmark's own capacity.
	Cfg core.Config
	// Benchmarks are the workloads (Table 2 order).
	Benchmarks []*workloads.Benchmark
	// Workers bounds each experiment's parallelism: 1 is strictly
	// sequential, 0 selects GOMAXPROCS. Results are byte-identical
	// for every value.
	Workers int
	// Obs, when non-nil, observes the whole suite: every simulation
	// run, instance-cache lookup, and worker-pool cell reports into
	// it. Set it before the first experiment; render with
	// obs.WritePrometheus.
	Obs *obs.Collector
	// Events, when non-nil, collects decision-provenance events for
	// the whole suite: every simulation run's power decisions (with
	// energy-regret attribution), cell retries and recovered panics
	// from the worker pool, and journal hit/miss lifecycle events.
	// Render with events.WriteJSONL or query with dpmquery.
	Events *events.Log
	// Ctx, when non-nil, cancels in-flight experiments: worker pools
	// stop claiming cells and the running experiment returns the
	// context's error. Results produced before cancellation remain
	// valid (partial metrics can still be flushed).
	Ctx context.Context
	// FaultSeed seeds the fault-sensitivity experiments (FaultImpact);
	// the base configuration's own fault knobs live in Cfg.Faults.
	FaultSeed int64
	// Journal, when non-nil, makes the suite crash-safe: every
	// completed cell is appended durably (fsynced) before its result
	// is used, and cells whose key already has a valid record are
	// served from the journal without recomputation. Cell keys cover
	// the experiment, benchmark, scheme, and the full configuration
	// fingerprint (including fault spec and seed), so a journal can
	// never leak results across configurations. Journaled values
	// round-trip float64s bit-exactly, keeping resumed output
	// byte-identical to a cold run at any worker count. Assign a
	// *journal.Journal directly, or any CellJournal wrapper; leave nil
	// (not a typed nil inside the interface) to disable journaling.
	Journal CellJournal
	// Retries re-runs a failing or panicking cell up to this many
	// extra times before the experiment reports its error (see
	// runner.Pool.WithRetry). Simulation cells are deterministic, so
	// this only helps transient failures (e.g. memory pressure).
	Retries int
	// Cache, when non-nil, replaces the suite's private instance memo
	// with a shared one, so preparations survive the suite itself. A
	// long-lived service creates one Cache and threads it through every
	// per-request Suite: repeated requests for the same (workload,
	// configuration) then skip the compile→analysis→trace pipeline
	// entirely. The shared cache keys on program identity, so callers
	// must also share Benchmarks (the same *workloads.Benchmark values)
	// across suites. Set it before the first experiment; its Obs/Events
	// attachments win over the suite's.
	Cache *core.Cache

	cacheOnce sync.Once
	cache     *core.Cache
}

// NewSuite returns a suite with the paper's default configuration and
// all six benchmarks.
func NewSuite() *Suite {
	cfg := core.DefaultConfig()
	cfg.CacheUnits = CacheUnitsAuto
	return &Suite{Cfg: cfg, Benchmarks: workloads.All()}
}

// memo returns the suite's instance cache: the injected shared Cache
// when one is set, otherwise a private one (created lazily so
// zero-constructed suites work too).
func (s *Suite) memo() *core.Cache {
	s.cacheOnce.Do(func() {
		if s.Cache != nil {
			s.cache = s.Cache
			return
		}
		s.cache = core.NewCache()
		s.cache.Obs = s.Obs
		s.cache.Events = s.Events
	})
	return s.cache
}

// pool returns a worker pool honoring s.Workers, s.Ctx, and
// s.Retries. Experiments run one at a time, so a fresh pool per
// experiment keeps the global bound.
func (s *Suite) pool() *runner.Pool {
	return runner.New(s.Workers).Observe(s.Obs).Trace(s.Events).WithContext(s.Ctx).WithRetry(s.Retries)
}

// cellKey canonically identifies one experiment cell: the experiment
// name, its distinguishing parts (benchmark, scheme, sweep point...),
// and the full configuration fingerprint. Two cells share a key only
// when they are guaranteed to produce identical values.
func (s *Suite) cellKey(exp string, cfg *core.Config, parts ...string) string {
	key := exp
	if len(parts) > 0 {
		key += "|" + strings.Join(parts, "|")
	}
	return key + "|" + cfg.Fingerprint()
}

// cell runs one journaled experiment cell: a valid journal record for
// the key short-circuits the computation (that is what makes -resume
// skip completed work), otherwise compute runs and its values are
// appended durably before they are used. n is the cell's value count;
// a journal record of any other length is treated as a miss. With no
// journal attached, cell is just compute().
func (s *Suite) cell(key string, n int, compute func() ([]float64, error)) ([]float64, error) {
	if s.Journal != nil {
		if vals, ok := s.Journal.Lookup(key); ok && len(vals) == n {
			s.Obs.CountJournalHit()
			s.Events.Emit(events.Event{Kind: events.KindJournalHit, Disk: -1, Detail: key})
			return vals, nil
		}
	}
	vals, err := compute()
	if err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("experiments: cell %q computed %d values, expected %d", key, len(vals), n)
	}
	if s.Journal != nil {
		s.Obs.CountJournalMiss()
		s.Events.Emit(events.Event{Kind: events.KindJournalMiss, Disk: -1, Detail: key})
		if err := s.Journal.Append(key, vals); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// configFor specializes the suite configuration for one benchmark.
func (s *Suite) configFor(b *workloads.Benchmark) core.Config {
	cfg := s.Cfg
	cfg.Model = b.Model()
	if cfg.CacheUnits == CacheUnitsAuto {
		cfg.CacheUnits = b.CacheUnits
	}
	return cfg
}

// instance prepares one benchmark under the suite configuration,
// sharing the preparation across schemes, experiments, and workers.
func (s *Suite) instance(b *workloads.Benchmark) (*core.Instance, error) {
	return s.memo().Prepare(b.Name, b.Program, s.configFor(b), nil)
}

// Table1 renders the simulation parameters (the paper's Table 1).
func (s *Suite) Table1() string {
	p := s.Cfg.Disk
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Default simulation parameters\n")
	fmt.Fprintf(&b, "  Disk model                 %s\n", p.Model)
	fmt.Fprintf(&b, "  Interface                  %s\n", p.Interface)
	fmt.Fprintf(&b, "  Storage capacity           %.0f GB\n", p.CapacityGB)
	fmt.Fprintf(&b, "  RPM                        %d\n", p.MaxRPM)
	fmt.Fprintf(&b, "  Average seek time          %.1f msec\n", p.AvgSeekMS)
	fmt.Fprintf(&b, "  Average rotation time      %.1f msec\n", p.AvgRotMS)
	fmt.Fprintf(&b, "  Internal transfer rate     %.0f MB/sec\n", p.TransferMBps)
	fmt.Fprintf(&b, "  Power (active)             %.1f W\n", p.ActiveW)
	fmt.Fprintf(&b, "  Power (idle)               %.1f W\n", p.IdleW)
	fmt.Fprintf(&b, "  Power (standby)            %.1f W\n", p.StandbyW)
	fmt.Fprintf(&b, "  Energy (spin down)         %.0f J\n", p.SpinDownJ)
	fmt.Fprintf(&b, "  Time (spin down)           %.1f sec\n", p.SpinDownMS/1e3)
	fmt.Fprintf(&b, "  Energy (spin up)           %.0f J\n", p.SpinUpJ)
	fmt.Fprintf(&b, "  Time (spin up)             %.1f sec\n", p.SpinUpMS/1e3)
	fmt.Fprintf(&b, "  Maximum RPM level          %d RPM\n", p.MaxRPM)
	fmt.Fprintf(&b, "  Minimum RPM level          %d RPM\n", p.MinRPM)
	fmt.Fprintf(&b, "  RPM step-size              %d RPM\n", p.RPMStep)
	fmt.Fprintf(&b, "  RPM step time              %.1f msec (fitted; see DESIGN.md)\n", p.RPMStepTimeMS)
	fmt.Fprintf(&b, "  Window size                %d\n", p.WindowSize)
	fmt.Fprintf(&b, "  Stripe unit (stripe size)  %d KB\n", s.Cfg.UnitBytes/1024)
	fmt.Fprintf(&b, "  Stripe factor (disks)      %d\n", s.Cfg.NumDisks)
	fmt.Fprintf(&b, "  Starting iodevice          staggered per file (see DESIGN.md)\n")
	return b.String()
}

// Table2 runs the base scheme on every benchmark and reports the
// benchmark characteristics next to the paper's values.
func (s *Suite) Table2() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Table 2: Benchmarks and their characteristics (measured vs paper)",
		Columns: []string{
			"DataMB", "Requests", "EnergyJ", "ExecMS",
			"paper:DataMB", "paper:Requests", "paper:EnergyJ", "paper:ExecMS",
		},
		Precision: 1,
	}
	rows := make([][]float64, len(s.Benchmarks))
	err := s.pool().Map(len(s.Benchmarks), func(i int) error {
		b := s.Benchmarks[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("table2", &cfg, b.Name), 3, func() ([]float64, error) {
			in, err := s.instance(b)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			return []float64{float64(len(in.Sites)), res.EnergyJ, res.ExecMS}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benchmarks {
		t.Add(b.Name,
			float64(b.Program.TotalBytes())/(1<<20), rows[i][0],
			rows[i][1], rows[i][2],
			b.Paper.DataMB, float64(b.Paper.Requests), b.Paper.EnergyJ, b.Paper.ExecMS)
	}
	return t, nil
}

// schemeMatrix runs every scheme on every benchmark — one worker cell
// per (benchmark, scheme) pair — and returns the raw energy and
// execution-time tables.
func (s *Suite) schemeMatrix() (*stats.Table, *stats.Table, error) {
	schemes := core.AllSchemes()
	cols := make([]string, 0, len(schemes))
	for _, sc := range schemes {
		cols = append(cols, string(sc))
	}
	energy := &stats.Table{Title: "Energy (J)", Columns: cols, Precision: 1}
	times := &stats.Table{Title: "Execution time (ms)", Columns: cols, Precision: 1}
	ns := len(schemes)
	cells := make([][]float64, len(s.Benchmarks)*ns)
	err := s.pool().Map(len(cells), func(i int) error {
		b, sc := s.Benchmarks[i/ns], schemes[i%ns]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("schemematrix", &cfg, b.Name, string(sc)), 2, func() ([]float64, error) {
			in, err := s.instance(b)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, sc, err)
			}
			return []float64{res.EnergyJ, res.ExecMS}, nil
		})
		cells[i] = vals
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	for bi, b := range s.Benchmarks {
		evals := make([]float64, 0, ns)
		tvals := make([]float64, 0, ns)
		for si := range schemes {
			c := cells[bi*ns+si]
			evals = append(evals, c[0])
			tvals = append(tvals, c[1])
		}
		energy.Add(b.Name, evals...)
		times.Add(b.Name, tvals...)
	}
	return energy, times, nil
}

// Figure3 reports the normalized energy consumption of the seven
// schemes (the paper's Figure 3), with the cross-benchmark average.
func (s *Suite) Figure3() (*stats.Table, error) {
	energy, _, err := s.schemeMatrix()
	if err != nil {
		return nil, err
	}
	n, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, err
	}
	n.Precision = 3
	n.Title = "Figure 3: Normalized energy consumption"
	return n.WithMeanRow(), nil
}

// Figure4 reports the normalized execution times (the paper's
// Figure 4).
func (s *Suite) Figure4() (*stats.Table, error) {
	_, times, err := s.schemeMatrix()
	if err != nil {
		return nil, err
	}
	n, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, err
	}
	n.Precision = 3
	n.Title = "Figure 4: Normalized execution time"
	return n.WithMeanRow(), nil
}

// Figures34 computes Figures 3 and 4 from a single scheme-matrix run.
func (s *Suite) Figures34() (*stats.Table, *stats.Table, error) {
	energy, times, err := s.schemeMatrix()
	if err != nil {
		return nil, nil, err
	}
	ne, err := energy.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	nt, err := times.Normalized(string(core.Base))
	if err != nil {
		return nil, nil, err
	}
	ne.Precision = 3
	ne.Title = "Figure 3: Normalized energy consumption"
	nt.Precision = 3
	nt.Title = "Figure 4: Normalized execution time"
	return ne.WithMeanRow(), nt.WithMeanRow(), nil
}

// Table3 reports the percentage of mispredicted disk speeds of
// CMDRPM versus the ideal scheme (the paper's Table 3).
func (s *Suite) Table3() (*stats.Table, error) {
	t := &stats.Table{
		Title:     "Table 3: Percentage of mispredicted disk speeds (CMDRPM vs IDRPM)",
		Columns:   []string{"mispredicted%", "paper%"},
		Precision: 2,
	}
	paper := map[string]float64{
		"wupwise": 6.78, "swim": 5.14, "mgrid": 13.02,
		"applu": 18.97, "mesa": 27.35, "galgel": 15.9,
	}
	pcts := make([]float64, len(s.Benchmarks))
	err := s.pool().Map(len(s.Benchmarks), func(i int) error {
		b := s.Benchmarks[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("table3", &cfg, b.Name), 1, func() ([]float64, error) {
			in, err := s.instance(b)
			if err != nil {
				return nil, err
			}
			st, err := in.Mispredictions()
			if err != nil {
				return nil, err
			}
			return []float64{st.Pct}, nil
		})
		if err != nil {
			return err
		}
		pcts[i] = vals[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benchmarks {
		t.Add(b.Name, pcts[i], paper[b.Name])
	}
	return t, nil
}
