package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"sort"

	"sdpm/internal/stats"
)

// IDs returns the experiment identifiers accepted by Render, in the
// paper's order.
func IDs() []string {
	return []string{
		"table1", "table2", "fig3", "fig4", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig13",
		"applicability", "ext-interchange", "ext-multiprogram",
		"ablation-preactivation", "ablation-noise", "ablation-cache", "ablation-clustering",
		"ablation-openloop", "ablation-seek", "breakdown",
		"faults-energy", "faults-time",
	}
}

// Render regenerates one experiment id on a prepared suite and
// renders it to out as "text" (aligned tables) or "csv". It is the
// single dispatch point shared by the sdpm library entry points and
// the serving layer; the id "all" is the caller's concern (loop over
// IDs) so that per-experiment cancellation points stay visible.
func Render(s *Suite, id string, out io.Writer, format string) error {
	slog.Debug("experiment start", "id", id, "workers", s.Workers)
	text, table, err := build(s, id)
	if err != nil {
		return err
	}
	slog.Debug("experiment done", "id", id)
	if table != nil {
		if format == "csv" {
			return table.RenderCSV(out)
		}
		table.Render(out)
		return nil
	}
	_, err = io.WriteString(out, text)
	return err
}

// build produces one experiment's output: either preformatted text
// (Table 1) or a numeric table.
func build(s *Suite, id string) (string, *stats.Table, error) {
	one := func(t *stats.Table, err error) (string, *stats.Table, error) { return "", t, err }
	pair := func(a, b *stats.Table, err error, first bool) (string, *stats.Table, error) {
		if err != nil {
			return "", nil, err
		}
		if first {
			return "", a, nil
		}
		return "", b, nil
	}
	switch id {
	case "table1":
		return s.Table1(), nil, nil
	case "table2":
		return one(s.Table2())
	case "fig3":
		return one(s.Figure3())
	case "fig4":
		return one(s.Figure4())
	case "table3":
		return one(s.Table3())
	case "fig5":
		a, b, err := s.Figures56(nil)
		return pair(a, b, err, true)
	case "fig6":
		a, b, err := s.Figures56(nil)
		return pair(a, b, err, false)
	case "fig7":
		a, b, err := s.Figures78(nil)
		return pair(a, b, err, true)
	case "fig8":
		a, b, err := s.Figures78(nil)
		return pair(a, b, err, false)
	case "fig13":
		return one(s.Figure13())
	case "applicability":
		return one(s.VersionApplicability())
	case "ext-interchange":
		return one(s.ExtensionInterchange())
	case "ext-multiprogram":
		return one(s.ExtensionMultiprogram())
	case "ablation-preactivation":
		return one(s.AblationPreactivation())
	case "ablation-noise":
		return one(s.AblationNoise("mesa", nil))
	case "ablation-cache":
		return one(s.AblationCache())
	case "ablation-clustering":
		return one(s.AblationClustering())
	case "ablation-openloop":
		return one(s.AblationOpenLoop())
	case "ablation-seek":
		return one(s.AblationSeekModel())
	case "breakdown":
		return one(s.EnergyBreakdown())
	case "faults-energy":
		a, b, err := s.FaultImpact("swim", s.FaultSeed)
		return pair(a, b, err, true)
	case "faults-time":
		a, b, err := s.FaultImpact("swim", s.FaultSeed)
		return pair(a, b, err, false)
	default:
		ids := append([]string{"all"}, IDs()...)
		sort.Strings(ids)
		return "", nil, fmt.Errorf("sdpm: unknown experiment %q (have %v)", id, ids)
	}
}
