package experiments

import (
	"fmt"

	"sdpm/internal/core"
	"sdpm/internal/sim"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
	"sdpm/internal/xform"
)

// selected returns the suite benchmarks passing the filter, keeping
// Table 2 order (the canonical row order of every ablation table).
func (s *Suite) selected(keep func(*workloads.Benchmark) bool) []*workloads.Benchmark {
	var out []*workloads.Benchmark
	for _, b := range s.Benchmarks {
		if keep(b) {
			out = append(out, b)
		}
	}
	return out
}

// AblationPreactivation quantifies the value of the pre-activation
// calls (Equation 1): CMDRPM energy and time with and without them,
// normalized to base. Without pre-activation, every access after a
// power-down pays the wake-up latency on demand.
func (s *Suite) AblationPreactivation() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: pre-activation (normalized energy | time)",
		Columns: []string{"CMDRPM-E", "CMDRPM-T", "noPre-E", "noPre-T"},
	}
	rows := make([][]float64, len(s.Benchmarks))
	err := s.pool().Map(len(s.Benchmarks), func(i int) error {
		b := s.Benchmarks[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("preact", &cfg, b.Name), 4, func() ([]float64, error) {
			in, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			base, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			on, err := in.Run(core.CMDRPM)
			if err != nil {
				return nil, err
			}
			cfgOff := cfg
			cfgOff.DisablePreactivation = true
			inOff, err := s.memo().Prepare(b.Name, b.Program, cfgOff, nil)
			if err != nil {
				return nil, err
			}
			off, err := inOff.Run(core.CMDRPM)
			if err != nil {
				return nil, err
			}
			return []float64{
				on.EnergyJ / base.EnergyJ, on.ExecMS / base.ExecMS,
				off.EnergyJ / base.EnergyJ, off.ExecMS / base.ExecMS}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benchmarks {
		t.Add(b.Name, rows[i][0], rows[i][1], rows[i][2], rows[i][3])
	}
	return t.WithMeanRow(), nil
}

// AblationNoise sweeps the cycle-estimation bias on one benchmark and
// reports the resulting misprediction rate and the CMDRPM energy and
// time (normalized) — the mechanism behind Table 3.
func (s *Suite) AblationNoise(benchName string, biasLevels []float64) (*stats.Table, error) {
	if len(biasLevels) == 0 {
		biasLevels = []float64{0, 10, 20, 40}
	}
	b, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:     "Ablation: cycle-estimation bias vs misprediction (" + b.Name + ")",
		Columns:   []string{"mispredict%", "CMDRPM-E", "CMDRPM-T"},
		Precision: 3,
	}
	rows := make([][]float64, len(biasLevels))
	err = s.pool().Map(len(biasLevels), func(i int) error {
		cfg := s.configFor(b)
		m := b.Model()
		m.BiasPct = biasLevels[i]
		cfg.Model = m
		vals, err := s.cell(s.cellKey("noise", &cfg, b.Name), 3, func() ([]float64, error) {
			in, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			base, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			cm, err := in.Run(core.CMDRPM)
			if err != nil {
				return nil, err
			}
			st, err := in.Mispredictions()
			if err != nil {
				return nil, err
			}
			return []float64{st.Pct, cm.EnergyJ / base.EnergyJ, cm.ExecMS / base.ExecMS}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, bias := range biasLevels {
		t.Add(fmt.Sprintf("bias %g%%", bias), rows[i][0], rows[i][1], rows[i][2])
	}
	return t, nil
}

// AblationCache compares request counts and base energy with and
// without the buffer cache; without it every stripe-unit touch
// becomes a disk request.
func (s *Suite) AblationCache() (*stats.Table, error) {
	t := &stats.Table{
		Title:     "Ablation: buffer cache (requests and base energy)",
		Columns:   []string{"reqs", "reqs-nocache", "E", "E-nocache"},
		Precision: 0,
	}
	// The cacheless traces of the two largest workloads are enormous;
	// the remaining benchmarks demonstrate the effect.
	benches := s.selected(func(b *workloads.Benchmark) bool {
		return b.Name != "wupwise" && b.Name != "mgrid"
	})
	rows := make([][]float64, len(benches))
	err := s.pool().Map(len(benches), func(i int) error {
		b := benches[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("cache", &cfg, b.Name), 4, func() ([]float64, error) {
			in, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			cfgNC := cfg
			cfgNC.NoCache = true
			inNC, err := s.memo().Prepare(b.Name, b.Program, cfgNC, nil)
			if err != nil {
				return nil, err
			}
			resNC, err := inNC.Run(core.Base)
			if err != nil {
				return nil, err
			}
			return []float64{float64(len(in.Sites)), float64(len(inNC.Sites)), res.EnergyJ, resNC.EnergyJ}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.Add(b.Name, rows[i][0], rows[i][1], rows[i][2], rows[i][3])
	}
	return t, nil
}

// AblationClustering isolates the nest-clustering step of LF+DL:
// fission plus proportional disk allocation, with and without
// reordering the fissioned nests by array group.
func (s *Suite) AblationClustering() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: LF+DL nest clustering (normalized CMDRPM energy)",
		Columns: []string{"LF+DL", "LF+DL-nocluster"},
	}
	benches := s.selected(func(b *workloads.Benchmark) bool { return b.Fissionable })
	rows := make([][]float64, len(benches))
	err := s.pool().Map(len(benches), func(i int) error {
		b := benches[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("clustering", &cfg, b.Name), 2, func() ([]float64, error) {
			orig, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			base, err := orig.Run(core.Base)
			if err != nil {
				return nil, err
			}
			with, err := s.lfdlEnergy(b, cfg, true)
			if err != nil {
				return nil, err
			}
			without, err := s.lfdlEnergy(b, cfg, false)
			if err != nil {
				return nil, err
			}
			return []float64{with / base.EnergyJ, without / base.EnergyJ}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.Add(b.Name, rows[i][0], rows[i][1])
	}
	return t.WithMeanRow(), nil
}

// lfdlEnergy runs CMDRPM on the LF+DL version of a benchmark,
// optionally skipping the clustering step. The transformed program is
// built fresh on every call, so preparation goes straight to
// core.Prepare rather than through the memo (a fresh program pointer
// can never hit).
func (s *Suite) lfdlEnergy(b *workloads.Benchmark, cfg core.Config, cluster bool) (float64, error) {
	fp := xform.Fission(b.Program)
	if cluster {
		fp = xform.ClusterByGroup(fp)
	}
	groups := xform.ArrayGroups(fp)
	st, err := xform.AssignGroupDisks(groups, cfg.NumDisks, cfg.UnitBytes)
	if err != nil {
		return 0, err
	}
	in, err := core.Prepare(b.Name+"/lfdl", fp, cfg, st)
	if err != nil {
		return 0, err
	}
	res, err := in.Run(core.CMDRPM)
	if err != nil {
		return 0, err
	}
	return res.EnergyJ, nil
}

// AblationOpenLoop contrasts the closed-loop execution model (request
// n+1 issues after request n completes — the paper's setting, where
// power-management delays stretch the application) with classical
// open-loop trace replay, under the reactive and oracle DRPM schemes.
func (s *Suite) AblationOpenLoop() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: closed vs open loop (normalized energy | time)",
		Columns: []string{"DRPM-E", "DRPM-T", "openDRPM-E", "openDRPM-T", "openIDRPM-E"},
	}
	benches := s.selected(func(b *workloads.Benchmark) bool {
		return b.Name != "wupwise" && b.Name != "mgrid" // keep the ablation quick; the others suffice
	})
	rows := make([][]float64, len(benches))
	err := s.pool().Map(len(benches), func(i int) error {
		b := benches[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("openloop", &cfg, b.Name), 5, func() ([]float64, error) {
			in, err := s.instance(b)
			if err != nil {
				return nil, err
			}
			base, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			openBase, err := in.RunOpen(core.Base)
			if err != nil {
				return nil, err
			}
			dr, err := in.Run(core.DRPM)
			if err != nil {
				return nil, err
			}
			openDr, err := in.RunOpen(core.DRPM)
			if err != nil {
				return nil, err
			}
			openId, err := in.RunOpen(core.IDRPM)
			if err != nil {
				return nil, err
			}
			return []float64{
				dr.EnergyJ / base.EnergyJ, dr.ExecMS / base.ExecMS,
				openDr.EnergyJ / openBase.EnergyJ, openDr.ExecMS / openBase.ExecMS,
				openId.EnergyJ / openBase.EnergyJ}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.Add(b.Name, rows[i][0], rows[i][1], rows[i][2], rows[i][3], rows[i][4])
	}
	return t.WithMeanRow(), nil
}

// AblationSeekModel contrasts the datasheet average-seek model with
// the distance-dependent square-root seek curve: the workloads'
// mostly-sequential accesses seek far less than average, so base
// energy and time drop.
func (s *Suite) AblationSeekModel() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: average vs distance-dependent seek (base runs)",
		Columns: []string{"E-avg", "E-dist", "T-avg", "T-dist"},
	}
	benches := s.selected(func(b *workloads.Benchmark) bool { return b.Name != "wupwise" })
	rows := make([][]float64, len(benches))
	err := s.pool().Map(len(benches), func(i int) error {
		b := benches[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("seekmodel", &cfg, b.Name), 4, func() ([]float64, error) {
			in, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			avg, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			cfgD := cfg
			cfgD.DistanceAwareSeek = true
			inD, err := s.memo().Prepare(b.Name, b.Program, cfgD, nil)
			if err != nil {
				return nil, err
			}
			dist, err := inD.Run(core.Base)
			if err != nil {
				return nil, err
			}
			return []float64{avg.EnergyJ, dist.EnergyJ, avg.ExecMS, dist.ExecMS}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		t.Add(b.Name, rows[i][0], rows[i][1], rows[i][2], rows[i][3])
	}
	return t, nil
}

// EnergyBreakdown reports where each scheme's energy goes (active /
// idle-spinning / standby / transitions), per benchmark, for the base
// and compiler-managed DRPM schemes. It makes the proactive scheme's
// mechanism visible: base energy is almost entirely full-speed
// idling; CMDRPM converts most of it into low-RPM residency plus
// transition costs.
func (s *Suite) EnergyBreakdown() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Energy breakdown (J): base vs CMDRPM",
		Columns: []string{
			"base-active", "base-idle",
			"cm-active", "cm-idle", "cm-trans", "cm-standby",
		},
		Precision: 1,
	}
	rows := make([][]float64, len(s.Benchmarks))
	err := s.pool().Map(len(s.Benchmarks), func(i int) error {
		b := s.Benchmarks[i]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("breakdown", &cfg, b.Name), 6, func() ([]float64, error) {
			in, err := s.instance(b)
			if err != nil {
				return nil, err
			}
			base, err := in.Run(core.Base)
			if err != nil {
				return nil, err
			}
			cm, err := in.Run(core.CMDRPM)
			if err != nil {
				return nil, err
			}
			sum := func(r *sim.Result) (a, i, tr, sb float64) {
				for _, st := range r.Disks {
					a += st.ActiveEnergyJ
					i += st.IdleEnergyJ
					tr += st.TransitionEnergyJ
					sb += st.StandbyEnergyJ
				}
				return
			}
			ba, bi, _, _ := sum(base)
			ca, ci, ct, cs := sum(cm)
			return []float64{ba, bi, ca, ci, ct, cs}, nil
		})
		rows[i] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benchmarks {
		t.Add(b.Name, rows[i][0], rows[i][1], rows[i][2], rows[i][3], rows[i][4], rows[i][5])
	}
	return t, nil
}
