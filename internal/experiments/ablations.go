package experiments

import (
	"fmt"

	"sdpm/internal/core"
	"sdpm/internal/sim"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
	"sdpm/internal/xform"
)

// AblationPreactivation quantifies the value of the pre-activation
// calls (Equation 1): CMDRPM energy and time with and without them,
// normalized to base. Without pre-activation, every access after a
// power-down pays the wake-up latency on demand.
func (s *Suite) AblationPreactivation() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: pre-activation (normalized energy | time)",
		Columns: []string{"CMDRPM-E", "CMDRPM-T", "noPre-E", "noPre-T"},
	}
	for _, b := range s.Benchmarks {
		cfg := s.configFor(b)
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		base, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		on, err := in.Run(core.CMDRPM)
		if err != nil {
			return nil, err
		}
		cfg.DisablePreactivation = true
		inOff, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		off, err := inOff.Run(core.CMDRPM)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name,
			on.EnergyJ/base.EnergyJ, on.ExecMS/base.ExecMS,
			off.EnergyJ/base.EnergyJ, off.ExecMS/base.ExecMS)
	}
	return t.WithMeanRow(), nil
}

// AblationNoise sweeps the cycle-estimation bias on one benchmark and
// reports the resulting misprediction rate and the CMDRPM energy and
// time (normalized) — the mechanism behind Table 3.
func (s *Suite) AblationNoise(benchName string, biasLevels []float64) (*stats.Table, error) {
	if len(biasLevels) == 0 {
		biasLevels = []float64{0, 10, 20, 40}
	}
	b, err := workloads.ByName(benchName)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:     "Ablation: cycle-estimation bias vs misprediction (" + b.Name + ")",
		Columns:   []string{"mispredict%", "CMDRPM-E", "CMDRPM-T"},
		Precision: 3,
	}
	for _, bias := range biasLevels {
		cfg := s.configFor(b)
		m := b.Model()
		m.BiasPct = bias
		cfg.Model = m
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		base, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		cm, err := in.Run(core.CMDRPM)
		if err != nil {
			return nil, err
		}
		st, err := in.Mispredictions()
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("bias %g%%", bias), st.Pct, cm.EnergyJ/base.EnergyJ, cm.ExecMS/base.ExecMS)
	}
	return t, nil
}

// AblationCache compares request counts and base energy with and
// without the buffer cache; without it every stripe-unit touch
// becomes a disk request.
func (s *Suite) AblationCache() (*stats.Table, error) {
	t := &stats.Table{
		Title:     "Ablation: buffer cache (requests and base energy)",
		Columns:   []string{"reqs", "reqs-nocache", "E", "E-nocache"},
		Precision: 0,
	}
	for _, b := range s.Benchmarks {
		if b.Name == "wupwise" || b.Name == "mgrid" {
			// The cacheless traces of the two largest workloads are
			// enormous; the remaining benchmarks demonstrate the
			// effect.
			continue
		}
		cfg := s.configFor(b)
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		res, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		cfg.NoCache = true
		inNC, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		resNC, err := inNC.Run(core.Base)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name, float64(len(in.Sites)), float64(len(inNC.Sites)), res.EnergyJ, resNC.EnergyJ)
	}
	return t, nil
}

// AblationClustering isolates the nest-clustering step of LF+DL:
// fission plus proportional disk allocation, with and without
// reordering the fissioned nests by array group.
func (s *Suite) AblationClustering() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: LF+DL nest clustering (normalized CMDRPM energy)",
		Columns: []string{"LF+DL", "LF+DL-nocluster"},
	}
	for _, b := range s.Benchmarks {
		if !b.Fissionable {
			continue
		}
		cfg := s.configFor(b)
		orig, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		base, err := orig.Run(core.Base)
		if err != nil {
			return nil, err
		}
		with, err := s.lfdlEnergy(b, cfg, true)
		if err != nil {
			return nil, err
		}
		without, err := s.lfdlEnergy(b, cfg, false)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name, with/base.EnergyJ, without/base.EnergyJ)
	}
	return t.WithMeanRow(), nil
}

// lfdlEnergy runs CMDRPM on the LF+DL version of a benchmark,
// optionally skipping the clustering step.
func (s *Suite) lfdlEnergy(b *workloads.Benchmark, cfg core.Config, cluster bool) (float64, error) {
	fp := xform.Fission(b.Program)
	if cluster {
		fp = xform.ClusterByGroup(fp)
	}
	groups := xform.ArrayGroups(fp)
	st, err := xform.AssignGroupDisks(groups, cfg.NumDisks, cfg.UnitBytes)
	if err != nil {
		return 0, err
	}
	in, err := core.Prepare(b.Name+"/lfdl", fp, cfg, st)
	if err != nil {
		return 0, err
	}
	res, err := in.Run(core.CMDRPM)
	if err != nil {
		return 0, err
	}
	return res.EnergyJ, nil
}

// AblationOpenLoop contrasts the closed-loop execution model (request
// n+1 issues after request n completes — the paper's setting, where
// power-management delays stretch the application) with classical
// open-loop trace replay, under the reactive and oracle DRPM schemes.
func (s *Suite) AblationOpenLoop() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: closed vs open loop (normalized energy | time)",
		Columns: []string{"DRPM-E", "DRPM-T", "openDRPM-E", "openDRPM-T", "openIDRPM-E"},
	}
	for _, b := range s.Benchmarks {
		if b.Name == "wupwise" || b.Name == "mgrid" {
			continue // keep the ablation quick; the others suffice
		}
		cfg := s.configFor(b)
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		base, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		openBase, err := in.RunOpen(core.Base)
		if err != nil {
			return nil, err
		}
		dr, err := in.Run(core.DRPM)
		if err != nil {
			return nil, err
		}
		openDr, err := in.RunOpen(core.DRPM)
		if err != nil {
			return nil, err
		}
		openId, err := in.RunOpen(core.IDRPM)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name,
			dr.EnergyJ/base.EnergyJ, dr.ExecMS/base.ExecMS,
			openDr.EnergyJ/openBase.EnergyJ, openDr.ExecMS/openBase.ExecMS,
			openId.EnergyJ/openBase.EnergyJ)
	}
	return t.WithMeanRow(), nil
}

// AblationSeekModel contrasts the datasheet average-seek model with
// the distance-dependent square-root seek curve: the workloads'
// mostly-sequential accesses seek far less than average, so base
// energy and time drop.
func (s *Suite) AblationSeekModel() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Ablation: average vs distance-dependent seek (base runs)",
		Columns: []string{"E-avg", "E-dist", "T-avg", "T-dist"},
	}
	for _, b := range s.Benchmarks {
		if b.Name == "wupwise" {
			continue
		}
		cfg := s.configFor(b)
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		avg, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		cfg.DistanceAwareSeek = true
		inD, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		dist, err := inD.Run(core.Base)
		if err != nil {
			return nil, err
		}
		t.Add(b.Name, avg.EnergyJ, dist.EnergyJ, avg.ExecMS, dist.ExecMS)
	}
	return t, nil
}

// EnergyBreakdown reports where each scheme's energy goes (active /
// idle-spinning / standby / transitions), per benchmark, for the base
// and compiler-managed DRPM schemes. It makes the proactive scheme's
// mechanism visible: base energy is almost entirely full-speed
// idling; CMDRPM converts most of it into low-RPM residency plus
// transition costs.
func (s *Suite) EnergyBreakdown() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Energy breakdown (J): base vs CMDRPM",
		Columns: []string{
			"base-active", "base-idle",
			"cm-active", "cm-idle", "cm-trans", "cm-standby",
		},
		Precision: 1,
	}
	for _, b := range s.Benchmarks {
		cfg := s.configFor(b)
		in, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		base, err := in.Run(core.Base)
		if err != nil {
			return nil, err
		}
		cm, err := in.Run(core.CMDRPM)
		if err != nil {
			return nil, err
		}
		sum := func(r *sim.Result) (a, i, tr, sb float64) {
			for _, st := range r.Disks {
				a += st.ActiveEnergyJ
				i += st.IdleEnergyJ
				tr += st.TransitionEnergyJ
				sb += st.StandbyEnergyJ
			}
			return
		}
		ba, bi, _, _ := sum(base)
		ca, ci, ct, cs := sum(cm)
		t.Add(b.Name, ba, bi, ca, ci, ct, cs)
	}
	return t, nil
}
