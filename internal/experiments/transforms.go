package experiments

import (
	"fmt"
	"strings"

	"sdpm/internal/core"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/stats"
	"sdpm/internal/trace"
	"sdpm/internal/workloads"
)

// figure13Schemes are the compiler-managed schemes Figure 13
// combines with the code versions.
var figure13Schemes = []core.Scheme{core.CMTPM, core.CMDRPM}

// Figure13 evaluates the code/layout versions of Section 6 under the
// compiler-managed schemes, normalized to the original base version.
// Rows are benchmarks; columns are version/scheme combinations. A
// version that does not apply to a benchmark (no fissionable nest,
// conforming layouts) reuses the original program, exactly as the
// paper's compiler would leave the code unchanged.
//
// Each (benchmark, version, scheme) run is one worker cell — the base
// denominator is one more cell per benchmark — and the normalization
// happens after the fan-out, in canonical order.
func (s *Suite) Figure13() (*stats.Table, error) {
	versions := core.AllVersions()
	var cols []string
	for _, v := range versions {
		for _, sc := range figure13Schemes {
			cols = append(cols, fmt.Sprintf("%s/%s", v, sc))
		}
	}
	t := &stats.Table{
		Title:   "Figure 13: Normalized energy consumption with code transformations",
		Columns: cols,
	}
	// Per benchmark: cell 0 is the base denominator, then one cell per
	// version/scheme pair.
	perB := 1 + len(versions)*len(figure13Schemes)
	energies := make([]float64, len(s.Benchmarks)*perB)
	err := s.pool().Map(len(energies), func(i int) error {
		b, j := s.Benchmarks[i/perB], i%perB
		cfg := s.configFor(b)
		if j == 0 {
			vals, err := s.cell(s.cellKey("figure13", &cfg, b.Name, "base"), 1, func() ([]float64, error) {
				orig, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
				if err != nil {
					return nil, err
				}
				baseRes, err := orig.Run(core.Base)
				if err != nil {
					return nil, err
				}
				return []float64{baseRes.EnergyJ}, nil
			})
			if err != nil {
				return err
			}
			energies[i] = vals[0]
			return nil
		}
		v := versions[(j-1)/len(figure13Schemes)]
		sc := figure13Schemes[(j-1)%len(figure13Schemes)]
		vals, err := s.cell(s.cellKey("figure13", &cfg, b.Name, string(v), string(sc)), 1, func() ([]float64, error) {
			in, _, err := s.memo().PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, v, err)
			}
			res, err := in.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", b.Name, v, sc, err)
			}
			return []float64{res.EnergyJ}, nil
		})
		if err != nil {
			return err
		}
		energies[i] = vals[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range s.Benchmarks {
		base := energies[bi*perB]
		vals := make([]float64, 0, perB-1)
		for j := 1; j < perB; j++ {
			vals = append(vals, energies[bi*perB+j]/base)
		}
		t.Add(b.Name, vals...)
	}
	return t.WithMeanRow(), nil
}

// ExtensionInterchange evaluates the loop-interchange extension (a
// transformation beyond the paper's LF/TL pair) against TL+DL on the
// layout-nonconforming benchmarks: interchange fixes the iteration
// order without touching any layout, and should recover most of
// TL+DL's benefit on codes whose only problem is a transposed
// traversal.
func (s *Suite) ExtensionInterchange() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Extension: loop interchange vs TL+DL (normalized CMDRPM energy)",
		Columns: []string{"orig", "IC", "TL+DL", "IC-requests", "orig-requests"},
	}
	rows := make([][]float64, len(s.Benchmarks))
	err := s.pool().Map(len(s.Benchmarks), func(i int) error {
		b := s.Benchmarks[i]
		cfg := s.configFor(b)
		cell, err := s.cell(s.cellKey("interchange", &cfg, b.Name), 5, func() ([]float64, error) {
			orig, err := s.memo().Prepare(b.Name, b.Program, cfg, nil)
			if err != nil {
				return nil, err
			}
			baseRes, err := orig.Run(core.Base)
			if err != nil {
				return nil, err
			}
			var vals []float64
			var icReqs float64
			for _, v := range []core.Version{core.VOrig, core.VIC, core.VTLDL} {
				in, _, err := s.memo().PrepareVersion(b.Name, b.Program, v, cfg)
				if err != nil {
					return nil, err
				}
				res, err := in.Run(core.CMDRPM)
				if err != nil {
					return nil, err
				}
				vals = append(vals, res.EnergyJ/baseRes.EnergyJ)
				if v == core.VIC {
					icReqs = float64(len(in.Sites))
				}
			}
			return append(vals, icReqs, float64(len(orig.Sites))), nil
		})
		rows[i] = cell
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, b := range s.Benchmarks {
		t.Add(b.Name, rows[i]...)
	}
	return t, nil
}

// ExtensionMultiprogram evaluates the server scenario the paper sets
// aside (its single-program evaluation is why it shrinks the DRPM
// window to 30): several benchmarks run concurrently against one
// shared subsystem, replayed open-loop, under the reactive and
// oracle DRPM schemes. Multiprogramming compresses each disk's idle
// periods, so both schemes save less than they do on dedicated
// subsystems.
func (s *Suite) ExtensionMultiprogram() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Extension: multiprogrammed (shared-subsystem) workloads, open-loop",
		Columns: []string{"DRPM-E", "IDRPM-E", "DRPM-T"},
	}
	combos := [][]string{
		{"swim"},
		{"swim", "galgel"},
		{"swim", "galgel", "mesa"},
	}
	// A journal cell encodes the row as [ok, DRPM-E, IDRPM-E, DRPM-T]:
	// the leading flag distinguishes "combo skipped, benchmark missing"
	// from a computed row, so a resumed run skips the same rows.
	rows := make([][]float64, len(combos))
	err := s.pool().Map(len(combos), func(ci int) error {
		cfg := s.Cfg
		vals, err := s.cell(s.cellKey("multiprog", &cfg, strings.Join(combos[ci], "+")), 4, func() ([]float64, error) {
			var traces []*trace.Trace
			for _, name := range combos[ci] {
				var b *workloads.Benchmark
				for _, x := range s.Benchmarks {
					if x.Name == name {
						b = x
					}
				}
				if b == nil {
					return []float64{0, 0, 0, 0}, nil // combo needs a benchmark the suite lacks; skip the row
				}
				in, err := s.instance(b)
				if err != nil {
					return nil, err
				}
				traces = append(traces, in.BaseTrace())
			}
			merged, err := trace.MergeOpen(s.Cfg.NumDisks, traces...)
			if err != nil {
				return nil, err
			}
			p := s.Cfg.Disk
			base, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewBase()})
			if err != nil {
				return nil, err
			}
			dr, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewDRPM(p, s.Cfg.NumDisks)})
			if err != nil {
				return nil, err
			}
			id, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewIDRPM(p)})
			if err != nil {
				return nil, err
			}
			return []float64{1,
				dr.EnergyJ / base.EnergyJ, id.EnergyJ / base.EnergyJ, dr.ExecMS / base.ExecMS}, nil
		})
		rows[ci] = vals
		return err
	})
	if err != nil {
		return nil, err
	}
	for ci, r := range rows {
		if r[0] != 0 {
			t.Add(strings.Join(combos[ci], "+"), r[1], r[2], r[3])
		}
	}
	return t, nil
}

// VersionApplicability reports which versions applied to which
// benchmarks (1 = transformed, 0 = compiler left the code unchanged),
// documenting the paper's structural claims (wupwise/galgel not
// fissionable; galgel conforming, etc.).
func (s *Suite) VersionApplicability() (*stats.Table, error) {
	versions := core.AllVersions()[1:]
	var cols []string
	for _, v := range versions {
		cols = append(cols, string(v))
	}
	t := &stats.Table{
		Title:     "Transformation applicability (1 = applied)",
		Columns:   cols,
		Precision: 0,
	}
	nv := len(versions)
	cells := make([]float64, len(s.Benchmarks)*nv)
	err := s.pool().Map(len(cells), func(i int) error {
		b, v := s.Benchmarks[i/nv], versions[i%nv]
		cfg := s.configFor(b)
		vals, err := s.cell(s.cellKey("applicability", &cfg, b.Name, string(v)), 1, func() ([]float64, error) {
			_, applied, err := s.memo().PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				return nil, err
			}
			if applied {
				return []float64{1}, nil
			}
			return []float64{0}, nil
		})
		if err != nil {
			return err
		}
		cells[i] = vals[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range s.Benchmarks {
		t.Add(b.Name, cells[bi*nv:(bi+1)*nv]...)
	}
	return t, nil
}
