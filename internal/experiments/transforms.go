package experiments

import (
	"fmt"

	"sdpm/internal/core"
	"sdpm/internal/policy"
	"sdpm/internal/sim"
	"sdpm/internal/stats"
	"sdpm/internal/trace"
	"sdpm/internal/workloads"
)

// figure13Schemes are the compiler-managed schemes Figure 13
// combines with the code versions.
var figure13Schemes = []core.Scheme{core.CMTPM, core.CMDRPM}

// Figure13 evaluates the code/layout versions of Section 6 under the
// compiler-managed schemes, normalized to the original base version.
// Rows are benchmarks; columns are version/scheme combinations. A
// version that does not apply to a benchmark (no fissionable nest,
// conforming layouts) reuses the original program, exactly as the
// paper's compiler would leave the code unchanged.
func (s *Suite) Figure13() (*stats.Table, error) {
	var cols []string
	for _, v := range core.AllVersions() {
		for _, sc := range figure13Schemes {
			cols = append(cols, fmt.Sprintf("%s/%s", v, sc))
		}
	}
	t := &stats.Table{
		Title:   "Figure 13: Normalized energy consumption with code transformations",
		Columns: cols,
	}
	for _, b := range s.Benchmarks {
		cfg := s.configFor(b)
		orig, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		baseRes, err := orig.Run(core.Base)
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, v := range core.AllVersions() {
			in, _, err := core.PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, v, err)
			}
			for _, sc := range figure13Schemes {
				res, err := in.Run(sc)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", b.Name, v, sc, err)
				}
				vals = append(vals, res.EnergyJ/baseRes.EnergyJ)
			}
		}
		t.Add(b.Name, vals...)
	}
	return t.WithMeanRow(), nil
}

// ExtensionInterchange evaluates the loop-interchange extension (a
// transformation beyond the paper's LF/TL pair) against TL+DL on the
// layout-nonconforming benchmarks: interchange fixes the iteration
// order without touching any layout, and should recover most of
// TL+DL's benefit on codes whose only problem is a transposed
// traversal.
func (s *Suite) ExtensionInterchange() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Extension: loop interchange vs TL+DL (normalized CMDRPM energy)",
		Columns: []string{"orig", "IC", "TL+DL", "IC-requests", "orig-requests"},
	}
	for _, b := range s.Benchmarks {
		cfg := s.configFor(b)
		orig, err := core.Prepare(b.Name, b.Program, cfg, nil)
		if err != nil {
			return nil, err
		}
		baseRes, err := orig.Run(core.Base)
		if err != nil {
			return nil, err
		}
		var vals []float64
		var icReqs float64
		for _, v := range []core.Version{core.VOrig, core.VIC, core.VTLDL} {
			in, _, err := core.PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(core.CMDRPM)
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.EnergyJ/baseRes.EnergyJ)
			if v == core.VIC {
				icReqs = float64(len(in.Sites))
			}
		}
		vals = append(vals, icReqs, float64(len(orig.Sites)))
		t.Add(b.Name, vals...)
	}
	return t, nil
}

// ExtensionMultiprogram evaluates the server scenario the paper sets
// aside (its single-program evaluation is why it shrinks the DRPM
// window to 30): several benchmarks run concurrently against one
// shared subsystem, replayed open-loop, under the reactive and
// oracle DRPM schemes. Multiprogramming compresses each disk's idle
// periods, so both schemes save less than they do on dedicated
// subsystems.
func (s *Suite) ExtensionMultiprogram() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Extension: multiprogrammed (shared-subsystem) workloads, open-loop",
		Columns: []string{"DRPM-E", "IDRPM-E", "DRPM-T"},
	}
	combos := [][]string{
		{"swim"},
		{"swim", "galgel"},
		{"swim", "galgel", "mesa"},
	}
	for _, combo := range combos {
		var traces []*trace.Trace
		ok := true
		for _, name := range combo {
			var b *workloads.Benchmark
			for _, x := range s.Benchmarks {
				if x.Name == name {
					b = x
				}
			}
			if b == nil {
				ok = false
				break
			}
			in, err := core.Prepare(b.Name, b.Program, s.configFor(b), nil)
			if err != nil {
				return nil, err
			}
			traces = append(traces, in.BaseTrace())
		}
		if !ok {
			continue
		}
		merged, err := trace.MergeOpen(s.Cfg.NumDisks, traces...)
		if err != nil {
			return nil, err
		}
		p := s.Cfg.Disk
		base, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewBase()})
		if err != nil {
			return nil, err
		}
		dr, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewDRPM(p, s.Cfg.NumDisks)})
		if err != nil {
			return nil, err
		}
		id, err := sim.RunOpenLoop(merged, sim.Config{Disk: p, Policy: policy.NewIDRPM(p)})
		if err != nil {
			return nil, err
		}
		t.Add(merged.Program,
			dr.EnergyJ/base.EnergyJ, id.EnergyJ/base.EnergyJ, dr.ExecMS/base.ExecMS)
	}
	return t, nil
}

// VersionApplicability reports which versions applied to which
// benchmarks (1 = transformed, 0 = compiler left the code unchanged),
// documenting the paper's structural claims (wupwise/galgel not
// fissionable; galgel conforming, etc.).
func (s *Suite) VersionApplicability() (*stats.Table, error) {
	var cols []string
	for _, v := range core.AllVersions()[1:] {
		cols = append(cols, string(v))
	}
	t := &stats.Table{
		Title:     "Transformation applicability (1 = applied)",
		Columns:   cols,
		Precision: 0,
	}
	for _, b := range s.Benchmarks {
		cfg := s.configFor(b)
		var vals []float64
		for _, v := range core.AllVersions()[1:] {
			_, applied, err := core.PrepareVersion(b.Name, b.Program, v, cfg)
			if err != nil {
				return nil, err
			}
			if applied {
				vals = append(vals, 1)
			} else {
				vals = append(vals, 0)
			}
		}
		t.Add(b.Name, vals...)
	}
	return t, nil
}
