package experiments

import (
	"sdpm/internal/core"
	"sdpm/internal/faults"
	"sdpm/internal/stats"
	"sdpm/internal/workloads"
)

// FaultImpact runs every scheme on one benchmark at the named fault
// severities (off/light/moderate/heavy) and returns the energy and
// execution-time tables, both normalized to the fault-free Base run —
// so a cell reads directly as "this scheme under these faults, versus
// doing nothing on a healthy array". The benchmark runs in its LF+DL
// transformed version, where the compiler actually inserts spin-down/
// spin-up calls, so the sweep stresses all three fault models: spin-up
// failures stretch every pre-activated wake-up, bad sectors tax the
// seeks, and degradation windows invalidate the idle-window estimates
// behind the paper's fault-free savings.
//
// The fault schedule is derived from (seed, nDisks, severity) only,
// so one seed produces byte-identical tables at any worker count.
func (s *Suite) FaultImpact(benchName string, seed int64) (*stats.Table, *stats.Table, error) {
	b, err := workloads.ByName(benchName)
	if err != nil {
		return nil, nil, err
	}
	severities := faults.PresetNames()
	schemes := core.AllSchemes()
	cols := make([]string, 0, len(schemes))
	for _, sc := range schemes {
		cols = append(cols, string(sc))
	}
	energy := &stats.Table{
		Title:     "Fault impact: normalized energy (" + b.Name + " LF+DL, vs fault-free Base)",
		Columns:   cols,
		Precision: 3,
	}
	times := &stats.Table{
		Title:     "Fault impact: normalized execution time (" + b.Name + " LF+DL, vs fault-free Base)",
		Columns:   cols,
		Precision: 3,
	}
	ns := len(schemes)
	cells := make([][]float64, len(severities)*ns)
	err = s.pool().Map(len(cells), func(i int) error {
		severity, sc := severities[i/ns], schemes[i%ns]
		cfg := s.configFor(b)
		cfg.Faults, _ = faults.Preset(severity)
		cfg.FaultSeed = seed
		vals, err := s.cell(s.cellKey("faultimpact", &cfg, b.Name, severity, string(sc)), 2, func() ([]float64, error) {
			in, _, err := s.memo().PrepareVersion(b.Name, b.Program, core.VLFDL, cfg)
			if err != nil {
				return nil, err
			}
			res, err := in.Run(sc)
			if err != nil {
				return nil, err
			}
			return []float64{res.EnergyJ, res.ExecMS}, nil
		})
		cells[i] = vals
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	// Normalize every cell to the fault-free Base run (severity row 0,
	// scheme column 0).
	ref := cells[0]
	for si, severity := range severities {
		evals := make([]float64, 0, ns)
		tvals := make([]float64, 0, ns)
		for ci := range schemes {
			c := cells[si*ns+ci]
			evals = append(evals, c[0]/ref[0])
			tvals = append(tvals, c[1]/ref[1])
		}
		energy.Add(severity, evals...)
		times.Add(severity, tvals...)
	}
	return energy, times, nil
}
